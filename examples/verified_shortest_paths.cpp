// Verified all-pairs shortest paths with rational edge weights — the
// benchmark exercising Zaatar's primitive floating-point support (fixed-point
// rounding gadgets, cross-multiplying comparisons). Shows the decoded
// distances next to verification.

#include <cstdio>

#include "src/apps/harness.h"

using namespace zaatar;

int main() {
  const size_t kNodes = 4;
  auto app = MakeApspApp(kNodes);
  auto program = CompileZlang<F128>(app.source);
  printf("floyd-warshall on %zu nodes, rational weights; %zu constraints\n",
         kNodes, program.CZaatar());

  Prg prg(31337);
  Qap<F128> qap(program.zaatar.r1cs);
  auto setup = ZaatarArgument<F128>::Setup(
      ZaatarPcp<F128>::GenerateQueries(qap, PcpParams{}, prg), prg);

  auto instance = app.make_instance(prg);
  auto ginger_w = program.SolveGinger(instance.inputs);
  auto outputs = program.ExtractOutputs(ginger_w);

  // The output is sum of distances from node 0, as a fixed-point rational.
  double sum = static_cast<double>(DecodeSignedInt<F128>(outputs[0])) /
               static_cast<double>(DecodeSignedInt<F128>(outputs[1]));
  printf("prover claims: sum of shortest-path distances from node 0 = %.5f\n",
         sum);

  auto zaatar_w = program.SolveZaatar(ginger_w);
  auto proof = BuildZaatarProof(qap, zaatar_w);
  auto ip = ZaatarArgument<F128>::Prove({&proof.z, &proof.h}, setup);
  bool ok = ZaatarArgument<F128>::VerifyInstance(
      setup, ip, program.BoundValues(instance.inputs, outputs));
  printf("verifier: %s\n", ok ? "ACCEPTED" : "REJECTED");
  if (!ok) {
    return 1;
  }

  // Confirm against the native reference the verifier never had to run.
  if (outputs == instance.expected_outputs) {
    printf("(native re-execution agrees — but the verifier didn't need "
           "it)\n");
  }
  return 0;
}
