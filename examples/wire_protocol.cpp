// The protocol over an actual byte stream: verifier and prover exchange
// serialized messages only, as two separated parties would. Demonstrates the
// network-cost structure of Appendix A — queries travel as a PRG seed, not
// as |u|-length vectors.

#include <cstdio>

#include "src/apps/harness.h"
#include "src/argument/wire.h"

using namespace zaatar;
using F = F128;

int main() {
  auto app = MakeMatMulApp(4);
  auto program = CompileZlang<F>(app.source);
  Qap<F> qap(program.zaatar.r1cs);
  PcpParams params;

  // ---- verifier side: derive public-coin queries from a seed, keep the
  // commitment secrets in a separate PRG, and serialize the setup.
  const uint64_t kQuerySeed = 0x5EED;
  Prg query_prg(kQuerySeed);
  Prg secret_prg(0x5EC2E7C0FFEE);
  auto setup = ZaatarArgument<F>::Setup(
      ZaatarPcp<F>::GenerateQueries(qap, params, query_prg), secret_prg);
  std::vector<uint8_t> setup_bytes =
      SetupMessage<F>::FromSetup(kQuerySeed, setup).Serialize();
  printf("V -> P  setup message: %zu KiB (seed + Enc(r) + t; the %zu "
         "queries themselves\n        -- %zu field elements -- never cross "
         "the wire)\n",
         setup_bytes.size() / 1024, setup.queries.TotalQueryCount(),
         setup.TotalQueryElements());

  // ---- prover side: everything below uses only setup_bytes + the inputs.
  Prg instance_prg(99);
  auto instance = app.make_instance(instance_prg);
  auto decoded_setup = SetupMessage<F>::Deserialize(setup_bytes);
  if (!decoded_setup.ok()) {
    printf("** setup message failed to decode: %s\n",
           decoded_setup.status().ToString().c_str());
    return 1;
  }
  const auto& wire_setup = *decoded_setup;
  Prg rederive(wire_setup.query_seed);
  auto queries = ZaatarPcp<F>::GenerateQueries(qap, params, rederive);

  auto ginger_w = program.SolveGinger(instance.inputs);
  auto outputs = program.ExtractOutputs(ginger_w);
  auto proof = BuildZaatarProof(qap, program.SolveZaatar(ginger_w));

  typename ZaatarArgument<F>::InstanceProof ip;
  const std::vector<F>* vectors[2] = {&proof.z, &proof.h};
  for (size_t o = 0; o < 2; o++) {
    auto part = LinearCommitment<F>::Prove(
        *vectors[o], wire_setup.enc_r[o],
        ZaatarAdapter<F>::OracleQueries(queries, o), wire_setup.t[o]);
    if (!part.ok()) {
      printf("** prover rejected the setup shape: %s\n",
             part.status().ToString().c_str());
      return 1;
    }
    ip.parts[o] = std::move(part).value();
  }
  std::vector<uint8_t> proof_bytes =
      InstanceProofMessage<F>::FromProof<ZaatarAdapter<F>>(ip).Serialize();
  printf("P -> V  instance proof: %zu KiB (2 commitments + %zu responses)\n",
         proof_bytes.size() / 1024, queries.TotalQueryCount());

  // ---- verifier side again: the hardened ingest path decodes, validates,
  // and decides, returning a typed verdict on any input.
  auto bound = program.BoundValues(instance.inputs, outputs);
  auto result =
      VerifyInstanceBytes<F, ZaatarAdapter<F>>(setup, proof_bytes, bound);
  printf("verifier decision: %s\n", VerifyVerdictName(result.verdict));
  if (!result.accepted()) {
    return 1;
  }

  // A flipped byte anywhere must not survive.
  auto corrupted = proof_bytes;
  corrupted[corrupted.size() / 2] ^= 0x40;
  auto bad =
      VerifyInstanceBytes<F, ZaatarAdapter<F>>(setup, corrupted, bound);
  if (bad.accepted()) {
    printf("** corrupted proof accepted — bug!\n");
    return 1;
  }
  printf("corrupted proof: %s %s\n", VerifyVerdictName(bad.verdict),
         bad.detail.c_str());
  return 0;
}
