// What the protocol is for: every way a prover can cheat, and the check that
// catches it. Each section mounts a concrete attack against a real instance
// and shows the verifier rejecting.

#include <cstdio>

#include "src/apps/harness.h"

using namespace zaatar;
using F = F128;

int main() {
  auto app = MakeLcsApp(8);
  auto program = CompileZlang<F>(app.source);
  Prg prg(666);
  Qap<F> qap(program.zaatar.r1cs);
  auto setup = ZaatarArgument<F>::Setup(
      ZaatarPcp<F>::GenerateQueries(qap, PcpParams{}, prg), prg);

  auto instance = app.make_instance(prg);
  auto ginger_w = program.SolveGinger(instance.inputs);
  auto outputs = program.ExtractOutputs(ginger_w);
  auto zaatar_w = program.SolveZaatar(ginger_w);
  auto honest_proof = BuildZaatarProof(qap, zaatar_w);
  auto honest_bound = program.BoundValues(instance.inputs, outputs);

  int failures = 0;
  auto expect_reject = [&](const char* attack, bool accepted) {
    printf("  %-58s %s\n", attack,
           accepted ? "** ACCEPTED (BUG!) **" : "rejected, as it must be");
    if (accepted) {
      failures++;
    }
  };

  printf("baseline: honest prover...\n");
  {
    auto ip = ZaatarArgument<F>::Prove({&honest_proof.z, &honest_proof.h},
                                       setup);
    bool ok = ZaatarArgument<F>::VerifyInstance(setup, ip, honest_bound);
    printf("  honest proof %s\n\n", ok ? "accepted" : "** REJECTED (BUG!)");
    if (!ok) {
      return 1;
    }
  }

  printf("attacks:\n");

  // Attack 1: claim a wrong output (LCS length off by one) with an honest
  // witness for the real output.
  {
    auto ip = ZaatarArgument<F>::Prove({&honest_proof.z, &honest_proof.h},
                                       setup);
    auto bound = honest_bound;
    bound.back() += F::One();
    expect_reject("wrong output, honest proof",
                  ZaatarArgument<F>::VerifyInstance(setup, ip, bound));
  }

  // Attack 2: fabricate a witness for the wrong output and prove it
  // "honestly" (H computed as the best-effort quotient).
  {
    auto forged_w = zaatar_w;
    forged_w[0] += F::One();
    auto forged = BuildZaatarProof(qap, forged_w);
    auto ip = ZaatarArgument<F>::Prove({&forged.z, &forged.h}, setup);
    expect_reject("forged witness, consistent commitment",
                  ZaatarArgument<F>::VerifyInstance(setup, ip, honest_bound));
  }

  // Attack 3: answer the PCP queries from one witness but commit to another
  // (binding attack on the commitment).
  {
    auto other_w = zaatar_w;
    other_w[1] += F::One();
    auto other = BuildZaatarProof(qap, other_w);
    auto ip = ZaatarArgument<F>::Prove({&honest_proof.z, &honest_proof.h},
                                       setup);
    auto swapped = ZaatarArgument<F>::Prove({&other.z, &other.h}, setup);
    ip.parts[0].commitment = swapped.parts[0].commitment;
    expect_reject("responses from witness A, commitment to witness B",
                  ZaatarArgument<F>::VerifyInstance(setup, ip, honest_bound));
  }

  // Attack 4: fix up a single PCP response post hoc.
  {
    auto ip = ZaatarArgument<F>::Prove({&honest_proof.z, &honest_proof.h},
                                       setup);
    ip.parts[1].responses[3] += F::One();
    expect_reject("single tampered oracle response",
                  ZaatarArgument<F>::VerifyInstance(setup, ip, honest_bound));
  }

  // Attack 5: mix-and-match oracles — z from the honest witness, h from a
  // forged one. Each is a perfectly linear function; only the divisibility
  // test ties them together.
  {
    auto forged_w = zaatar_w;
    forged_w[2] += F::One();
    auto forged = BuildZaatarProof(qap, forged_w);
    auto ip =
        ZaatarArgument<F>::Prove({&honest_proof.z, &forged.h}, setup);
    expect_reject("inconsistent (z, h) oracle pair",
                  ZaatarArgument<F>::VerifyInstance(setup, ip, honest_bound));
  }

  printf("\n%s\n", failures == 0 ? "all attacks rejected."
                                 : "SOME ATTACK SUCCEEDED — soundness bug!");
  return failures == 0 ? 0 : 1;
}
