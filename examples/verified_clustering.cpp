// Verified outsourced clustering: the scenario from the paper's intro —
// a client ships batches of datasets to an untrusted cloud for PAM
// clustering and verifies every returned medoid assignment, amortizing the
// query setup across the batch. Prints the cost ledger (Figure 5/7 style).

#include <cstdio>

#include "src/apps/harness.h"

using namespace zaatar;

int main() {
  const size_t kPoints = 6, kDims = 12, kBatch = 3;
  auto app = MakePamApp(kPoints, kDims);
  printf("scenario: cluster %zu points x %zu dims into 2 groups, batch of "
         "%zu datasets\n",
         kPoints, kDims, kBatch);

  auto program = CompileZlang<F128>(app.source);
  printf("compiled: %zu constraints (quadratic form), proof length %zu\n\n",
         program.CZaatar(), program.UZaatar());

  auto m = MeasureZaatarBatch(app, program, kBatch, PcpParams{}, /*seed=*/77);
  if (!m.all_accepted) {
    printf("** a proof was rejected — this should never happen honestly\n");
    return 1;
  }

  printf("all %zu datasets verified. Cost ledger:\n", kBatch);
  printf("  verifier setup (amortized): query generation %.3f s, "
         "Enc(r)+t %.3f s\n",
         m.query_generation_s, m.commit_setup_s);
  printf("  verifier per instance:      %.4f s\n", m.verifier_per_instance_s);
  printf("  prover per instance:        solve %.3f s | construct u %.3f s | "
         "crypto %.3f s | answer %.3f s\n",
         m.prover.solve_constraints_s, m.prover.construct_proof_s,
         m.prover.crypto_s, m.prover.answer_queries_s);
  printf("  local execution:            %.2e s\n", m.stats.t_local_s);

  double setup = m.query_generation_s + m.commit_setup_s;
  double breakeven = CostModel::BreakevenBatch(
      setup, m.verifier_per_instance_s, m.stats.t_local_s);
  if (breakeven > 0) {
    printf("  break-even batch size:      %.0f datasets\n", breakeven);
  } else {
    printf("  break-even batch size:      none at this toy size (verifying "
           "an instance costs\n                              more than "
           "computing it; outsourcing pays for bigger jobs)\n");
  }

  // Network accounting (the other side of the ledger).
  size_t field_bytes = F128::kLimbs * 8;
  printf("  network: setup %zu KiB + per instance %zu KiB\n",
         NetworkCosts::SetupBytes(m.proof_len, field_bytes) / 1024,
         NetworkCosts::InstanceBytes(m.total_queries, field_bytes) / 1024);
  return 0;
}
