// Quickstart: outsource a tiny computation and verify the result.
//
//   1. Write the computation in zlang.
//   2. Compile it to constraints (both encodings come back).
//   3. Verifier: generate PCP queries + commitment setup for a batch.
//   4. Prover: solve the constraints, build the (z, h) proof, commit, answer.
//   5. Verifier: check commitment consistency + the PCP decision.

#include <cstdio>

#include "src/apps/harness.h"
#include "src/compiler/compile.h"

using namespace zaatar;

int main() {
  using F = F128;

  // Step 1: the computation. The verifier wants y = max_i (x_i^2 + 3 x_i).
  const char* kSource = R"(
program quickstart;
const n = 8;
input int32 x[n];
output int<70> y;
var int<70> best;
var int<70> cur;
best = x[0] * x[0] + 3 * x[0];
for i in 1..n-1 {
  cur = x[i] * x[i] + 3 * x[i];
  if (cur > best) { best = cur; }
}
y = best;
)";

  // Step 2: compile.
  CompiledProgram<F> program = CompileZlang<F>(kSource);
  printf("compiled '%s': %zu Ginger constraints, %zu quadratic-form "
         "constraints,\n  Zaatar proof length %zu vs Ginger proof length %zu\n",
         program.name.c_str(), program.CGinger(), program.CZaatar(),
         program.UZaatar(), program.UGinger());

  // Step 3: verifier-side batch setup (amortized over many instances).
  Prg prg(2013);
  Qap<F> qap(program.zaatar.r1cs);
  PcpParams params;  // rho_lin=20, rho=8: soundness error < 1e-6
  auto queries = ZaatarPcp<F>::GenerateQueries(qap, params, prg);
  auto setup = ZaatarArgument<F>::Setup(std::move(queries), prg);
  printf("verifier setup done (%zu queries, ElGamal over a 1024-bit "
         "group)\n",
         setup.queries.TotalQueryCount());

  // Steps 4-5: run a small batch of instances.
  for (int instance = 0; instance < 3; instance++) {
    std::vector<F> inputs;
    for (int i = 0; i < 8; i++) {
      inputs.push_back(EncodeSignedInt<F>((instance + 2) * i - 5));
    }
    // Prover executes the computation, obtaining the witness and outputs.
    auto ginger_w = program.SolveGinger(inputs);
    auto outputs = program.ExtractOutputs(ginger_w);
    auto zaatar_w = program.SolveZaatar(ginger_w);
    auto proof = BuildZaatarProof(qap, zaatar_w);
    auto instance_proof =
        ZaatarArgument<F>::Prove({&proof.z, &proof.h}, setup);

    // Verifier checks the claimed output.
    auto bound = program.BoundValues(inputs, outputs);
    bool ok = ZaatarArgument<F>::VerifyInstance(setup, instance_proof, bound);
    printf("instance %d: claimed y = %lld -> %s\n", instance,
           static_cast<long long>(DecodeSignedInt<F>(outputs[0])),
           ok ? "ACCEPTED" : "REJECTED");
    if (!ok) {
      return 1;
    }
  }
  printf("quickstart complete: all instances verified.\n");
  return 0;
}
