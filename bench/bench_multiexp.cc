// Tracks the commitment-layer multi-exponentiation speedup across PRs: times
// the prover's homomorphic fold prod_i cts[i]^{u[i]} through the naive
// per-term loop (InnerProductNaive), the Pippenger bucket kernel
// (InnerProduct), and the ParallelFor-chunked kernel, plus the fixed-base
// table against plain square-and-multiply. Emits both a human table and a
// JSON baseline (default BENCH_multiexp.json) so the numbers are diffable.
//
// Every timed configuration is also checked bit-identical against the naive
// path; a mismatch exits nonzero (the CI smoke step relies on this).
//
// Usage: bench_multiexp [--smoke] [--out <path>]
//   --smoke   small sizes only (CI); default sizes go up to n = 4096.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/crypto/elgamal.h"
#include "src/crypto/multiexp.h"
#include "src/crypto/prg.h"
#include "src/field/fields.h"
#include "src/obs/metrics.h"
#include "src/util/stopwatch.h"

namespace zaatar {
namespace {

struct Row {
  std::string field;
  size_t n = 0;
  double naive_s = 0;
  double multiexp_s = 0;
  double parallel_s = 0;
  size_t workers = 1;
};

struct FixedBaseRow {
  std::string field;
  double plain_pow_s = 0;
  double table_pow_s = 0;
};

template <typename F>
FixedBaseRow BenchFixedBase(size_t reps) {
  using EG = ElGamal<F>;
  FixedBaseRow row;
  row.field = F::kName;
  Prg prg(0xF1BA5E);
  auto kp = EG::GenerateKeys(prg);
  auto exps = prg.template NextFieldVector<F>(reps);
  volatile uint64_t sink = 0;

  Stopwatch sw;
  for (const F& e : exps) {
    sink = sink + kp.pk.g.Pow(e.ToCanonical()).ToUint64();
  }
  row.plain_pow_s = sw.Lap() / static_cast<double>(reps);
  for (const F& e : exps) {
    sink = sink + kp.pk.PowG(e.ToCanonical()).ToUint64();
  }
  row.table_pow_s = sw.Lap() / static_cast<double>(reps);
  (void)sink;
  return row;
}

template <typename F>
bool BenchField(const std::vector<size_t>& sizes, size_t workers,
                std::vector<Row>* rows) {
  using EG = ElGamal<F>;
  Prg prg(0xC0FFEE);
  auto kp = EG::GenerateKeys(prg);

  size_t max_n = sizes.back();
  std::vector<typename EG::Ciphertext> cts;
  cts.reserve(max_n);
  std::vector<F> plain = prg.template NextFieldVector<F>(max_n);
  for (size_t i = 0; i < max_n; i++) {
    cts.push_back(EG::Encrypt(kp.pk, plain[i], prg));
  }
  std::vector<F> u = prg.template NextFieldVector<F>(max_n);

  for (size_t n : sizes) {
    Row row;
    row.field = F::kName;
    row.n = n;
    row.workers = workers;
    // Small sizes are noisy; repeat and average.
    size_t reps =
        n >= 2048 ? 1 : std::min<size_t>(8, 2048 / std::max<size_t>(1, n));

    typename EG::Ciphertext naive{}, fast{}, par{};
    Stopwatch sw;
    for (size_t r = 0; r < reps; r++) {
      naive = EG::InnerProductNaive(cts.data(), u.data(), n);
    }
    row.naive_s = sw.Lap() / static_cast<double>(reps);
    for (size_t r = 0; r < reps; r++) {
      fast = EG::InnerProduct(cts.data(), u.data(), n);
    }
    row.multiexp_s = sw.Lap() / static_cast<double>(reps);
    for (size_t r = 0; r < reps; r++) {
      par = EG::InnerProduct(cts.data(), u.data(), n, workers);
    }
    row.parallel_s = sw.Lap() / static_cast<double>(reps);

    if (fast.c1 != naive.c1 || fast.c2 != naive.c2 || par.c1 != naive.c1 ||
        par.c2 != naive.c2) {
      fprintf(stderr, "FAIL: %s n=%zu multiexp != naive\n", F::kName, n);
      return false;
    }
    rows->push_back(row);
  }
  return true;
}

void PrintRows(const std::vector<Row>& rows,
               const std::vector<FixedBaseRow>& fb) {
  printf("%-6s %6s %12s %12s %12s %9s %9s\n", "field", "n", "naive_ms",
         "multiexp_ms", "parallel_ms", "speedup", "par_spd");
  for (const Row& r : rows) {
    printf("%-6s %6zu %12.3f %12.3f %12.3f %8.2fx %8.2fx\n", r.field.c_str(),
           r.n, r.naive_s * 1e3, r.multiexp_s * 1e3, r.parallel_s * 1e3,
           r.naive_s / r.multiexp_s, r.naive_s / r.parallel_s);
  }
  printf("\n%-6s %14s %14s %9s   (fixed-base g^e)\n", "field", "plain_pow_us",
         "table_pow_us", "speedup");
  for (const FixedBaseRow& r : fb) {
    printf("%-6s %14.1f %14.1f %8.2fx\n", r.field.c_str(),
           r.plain_pow_s * 1e6, r.table_pow_s * 1e6,
           r.plain_pow_s / r.table_pow_s);
  }
}

bool WriteJson(const std::string& path, const std::vector<Row>& rows,
               const std::vector<FixedBaseRow>& fb, size_t workers) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  fprintf(f, "{\n  \"bench\": \"multiexp\",\n  \"workers\": %zu,\n", workers);
  fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); i++) {
    const Row& r = rows[i];
    fprintf(f,
            "    {\"field\": \"%s\", \"n\": %zu, \"naive_s\": %.9f, "
            "\"multiexp_s\": %.9f, \"parallel_s\": %.9f, "
            "\"speedup\": %.3f, \"parallel_speedup\": %.3f}%s\n",
            r.field.c_str(), r.n, r.naive_s, r.multiexp_s, r.parallel_s,
            r.naive_s / r.multiexp_s, r.naive_s / r.parallel_s,
            i + 1 < rows.size() ? "," : "");
  }
  fprintf(f, "  ],\n  \"fixed_base\": [\n");
  for (size_t i = 0; i < fb.size(); i++) {
    const FixedBaseRow& r = fb[i];
    fprintf(f,
            "    {\"field\": \"%s\", \"plain_pow_s\": %.9f, "
            "\"table_pow_s\": %.9f, \"speedup\": %.3f}%s\n",
            r.field.c_str(), r.plain_pow_s, r.table_pow_s,
            r.plain_pow_s / r.table_pow_s, i + 1 < fb.size() ? "," : "");
  }
  fprintf(f, "  ]\n}\n");
  fclose(f);
  return true;
}

}  // namespace
}  // namespace zaatar

int main(int argc, char** argv) {
  using namespace zaatar;
  bool smoke = false;
  std::string out = "BENCH_multiexp.json";
  for (int i = 1; i < argc; i++) {
    if (strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      fprintf(stderr, "usage: %s [--smoke] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  std::vector<size_t> sizes =
      smoke ? std::vector<size_t>{16, 64, 256} : std::vector<size_t>{256, 4096};
  size_t workers = std::thread::hardware_concurrency();
  if (workers == 0) {
    workers = 1;
  }
  size_t fb_reps = smoke ? 50 : 400;

  // Collect the kernel's own metrics alongside the timings: every
  // InnerProduct call below records multiexp.calls / .terms / .window_bits.
  obs::Metrics metrics;
  obs::ScopedThreadMetrics install_metrics(&metrics);

  std::vector<Row> rows;
  std::vector<FixedBaseRow> fb;
  if (!BenchField<F128>(sizes, workers, &rows) ||
      !BenchField<F220>(sizes, workers, &rows)) {
    return 1;
  }
  fb.push_back(BenchFixedBase<F128>(fb_reps));
  fb.push_back(BenchFixedBase<F220>(fb_reps));

  PrintRows(rows, fb);
  auto window_bits = metrics.HistogramValue("multiexp.window_bits");
  printf("\nkernel metrics: calls=%llu, terms(sum)=%llu, "
         "mean window bits=%.1f\n",
         static_cast<unsigned long long>(metrics.CounterValue("multiexp.calls")),
         static_cast<unsigned long long>(
             metrics.HistogramValue("multiexp.terms").sum),
         window_bits.count == 0
             ? 0.0
             : static_cast<double>(window_bits.sum) /
                   static_cast<double>(window_bits.count));
  if (!WriteJson(out, rows, fb, workers)) {
    return 1;
  }
  printf("\nwrote %s\n", out.c_str());
  return 0;
}
