// Figure 7: break-even batch sizes under Zaatar and Ginger — the minimum
// number of instances beta at which the verifier's total cost (amortized
// setup + per-instance work) drops below executing the batch locally.
//
// Zaatar numbers come from measured setup/per-instance/native costs; Ginger
// from the cost model (as in the paper). Expected shape: Zaatar's break-even
// sizes are orders of magnitude smaller, because its query setup is
// proportional to a linear- rather than quadratic-length proof.
//
// Besides the human tables, the bench emits a JSON baseline (default
// BENCH_fig7_breakeven.json) so the perf trajectory is machine-tracked: the
// "paper_scale_measured_micro" rows evaluate beta* at the paper's reported
// computation sizes and local (GMP) baselines with THIS machine's measured
// verifier primitive costs — the quantity the crypto kernels directly move —
// and carry the pre-kernel-push baseline beta* alongside for comparison
// (scripts/ci.sh asserts today's beta* is strictly smaller for every app).
//
// Usage: bench_fig7_breakeven [--out <path>]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace zaatar {
namespace {

std::string HumanBatch(double b) {
  if (b < 0) {
    return "never";
  }
  char buf[32];
  if (b < 1e6) {
    snprintf(buf, sizeof(buf), "%.0f", b);
  } else {
    snprintf(buf, sizeof(buf), "%.1e", b);
  }
  return buf;
}

// One emitted JSON record: a computation evaluated under one costing regime.
struct JsonRow {
  std::string app;
  std::string field;
  std::string regime;  // bench_measured | paper_scale_measured_micro |
                       // paper_constants
  double t_local_s = 0;
  double setup_s = -1;         // measured verifier setup (bench_measured only)
  double per_instance_s = -1;  // modeled verifier per-instance cost
  double zaatar_beta = -1;     // measured break-even (bench_measured only)
  double zaatar_model_beta = -1;
  double zaatar_model_beta_pre = -2;  // -2 = not tracked for this regime
  double ginger_model_beta = -1;
};

void JsonNumber(FILE* f, const char* key, double v, const char* suffix) {
  if (v < 0) {
    fprintf(f, "\"%s\": null%s", key, suffix);
  } else {
    fprintf(f, "\"%s\": %.9g%s", key, v, suffix);
  }
}

void WriteJson(const std::string& path, const MicroCosts& m128,
               const MicroCosts& m220, const std::vector<JsonRow>& rows) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    exit(1);
  }
  fprintf(f, "{\n  \"bench\": \"fig7_breakeven\",\n");
  fprintf(f, "  \"schema\": \"fig7.breakeven.v1\",\n");
  fprintf(f, "  \"micro\": {\n");
  const MicroCosts* micros[2] = {&m128, &m220};
  const char* names[2] = {"F128", "F220"};
  for (int i = 0; i < 2; i++) {
    const MicroCosts& m = *micros[i];
    fprintf(f,
            "    \"%s\": {\"e_s\": %.9g, \"d_s\": %.9g, \"h_s\": %.9g, "
            "\"h_amortized_s\": %.9g, \"f_s\": %.9g, \"f_div_s\": %.9g, "
            "\"c_s\": %.9g}%s\n",
            names[i], m.e, m.d, m.h, m.h_amortized, m.f, m.f_div, m.c,
            i == 0 ? "," : "");
  }
  fprintf(f, "  },\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); i++) {
    const JsonRow& r = rows[i];
    fprintf(f, "    {\"app\": \"%s\", \"field\": \"%s\", \"regime\": \"%s\", ",
            r.app.c_str(), r.field.c_str(), r.regime.c_str());
    fprintf(f, "\"t_local_s\": %.9g, ", r.t_local_s);
    JsonNumber(f, "setup_s", r.setup_s, ", ");
    JsonNumber(f, "per_instance_s", r.per_instance_s, ", ");
    JsonNumber(f, "zaatar_beta_star", r.zaatar_beta, ", ");
    JsonNumber(f, "zaatar_model_beta_star", r.zaatar_model_beta, ", ");
    if (r.zaatar_model_beta_pre > -2) {
      JsonNumber(f, "zaatar_model_beta_star_pre_pr", r.zaatar_model_beta_pre,
                 ", ");
    }
    JsonNumber(f, "ginger_model_beta_star", r.ginger_model_beta, "");
    fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  fprintf(f, "  ]\n}\n");
  fclose(f);
  printf("\nwrote %s\n", path.c_str());
}

template <typename F>
void Row(const App<F>& app, const PcpParams& params, const MicroCosts& micro,
         std::vector<JsonRow>* out) {
  auto program = CompileZlang<F>(app.source);
  auto m = MeasureZaatarBatch(app, program, 2, params, /*seed=*/21);
  double setup = m.query_generation_s + m.commit_setup_s;
  double zaatar_measured = CostModel::BreakevenBatch(
      setup, m.verifier_per_instance_s, m.stats.t_local_s);
  CostModel model(micro, params);
  double zaatar_model = model.ZaatarBreakeven(m.stats);
  double ginger_model = model.GingerBreakeven(m.stats);
  printf("%-38s %10s %12s %12s %12s %12s\n", app.name.c_str(),
         bench::HumanSeconds(m.stats.t_local_s).c_str(),
         bench::HumanSeconds(setup).c_str(),
         HumanBatch(zaatar_measured).c_str(), HumanBatch(zaatar_model).c_str(),
         HumanBatch(ginger_model).c_str());
  JsonRow r;
  r.app = app.name;
  r.field = F::kLimbs == 2 ? "F128" : "F220";
  r.regime = "bench_measured";
  r.t_local_s = m.stats.t_local_s;
  r.setup_s = setup;
  r.per_instance_s = m.verifier_per_instance_s;
  r.zaatar_beta = zaatar_measured;
  r.zaatar_model_beta = zaatar_model;
  r.ginger_model_beta = ginger_model;
  out->push_back(r);
}

// Scales the measured constraint statistics of a bench-sized app by its
// complexity polynomial to the paper's input size, with the given local
// baseline time.
template <typename F>
ComputationStats ScaledStats(const App<F>& bench_app, double count_factor,
                             double io_factor, double t_local) {
  auto program = CompileZlang<F>(bench_app.source);
  ComputationStats s = ComputeStats(program, t_local);
  s.z_ginger = static_cast<size_t>(s.z_ginger * count_factor);
  s.c_ginger = static_cast<size_t>(s.c_ginger * count_factor);
  s.k = static_cast<size_t>(s.k * count_factor);
  s.k2 = static_cast<size_t>(s.k2 * count_factor);
  s.z_zaatar = static_cast<size_t>(s.z_zaatar * count_factor);
  s.c_zaatar = static_cast<size_t>(s.c_zaatar * count_factor);
  s.num_inputs = static_cast<size_t>(s.num_inputs * io_factor);
  s.num_outputs = std::max<size_t>(1, s.num_outputs);
  return s;
}

// Paper-scale model row; when pre-PR micro costs are supplied the row also
// reports (and records) beta* under those, so the JSON carries the
// trajectory the kernel work moved.
void PaperScaleRow(const char* label, const char* field,
                   const ComputationStats& s, const PcpParams& params,
                   const MicroCosts& micro, const MicroCosts* micro_pre,
                   const char* regime, std::vector<JsonRow>* out) {
  CostModel model(micro, params);
  double zb = model.ZaatarBreakeven(s);
  double gb = model.GingerBreakeven(s);
  printf("%-38s %10s %12s %12s", label,
         bench::HumanSeconds(s.t_local_s).c_str(), HumanBatch(zb).c_str(),
         HumanBatch(gb).c_str());
  JsonRow r;
  r.app = label;
  r.field = field;
  r.regime = regime;
  r.t_local_s = s.t_local_s;
  r.per_instance_s = model.ZaatarVerifierPerInstance(s);
  r.zaatar_model_beta = zb;
  r.ginger_model_beta = gb;
  if (micro_pre != nullptr) {
    CostModel pre(*micro_pre, params);
    r.zaatar_model_beta_pre = pre.ZaatarBreakeven(s);
    printf("   pre-kernel-push Z = %s", HumanBatch(r.zaatar_model_beta_pre).c_str());
  } else if (zb > 0 && gb > 0) {
    printf("   G/Z = %.1e", gb / zb);
  }
  printf("\n");
  out->push_back(r);
}

}  // namespace
}  // namespace zaatar

int main(int argc, char** argv) {
  using namespace zaatar;
  std::string out_path = "BENCH_fig7_breakeven.json";
  for (int i = 1; i < argc; i++) {
    if (strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      fprintf(stderr, "usage: %s [--out <path>]\n", argv[0]);
      return 2;
    }
  }
  PcpParams params;
  std::vector<JsonRow> rows;
  printf("Figure 7: break-even batch sizes (Zaatar measured+model, Ginger "
         "model)\n\n");
  MicroCosts m128 = bench::MeasureMicroCosts<F128>();
  MicroCosts m220 = bench::MeasureMicroCosts<F220>();
  printf("%-38s %10s %12s %12s %12s %12s\n", "computation", "t_local",
         "V setup", "Z(meas)", "Z(model)", "G(model)");
  bench::PrintRule(110);
  Row(MakePamApp(8, 16), params, m128, &rows);
  Row(MakeRootFindApp(6, 8), params, m220, &rows);
  Row(MakeApspApp(4), params, m128, &rows);
  Row(MakeFannkuchApp(3, 5, 12), params, m128, &rows);
  Row(MakeLcsApp(16), params, m128, &rows);
  printf(
      "\nNote: 'never' means verifying one instance costs more than running\n"
      "it locally, so no batch size breaks even — the paper's point that\n"
      "outsourcing pays only for computations that are expensive relative\n"
      "to their I/O (§5.4). At these reduced benchmark sizes the native\n"
      "computations are microseconds, so absolute break-even sizes suffer;\n"
      "the Zaatar/Ginger *ratio* is the reproduced shape. The paper's\n"
      "regime, with its input sizes, is extrapolated below. (Also note the\n"
      "paper's local baseline ran under GMP bignums; ours is native int64,\n"
      "~10-50x faster, which further inflates our break-even sizes.)\n");

  // The paper-scale complexity factors: scale |C| etc. from our bench knob
  // to the paper's knob via each benchmark's complexity polynomial.
  struct PaperApp {
    const char* label;
    const char* field;
    ComputationStats stats;  // at paper scale, with paper GMP t_local
  };
  // The paper's Figure 5 "local" column (GMP bignum baselines) — fixed
  // across runs, so beta* movement in the trajectory rows below is purely
  // verifier-kernel-driven.
  std::vector<PaperApp> paper_apps;
  paper_apps.push_back(
      {"pam_clustering(m=20,d=128)", "F128",
       ScaledStats(MakePamApp(8, 16), (20.0 * 20 * 128) / (8.0 * 8 * 16),
                   (20.0 * 128) / (8.0 * 16), 51.6e-3)});
  paper_apps.push_back(
      {"root_finding(m=256,L=8)", "F220",
       ScaledStats(MakeRootFindApp(6, 8), (256.0 * 256) / (6.0 * 6),
                   (256.0 * 256) / (6.0 * 6), 0.8)});
  paper_apps.push_back(
      {"all_pairs_shortest_path(m=25)", "F128",
       ScaledStats(MakeApspApp(4), (25.0 * 25 * 25) / (4.0 * 4 * 4),
                   (25.0 * 25) / (4.0 * 4), 8.1e-3)});
  paper_apps.push_back(
      {"fannkuch(m=100,n=13)", "F128",
       ScaledStats(MakeFannkuchApp(3, 5, 12), (100.0 * 13 * 80) / (3.0 * 5 * 12),
                   (100.0 * 13) / (3.0 * 5), 0.8e-3)});
  paper_apps.push_back(
      {"longest_common_subsequence(m=300)", "F128",
       ScaledStats(MakeLcsApp(16), (300.0 * 300) / (16.0 * 16), 300.0 / 16,
                   1.4e-3)});

  // Pre-kernel-push verifier primitive costs, measured on this machine by
  // bench_micro_ops immediately before the Montgomery-squaring / windowed-
  // Pow / signed-Pippenger / batched-Encrypt push (the previous EXPERIMENTS
  // §5.1 baseline). The JSON rows below carry beta* under both cost sets so
  // the improvement is machine-checkable.
  MicroCosts pre128{.e = 50.7e-6, .d = 144.7e-6, .h = 212.9e-6,
                    .f_lazy = 11.6e-9, .f = 11.6e-9, .f_div = 5.80e-6,
                    .c = 45.7e-9};
  MicroCosts pre220{.e = 74.8e-6, .d = 214.4e-6, .h = 451.7e-6,
                    .f_lazy = 46.3e-9, .f = 46.3e-9, .f_div = 23.3e-6,
                    .c = 130e-9};

  printf("\nPaper regime, this machine's verifier kernels: beta* at the "
         "paper's input\nsizes and GMP local baselines, under the measured "
         "micro costs (the\ntrajectory rows scripts/ci.sh gates on):\n");
  printf("%-38s %10s %12s %12s\n", "computation @ paper size", "t_local",
         "Z(model)", "G(model)");
  bench::PrintRule(100);
  for (const PaperApp& app : paper_apps) {
    const MicroCosts& micro = strcmp(app.field, "F220") == 0 ? m220 : m128;
    const MicroCosts& pre = strcmp(app.field, "F220") == 0 ? pre220 : pre128;
    PaperScaleRow(app.label, app.field, app.stats, params, micro, &pre,
                  "paper_scale_measured_micro", &rows);
  }

  // Finally, Figure 7 recomputed from the paper's own published constants:
  // its §5.1 microbenchmark row and its Figure 5 "local" column, through our
  // implementation of the Figure 3 models. This is the regime the paper
  // reports (batch sizes in the thousands for Zaatar, astronomically larger
  // for Ginger).
  printf("\nFigure 7 from the paper's published constants (micro costs + GMP "
         "local times):\n");
  printf("%-38s %10s %12s %12s\n", "computation @ paper size", "t_local",
         "Z(model)", "G(model)");
  bench::PrintRule(100);
  {
    MicroCosts paper128{.e = 65e-6, .d = 170e-6, .h = 91e-6,
                        .f_lazy = 68e-9, .f = 210e-9, .f_div = 2e-6,
                        .c = 160e-9};
    MicroCosts paper220{.e = 88e-6, .d = 170e-6, .h = 130e-6,
                        .f_lazy = 90e-9, .f = 320e-9, .f_div = 3e-6,
                        .c = 260e-9};
    for (const PaperApp& app : paper_apps) {
      const MicroCosts& micro =
          strcmp(app.field, "F220") == 0 ? paper220 : paper128;
      PaperScaleRow(app.label, app.field, app.stats, params, micro, nullptr,
                    "paper_constants", &rows);
    }
  }

  WriteJson(out_path, m128, m220, rows);
  return 0;
}
