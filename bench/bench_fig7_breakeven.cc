// Figure 7: break-even batch sizes under Zaatar and Ginger — the minimum
// number of instances beta at which the verifier's total cost (amortized
// setup + per-instance work) drops below executing the batch locally.
//
// Zaatar numbers come from measured setup/per-instance/native costs; Ginger
// from the cost model (as in the paper). Expected shape: Zaatar's break-even
// sizes are orders of magnitude smaller, because its query setup is
// proportional to a linear- rather than quadratic-length proof.

#include <cstdio>

#include "bench/bench_util.h"

namespace zaatar {
namespace {

std::string HumanBatch(double b) {
  if (b < 0) {
    return "never";
  }
  char buf[32];
  if (b < 1e6) {
    snprintf(buf, sizeof(buf), "%.0f", b);
  } else {
    snprintf(buf, sizeof(buf), "%.1e", b);
  }
  return buf;
}

template <typename F>
void Row(const App<F>& app, const PcpParams& params,
         const MicroCosts& micro) {
  auto program = CompileZlang<F>(app.source);
  auto m = MeasureZaatarBatch(app, program, 2, params, /*seed=*/21);
  double setup = m.query_generation_s + m.commit_setup_s;
  double zaatar_measured = CostModel::BreakevenBatch(
      setup, m.verifier_per_instance_s, m.stats.t_local_s);
  CostModel model(micro, params);
  double zaatar_model = model.ZaatarBreakeven(m.stats);
  double ginger_model = model.GingerBreakeven(m.stats);
  printf("%-38s %10s %12s %12s %12s %12s\n", app.name.c_str(),
         bench::HumanSeconds(m.stats.t_local_s).c_str(),
         bench::HumanSeconds(setup).c_str(),
         HumanBatch(zaatar_measured).c_str(), HumanBatch(zaatar_model).c_str(),
         HumanBatch(ginger_model).c_str());
}

}  // namespace
}  // namespace zaatar

namespace zaatar {
namespace {

// Paper-scale extrapolation: scale the measured constraint statistics by the
// benchmark's complexity polynomial to the paper's input size, measure the
// native baseline at that size for real, and evaluate both models.
template <typename F>
void PaperScaleRow(const char* label, const App<F>& bench_app,
                   double count_factor, double io_factor,
                   double paper_t_local, const PcpParams& params,
                   const MicroCosts& micro) {
  auto program = CompileZlang<F>(bench_app.source);
  ComputationStats s = ComputeStats(program, paper_t_local);
  s.z_ginger = static_cast<size_t>(s.z_ginger * count_factor);
  s.c_ginger = static_cast<size_t>(s.c_ginger * count_factor);
  s.k = static_cast<size_t>(s.k * count_factor);
  s.k2 = static_cast<size_t>(s.k2 * count_factor);
  s.z_zaatar = static_cast<size_t>(s.z_zaatar * count_factor);
  s.c_zaatar = static_cast<size_t>(s.c_zaatar * count_factor);
  s.num_inputs = static_cast<size_t>(s.num_inputs * io_factor);
  s.num_outputs = std::max<size_t>(1, s.num_outputs);
  CostModel model(micro, params);
  double zb = model.ZaatarBreakeven(s);
  double gb = model.GingerBreakeven(s);
  printf("%-38s %10s %12s %12s", label,
         bench::HumanSeconds(paper_t_local).c_str(),
         HumanBatch(zb).c_str(), HumanBatch(gb).c_str());
  if (zb > 0 && gb > 0) {
    printf("   G/Z = %.1e", gb / zb);
  }
  printf("\n");
}

}  // namespace
}  // namespace zaatar

int main() {
  using namespace zaatar;
  PcpParams params;
  printf("Figure 7: break-even batch sizes (Zaatar measured+model, Ginger "
         "model)\n\n");
  MicroCosts m128 = bench::MeasureMicroCosts<F128>();
  MicroCosts m220 = bench::MeasureMicroCosts<F220>();
  printf("%-38s %10s %12s %12s %12s %12s\n", "computation", "t_local",
         "V setup", "Z(meas)", "Z(model)", "G(model)");
  bench::PrintRule(110);
  Row(MakePamApp(8, 16), params, m128);
  Row(MakeRootFindApp(6, 8), params, m220);
  Row(MakeApspApp(4), params, m128);
  Row(MakeFannkuchApp(3, 5, 12), params, m128);
  Row(MakeLcsApp(16), params, m128);
  printf(
      "\nNote: 'never' means verifying one instance costs more than running\n"
      "it locally, so no batch size breaks even — the paper's point that\n"
      "outsourcing pays only for computations that are expensive relative\n"
      "to their I/O (§5.4). At these reduced benchmark sizes the native\n"
      "computations are microseconds, so absolute break-even sizes suffer;\n"
      "the Zaatar/Ginger *ratio* is the reproduced shape. The paper's\n"
      "regime, with its input sizes, is extrapolated below. (Also note the\n"
      "paper's local baseline ran under GMP bignums; ours is native int64,\n"
      "~10-50x faster, which further inflates our break-even sizes.)\n");

  printf("\nPaper-scale break-even estimates (models at the paper's input "
         "sizes):\n");
  printf("%-38s %10s %12s %12s\n", "computation @ paper size", "t_local",
         "Z(model)", "G(model)");
  bench::PrintRule(100);
  // Count factors scale |C| etc. from our bench knob to the paper's knob
  // via each benchmark's complexity polynomial.
  PaperScaleRow("pam_clustering(m=20,d=128)", MakePamApp(8, 16),
                (20.0 * 20 * 128) / (8.0 * 8 * 16), (20.0 * 128) / (8.0 * 16),
                MakePamApp(20, 128).measure_native_seconds(), params, m128);
  PaperScaleRow("root_finding(m=256,L=8)", MakeRootFindApp(6, 8),
                (256.0 * 256) / (6.0 * 6), (256.0 * 256) / (6.0 * 6),
                MakeRootFindApp(256, 8).measure_native_seconds(), params,
                m220);
  PaperScaleRow("all_pairs_shortest_path(m=25)", MakeApspApp(4),
                (25.0 * 25 * 25) / (4.0 * 4 * 4), (25.0 * 25) / (4.0 * 4),
                MakeApspApp(25).measure_native_seconds(), params, m128);
  PaperScaleRow("fannkuch(m=100,n=13)", MakeFannkuchApp(3, 5, 12),
                (100.0 * 13 * 80) / (3.0 * 5 * 12), (100.0 * 13) / (3.0 * 5),
                MakeFannkuchApp(100, 13, 80).measure_native_seconds(), params,
                m128);
  PaperScaleRow("longest_common_subsequence(m=300)", MakeLcsApp(16),
                (300.0 * 300) / (16.0 * 16), 300.0 / 16,
                MakeLcsApp(300).measure_native_seconds(), params, m128);
  printf("\nStill 'never' above: our native baselines are 10-50x faster than "
         "the paper's GMP\nruns and our decrypt (d) is ~6x the paper's, so "
         "per-instance verification exceeds\nlocal execution at every size "
         "on this hardware.\n");

  // Finally, Figure 7 recomputed from the paper's own published constants:
  // its §5.1 microbenchmark row and its Figure 5 "local" column, through our
  // implementation of the Figure 3 models. This is the regime the paper
  // reports (batch sizes in the thousands for Zaatar, astronomically larger
  // for Ginger).
  printf("\nFigure 7 from the paper's published constants (micro costs + GMP "
         "local times):\n");
  printf("%-38s %10s %12s %12s\n", "computation @ paper size", "t_local",
         "Z(model)", "G(model)");
  bench::PrintRule(100);
  {
    MicroCosts paper128{.e = 65e-6, .d = 170e-6, .h = 91e-6,
                        .f_lazy = 68e-9, .f = 210e-9, .f_div = 2e-6,
                        .c = 160e-9};
    MicroCosts paper220{.e = 88e-6, .d = 170e-6, .h = 130e-6,
                        .f_lazy = 90e-9, .f = 320e-9, .f_div = 3e-6,
                        .c = 260e-9};
    PaperScaleRow("pam_clustering(m=20,d=128)", MakePamApp(8, 16),
                  (20.0 * 20 * 128) / (8.0 * 8 * 16),
                  (20.0 * 128) / (8.0 * 16), 51.6e-3, params, paper128);
    PaperScaleRow("root_finding(m=256,L=8)", MakeRootFindApp(6, 8),
                  (256.0 * 256) / (6.0 * 6), (256.0 * 256) / (6.0 * 6),
                  0.8, params, paper220);
    PaperScaleRow("all_pairs_shortest_path(m=25)", MakeApspApp(4),
                  (25.0 * 25 * 25) / (4.0 * 4 * 4), (25.0 * 25) / (4.0 * 4),
                  8.1e-3, params, paper128);
    PaperScaleRow("fannkuch(m=100,n=13)", MakeFannkuchApp(3, 5, 12),
                  (100.0 * 13 * 80) / (3.0 * 5 * 12),
                  (100.0 * 13) / (3.0 * 5), 0.8e-3, params, paper128);
    PaperScaleRow("longest_common_subsequence(m=300)", MakeLcsApp(16),
                  (300.0 * 300) / (16.0 * 16), 300.0 / 16, 1.4e-3, params,
                  paper128);
  }
  return 0;
}
