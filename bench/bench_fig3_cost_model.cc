// Figure 3 validation: the analytic cost model vs measured costs, phase by
// phase, for Zaatar. The paper reports empirical CPU costs 5-15% above the
// model's predictions; this bench prints the measured/model ratio per phase
// so drift is visible. (Our constants differ from the paper's GPU-era
// hardware; what should reproduce is ratios near 1, not a specific gap.)

#include <cstdio>

#include "bench/bench_util.h"

namespace zaatar {
namespace {

void PrintPhase(const char* name, double measured, double modeled) {
  printf("  %-34s %12s %12s %8.2f\n", name,
         bench::HumanSeconds(measured).c_str(),
         bench::HumanSeconds(modeled).c_str(),
         modeled > 0 ? measured / modeled : 0.0);
}

template <typename F>
void Validate(const App<F>& app, const PcpParams& params,
              const MicroCosts& micro) {
  auto program = CompileZlang<F>(app.source);
  auto m = MeasureZaatarBatch(app, program, 2, params, /*seed=*/5,
                              /*measure_native=*/false);
  CostModel model(micro, params);
  printf("\n%s  (|C_zaatar|=%zu, |u|=%zu)\n", app.name.c_str(),
         m.stats.c_zaatar, m.stats.ZaatarProofLen());
  printf("  %-34s %12s %12s %8s\n", "phase", "measured", "model",
         "meas/mod");
  PrintPhase("P: construct proof vector",
             m.prover.construct_proof_s + m.prover.solve_constraints_s,
             model.ZaatarConstructProof(m.stats));
  PrintPhase("P: issue responses (crypto+answer)",
             m.prover.crypto_s + m.prover.answer_queries_s,
             model.ZaatarIssueResponses(m.stats));
  PrintPhase("V: computation-specific queries", m.query_generation_s,
             model.ZaatarQuerySetupSpecific(m.stats));
  PrintPhase("V: oblivious queries + Enc(r)", m.commit_setup_s,
             model.ZaatarQuerySetupOblivious(m.stats));
  PrintPhase("V: process responses", m.verifier_per_instance_s,
             model.ZaatarVerifierPerInstance(m.stats));
}

}  // namespace
}  // namespace zaatar

int main() {
  using namespace zaatar;
  PcpParams params;
  printf("Figure 3 cost-model validation (Zaatar column)\n");
  printf("Calibrating microbenchmark parameters...\n");
  MicroCosts m128 = bench::MeasureMicroCosts<F128>();
  MicroCosts m220 = bench::MeasureMicroCosts<F220>();
  printf("F128 primitives: e=%s d=%s h=%s f=%s fdiv=%s c=%s\n",
         bench::HumanSeconds(m128.e).c_str(),
         bench::HumanSeconds(m128.d).c_str(),
         bench::HumanSeconds(m128.h).c_str(),
         bench::HumanSeconds(m128.f).c_str(),
         bench::HumanSeconds(m128.f_div).c_str(),
         bench::HumanSeconds(m128.c).c_str());
  printf("F220 primitives: e=%s d=%s h=%s f=%s fdiv=%s c=%s\n",
         bench::HumanSeconds(m220.e).c_str(),
         bench::HumanSeconds(m220.d).c_str(),
         bench::HumanSeconds(m220.h).c_str(),
         bench::HumanSeconds(m220.f).c_str(),
         bench::HumanSeconds(m220.f_div).c_str(),
         bench::HumanSeconds(m220.c).c_str());

  Validate(MakeLcsApp(16), params, m128);
  Validate(MakeFannkuchApp(2, 5, 12), params, m128);
  Validate(MakeRootFindApp(4, 8), params, m220);
  return 0;
}
