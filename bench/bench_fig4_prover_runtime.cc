// Figure 4: per-instance running time of the prover under Zaatar and Ginger
// for the five benchmark computations (log scale in the paper; here a table
// with the Zaatar/Ginger ratio).
//
// Method mirrors §5.1/§5.2: Zaatar columns are *measured* end-to-end runs of
// this implementation; Ginger columns are *estimated from the cost model*
// parameterized by measured microbenchmarks ("we use estimates, rather than
// empirics, because the computations would be too expensive under Ginger").
// A validation block at the end runs real Ginger at a tiny size and compares
// it against the same model.
//
// Expected shape: Ginger/Zaatar ratios of one to many orders of magnitude,
// smallest for root finding (its Ginger encoding is relatively efficient,
// Figure 9), growing with input size because Ginger is quadratic.

#include <cstdio>

#include "bench/bench_util.h"

namespace zaatar {
namespace {

using bench::HumanSeconds;

template <typename F>
void Row(const App<F>& app, const PcpParams& params, const MicroCosts& micro,
         size_t beta) {
  auto program = CompileZlang<F>(app.source);
  auto m = MeasureZaatarBatch(app, program, beta, params, /*seed=*/42);
  CostModel model(micro, params);
  double zaatar_measured = m.prover.Total();
  double ginger_model = model.GingerProverPerInstance(m.stats);
  double zaatar_model = model.ZaatarProverPerInstance(m.stats);
  printf("%-38s %12s %12s %12s %9.1fx %s\n", app.name.c_str(),
         HumanSeconds(zaatar_measured).c_str(),
         HumanSeconds(zaatar_model).c_str(),
         HumanSeconds(ginger_model).c_str(), ginger_model / zaatar_measured,
         m.all_accepted ? "" : "  ** VERIFIER REJECTED **");
}

}  // namespace
}  // namespace zaatar

int main() {
  using namespace zaatar;
  PcpParams params;  // full soundness: rho_lin=20, rho=8
  printf("Figure 4: per-instance prover running time, Zaatar vs Ginger\n");
  printf("(Zaatar measured; Ginger from the Figure 3 model with measured "
         "microbenchmark parameters)\n\n");
  printf("Calibrating microbenchmarks...\n");
  MicroCosts m128 = bench::MeasureMicroCosts<F128>();
  MicroCosts m220 = bench::MeasureMicroCosts<F220>();
  printf("  F128: e=%s d=%s h=%s f=%s fdiv=%s c=%s\n",
         bench::HumanSeconds(m128.e).c_str(),
         bench::HumanSeconds(m128.d).c_str(),
         bench::HumanSeconds(m128.h).c_str(),
         bench::HumanSeconds(m128.f).c_str(),
         bench::HumanSeconds(m128.f_div).c_str(),
         bench::HumanSeconds(m128.c).c_str());
  printf("\n%-38s %12s %12s %12s %10s\n", "computation", "Zaatar(meas)",
         "Zaatar(model)", "Ginger(model)", "G/Z");
  bench::PrintRule();
  const size_t kBeta = 2;
  Row(MakePamApp(8, 16), params, m128, kBeta);
  Row(MakeRootFindApp(6, 8), params, m220, kBeta);
  Row(MakeApspApp(4), params, m128, kBeta);
  Row(MakeFannkuchApp(3, 5, 12), params, m128, kBeta);
  Row(MakeLcsApp(16), params, m128, kBeta);

  // Validation: real Ginger at a tiny size against its model.
  printf("\nValidation: measured Ginger at tiny scale vs its cost model\n");
  {
    PcpParams light = PcpParams::Light();
    auto app = MakeLcsApp(3);
    auto program = CompileZlang<F128>(app.source);
    auto g = MeasureGingerBatch(app, program, 1, light, 43);
    CostModel model(m128, light);
    double predicted = model.GingerIssueResponses(g.stats);
    double measured = g.prover.crypto_s + g.prover.answer_queries_s;
    printf("  lcs(m=3): Ginger prover crypto+answer measured %s, model %s "
           "(ratio %.2f), accepted=%d\n",
           HumanSeconds(measured).c_str(), HumanSeconds(predicted).c_str(),
           measured / predicted, g.all_accepted);
    printf("  (the model assumes a dense proof vector; z ⊗ z here is mostly "
           "zeros — bit-decomposition\n   witnesses — and the homomorphic "
           "fold skips zero exponents, so measured < model)\n");
  }

  // Paper-scale extrapolation via the models (both systems), using the
  // measured constraint-count scaling of each benchmark.
  printf("\nPaper-scale estimates (both systems from models; Figure 4's "
         "regime):\n");
  {
    CostModel model128(m128, params);
    // LCS at the paper's m=300: |Z|=|C|=43 m^2 etc. (Figure 9 row).
    ComputationStats s;
    s.z_ginger = 43ull * 300 * 300;
    s.c_ginger = s.z_ginger;
    s.k = 6 * s.c_ginger;
    s.k2 = s.c_ginger;
    s.z_zaatar = s.z_ginger + s.k2;
    s.c_zaatar = s.c_ginger + s.k2;
    s.num_inputs = 600;
    s.num_outputs = 1;
    printf("  lcs(m=300):  Zaatar %s   Ginger %s   ratio %.1e\n",
           HumanSeconds(model128.ZaatarProverPerInstance(s)).c_str(),
           HumanSeconds(model128.GingerProverPerInstance(s)).c_str(),
           model128.GingerProverPerInstance(s) /
               model128.ZaatarProverPerInstance(s));
  }
  return 0;
}
