// Analyzer throughput: zaatar-lint runs in CI on every build, so its cost
// must stay a small fraction of the build itself. Benchmarks the individual
// passes (determinism fixpoint, structural rules, pipeline rules) and the
// full AnalyzeProgram composition over the largest suite instances the CI
// gate uses, plus a scaling series on PAM (the constraint-heaviest app).

#include <benchmark/benchmark.h>

#include <map>
#include <utility>

#include "src/analysis/analyzer.h"
#include "src/apps/suite.h"
#include "src/compiler/compile.h"
#include "src/field/fields.h"

namespace zaatar {
namespace {

const CompiledProgram<F128>& PamProgram(size_t m, size_t d) {
  // One compiled copy per size, reused across benchmark iterations.
  static std::map<std::pair<size_t, size_t>, CompiledProgram<F128>> cache;
  auto key = std::make_pair(m, d);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto app = MakePamApp(m, d);
    it = cache.emplace(key, CompileZlang<F128>(app.source)).first;
  }
  return it->second;
}

void BM_AnalyzeProgramFull(benchmark::State& state) {
  const auto& program =
      PamProgram(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    AnalysisReport report = AnalyzeProgram(program);
    benchmark::DoNotOptimize(report.NumErrors());
  }
  state.counters["constraints"] = static_cast<double>(
      program.zaatar.r1cs.NumConstraints());
}
BENCHMARK(BM_AnalyzeProgramFull)->Arg(4)->Arg(6)->Arg(8);

void BM_DeterminismPassGinger(benchmark::State& state) {
  const auto& program = PamProgram(8, 3);
  for (auto _ : state) {
    AnalysisReport report;
    DeterminismAnalysis<F128> det(LowerToIr(program.ginger),
                                  program.ginger.layout,
                                  AnalysisLayer::kGinger);
    det.Run(&report);
    benchmark::DoNotOptimize(report.NumErrors());
  }
}
BENCHMARK(BM_DeterminismPassGinger);

void BM_StructurePassR1cs(benchmark::State& state) {
  const auto& program = PamProgram(8, 3);
  for (auto _ : state) {
    AnalysisReport report;
    CheckStructure(program.zaatar.r1cs, &report);
    benchmark::DoNotOptimize(report.NumWarnings());
  }
}
BENCHMARK(BM_StructurePassR1cs);

void BM_QapShapePass(benchmark::State& state) {
  const auto& program = PamProgram(8, 3);
  for (auto _ : state) {
    AnalysisReport report;
    Qap<F128> qap(program.zaatar.r1cs);
    CheckQapShape(qap, &report);
    benchmark::DoNotOptimize(report.NumErrors());
  }
}
BENCHMARK(BM_QapShapePass);

}  // namespace
}  // namespace zaatar

BENCHMARK_MAIN();
