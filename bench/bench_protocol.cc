// Measures what the message-driven session layer costs on top of the raw
// argument: the same batch is run three ways at equal seeds —
//
//   in-process: the pre-refactor path (Argument API directly, no
//               serialization, no threads),
//   loopback:   ProverSession/VerifierSession exchanging serialized frames
//               over the in-memory loopback transport (two threads),
//   socketpair: the same sessions over a real AF_UNIX socketpair with
//               length-prefixed frames (two threads, kernel copies).
//
// Verdicts must be identical across all three paths (the harness contract);
// a divergence exits nonzero. Emits a human table plus a JSON baseline
// (default BENCH_protocol.json) with absolute times, overhead ratios, and
// the bytes moved per batch.
//
// Usage: bench_protocol [--smoke] [--out <path>]
//        [--recv-timeout-ms N] [--max-retries N]
//
// The hardening flags wire through to TransportOptions/BackoffPolicy (0 =
// wait forever / never retry); the JSON carries the recovery counters
// (transport_retries, transport_connections, deadline_exceeded) so a soak
// driver can assert a healthy channel stayed healthy.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/apps/harness.h"
#include "src/apps/suite.h"
#include "src/compiler/compile.h"
#include "src/obs/export.h"
#include "src/util/stopwatch.h"

namespace zaatar {
namespace {

struct Row {
  std::string app;
  size_t beta = 0;
  size_t proof_len = 0;
  double in_process_s = 0;   // whole batch, wall clock
  double loopback_s = 0;
  double socketpair_s = 0;
  size_t setup_bytes = 0;
  size_t proof_bytes = 0;  // sum over the batch

  // Per-phase breakdown of the loopback run, derived from its span tree
  // (all 0.0 under cmake -DZAATAR_TRACE=OFF).
  double query_gen_s = 0;
  double solve_s = 0;      // per instance
  double construct_s = 0;  // per instance
  double commit_s = 0;     // per instance
  double answer_s = 0;     // per instance
  double verify_s = 0;     // per instance

  // Recovery counters summed over the loopback + socketpair runs; all zero
  // on a healthy local channel.
  size_t transport_retries = 0;
  size_t transport_connections = 0;
  uint64_t deadline_exceeded = 0;

  double LoopbackOverhead() const { return loopback_s / in_process_s - 1.0; }
  double SocketpairOverhead() const {
    return socketpair_s / in_process_s - 1.0;
  }
};

// The pre-refactor path: same Prg consumption order as MeasureBatch
// (queries -> keys -> commit setup -> instances), then prove/verify in one
// address space with no serialization. Returns the verdicts for the
// cross-path comparison.
template <typename F>
std::vector<VerifyInstanceResult> RunInProcess(
    const App<F>& app, const CompiledProgram<F>& program, size_t beta,
    const PcpParams& params, uint64_t seed, double* seconds) {
  using Backend = ZaatarHarnessBackend<F>;
  using Arg = Argument<F, typename Backend::Adapter>;

  Stopwatch sw;
  Prg prg(seed);
  typename Backend::Prepared prep(program);
  auto queries = Backend::GenerateQueries(prep, params, prg);
  auto setup = Arg::Setup(std::move(queries), prg);
  std::vector<AppInstance<F>> instances;
  instances.reserve(beta);
  for (size_t i = 0; i < beta; i++) {
    instances.push_back(app.make_instance(prg));
  }

  std::vector<VerifyInstanceResult> results;
  results.reserve(beta);
  for (size_t i = 0; i < beta; i++) {
    std::vector<F> gw = program.SolveGinger(instances[i].inputs);
    auto vectors = Backend::BuildProofVectors(prep, program, gw);
    auto proof = Arg::Prove({&vectors.first, &vectors.second}, setup);
    std::vector<F> bound = program.BoundValues(
        instances[i].inputs, instances[i].expected_outputs);
    results.push_back(Arg::VerifyInstanceDetailed(setup, proof, bound));
  }
  *seconds = sw.Lap();
  return results;
}

bool VerdictsMatch(const std::vector<VerifyInstanceResult>& a,
                   const std::vector<VerifyInstanceResult>& b,
                   const char* label) {
  if (a.size() != b.size()) {
    fprintf(stderr, "FAIL: %s verdict count %zu != %zu\n", label, a.size(),
            b.size());
    return false;
  }
  for (size_t i = 0; i < a.size(); i++) {
    if (a[i].verdict != b[i].verdict) {
      fprintf(stderr, "FAIL: %s instance %zu: %s != %s\n", label, i,
              VerifyVerdictName(a[i].verdict), VerifyVerdictName(b[i].verdict));
      return false;
    }
  }
  return true;
}

bool BenchConfig(size_t lcs_size, size_t beta, uint64_t seed,
                 const std::string& trace_path, const MeasureOptions& base_opt,
                 std::vector<Row>* rows) {
  auto app = MakeLcsApp(lcs_size);
  auto program = CompileZlang<F128>(app.source);
  PcpParams params = PcpParams::Light();

  Row row;
  row.app = app.name;
  row.beta = beta;

  auto reference = RunInProcess(app, program, beta, params, seed,
                                &row.in_process_s);

  Stopwatch sw;
  MeasureOptions loopback_opt = base_opt;
  loopback_opt.link = MeasureOptions::Link::kLoopback;
  auto loopback = MeasureBatch<F128, ZaatarHarnessBackend<F128>>(
      app, program, beta, params, seed, loopback_opt);
  row.loopback_s = sw.Lap();
  row.proof_len = loopback.proof_len;
  row.setup_bytes = loopback.setup_message_bytes;
  row.proof_bytes = loopback.proof_message_bytes;
  row.query_gen_s = loopback.query_generation_s;
  row.solve_s = loopback.prover.solve_constraints_s;
  row.construct_s = loopback.prover.construct_proof_s;
  row.commit_s = loopback.prover.crypto_s;
  row.answer_s = loopback.prover.answer_queries_s;
  row.verify_s = loopback.verifier_per_instance_s;
  if (!trace_path.empty()) {
    std::ofstream trace_out(trace_path, std::ios::binary);
    if (!trace_out) {
      fprintf(stderr, "cannot open %s for writing\n", trace_path.c_str());
      return false;
    }
    trace_out << obs::ExportJson(loopback.trace.get(),
                                 loopback.metrics.get());
  }

  MeasureOptions pipe_opt = base_opt;
  pipe_opt.link = MeasureOptions::Link::kSocketpair;
  sw.Restart();
  auto pipe = MeasureBatch<F128, ZaatarHarnessBackend<F128>>(
      app, program, beta, params, seed, pipe_opt);
  row.socketpair_s = sw.Lap();

  row.transport_retries = loopback.transport_retries + pipe.transport_retries;
  row.transport_connections =
      loopback.transport_connections + pipe.transport_connections;
  row.deadline_exceeded =
      loopback.metrics->CounterValue("transport.deadline_exceeded") +
      pipe.metrics->CounterValue("transport.deadline_exceeded");

  for (const auto& r : reference) {
    if (!r.accepted()) {
      fprintf(stderr, "FAIL: in-process instance rejected: %s\n",
              r.detail.c_str());
      return false;
    }
  }
  if (!VerdictsMatch(reference, loopback.instance_results, "loopback") ||
      !VerdictsMatch(reference, pipe.instance_results, "socketpair")) {
    return false;
  }
  rows->push_back(row);
  return true;
}

void PrintRows(const std::vector<Row>& rows) {
  printf("%-10s %4s %9s %12s %12s %12s %8s %8s %10s %10s\n", "app", "beta",
         "proof_len", "inproc_ms", "loopback_ms", "sockpair_ms", "lb_ovh",
         "sp_ovh", "setup_B", "proof_B");
  for (const Row& r : rows) {
    printf("%-10s %4zu %9zu %12.2f %12.2f %12.2f %7.1f%% %7.1f%% %10zu %10zu\n",
           r.app.c_str(), r.beta, r.proof_len, r.in_process_s * 1e3,
           r.loopback_s * 1e3, r.socketpair_s * 1e3,
           r.LoopbackOverhead() * 100.0, r.SocketpairOverhead() * 100.0,
           r.setup_bytes, r.proof_bytes);
  }
}

bool WriteJson(const std::string& path, const std::vector<Row>& rows) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  fprintf(f, "{\n  \"bench\": \"protocol\",\n  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); i++) {
    const Row& r = rows[i];
    fprintf(f,
            "    {\"app\": \"%s\", \"beta\": %zu, \"proof_len\": %zu, "
            "\"in_process_s\": %.9f, \"loopback_s\": %.9f, "
            "\"socketpair_s\": %.9f, \"loopback_overhead\": %.4f, "
            "\"socketpair_overhead\": %.4f, \"setup_bytes\": %zu, "
            "\"proof_bytes\": %zu, \"query_gen_s\": %.9f, "
            "\"solve_s\": %.9f, \"construct_s\": %.9f, \"commit_s\": %.9f, "
            "\"answer_s\": %.9f, \"verify_s\": %.9f, "
            "\"transport_retries\": %zu, \"transport_connections\": %zu, "
            "\"deadline_exceeded\": %llu}%s\n",
            r.app.c_str(), r.beta, r.proof_len, r.in_process_s, r.loopback_s,
            r.socketpair_s, r.LoopbackOverhead(), r.SocketpairOverhead(),
            r.setup_bytes, r.proof_bytes, r.query_gen_s, r.solve_s,
            r.construct_s, r.commit_s, r.answer_s, r.verify_s,
            r.transport_retries, r.transport_connections,
            static_cast<unsigned long long>(r.deadline_exceeded),
            i + 1 < rows.size() ? "," : "");
  }
  fprintf(f, "  ]\n}\n");
  fclose(f);
  return true;
}

}  // namespace
}  // namespace zaatar

int main(int argc, char** argv) {
  using namespace zaatar;
  bool smoke = false;
  std::string out = "BENCH_protocol.json";
  std::string trace;
  uint64_t recv_timeout_ms = 0;
  uint32_t max_retries = 0;
  for (int i = 1; i < argc; i++) {
    if (strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace = argv[++i];
    } else if (strcmp(argv[i], "--recv-timeout-ms") == 0 && i + 1 < argc) {
      recv_timeout_ms = strtoull(argv[++i], nullptr, 10);
    } else if (strcmp(argv[i], "--max-retries") == 0 && i + 1 < argc) {
      max_retries = static_cast<uint32_t>(strtoull(argv[++i], nullptr, 10));
    } else {
      fprintf(stderr,
              "usage: %s [--smoke] [--out <path>] [--trace <path>]\n"
              "       [--recv-timeout-ms N] [--max-retries N]\n",
              argv[0]);
      return 2;
    }
  }

  MeasureOptions base_opt;
  base_opt.measure_native = false;
  base_opt.transport.recv_deadline = std::chrono::milliseconds(recv_timeout_ms);
  base_opt.transport.handshake_deadline =
      std::chrono::milliseconds(recv_timeout_ms);
  base_opt.backoff.max_retries = max_retries;

  std::vector<Row> rows;
  bool ok;
  if (smoke) {
    ok = BenchConfig(/*lcs_size=*/3, /*beta=*/2, /*seed=*/31, trace, base_opt,
                     &rows);
  } else {
    ok = BenchConfig(/*lcs_size=*/4, /*beta=*/4, /*seed=*/31, trace, base_opt,
                     &rows) &&
         BenchConfig(/*lcs_size=*/8, /*beta=*/4, /*seed=*/32, trace, base_opt,
                     &rows);
  }
  if (!ok) {
    return 1;
  }
  PrintRows(rows);
  if (!WriteJson(out, rows)) {
    return 1;
  }
  printf("\nwrote %s\n", out.c_str());
  return 0;
}
