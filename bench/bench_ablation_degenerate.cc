// Ablation for the §4 cost-benefit analysis: the degenerate computations
// where Zaatar's advantage collapses, and the encoding chooser that detects
// them (footnote 5: "the degenerate cases are detectable, so the compiler
// could simply choose to use Ginger over Zaatar").
//
// Dense degree-2 polynomial evaluation drives K2 to its maximum
// m(m+1)/2 ≈ K2* = (|Z|^2 - |Z|)/2, so |u_zaatar| ≈ |u_ginger| — versus the
// compiler-produced benchmarks where K2 << K2* and Zaatar's proof is
// thousands of times shorter. Expected shape: u_z/u_g ~ 1 (slightly above,
// within the paper's (1 + 2/(|Z|+1)) bound) for the degenerate family;
// orders of magnitude below 1 elsewhere; chooser flips accordingly.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/degenerate.h"
#include "src/constraints/transform.h"

namespace zaatar {
namespace {

void DegenerateRow(size_t m, const CostModel& model, Prg& prg) {
  auto d = BuildDegenerateQuadForm<F128>(m, prg);
  // The uniform (paper §4) transform: every product becomes an auxiliary.
  auto t = GingerToZaatar(d.ginger, TransformOptions{false});

  // Sanity: the hand encoding is satisfiable end-to-end.
  auto x = prg.NextFieldVector<F128>(m);
  auto w = d.MakeAssignment(x);
  bool ok = d.ginger.IsSatisfied(w) &&
            t.r1cs.IsSatisfied(t.ExtendAssignment(w));

  ComputationStats s;
  s.z_ginger = d.ginger.layout.num_unbound;
  s.c_ginger = d.ginger.NumConstraints();
  s.k = d.ginger.AdditiveTermCount();
  s.k2 = d.ginger.DistinctQuadTermCount();
  s.z_zaatar = t.r1cs.layout.num_unbound;
  s.c_zaatar = t.r1cs.NumConstraints();
  s.num_inputs = m;
  s.num_outputs = 1;
  s.t_local_s = 1e-8 * m * m;

  double ug = static_cast<double>(s.GingerProofLen());
  double uz = static_cast<double>(s.ZaatarProofLen());
  const char* choice =
      model.ChooseEncoding(s) == CostModel::Encoding::kGinger ? "Ginger"
                                                              : "Zaatar";
  printf("%-28zu %8zu %10.0f %10.0f %10.0f %8.2f %10s %s\n", m, s.k2,
         CostModel::K2Star(s), ug, uz, uz / ug, choice,
         ok ? "" : "** UNSAT **");
}

template <typename F>
void CompilerRow(const App<F>& app, const CostModel& model) {
  auto p = CompileZlang<F>(app.source);
  ComputationStats s = ComputeStats(p, 1e-6);
  double ug = static_cast<double>(s.GingerProofLen());
  double uz = static_cast<double>(s.ZaatarProofLen());
  const char* choice =
      model.ChooseEncoding(s) == CostModel::Encoding::kGinger ? "Ginger"
                                                              : "Zaatar";
  printf("%-28s %8zu %10.0f %10s %10s %8.5f %10s\n", app.name.c_str(), s.k2,
         CostModel::K2Star(s), bench::HumanCount(ug).c_str(),
         bench::HumanCount(uz).c_str(), uz / ug, choice);
}

}  // namespace
}  // namespace zaatar

int main() {
  using namespace zaatar;
  printf("Ablation: degenerate computations and the encoding chooser "
         "(paper §4)\n\n");
  MicroCosts micro = bench::MeasureMicroCosts<F128>();
  CostModel model(micro, PcpParams{});
  Prg prg(444);

  printf("Dense degree-2 polynomial evaluation (hand-encoded, K2 maximal):\n");
  printf("%-28s %8s %10s %10s %10s %8s %10s\n", "m", "K2", "K2*", "|u_g|",
         "|u_z|", "uz/ug", "chooser");
  bench::PrintRule(95);
  for (size_t m : {8u, 16u, 32u, 64u, 128u}) {
    DegenerateRow(m, model, prg);
  }

  printf("\nCompiler-produced benchmarks (K2 << K2*, the common case):\n");
  printf("%-28s %8s %10s %10s %10s %8s %10s\n", "computation", "K2", "K2*",
         "|u_g|", "|u_z|", "uz/ug", "chooser");
  bench::PrintRule(95);
  CompilerRow(MakeLcsApp(12), model);
  CompilerRow(MakeMatMulApp(6), model);
  CompilerRow(MakeFannkuchApp(2, 4, 8), model);

  printf("\nWorst-case bound check (§4): |u_z| <= |u_g| · (1 + 2/(|Z|+1)) "
         "even when K2 = K2_max.\n");
  return 0;
}
