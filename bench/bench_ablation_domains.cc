// Ablation (DESIGN.md §7): the prover's polynomial pipeline under three
// evaluation-domain strategies, at growing QAP degree n:
//
//   1. paper-faithful: arithmetic-progression points {0..n} over the 128-bit
//      field, subproduct-tree interpolation + CRT/NTT multiplication +
//      Newton division — the 3·f·|C|·log^2|C| pipeline of Appendix A.3;
//   2. naive: O(n^2) Lagrange interpolation (what "implemented naively"
//      costs, for contrast);
//   3. roots-of-unity: a modern SNARK-style domain over an NTT-friendly
//      62-bit prime, where interpolation is a single inverse NTT — the
//      design Zaatar's successors adopted.
//
// Expected shape: (1) grows ~n log^2 n, (2) ~n^2, (3) ~n log n with a much
// smaller constant (one transform instead of a tree of multiplications).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/poly/algorithms.h"
#include "src/poly/ntt.h"

namespace zaatar {
namespace {

double TimeFaithful(size_t n, Prg& prg) {
  std::vector<F128> points(n + 1);
  for (size_t i = 0; i <= n; i++) {
    points[i] = F128::FromUint(i);
  }
  auto ea = prg.NextFieldVector<F128>(n + 1);
  auto eb = prg.NextFieldVector<F128>(n + 1);
  auto ec = prg.NextFieldVector<F128>(n + 1);
  Stopwatch sw;
  SubproductTree<F128> tree(points);
  Polynomial<F128> pa = tree.Interpolate(ea);
  Polynomial<F128> pb = tree.Interpolate(eb);
  Polynomial<F128> pc = tree.Interpolate(ec);
  Polynomial<F128> pw = pa * pb - pc;
  Polynomial<F128> d = tree.Root().ShiftDown(1);
  auto qr = DivRem(pw, d);
  (void)qr;
  return sw.ElapsedSeconds();
}

double TimeNaiveInterpolation(size_t n, Prg& prg) {
  std::vector<F128> points(n + 1);
  for (size_t i = 0; i <= n; i++) {
    points[i] = F128::FromUint(i);
  }
  auto values = prg.NextFieldVector<F128>(n + 1);
  Stopwatch sw;
  auto p = InterpolateNaive(points, values);
  (void)p;
  // One interpolation of the three the prover needs; scale accordingly.
  return 3 * sw.ElapsedSeconds();
}

double TimeRootsOfUnity(size_t n, Prg& prg) {
  // Degree-n interpolation = inverse NTT of size >= n+1; P_w needs a
  // double-size forward/inverse pair for the product, then division is a
  // pointwise multiply by precomputed inverse-domain values. Model the
  // pipeline as: 3 inverse NTTs (A, B, C) + 1 product convolution + 1
  // pointwise division pass.
  size_t log_n = 1;
  while ((size_t{1} << log_n) < n + 1) {
    log_n++;
  }
  const NttPlan& plan = GetNttPlan(0, log_n);
  const NttPlan& plan2 = GetNttPlan(0, log_n + 1);
  const MontField64& f = plan.field();
  std::vector<uint64_t> a(plan.size()), b(plan.size()), c(plan.size());
  for (auto* v : {&a, &b, &c}) {
    for (auto& x : *v) {
      x = prg.NextU64() % f.modulus();
    }
  }
  Stopwatch sw;
  plan.Inverse(a.data());
  plan.Inverse(b.data());
  plan.Inverse(c.data());
  std::vector<uint64_t> wa(plan2.size(), 0), wb(plan2.size(), 0);
  std::copy(a.begin(), a.end(), wa.begin());
  std::copy(b.begin(), b.end(), wb.begin());
  plan2.Forward(wa.data());
  plan2.Forward(wb.data());
  for (size_t i = 0; i < plan2.size(); i++) {
    wa[i] = f.Mul(wa[i], wb[i]);
  }
  plan2.Inverse(wa.data());
  for (size_t i = 0; i < plan2.size(); i++) {
    wa[i] = f.Mul(wa[i], a[i % plan.size()]);  // stand-in pointwise divide
  }
  return sw.ElapsedSeconds();
}

}  // namespace
}  // namespace zaatar

int main() {
  using namespace zaatar;
  printf("Ablation: prover polynomial pipeline by evaluation domain\n\n");
  printf("%8s %18s %18s %18s\n", "n=|C|", "paper(subprod)", "naive O(n^2)",
         "roots-of-unity");
  bench::PrintRule(70);
  Prg prg(99);
  for (size_t n : {512u, 1024u, 2048u, 4096u, 8192u}) {
    double faithful = TimeFaithful(n, prg);
    double naive = n <= 512 ? TimeNaiveInterpolation(n, prg) : -1;
    double rou = TimeRootsOfUnity(n, prg);
    printf("%8zu %18s %18s %18s\n", n,
           bench::HumanSeconds(faithful).c_str(),
           bench::HumanSeconds(naive).c_str(),
           bench::HumanSeconds(rou).c_str());
  }
  printf("\n(naive column measured at n=512 only -- ~9 s already; extrapolate quadratically)\n");
  return 0;
}
