// Figure 9 (table): computation encodings — number of variables and
// constraints in both systems' representations, and the resulting proof
// vector lengths:
//   |Z_ginger| |Z_zaatar| |C_ginger| |C_zaatar| |u_ginger| |u_zaatar|
//
// Expected shape: |Z| and |C| are close between the systems (Zaatar adds K2
// auxiliaries); |u_ginger| = |Z|+|Z|^2 dwarfs |u_zaatar| = |Z|+|C|+1 — the
// core of the paper's contribution. Also checks §4's accounting identities.

#include <cstdio>

#include "bench/bench_util.h"

namespace zaatar {
namespace {

template <typename F>
void Row(const App<F>& app) {
  auto p = CompileZlang<F>(app.source);
  printf("%-38s %10zu %10zu %10zu %10zu %12s %12s %8.0fx\n",
         app.name.c_str(), p.ZGinger(), p.ZZaatar(), p.CGinger(), p.CZaatar(),
         bench::HumanCount(static_cast<double>(p.UGinger())).c_str(),
         bench::HumanCount(static_cast<double>(p.UZaatar())).c_str(),
         static_cast<double>(p.UGinger()) / static_cast<double>(p.UZaatar()));
  // §4 identities: |Z_zaatar| = |Z_ginger| + K2', |C_zaatar| = |C_ginger| +
  // K2', where K2' <= K2 (folding optimization).
  size_t k2_used = p.ZZaatar() - p.ZGinger();
  if (p.CZaatar() - p.CGinger() != k2_used ||
      k2_used > p.ginger.DistinctQuadTermCount()) {
    printf("  ** accounting identity violated! **\n");
  }
}

template <typename F>
void UniformRow(const App<F>& app) {
  // The paper's uniform transform (no folding): |C_z| = |C_g| + K2 exactly.
  auto p = CompileZlang<F>(app.source, TransformOptions{false});
  size_t k2 = p.ginger.DistinctQuadTermCount();
  printf("%-38s K2=%-8zu |C_z|=%zu (=|C_g|+K2: %s)\n", app.name.c_str(), k2,
         p.CZaatar(),
         p.CZaatar() == p.CGinger() + k2 ? "yes" : "** NO **");
}

}  // namespace
}  // namespace zaatar

int main() {
  using namespace zaatar;
  printf("Figure 9: computation encodings (counts) and proof lengths\n\n");
  printf("%-38s %10s %10s %10s %10s %12s %12s %8s\n", "computation",
         "|Z_g|", "|Z_z|", "|C_g|", "|C_z|", "|u_ginger|", "|u_zaatar|",
         "u_g/u_z");
  bench::PrintRule(120);
  Row(MakePamApp(8, 16));
  Row(MakeRootFindApp(6, 8));
  Row(MakeApspApp(4));
  Row(MakeFannkuchApp(3, 5, 12));
  Row(MakeLcsApp(16));
  Row(MakeMatMulApp(6));
  bench::PrintRule(120);

  printf("\nScaling within each family (constraints should track the "
         "complexity exponent):\n");
  for (size_t m : {8u, 16u, 32u}) {
    auto p = CompileZlang<F128>(LcsSource(m));
    printf("  lcs m=%-3zu |C_g|=%-8zu |C_g|/m^2=%.1f\n", m, p.CGinger(),
           static_cast<double>(p.CGinger()) / (m * m));
  }
  for (size_t m : {2u, 3u, 4u}) {
    auto p = CompileZlang<F128>(ApspSource(m));
    printf("  apsp m=%-2zu |C_g|=%-8zu |C_g|/m^3=%.1f\n", m, p.CGinger(),
           static_cast<double>(p.CGinger()) / (m * m * m));
  }

  printf("\nUniform (paper §4) transform accounting, folding disabled:\n");
  UniformRow(MakeLcsApp(8));
  UniformRow(MakeFannkuchApp(2, 4, 8));
  UniformRow(MakeApspApp(2));
  return 0;
}
