// Figure 5 (table): per-instance cost of the Zaatar prover compared to local
// computation, decomposed into its phases:
//   local | solve constraints | construct u | crypto ops | answer queries | e2e
//
// Expected shape (paper): e2e is orders of magnitude above local; construct-u
// ~40% and crypto ~35% of prover time, the remainder answering queries.

#include <cstdio>

#include "bench/bench_util.h"

namespace zaatar {
namespace {

using bench::HumanSeconds;

double g_total_e2e = 0, g_total_crypto = 0, g_total_u = 0, g_total_answer = 0;

template <typename F>
void Row(const App<F>& app, const PcpParams& params, size_t beta) {
  auto program = CompileZlang<F>(app.source);
  auto m = MeasureZaatarBatch(app, program, beta, params, /*seed=*/7);
  double e2e = m.prover.Total();
  printf("%-38s %10s %12s %12s %12s %12s %12s  %s\n", app.name.c_str(),
         HumanSeconds(m.stats.t_local_s).c_str(),
         HumanSeconds(m.prover.solve_constraints_s).c_str(),
         HumanSeconds(m.prover.construct_proof_s).c_str(),
         HumanSeconds(m.prover.crypto_s).c_str(),
         HumanSeconds(m.prover.answer_queries_s).c_str(),
         HumanSeconds(e2e).c_str(),
         m.all_accepted ? "ok" : "** REJECTED **");
  g_total_e2e += e2e;
  g_total_crypto += m.prover.crypto_s;
  g_total_u += m.prover.construct_proof_s;
  g_total_answer += m.prover.answer_queries_s;
}

}  // namespace
}  // namespace zaatar

int main() {
  using namespace zaatar;
  PcpParams params;
  printf("Figure 5: per-instance Zaatar prover cost vs local execution\n\n");
  printf("%-38s %10s %12s %12s %12s %12s %12s\n", "computation (Psi)",
         "local", "solve", "construct u", "crypto ops", "answer q",
         "e2e CPU");
  bench::PrintRule(120);
  const size_t kBeta = 2;
  Row(MakePamApp(8, 16), params, kBeta);
  Row(MakeRootFindApp(6, 8), params, kBeta);
  Row(MakeApspApp(4), params, kBeta);
  Row(MakeFannkuchApp(3, 5, 12), params, kBeta);
  Row(MakeLcsApp(16), params, kBeta);
  bench::PrintRule(120);
  printf("\nPhase mix across the suite (paper: ~40%% construct u, ~35%% "
         "crypto, remainder answering queries):\n");
  printf("  construct u: %4.1f%%   crypto: %4.1f%%   answer queries: %4.1f%%\n",
         100 * g_total_u / g_total_e2e, 100 * g_total_crypto / g_total_e2e,
         100 * g_total_answer / g_total_e2e);
  return 0;
}
