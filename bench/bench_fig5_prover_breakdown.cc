// Figure 5 (table): per-instance cost of the Zaatar prover compared to local
// computation, decomposed into its phases:
//   local | solve constraints | construct u | crypto ops | answer queries | e2e
//
// Expected shape (paper): e2e is orders of magnitude above local; construct-u
// ~40% and crypto ~35% of prover time, the remainder answering queries.
//
// --json [--out PATH]: instead of the table, emit BENCH_ntt.json (schema
// ntt.pipeline.v1) — the residue-pipeline ComputeH decomposed into
// interpolate / mul / divide at |C| in {256, 1024, 4096} over synthetic
// R1CS, with the Figure 3 model 3·f·|C|·log2²|C| as the yardstick and the
// frozen coefficient-form path timed as a baseline at |C| <= 1024. ci.sh
// validates the schema and gates construct_proof / model <= 6 at |C| = 1024.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/trace.h"

namespace zaatar {
namespace {

using bench::HumanSeconds;

double g_total_e2e = 0, g_total_crypto = 0, g_total_u = 0, g_total_answer = 0;

template <typename F>
void Row(const App<F>& app, const PcpParams& params, size_t beta) {
  auto program = CompileZlang<F>(app.source);
  auto m = MeasureZaatarBatch(app, program, beta, params, /*seed=*/7);
  double e2e = m.prover.Total();
  printf("%-38s %10s %12s %12s %12s %12s %12s  %s\n", app.name.c_str(),
         HumanSeconds(m.stats.t_local_s).c_str(),
         HumanSeconds(m.prover.solve_constraints_s).c_str(),
         HumanSeconds(m.prover.construct_proof_s).c_str(),
         HumanSeconds(m.prover.crypto_s).c_str(),
         HumanSeconds(m.prover.answer_queries_s).c_str(),
         HumanSeconds(e2e).c_str(),
         m.all_accepted ? "ok" : "** REJECTED **");
  g_total_e2e += e2e;
  g_total_crypto += m.prover.crypto_s;
  g_total_u += m.prover.construct_proof_s;
  g_total_answer += m.prover.answer_queries_s;
}

int TableMain() {
  PcpParams params;
  printf("Figure 5: per-instance Zaatar prover cost vs local execution\n\n");
  printf("%-38s %10s %12s %12s %12s %12s %12s\n", "computation (Psi)",
         "local", "solve", "construct u", "crypto ops", "answer q",
         "e2e CPU");
  bench::PrintRule(120);
  const size_t kBeta = 2;
  Row(MakePamApp(8, 16), params, kBeta);
  Row(MakeRootFindApp(6, 8), params, kBeta);
  Row(MakeApspApp(4), params, kBeta);
  Row(MakeFannkuchApp(3, 5, 12), params, kBeta);
  Row(MakeLcsApp(16), params, kBeta);
  bench::PrintRule(120);
  printf("\nPhase mix across the suite (paper: ~40%% construct u, ~35%% "
         "crypto, remainder answering queries):\n");
  printf("  construct u: %4.1f%%   crypto: %4.1f%%   answer queries: %4.1f%%\n",
         100 * g_total_u / g_total_e2e, 100 * g_total_crypto / g_total_e2e,
         100 * g_total_answer / g_total_e2e);
  return 0;
}

// ---- --json mode: the NTT-pipeline breakdown -------------------------------

using F = F128;

// Synthetic R1CS with exactly m constraints v0 · v_{1+j} = v_{1+m+j} and a
// satisfying witness with distinct values — the ComputeH cost depends only
// on the shape, and this keeps |C| an exact power of two (the apps suite
// cannot pin it).
struct SyntheticSystem {
  R1cs<F> cs;
  std::vector<F> witness;
};

SyntheticSystem MakeSynthetic(size_t m, Prg& prg) {
  SyntheticSystem s;
  s.cs.layout = {1 + 2 * m, 0, 0};
  s.witness.resize(1 + 2 * m);
  s.witness[0] = prg.NextNonzeroField<F>();
  for (size_t j = 0; j < m; j++) {
    R1csConstraint<F> c;
    c.a = LinearCombination<F>::Variable(0);
    c.b = LinearCombination<F>::Variable(static_cast<uint32_t>(1 + j));
    c.c = LinearCombination<F>::Variable(static_cast<uint32_t>(1 + m + j));
    s.cs.constraints.push_back(c);
    s.witness[1 + j] = prg.NextNonzeroField<F>();
    s.witness[1 + m + j] = s.witness[0] * s.witness[1 + j];
  }
  return s;
}

// Per-multiply field cost, measured inline (the only model parameter the
// construct-proof term uses; no need for the full crypto microbenchmarks).
double MeasureFieldMulSeconds() {
  Prg prg(0xF00D);
  F x = prg.NextNonzeroField<F>();
  F y = prg.NextNonzeroField<F>();
  const size_t reps = 200000;
  Stopwatch sw;
  for (size_t i = 0; i < reps; i++) {
    x *= y;
  }
  double f = sw.ElapsedSeconds() / static_cast<double>(reps);
  if (x.IsZero()) {  // keep the loop alive
    printf("unreachable\n");
  }
  return f;
}

struct SizeResult {
  size_t c = 0;
  double construct_s = 0, interp_s = 0, mul_s = 0, divide_s = 0;
  double model_s = 0, ratio = 0;
  double naive_s = -1;  // < 0: not measured at this size
};

SizeResult MeasureSize(size_t m, size_t beta, double f_seconds) {
  Prg prg(0xBE7A + m);
  SyntheticSystem s = MakeSynthetic(m, prg);
  Qap<F> qap(s.cs);
  qap.WarmProver();  // one-time setup outside the measured region

  obs::Tracer tracer;
  F sink = F::Zero();
  {
    obs::ScopedThreadTracer scoped(&tracer);
    for (size_t i = 0; i < beta; i++) {
      auto hr = qap.ComputeH(s.witness);
      sink += hr.h[m / 2];
      if (!hr.exact) {
        fprintf(stderr, "synthetic witness rejected at |C| = %zu\n", m);
      }
    }
  }
  double b = static_cast<double>(beta);
  SizeResult r;
  r.c = m;
  r.construct_s = tracer.SumSeconds("qap.compute_h") / b;
  r.interp_s = tracer.SumSeconds("qap.interpolate") / b;
  r.mul_s = tracer.SumSeconds("qap.mul") / b;
  r.divide_s = tracer.SumSeconds("qap.divide") / b;
  double lg = std::log2(static_cast<double>(m));
  r.model_s = 3.0 * f_seconds * static_cast<double>(m) * lg * lg;
  r.ratio = r.construct_s / r.model_s;

  if (m <= 1024) {
    // Pre-refactor yardstick: the frozen coefficient-form pipeline, one
    // instance (it is the slow path; EXPERIMENTS.md records the history).
    Stopwatch sw;
    auto hr = qap.ComputeHNaive(s.witness);
    r.naive_s = sw.ElapsedSeconds();
    sink += hr.h[m / 2];
  }
  if (sink.IsZero()) {
    printf("# unlikely checksum\n");
  }
  return r;
}

int JsonMain(const char* out_path) {
  const size_t kBeta = 4;  // steady-state: caches warm, per-instance cost
  double f_seconds = MeasureFieldMulSeconds();
  std::vector<SizeResult> results;
  for (size_t m : {size_t{256}, size_t{1024}, size_t{4096}}) {
    results.push_back(MeasureSize(m, kBeta, f_seconds));
  }

  std::string json;
  char buf[256];
  json += "{\n  \"schema\": \"ntt.pipeline.v1\",\n";
  snprintf(buf, sizeof(buf),
           "  \"field\": \"%s\",\n  \"beta\": %zu,\n"
           "  \"f_seconds\": %.3e,\n  \"sizes\": [\n",
           F::kName, kBeta, f_seconds);
  json += buf;
  for (size_t i = 0; i < results.size(); i++) {
    const SizeResult& r = results[i];
    snprintf(buf, sizeof(buf),
             "    {\"c\": %zu, \"construct_proof_s\": %.6e, "
             "\"interpolate_s\": %.6e, \"mul_s\": %.6e, \"divide_s\": %.6e, "
             "\"model_s\": %.6e, \"model_ratio\": %.3f, ",
             r.c, r.construct_s, r.interp_s, r.mul_s, r.divide_s, r.model_s,
             r.ratio);
    json += buf;
    if (r.naive_s >= 0) {
      snprintf(buf, sizeof(buf), "\"naive_s\": %.6e}", r.naive_s);
    } else {
      snprintf(buf, sizeof(buf), "\"naive_s\": null}");
    }
    json += buf;
    json += (i + 1 < results.size()) ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  if (out_path != nullptr) {
    FILE* fp = fopen(out_path, "w");
    if (fp == nullptr) {
      fprintf(stderr, "cannot open %s\n", out_path);
      return 1;
    }
    fputs(json.c_str(), fp);
    fclose(fp);
    fprintf(stderr, "wrote %s\n", out_path);
  } else {
    fputs(json.c_str(), stdout);
  }
  return 0;
}

}  // namespace
}  // namespace zaatar

int main(int argc, char** argv) {
  bool json = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      fprintf(stderr, "usage: %s [--json [--out PATH]]\n", argv[0]);
      return 2;
    }
  }
  return json ? zaatar::JsonMain(out_path) : zaatar::TableMain();
}
