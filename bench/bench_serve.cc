// bench_serve: measures what the zaatar-serve daemon's cross-request
// amortization cache buys. One in-process daemon serves rows of {1, 2, 4}
// concurrent prover clients over AF_UNIX; the FIRST hello of the run pays
// the full per-Ψ build (query generation + commit setup) and every later
// hello — same client or not — reuses it. The emitted BENCH_serve.json
// (schema zaatar.serve.bench.v1) carries the cold/warm handshake split and
// the cache counters; ci.sh gates hits > 0 so the amortization claim is
// continuously verified, not just narrated.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/pcp/params.h"
#include "src/serve/client.h"
#include "src/serve/psi_material.h"
#include "src/serve/server.h"
#include "src/util/stopwatch.h"

namespace zaatar {
namespace {

struct Row {
  size_t clients = 0;
  size_t instances_per_client = 0;
  size_t instances = 0;
  size_t accepted = 0;
  double total_seconds = 0;
  double hello_max_s = 0;  // slowest handshake in the row
  double hello_min_s = 0;  // fastest (warm path when the cache is primed)
  uint64_t resource_retries = 0;
};

bool RunRow(const std::string& socket_path, const std::string& psi,
            size_t clients, size_t instances_per_client, uint64_t seed_base,
            Row* row) {
  row->clients = clients;
  row->instances_per_client = instances_per_client;
  std::vector<serve::ServeBatchReport> reports(clients);
  std::vector<Status> failures(clients, Status::Ok());
  Stopwatch total;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; c++) {
    threads.emplace_back([&, c] {
      serve::ServeClient::Options copt;
      copt.backoff.max_retries = 16;
      copt.backoff.jitter_seed = seed_base + c;
      auto client = serve::ServeClient::Connect(socket_path, copt);
      if (!client.ok()) {
        failures[c] = client.status();
        return;
      }
      auto report = serve::RunServeBatchF128(
          *client, psi, "bench-" + std::to_string(c), instances_per_client,
          seed_base + 100 * c);
      if (!report.ok()) {
        failures[c] = report.status();
        return;
      }
      reports[c] = *report;
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  row->total_seconds = total.ElapsedSeconds();
  row->hello_min_s = 1e30;
  for (size_t c = 0; c < clients; c++) {
    if (!failures[c].ok()) {
      std::fprintf(stderr, "client %zu failed: %s\n", c,
                   failures[c].ToString().c_str());
      return false;
    }
    row->instances += reports[c].instances;
    row->accepted += reports[c].accepted;
    row->resource_retries += reports[c].resource_retries;
    row->hello_max_s = std::max(row->hello_max_s, reports[c].hello_seconds);
    row->hello_min_s = std::min(row->hello_min_s, reports[c].hello_seconds);
  }
  return true;
}

bool WriteJson(const std::string& path, const std::string& psi,
               const std::vector<Row>& rows,
               const serve::AmortizationCache::Stats& cache, double cold_s,
               double warm_s) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  out << "{\n  \"schema\": \"zaatar.serve.bench.v1\",\n";
  out << "  \"psi\": \"" << psi << "\",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); i++) {
    const Row& r = rows[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"clients\": %zu, \"instances_per_client\": %zu, "
                  "\"instances\": %zu, \"accepted\": %zu, "
                  "\"total_seconds\": %.6f, \"hello_max_s\": %.6f, "
                  "\"hello_min_s\": %.6f, \"resource_retries\": %llu}%s\n",
                  r.clients, r.instances_per_client, r.instances, r.accepted,
                  r.total_seconds, r.hello_max_s, r.hello_min_s,
                  static_cast<unsigned long long>(r.resource_retries),
                  i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"cache\": {\"hits\": %llu, \"misses\": %llu, "
                "\"evictions\": %llu, \"build_failures\": %llu, "
                "\"entries\": %zu},\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                static_cast<unsigned long long>(cache.evictions),
                static_cast<unsigned long long>(cache.build_failures),
                cache.entries);
  out << buf;
  const double speedup = warm_s > 0 ? cold_s / warm_s : 0;
  std::snprintf(buf, sizeof(buf),
                "  \"amortization\": {\"cold_hello_s\": %.6f, "
                "\"warm_hello_s\": %.6f, \"speedup\": %.2f}\n}\n",
                cold_s, warm_s, speedup);
  out << buf;
  return true;
}

}  // namespace
}  // namespace zaatar

int main(int argc, char** argv) {
  using namespace zaatar;
  bool smoke = false;
  std::string out = "BENCH_serve.json";
  std::string psi = "lcs/4";
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--psi") == 0 && i + 1 < argc) {
      psi = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out PATH] [--psi ID]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::string socket_path =
      "/tmp/zaatar_bench_serve." + std::to_string(::getpid()) + ".sock";
  serve::ServerOptions sopt;
  sopt.socket_path = socket_path;
  sopt.workers = 4;
  sopt.max_queue = 64;
  sopt.max_connections = 16;
  serve::Server server(sopt, serve::MakePsiBuilder(PcpParams::Light()));
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "daemon start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  const std::vector<size_t> client_counts =
      smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4};
  const size_t instances = smoke ? 2 : 4;
  std::vector<Row> rows;
  // The first row's slowest hello is the cold build; every handshake after
  // row 0 rides the cache. hello_min of the last row is the steady-state
  // warm path.
  for (size_t i = 0; i < client_counts.size(); i++) {
    Row row;
    if (!RunRow(socket_path, psi, client_counts[i], instances,
                /*seed_base=*/1000 * (i + 1), &row)) {
      server.Stop();
      return 1;
    }
    rows.push_back(row);
    std::printf(
        "clients=%zu instances=%zu accepted=%zu total=%.4fs "
        "hello=[%.4fs, %.4fs]\n",
        row.clients, row.instances, row.accepted, row.total_seconds,
        row.hello_min_s, row.hello_max_s);
  }

  const auto cache = server.cache().stats();
  server.Stop();
  ::unlink(socket_path.c_str());

  const double cold_s = rows.front().hello_max_s;
  const double warm_s = rows.back().hello_min_s;
  std::printf("cache hits=%llu misses=%llu  cold hello=%.4fs warm=%.4fs\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses), cold_s, warm_s);
  if (!WriteJson(out, psi, rows, cache, cold_s, warm_s)) {
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  if (cache.hits == 0) {
    std::fprintf(stderr, "amortization failure: zero cache hits\n");
    return 1;
  }
  if (rows.back().accepted != rows.back().instances) {
    std::fprintf(stderr, "soundness failure: rejected honest instances\n");
    return 1;
  }
  return 0;
}
