// Reproduces the §5.1 microbenchmark table: per-operation CPU costs
//   e (encrypt), d (decrypt), h (ciphertext fold), f_lazy, f (field mul),
//   f_div (field division), c (pseudorandom field element)
// for the 128-bit and 220-bit field sizes, via google-benchmark.
//
// Paper reference values (Xeon E5540, 2009-era): e=65us d=170us h=91us
// f=210ns fdiv=2us c=160ns (128-bit row). Absolute numbers differ on modern
// hardware; the *ratios* (crypto ops ~ 100-1000x field ops) are the shape
// that drives every downstream figure.

#include <benchmark/benchmark.h>

#include "src/crypto/elgamal.h"
#include "src/crypto/prg.h"
#include "src/field/fields.h"

namespace zaatar {
namespace {

template <typename F>
void BM_FieldMul_f(benchmark::State& state) {
  Prg prg(1);
  F x = prg.template NextNonzeroField<F>();
  F y = prg.template NextNonzeroField<F>();
  for (auto _ : state) {
    x *= y;
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_FieldMul_f<F128>);
BENCHMARK(BM_FieldMul_f<F220>);

template <typename F>
void BM_FieldAdd(benchmark::State& state) {
  Prg prg(2);
  F x = prg.template NextNonzeroField<F>();
  F y = prg.template NextNonzeroField<F>();
  for (auto _ : state) {
    x += y;
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_FieldAdd<F128>);
BENCHMARK(BM_FieldAdd<F220>);

template <typename F>
void BM_FieldDiv_fdiv(benchmark::State& state) {
  Prg prg(3);
  F x = prg.template NextNonzeroField<F>();
  for (auto _ : state) {
    x = x.Inverse() + F::One();
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_FieldDiv_fdiv<F128>);
BENCHMARK(BM_FieldDiv_fdiv<F220>);

template <typename F>
void BM_PrgElement_c(benchmark::State& state) {
  Prg prg(4);
  for (auto _ : state) {
    F x = prg.template NextField<F>();
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_PrgElement_c<F128>);
BENCHMARK(BM_PrgElement_c<F220>);

template <typename F>
void BM_Encrypt_e(benchmark::State& state) {
  using EG = ElGamal<F>;
  Prg prg(5);
  auto kp = EG::GenerateKeys(prg);
  F m = prg.template NextField<F>();
  for (auto _ : state) {
    auto ct = EG::Encrypt(kp.pk, m, prg);
    benchmark::DoNotOptimize(ct);
  }
}
BENCHMARK(BM_Encrypt_e<F128>);
BENCHMARK(BM_Encrypt_e<F220>);

template <typename F>
void BM_Decrypt_d(benchmark::State& state) {
  using EG = ElGamal<F>;
  Prg prg(6);
  auto kp = EG::GenerateKeys(prg);
  auto ct = EG::Encrypt(kp.pk, prg.template NextField<F>(), prg);
  for (auto _ : state) {
    auto pt = EG::DecryptToGroup(kp.sk, kp.pk, ct);
    benchmark::DoNotOptimize(pt);
  }
}
BENCHMARK(BM_Decrypt_d<F128>);
BENCHMARK(BM_Decrypt_d<F220>);

// h: one homomorphic fold step — ciphertext^scalar plus accumulate. This is
// the per-element cost of the prover's commitment Enc(pi(r)).
template <typename F>
void BM_HomomorphicFold_h(benchmark::State& state) {
  using EG = ElGamal<F>;
  Prg prg(7);
  auto kp = EG::GenerateKeys(prg);
  auto ct = EG::Encrypt(kp.pk, prg.template NextField<F>(), prg);
  auto acc = ct;
  F s = prg.template NextNonzeroField<F>();
  for (auto _ : state) {
    acc = acc * ct.Pow(s);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_HomomorphicFold_h<F128>);
BENCHMARK(BM_HomomorphicFold_h<F220>);

}  // namespace
}  // namespace zaatar

BENCHMARK_MAIN();
