// Figure 8: prover running time as the input size doubles twice per
// benchmark. Zaatar's prover scales (near-)linearly in the constraint count;
// Ginger's scales quadratically — the growth factors per size step are the
// reproduced shape.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_util.h"

namespace zaatar {
namespace {

template <typename F>
void Series(const std::string& label,
            const std::vector<App<F>>& apps, const PcpParams& params,
            const MicroCosts& micro) {
  printf("\n%s\n", label.c_str());
  printf("  %-34s %10s %12s %14s %9s %9s\n", "size", "|C_zaatar|",
         "Zaatar(meas)", "Ginger(model)", "Z growth", "G growth");
  CostModel model(micro, params);
  double prev_z = 0, prev_g = 0;
  for (const auto& app : apps) {
    auto program = CompileZlang<F>(app.source);
    auto m = MeasureZaatarBatch(app, program, 1, params, /*seed=*/31,
                                /*measure_native=*/false);
    double z = m.prover.Total();
    double g = model.GingerProverPerInstance(m.stats);
    char zg[16] = "-", gg[16] = "-";
    if (prev_z > 0) {
      snprintf(zg, sizeof(zg), "%.1fx", z / prev_z);
      snprintf(gg, sizeof(gg), "%.1fx", g / prev_g);
    }
    printf("  %-34s %10zu %12s %14s %9s %9s %s\n", app.name.c_str(),
           m.stats.c_zaatar, bench::HumanSeconds(z).c_str(),
           bench::HumanSeconds(g).c_str(), zg, gg,
           m.all_accepted ? "" : "** REJECTED **");
    prev_z = z;
    prev_g = g;
  }
}

}  // namespace
}  // namespace zaatar

int main() {
  using namespace zaatar;
  PcpParams params;
  printf("Figure 8: prover runtime scaling with input size\n");
  printf("(each series doubles the size knob twice; Zaatar measured, Ginger "
         "modeled)\n");
  MicroCosts m128 = bench::MeasureMicroCosts<F128>();
  MicroCosts m220 = bench::MeasureMicroCosts<F220>();

  Series<F128>("PAM clustering (d=16)",
               {MakePamApp(2, 16), MakePamApp(4, 16), MakePamApp(8, 16)},
               params, m128);
  Series<F220>("root finding by bisection (L=8)",
               {MakeRootFindApp(2, 8), MakeRootFindApp(4, 8),
                MakeRootFindApp(8, 8)},
               params, m220);
  Series<F128>("all-pairs shortest path",
               {MakeApspApp(2), MakeApspApp(3), MakeApspApp(4)}, params,
               m128);
  Series<F128>("Fannkuch (n=5)",
               {MakeFannkuchApp(1, 5, 12), MakeFannkuchApp(2, 5, 12),
                MakeFannkuchApp(4, 5, 12)},
               params, m128);
  Series<F128>("longest common subsequence",
               {MakeLcsApp(8), MakeLcsApp(16), MakeLcsApp(32)}, params,
               m128);

  printf("\nExpected shape: Zaatar growth tracks the |C_zaatar| ratio "
         "(linear, ~2-8x per step\ndepending on the benchmark's complexity "
         "exponent); Ginger growth is that ratio squared.\n");
  return 0;
}
