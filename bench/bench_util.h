// Shared helpers for the figure-reproduction benches: microbenchmark-based
// calibration of the Figure 3 cost-model parameters, and small table/format
// utilities. Every bench binary is self-contained and prints the rows/series
// of the paper figure it reproduces (see EXPERIMENTS.md for the mapping).

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "src/apps/harness.h"
#include "src/apps/suite.h"
#include "src/argument/cost_model.h"
#include "src/util/stopwatch.h"

namespace zaatar {
namespace bench {

// Measures the primitive costs of Figure 3's parameters for field F
// (the §5.1 microbenchmark methodology: average over repeated executions).
template <typename F>
MicroCosts MeasureMicroCosts(size_t reps = 300) {
  MicroCosts m;
  Prg prg(0xFEED);
  using EG = ElGamal<F>;
  auto kp = EG::GenerateKeys(prg);
  F x = prg.template NextNonzeroField<F>();
  F y = prg.template NextNonzeroField<F>();
  volatile uint64_t sink = 0;

  // Warm up every code path (page in the 1024-bit group code, prime the
  // caches) before timing; cold first calls skew e/h/d by 2-3x.
  {
    auto ct = EG::Encrypt(kp.pk, x, prg);
    for (int i = 0; i < 8; i++) {
      ct = ct * EG::Encrypt(kp.pk, x, prg).Pow(y);
      sink = sink + EG::DecryptToGroup(kp.sk, kp.pk, ct).ToUint64();
      x = x.Inverse() + F::One();
    }
  }

  Stopwatch sw;
  for (size_t i = 0; i < reps * 20; i++) {
    x *= y;
  }
  m.f = sw.Lap() / static_cast<double>(reps * 20);
  m.f_lazy = m.f;  // Montgomery form has no separate lazy multiply

  for (size_t i = 0; i < reps; i++) {
    x = x.Inverse() + F::One();
  }
  m.f_div = sw.Lap() / static_cast<double>(reps);

  for (size_t i = 0; i < reps * 4; i++) {
    x = prg.template NextField<F>();
  }
  m.c = sw.Lap() / static_cast<double>(reps * 4);

  size_t crypto_reps = reps / 6 + 8;
  typename EG::Ciphertext ct{};
  sw.Restart();
  for (size_t i = 0; i < crypto_reps; i++) {
    ct = EG::Encrypt(kp.pk, x, prg);
  }
  m.e = sw.Lap() / static_cast<double>(crypto_reps);

  auto acc = ct;
  for (size_t i = 0; i < crypto_reps; i++) {
    acc = acc * ct.Pow(x);
  }
  m.h = sw.Lap() / static_cast<double>(crypto_reps);

  for (size_t i = 0; i < crypto_reps; i++) {
    auto dec = EG::DecryptToGroup(kp.sk, kp.pk, ct);
    sink = sink + dec.ToUint64();
  }
  m.d = sw.Lap() / static_cast<double>(crypto_reps);

  // Amortized commitment fold: per-element cost of the Pippenger-based
  // InnerProduct at a representative size. The bucket kernel only cares
  // about scalars, so one ciphertext replicated n times measures the same
  // work as n distinct ones without paying n encryptions here.
  {
    const size_t n = 512;
    std::vector<typename EG::Ciphertext> cts(n, ct);
    auto scalars = prg.template NextFieldVector<F>(n);
    sw.Restart();
    auto folded = EG::InnerProduct(cts.data(), scalars.data(), n);
    m.h_amortized = sw.Lap() / static_cast<double>(n);
    sink = sink + folded.c1.ToUint64();
  }
  (void)sink;
  return m;
}

inline std::string HumanSeconds(double s) {
  char buf[64];
  if (s < 0) {
    return "n/a";
  }
  if (s < 1e-6) {
    snprintf(buf, sizeof(buf), "%.0f ns", s * 1e9);
  } else if (s < 1e-3) {
    snprintf(buf, sizeof(buf), "%.1f us", s * 1e6);
  } else if (s < 1) {
    snprintf(buf, sizeof(buf), "%.1f ms", s * 1e3);
  } else if (s < 120) {
    snprintf(buf, sizeof(buf), "%.2f s", s);
  } else if (s < 7200) {
    snprintf(buf, sizeof(buf), "%.1f min", s / 60);
  } else if (s < 48 * 3600) {
    snprintf(buf, sizeof(buf), "%.1f hr", s / 3600);
  } else if (s < 2 * 365.25 * 86400) {
    snprintf(buf, sizeof(buf), "%.1f days", s / 86400);
  } else {
    snprintf(buf, sizeof(buf), "%.1e yr", s / (365.25 * 86400));
  }
  return buf;
}

inline std::string HumanCount(double v) {
  char buf[64];
  if (v < 1e4) {
    snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    snprintf(buf, sizeof(buf), "%.2e", v);
  }
  return buf;
}

inline void PrintRule(int width = 110) {
  for (int i = 0; i < width; i++) {
    putchar('-');
  }
  putchar('\n');
}

}  // namespace bench
}  // namespace zaatar

#endif  // BENCH_BENCH_UTIL_H_
