// Figure 6: speedups from parallelizing and distributing the prover, for
// PAM clustering and all-pairs shortest paths with beta = 60 instances.
// Configurations mirror the paper's bar labels: 4C, 15C+15G, 20C, 30C+30G,
// 60C, 60C(ideal).
//
// Method (see DESIGN.md §5): per-instance phase costs are *measured* on this
// machine; fleet latency follows the distribution model (instances are
// independent, so a batch completes in ceil(beta/cores) waves; a GPU
// accelerates the crypto phase, calibrated to the paper's ~20% per-instance
// gain). A real ParallelFor demonstration over the host's hardware threads
// closes the loop on the actual code path.

#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "src/argument/parallel.h"

namespace zaatar {
namespace {

template <typename F>
void SpeedupTable(const App<F>& app, const PcpParams& params, size_t beta) {
  auto program = CompileZlang<F>(app.source);
  auto m = MeasureZaatarBatch(app, program, 2, params, /*seed=*/11,
                              /*measure_native=*/false);
  printf("\n%s  (beta = %zu, measured per-instance prover %s)\n",
         app.name.c_str(), beta,
         bench::HumanSeconds(m.prover.Total()).c_str());
  const WorkerConfig kConfigs[] = {
      {.cpu_cores = 4, .gpus = 0},   {.cpu_cores = 15, .gpus = 15},
      {.cpu_cores = 20, .gpus = 0},  {.cpu_cores = 30, .gpus = 30},
      {.cpu_cores = 60, .gpus = 0},
  };
  printf("  %-12s %14s %10s\n", "config", "batch latency", "speedup");
  for (const auto& config : kConfigs) {
    double latency =
        DistributedProverModel::BatchLatency(m.prover, beta, config);
    double speedup = DistributedProverModel::Speedup(m.prover, beta, config);
    printf("  %-12s %14s %9.1fx\n", config.Label().c_str(),
           bench::HumanSeconds(latency).c_str(), speedup);
  }
  printf("  %-12s %14s %9.1fx   (perfect division of the batch)\n",
         "60C(ideal)",
         bench::HumanSeconds(m.prover.Total() * beta / 60.0).c_str(), 60.0);
  double gpu_gain =
      1.0 - DistributedProverModel::InstanceLatency(
                m.prover, {.cpu_cores = 1, .gpus = 1}) /
                DistributedProverModel::InstanceLatency(
                    m.prover, {.cpu_cores = 1, .gpus = 0});
  printf("  GPU per-instance latency gain: %.0f%% (paper: ~20%%)\n",
         100 * gpu_gain);
}

}  // namespace
}  // namespace zaatar

int main() {
  using namespace zaatar;
  PcpParams params;
  printf("Figure 6: prover speedup from parallelization/distribution\n");
  SpeedupTable(MakePamApp(6, 12), params, /*beta=*/60);
  SpeedupTable(MakeApspApp(3), params, /*beta=*/60);

  // Real thread-pool demonstration: prove a small batch with ParallelFor on
  // however many hardware threads this host exposes.
  printf("\nReal ParallelFor check (host has %u hardware threads):\n",
         std::thread::hardware_concurrency());
  {
    auto app = MakeLcsApp(8);
    auto program = CompileZlang<F128>(app.source);
    Qap<F128> qap(program.zaatar.r1cs);
    Prg prg(13);
    auto queries =
        ZaatarPcp<F128>::GenerateQueries(qap, PcpParams::Light(), prg);
    auto setup = ZaatarArgument<F128>::Setup(std::move(queries), prg);
    const size_t kBatch = 4;
    std::vector<AppInstance<F128>> instances;
    for (size_t i = 0; i < kBatch; i++) {
      instances.push_back(app.make_instance(prg));
    }
    std::vector<bool> accepted(kBatch, false);
    size_t workers = std::max(1u, std::thread::hardware_concurrency());
    Stopwatch sw;
    ParallelFor(kBatch, workers, [&](size_t i) {
      auto gw = program.SolveGinger(instances[i].inputs);
      auto w = program.SolveZaatar(gw);
      auto proof = BuildZaatarProof(qap, w);
      auto ip = ZaatarArgument<F128>::Prove({&proof.z, &proof.h}, setup);
      auto bound = program.BoundValues(instances[i].inputs,
                                       program.ExtractOutputs(gw));
      accepted[i] = ZaatarArgument<F128>::VerifyInstance(setup, ip, bound);
    });
    double wall = sw.ElapsedSeconds();
    bool all = true;
    for (bool a : accepted) {
      all = all && a;
    }
    printf("  batch of %zu proved+verified in %s across %zu workers, all "
           "accepted: %s\n",
           kBatch, bench::HumanSeconds(wall).c_str(), workers,
           all ? "yes" : "NO");
  }
  return 0;
}
