// End-to-end: full batched arguments over compiled benchmark programs, plus
// validation that the Figure 3 cost model tracks reality.

#include <gtest/gtest.h>

#include "src/apps/harness.h"

namespace zaatar {
namespace {

TEST(HarnessTest, ZaatarBatchOverLcsAccepts) {
  auto app = MakeLcsApp(6);
  auto program = CompileZlang<F128>(app.source);
  auto m = MeasureZaatarBatch(app, program, /*beta=*/2, PcpParams::Light(),
                              /*seed=*/7, /*measure_native=*/false);
  EXPECT_TRUE(m.all_accepted);
  EXPECT_GT(m.prover.construct_proof_s, 0.0);
  EXPECT_GT(m.prover.crypto_s, 0.0);
  EXPECT_GT(m.verifier_per_instance_s, 0.0);
  EXPECT_EQ(m.proof_len, program.UZaatar());
}

TEST(HarnessTest, ZaatarBatchOverRootFindAccepts) {
  auto app = MakeRootFindApp(2, 4);
  auto program = CompileZlang<F220>(app.source);
  auto m = MeasureZaatarBatch(app, program, /*beta=*/1, PcpParams::Light(),
                              /*seed=*/8, /*measure_native=*/false);
  EXPECT_TRUE(m.all_accepted);
}

TEST(HarnessTest, GingerBatchOverSmallLcsAccepts) {
  auto app = MakeLcsApp(3);
  auto program = CompileZlang<F128>(app.source);
  auto m = MeasureGingerBatch(app, program, /*beta=*/1, PcpParams::Light(),
                              /*seed=*/9, /*measure_native=*/false);
  EXPECT_TRUE(m.all_accepted);
  size_t n = program.ginger.layout.Total();
  EXPECT_EQ(m.proof_len, n + n * n);
}

TEST(HarnessTest, ZaatarProofIsShorterThanGingerAtEqualSize) {
  auto app = MakeLcsApp(4);
  auto program = CompileZlang<F128>(app.source);
  auto z = MeasureZaatarBatch(app, program, 1, PcpParams::Light(), 10, false);
  auto g = MeasureGingerBatch(app, program, 1, PcpParams::Light(), 11, false);
  EXPECT_LT(z.proof_len, g.proof_len);
  // Prover work follows the proof length.
  EXPECT_LT(z.prover.crypto_s, g.prover.crypto_s);
}

TEST(CostModelValidationTest, ZaatarModelTracksMeasurement) {
  // The paper reports empirical costs within 5-15% of the model; our
  // primitives and constants differ, so we only require the model to land
  // within a factor of 3 on the dominant prover phases.
  auto app = MakeLcsApp(8);
  auto program = CompileZlang<F128>(app.source);
  PcpParams params = PcpParams::Light();
  auto m = MeasureZaatarBatch(app, program, 2, params, 12, false);

  // Microbenchmark the primitives quickly.
  MicroCosts micro;
  {
    Prg prg(13);
    using EG = ElGamal<F128>;
    auto kp = EG::GenerateKeys(prg);
    auto x = prg.NextField<F128>();
    Stopwatch sw;
    const int kOps = 200;
    for (int i = 0; i < kOps; i++) {
      x *= x;
    }
    micro.f = sw.Lap() / kOps;
    micro.f_lazy = micro.f;
    for (int i = 0; i < 50; i++) {
      x = x.Inverse() + F128::One();
    }
    micro.f_div = sw.Lap() / 50;
    for (int i = 0; i < 50; i++) {
      x = prg.NextField<F128>();
    }
    micro.c = sw.Lap() / 50;
    EG::Ciphertext ct;
    for (int i = 0; i < 20; i++) {
      ct = EG::Encrypt(kp.pk, x, prg);
    }
    micro.e = sw.Lap() / 20;
    auto acc = ct;
    for (int i = 0; i < 20; i++) {
      acc = acc * ct.Pow(x);
    }
    micro.h = sw.Lap() / 20;
    for (int i = 0; i < 20; i++) {
      EG::DecryptToGroup(kp.sk, kp.pk, ct);
    }
    micro.d = sw.Lap() / 20;
    // The prover commits through the Pippenger kernel, so the model must use
    // the amortized per-element fold cost, not the naive one (mirrors
    // bench::MeasureMicroCosts).
    const size_t kFold = 128;
    std::vector<EG::Ciphertext> cts(kFold, ct);
    auto scalars = prg.NextFieldVector<F128>(kFold);
    sw.Restart();
    auto folded = EG::InnerProduct(cts.data(), scalars.data(), kFold);
    micro.h_amortized = sw.Lap() / static_cast<double>(kFold);
    EXPECT_FALSE(folded.c1.IsZero());
  }

  CostModel model(micro, params);
  ComputationStats stats = ComputeStats(program, 1e-6);
  // "Issue responses" covers the homomorphic commitment (h·|u|) plus the
  // per-query dot products — i.e. the crypto + answer phases.
  double predicted = model.ZaatarIssueResponses(stats);
  double measured = m.prover.crypto_s + m.prover.answer_queries_s;
  EXPECT_GT(predicted, measured / 4.0);
  EXPECT_LT(predicted, measured * 4.0);
}

}  // namespace
}  // namespace zaatar
