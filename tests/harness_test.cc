// End-to-end: full batched arguments over compiled benchmark programs, plus
// validation that the Figure 3 cost model tracks reality.

#include <gtest/gtest.h>

#include "src/apps/harness.h"

namespace zaatar {
namespace {

TEST(HarnessTest, ZaatarBatchOverLcsAccepts) {
  auto app = MakeLcsApp(6);
  auto program = CompileZlang<F128>(app.source);
  auto m = MeasureZaatarBatch(app, program, /*beta=*/2, PcpParams::Light(),
                              /*seed=*/7, /*measure_native=*/false);
  EXPECT_TRUE(m.all_accepted);
  EXPECT_GT(m.prover.construct_proof_s, 0.0);
  EXPECT_GT(m.prover.crypto_s, 0.0);
  EXPECT_GT(m.verifier_per_instance_s, 0.0);
  EXPECT_EQ(m.proof_len, program.UZaatar());

  // Per-instance verdicts, not just the conjunction.
  ASSERT_EQ(m.instance_results.size(), 2u);
  for (const auto& r : m.instance_results) {
    EXPECT_TRUE(r.accepted()) << r.detail;
  }
  EXPECT_EQ(m.verdict_counts[static_cast<size_t>(VerifyVerdict::kAccept)], 2u);
  EXPECT_EQ(m.verdict_counts[static_cast<size_t>(VerifyVerdict::kMalformed)],
            0u);
  EXPECT_EQ(m.first_failing_index, -1);

  // The batch really crossed a serialized transport.
  EXPECT_GT(m.setup_message_bytes, 0u);
  EXPECT_GT(m.proof_message_bytes, 0u);
}

TEST(HarnessTest, ZaatarBatchOverRootFindAccepts) {
  auto app = MakeRootFindApp(2, 4);
  auto program = CompileZlang<F220>(app.source);
  auto m = MeasureZaatarBatch(app, program, /*beta=*/1, PcpParams::Light(),
                              /*seed=*/8, /*measure_native=*/false);
  EXPECT_TRUE(m.all_accepted);
}

TEST(HarnessTest, GingerBatchOverSmallLcsAccepts) {
  auto app = MakeLcsApp(3);
  auto program = CompileZlang<F128>(app.source);
  auto m = MeasureGingerBatch(app, program, /*beta=*/1, PcpParams::Light(),
                              /*seed=*/9, /*measure_native=*/false);
  EXPECT_TRUE(m.all_accepted);
  size_t n = program.ginger.layout.Total();
  EXPECT_EQ(m.proof_len, n + n * n);
  ASSERT_EQ(m.instance_results.size(), 1u);
  EXPECT_EQ(m.verdict_counts[static_cast<size_t>(VerifyVerdict::kAccept)], 1u);
  EXPECT_EQ(m.first_failing_index, -1);
}

TEST(HarnessTest, RecordVerdictTracksTaxonomy) {
  BatchMeasurement m;
  RecordVerdict(&m, 0, VerifyInstanceResult::Accept());
  RecordVerdict(&m, 1,
                VerifyInstanceResult::Reject(VerifyVerdict::kRejectPcp,
                                             "decision polynomial nonzero"));
  RecordVerdict(&m, 2, VerifyInstanceResult::Accept());
  RecordVerdict(&m, 3,
                VerifyInstanceResult::Reject(VerifyVerdict::kMalformed,
                                             "bad shape"));

  ASSERT_EQ(m.instance_results.size(), 4u);
  EXPECT_FALSE(m.all_accepted);
  EXPECT_EQ(m.first_failing_index, 1);  // the first reject, not the last
  EXPECT_EQ(m.verdict_counts[static_cast<size_t>(VerifyVerdict::kAccept)], 2u);
  EXPECT_EQ(m.verdict_counts[static_cast<size_t>(VerifyVerdict::kRejectPcp)],
            1u);
  EXPECT_EQ(m.verdict_counts[static_cast<size_t>(VerifyVerdict::kMalformed)],
            1u);
  EXPECT_EQ(
      m.verdict_counts[static_cast<size_t>(VerifyVerdict::kRejectCommit)], 0u);
  EXPECT_EQ(m.instance_results[1].detail, "decision polynomial nonzero");
}

// The session-and-transport harness must produce the same verdicts as the
// pre-refactor in-process path: same seed, same Prg consumption order
// (queries -> keys -> commit setup -> instances), proving and verifying
// drawing no randomness. The reference below IS that old path, hand-rolled
// against the Argument API directly.
TEST(HarnessTest, SessionOutcomesMatchInProcessReference) {
  auto app = MakeLcsApp(4);
  auto program = CompileZlang<F128>(app.source);
  const size_t beta = 3;
  const uint64_t seed = 21;
  PcpParams params = PcpParams::Light();

  auto m = MeasureZaatarBatch(app, program, beta, params, seed,
                              /*measure_native=*/false);
  ASSERT_EQ(m.instance_results.size(), beta);

  using Backend = ZaatarHarnessBackend<F128>;
  using Arg = Argument<F128, Backend::Adapter>;
  Prg prg(seed);
  Backend::Prepared prep(program);
  auto queries = Backend::GenerateQueries(prep, params, prg);
  auto setup = Arg::Setup(std::move(queries), prg);
  std::vector<AppInstance<F128>> instances;
  for (size_t i = 0; i < beta; i++) {
    instances.push_back(app.make_instance(prg));
  }
  for (size_t i = 0; i < beta; i++) {
    std::vector<F128> gw = program.SolveGinger(instances[i].inputs);
    auto vectors = Backend::BuildProofVectors(prep, program, gw);
    auto proof = Arg::Prove({&vectors.first, &vectors.second}, setup);
    std::vector<F128> bound = program.BoundValues(
        instances[i].inputs, instances[i].expected_outputs);
    auto ref = Arg::VerifyInstanceDetailed(setup, proof, bound);
    EXPECT_EQ(ref.verdict, m.instance_results[i].verdict)
        << "instance " << i << " diverged from the in-process path";
    EXPECT_TRUE(ref.accepted()) << ref.detail;
  }
}

// The same batch driven over a real socketpair instead of the loopback.
TEST(HarnessTest, ZaatarBatchOverSocketpairAccepts) {
  auto app = MakeLcsApp(3);
  auto program = CompileZlang<F128>(app.source);
  auto links = protocol::PipeTransport::CreatePair();
  ASSERT_TRUE(links.ok()) << links.status().ToString();
  auto m = MeasureBatch<F128, ZaatarHarnessBackend<F128>>(
      app, program, /*beta=*/2, PcpParams::Light(), /*seed=*/17,
      /*measure_native=*/false, &*links);
  EXPECT_TRUE(m.all_accepted);
  EXPECT_EQ(m.verdict_counts[static_cast<size_t>(VerifyVerdict::kAccept)], 2u);
}

TEST(HarnessTest, ZaatarProofIsShorterThanGingerAtEqualSize) {
  auto app = MakeLcsApp(4);
  auto program = CompileZlang<F128>(app.source);
  auto z = MeasureZaatarBatch(app, program, 1, PcpParams::Light(), 10, false);
  auto g = MeasureGingerBatch(app, program, 1, PcpParams::Light(), 11, false);
  EXPECT_LT(z.proof_len, g.proof_len);
  // Prover work follows the proof length.
  EXPECT_LT(z.prover.crypto_s, g.prover.crypto_s);
}

TEST(CostModelValidationTest, ZaatarModelTracksMeasurement) {
  // The paper reports empirical costs within 5-15% of the model; our
  // primitives and constants differ, so we only require the model to land
  // within a factor of 3 on the dominant prover phases.
  auto app = MakeLcsApp(8);
  auto program = CompileZlang<F128>(app.source);
  PcpParams params = PcpParams::Light();
  auto m = MeasureZaatarBatch(app, program, 2, params, 12, false);

  // Microbenchmark the primitives quickly.
  MicroCosts micro;
  {
    Prg prg(13);
    using EG = ElGamal<F128>;
    auto kp = EG::GenerateKeys(prg);
    auto x = prg.NextField<F128>();
    Stopwatch sw;
    const int kOps = 200;
    for (int i = 0; i < kOps; i++) {
      x *= x;
    }
    micro.f = sw.Lap() / kOps;
    micro.f_lazy = micro.f;
    for (int i = 0; i < 50; i++) {
      x = x.Inverse() + F128::One();
    }
    micro.f_div = sw.Lap() / 50;
    for (int i = 0; i < 50; i++) {
      x = prg.NextField<F128>();
    }
    micro.c = sw.Lap() / 50;
    EG::Ciphertext ct;
    for (int i = 0; i < 20; i++) {
      ct = EG::Encrypt(kp.pk, x, prg);
    }
    micro.e = sw.Lap() / 20;
    auto acc = ct;
    for (int i = 0; i < 20; i++) {
      acc = acc * ct.Pow(x);
    }
    micro.h = sw.Lap() / 20;
    for (int i = 0; i < 20; i++) {
      EG::DecryptToGroup(kp.sk, kp.pk, ct);
    }
    micro.d = sw.Lap() / 20;
    // The prover commits through the Pippenger kernel, so the model must use
    // the amortized per-element fold cost, not the naive one (mirrors
    // bench::MeasureMicroCosts).
    const size_t kFold = 128;
    std::vector<EG::Ciphertext> cts(kFold, ct);
    auto scalars = prg.NextFieldVector<F128>(kFold);
    sw.Restart();
    auto folded = EG::InnerProduct(cts.data(), scalars.data(), kFold);
    micro.h_amortized = sw.Lap() / static_cast<double>(kFold);
    EXPECT_FALSE(folded.c1.IsZero());
  }

  CostModel model(micro, params);
  ComputationStats stats = ComputeStats(program, 1e-6);
  // "Issue responses" covers the homomorphic commitment (h·|u|) plus the
  // per-query dot products — i.e. the crypto + answer phases.
  double predicted = model.ZaatarIssueResponses(stats);
  double measured = m.prover.crypto_s + m.prover.answer_queries_s;
  EXPECT_GT(predicted, measured / 4.0);
  EXPECT_LT(predicted, measured * 4.0);
}

}  // namespace
}  // namespace zaatar
