// Semantics of compiled programs: every test compiles a zlang snippet, runs
// the witness solver on concrete inputs, checks both constraint systems are
// satisfied, and compares decoded outputs against expectations.

#include <gtest/gtest.h>

#include "src/compiler/compile.h"
#include "src/field/fields.h"

namespace zaatar {
namespace {

using F = F128;

std::vector<int64_t> RunProgram(const std::string& source,
                         const std::vector<int64_t>& inputs) {
  auto program = CompileZlang<F>(source);
  std::vector<F> in;
  in.reserve(inputs.size());
  for (int64_t v : inputs) {
    in.push_back(EncodeSignedInt<F>(v));
  }
  auto gw = program.SolveGinger(in);
  EXPECT_TRUE(program.ginger.IsSatisfied(gw))
      << "ginger constraint " << program.ginger.FirstViolated(gw);
  auto zw = program.SolveZaatar(gw);
  EXPECT_TRUE(program.zaatar.r1cs.IsSatisfied(zw))
      << "r1cs constraint " << program.zaatar.r1cs.FirstViolated(zw);
  std::vector<int64_t> out;
  for (const F& v : program.ExtractOutputs(gw)) {
    out.push_back(DecodeSignedInt<F>(v));
  }
  return out;
}

TEST(SemanticsTest, ArithmeticAndPrecedence) {
  EXPECT_EQ(RunProgram("input int32 a; input int32 b; output int<70> y;"
                "y = a * b + a - 2 * b;",
                {7, 5}),
            (std::vector<int64_t>{7 * 5 + 7 - 10}));
}

TEST(SemanticsTest, NegativeValuesFlowThrough) {
  EXPECT_EQ(RunProgram("input int32 a; output int<70> y; y = a * a - a;", {-9}),
            (std::vector<int64_t>{81 + 9}));
  EXPECT_EQ(RunProgram("input int32 a; output int32 y; y = -a;", {13}),
            (std::vector<int64_t>{-13}));
}

// Comparison operators across sign combinations and boundaries.
struct CmpCase {
  int64_t a, b;
};
class ComparisonTest : public ::testing::TestWithParam<CmpCase> {};

TEST_P(ComparisonTest, AllOperatorsMatchNative) {
  auto [a, b] = GetParam();
  auto out = RunProgram(
      "input int32 a; input int32 b;"
      "output bool lt; output bool le; output bool gt; output bool ge;"
      "output bool eq; output bool ne;"
      "lt = a < b; le = a <= b; gt = a > b; ge = a >= b;"
      "eq = a == b; ne = a != b;",
      {a, b});
  EXPECT_EQ(out, (std::vector<int64_t>{a < b, a <= b, a > b, a >= b, a == b,
                                       a != b}))
      << "a=" << a << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, ComparisonTest,
    ::testing::Values(CmpCase{0, 0}, CmpCase{1, 0}, CmpCase{0, 1},
                      CmpCase{-1, 1}, CmpCase{1, -1}, CmpCase{-5, -5},
                      CmpCase{-5, -4}, CmpCase{123456, 123457},
                      CmpCase{-2147483648, 2147483647},
                      CmpCase{2147483647, 2147483647}));

TEST(SemanticsTest, BooleanOperators) {
  for (int a = 0; a <= 1; a++) {
    for (int b = 0; b <= 1; b++) {
      auto out = RunProgram(
          "input bool a; input bool b;"
          "output bool andv; output bool orv; output bool notv;"
          "output bool eqv;"
          "andv = a && b; orv = a || b; notv = !a; eqv = a == b;",
          {a, b});
      EXPECT_EQ(out, (std::vector<int64_t>{a && b, a || b, !a, a == b}));
    }
  }
}

TEST(SemanticsTest, TernarySelectsOnRuntimeCondition) {
  EXPECT_EQ(RunProgram("input int32 a; output int32 y; y = a > 10 ? 100 : 200;",
                {11}),
            (std::vector<int64_t>{100}));
  EXPECT_EQ(RunProgram("input int32 a; output int32 y; y = a > 10 ? 100 : 200;",
                {10}),
            (std::vector<int64_t>{200}));
}

TEST(SemanticsTest, MinMaxAbsBuiltins) {
  EXPECT_EQ(RunProgram("input int32 a; input int32 b;"
                "output int32 lo; output int32 hi; output int32 m;"
                "lo = min(a, b); hi = max(a, b); m = abs(a - b);",
                {-7, 4}),
            (std::vector<int64_t>{-7, 4, 11}));
}

TEST(SemanticsTest, RuntimeIfMergesOnlyWrittenVariables) {
  auto out = RunProgram(
      "input int32 a;"
      "output int32 x; output int32 y;"
      "var int32 u; var int32 v;"
      "u = 1; v = 2;"
      "if (a > 0) { u = 10; } else { v = 20; }"
      "x = u; y = v;",
      {5});
  EXPECT_EQ(out, (std::vector<int64_t>{10, 2}));
  out = RunProgram(
      "input int32 a;"
      "output int32 x; output int32 y;"
      "var int32 u; var int32 v;"
      "u = 1; v = 2;"
      "if (a > 0) { u = 10; } else { v = 20; }"
      "x = u; y = v;",
      {-5});
  EXPECT_EQ(out, (std::vector<int64_t>{1, 20}));
}

TEST(SemanticsTest, NestedRuntimeConditions) {
  const char* src =
      "input int32 a; output int32 y;"
      "y = 0;"
      "if (a > 0) { if (a > 10) { y = 2; } else { y = 1; } }"
      "else { y = -1; }";
  EXPECT_EQ(RunProgram(src, {20})[0], 2);
  EXPECT_EQ(RunProgram(src, {5})[0], 1);
  EXPECT_EQ(RunProgram(src, {-3})[0], -1);
}

TEST(SemanticsTest, StaticConditionCompilesOneArm) {
  auto p = CompileZlang<F>(
      "output int32 y; if (1 < 2) { y = 7; } else { y = 8; }");
  auto gw = p.SolveGinger({});
  EXPECT_EQ(DecodeSignedInt<F>(p.ExtractOutputs(gw)[0]), 7);
}

TEST(SemanticsTest, LoopsUnrollWithConstBounds) {
  EXPECT_EQ(RunProgram("output int32 y; var int32 s; s = 0;"
                "for i in 1..10 { s = s + i; } y = s;",
                {}),
            (std::vector<int64_t>{55}));
}

TEST(SemanticsTest, NestedLoopsAndLoopVarArithmetic) {
  EXPECT_EQ(RunProgram("output int32 y; var int32 s; s = 0;"
                "for i in 0..3 { for j in 0..i { s = s + i * j; } } y = s;",
                {}),
            (std::vector<int64_t>{25}))  // 0 + 1 + (2+4) + (3+6+9)
      << "sum of i*j for j<=i<=3";
}

TEST(SemanticsTest, StaticArrayIndexing) {
  EXPECT_EQ(RunProgram("input int32 a[4]; output int32 y;"
                "y = a[0] + a[3] * 2;",
                {5, 6, 7, 8}),
            (std::vector<int64_t>{5 + 16}));
}

TEST(SemanticsTest, MultiDimensionalArrays) {
  EXPECT_EQ(RunProgram("input int32 a[2][3]; output int32 y;"
                "y = a[0][0] + a[1][2];",
                {1, 2, 3, 4, 5, 6}),
            (std::vector<int64_t>{1 + 6}));
}

TEST(SemanticsTest, RuntimeArrayRead) {
  const char* src =
      "input int32 a[5]; input int32 i; output int32 y; y = a[i];";
  EXPECT_EQ(RunProgram(src, {10, 20, 30, 40, 50, 3})[0], 40);
  EXPECT_EQ(RunProgram(src, {10, 20, 30, 40, 50, 0})[0], 10);
}

TEST(SemanticsTest, RuntimeArrayWrite) {
  const char* src =
      "input int32 i; output int32 y0; output int32 y1; output int32 y2;"
      "var int32 a[3];"
      "a[0] = 1; a[1] = 2; a[2] = 3;"
      "a[i] = 99;"
      "y0 = a[0]; y1 = a[1]; y2 = a[2];";
  EXPECT_EQ(RunProgram(src, {1}), (std::vector<int64_t>{1, 99, 3}));
  EXPECT_EQ(RunProgram(src, {2}), (std::vector<int64_t>{1, 2, 99}));
}

TEST(SemanticsTest, ArrayOutputs) {
  EXPECT_EQ(RunProgram("input int32 a[3]; output int32 y[3];"
                "for i in 0..2 { y[i] = a[i] * a[i]; }",
                {2, 3, 4}),
            (std::vector<int64_t>{4, 9, 16}));
}

TEST(SemanticsTest, StaticDivisionAndModulo) {
  EXPECT_EQ(RunProgram("output int32 y; output int32 r; const a = 17; const b = 5;"
                "y = a / b; r = a % b;",
                {}),
            (std::vector<int64_t>{3, 2}));
}

TEST(SemanticsTest, FixedPointRationalAssignmentRounds) {
  // r is rational<W, 4>: values round down to multiples of 1/16.
  // 7/3 = 2.333... -> floor(7*16/3)/16 = 37/16.
  auto out = RunProgram(
      "input rational<16, 8> w; output rational<20, 4> r; r = w;",
      {7, 3});
  EXPECT_EQ(out, (std::vector<int64_t>{37, 16}));
}

TEST(SemanticsTest, FixedPointArithmeticIsExactOnTheGrid) {
  // 3/2 + 5/4 = 11/4 representable exactly with 4 fractional bits.
  auto out = RunProgram(
      "input rational<16, 8> a; input rational<16, 8> b;"
      "output rational<24, 4> y;"
      "var rational<20, 4> fa; var rational<20, 4> fb;"
      "fa = a; fb = b; y = fa + fb;",
      {3, 2, 5, 4});
  EXPECT_EQ(out, (std::vector<int64_t>{44, 16}));  // 2.75 * 16 = 44
}

TEST(SemanticsTest, RationalComparisonsCrossMultiply) {
  auto out = RunProgram(
      "input rational<16, 8> a; input rational<16, 8> b;"
      "output bool lt; output bool eq;"
      "lt = a < b; eq = a == b;",
      {1, 3, 1, 2});  // 1/3 < 1/2
  EXPECT_EQ(out, (std::vector<int64_t>{1, 0}));
  out = RunProgram(
      "input rational<16, 8> a; input rational<16, 8> b;"
      "output bool lt; output bool eq;"
      "lt = a < b; eq = a == b;",
      {2, 4, 1, 2});  // 2/4 == 1/2
  EXPECT_EQ(out, (std::vector<int64_t>{0, 1}));
}

TEST(SemanticsTest, RationalMinAndDivisionByConstant) {
  auto out = RunProgram(
      "input rational<16, 8> a; input rational<16, 8> b;"
      "output rational<24, 8> mid;"
      "var rational<20, 8> lo;"
      "lo = min(a, b);"
      "mid = (lo + lo) / 2;",
      {3, 4, 1, 2});  // min(3/4, 1/2) = 1/2; (1/2+1/2)/2 = 1/2
  // lo = 1/2 fixed at 2^-8: 128/256; mid = 128/256 again.
  EXPECT_EQ(out[0] * (int64_t{1} << 8), out[1] * 128);
}

TEST(SemanticsTest, ConstantsAndWidthExpressions) {
  EXPECT_EQ(RunProgram("const w = 30; const n = 2 * 2;"
                "input int<w> a[n]; output int<w + 10> y;"
                "y = a[0] + a[1] + a[2] + a[3];",
                {1, 2, 3, 4}),
            (std::vector<int64_t>{10}));
}

TEST(SemanticsTest, CompileErrors) {
  EXPECT_THROW(CompileZlang<F>("y = 1;"), CompileError);  // undeclared
  EXPECT_THROW(CompileZlang<F>("input int32 x; input int32 x;"),
               CompileError);  // redeclared
  EXPECT_THROW(CompileZlang<F>("var int32 a[2]; var int32 y; y = a[5];"),
               CompileError);  // static out of bounds
  EXPECT_THROW(
      CompileZlang<F>("input int32 a; var int32 y; y = a; y = y && y;"),
      CompileError);  // logical op on ints
  EXPECT_THROW(CompileZlang<F>("input int32 n; for i in 0..n { }"),
               CompileError);  // runtime loop bound
  EXPECT_THROW(CompileZlang<F>("var int<300> x; x = 0;"),
               CompileError);  // width beyond the field
  EXPECT_THROW(CompileZlang<F>("input int32 a; var int32 y; y = a / a;"),
               CompileError);  // runtime division
}

TEST(SemanticsTest, WidthOverflowFromRepeatedMultiplication) {
  // 32 -> 64 -> 128 bits exceeds F128's capacity: must be caught at compile
  // time, not miscomputed at runtime.
  EXPECT_THROW(CompileZlang<F>("input int32 a; output int32 y;"
                               "var int<130> t; t = a * a; t = t * t;"
                               "y = t > 0 ? 1 : 0;"),
               CompileError);
}

TEST(SemanticsTest, OutputsFollowDeclarationOrder) {
  auto p = CompileZlang<F>(
      "input int32 a; output int32 first; output int32 second;"
      "second = a + 2; first = a + 1;");
  auto gw = p.SolveGinger({EncodeSignedInt<F>(10)});
  auto out = p.ExtractOutputs(gw);
  EXPECT_EQ(DecodeSignedInt<F>(out[0]), 11);
  EXPECT_EQ(DecodeSignedInt<F>(out[1]), 12);
}

TEST(SemanticsTest, ComparisonCostIsLogarithmicInWidth) {
  // The paper: order comparisons expand to O(log |F|) constraints. A single
  // 32-bit comparison should cost tens of constraints, not hundreds.
  auto p8 = CompileZlang<F>(
      "input int<8> a; input int<8> b; output bool y; y = a < b;");
  auto p32 = CompileZlang<F>(
      "input int32 a; input int32 b; output bool y; y = a < b;");
  EXPECT_GT(p8.CGinger(), 8u);
  EXPECT_LT(p8.CGinger(), 20u);
  EXPECT_GT(p32.CGinger(), p8.CGinger());
  EXPECT_LT(p32.CGinger(), 45u);
}

TEST(SemanticsTest, PureArithmeticCostsNoComparisonGadgets) {
  auto p = CompileZlang<F>(
      "input int32 a; input int32 b; output int<70> y; y = a * b + a;");
  // One product + one output binding.
  EXPECT_LE(p.CGinger(), 3u);
}

}  // namespace
}  // namespace zaatar
