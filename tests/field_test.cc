#include "src/field/fields.h"

#include <gtest/gtest.h>

#include "src/crypto/prg.h"

namespace zaatar {
namespace {

// Field axioms and parameter validation, run for every configured field.
template <typename F>
class FieldTest : public ::testing::Test {};

using FieldTypes = ::testing::Types<F128, F220, FGoldilocks>;
TYPED_TEST_SUITE(FieldTest, FieldTypes);

TYPED_TEST(FieldTest, ZeroOneIdentities) {
  using F = TypeParam;
  EXPECT_TRUE(F::Zero().IsZero());
  EXPECT_TRUE(F::One().IsOne());
  EXPECT_EQ(F::One() * F::One(), F::One());
  EXPECT_EQ(F::Zero() + F::One(), F::One());
  EXPECT_EQ(F::One() - F::One(), F::Zero());
  EXPECT_EQ(-F::Zero(), F::Zero());
}

TYPED_TEST(FieldTest, RingAxiomsOnRandomElements) {
  using F = TypeParam;
  Prg prg(11);
  for (int i = 0; i < 100; i++) {
    F a = prg.NextField<F>(), b = prg.NextField<F>(), c = prg.NextField<F>();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, F::Zero());
    EXPECT_EQ(a + (-a), F::Zero());
    EXPECT_EQ(a.Double(), a + a);
    EXPECT_EQ(a.Square(), a * a);
  }
}

TYPED_TEST(FieldTest, InverseAndDivision) {
  using F = TypeParam;
  Prg prg(12);
  for (int i = 0; i < 50; i++) {
    F a = prg.NextNonzeroField<F>();
    EXPECT_EQ(a * a.Inverse(), F::One());
    F b = prg.NextNonzeroField<F>();
    EXPECT_EQ((a / b) * b, a);
  }
  EXPECT_TRUE(F::Zero().Inverse().IsZero());  // documented convention
}

TYPED_TEST(FieldTest, FermatLittleTheorem) {
  using F = TypeParam;
  Prg prg(13);
  for (int i = 0; i < 10; i++) {
    F a = prg.NextNonzeroField<F>();
    // a^(p-1) = 1.
    typename F::Repr e = F::kModulus;
    e.SubInPlace(typename F::Repr(uint64_t{1}));
    EXPECT_EQ(a.Pow(e), F::One());
    EXPECT_EQ(a.Pow(F::kModulus), a);
  }
}

TYPED_TEST(FieldTest, PowMatchesRepeatedMultiplication) {
  using F = TypeParam;
  Prg prg(14);
  F a = prg.NextField<F>();
  F acc = F::One();
  for (uint64_t e = 0; e < 30; e++) {
    EXPECT_EQ(a.Pow(e), acc);
    acc *= a;
  }
}

TYPED_TEST(FieldTest, CanonicalRoundTrip) {
  using F = TypeParam;
  Prg prg(15);
  for (int i = 0; i < 50; i++) {
    F a = prg.NextField<F>();
    EXPECT_EQ(F::FromCanonical(a.ToCanonical()), a);
  }
  EXPECT_EQ(F::FromUint(42).ToUint64(), 42u);
}

TYPED_TEST(FieldTest, FromIntHandlesNegatives) {
  using F = TypeParam;
  EXPECT_EQ(F::FromInt(-1) + F::One(), F::Zero());
  EXPECT_EQ(F::FromInt(-17), -F::FromUint(17));
  EXPECT_EQ(F::FromInt(INT64_MIN) + F::FromUint(uint64_t{1} << 63),
            F::Zero());
}

TYPED_TEST(FieldTest, FromLimbsFoldsPowersOfTwo64) {
  using F = TypeParam;
  uint64_t limbs[3] = {7, 9, 2};
  F expect = F::FromUint(7) +
             F::FromUint(9) * F::FromUint(2).Pow(uint64_t{64}) +
             F::FromUint(2) * F::FromUint(2).Pow(uint64_t{128});
  EXPECT_EQ(F::FromLimbs(limbs, 3), expect);
}

// Reduces an arbitrary limb pattern below the modulus so it is a valid
// Montgomery representative (the kernels' actual input domain): mask to the
// modulus bit-length (keeping the low bits of the pattern intact), then at
// most a couple of conditional subtracts finish the job.
template <typename F>
typename F::Repr ReduceBelowModulus(typename F::Repr r) {
  for (size_t bit = F::kModulusBits; bit < F::kLimbs * 64; bit++) {
    r.limbs[bit / 64] &= ~(uint64_t{1} << (bit % 64));
  }
  auto ge_modulus = [](const typename F::Repr& x) {
    for (size_t i = F::kLimbs; i-- > 0;) {
      if (x.limbs[i] != F::kModulus.limbs[i]) {
        return x.limbs[i] > F::kModulus.limbs[i];
      }
    }
    return true;  // equal counts as >=
  };
  while (ge_modulus(r)) {
    r.SubInPlace(F::kModulus);
  }
  return r;
}

// The dedicated squaring kernel (and its tuned/dispatched variants) must be
// bit-identical to the general product a*a — not just on random elements but
// on the limb patterns that stress its carry paths: zero, one, p-1, a single
// saturated limb, all-ones, and bit runs that straddle limb boundaries.
TYPED_TEST(FieldTest, MontSqrMatchesMontMulOnAdversarialPatterns) {
  using F = TypeParam;
  using Repr = typename F::Repr;
  std::vector<Repr> patterns;
  patterns.push_back(Repr{});                    // zero
  patterns.push_back(Repr(uint64_t{1}));         // one
  Repr pm1 = F::kModulus;
  pm1.SubInPlace(Repr(uint64_t{1}));
  patterns.push_back(pm1);                       // p - 1
  for (size_t limb = 0; limb < F::kLimbs; limb++) {
    Repr single{};
    single.limbs[limb] = ~uint64_t{0};           // one saturated limb
    patterns.push_back(single);
    Repr straddle{};
    straddle.limbs[limb] = uint64_t{1} << 63;    // run across the boundary
    if (limb + 1 < F::kLimbs) {
      straddle.limbs[limb + 1] = 1;
    }
    patterns.push_back(straddle);
  }
  Repr ones;
  for (size_t limb = 0; limb < F::kLimbs; limb++) {
    ones.limbs[limb] = ~uint64_t{0};             // all ones
  }
  patterns.push_back(ones);
  Prg prg(21);
  for (int i = 0; i < 50; i++) {
    patterns.push_back(prg.template NextField<F>().ToCanonical());
  }
  for (Repr r : patterns) {
    r = ReduceBelowModulus<F>(r);
    const Repr via_mul = F::MontMul(r, r);
    EXPECT_EQ(F::MontSqr(r), via_mul);      // generic squaring kernel
    EXPECT_EQ(F::MontSqrAuto(r), via_mul);  // runtime-dispatched kernel
    EXPECT_EQ(F::MontMulAuto(r, r), via_mul);
    const F x = F::FromMontgomery(r);
    EXPECT_EQ(x.Square(), x * x);           // element-level dispatch
  }
}

// The windowed Pow must be bit-identical to the frozen bit-at-a-time
// PowNaive across random exponents and the shapes that stress the window
// scanner: 0, 1, p-1, p, p-2, lone bits, and dense all-ones exponents.
TYPED_TEST(FieldTest, WindowedPowMatchesPowNaive) {
  using F = TypeParam;
  using Repr = typename F::Repr;
  Prg prg(22);
  std::vector<Repr> exps;
  exps.push_back(Repr{});                  // 0
  exps.push_back(Repr(uint64_t{1}));       // 1
  Repr pm1 = F::kModulus;
  pm1.SubInPlace(Repr(uint64_t{1}));
  exps.push_back(pm1);                     // p - 1
  exps.push_back(F::kModulus);             // p (exponents need not be < p)
  exps.push_back(F::kFermatExponent);      // p - 2 (the Inverse walk)
  for (size_t bit = 0; bit < F::kLimbs * 64; bit += 13) {
    Repr lone{};
    lone.limbs[bit / 64] = uint64_t{1} << (bit % 64);
    exps.push_back(lone);                  // single-bit exponents
  }
  Repr dense;
  for (size_t limb = 0; limb < F::kLimbs; limb++) {
    dense.limbs[limb] = ~uint64_t{0};
  }
  exps.push_back(dense);                   // maximally dense exponent
  for (int i = 0; i < 10; i++) {
    exps.push_back(prg.template NextField<F>().ToCanonical());
  }
  const F a = prg.template NextNonzeroField<F>();
  const F b = prg.template NextField<F>();
  for (const Repr& e : exps) {
    EXPECT_EQ(a.Pow(e), a.PowNaive(e));
    EXPECT_EQ(b.Pow(e), b.PowNaive(e));
    EXPECT_EQ(F::Zero().Pow(e), F::Zero().PowNaive(e));
    EXPECT_EQ(F::One().Pow(e), F::One().PowNaive(e));
  }
}

TYPED_TEST(FieldTest, BatchInvertMatchesIndividualInverses) {
  using F = TypeParam;
  Prg prg(16);
  std::vector<F> v = prg.NextFieldVector<F>(40);
  v[7] = F::Zero();  // zeros must be passed through untouched
  std::vector<F> expect(v.size());
  for (size_t i = 0; i < v.size(); i++) {
    expect[i] = v[i].Inverse();
  }
  BatchInvert(v.data(), v.size());
  EXPECT_EQ(v, expect);
  EXPECT_TRUE(v[7].IsZero());
}

TYPED_TEST(FieldTest, ModulusIsPrimeMillerRabin) {
  using F = TypeParam;
  // Miller-Rabin using the field's own arithmetic: p-1 = 2^r * d.
  typename F::Repr d = F::kModulus;
  d.SubInPlace(typename F::Repr(uint64_t{1}));
  size_t r = 0;
  while (!d.IsOdd()) {
    d.Shr1InPlace();
    r++;
  }
  ASSERT_GE(r, 1u);
  Prg prg(17);
  for (int round = 0; round < 12; round++) {
    F a = prg.NextNonzeroField<F>();
    F x = a.Pow(d);
    if (x.IsOne() || x == -F::One()) {
      continue;
    }
    bool witness = true;
    for (size_t i = 0; i + 1 < r; i++) {
      x = x.Square();
      if (x == -F::One()) {
        witness = false;
        break;
      }
    }
    EXPECT_FALSE(witness) << "modulus failed Miller-Rabin";
  }
}

TEST(FieldParamsTest, ModuliMatchTheDocumentedValues) {
  // q128 = 2^128 - 159.
  F128 v = F128::FromUint(0);
  (void)v;
  BigInt<2> q128 = F128::kModulus;
  q128.AddInPlace(BigInt<2>(uint64_t{159}));
  EXPECT_TRUE(q128.IsZero());  // wrapped around 2^128 exactly
  // q220 = 2^220 - 77.
  BigInt<4> q220 = F220::kModulus;
  q220.AddInPlace(BigInt<4>(uint64_t{77}));
  BigInt<4> two220;
  two220.limbs[3] = uint64_t{1} << (220 - 192);
  EXPECT_EQ(q220, two220);
  EXPECT_EQ(F128::kModulusBits, 128u);
  EXPECT_EQ(F220::kModulusBits, 220u);
}

TEST(PrgFieldTest, SamplesAreWellDistributed) {
  // Crude uniformity check: the top bit of canonical values should be set
  // about half the time for F128 (modulus is just below 2^128).
  Prg prg(18);
  int top = 0;
  const int kSamples = 2000;
  for (int i = 0; i < kSamples; i++) {
    if (prg.NextField<F128>().ToCanonical().Bit(127)) {
      top++;
    }
  }
  EXPECT_GT(top, kSamples / 2 - 200);
  EXPECT_LT(top, kSamples / 2 + 200);
}

}  // namespace
}  // namespace zaatar
