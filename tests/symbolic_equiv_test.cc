// Tests for the symbolic equivalence checker (src/analysis/symbolic):
// every seeded-defect fixture from analysis_test.cc is driven through the
// symbolic layer — underconstrained systems must yield a concrete second
// witness that replays (every equation holds, the assignment differs), the
// structural defects must keep their exact rule IDs, and DropConstraint
// fault injection on compiled programs must be flagged with a replayable
// certificate. The verdict ladder (algebraic / Schwartz-Zippel / exhaustive
// / consistent) is pinned program-by-program.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/analysis/symbolic/equivalence.h"
#include "src/apps/suite.h"
#include "src/compiler/compile.h"
#include "src/constraints/transform.h"
#include "src/crypto/prg.h"
#include "src/field/fields.h"
#include "src/testing/fault_injection.h"

namespace zaatar {
namespace {

using F = F128;
using LC = LinearCombination<F>;

LC Var(uint32_t v) { return LC::Variable(v); }

std::vector<bool> NoExempt(size_t n) { return std::vector<bool>(n, false); }

// ----- second-witness certificates for the underconstrained fixtures -----

// analysis_test fixture: x·x = w0 pins w0; w1² = x admits two roots. The
// symbolic layer must produce the other root as a replayable witness.
TEST(SymbolicEquivTest, SecondWitnessProvesSquareRootAmbiguity) {
  R1cs<F> r;
  r.layout = {2, 1, 0};  // w0, w1, then input x = var 2
  {
    R1csConstraint<F> c;
    c.a = Var(2);
    c.b = Var(2);
    c.c = Var(0);
    r.constraints.push_back(c);
  }
  {
    R1csConstraint<F> c;
    c.a = Var(1);
    c.b = Var(1);
    c.c = Var(2);
    r.constraints.push_back(c);
  }
  auto eqs = LowerToIr(r);
  // Nominal witness for x = 4: w0 = 16, w1 = 2.
  std::vector<F> nominal = {F::FromUint(16), F::FromUint(2), F::FromUint(4)};
  ASSERT_TRUE(symbolic_internal::AllEqsHold(eqs, nominal));

  auto sw = FindSecondWitness(eqs, r.layout, nominal, {1}, NoExempt(3));
  ASSERT_TRUE(sw.found);
  EXPECT_EQ(sw.pinned_var, 1u);
  // Replay the certificate: all equations hold, and the witness is the
  // other square root of 4.
  EXPECT_TRUE(symbolic_internal::AllEqsHold(eqs, sw.witness));
  EXPECT_TRUE(sw.witness[1] == -F::FromUint(2));
  EXPECT_TRUE(sw.witness[2] == nominal[2]) << "inputs must stay fixed";
}

// analysis_test fixture: a variable absent from every constraint. Any value
// works for it, so a second witness always exists.
TEST(SymbolicEquivTest, SecondWitnessProvesDeadVariable) {
  R1cs<F> r;
  r.layout = {2, 1, 0};  // w1 never referenced
  {
    R1csConstraint<F> c;
    c.a = Var(2);
    c.b = Var(2);
    c.c = Var(0);
    r.constraints.push_back(c);
  }
  auto eqs = LowerToIr(r);
  std::vector<F> nominal = {F::FromUint(9), F::Zero(), F::FromUint(3)};
  auto sw = FindSecondWitness(eqs, r.layout, nominal, {1}, NoExempt(3));
  ASSERT_TRUE(sw.found);
  EXPECT_TRUE(symbolic_internal::AllEqsHold(eqs, sw.witness));
  EXPECT_FALSE(sw.witness[1] == nominal[1]);
  // The dead-variable finding itself keeps its rule ID.
  EXPECT_EQ(AnalyzeR1cs(r).CountRule(kRuleDeadVariable), 1u);
}

// analysis_test fixture: the is-zero gadget without v·b = 0. b is free; the
// search must exhibit an assignment with b off-nominal.
TEST(SymbolicEquivTest, SecondWitnessProvesIsZeroMissingProduct) {
  GingerSystem<F> g;
  g.layout = {2, 1, 0};  // m = w0, b = w1, v = input var 2
  GingerConstraint<F> c1;  // v·m + b - 1 = 0
  c1.quad.push_back({2, 0, F::One()});
  c1.linear.AddTerm(1, F::One());
  c1.linear.AddConstant(-F::One());
  g.constraints.push_back(c1);
  auto eqs = LowerToIr(g);
  // Nominal for v = 5: m = 1/5, b = 0.
  F v = F::FromUint(5);
  std::vector<F> nominal = {v.Inverse(), F::Zero(), v};
  ASSERT_TRUE(symbolic_internal::AllEqsHold(eqs, nominal));
  auto sw = FindSecondWitness(eqs, g.layout, nominal, {0, 1}, NoExempt(3));
  ASSERT_TRUE(sw.found);
  EXPECT_TRUE(symbolic_internal::AllEqsHold(eqs, sw.witness));
  EXPECT_TRUE(AnalyzeSystem(g).HasRule(kRuleUnderconstrained));
}

// analysis_test fixture: repeated weight {1,2,2,8} makes subset sums
// collide. The second witness is a different bit pattern for the same input
// — reachable only through the zero-fallback repropagation mode.
TEST(SymbolicEquivTest, SecondWitnessProvesDecompositionCollision) {
  GingerSystem<F> g;
  std::vector<uint64_t> weights = {1, 2, 2, 8};
  g.layout = {weights.size(), 1, 0};
  for (uint32_t i = 0; i < weights.size(); i++) {
    GingerConstraint<F> bc;  // b·b - b = 0
    bc.quad.push_back({i, i, F::One()});
    bc.linear.AddTerm(i, -F::One());
    g.constraints.push_back(bc);
  }
  GingerConstraint<F> sum;  // sum w_i b_i - x = 0
  for (uint32_t i = 0; i < weights.size(); i++) {
    sum.linear.AddTerm(i, F::FromUint(weights[i]));
  }
  sum.linear.AddTerm(4, -F::One());
  g.constraints.push_back(sum);
  auto eqs = LowerToIr(g);
  // x = 2 decomposes as 0·1+1·2+0·2+0·8 or 0·1+0·2+1·2+0·8.
  std::vector<F> nominal = {F::Zero(), F::One(), F::Zero(), F::Zero(),
                           F::FromUint(2)};
  ASSERT_TRUE(symbolic_internal::AllEqsHold(eqs, nominal));
  auto sw =
      FindSecondWitness(eqs, g.layout, nominal, {0, 1, 2, 3}, NoExempt(5));
  ASSERT_TRUE(sw.found);
  EXPECT_TRUE(symbolic_internal::AllEqsHold(eqs, sw.witness));
  // The second witness must still be boolean in every bit (it satisfies
  // b² = b) yet differ — i.e. it is the colliding subset, not noise.
  for (size_t i = 0; i < 4; i++) {
    EXPECT_TRUE(sw.witness[i].IsZero() || sw.witness[i] == F::One());
  }
  EXPECT_TRUE(AnalyzeSystem(g).HasRule(kRuleUnderconstrained));
}

// ----- structural fixtures keep their exact rule IDs, and the symbolic
// layer refuses (rather than crashes on) malformed systems -----

TEST(SymbolicEquivTest, StructuralDefectsKeepRuleIdsAndDoNotCrashSearch) {
  GingerSystem<F> g;
  g.layout = {1, 1, 0};
  g.constraints.emplace_back();  // 0 = 0
  {
    GingerConstraint<F> c;  // 5 = 0
    c.linear.AddConstant(F::FromUint(5));
    g.constraints.push_back(c);
  }
  {
    GingerConstraint<F> c;  // references variable 9 in a 2-variable layout
    c.linear.AddTerm(9, F::One());
    g.constraints.push_back(c);
  }
  AnalysisReport report = AnalyzeSystem(g);
  EXPECT_EQ(report.CountRule(kRuleTrivialConstraint), 1u);
  EXPECT_EQ(report.CountRule(kRuleUnsatisfiableConstraint), 1u);
  EXPECT_EQ(report.CountRule(kRuleIndexOutOfBounds), 1u);

  // The out-of-bounds reference makes the system uncertifiable: the search
  // must return not-found instead of reading past the witness vector.
  auto eqs = LowerToIr(g);
  std::vector<F> nominal = {F::Zero(), F::Zero()};
  auto sw = FindSecondWitness(eqs, g.layout, nominal, {0}, NoExempt(2));
  EXPECT_FALSE(sw.found);
}

TEST(SymbolicEquivTest, DuplicateConstraintKeepsRuleId) {
  R1cs<F> r;
  r.layout = {1, 1, 0};
  {
    R1csConstraint<F> c;
    c.a = Var(1);
    c.b = Var(1);
    c.c = Var(0);
    r.constraints.push_back(c);
  }
  {
    R1csConstraint<F> c;  // (2x)·(3x) = 6·w0
    c.a = Var(1) * F::FromUint(2);
    c.b = Var(1) * F::FromUint(3);
    c.c = Var(0) * F::FromUint(6);
    r.constraints.push_back(c);
  }
  EXPECT_EQ(AnalyzeR1cs(r).CountRule(kRuleDuplicateConstraint), 1u);
}

TEST(SymbolicEquivTest, TransformMismatchKeepsRuleId) {
  GingerSystem<F> g;
  g.layout = {1, 2, 0};
  GingerConstraint<F> c;  // x1·x2 + x1·x1 - w0 = 0
  c.quad.push_back({1, 2, F::One()});
  c.quad.push_back({1, 1, F::One()});
  c.linear.AddTerm(0, -F::One());
  g.constraints.push_back(c);
  ZaatarTransform<F> broken = GingerToZaatar(g);
  broken.r1cs.constraints.pop_back();
  AnalysisReport report;
  CheckTransform(g, broken, &report);
  EXPECT_TRUE(report.HasRule(kRuleTransformMismatch));
  EXPECT_TRUE(report.HasErrors());
}

// Satellite regression: product rows synthesized by the Ginger->Zaatar
// transform must inherit a source line from the constraints that use the
// quadratic pair, so equivalence counterexamples blame a real line instead
// of line 0.
TEST(SymbolicEquivTest, TransformProductRowsCarrySourceLines) {
  auto program = CompileZlang<F>(R"(
program located;
input int32 a;
input int32 b;
output int<70> y;
output int<70> z;
y = a * a + 3 * b;
z = a * b;
)");
  ASSERT_EQ(program.zaatar.r1cs.source_lines.size(),
            program.zaatar.r1cs.NumConstraints());
  for (size_t j = 0; j < program.zaatar.r1cs.source_lines.size(); j++) {
    EXPECT_NE(program.zaatar.r1cs.source_lines[j], 0u)
        << "R1CS row " << j << " lost its source attribution";
  }
}

// ----- DropConstraint fault injection on compiled programs -----

// Deleting any constraint from a gadget-free compiled program must both
// (a) raise an ERROR finding and (b) admit a concrete second witness whose
// replay certifies the underconstrainedness.
TEST(SymbolicEquivTest, DropConstraintAlwaysYieldsReplayableSecondWitness) {
  auto program = CompileZlang<F>(R"(
program dropme;
input int16 a;
input int16 b;
output int<70> y;
var int<34> t;
t = a * b + 2 * a;
y = t * t;
)");
  std::vector<F> inputs = {EncodeSignedInt<F>(3), EncodeSignedInt<F>(4)};
  std::vector<F> nominal = program.SolveGinger(inputs);
  ASSERT_TRUE(program.ginger.IsSatisfied(nominal));

  size_t n = program.ginger.NumConstraints();
  ASSERT_GT(n, 0u);
  for (size_t j = 0; j < n; j++) {
    SCOPED_TRACE("dropped constraint " + std::to_string(j));
    GingerSystem<F> dropped = DropConstraint(program.ginger, j);
    AnalysisReport report = AnalyzeSystem(dropped);
    EXPECT_TRUE(report.HasErrors());

    auto eqs = LowerToIr(dropped);
    DeterminismAnalysis<F> det(eqs, dropped.layout, AnalysisLayer::kGinger);
    AnalysisReport det_report;
    det.Run(&det_report);
    std::vector<uint32_t> free_vars;
    for (size_t v = 0; v < dropped.layout.Total(); v++) {
      if (!det.determined()[v] && !det.exempt()[v]) {
        free_vars.push_back(static_cast<uint32_t>(v));
      }
    }
    std::vector<bool> exempt(det.exempt().begin(), det.exempt().end());
    auto sw = FindSecondWitness(eqs, dropped.layout, nominal, free_vars,
                                exempt);
    EXPECT_TRUE(sw.found);
    if (sw.found) {
      EXPECT_TRUE(symbolic_internal::AllEqsHold(eqs, sw.witness));
      bool differs = false;
      for (size_t i = 0; i < sw.witness.size(); i++) {
        differs |= !(sw.witness[i] == nominal[i]);
      }
      EXPECT_TRUE(differs);
    }
  }
}

// Gadget-bearing programs (idiv/imod) have exempt auxiliaries. Almost every
// single-constraint drop is detected — by a determinism ERROR, by a second
// witness, or both — but a handful of gadget side-condition rows free only
// slack mediated through exempt variables, which the pin-one-variable
// search cannot reach (documented limit, DESIGN.md §14). The test pins the
// exact detection floor so any regression in either detector shows up.
TEST(SymbolicEquivTest, DropConstraintOnGadgetProgramIsDetected) {
  auto program = CompileZlang<F>(R"(
program division;
input int32 a;
input int32 b;
output int32 q;
output int32 r;
q = idiv(a, b);
r = imod(a, b);
)");
  std::vector<F> inputs = {EncodeSignedInt<F>(17), EncodeSignedInt<F>(5)};
  std::vector<F> nominal = program.SolveGinger(inputs);
  ASSERT_TRUE(program.ginger.IsSatisfied(nominal));

  size_t n = program.ginger.NumConstraints();
  size_t found_witness = 0;
  size_t detected = 0;
  for (size_t j = 0; j < n; j++) {
    SCOPED_TRACE("dropped constraint " + std::to_string(j));
    GingerSystem<F> dropped = DropConstraint(program.ginger, j);
    bool has_errors = AnalyzeSystem(dropped).HasErrors();

    auto eqs = LowerToIr(dropped);
    DeterminismAnalysis<F> det(eqs, dropped.layout, AnalysisLayer::kGinger);
    AnalysisReport det_report;
    det.Run(&det_report);
    std::vector<uint32_t> free_vars;
    for (size_t v = 0; v < dropped.layout.Total(); v++) {
      if (!det.determined()[v] && !det.exempt()[v]) {
        free_vars.push_back(static_cast<uint32_t>(v));
      }
    }
    std::vector<bool> exempt(det.exempt().begin(), det.exempt().end());
    auto sw = FindSecondWitness(eqs, dropped.layout, nominal, free_vars,
                                exempt);
    if (sw.found) {
      found_witness++;
      EXPECT_TRUE(symbolic_internal::AllEqsHold(eqs, sw.witness));
    }
    detected += (has_errors || sw.found) ? 1 : 0;
  }
  // 206 of 210 drops in this program are detected; the 4 escapes are
  // gadget side-condition rows (see the test comment).
  EXPECT_GE(detected + 4, n);
  EXPECT_GE(found_witness, n / 2)
      << "second-witness search regressed on gadget programs";
}

// ----- findings carry counterexamples with exact rule IDs -----

TEST(SymbolicEquivTest, EmitEquivFindingsCarriesCounterexamples) {
  {
    EquivResult r;
    r.status = EquivStatus::kMismatch;
    r.detail = "concrete separating input found and shrunk";
    r.counterexample = {3, -4};
    r.note = "output 0: 7 vs 12";
    r.source_line = 9;
    AnalysisReport report;
    EmitEquivFindings(r, &report);
    ASSERT_EQ(report.findings().size(), 1u);
    const Finding& f = report.findings()[0];
    EXPECT_EQ(f.rule_id, kRuleEquivMismatch);
    EXPECT_EQ(f.severity, Severity::kError);
    EXPECT_EQ(f.location.source_line, 9u);
    ASSERT_EQ(f.counterexample.size(), 2u);
    EXPECT_EQ(f.counterexample[0], "3");
    EXPECT_EQ(f.counterexample[1], "-4");
    EXPECT_EQ(f.counterexample_note, "output 0: 7 vs 12");
    // Rendered form exposes the replay input.
    EXPECT_NE(f.Render().find("ZL021"), std::string::npos);
    EXPECT_NE(f.Render().find("3 -4"), std::string::npos);
  }
  {
    EquivResult r;
    r.status = EquivStatus::kUnderconstrained;
    r.counterexample = {5};
    r.note = "w7: 2 vs -2";
    AnalysisReport report;
    EmitEquivFindings(r, &report);
    ASSERT_EQ(report.findings().size(), 1u);
    EXPECT_EQ(report.findings()[0].rule_id, kRuleUnderconstrainedProven);
    EXPECT_EQ(report.findings()[0].severity, Severity::kError);
  }
  {
    EquivResult r;
    r.status = EquivStatus::kUnknown;
    AnalysisReport report;
    EmitEquivFindings(r, &report);
    ASSERT_EQ(report.findings().size(), 1u);
    EXPECT_EQ(report.findings()[0].rule_id, kRuleEquivUnknown);
    EXPECT_EQ(report.findings()[0].severity, Severity::kWarning);
  }
  {
    EquivResult r;  // proof-grade verdicts produce no findings
    r.status = EquivStatus::kEquivalentAlgebraic;
    AnalysisReport report;
    EmitEquivFindings(r, &report);
    EXPECT_TRUE(report.Empty());
  }
}

// ----- the verdict ladder, program by program -----

TEST(SymbolicEquivTest, PolynomialProgramsProveAlgebraically) {
  EquivResult r = ProveEquivalence<F>(R"(
program horner;
const D = 4;
input int16 coeff[D + 1];
input int16 x;
output int<90> y;
var int<90> acc;
acc = coeff[D];
for i in 1..D {
  acc = acc * x + coeff[D - i];
}
y = acc;
)");
  EXPECT_EQ(r.status, EquivStatus::kEquivalentAlgebraic) << r.detail;
  EXPECT_TRUE(r.unique_witness);
  EXPECT_TRUE(EquivStatusIsProof(r.status));
}

// (sum of 8 inputs)^8 has C(15,8) = 6435 monomials — past the normal-form
// cap on both sides — but stays polynomial, so the decider falls through to
// Schwartz-Zippel sampling at random field points.
TEST(SymbolicEquivTest, WideProductsProveBySchwartzZippel) {
  EquivResult r = ProveEquivalence<F>(R"(
program szpow;
input int<8> a0;
input int<8> a1;
input int<8> a2;
input int<8> a3;
input int<8> a4;
input int<8> a5;
input int<8> a6;
input int<8> a7;
output int<100> y;
var int<12> s;
s = a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7;
y = s * s * s * s * s * s * s * s;
)");
  EXPECT_EQ(r.status, EquivStatus::kEquivalentSchwartzZippel) << r.detail;
  EXPECT_TRUE(EquivStatusIsProof(r.status));
}

// A dynamic comparison leaves the polynomial fragment, but the declared
// domain (two 3-bit inputs) is small enough to enumerate outright.
TEST(SymbolicEquivTest, TinyDomainsProveExhaustively) {
  EquivResult r = ProveEquivalence<F>(R"(
program tinymin;
input int<3> a;
input int<3> b;
output int<4> y;
y = a < b ? a : b;
)");
  EXPECT_EQ(r.status, EquivStatus::kEquivalentExhaustive) << r.detail;
  EXPECT_TRUE(EquivStatusIsProof(r.status));
}

// The analysis_test example programs must never be flagged: each reaches a
// proof-grade verdict (algebraic, exhaustive, or consistent).
TEST(SymbolicEquivTest, ExampleProgramsReachProofGradeVerdicts) {
  const std::pair<const char*, const char*> programs[] = {
      {"quickstart", R"(
program quickstart;
const N = 4;
input int32 x[N];
output int<70> best;
var int<70> v;
var int<70> b;
b = x[0] * x[0] + 3 * x[0];
for i in 1..N-1 {
  v = x[i] * x[i] + 3 * x[i];
  if (v > b) { b = v; }
}
best = b;
)"},
      {"division", R"(
program division;
input int32 a;
input int32 b;
output int32 q;
output int32 r;
q = idiv(a, b);
r = imod(a, b);
)"},
      {"bitops", R"(
program bitops;
input int32 a;
input int32 b;
output int32 mixed;
var int32 t;
t = a & b;
mixed = t ^ (a | b);
)"},
      {"equality", R"(
program equality;
input int32 a;
input int32 b;
output bool same;
output int32 pick;
same = a == b;
pick = a == 7 ? b : a;
)"},
  };
  for (const auto& [name, source] : programs) {
    SCOPED_TRACE(name);
    EquivResult r = ProveEquivalence<F>(source);
    EXPECT_TRUE(EquivStatusIsProof(r.status))
        << EquivStatusName(r.status) << ": " << r.detail;
    EXPECT_NE(r.status, EquivStatus::kMismatch);
    EXPECT_NE(r.status, EquivStatus::kUnderconstrained);
  }
}

// The analyzer entry point with equivalence enabled: clean programs produce
// zero ZL021/ZL022/ZL023 findings end to end.
TEST(SymbolicEquivTest, AnalyzeSourceWithEquivalenceStaysClean) {
  auto app = MakeLcsApp(4);
  AnalyzeOptions options;
  options.equivalence = true;
  EquivResult equiv;
  AnalysisReport report = AnalyzeSource<F>(app.source, options, &equiv);
  EXPECT_EQ(report.CountRule(kRuleEquivMismatch), 0u);
  EXPECT_EQ(report.CountRule(kRuleUnderconstrainedProven), 0u);
  EXPECT_EQ(report.CountRule(kRuleEquivUnknown), 0u);
  EXPECT_TRUE(EquivStatusIsProof(equiv.status))
      << EquivStatusName(equiv.status) << ": " << equiv.detail;
}

}  // namespace
}  // namespace zaatar
