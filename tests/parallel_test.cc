// ParallelFor thread-accounting tests. The exception-propagation and
// coverage behavior is exercised in cost_model_test.cc; this file pins the
// spawn policy: never more OS threads than indices (a pool of 60 workers on
// a 3-instance batch used to start 60 threads, 57 of which only lost the
// index race and exited).

#include "src/util/parallel_for.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace zaatar {
namespace {

TEST(ParallelForSpawnTest, ClampsThreadsToIndexCount) {
  size_t spawned = ~size_t{0};
  std::atomic<size_t> calls{0};
  ParallelFor(3, 16, [&](size_t) { calls.fetch_add(1); }, &spawned);
  EXPECT_EQ(spawned, 3u);
  EXPECT_EQ(calls.load(), 3u);

  // n == workers and n > workers keep the requested pool size.
  ParallelFor(8, 8, [&](size_t) {}, &spawned);
  EXPECT_EQ(spawned, 8u);
  ParallelFor(100, 4, [&](size_t) {}, &spawned);
  EXPECT_EQ(spawned, 4u);
}

TEST(ParallelForSpawnTest, DegenerateSizesRunInline) {
  // n <= 1 or workers <= 1 must not start any thread.
  for (auto [n, workers] : std::vector<std::pair<size_t, size_t>>{
           {0, 8}, {1, 8}, {10, 1}, {10, 0}, {0, 0}}) {
    size_t spawned = ~size_t{0};
    std::atomic<size_t> calls{0};
    std::set<std::thread::id> ids;
    std::mutex mu;
    ParallelFor(
        n, workers,
        [&](size_t) {
          calls.fetch_add(1);
          std::lock_guard<std::mutex> lock(mu);
          ids.insert(std::this_thread::get_id());
        },
        &spawned);
    EXPECT_EQ(spawned, 0u) << "n=" << n << " workers=" << workers;
    EXPECT_EQ(calls.load(), n);
    // The inline path runs on the calling thread only.
    for (const auto& id : ids) {
      EXPECT_EQ(id, std::this_thread::get_id());
    }
  }
}

TEST(ParallelForSpawnTest, ClampedPoolStillCoversAllIndices) {
  // The regression scenario: far more workers than indices. Every index runs
  // exactly once, and the set of distinct executing threads never exceeds
  // the clamp.
  const size_t n = 5;
  std::vector<std::atomic<int>> hits(n);
  std::set<std::thread::id> ids;
  std::mutex mu;
  size_t spawned = 0;
  ParallelFor(
      n, 64,
      [&](size_t i) {
        hits[i].fetch_add(1);
        std::lock_guard<std::mutex> lock(mu);
        ids.insert(std::this_thread::get_id());
      },
      &spawned);
  EXPECT_EQ(spawned, n);
  EXPECT_LE(ids.size(), n);
  for (size_t i = 0; i < n; i++) {
    EXPECT_EQ(hits[i].load(), 1);
  }
}

}  // namespace
}  // namespace zaatar
