#include "src/compiler/solver.h"

#include <gtest/gtest.h>

#include "src/compiler/compile.h"
#include "src/crypto/prg.h"
#include "src/field/fields.h"

namespace zaatar {
namespace {

using F = F128;
using Op = SolverOp<F>;
using LC = LinearCombination<F>;

TEST(SolverTest, AffineOp) {
  Op op;
  op.kind = Op::Kind::kAffine;
  op.dst = 2;
  op.a = LC(F::FromUint(5));
  op.a.AddTerm(0, F::FromUint(3));
  std::vector<F> w = {F::FromUint(4), F::Zero(), F::Zero()};
  RunSolver<F>({op}, &w);
  EXPECT_EQ(w[2], F::FromUint(17));
}

TEST(SolverTest, ProductWithAffinePost) {
  // dst = 1 - a*b  (the IsZero helper form).
  Op op;
  op.kind = Op::Kind::kProduct;
  op.dst = 2;
  op.a = LC::Variable(0);
  op.b = LC::Variable(1);
  op.c0 = F::One();
  op.c1 = -F::One();
  std::vector<F> w = {F::FromUint(6), F::FromUint(7), F::Zero()};
  RunSolver<F>({op}, &w);
  EXPECT_EQ(w[2], F::One() - F::FromUint(42));
}

TEST(SolverTest, InvOrZero) {
  Op op;
  op.kind = Op::Kind::kInvOrZero;
  op.dst = 1;
  op.a = LC::Variable(0);
  std::vector<F> w = {F::FromUint(9), F::Zero()};
  RunSolver<F>({op}, &w);
  EXPECT_EQ(w[1] * F::FromUint(9), F::One());
  w = {F::Zero(), F::FromUint(123)};
  RunSolver<F>({op}, &w);
  EXPECT_TRUE(w[1].IsZero());
}

TEST(SolverTest, BitsDecomposeCanonicalValue) {
  Op op;
  op.kind = Op::Kind::kBits;
  op.a = LC::Variable(0);
  op.bit_dsts = {1, 2, 3, 4};
  std::vector<F> w(5, F::Zero());
  w[0] = F::FromUint(0b1011);
  RunSolver<F>({op}, &w);
  EXPECT_EQ(w[1], F::One());
  EXPECT_EQ(w[2], F::One());
  EXPECT_EQ(w[3], F::Zero());
  EXPECT_EQ(w[4], F::One());
}

TEST(SolverTest, BitsThrowsOnOverflowingValue) {
  Op op;
  op.kind = Op::Kind::kBits;
  op.a = LC::Variable(0);
  op.bit_dsts = {1, 2};
  std::vector<F> w(3, F::Zero());
  w[0] = F::FromUint(4);  // needs 3 bits
  EXPECT_THROW(RunSolver<F>({op}, &w), std::runtime_error);
}

TEST(SolverTest, DivFloorPositive) {
  Op op;
  op.kind = Op::Kind::kDivFloor;
  op.dst = 2;
  op.dst2 = 3;
  op.a = LC::Variable(0);
  op.b = LC::Variable(1);
  std::vector<F> w = {F::FromUint(17), F::FromUint(5), F::Zero(), F::Zero()};
  RunSolver<F>({op}, &w);
  EXPECT_EQ(w[2], F::FromUint(3));
  EXPECT_EQ(w[3], F::FromUint(2));
}

TEST(SolverTest, DivFloorNegativeDividendUsesFloorSemantics) {
  Op op;
  op.kind = Op::Kind::kDivFloor;
  op.dst = 2;
  op.dst2 = 3;
  op.a = LC::Variable(0);
  op.b = LC::Variable(1);
  // -17 / 5: floor = -4, remainder 3 (so that -17 = -4*5 + 3).
  std::vector<F> w = {F::FromInt(-17), F::FromUint(5), F::Zero(), F::Zero()};
  RunSolver<F>({op}, &w);
  EXPECT_EQ(w[2], F::FromInt(-4));
  EXPECT_EQ(w[3], F::FromUint(3));
  // Exact negative division: -15 / 5 = -3 rem 0.
  w = {F::FromInt(-15), F::FromUint(5), F::Zero(), F::Zero()};
  RunSolver<F>({op}, &w);
  EXPECT_EQ(w[2], F::FromInt(-3));
  EXPECT_TRUE(w[3].IsZero());
}

TEST(SolverTest, DivFloorInvariantHolds) {
  Op op;
  op.kind = Op::Kind::kDivFloor;
  op.dst = 2;
  op.dst2 = 3;
  op.a = LC::Variable(0);
  op.b = LC::Variable(1);
  Prg prg(120);
  for (int i = 0; i < 50; i++) {
    int64_t a = static_cast<int64_t>(prg.NextBounded(1u << 30)) - (1 << 29);
    int64_t d = 1 + static_cast<int64_t>(prg.NextBounded(1000));
    std::vector<F> w = {F::FromInt(a), F::FromInt(d), F::Zero(), F::Zero()};
    RunSolver<F>({op}, &w);
    // a = q*d + r with 0 <= r < d.
    EXPECT_EQ(w[2] * F::FromInt(d) + w[3], F::FromInt(a));
    int64_t r = DecodeSignedInt<F>(w[3]);
    EXPECT_GE(r, 0);
    EXPECT_LT(r, d);
  }
}

TEST(SolverTest, DivFloorRejectsBadDivisors) {
  Op op;
  op.kind = Op::Kind::kDivFloor;
  op.dst = 2;
  op.dst2 = 3;
  op.a = LC::Variable(0);
  op.b = LC::Variable(1);
  std::vector<F> w = {F::FromUint(10), F::Zero(), F::Zero(), F::Zero()};
  EXPECT_THROW(RunSolver<F>({op}, &w), std::runtime_error);  // zero
  w[1] = F::FromInt(-3);
  EXPECT_THROW(RunSolver<F>({op}, &w), std::runtime_error);  // negative
}

TEST(SolverTest, OpsRunInOrder) {
  // v1 = v0 + 1; v2 = v1 * v1.
  Op op1;
  op1.kind = Op::Kind::kAffine;
  op1.dst = 1;
  op1.a = LC::Variable(0);
  op1.a.AddConstant(F::One());
  Op op2;
  op2.kind = Op::Kind::kProduct;
  op2.dst = 2;
  op2.a = LC::Variable(1);
  op2.b = LC::Variable(1);
  op2.c1 = F::One();
  std::vector<F> w = {F::FromUint(4), F::Zero(), F::Zero()};
  RunSolver<F>({op1, op2}, &w);
  EXPECT_EQ(w[2], F::FromUint(25));
}

}  // namespace
}  // namespace zaatar
