// Chaos soak for the hardened transport/session stack: randomized fault
// schedules (drop, delay, duplicate, truncate, bit-flip, stall) injected on
// both endpoints, swept across both transports and both backends. The
// contract under chaos is DESIGN.md §13's headline property: every run
// terminates with a typed per-instance verdict — the batch never hangs
// (ci.sh wraps every ctest invocation in a watchdog), never crashes, and a
// corrupted proof is never ACCEPTed.
//
// The sweep size is ZAATAR_CHAOS_SEEDS per combo (default 6 for local ctest;
// scripts/ci.sh raises it so the CI soak crosses 200 schedules total).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/apps/harness.h"
#include "src/testing/chaos_transport.h"

namespace zaatar {
namespace {

using Millis = std::chrono::milliseconds;

int SeedsPerCombo() {
  const char* env = std::getenv("ZAATAR_CHAOS_SEEDS");
  if (env != nullptr) {
    int n = std::atoi(env);
    if (n > 0) {
      return n;
    }
  }
  return 6;
}

// Tight-but-honest deadlines: generous enough that a clean local exchange
// never trips them, small enough that a dropped or stalled frame converts
// into a retry within the test's lifetime.
MeasureOptions ChaosMeasureOptions(MeasureOptions::Link link, uint64_t seed) {
  MeasureOptions opt;
  opt.measure_native = false;
  opt.link = link;
  opt.transport.recv_deadline = Millis(400);
  opt.transport.send_deadline = Millis(400);
  opt.transport.handshake_deadline = Millis(400);
  opt.transport.max_queue_frames = 8;
  opt.backoff.max_retries = 2;
  opt.backoff.initial = Millis(1);
  opt.backoff.cap = Millis(4);
  opt.backoff.jitter_seed = seed;
  opt.wrap_transport = [seed](std::unique_ptr<protocol::Transport> inner,
                              bool verifier_side, uint32_t connection) {
    // Each endpoint of each connection gets its own deterministic fault
    // stream, derived from the schedule seed.
    ChaosOptions chaos = ChaosOptions::Mixed(
        seed * 1000 + connection * 2 + (verifier_side ? 1 : 0));
    return std::unique_ptr<protocol::Transport>(
        std::make_unique<FaultyTransport>(std::move(inner), chaos));
  };
  return opt;
}

// Every instance slot must carry a verdict from the typed taxonomy, and the
// summary bookkeeping must be consistent with the per-instance results.
void ExpectTypedVerdicts(const BatchMeasurement& m, size_t beta,
                         const std::string& label) {
  ASSERT_EQ(m.instance_results.size(), beta) << label;
  size_t accepts = 0;
  for (size_t i = 0; i < beta; i++) {
    const auto v = m.instance_results[i].verdict;
    ASSERT_LT(static_cast<size_t>(v), kNumVerifyVerdicts)
        << label << " instance " << i;
    accepts += m.instance_results[i].accepted() ? 1 : 0;
  }
  EXPECT_EQ(m.verdict_counts[static_cast<size_t>(VerifyVerdict::kAccept)],
            accepts)
      << label;
  EXPECT_EQ(m.all_accepted, accepts == beta) << label;
  EXPECT_GE(m.transport_connections, 1u) << label;
}

template <typename F, typename Backend>
void SoakOneCombo(MeasureOptions::Link link, const char* label) {
  auto app = MakeLcsApp(3);
  auto program = CompileZlang<F>(app.source);
  const size_t beta = 2;
  const int seeds = SeedsPerCombo();
  for (int s = 0; s < seeds; s++) {
    const uint64_t seed = 1000 + static_cast<uint64_t>(s);
    MeasureOptions opt = ChaosMeasureOptions(link, seed);
    BatchMeasurement m;
    ASSERT_NO_THROW(m = (MeasureBatch<F, Backend>(app, program, beta,
                                                  PcpParams::Light(), seed,
                                                  opt)))
        << label << " seed " << seed;
    ExpectTypedVerdicts(m, beta,
                        std::string(label) + " seed " + std::to_string(seed));
  }
}

TEST(ChaosSoakTest, LoopbackZaatar) {
  SoakOneCombo<F128, ZaatarHarnessBackend<F128>>(MeasureOptions::Link::kLoopback,
                                                 "loopback/zaatar");
}

TEST(ChaosSoakTest, SocketpairZaatar) {
  SoakOneCombo<F128, ZaatarHarnessBackend<F128>>(
      MeasureOptions::Link::kSocketpair, "socketpair/zaatar");
}

TEST(ChaosSoakTest, LoopbackGinger) {
  SoakOneCombo<F128, GingerHarnessBackend<F128>>(MeasureOptions::Link::kLoopback,
                                                 "loopback/ginger");
}

TEST(ChaosSoakTest, SocketpairGinger) {
  SoakOneCombo<F128, GingerHarnessBackend<F128>>(
      MeasureOptions::Link::kSocketpair, "socketpair/ginger");
}

// A corrupted proof frame must never be ACCEPTed: with the prover->verifier
// direction set to flip one bit in EVERY frame, each decided instance is
// kMalformed / kRejectCommit / kRejectPcp / kTransportFailed — anything in
// the taxonomy except kAccept.
TEST(ChaosSoakTest, CorruptedProofNeverAccepts) {
  auto app = MakeLcsApp(3);
  auto program = CompileZlang<F128>(app.source);
  for (uint64_t seed = 0; seed < 8; seed++) {
    MeasureOptions opt;
    opt.measure_native = false;
    opt.transport.recv_deadline = Millis(400);
    opt.transport.send_deadline = Millis(400);
    opt.backoff.max_retries = 1;
    opt.backoff.initial = Millis(1);
    opt.backoff.jitter_seed = seed + 1;
    opt.wrap_transport = [seed](std::unique_ptr<protocol::Transport> inner,
                                bool verifier_side, uint32_t connection) {
      if (verifier_side) {
        return inner;  // setup and verdict frames stay clean
      }
      ChaosOptions chaos;
      chaos.seed = seed * 100 + connection;
      chaos.bitflip_per_mille = 1000;  // every proof frame is corrupted
      return std::unique_ptr<protocol::Transport>(
          std::make_unique<FaultyTransport>(std::move(inner), chaos));
    };
    auto m = MeasureBatch<F128, ZaatarHarnessBackend<F128>>(
        app, program, /*beta=*/2, PcpParams::Light(), seed, opt);
    ASSERT_EQ(m.instance_results.size(), 2u);
    for (const auto& r : m.instance_results) {
      EXPECT_NE(r.verdict, VerifyVerdict::kAccept)
          << "seed " << seed << ": corrupted proof accepted";
    }
    EXPECT_EQ(m.verdict_counts[static_cast<size_t>(VerifyVerdict::kAccept)],
              0u);
  }
}

// Pure channel loss (no corruption) with a retry budget: the batch degrades
// to TRANSPORT_FAILED verdicts at worst, and recovery accounting shows the
// reconnects.
TEST(ChaosSoakTest, StallDegradesToTransportFailed) {
  auto app = MakeLcsApp(3);
  auto program = CompileZlang<F128>(app.source);
  MeasureOptions opt;
  opt.measure_native = false;
  opt.transport.recv_deadline = Millis(150);
  opt.transport.send_deadline = Millis(150);
  opt.backoff.max_retries = 1;
  opt.backoff.initial = Millis(1);
  opt.backoff.jitter_seed = 3;
  opt.wrap_transport = [](std::unique_ptr<protocol::Transport> inner,
                          bool verifier_side, uint32_t connection) {
    // The prover's first connection stalls from the very first frame; later
    // connections are clean, so the batch recovers by reconnecting.
    if (verifier_side || connection > 0) {
      return inner;
    }
    ChaosOptions chaos;
    chaos.seed = 7;
    chaos.stall_per_mille = 1000;
    return std::unique_ptr<protocol::Transport>(
        std::make_unique<FaultyTransport>(std::move(inner), chaos));
  };
  auto m = MeasureBatch<F128, ZaatarHarnessBackend<F128>>(
      app, program, /*beta=*/2, PcpParams::Light(), /*seed=*/17, opt);
  ASSERT_EQ(m.instance_results.size(), 2u);
  EXPECT_TRUE(m.all_accepted)
      << "clean reconnect should recover the whole batch";
  EXPECT_GE(m.transport_connections, 2u);
  EXPECT_GE(m.transport_retries, 1u);
}

}  // namespace
}  // namespace zaatar
