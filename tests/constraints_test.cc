#include <gtest/gtest.h>

#include "src/constraints/ginger.h"
#include "src/constraints/linear_combination.h"
#include "src/constraints/r1cs.h"
#include "src/constraints/transform.h"
#include "src/field/fields.h"
#include "tests/test_util.h"

namespace zaatar {
namespace {

using F = F128;
using LC = LinearCombination<F>;

TEST(LinearCombinationTest, EvaluateWithConstant) {
  LC lc(F::FromUint(7));
  lc.AddTerm(0, F::FromUint(2));
  lc.AddTerm(2, F::FromUint(3));
  std::vector<F> w = {F::FromUint(10), F::FromUint(100), F::FromUint(5)};
  EXPECT_EQ(lc.Evaluate(w), F::FromUint(7 + 2 * 10 + 3 * 5));
}

TEST(LinearCombinationTest, ZeroCoefficientsAreDropped) {
  LC lc;
  lc.AddTerm(1, F::Zero());
  EXPECT_TRUE(lc.IsConstant());
  EXPECT_EQ(lc.TermCount(), 0u);
}

TEST(LinearCombinationTest, CompactMergesDuplicates) {
  LC lc;
  lc.AddTerm(3, F::FromUint(2));
  lc.AddTerm(1, F::FromUint(5));
  lc.AddTerm(3, F::FromUint(4));
  lc.AddTerm(1, -F::FromUint(5));  // cancels entirely
  lc.Compact();
  EXPECT_EQ(lc.TermCount(), 1u);
  EXPECT_EQ(lc.terms()[0].first, 3u);
  EXPECT_EQ(lc.terms()[0].second, F::FromUint(6));
}

TEST(LinearCombinationTest, ArithmeticAndRemap) {
  LC a = LC::Variable(0);
  LC b = LC::Variable(1);
  LC c = (a + b) * F::FromUint(3);
  c.RemapVariables([](uint32_t v) { return v + 10; });
  std::vector<F> w(12, F::Zero());
  w[10] = F::FromUint(2);
  w[11] = F::FromUint(4);
  EXPECT_EQ(c.Evaluate(w), F::FromUint(18));
}

TEST(VariableLayoutTest, RegionPredicates) {
  VariableLayout layout{3, 2, 1};
  EXPECT_EQ(layout.Total(), 6u);
  EXPECT_TRUE(layout.IsUnbound(2));
  EXPECT_FALSE(layout.IsUnbound(3));
  EXPECT_TRUE(layout.IsInput(3));
  EXPECT_TRUE(layout.IsInput(4));
  EXPECT_TRUE(layout.IsOutput(5));
  EXPECT_FALSE(layout.IsOutput(4));
}

TEST(GingerSystemTest, SatisfiabilityAndCounts) {
  Prg prg(60);
  auto rs = MakeRandomSatisfiedSystem<F>(prg, 6, 2, 2, 12);
  EXPECT_TRUE(rs.system.IsSatisfied(rs.assignment));
  EXPECT_EQ(rs.system.FirstViolated(rs.assignment), -1);
  auto bad = rs.assignment;
  bad[0] += F::One();
  EXPECT_FALSE(rs.system.IsSatisfied(bad));
  EXPECT_GE(rs.system.FirstViolated(bad), 0);
  EXPECT_GT(rs.system.AdditiveTermCount(), 0u);
  EXPECT_GT(rs.system.DistinctQuadTermCount(), 0u);
  // K2 counts unordered pairs at most once.
  EXPECT_LE(rs.system.DistinctQuadTermCount(),
            2 * rs.system.NumConstraints());
}

TEST(GingerSystemTest, K2DeduplicatesSymmetricPairs) {
  GingerSystem<F> g;
  g.layout = {3, 0, 0};
  GingerConstraint<F> c1;
  c1.quad.push_back({0, 1, F::One()});
  GingerConstraint<F> c2;
  c2.quad.push_back({1, 0, F::FromUint(5)});  // same unordered pair
  c2.quad.push_back({2, 2, F::One()});
  g.constraints = {c1, c2};
  EXPECT_EQ(g.DistinctQuadTermCount(), 2u);
}

class TransformTest : public ::testing::TestWithParam<bool> {};

TEST_P(TransformTest, PreservesSatisfiability) {
  TransformOptions options{.fold_single_quad = GetParam()};
  Prg prg(61);
  for (int trial = 0; trial < 10; trial++) {
    auto rs = MakeRandomSatisfiedSystem<F>(prg, 8, 3, 2, 15);
    auto t = GingerToZaatar(rs.system, options);
    auto w = t.ExtendAssignment(rs.assignment);
    EXPECT_TRUE(t.r1cs.IsSatisfied(w))
        << "trial " << trial << " violated " << t.r1cs.FirstViolated(w);
  }
}

TEST_P(TransformTest, RejectsPerturbedWitness) {
  TransformOptions options{.fold_single_quad = GetParam()};
  Prg prg(62);
  auto rs = MakeRandomSatisfiedSystem<F>(prg, 8, 3, 2, 15);
  auto t = GingerToZaatar(rs.system, options);
  for (size_t v = 0; v < rs.system.layout.Total(); v++) {
    auto bad = rs.assignment;
    bad[v] += F::One();
    auto w = t.ExtendAssignment(bad);
    EXPECT_FALSE(t.r1cs.IsSatisfied(w)) << "perturbing var " << v;
  }
}

TEST_P(TransformTest, LayoutAndCountRelations) {
  TransformOptions options{.fold_single_quad = GetParam()};
  Prg prg(63);
  auto rs = MakeRandomSatisfiedSystem<F>(prg, 8, 3, 2, 15);
  auto t = GingerToZaatar(rs.system, options);
  size_t k2 = t.NumAuxiliaryVariables();
  EXPECT_EQ(t.r1cs.layout.num_unbound, rs.system.layout.num_unbound + k2);
  EXPECT_EQ(t.r1cs.NumConstraints(), rs.system.NumConstraints() + k2);
  EXPECT_EQ(t.r1cs.layout.num_inputs, rs.system.layout.num_inputs);
  EXPECT_EQ(t.r1cs.layout.num_outputs, rs.system.layout.num_outputs);
  // The paper's bound: K2 <= distinct degree-2 terms.
  EXPECT_LE(k2, rs.system.DistinctQuadTermCount());
  if (!options.fold_single_quad) {
    EXPECT_EQ(k2, rs.system.DistinctQuadTermCount());
  }
}

INSTANTIATE_TEST_SUITE_P(FoldModes, TransformTest, ::testing::Bool());

TEST(TransformTest, FoldedSingleProductConstraint) {
  // z0 * z1 - z2 = 0 should become exactly one quadratic-form constraint
  // with no auxiliary variable when folding is on.
  GingerSystem<F> g;
  g.layout = {3, 0, 0};
  GingerConstraint<F> c;
  c.quad.push_back({0, 1, F::One()});
  c.linear.AddTerm(2, -F::One());
  g.constraints = {c};
  auto t = GingerToZaatar(g, {.fold_single_quad = true});
  EXPECT_EQ(t.NumAuxiliaryVariables(), 0u);
  EXPECT_EQ(t.r1cs.NumConstraints(), 1u);
  std::vector<F> w = {F::FromUint(6), F::FromUint(7), F::FromUint(42)};
  EXPECT_TRUE(t.r1cs.IsSatisfied(t.ExtendAssignment(w)));
  w[2] = F::FromUint(41);
  EXPECT_FALSE(t.r1cs.IsSatisfied(t.ExtendAssignment(w)));
}

TEST(R1csTest, ConstraintEvaluation) {
  R1csConstraint<F> c;
  c.a = LinearCombination<F>::Variable(0);
  c.b = LinearCombination<F>::Variable(1);
  c.c = LinearCombination<F>::Variable(2);
  std::vector<F> good = {F::FromUint(3), F::FromUint(4), F::FromUint(12)};
  std::vector<F> bad = {F::FromUint(3), F::FromUint(4), F::FromUint(13)};
  EXPECT_TRUE(c.IsSatisfied(good));
  EXPECT_FALSE(c.IsSatisfied(bad));
}

}  // namespace
}  // namespace zaatar
