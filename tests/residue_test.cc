#include "src/poly/residue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/crypto/prg.h"
#include "src/field/fields.h"
#include "src/poly/algorithms.h"
#include "src/poly/crt_mul.h"
#include "src/poly/polynomial.h"

namespace zaatar {
namespace {

// Synthetic fields chosen so CrtPrimeCount actually moves within testable
// lengths (the production fields pin it at 5 resp. 8 primes for every
// feasible size): F59 = 2^59 - 55 steps from 2 to 3 primes, and
// F245 = 2^245 - 163 exhausts the 8-prime basis just above length 16.
struct F59Config {
  static constexpr size_t kLimbs = 1;
  static constexpr std::array<uint64_t, 1> kModulus = {0x07FFFFFFFFFFFFC9ULL};
  static constexpr const char* kName = "F59";
};
using F59 = PrimeField<F59Config>;

struct F245Config {
  static constexpr size_t kLimbs = 4;
  static constexpr std::array<uint64_t, 4> kModulus = {
      0xFFFFFFFFFFFFFF5DULL, 0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL,
      0x001FFFFFFFFFFFFFULL};
  static constexpr const char* kName = "F245";
};
using F245 = PrimeField<F245Config>;

static_assert(F59::kModulusBits == 59);
static_assert(F245::kModulusBits == 245);

template <typename F>
class ResiduePolyTest : public ::testing::Test {
 protected:
  // Full basis: 495-bit capacity leaves headroom for chained products.
  const CrtBasis<F>& basis_ = CrtBasis<F>::Get(kNumNttPrimes);

  ResiduePoly<F> FromVec(const std::vector<F>& c, size_t workers = 1) {
    return ResiduePoly<F>::FromCoefficients(c.data(), c.size(), basis_,
                                            workers);
  }
};

using TestFields = ::testing::Types<F128, F220>;
TYPED_TEST_SUITE(ResiduePolyTest, TestFields);

TYPED_TEST(ResiduePolyTest, RoundTrip) {
  using F = TypeParam;
  Prg prg(900);
  std::vector<F> c = prg.NextFieldVector<F>(57);
  ResiduePoly<F> r = this->FromVec(c);
  EXPECT_TRUE(r.IsCanonical());
  EXPECT_EQ(r.ToCoefficients(1), c);
  for (size_t i : {size_t{0}, size_t{13}, size_t{56}}) {
    EXPECT_EQ(r.Coefficient(i), c[i]);
  }
}

TYPED_TEST(ResiduePolyTest, MulMatchesSchoolbook) {
  using F = TypeParam;
  Prg prg(901);
  for (auto [la, lb] : {std::pair<size_t, size_t>{1, 1},
                        {1, 7},
                        {8, 8},
                        {31, 33},
                        {64, 100}}) {
    std::vector<F> a = prg.NextFieldVector<F>(la);
    std::vector<F> b = prg.NextFieldVector<F>(lb);
    ResiduePoly<F> prod =
        ResiduePoly<F>::Mul(this->FromVec(a), this->FromVec(b), 1);
    EXPECT_EQ(prod.ToCoefficients(1), Polynomial<F>::NaiveMul(a, b))
        << "lengths " << la << "x" << lb;
  }
}

TYPED_TEST(ResiduePolyTest, AddAndSubMatchFieldArithmetic) {
  using F = TypeParam;
  Prg prg(902);
  std::vector<F> a = prg.NextFieldVector<F>(20);
  std::vector<F> b = prg.NextFieldVector<F>(33);
  ResiduePoly<F> ra = this->FromVec(a), rb = this->FromVec(b);
  std::vector<F> sum = ResiduePoly<F>::Add(ra, rb, 1).ToCoefficients(1);
  std::vector<F> dif = ResiduePoly<F>::Sub(ra, rb, 1).ToCoefficients(1);
  for (size_t i = 0; i < 33; i++) {
    F av = i < a.size() ? a[i] : F::Zero();
    EXPECT_EQ(sum[i], av + b[i]);
    EXPECT_EQ(dif[i], av - b[i]);
  }
}

// (a - b) * c evaluated without an intermediate renormalize: the padded
// subtraction keeps integer coefficients non-negative and the product bound
// within capacity, so the single final fold must still land on the exact
// field value.
TYPED_TEST(ResiduePolyTest, SubThenMulSingleFold) {
  using F = TypeParam;
  Prg prg(903);
  std::vector<F> a = prg.NextFieldVector<F>(25);
  std::vector<F> b = prg.NextFieldVector<F>(25);
  std::vector<F> c = prg.NextFieldVector<F>(10);
  ResiduePoly<F> d =
      ResiduePoly<F>::Sub(this->FromVec(a), this->FromVec(b), 1);
  EXPECT_FALSE(d.IsCanonical());
  std::vector<F> got =
      ResiduePoly<F>::Mul(d, this->FromVec(c), 1).ToCoefficients(1);
  std::vector<F> ab(25);
  for (size_t i = 0; i < 25; i++) {
    ab[i] = a[i] - b[i];
  }
  EXPECT_EQ(got, Polynomial<F>::NaiveMul(ab, c));
}

TYPED_TEST(ResiduePolyTest, RenormalizeRestoresCanonicalQueries) {
  using F = TypeParam;
  Prg prg(904);
  std::vector<F> a = prg.NextFieldVector<F>(15);
  ResiduePoly<F> ra = this->FromVec(a);
  ResiduePoly<F> diff = ResiduePoly<F>::Sub(ra, ra, 1);
  diff.Renormalize(1);
  EXPECT_TRUE(diff.IsCanonical());
  EXPECT_TRUE(diff.IsZero());
  EXPECT_EQ(diff.Degree(), -1);

  std::vector<F> b = a;
  b[7] += F::One();
  ResiduePoly<F> d2 = ResiduePoly<F>::Sub(ra, this->FromVec(b), 1);
  d2.Renormalize(1);
  EXPECT_FALSE(d2.IsZero());
  EXPECT_EQ(d2.Degree(), 7);
  EXPECT_EQ(d2.Coefficient(7), -F::One());
}

TYPED_TEST(ResiduePolyTest, TruncateAndReverse) {
  using F = TypeParam;
  Prg prg(905);
  std::vector<F> a = prg.NextFieldVector<F>(12);
  ResiduePoly<F> ra = this->FromVec(a);

  std::vector<F> lo = ra.Truncate(5).ToCoefficients(1);
  EXPECT_EQ(lo, std::vector<F>(a.begin(), a.begin() + 5));
  std::vector<F> padded = ra.Truncate(20).ToCoefficients(1);
  EXPECT_EQ(padded.size(), 20u);
  for (size_t i = 0; i < 20; i++) {
    EXPECT_EQ(padded[i], i < 12 ? a[i] : F::Zero());
  }

  std::vector<F> rev = ra.Reverse(15).ToCoefficients(1);
  EXPECT_EQ(rev.size(), 16u);
  for (size_t i = 0; i < 16; i++) {
    EXPECT_EQ(rev[15 - i], i < 12 ? a[i] : F::Zero());
  }
}

TYPED_TEST(ResiduePolyTest, NewtonInverseMatchesCoefficientPath) {
  using F = TypeParam;
  Prg prg(906);
  for (size_t count : {size_t{1}, size_t{5}, size_t{32}, size_t{100}}) {
    std::vector<F> c = prg.NextFieldVector<F>(17);
    if (c[0].IsZero()) {
      c[0] = F::One();
    }
    Polynomial<F> f(c);
    ResiduePoly<F> rinv =
        ResidueNewtonInverse(this->FromVec(c), count, /*workers=*/1);
    Polynomial<F> finv = NewtonInverse(f, count);
    std::vector<F> got = rinv.ToCoefficients(1);
    ASSERT_EQ(got.size(), count);
    for (size_t i = 0; i < count; i++) {
      EXPECT_EQ(got[i], finv.CoefficientOrZero(i)) << "count " << count;
    }
  }
}

TYPED_TEST(ResiduePolyTest, DivRemMatchesCoefficientPath) {
  using F = TypeParam;
  Prg prg(907);
  std::vector<F> av = prg.NextFieldVector<F>(81);
  std::vector<F> bv = prg.NextFieldVector<F>(18);
  bv.back() = F::One();  // monic so degrees are what we constructed
  Polynomial<F> a(av), b(bv);
  DivRemResult<F> want = DivRem(a, b);
  ResidueDivRemResult<F> got =
      ResidueDivRem(this->FromVec(av), this->FromVec(bv), /*workers=*/1);
  EXPECT_FALSE(got.exact);
  EXPECT_EQ(Polynomial<F>(got.quotient.ToCoefficients(1)), want.quotient);
  EXPECT_EQ(Polynomial<F>(got.remainder.ToCoefficients(1)), want.remainder);

  // Exact case: a = q·b has a zero remainder and sets the exact flag.
  std::vector<F> qb = Polynomial<F>::NaiveMul(want.quotient.Coefficients(),
                                              bv);
  ResidueDivRemResult<F> ex =
      ResidueDivRem(this->FromVec(qb), this->FromVec(bv), /*workers=*/1);
  EXPECT_TRUE(ex.exact);
  EXPECT_TRUE(ex.remainder.IsZero());
  EXPECT_EQ(Polynomial<F>(ex.quotient.ToCoefficients(1)), want.quotient);
}

TYPED_TEST(ResiduePolyTest, CachedImagesMatchDirectProducts) {
  using F = TypeParam;
  Prg prg(908);
  std::vector<F> a = prg.NextFieldVector<F>(40);
  std::vector<F> b = prg.NextFieldVector<F>(25);
  ResiduePoly<F> ra = this->FromVec(a), rb = this->FromVec(b);
  size_t out_len = 40 + 25 - 1;
  NttImages bimg = rb.ForwardImages(CeilLog2(out_len), 1);
  ResiduePoly<F> via_img = ResiduePoly<F>::MulImages(ra, bimg, out_len, 1);
  ResiduePoly<F> direct = ResiduePoly<F>::Mul(ra, rb, 1);
  EXPECT_EQ(via_img.ToCoefficients(1), direct.ToCoefficients(1));

  // FusedMulAdd(u, x, v, y) == u·x + v·y.
  std::vector<F> u = prg.NextFieldVector<F>(30);
  std::vector<F> v = prg.NextFieldVector<F>(22);
  ResiduePoly<F> ru = this->FromVec(u), rv = this->FromVec(v);
  NttImages aimg = ra.ForwardImages(CeilLog2(out_len), 1);
  ResiduePoly<F> fused =
      ResiduePoly<F>::FusedMulAdd(ru, bimg, rv, aimg, out_len, 1);
  std::vector<F> ux = Polynomial<F>::NaiveMul(u, b);
  std::vector<F> vy = Polynomial<F>::NaiveMul(v, a);
  std::vector<F> want(out_len, F::Zero());
  for (size_t i = 0; i < ux.size(); i++) {
    want[i] += ux[i];
  }
  for (size_t i = 0; i < vy.size(); i++) {
    want[i] += vy[i];
  }
  EXPECT_EQ(fused.ToCoefficients(1), want);
}

// The per-residue fan-out must be purely structural: identical results (and
// identical raw residues) regardless of worker count.
TYPED_TEST(ResiduePolyTest, WorkerCountDoesNotChangeResults) {
  using F = TypeParam;
  Prg prg(909);
  std::vector<F> a = prg.NextFieldVector<F>(700);
  std::vector<F> b = prg.NextFieldVector<F>(650);
  ResiduePoly<F> p1 = ResiduePoly<F>::Mul(this->FromVec(a, 1),
                                          this->FromVec(b, 1), 1);
  ResiduePoly<F> p4 = ResiduePoly<F>::Mul(this->FromVec(a, 4),
                                          this->FromVec(b, 4), 4);
  for (size_t pi = 0; pi < this->basis_.k(); pi++) {
    EXPECT_EQ(p1.Residues(pi), p4.Residues(pi)) << "prime " << pi;
  }
  EXPECT_EQ(p1.ToCoefficients(1), p4.ToCoefficients(4));
}

// ----- CRT sizing: step points and basis exhaustion (synthetic fields) -----

// Lengths where the checked prime count changes value, scanning [1, max].
template <typename F>
std::vector<size_t> PrimeCountSteps(size_t max_len) {
  std::vector<size_t> steps;
  size_t prev = CrtPrimeCountChecked<F>(1).value();
  for (size_t len = 2; len <= max_len; len++) {
    StatusOr<size_t> k = CrtPrimeCountChecked<F>(len);
    if (!k.ok()) {
      break;
    }
    if (k.value() != prev) {
      steps.push_back(len);
      prev = k.value();
    }
  }
  return steps;
}

// MulCrt against schoolbook at equal lengths, with uniform random
// coefficients and with every coefficient at p-1 (the adversarial maximum
// that stresses the integer coefficient bound the basis was sized for).
template <typename F>
void CheckMulCrtAt(size_t len, uint64_t seed) {
  Prg prg(seed);
  std::vector<F> a = prg.NextFieldVector<F>(len);
  std::vector<F> b = prg.NextFieldVector<F>(len);
  EXPECT_EQ(MulCrt(a.data(), len, b.data(), len),
            Polynomial<F>::NaiveMul(a, b))
      << "random, len " << len;
  std::vector<F> mx(len, F::Zero() - F::One());
  EXPECT_EQ(MulCrt(mx.data(), len, mx.data(), len),
            Polynomial<F>::NaiveMul(mx, mx))
      << "all-max, len " << len;
}

TEST(CrtSizingTest, MulCrtExactAcrossStepPoints) {
  // F59: one step (2 -> 3 primes) inside the scan range.
  std::vector<size_t> steps = PrimeCountSteps<F59>(64);
  ASSERT_FALSE(steps.empty());
  EXPECT_EQ(steps.front(), 17u);
  uint64_t seed = 910;
  for (size_t s : steps) {
    ASSERT_GT(s, 1u);
    CheckMulCrtAt<F59>(s - 1, seed++);
    CheckMulCrtAt<F59>(s, seed++);
  }
}

TEST(CrtSizingTest, MulCrtExactAtLargestFittingLength) {
  // F245 needs all 8 primes from length 1 and exhausts the basis at the
  // next power-of-two bump; find the boundary programmatically.
  size_t largest = 0;
  for (size_t len = 1; CrtPrimeCountChecked<F245>(len).ok(); len++) {
    largest = len;
  }
  ASSERT_EQ(largest, 16u);
  EXPECT_EQ(CrtPrimeCountChecked<F245>(largest).value(), kNumNttPrimes);
  CheckMulCrtAt<F245>(largest, 920);
}

TEST(CrtSizingTest, BasisExhaustionSurfacesAsStatus) {
  StatusOr<size_t> k = CrtPrimeCountChecked<F245>(17);
  ASSERT_FALSE(k.ok());
  EXPECT_EQ(k.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(k.status().message().find("CRT basis exhausted"),
            std::string::npos);
  EXPECT_NE(k.status().message().find("F245"), std::string::npos);
}

#ifndef NDEBUG
// The unchecked path asserts in debug builds (sanitizer CI runs these).
TEST(CrtSizingDeathTest, UncheckedCountAbortsOnExhaustion) {
  EXPECT_DEATH(CrtPrimeCount<F245>(17), "CRT basis");
}
#endif

}  // namespace
}  // namespace zaatar
