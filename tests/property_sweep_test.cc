// Differential testing of the compiler: random expression programs are
// generated simultaneously as zlang source and as a native evaluation tree;
// compiled outputs must match native results bit-for-bit, and the resulting
// constraint systems must be satisfied by the solver's witness. This sweeps
// a far larger space of gadget compositions than the hand-written semantic
// tests.

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <string>

#include "src/compiler/compile.h"
#include "src/crypto/prg.h"
#include "src/field/fields.h"

namespace zaatar {
namespace {

using F = F128;

// A generated expression: zlang text plus a native evaluator and a
// conservative magnitude bound (to keep widths inside the field and values
// inside int64).
struct GenExpr {
  std::string text;
  std::function<int64_t(const std::vector<int64_t>&)> eval;
  double width;  // |value| < 2^width
};

class ExprGen {
 public:
  ExprGen(Prg* prg, size_t num_inputs) : prg_(prg), num_inputs_(num_inputs) {}

  GenExpr Gen(int depth, double max_width) {
    if (depth == 0 || prg_->NextBounded(4) == 0) {
      return Leaf();
    }
    switch (prg_->NextBounded(8)) {
      case 0: {  // addition
        GenExpr a = Gen(depth - 1, max_width - 1);
        GenExpr b = Gen(depth - 1, max_width - 1);
        return {"(" + a.text + " + " + b.text + ")",
                [a, b](const std::vector<int64_t>& x) {
                  return a.eval(x) + b.eval(x);
                },
                std::max(a.width, b.width) + 1};
      }
      case 1: {  // subtraction
        GenExpr a = Gen(depth - 1, max_width - 1);
        GenExpr b = Gen(depth - 1, max_width - 1);
        return {"(" + a.text + " - " + b.text + ")",
                [a, b](const std::vector<int64_t>& x) {
                  return a.eval(x) - b.eval(x);
                },
                std::max(a.width, b.width) + 1};
      }
      case 2: {  // multiplication, width permitting
        GenExpr a = Gen(depth - 1, max_width / 2);
        GenExpr b = Gen(depth - 1, max_width / 2);
        if (a.width + b.width > max_width) {
          return Leaf();
        }
        return {"(" + a.text + " * " + b.text + ")",
                [a, b](const std::vector<int64_t>& x) {
                  return a.eval(x) * b.eval(x);
                },
                a.width + b.width};
      }
      case 3: {  // min
        GenExpr a = Gen(depth - 1, max_width);
        GenExpr b = Gen(depth - 1, max_width);
        return {"min(" + a.text + ", " + b.text + ")",
                [a, b](const std::vector<int64_t>& x) {
                  return std::min(a.eval(x), b.eval(x));
                },
                std::max(a.width, b.width)};
      }
      case 4: {  // max
        GenExpr a = Gen(depth - 1, max_width);
        GenExpr b = Gen(depth - 1, max_width);
        return {"max(" + a.text + ", " + b.text + ")",
                [a, b](const std::vector<int64_t>& x) {
                  return std::max(a.eval(x), b.eval(x));
                },
                std::max(a.width, b.width)};
      }
      case 5: {  // abs
        GenExpr a = Gen(depth - 1, max_width);
        return {"abs(" + a.text + ")",
                [a](const std::vector<int64_t>& x) {
                  return std::abs(a.eval(x));
                },
                a.width};
      }
      case 6: {  // comparison-driven ternary
        GenExpr c1 = Gen(depth - 1, max_width);
        GenExpr c2 = Gen(depth - 1, max_width);
        GenExpr a = Gen(depth - 1, max_width);
        GenExpr b = Gen(depth - 1, max_width);
        const char* ops[] = {"<", "<=", ">", ">=", "==", "!="};
        size_t op = prg_->NextBounded(6);
        std::string text = "(" + c1.text + " " + ops[op] + " " + c2.text +
                           " ? " + a.text + " : " + b.text + ")";
        return {text,
                [c1, c2, a, b, op](const std::vector<int64_t>& x) {
                  int64_t l = c1.eval(x), r = c2.eval(x);
                  bool cond = op == 0   ? l < r
                              : op == 1 ? l <= r
                              : op == 2 ? l > r
                              : op == 3 ? l >= r
                              : op == 4 ? l == r
                                        : l != r;
                  return cond ? a.eval(x) : b.eval(x);
                },
                std::max(a.width, b.width)};
      }
      default: {  // arithmetic right shift by a small constant
        GenExpr a = Gen(depth - 1, max_width);
        size_t k = 1 + prg_->NextBounded(4);
        return {"(" + a.text + " >> " + std::to_string(k) + ")",
                [a, k](const std::vector<int64_t>& x) {
                  return a.eval(x) >> k;
                },
                std::max(1.0, a.width - static_cast<double>(k))};
      }
    }
  }

 private:
  GenExpr Leaf() {
    if (prg_->NextBounded(3) == 0) {
      int64_t c = static_cast<int64_t>(prg_->NextBounded(200)) - 100;
      return {c >= 0 ? std::to_string(c)
                     : "(0 - " + std::to_string(-c) + ")",
              [c](const std::vector<int64_t>&) { return c; }, 8};
    }
    size_t i = prg_->NextBounded(num_inputs_);
    return {"x[" + std::to_string(i) + "]",
            [i](const std::vector<int64_t>& x) { return x[i]; }, 12};
  }

  Prg* prg_;
  size_t num_inputs_;
};

class PropertySweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertySweepTest, RandomProgramsMatchNativeEvaluation) {
  const size_t kInputs = 4;
  Prg prg(GetParam());
  ExprGen gen(&prg, kInputs);

  // Three random output expressions per program.
  std::vector<GenExpr> exprs;
  std::string source = "input int<12> x[" + std::to_string(kInputs) + "];\n";
  for (int i = 0; i < 3; i++) {
    exprs.push_back(gen.Gen(/*depth=*/4, /*max_width=*/60.0));
    source += "output int<64> y" + std::to_string(i) + ";\n";
  }
  for (int i = 0; i < 3; i++) {
    source += "y" + std::to_string(i) + " = " + exprs[i].text + ";\n";
  }

  CompiledProgram<F> program;
  try {
    program = CompileZlang<F>(source);
  } catch (const CompileError& e) {
    FAIL() << "generated program failed to compile: " << e.what() << "\n"
           << source;
  }

  for (int trial = 0; trial < 4; trial++) {
    std::vector<int64_t> raw(kInputs);
    std::vector<F> inputs;
    for (size_t i = 0; i < kInputs; i++) {
      raw[i] = static_cast<int64_t>(prg.NextBounded(4000)) - 2000;
      inputs.push_back(EncodeSignedInt<F>(raw[i]));
    }
    auto gw = program.SolveGinger(inputs);
    ASSERT_TRUE(program.ginger.IsSatisfied(gw))
        << "constraint " << program.ginger.FirstViolated(gw) << "\n"
        << source;
    ASSERT_TRUE(program.zaatar.r1cs.IsSatisfied(program.SolveZaatar(gw)));
    auto out = program.ExtractOutputs(gw);
    for (int i = 0; i < 3; i++) {
      EXPECT_EQ(DecodeSignedInt<F>(out[i]), exprs[i].eval(raw))
          << "output " << i << ", inputs {" << raw[0] << "," << raw[1] << ","
          << raw[2] << "," << raw[3] << "}\n"
          << source;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweepTest,
                         ::testing::Range<uint64_t>(1000, 1016));

}  // namespace
}  // namespace zaatar
