// Failure-hardening of the transport and session layers (DESIGN.md §13):
// the deadline matrix ({Send, Receive} x {LoopbackTransport, PipeTransport}
// x {expired, not-expired, peer-dies-mid-frame}) with exact Status codes,
// the prefix-then-silence regression, concurrent Close() vs a blocked
// Receive() on another thread (the TSan target for the fd-ownership
// discipline), bounded-queue backpressure, the backoff schedule, and the
// RetryingSession retryable-vs-final classification.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "src/constraints/qap.h"
#include "src/constraints/transform.h"
#include "src/field/fields.h"
#include "src/pcp/zaatar_pcp.h"
#include "src/protocol/session.h"
#include "tests/test_util.h"

namespace zaatar {
namespace {

using F = F128;
using Adapter = ZaatarAdapter<F>;
using protocol::BackoffPolicy;
using protocol::BackoffSchedule;
using protocol::IsTransportFailure;
using protocol::PipeTransport;
using protocol::Transport;
using protocol::TransportOptions;
using protocol::TransportPair;
using protocol::VerifierSession;

using Millis = std::chrono::milliseconds;

Millis ElapsedSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<Millis>(std::chrono::steady_clock::now() -
                                            start);
}

TransportOptions RecvDeadline(int ms) {
  TransportOptions o;
  o.recv_deadline = Millis(ms);
  return o;
}

TransportOptions SendDeadline(int ms) {
  TransportOptions o;
  o.send_deadline = Millis(ms);
  return o;
}

// ----- deadline matrix: Receive -----

TEST(DeadlineMatrixTest, LoopbackReceiveExpires) {
  auto pair = protocol::MakeLoopbackPair(RecvDeadline(60));
  auto start = std::chrono::steady_clock::now();
  auto got = pair.left->Receive();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(ElapsedSince(start).count(), 5000);
}

TEST(DeadlineMatrixTest, LoopbackReceiveWithinDeadline) {
  auto pair = protocol::MakeLoopbackPair(RecvDeadline(2000));
  ASSERT_TRUE(pair.right->Send({1, 2, 3}).ok());
  auto got = pair.left->Receive();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(DeadlineMatrixTest, LoopbackReceivePeerDies) {
  auto pair = protocol::MakeLoopbackPair(RecvDeadline(5000));
  std::thread killer([&] {
    std::this_thread::sleep_for(Millis(20));
    pair.right->Close();
  });
  auto got = pair.left->Receive();
  killer.join();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kTruncated);
}

TEST(DeadlineMatrixTest, PipeReceiveExpires) {
  auto pair = PipeTransport::CreatePair(RecvDeadline(60));
  ASSERT_TRUE(pair.ok());
  auto start = std::chrono::steady_clock::now();
  auto got = pair->left->Receive();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(ElapsedSince(start).count(), 5000);
}

TEST(DeadlineMatrixTest, PipeReceiveWithinDeadline) {
  auto pair = PipeTransport::CreatePair(RecvDeadline(2000));
  ASSERT_TRUE(pair.ok());
  ASSERT_TRUE(pair->right->Send({9, 8, 7}).ok());
  auto got = pair->left->Receive();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, (std::vector<uint8_t>{9, 8, 7}));
}

TEST(DeadlineMatrixTest, PipeReceivePeerDiesMidFrame) {
  // The peer promises an 8-byte frame, delivers half, and dies: the break in
  // the byte stream must surface as kTruncated ("closed mid-frame"), not a
  // hang and not a deadline.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  PipeTransport receiver(fds[0], RecvDeadline(5000));
  const uint8_t partial[] = {8, 0, 0, 0, 0xAA, 0xBB, 0xCC, 0xDD};
  ASSERT_EQ(::write(fds[1], partial, sizeof(partial)),
            static_cast<ssize_t>(sizeof(partial)));
  ::close(fds[1]);
  auto got = receiver.Receive();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kTruncated);
}

// ----- deadline matrix: Send -----

TEST(DeadlineMatrixTest, LoopbackSendExpires) {
  // Depth cap 1 with no consumer: the first frame is admitted, the second
  // blocks on backpressure until the send deadline fires.
  TransportOptions o = SendDeadline(60);
  o.max_queue_frames = 1;
  auto pair = protocol::MakeLoopbackPair(o);
  ASSERT_TRUE(pair.left->Send({1}).ok());
  auto start = std::chrono::steady_clock::now();
  Status second = pair.left->Send({2});
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(ElapsedSince(start).count(), 5000);
}

TEST(DeadlineMatrixTest, LoopbackSendWithinDeadline) {
  TransportOptions o = SendDeadline(5000);
  o.max_queue_frames = 1;
  auto pair = protocol::MakeLoopbackPair(o);
  std::thread consumer([&] {
    for (int i = 0; i < 3; i++) {
      std::this_thread::sleep_for(Millis(10));
      ASSERT_TRUE(pair.right->Receive().ok());
    }
  });
  for (uint8_t i = 0; i < 3; i++) {
    ASSERT_TRUE(pair.left->Send({i}).ok());
  }
  consumer.join();
}

TEST(DeadlineMatrixTest, LoopbackSendPeerDiesMidBlock) {
  // A sender blocked on a full queue is woken by a concurrent Close and gets
  // kTruncated, not a hang and not a deadline.
  TransportOptions o = SendDeadline(5000);
  o.max_queue_frames = 1;
  auto pair = protocol::MakeLoopbackPair(o);
  ASSERT_TRUE(pair.left->Send({1}).ok());
  std::thread killer([&] {
    std::this_thread::sleep_for(Millis(20));
    pair.right->Close();
  });
  Status second = pair.left->Send({2});
  killer.join();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.code(), StatusCode::kTruncated);
}

TEST(DeadlineMatrixTest, PipeSendExpires) {
  // A frame much larger than the kernel socket buffer with no reader: the
  // write blocks at the buffer boundary until the send deadline fires.
  auto pair = PipeTransport::CreatePair(SendDeadline(100));
  ASSERT_TRUE(pair.ok());
  std::vector<uint8_t> big(4u << 20, 0x5A);
  auto start = std::chrono::steady_clock::now();
  Status sent = pair->left->Send(big);
  ASSERT_FALSE(sent.ok());
  EXPECT_EQ(sent.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(ElapsedSince(start).count(), 5000);
}

TEST(DeadlineMatrixTest, PipeSendWithinDeadline) {
  auto pair = PipeTransport::CreatePair(SendDeadline(10000));
  ASSERT_TRUE(pair.ok());
  std::vector<uint8_t> big(4u << 20, 0x5A);
  std::thread reader([&] {
    auto got = pair->right->Receive();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->size(), big.size());
  });
  ASSERT_TRUE(pair->left->Send(big).ok());
  reader.join();
}

TEST(DeadlineMatrixTest, PipeSendPeerDiesMidFrame) {
  // The peer shuts down while a large frame is mid-flight: EPIPE surfaces as
  // kTruncated.
  auto pair = PipeTransport::CreatePair(SendDeadline(10000));
  ASSERT_TRUE(pair.ok());
  std::vector<uint8_t> big(4u << 20, 0x5A);
  std::thread killer([&] {
    std::this_thread::sleep_for(Millis(20));
    pair->right->Close();
  });
  Status sent = pair->left->Send(big);
  killer.join();
  ASSERT_FALSE(sent.ok());
  EXPECT_EQ(sent.code(), StatusCode::kTruncated);
}

// ----- prefix-then-silence regression -----

// A peer that sends only the 4-byte length prefix and then goes silent must
// cost one bounded allocation and a recv deadline — never an unbounded wait
// and never an eager out-of-memory allocation.
TEST(TransportHardeningTest, PrefixThenSilenceHitsRecvDeadline) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  PipeTransport receiver(fds[0], RecvDeadline(120));
  const uint8_t prefix[] = {0, 16, 0, 0};  // claims 4096 bytes, sends none
  ASSERT_EQ(::write(fds[1], prefix, 4), 4);
  auto start = std::chrono::steady_clock::now();
  auto got = receiver.Receive();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(ElapsedSince(start).count(), 5000);
  ::close(fds[1]);
}

TEST(TransportHardeningTest, HostileHugePrefixThenSilenceStaysBounded) {
  // The prefix claims the full 1 GiB frame cap; the receiver must reserve at
  // most kMaxEagerReserveBytes before the deadline fires.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  PipeTransport receiver(fds[0], RecvDeadline(120));
  const uint64_t claim = protocol::kMaxFrameBytes;
  uint8_t prefix[4];
  for (int i = 0; i < 4; i++) {
    prefix[i] = static_cast<uint8_t>(claim >> (8 * i));
  }
  ASSERT_EQ(::write(fds[1], prefix, 4), 4);
  auto got = receiver.Receive();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
  ::close(fds[1]);
}

TEST(TransportHardeningTest, OverCapPrefixRejectedBeforeAllocation) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  PipeTransport receiver(fds[0], RecvDeadline(5000));
  const uint8_t prefix[] = {0xFF, 0xFF, 0xFF, 0xFF};  // ~4 GiB claim
  ASSERT_EQ(::write(fds[1], prefix, 4), 4);
  auto got = receiver.Receive();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kLengthOverflow);
  ::close(fds[1]);
}

// ----- concurrent Close() vs blocked Receive() (TSan regression) -----

// Close() from another thread while a Receive() is blocked on the same
// PipeTransport object. The shutdown(2)-then-destructor-close(2) discipline
// means the reader always operates on a valid fd; under TSan this test also
// proves the fd handoff is race-free.
TEST(TransportHardeningTest, CloseFromAnotherThreadUnblocksReceive) {
  for (int round = 0; round < 8; round++) {
    auto pair = PipeTransport::CreatePair();
    ASSERT_TRUE(pair.ok());
    Status observed = Status::Ok();
    std::thread receiver([&] {
      auto got = pair->left->Receive();
      observed = got.status();
    });
    std::this_thread::sleep_for(Millis(round % 3 == 0 ? 0 : 10));
    pair->left->Close();
    receiver.join();
    EXPECT_FALSE(observed.ok());
    EXPECT_EQ(observed.code(), StatusCode::kTruncated) << observed.ToString();
  }
}

TEST(TransportHardeningTest, CloseFromAnotherThreadUnblocksLoopback) {
  auto pair = protocol::MakeLoopbackPair();
  Status observed = Status::Ok();
  std::thread receiver([&] { observed = pair.left->Receive().status(); });
  std::this_thread::sleep_for(Millis(10));
  pair.left->Close();
  receiver.join();
  EXPECT_EQ(observed.code(), StatusCode::kTruncated);
}

// ----- bounded-queue backpressure -----

TEST(TransportHardeningTest, BoundedQueueDeliversEverythingInOrder) {
  TransportOptions o;
  o.max_queue_frames = 2;
  o.max_queue_bytes = 64;
  o.send_deadline = Millis(5000);
  o.recv_deadline = Millis(5000);
  auto pair = protocol::MakeLoopbackPair(o);
  const int kFrames = 32;
  std::thread producer([&] {
    for (int i = 0; i < kFrames; i++) {
      std::vector<uint8_t> frame(17, static_cast<uint8_t>(i));
      ASSERT_TRUE(pair.left->Send(frame).ok());
    }
  });
  for (int i = 0; i < kFrames; i++) {
    auto got = pair.right->Receive();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ((*got)[0], static_cast<uint8_t>(i));
  }
  producer.join();
}

TEST(TransportHardeningTest, OversizeFrameDegradesToRendezvous) {
  // A frame larger than the byte cap is admitted when the queue is empty:
  // the cap degrades to rendezvous, never deadlock.
  TransportOptions o;
  o.max_queue_frames = 4;
  o.max_queue_bytes = 8;
  auto pair = protocol::MakeLoopbackPair(o);
  std::vector<uint8_t> oversize(64, 0xEE);
  ASSERT_TRUE(pair.left->Send(oversize).ok());
  auto got = pair.right->Receive();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 64u);
}

// ----- backoff schedule -----

TEST(BackoffScheduleTest, DeterministicGivenSeed) {
  BackoffPolicy policy;
  policy.initial = Millis(10);
  policy.multiplier = 2.0;
  policy.cap = Millis(200);
  policy.jitter_seed = 42;
  BackoffSchedule a(policy);
  BackoffSchedule b(policy);
  for (int i = 0; i < 10; i++) {
    EXPECT_EQ(a.NextDelay().count(), b.NextDelay().count()) << "step " << i;
  }
  // A different seed decorrelates (overwhelmingly likely to differ in ten
  // draws of >=6 bits of jitter each).
  policy.jitter_seed = 43;
  BackoffSchedule c(policy);
  BackoffSchedule d(BackoffPolicy{policy.max_retries, policy.initial,
                                  policy.multiplier, policy.cap, 42});
  bool any_differ = false;
  for (int i = 0; i < 10; i++) {
    any_differ |= c.NextDelay().count() != d.NextDelay().count();
  }
  EXPECT_TRUE(any_differ);
}

TEST(BackoffScheduleTest, PinnedScheduleSeed42) {
  // The exact delays for a fixed policy+seed, hard-coded: any change to the
  // jitter arithmetic (range, rounding, draw order) shows up here as a
  // value diff, not a hidden distribution shift.
  BackoffPolicy policy;
  policy.initial = Millis(10);
  policy.multiplier = 2.0;
  policy.cap = Millis(200);
  policy.jitter_seed = 42;
  BackoffSchedule schedule(policy);
  const int64_t kExpected[] = {9, 18, 22, 58, 92, 136, 187, 133};
  for (size_t i = 0; i < std::size(kExpected); i++) {
    EXPECT_EQ(schedule.NextDelay().count(), kExpected[i]) << "step " << i;
  }
}

TEST(BackoffScheduleTest, JitterIsHalfOpenNeverDrawsBase) {
  // U[0.5, 1.0) is half-open: with base pinned at an odd 3 the only legal
  // draws are {1, 2} — the documented range's floored image. The old
  // inclusive-and-biased-high jitter drew {2, 3}, overshooting the base.
  BackoffPolicy policy;
  policy.initial = Millis(3);
  policy.multiplier = 1.0;
  policy.cap = Millis(3);
  policy.jitter_seed = 9;
  BackoffSchedule schedule(policy);
  bool saw_one = false;
  bool saw_two = false;
  for (int i = 0; i < 64; i++) {
    const int64_t d = schedule.NextDelay().count();
    EXPECT_GE(d, 1) << "step " << i;
    EXPECT_LE(d, 2) << "step " << i;
    saw_one |= d == 1;
    saw_two |= d == 2;
  }
  EXPECT_TRUE(saw_one);
  EXPECT_TRUE(saw_two);
}

// ----- CallDeadline budget semantics -----

TEST(CallDeadlineTest, ZeroBudgetExpiresImmediatelyWithOnePoll) {
  // Regression: a zero-millisecond budget used to mean "infinite". It now
  // means "already expired" — Expired() from construction, and the poll
  // timeout is 0, i.e. the caller gets exactly one non-blocking readiness
  // probe before the typed kDeadlineExceeded.
  protocol::internal::CallDeadline deadline(Millis(0));
  EXPECT_FALSE(deadline.infinite());
  EXPECT_TRUE(deadline.Expired());
  EXPECT_EQ(deadline.PollTimeoutMs(), 0);
  EXPECT_EQ(deadline.Remaining().count(), 0);
}

TEST(CallDeadlineTest, NegativeBudgetIsInfinite) {
  protocol::internal::CallDeadline deadline(Millis(-1));
  EXPECT_TRUE(deadline.infinite());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_EQ(deadline.PollTimeoutMs(), -1);
}

TEST(CallDeadlineTest, OptionBudgetKeepsWaitForeverConvention) {
  // TransportOptions' "0 = wait forever" is translated at the call sites,
  // so the options-layer contract is unchanged by the CallDeadline fix.
  EXPECT_EQ(protocol::internal::OptionBudget(Millis(0)).count(), -1);
  EXPECT_EQ(protocol::internal::OptionBudget(Millis(5)).count(), 5);
  EXPECT_EQ(protocol::internal::OptionBudget(Millis(-7)).count(), -7);
}

TEST(BackoffScheduleTest, GrowsExponentiallyAndRespectsCap) {
  BackoffPolicy policy;
  policy.initial = Millis(10);
  policy.multiplier = 2.0;
  policy.cap = Millis(100);
  policy.jitter_seed = 7;
  BackoffSchedule schedule(policy);
  int64_t expected_base = 10;
  for (int i = 0; i < 8; i++) {
    int64_t delay = schedule.NextDelay().count();
    // Jitter keeps each delay in [base/2, base]; base is capped.
    EXPECT_GE(delay, expected_base / 2) << "step " << i;
    EXPECT_LE(delay, expected_base) << "step " << i;
    EXPECT_LE(delay, policy.cap.count()) << "step " << i;
    EXPECT_GT(delay, 0) << "step " << i;
    expected_base = std::min<int64_t>(expected_base * 2, policy.cap.count());
  }
  EXPECT_EQ(schedule.attempts(), 8u);
}

// ----- RetryingSession classification -----

// A tiny honest Zaatar batch, mirroring protocol_test's fixture.
struct RetryFixture {
  Prg sys_prg;
  RandomSystem<F> rs;
  ZaatarTransform<F> transform;
  Qap<F> qap;
  ZaatarProof<F> proof;
  Prg setup_prg;
  VerifierSession<F, Adapter> verifier;

  explicit RetryFixture(uint64_t seed)
      : sys_prg(seed),
        rs(MakeRandomSatisfiedSystem<F>(sys_prg, 8, 2, 2, 14)),
        transform(GingerToZaatar(rs.system)),
        qap(transform.r1cs),
        proof(BuildZaatarProof(qap, transform.ExtendAssignment(rs.assignment))),
        setup_prg(seed + 1),
        verifier(ZaatarPcp<F>::GenerateQueries(qap, PcpParams::Light(),
                                               setup_prg),
                 setup_prg) {}

  std::array<const std::vector<F>*, 2> Vectors() const {
    return {&proof.z, &proof.h};
  }
};

// Runs an honest single-instance prover session over `link`; exits quietly
// on any channel failure.
void RunHonestProver(Transport* link, const RetryFixture& f, uint32_t resume) {
  protocol::ProverSession<F> session;
  if (!session.StartAtInstance(resume).ok()) return;
  if (!session.ReceiveSetup(*link).ok()) return;
  if (!session.ProveInstance(*link, f.Vectors()).ok()) return;
  (void)session.ReceiveVerdict(*link);
}

TEST(RetryingSessionTest, ReconnectsAfterDeadPeerAndAccepts) {
  RetryFixture f(900);
  std::vector<std::unique_ptr<Transport>> peer_links;
  std::vector<std::thread> peers;
  int connections = 0;
  protocol::TransportFactory factory =
      [&](uint32_t resume) -> StatusOr<std::unique_ptr<Transport>> {
    auto pair = protocol::MakeLoopbackPair(RecvDeadline(2000));
    if (connections++ == 0) {
      pair.right->Close();  // connection 0: the peer is already dead
    } else {
      peer_links.push_back(std::move(pair.right));
      peers.emplace_back(RunHonestProver, peer_links.back().get(), std::cref(f),
                         resume);
    }
    return std::move(pair.left);
  };

  BackoffPolicy policy;
  policy.max_retries = 3;
  policy.jitter_seed = 5;
  std::vector<Millis> slept;
  protocol::RetryingSession<F, Adapter> session(
      std::move(f.verifier), factory, policy,
      [&](Millis d) { slept.push_back(d); });

  auto result = session.DecideNext(f.rs.BoundValues());
  for (auto& t : peers) t.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->accepted()) << result->detail;
  EXPECT_EQ(session.total_retries(), 1u);
  EXPECT_EQ(session.connections(), 2u);
  EXPECT_EQ(slept.size(), 1u);
}

TEST(RetryingSessionTest, ExhaustedBudgetReturnsTransportFailure) {
  RetryFixture f(901);
  int factory_calls = 0;
  protocol::TransportFactory factory =
      [&](uint32_t) -> StatusOr<std::unique_ptr<Transport>> {
    factory_calls++;
    return TruncatedError("no route to prover");
  };
  BackoffPolicy policy;
  policy.max_retries = 2;
  policy.jitter_seed = 5;
  std::vector<Millis> slept;
  protocol::RetryingSession<F, Adapter> session(
      std::move(f.verifier), factory, policy,
      [&](Millis d) { slept.push_back(d); });

  auto result = session.DecideNext(f.rs.BoundValues());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(IsTransportFailure(result.status()));
  EXPECT_EQ(factory_calls, 3);  // initial + 2 retries
  EXPECT_EQ(session.total_retries(), 2u);
  EXPECT_EQ(slept.size(), 2u);
}

TEST(RetryingSessionTest, ProtocolRejectIsFinalNeverRetried) {
  // A garbled proof frame is a protocol outcome (kMalformed verdict), not a
  // transport failure: it must be decided exactly once, with zero retries —
  // otherwise a malicious prover could farm fresh attempts at an instance.
  RetryFixture f(902);
  int connections = 0;
  std::vector<std::unique_ptr<Transport>> peer_links;
  std::vector<std::thread> peers;
  protocol::TransportFactory factory =
      [&](uint32_t) -> StatusOr<std::unique_ptr<Transport>> {
    connections++;
    auto pair = protocol::MakeLoopbackPair(RecvDeadline(2000));
    peer_links.push_back(std::move(pair.right));
    Transport* link = peer_links.back().get();
    peers.emplace_back([link] {
      (void)link->Receive();  // drain the setup
      (void)link->Send({0xBA, 0xAD, 0xF0, 0x0D});
      (void)link->Receive();  // drain the verdict
    });
    return std::move(pair.left);
  };
  BackoffPolicy policy;
  policy.max_retries = 3;
  policy.jitter_seed = 5;
  protocol::RetryingSession<F, Adapter> session(
      std::move(f.verifier), factory, policy, [](Millis) {});

  auto result = session.DecideNext(f.rs.BoundValues());
  for (auto& t : peers) t.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->verdict, VerifyVerdict::kMalformed);
  EXPECT_EQ(connections, 1);
  EXPECT_EQ(session.total_retries(), 0u);
}

TEST(RetryingSessionTest, SkipInstanceKeepsCursorAligned) {
  // After a skip, the next proof the session accepts is for the instance
  // AFTER the skipped one — the degradation path cannot desync the batch.
  RetryFixture f(903);
  auto setup_bytes = f.verifier.EmitSetup();
  ASSERT_TRUE(setup_bytes.ok());
  auto skipped = f.verifier.SkipInstanceTransportFailed("recv deadline");
  ASSERT_TRUE(skipped.ok());
  EXPECT_EQ(skipped->verdict, VerifyVerdict::kTransportFailed);
  EXPECT_FALSE(skipped->accepted());
  ASSERT_EQ(f.verifier.results().size(), 1u);

  // An honest proof labeled instance 1 is accepted; labeled 0 it would be
  // stale (the slot was consumed by the skip).
  protocol::ProverSession<F> prover;
  ASSERT_TRUE(prover.StartAtInstance(1).ok());
  ASSERT_TRUE(prover.IngestSetup(*setup_bytes).ok());
  ASSERT_TRUE(prover.Commit(f.Vectors()).ok());
  auto proof_bytes = prover.Decommit();
  ASSERT_TRUE(proof_bytes.ok());
  auto decided = f.verifier.HandleProof(*proof_bytes, f.rs.BoundValues());
  ASSERT_TRUE(decided.ok());
  EXPECT_TRUE(decided->accepted()) << decided->detail;
}

// Decorator that forwards everything but fails the Nth Send with a
// transport-class error — the deterministic stand-in for "the verdict frame
// died on the wire after the proof was decided".
class SendFailTransport final : public Transport {
 public:
  SendFailTransport(std::unique_ptr<Transport> inner, int fail_at)
      : inner_(std::move(inner)), fail_at_(fail_at) {}

  Status Send(const std::vector<uint8_t>& frame) override {
    if (sends_++ == fail_at_) {
      return TruncatedError("injected send failure");
    }
    return inner_->Send(frame);
  }
  StatusOr<std::vector<uint8_t>> Receive() override {
    return inner_->Receive();
  }
  void Close() override { inner_->Close(); }

 private:
  std::unique_ptr<Transport> inner_;
  int fail_at_;
  int sends_ = 0;
};

TEST(RetryingSessionTest, RecordedButUnsentVerdictStandsAndCursorAdvances) {
  // The verifier receives the proof, decides it, records the verdict — and
  // then the verdict frame fails to send. The decision is FINAL: DecideNext
  // must return the recorded verdict without re-deciding (a re-decision
  // would hand a malicious prover a second attempt at a decided instance),
  // and the next instance's reconnect must ask the replacement prover to
  // resume at instance 1, not replay instance 0.
  RetryFixture f(904);
  std::vector<std::unique_ptr<Transport>> peer_links;
  std::vector<std::thread> peers;
  std::vector<uint32_t> resume_points;
  protocol::TransportFactory factory =
      [&](uint32_t resume) -> StatusOr<std::unique_ptr<Transport>> {
    resume_points.push_back(resume);
    auto pair = protocol::MakeLoopbackPair(RecvDeadline(2000));
    peer_links.push_back(std::move(pair.right));
    peers.emplace_back(RunHonestProver, peer_links.back().get(), std::cref(f),
                       resume);
    if (resume_points.size() == 1) {
      // Connection 0: send 0 is the setup, send 1 is the instance-0 verdict
      // — kill exactly that one.
      return std::unique_ptr<Transport>(std::make_unique<SendFailTransport>(
          std::move(pair.left), /*fail_at=*/1));
    }
    return std::move(pair.left);
  };

  BackoffPolicy policy;
  policy.max_retries = 3;
  policy.jitter_seed = 5;
  protocol::RetryingSession<F, Adapter> session(
      std::move(f.verifier), factory, policy, [](Millis) {});

  auto first = session.DecideNext(f.rs.BoundValues());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->accepted()) << first->detail;
  // The verdict came from the record, not a retry: no backoff was consumed
  // and the failed connection was dropped without a replacement yet.
  EXPECT_EQ(session.total_retries(), 0u);
  EXPECT_EQ(session.connections(), 1u);
  EXPECT_FALSE(session.connected());
  ASSERT_EQ(session.session().results().size(), 1u);

  // Next instance: the lazy reconnect must hand the factory the cursor
  // AFTER the decided-but-unsent instance.
  auto second = session.DecideNext(f.rs.BoundValues());
  for (auto& t : peers) t.join();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->accepted()) << second->detail;
  ASSERT_EQ(resume_points.size(), 2u);
  EXPECT_EQ(resume_points[0], 0u);
  EXPECT_EQ(resume_points[1], 1u);
  EXPECT_EQ(session.session().results().size(), 2u);
  EXPECT_EQ(session.total_retries(), 0u);
}

TEST(RetryingSessionTest, TransportFailureClassifier) {
  EXPECT_TRUE(IsTransportFailure(TruncatedError("x")));
  EXPECT_TRUE(IsTransportFailure(DeadlineExceededError("x")));
  EXPECT_TRUE(IsTransportFailure(LengthOverflowError("x")));
  EXPECT_FALSE(IsTransportFailure(MalformedError("x")));
  EXPECT_FALSE(IsTransportFailure(PhaseViolationError("x")));
  EXPECT_FALSE(IsTransportFailure(Status::Ok()));
}

}  // namespace
}  // namespace zaatar
