#include "src/crypto/elgamal.h"

#include <gtest/gtest.h>

namespace zaatar {
namespace {

template <typename F>
class ElGamalTest : public ::testing::Test {};

using FieldTypes = ::testing::Types<F128, F220>;
TYPED_TEST_SUITE(ElGamalTest, FieldTypes);

TYPED_TEST(ElGamalTest, GeneratorHasOrderQ) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  typename EG::Zp g = EG::Generator();
  EXPECT_FALSE(g.IsOne());
  // g^q = 1 where q is the field modulus.
  EXPECT_TRUE(g.Pow(F::kModulus).IsOne());
}

TYPED_TEST(ElGamalTest, GroupModulusCongruentOneModQ) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  // p - 1 must be divisible by q: check p mod q == 1 by folding limbs into F.
  typename EG::Zp::Repr p = EG::Zp::kModulus;
  F p_mod_q = F::FromLimbs(p.limbs.data(), p.limbs.size());
  EXPECT_TRUE(p_mod_q.IsOne());
}

TYPED_TEST(ElGamalTest, EncryptDecryptRoundTrip) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  Prg prg(50);
  auto kp = EG::GenerateKeys(prg);
  for (int i = 0; i < 5; i++) {
    F m = prg.NextField<F>();
    auto ct = EG::Encrypt(kp.pk, m, prg);
    EXPECT_EQ(EG::DecryptToGroup(kp.sk, kp.pk, ct), EG::GroupEmbed(kp.pk, m));
  }
}

TYPED_TEST(ElGamalTest, EncryptionIsRandomized) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  Prg prg(51);
  auto kp = EG::GenerateKeys(prg);
  F m = prg.NextField<F>();
  auto c1 = EG::Encrypt(kp.pk, m, prg);
  auto c2 = EG::Encrypt(kp.pk, m, prg);
  EXPECT_NE(c1.c1, c2.c1);  // fresh randomness
  EXPECT_EQ(EG::DecryptToGroup(kp.sk, kp.pk, c1),
            EG::DecryptToGroup(kp.sk, kp.pk, c2));
}

// A PRG stand-in for the r = 0 regression test: serves a scripted sequence
// of field elements, mirroring Prg's NextNonzeroField retry semantics.
template <typename F>
struct ScriptedRng {
  std::vector<F> values;
  size_t next = 0;
  template <typename FF>
  FF NextField() {
    return values.at(next++);
  }
  template <typename FF>
  FF NextNonzeroField() {
    FF r;
    do {
      r = NextField<FF>();
    } while (r.IsZero());
    return r;
  }
};

// Regression: Encrypt must never use a zero nonce. r = 0 collapses the
// ciphertext to (1, g^m) — the plaintext embedding in the clear, flagged to
// any observer by the degenerate first component.
TYPED_TEST(ElGamalTest, EncryptRejectsZeroNonce) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  Prg prg(58);
  auto kp = EG::GenerateKeys(prg);
  F m = prg.NextNonzeroField<F>();

  // The leak shape itself, pinned via the deterministic core: a zero nonce
  // yields c1 == 1 and c2 == g^m exactly.
  auto leaked = EG::EncryptWithNonce(kp.pk, m, F::Zero());
  EXPECT_TRUE(leaked.c1.IsOne());
  EXPECT_EQ(leaked.c2, EG::GroupEmbed(kp.pk, m));

  // A generator whose next raw draw IS zero: the old NextField-based path
  // would have produced the leak above; the fixed path must skip to the
  // following draw and produce a sound ciphertext.
  F r1 = prg.NextNonzeroField<F>();
  ScriptedRng<F> rng{{F::Zero(), r1}};
  auto ct = EG::Encrypt(kp.pk, m, rng);
  EXPECT_FALSE(ct.c1.IsOne());
  auto expect = EG::EncryptWithNonce(kp.pk, m, r1);
  EXPECT_EQ(ct.c1, expect.c1);
  EXPECT_EQ(ct.c2, expect.c2);
  EXPECT_EQ(rng.next, 2u);  // both draws consumed

  // Seed sweep: no real stream should ever emit the degenerate c1.
  for (uint64_t seed = 100; seed < 140; seed++) {
    Prg sweep(seed);
    auto swept = EG::Encrypt(kp.pk, m, sweep);
    EXPECT_FALSE(swept.c1.IsOne()) << "seed " << seed;
  }
}

// EncryptRow is an optimization, not a different scheme: for equal seeds it
// must be bit-identical to encrypting the row one element at a time, with
// and without worker threads, with and without precomputed key tables.
TYPED_TEST(ElGamalTest, EncryptRowMatchesSequentialEncrypt) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  Prg prg(59);
  auto kp = EG::GenerateKeys(prg);
  const size_t n = 33;
  auto msgs = prg.NextFieldVector<F>(n);
  msgs[0] = F::Zero();  // m = 0 exercises the empty g^m walk
  msgs[1] = F::One();

  Prg seq_stream(4242);
  std::vector<typename EG::Ciphertext> seq;
  for (size_t i = 0; i < n; i++) {
    seq.push_back(EG::Encrypt(kp.pk, msgs[i], seq_stream));
  }

  Prg row_stream(4242);
  auto row = EG::EncryptRow(kp.pk, msgs.data(), n, row_stream);
  ASSERT_EQ(row.size(), n);
  for (size_t i = 0; i < n; i++) {
    EXPECT_EQ(row[i].c1, seq[i].c1) << "row " << i;
    EXPECT_EQ(row[i].c2, seq[i].c2) << "row " << i;
  }

  // Threaded chunking must not change the nonce schedule or the results.
  Prg par_stream(4242);
  auto par = EG::EncryptRow(kp.pk, msgs.data(), n, par_stream, 4);
  for (size_t i = 0; i < n; i++) {
    EXPECT_EQ(par[i].c1, seq[i].c1) << "row " << i;
    EXPECT_EQ(par[i].c2, seq[i].c2) << "row " << i;
  }

  // Table-less keys take the fallback loop; same ciphertexts, same stream.
  auto bare = kp.pk;
  bare.g_table = nullptr;
  bare.h_table = nullptr;
  Prg bare_stream(4242);
  auto plain = EG::EncryptRow(bare, msgs.data(), n, bare_stream);
  for (size_t i = 0; i < n; i++) {
    EXPECT_EQ(plain[i].c1, seq[i].c1) << "row " << i;
    EXPECT_EQ(plain[i].c2, seq[i].c2) << "row " << i;
  }

  // Empty row: no draws, no elements.
  Prg empty_stream(7);
  EXPECT_TRUE(EG::EncryptRow(kp.pk, msgs.data(), 0, empty_stream).empty());
}

TYPED_TEST(ElGamalTest, HomomorphicAdditionAndScaling) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  Prg prg(52);
  auto kp = EG::GenerateKeys(prg);
  F a = prg.NextField<F>(), b = prg.NextField<F>(), s = prg.NextField<F>();
  auto ca = EG::Encrypt(kp.pk, a, prg);
  auto cb = EG::Encrypt(kp.pk, b, prg);
  // Enc(a)*Enc(b) decrypts to g^(a+b).
  EXPECT_EQ(EG::DecryptToGroup(kp.sk, kp.pk, ca * cb),
            EG::GroupEmbed(kp.pk, a + b));
  // Enc(a)^s decrypts to g^(a·s) — arithmetic is exactly mod q = |F|.
  EXPECT_EQ(EG::DecryptToGroup(kp.sk, kp.pk, ca.Pow(s)),
            EG::GroupEmbed(kp.pk, a * s));
}

TYPED_TEST(ElGamalTest, HomomorphicInnerProduct) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  Prg prg(53);
  auto kp = EG::GenerateKeys(prg);
  const size_t kN = 12;
  auto r = prg.template NextFieldVector<F>(kN);
  auto u = prg.template NextFieldVector<F>(kN);
  u[3] = F::Zero();  // exercise the skip-zero path
  std::vector<typename EG::Ciphertext> cts;
  for (const F& ri : r) {
    cts.push_back(EG::Encrypt(kp.pk, ri, prg));
  }
  auto ct = EG::InnerProduct(cts.data(), u.data(), kN);
  F expect = F::Zero();
  for (size_t i = 0; i < kN; i++) {
    expect += r[i] * u[i];
  }
  EXPECT_EQ(EG::DecryptToGroup(kp.sk, kp.pk, ct),
            EG::GroupEmbed(kp.pk, expect));
}

TYPED_TEST(ElGamalTest, WrongKeyDoesNotDecrypt) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  Prg prg(54);
  auto kp = EG::GenerateKeys(prg);
  auto other = EG::GenerateKeys(prg);
  F m = prg.NextField<F>();
  auto ct = EG::Encrypt(kp.pk, m, prg);
  EXPECT_NE(EG::DecryptToGroup(other.sk, kp.pk, ct),
            EG::GroupEmbed(kp.pk, m));
}

}  // namespace
}  // namespace zaatar
