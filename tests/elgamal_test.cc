#include "src/crypto/elgamal.h"

#include <gtest/gtest.h>

namespace zaatar {
namespace {

template <typename F>
class ElGamalTest : public ::testing::Test {};

using FieldTypes = ::testing::Types<F128, F220>;
TYPED_TEST_SUITE(ElGamalTest, FieldTypes);

TYPED_TEST(ElGamalTest, GeneratorHasOrderQ) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  typename EG::Zp g = EG::Generator();
  EXPECT_FALSE(g.IsOne());
  // g^q = 1 where q is the field modulus.
  EXPECT_TRUE(g.Pow(F::kModulus).IsOne());
}

TYPED_TEST(ElGamalTest, GroupModulusCongruentOneModQ) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  // p - 1 must be divisible by q: check p mod q == 1 by folding limbs into F.
  typename EG::Zp::Repr p = EG::Zp::kModulus;
  F p_mod_q = F::FromLimbs(p.limbs.data(), p.limbs.size());
  EXPECT_TRUE(p_mod_q.IsOne());
}

TYPED_TEST(ElGamalTest, EncryptDecryptRoundTrip) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  Prg prg(50);
  auto kp = EG::GenerateKeys(prg);
  for (int i = 0; i < 5; i++) {
    F m = prg.NextField<F>();
    auto ct = EG::Encrypt(kp.pk, m, prg);
    EXPECT_EQ(EG::DecryptToGroup(kp.sk, kp.pk, ct), EG::GroupEmbed(kp.pk, m));
  }
}

TYPED_TEST(ElGamalTest, EncryptionIsRandomized) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  Prg prg(51);
  auto kp = EG::GenerateKeys(prg);
  F m = prg.NextField<F>();
  auto c1 = EG::Encrypt(kp.pk, m, prg);
  auto c2 = EG::Encrypt(kp.pk, m, prg);
  EXPECT_NE(c1.c1, c2.c1);  // fresh randomness
  EXPECT_EQ(EG::DecryptToGroup(kp.sk, kp.pk, c1),
            EG::DecryptToGroup(kp.sk, kp.pk, c2));
}

TYPED_TEST(ElGamalTest, HomomorphicAdditionAndScaling) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  Prg prg(52);
  auto kp = EG::GenerateKeys(prg);
  F a = prg.NextField<F>(), b = prg.NextField<F>(), s = prg.NextField<F>();
  auto ca = EG::Encrypt(kp.pk, a, prg);
  auto cb = EG::Encrypt(kp.pk, b, prg);
  // Enc(a)*Enc(b) decrypts to g^(a+b).
  EXPECT_EQ(EG::DecryptToGroup(kp.sk, kp.pk, ca * cb),
            EG::GroupEmbed(kp.pk, a + b));
  // Enc(a)^s decrypts to g^(a·s) — arithmetic is exactly mod q = |F|.
  EXPECT_EQ(EG::DecryptToGroup(kp.sk, kp.pk, ca.Pow(s)),
            EG::GroupEmbed(kp.pk, a * s));
}

TYPED_TEST(ElGamalTest, HomomorphicInnerProduct) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  Prg prg(53);
  auto kp = EG::GenerateKeys(prg);
  const size_t kN = 12;
  auto r = prg.template NextFieldVector<F>(kN);
  auto u = prg.template NextFieldVector<F>(kN);
  u[3] = F::Zero();  // exercise the skip-zero path
  std::vector<typename EG::Ciphertext> cts;
  for (const F& ri : r) {
    cts.push_back(EG::Encrypt(kp.pk, ri, prg));
  }
  auto ct = EG::InnerProduct(cts.data(), u.data(), kN);
  F expect = F::Zero();
  for (size_t i = 0; i < kN; i++) {
    expect += r[i] * u[i];
  }
  EXPECT_EQ(EG::DecryptToGroup(kp.sk, kp.pk, ct),
            EG::GroupEmbed(kp.pk, expect));
}

TYPED_TEST(ElGamalTest, WrongKeyDoesNotDecrypt) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  Prg prg(54);
  auto kp = EG::GenerateKeys(prg);
  auto other = EG::GenerateKeys(prg);
  F m = prg.NextField<F>();
  auto ct = EG::Encrypt(kp.pk, m, prg);
  EXPECT_NE(EG::DecryptToGroup(other.sk, kp.pk, ct),
            EG::GroupEmbed(kp.pk, m));
}

}  // namespace
}  // namespace zaatar
