// Serialization round-trips, validation, and an end-to-end argument run
// where every message crosses a (simulated) wire. Decode failures are typed
// Status values, never exceptions: the deserialization path is a trust
// boundary against a malicious peer.

#include <gtest/gtest.h>

#include "src/argument/cost_model.h"
#include "src/argument/wire.h"
#include "src/constraints/qap.h"
#include "src/constraints/transform.h"
#include "src/field/fields.h"
#include "tests/test_util.h"

namespace zaatar {
namespace {

using F = F128;

TEST(SerializeTest, PrimitivesRoundTrip) {
  ByteWriter w;
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  BigInt<3> big;
  big.limbs = {1, 2, 3};
  w.PutBigInt(big);
  ByteReader r(w.bytes());
  auto u32 = r.GetU32();
  ASSERT_TRUE(u32.ok());
  EXPECT_EQ(*u32, 0xDEADBEEFu);
  auto u64 = r.GetU64();
  ASSERT_TRUE(u64.ok());
  EXPECT_EQ(*u64, 0x0123456789ABCDEFull);
  auto b = r.GetBigInt<3>();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, big);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(SerializeTest, TruncatedReadsReturnTruncatedStatus) {
  ByteWriter w;
  w.PutU32(7);
  ByteReader r(w.bytes());
  ASSERT_TRUE(r.GetU32().ok());
  auto missing = r.GetU64();
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kTruncated);
  // A failed read consumes nothing; the reader stays usable.
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SerializeTest, FieldElementsRoundTripAndValidate) {
  Prg prg(300);
  ByteWriter w;
  std::vector<F> elems = prg.NextFieldVector<F>(20);
  PutFieldVector(&w, elems);
  ByteReader r(w.bytes());
  auto decoded = GetFieldVector<F>(&r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, elems);

  // An out-of-range residue (the modulus itself) must be rejected, not
  // silently reduced.
  ByteWriter bad;
  bad.PutBigInt(F::kModulus);
  ByteReader br(bad.bytes());
  auto out_of_range = GetField<F>(&br);
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, ModulusPlusOneRejectedForFieldAndGroup) {
  // q and q+1 for the computation field; p and p+1 for the ElGamal group.
  using Zp = typename ElGamal<F>::Zp;
  {
    auto non_canonical = F::kModulus;
    non_canonical.AddInPlace(typename F::Repr(uint64_t{1}));
    ByteWriter w;
    w.PutBigInt(non_canonical);
    ByteReader r(w.bytes());
    auto got = GetField<F>(&r);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kOutOfRange);
  }
  {
    auto non_canonical = Zp::kModulus;
    non_canonical.AddInPlace(typename Zp::Repr(uint64_t{1}));
    ByteWriter w;
    w.PutBigInt(non_canonical);
    ByteReader r(w.bytes());
    auto got = GetField<Zp>(&r);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kOutOfRange);
  }
}

TEST(SerializeTest, OversizedVectorLengthRejectedBeforeAllocation) {
  ByteWriter w;
  w.PutU32(0x7FFFFFFF);  // claims ~2^31 elements but carries none
  ByteReader r(w.bytes());
  auto v = GetFieldVector<F>(&r);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kLengthOverflow);

  // Even a length under the remaining-bytes bound is capped.
  ByteWriter w2;
  w2.PutU32(0xFFFFFFFF);
  ByteReader r2(w2.bytes());
  auto n = r2.GetLength(/*elem_bytes=*/0);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kLengthOverflow);
}

struct WireFixture {
  RandomSystem<F> rs;
  ZaatarTransform<F> transform;

  static WireFixture Make(Prg& prg) {
    WireFixture f;
    f.rs = MakeRandomSatisfiedSystem<F>(prg, 8, 2, 2, 14);
    f.transform = GingerToZaatar(f.rs.system);
    return f;
  }
};

TEST(WireTest, InstanceProofMessageRoundTrips) {
  Prg prg(301);
  auto f = WireFixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  auto setup = ZaatarArgument<F>::Setup(
      ZaatarPcp<F>::GenerateQueries(qap, PcpParams::Light(), prg), prg);
  auto w = f.transform.ExtendAssignment(f.rs.assignment);
  auto proof = BuildZaatarProof(qap, w);
  auto ip = ZaatarArgument<F>::Prove({&proof.z, &proof.h}, setup);

  auto msg = InstanceProofMessage<F>::FromProof<ZaatarAdapter<F>>(ip);
  auto bytes = msg.Serialize();
  auto decoded = InstanceProofMessage<F>::Deserialize(bytes);
  ASSERT_TRUE(decoded.ok());
  auto rebuilt = decoded->ToProof<ZaatarAdapter<F>>();
  EXPECT_TRUE(
      ZaatarArgument<F>::VerifyInstance(setup, rebuilt, f.rs.BoundValues()));

  // Bit-flip anywhere in the message: either decode fails or the verifier
  // rejects — never a silent acceptance of a corrupted proof, and never an
  // exception out of the ingest path.
  Prg flip(302);
  for (int trial = 0; trial < 10; trial++) {
    auto corrupted = bytes;
    corrupted[flip.NextBounded(corrupted.size())] ^=
        static_cast<uint8_t>(1 + flip.NextBounded(255));
    auto result = VerifyInstanceBytes<F, ZaatarAdapter<F>>(
        setup, corrupted, f.rs.BoundValues());
    EXPECT_FALSE(result.accepted()) << "corruption trial " << trial;
  }
}

TEST(WireTest, SetupMessageRoundTripsAndSeedRederivesQueries) {
  Prg sys_prg(303);
  auto f = WireFixture::Make(sys_prg);
  Qap<F> qap(f.transform.r1cs);

  // Public-coin queries from a dedicated seed; secrets from a separate Prg.
  const uint64_t kQuerySeed = 0xC0FFEE;
  Prg query_prg(kQuerySeed);
  Prg secret_prg(0x5EC2E7);
  auto setup = ZaatarArgument<F>::Setup(
      ZaatarPcp<F>::GenerateQueries(qap, PcpParams::Light(), query_prg),
      secret_prg);

  auto msg = SetupMessage<F>::FromSetup(kQuerySeed, setup);
  auto bytes = msg.Serialize();
  auto decoded_or = SetupMessage<F>::Deserialize(bytes);
  ASSERT_TRUE(decoded_or.ok());
  const auto& decoded = *decoded_or;
  EXPECT_EQ(decoded.query_seed, kQuerySeed);
  EXPECT_EQ(decoded.t[0], setup.shared[0].t);
  EXPECT_EQ(decoded.enc_r[1].size(), setup.shared[1].enc_r.size());

  // The prover re-derives identical queries from the seed alone.
  Prg rederive(decoded.query_seed);
  auto queries2 =
      ZaatarPcp<F>::GenerateQueries(qap, PcpParams::Light(), rederive);
  ASSERT_EQ(queries2.z_queries.size(), setup.queries.z_queries.size());
  for (size_t i = 0; i < queries2.z_queries.size(); i++) {
    EXPECT_EQ(queries2.z_queries[i], setup.queries.z_queries[i]);
  }

  // And a prover working entirely from the wire message produces a proof
  // the verifier accepts.
  auto w = f.transform.ExtendAssignment(f.rs.assignment);
  auto proof = BuildZaatarProof(qap, w);
  typename ZaatarArgument<F>::InstanceProof ip;
  const std::vector<F>* vectors[2] = {&proof.z, &proof.h};
  for (size_t o = 0; o < 2; o++) {
    auto part = LinearCommitment<F>::Prove(
        *vectors[o], decoded.enc_r[o],
        ZaatarAdapter<F>::OracleQueries(queries2, o), decoded.t[o]);
    ASSERT_TRUE(part.ok()) << part.status().ToString();
    ip.parts[o] = std::move(part).value();
  }
  EXPECT_TRUE(
      ZaatarArgument<F>::VerifyInstance(setup, ip, f.rs.BoundValues()));
}

TEST(WireTest, HostileLengthPrefixFailsWithoutAllocating) {
  Prg prg(305);
  auto f = WireFixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  auto setup = ZaatarArgument<F>::Setup(
      ZaatarPcp<F>::GenerateQueries(qap, PcpParams::Light(), prg), prg);
  auto bytes = SetupMessage<F>::FromSetup(1, setup).Serialize();

  // The first enc_r length prefix sits right after the 8-byte seed. Claim
  // 0xFFFFFFFF ciphertexts: decode must fail with LENGTH_OVERFLOW before
  // reserving ~2^32 * 256 bytes.
  bytes[8] = 0xFF;
  bytes[9] = 0xFF;
  bytes[10] = 0xFF;
  bytes[11] = 0xFF;
  auto decoded = SetupMessage<F>::Deserialize(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kLengthOverflow);
}

TEST(WireTest, MeasuredBytesMatchTheCostModel) {
  Prg prg(304);
  auto f = WireFixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  Prg qprg(1), sprg(2);
  auto queries =
      ZaatarPcp<F>::GenerateQueries(qap, PcpParams::Light(), qprg);
  size_t proof_len = queries.z_len + queries.h_len;
  size_t num_queries = queries.TotalQueryCount();
  auto setup = ZaatarArgument<F>::Setup(std::move(queries), sprg);

  auto setup_msg = SetupMessage<F>::FromSetup(1, setup);
  size_t field_bytes = F::kLimbs * 8;
  // Model: proof_len * (2 group + field) + seed; actual adds small framing.
  size_t modeled = NetworkCosts::SetupBytes(proof_len, field_bytes);
  size_t actual = setup_msg.Serialize().size();
  EXPECT_NEAR(static_cast<double>(actual), static_cast<double>(modeled),
              64.0);

  auto w = f.transform.ExtendAssignment(f.rs.assignment);
  auto proof = BuildZaatarProof(qap, w);
  auto ip = ZaatarArgument<F>::Prove({&proof.z, &proof.h}, setup);
  auto inst_msg = InstanceProofMessage<F>::FromProof<ZaatarAdapter<F>>(ip);
  size_t modeled_inst = NetworkCosts::InstanceBytes(num_queries, field_bytes);
  EXPECT_NEAR(static_cast<double>(inst_msg.Serialize().size()),
              static_cast<double>(modeled_inst), 64.0);
}

}  // namespace
}  // namespace zaatar
