// Shared helpers for tests: random satisfiable constraint systems with a
// known witness, used to exercise transforms, QAPs, PCPs, and arguments on
// inputs with no special structure.

#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <vector>

#include "src/constraints/ginger.h"
#include "src/crypto/prg.h"

namespace zaatar {

template <typename F>
struct RandomSystem {
  GingerSystem<F> system;
  std::vector<F> assignment;  // satisfying, layout order (Z, X, Y)

  std::vector<F> BoundValues() const {
    return std::vector<F>(
        assignment.begin() + system.layout.num_unbound, assignment.end());
  }
};

// Builds a satisfiable degree-2 system over random values: each constraint
// mixes a few random linear and quadratic terms and fixes its constant so
// the chosen assignment satisfies it. Every variable appears in at least one
// constraint, so perturbing any variable (or any bound value) violates some
// constraint with overwhelming probability.
template <typename F>
RandomSystem<F> MakeRandomSatisfiedSystem(Prg& prg, size_t num_unbound,
                                          size_t num_inputs,
                                          size_t num_outputs,
                                          size_t num_constraints) {
  RandomSystem<F> out;
  out.system.layout = {num_unbound, num_inputs, num_outputs};
  size_t total = out.system.layout.Total();
  out.assignment = prg.NextFieldVector<F>(total);

  auto random_var = [&] {
    return static_cast<uint32_t>(prg.NextBounded(total));
  };
  for (size_t j = 0; j < num_constraints; j++) {
    GingerConstraint<F> c;
    // Coverage: constraint j always touches variable j mod total.
    c.linear.AddTerm(static_cast<uint32_t>(j % total),
                     prg.NextNonzeroField<F>());
    for (int t = 0; t < 2; t++) {
      c.linear.AddTerm(random_var(), prg.NextField<F>());
    }
    for (int t = 0; t < 2; t++) {
      c.quad.push_back({random_var(), random_var(), prg.NextField<F>()});
    }
    c.linear.Compact();
    F residual = c.Evaluate(out.assignment);
    c.linear.AddConstant(-residual);
    out.system.constraints.push_back(std::move(c));
  }
  return out;
}

}  // namespace zaatar

#endif  // TESTS_TEST_UTIL_H_
