// zaatar-serve daemon tests: the include-graph trust boundary for the
// client half, envelope/registry codecs, both pollers, the bounded worker
// pool, the amortization cache (single-build latch, LRU + epoch eviction,
// failure retry), and the daemon end to end over AF_UNIX — two clients
// amortizing one setup, typed saturation shedding, admission control,
// handshake deadlines, hostile frames, and message-driven shutdown.

// The client header comes FIRST so the guards below see exactly what
// prover-side serve code pulls in.
#include "src/serve/client.h"

#include "src/serve/app_registry.h"
#include "src/serve/messages.h"

// Prover-side serve code must compile without the verifier's secret
// machinery — same boundary protocol_isolation_test.cc pins for the
// session layer.
#ifdef SRC_ARGUMENT_ARGUMENT_H_
#error "serve client headers leak src/argument/argument.h"
#endif
#ifdef SRC_PROTOCOL_VERIFIER_SESSION_H_
#error "serve client headers leak verifier_session.h"
#endif

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/pcp/params.h"
#include "src/serve/amortization_cache.h"
#include "src/serve/poller.h"
#include "src/serve/psi_material.h"
#include "src/serve/server.h"
#include "src/serve/worker_pool.h"

namespace zaatar {
namespace {

using Millis = std::chrono::milliseconds;

std::string TestSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/zaatar_serve_test." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

// ----- registry + codecs -----

TEST(AppRegistryTest, ParsePsi) {
  std::string name;
  size_t size = 0;
  ASSERT_TRUE(serve::ParsePsi("lcs/8", &name, &size).ok());
  EXPECT_EQ(name, "lcs");
  EXPECT_EQ(size, 8u);
  EXPECT_FALSE(serve::ParsePsi("lcs", &name, &size).ok());
  EXPECT_FALSE(serve::ParsePsi("/8", &name, &size).ok());
  EXPECT_FALSE(serve::ParsePsi("lcs/", &name, &size).ok());
  EXPECT_FALSE(serve::ParsePsi("lcs/abc", &name, &size).ok());
  EXPECT_FALSE(serve::ParsePsi("lcs/0", &name, &size).ok());
  EXPECT_FALSE(serve::ParsePsi("lcs/65", &name, &size).ok());
  EXPECT_TRUE(serve::MakeRegisteredAppF128("mat_mul/2").ok());
  EXPECT_FALSE(serve::MakeRegisteredAppF128("nonsense/2").ok());
}

TEST(ServeMessagesTest, EnvelopeRoundTrip) {
  serve::HelloMessage hello;
  hello.field_tag = serve::kFieldTagF128;
  hello.psi = "lcs/4";
  hello.tenant = "t1";
  auto frame = serve::EncodeEnvelope(serve::MessageType::kHello,
                                     hello.EncodePayload());
  auto env = serve::DecodeEnvelope(frame);
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env->type, serve::MessageType::kHello);
  auto decoded = serve::HelloMessage::DecodePayload(env->payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->field_tag, serve::kFieldTagF128);
  EXPECT_EQ(decoded->psi, "lcs/4");
  EXPECT_EQ(decoded->tenant, "t1");
}

TEST(ServeMessagesTest, ErrorFrameCarriesTypedStatus) {
  auto frame = serve::EncodeErrorFrame(ResourceExhaustedError("queue full"));
  auto env = serve::DecodeEnvelope(frame);
  ASSERT_TRUE(env.ok());
  ASSERT_EQ(env->type, serve::MessageType::kError);
  auto err = serve::ErrorMessage::DecodePayload(env->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->ToStatus().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(err->ToStatus().message(), "queue full");
}

TEST(ServeMessagesTest, HostileFramesRejected) {
  EXPECT_FALSE(serve::DecodeEnvelope({}).ok());
  EXPECT_FALSE(serve::DecodeEnvelope({0x00}).ok());
  EXPECT_FALSE(serve::DecodeEnvelope({0xFF, 0x01}).ok());
  // A hello whose string length prefix overruns the payload dies in
  // GetLength, before any allocation.
  std::vector<uint8_t> bad = {0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F};
  EXPECT_FALSE(serve::HelloMessage::DecodePayload(bad).ok());
}

// ----- pollers -----

void ExercisePoller(serve::Poller* poller) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(poller->Add(fds[0], /*tag=*/7, /*want_read=*/true,
                          /*want_write=*/false)
                  .ok());
  // Nothing buffered: a bounded wait returns empty.
  auto idle = poller->Wait(20);
  ASSERT_TRUE(idle.ok());
  EXPECT_TRUE(idle->empty());
  // One byte: readable with our tag.
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  auto ready = poller->Wait(1000);
  ASSERT_TRUE(ready.ok());
  ASSERT_EQ(ready->size(), 1u);
  EXPECT_EQ((*ready)[0].tag, 7u);
  EXPECT_TRUE((*ready)[0].readable);
  // Disarmed: the still-buffered byte no longer reports (backpressure
  // depends on level-triggered disarm/re-arm).
  ASSERT_TRUE(poller->Update(fds[0], 7, /*want_read=*/false,
                             /*want_write=*/false)
                  .ok());
  auto disarmed = poller->Wait(20);
  ASSERT_TRUE(disarmed.ok());
  EXPECT_TRUE(disarmed->empty());
  // Re-armed: it reports again.
  ASSERT_TRUE(poller->Update(fds[0], 7, /*want_read=*/true,
                             /*want_write=*/false)
                  .ok());
  auto rearmed = poller->Wait(1000);
  ASSERT_TRUE(rearmed.ok());
  ASSERT_EQ(rearmed->size(), 1u);
  ASSERT_TRUE(poller->Remove(fds[0]).ok());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(PollerTest, PollPollerReadiness) {
  serve::PollPoller poller;
  ExercisePoller(&poller);
}

TEST(PollerTest, DefaultPollerReadiness) {
  auto poller = serve::MakePoller(/*prefer_epoll=*/true);
  ASSERT_NE(poller, nullptr);
  ExercisePoller(poller.get());
}

// ----- worker pool -----

TEST(WorkerPoolTest, RunsJobsAndShedsTypedWhenSaturated) {
  serve::WorkerPool pool(/*threads=*/1, /*max_queue=*/1);
  std::atomic<int> ran{0};
  std::atomic<bool> release{false};
  // Occupy the single worker...
  ASSERT_TRUE(pool.Submit([&] {
                    while (!release.load()) {
                      std::this_thread::sleep_for(Millis(1));
                    }
                    ran++;
                  })
                  .ok());
  // ...wait until it is actually running so the queue is empty again...
  while (pool.queue_depth() > 0) {
    std::this_thread::sleep_for(Millis(1));
  }
  // ...fill the one queue slot...
  ASSERT_TRUE(pool.Submit([&] { ran++; }).ok());
  // ...and the next submit is REFUSED, typed, without blocking.
  Status shed = pool.Submit([&] { ran++; });
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  release.store(true);
  // Stop() drops queued-but-unstarted jobs by design, so wait for the
  // accepted pair to finish before stopping.
  for (int i = 0; i < 1000 && ran.load() < 2; i++) {
    std::this_thread::sleep_for(Millis(1));
  }
  EXPECT_EQ(ran.load(), 2);
  pool.Stop();
}

// ----- amortization cache -----

class StubMaterial final : public serve::PsiMaterial {
 public:
  explicit StubMaterial(std::vector<uint8_t> frame, size_t mem = 100)
      : frame_(std::move(frame)), mem_(mem) {}
  const std::vector<uint8_t>& setup_frame() const override { return frame_; }
  std::unique_ptr<serve::BatchVerifier> NewBatch() const override {
    return nullptr;  // cache tests never mint batches
  }
  size_t memory_bytes() const override { return mem_; }
  double build_seconds() const override { return 0.001; }

 private:
  std::vector<uint8_t> frame_;
  size_t mem_;
};

TEST(AmortizationCacheTest, MissBuildsOnceThenHits) {
  std::atomic<int> builds{0};
  serve::AmortizationCache cache(
      {.max_entries = 4, .seed = 1},
      [&](const std::string& psi, uint8_t, uint64_t)
          -> StatusOr<std::shared_ptr<serve::PsiMaterial>> {
        builds++;
        return std::shared_ptr<serve::PsiMaterial>(
            std::make_shared<StubMaterial>(
                std::vector<uint8_t>(psi.begin(), psi.end())));
      });
  auto a = cache.GetOrBuild("lcs/4", 0);
  ASSERT_TRUE(a.ok());
  auto b = cache.GetOrBuild("lcs/4", 0);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->get(), b->get());  // the SAME shared material
  EXPECT_EQ(builds.load(), 1);
  auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.memory_bytes, 100u);
}

TEST(AmortizationCacheTest, ConcurrentRequestsBuildExactlyOnce) {
  std::atomic<int> builds{0};
  serve::AmortizationCache cache(
      {.max_entries = 4, .seed = 1},
      [&](const std::string&, uint8_t, uint64_t)
          -> StatusOr<std::shared_ptr<serve::PsiMaterial>> {
        builds++;
        std::this_thread::sleep_for(Millis(50));  // a "multi-second" build
        return std::shared_ptr<serve::PsiMaterial>(
            std::make_shared<StubMaterial>(std::vector<uint8_t>{1}));
      });
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<serve::PsiMaterial>> got(4);
  for (int i = 0; i < 4; i++) {
    threads.emplace_back([&, i] {
      auto m = cache.GetOrBuild("apsp/2", 0);
      if (m.ok()) {
        got[i] = *m;
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(builds.load(), 1) << "concurrent hellos must share one build";
  for (int i = 1; i < 4; i++) {
    EXPECT_EQ(got[i].get(), got[0].get());
  }
  auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 3u);
}

TEST(AmortizationCacheTest, LruEvictsColdestReadyEntry) {
  serve::AmortizationCache cache(
      {.max_entries = 2, .seed = 1},
      [&](const std::string&, uint8_t, uint64_t)
          -> StatusOr<std::shared_ptr<serve::PsiMaterial>> {
        return std::shared_ptr<serve::PsiMaterial>(
            std::make_shared<StubMaterial>(std::vector<uint8_t>{1}));
      });
  ASSERT_TRUE(cache.GetOrBuild("a/1", 0).ok());
  ASSERT_TRUE(cache.GetOrBuild("b/1", 0).ok());
  ASSERT_TRUE(cache.GetOrBuild("a/1", 0).ok());  // touch a: b is now coldest
  ASSERT_TRUE(cache.GetOrBuild("c/1", 0).ok());  // evicts b
  auto s = cache.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.memory_bytes, 200u);
  // b rebuilds (miss), a still hits.
  EXPECT_EQ(s.misses, 3u);
  ASSERT_TRUE(cache.GetOrBuild("b/1", 0).ok());
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(AmortizationCacheTest, EpochAdvanceRetiresEntriesAndReseeds) {
  std::vector<uint64_t> seeds;
  serve::AmortizationCache cache(
      {.max_entries = 4, .seed = 99},
      [&](const std::string&, uint8_t, uint64_t seed)
          -> StatusOr<std::shared_ptr<serve::PsiMaterial>> {
        seeds.push_back(seed);
        return std::shared_ptr<serve::PsiMaterial>(
            std::make_shared<StubMaterial>(std::vector<uint8_t>{1}));
      });
  ASSERT_TRUE(cache.GetOrBuild("a/1", 0).ok());
  cache.AdvanceEpoch();
  auto s = cache.stats();
  EXPECT_EQ(s.epoch, 1u);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.memory_bytes, 0u);
  // Same Ψ, new epoch: a fresh build with a DIFFERENT derived seed — the
  // operator's key-rotation knob actually rotates.
  ASSERT_TRUE(cache.GetOrBuild("a/1", 0).ok());
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_NE(seeds[0], seeds[1]);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(AmortizationCacheTest, FailedBuildIsNotCached) {
  std::atomic<int> builds{0};
  serve::AmortizationCache cache(
      {.max_entries = 4, .seed = 1},
      [&](const std::string&, uint8_t, uint64_t)
          -> StatusOr<std::shared_ptr<serve::PsiMaterial>> {
        if (builds++ == 0) {
          return MalformedError("transient build failure");
        }
        return std::shared_ptr<serve::PsiMaterial>(
            std::make_shared<StubMaterial>(std::vector<uint8_t>{1}));
      });
  auto first = cache.GetOrBuild("a/1", 0);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(cache.stats().build_failures, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
  auto second = cache.GetOrBuild("a/1", 0);
  ASSERT_TRUE(second.ok()) << "failure must not be cached";
  EXPECT_EQ(builds.load(), 2);
}

// ----- daemon end to end (real crypto) -----

TEST(ServeDaemonTest, TwoClientsAmortizeOneSetup) {
  serve::ServerOptions opt;
  opt.socket_path = TestSocketPath();
  opt.workers = 2;
  serve::Server server(opt, serve::MakePsiBuilder(PcpParams::Light()));
  ASSERT_TRUE(server.Start().ok());

  for (int c = 0; c < 2; c++) {
    auto client = serve::ServeClient::Connect(opt.socket_path, {});
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto report = serve::RunServeBatchF128(
        *client, "lcs/3", "tenant" + std::to_string(c), /*instances=*/2,
        /*instance_seed=*/100 + c);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->instances, 2u);
    EXPECT_EQ(report->accepted, 2u);
  }

  auto cache = server.cache().stats();
  EXPECT_EQ(cache.misses, 1u) << "one build for two clients";
  EXPECT_GE(cache.hits, 1u) << "the second hello must hit";

  const std::string stats = server.StatsJson();
  EXPECT_NE(stats.find("\"zaatar.serve.stats.v1\""), std::string::npos);
  EXPECT_NE(stats.find("\"tenant0\""), std::string::npos);
  EXPECT_NE(stats.find("\"tenant1\""), std::string::npos);
  EXPECT_NE(stats.find("\"hits\": 1"), std::string::npos);
  server.Stop();
}

TEST(ServeDaemonTest, UnknownPsiIsTypedConnectionError) {
  serve::ServerOptions opt;
  opt.socket_path = TestSocketPath();
  serve::Server server(opt, serve::MakePsiBuilder(PcpParams::Light()));
  ASSERT_TRUE(server.Start().ok());
  serve::ServeClient::Options copt;
  copt.backoff.max_retries = 0;
  auto client = serve::ServeClient::Connect(opt.socket_path, copt);
  ASSERT_TRUE(client.ok());
  auto setup = client->Hello(serve::kFieldTagF128, "nonsense/2", "t");
  ASSERT_FALSE(setup.ok());
  EXPECT_EQ(setup.status().code(), StatusCode::kMalformed);
  server.Stop();
}

// ----- daemon behavior under stubs (no crypto: saturation, deadlines) -----

class SlowStubBatch final : public serve::BatchVerifier {
 public:
  explicit SlowStubBatch(Millis delay) : delay_(delay) {}
  StatusOr<std::vector<uint8_t>> HandleProve(
      const std::vector<uint8_t>& payload) override {
    std::this_thread::sleep_for(delay_);
    decided_++;
    accepted_++;
    return payload;  // echo
  }
  size_t instances_decided() const override { return decided_; }
  size_t instances_accepted() const override { return accepted_; }

 private:
  Millis delay_;
  size_t decided_ = 0;
  size_t accepted_ = 0;
};

class SlowStubMaterial final : public serve::PsiMaterial {
 public:
  explicit SlowStubMaterial(Millis prove_delay) : prove_delay_(prove_delay) {}
  const std::vector<uint8_t>& setup_frame() const override { return frame_; }
  std::unique_ptr<serve::BatchVerifier> NewBatch() const override {
    return std::make_unique<SlowStubBatch>(prove_delay_);
  }
  size_t memory_bytes() const override { return 64; }
  double build_seconds() const override { return 0; }

 private:
  std::vector<uint8_t> frame_ = {0xAB, 0xCD};
  Millis prove_delay_;
};

serve::AmortizationCache::Builder StubBuilder(Millis prove_delay) {
  return [prove_delay](const std::string&, uint8_t, uint64_t)
             -> StatusOr<std::shared_ptr<serve::PsiMaterial>> {
    return std::shared_ptr<serve::PsiMaterial>(
        std::make_shared<SlowStubMaterial>(prove_delay));
  };
}

TEST(ServeDaemonTest, SaturationShedsTypedAndConnectionSurvives) {
  serve::ServerOptions opt;
  opt.socket_path = TestSocketPath();
  opt.workers = 1;
  opt.max_queue = 1;
  opt.prefer_epoll = false;  // exercise the poll(2) fallback path too
  serve::Server server(opt, StubBuilder(/*prove_delay=*/Millis(300)));
  ASSERT_TRUE(server.Start().ok());

  serve::ServeClient::Options copt;
  copt.backoff.max_retries = 0;  // surface the typed rejection, don't retry
  std::vector<std::unique_ptr<serve::ServeClient>> clients;
  for (int i = 0; i < 3; i++) {
    auto c = serve::ServeClient::Connect(opt.socket_path, copt);
    ASSERT_TRUE(c.ok());
    clients.push_back(std::make_unique<serve::ServeClient>(std::move(*c)));
    ASSERT_TRUE(
        clients.back()->Hello(serve::kFieldTagF128, "stub/1", "t").ok());
  }
  // Client 0 occupies the single worker (300ms), client 1 fills the one
  // queue slot, client 2's frame is REFUSED typed — and the connection
  // stays open for a later retry.
  std::thread t0([&] { (void)clients[0]->Prove({1}); });
  std::this_thread::sleep_for(Millis(60));
  std::thread t1([&] { (void)clients[1]->Prove({2}); });
  std::this_thread::sleep_for(Millis(60));
  auto shed = clients[2]->Prove({3});
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  t0.join();
  t1.join();
  // The shed connection is still healthy: once capacity drains, the SAME
  // frame goes through (the server never saw the first attempt).
  auto retried = clients[2]->Prove({3});
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(*retried, std::vector<uint8_t>({3}));
  const std::string stats = server.StatsJson();
  EXPECT_NE(stats.find("\"poller\": \"poll\""), std::string::npos);
  server.Stop();
}

TEST(ServeDaemonTest, AdmissionControlRejectsTyped) {
  serve::ServerOptions opt;
  opt.socket_path = TestSocketPath();
  opt.max_connections = 1;
  serve::Server server(opt, StubBuilder(Millis(0)));
  ASSERT_TRUE(server.Start().ok());

  serve::ServeClient::Options copt;
  copt.backoff.max_retries = 0;
  auto first = serve::ServeClient::Connect(opt.socket_path, copt);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->Hello(serve::kFieldTagF128, "stub/1", "t").ok());

  // The kernel accepts the second connection; the daemon refuses it at
  // admission with a proactive typed frame, then closes. Read it raw —
  // sending first would race the close.
  auto fd = protocol::ConnectUnix(opt.socket_path);
  ASSERT_TRUE(fd.ok());
  protocol::TransportOptions topt;
  topt.recv_deadline = Millis(3000);
  protocol::PipeTransport refused(*fd, topt);
  auto notice = refused.Receive();
  ASSERT_TRUE(notice.ok()) << notice.status().ToString();
  auto env = serve::DecodeEnvelope(*notice);
  ASSERT_TRUE(env.ok());
  ASSERT_EQ(env->type, serve::MessageType::kError);
  auto err = serve::ErrorMessage::DecodePayload(env->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->ToStatus().code(), StatusCode::kResourceExhausted);
  server.Stop();
}

TEST(ServeDaemonTest, HandshakeDeadlineClosesStalledConnection) {
  serve::ServerOptions opt;
  opt.socket_path = TestSocketPath();
  opt.handshake_deadline = Millis(80);
  serve::Server server(opt, StubBuilder(Millis(0)));
  ASSERT_TRUE(server.Start().ok());

  auto fd = protocol::ConnectUnix(opt.socket_path);
  ASSERT_TRUE(fd.ok());
  protocol::TransportOptions topt;
  topt.recv_deadline = Millis(3000);
  protocol::PipeTransport stalled(*fd, topt);
  // Send nothing: the sweep fires, delivering a best-effort typed notice
  // and then EOF.
  auto notice = stalled.Receive();
  ASSERT_TRUE(notice.ok()) << notice.status().ToString();
  auto env = serve::DecodeEnvelope(*notice);
  ASSERT_TRUE(env.ok());
  ASSERT_EQ(env->type, serve::MessageType::kError);
  auto err = serve::ErrorMessage::DecodePayload(env->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->ToStatus().code(), StatusCode::kDeadlineExceeded);
  auto eof = stalled.Receive();
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kTruncated);
  server.Stop();
}

TEST(ServeDaemonTest, HostileFrameGetsTypedErrorThenClose) {
  serve::ServerOptions opt;
  opt.socket_path = TestSocketPath();
  serve::Server server(opt, StubBuilder(Millis(0)));
  ASSERT_TRUE(server.Start().ok());

  auto fd = protocol::ConnectUnix(opt.socket_path);
  ASSERT_TRUE(fd.ok());
  protocol::TransportOptions topt;
  topt.recv_deadline = Millis(3000);
  protocol::PipeTransport link(*fd, topt);
  ASSERT_TRUE(link.Send({0xFF}).ok());  // unknown message type
  auto reply = link.Receive();
  ASSERT_TRUE(reply.ok());
  auto env = serve::DecodeEnvelope(*reply);
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env->type, serve::MessageType::kError);
  auto eof = link.Receive();
  EXPECT_FALSE(eof.ok());
  server.Stop();
}

TEST(ServeDaemonTest, ShutdownMessageStopsDaemon) {
  serve::ServerOptions opt;
  opt.socket_path = TestSocketPath();
  serve::Server server(opt, StubBuilder(Millis(0)));
  ASSERT_TRUE(server.Start().ok());
  auto client = serve::ServeClient::Connect(opt.socket_path, {});
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Shutdown().ok());
  for (int i = 0; i < 100 && !server.stop_requested(); i++) {
    std::this_thread::sleep_for(Millis(10));
  }
  EXPECT_TRUE(server.stop_requested());
  server.Stop();
}

}  // namespace
}  // namespace zaatar
