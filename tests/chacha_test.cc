#include "src/crypto/chacha.h"

#include <gtest/gtest.h>

#include <cstring>

#include "src/crypto/prg.h"
#include "src/field/fields.h"

namespace zaatar {
namespace {

// RFC 8439 §2.3.2 test vector.
TEST(ChaCha20Test, Rfc8439BlockVector) {
  std::array<uint8_t, 32> key;
  for (int i = 0; i < 32; i++) {
    key[i] = static_cast<uint8_t>(i);
  }
  std::array<uint8_t, 12> nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                                   0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  uint8_t out[64];
  ChaCha20::Block(key, nonce, /*counter=*/1, out);
  const uint8_t kExpected[64] = {
      0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd,
      0x1f, 0xa3, 0x20, 0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0,
      0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a, 0xc3, 0xd4, 0x6c, 0x4e, 0xd2,
      0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2, 0xd7, 0x05,
      0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e,
      0xb9, 0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e};
  for (int i = 0; i < 64; i++) {
    EXPECT_EQ(out[i], kExpected[i]) << "byte " << i;
  }
}

TEST(ChaCha20Test, CounterAdvancesBetweenBlocks) {
  std::array<uint8_t, 32> key{};
  key[0] = 1;
  ChaCha20 stream(key, {}, 0);
  uint8_t b0[64], b1[64];
  stream.NextBlock(b0);
  stream.NextBlock(b1);
  bool same = true;
  for (int i = 0; i < 64; i++) {
    same = same && b0[i] == b1[i];
  }
  EXPECT_FALSE(same);
  // And independently computed block 1 matches the streamed second block.
  uint8_t direct[64];
  ChaCha20::Block(key, {}, 1, direct);
  for (int i = 0; i < 64; i++) {
    EXPECT_EQ(b1[i], direct[i]);
  }
}

TEST(PrgTest, DeterministicPerSeed) {
  Prg a(42), b(42), c(43);
  uint64_t va = a.NextU64();
  EXPECT_EQ(va, b.NextU64());
  EXPECT_NE(va, c.NextU64());
}

// Regression for the seed-expansion bug: the 64-bit convenience seed used to
// be copied into the low 8 key bytes, leaving the other 24 bytes zero.
TEST(PrgTest, ExpandSeedFillsTheWholeKey) {
  for (uint64_t seed : {0ull, 1ull, 42ull, 0xffffffffffffffffull}) {
    auto key = Prg::ExpandSeed(seed);
    // No 8-byte word of the key may be zero (splitmix64 maps nothing
    // interesting to zero for these seeds), and in particular the upper 24
    // bytes must not all be zero.
    bool upper_all_zero = true;
    for (size_t i = 8; i < key.size(); i++) {
      upper_all_zero = upper_all_zero && key[i] == 0;
    }
    EXPECT_FALSE(upper_all_zero) << "seed " << seed;
  }
  // Adjacent seeds produce unrelated keys (the old scheme differed in one
  // byte).
  auto k1 = Prg::ExpandSeed(1), k2 = Prg::ExpandSeed(2);
  int differing = 0;
  for (size_t i = 0; i < k1.size(); i++) {
    differing += k1[i] != k2[i] ? 1 : 0;
  }
  EXPECT_GT(differing, 16);
}

TEST(PrgTest, SeedConstructorMatchesExpandedKeyConstructor) {
  Prg from_seed(7);
  Prg from_key(Prg::ExpandSeed(7));
  for (int i = 0; i < 32; i++) {
    EXPECT_EQ(from_seed.NextU64(), from_key.NextU64());
  }
}

// Pinned splitmix64 expansion so the stream stays stable across refactors:
// these are the first two output words for seed 1, derived from the
// reference splitmix64 sequence.
TEST(PrgTest, ExpandSeedMatchesSplitmix64Reference) {
  auto key = Prg::ExpandSeed(1);
  uint64_t w0, w1;
  std::memcpy(&w0, key.data(), 8);
  std::memcpy(&w1, key.data() + 8, 8);
  EXPECT_EQ(w0, 0x910a2dec89025cc1ull);
  EXPECT_EQ(w1, 0xbeeb8da1658eec67ull);
}

TEST(PrgTest, NextBoundedStaysInRange) {
  Prg prg(44);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 50; i++) {
      EXPECT_LT(prg.NextBounded(bound), bound);
    }
  }
  EXPECT_EQ(prg.NextBounded(1), 0u);
}

TEST(PrgTest, NextBoundedHitsAllResidues) {
  Prg prg(45);
  std::array<int, 5> counts{};
  for (int i = 0; i < 1000; i++) {
    counts[prg.NextBounded(5)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 100);  // roughly uniform
  }
}

TEST(PrgTest, FieldSamplesAreCanonicalAndDistinct) {
  Prg prg(46);
  auto v = prg.NextFieldVector<F128>(100);
  for (const auto& x : v) {
    EXPECT_LT(x.ToCanonical().Compare(F128::kModulus), 0);
  }
  // Collisions in 100 samples of a 2^128 space would indicate brokenness.
  for (size_t i = 1; i < v.size(); i++) {
    EXPECT_NE(v[0], v[i]);
  }
  EXPECT_FALSE(prg.NextNonzeroField<F220>().IsZero());
}

}  // namespace
}  // namespace zaatar
