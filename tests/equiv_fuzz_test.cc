// Differential fuzzing of the zlang->R1CS compiler (src/testing/zlang_fuzz.h):
// random well-formed programs are cross-checked — native interpreter vs.
// witness solver vs. symbolic equivalence verdict, with a periodic full
// argument round that must ACCEPT. Any divergence fails the test with a
// shrunk reproducer and its separating input vector.
//
// Iteration count defaults to 40 and is overridable via ZAATAR_FUZZ_ITERS
// (scripts/ci.sh runs 200 under ASan).

#include <cstdio>
#include <cstdlib>

#include "gtest/gtest.h"
#include "src/field/fields.h"
#include "src/testing/zlang_fuzz.h"

namespace zaatar {
namespace {

size_t FuzzIters() {
  const char* env = std::getenv("ZAATAR_FUZZ_ITERS");
  if (env != nullptr) {
    long v = std::atol(env);
    if (v > 0) {
      return static_cast<size_t>(v);
    }
  }
  return 40;
}

TEST(EquivFuzz, RandomProgramsAgreeAcrossAllCheckers) {
  size_t iters = FuzzIters();
  ZlangFuzzReport report = RunZlangFuzz<F128>(iters, /*seed=*/0xFA22);
  if (report.failure.has_value()) {
    FAIL() << "divergence after " << report.iterations << " case(s):\n"
           << *report.failure;
  }
  EXPECT_EQ(report.compile_errors, 0u);
  // kUnknown is not a divergence, but it means the case produced no signal;
  // the generator is designed so that nearly all cases resolve.
  EXPECT_LE(report.unknown_verdicts, report.iterations / 3)
      << "too many unknown verdicts: generator/check mismatch";
  std::printf("fuzz: %zu case(s), %zu unknown verdict(s)\n",
              report.iterations, report.unknown_verdicts);
}

// A distinct seed exercises different generator paths; kept small so the
// default test run stays fast.
TEST(EquivFuzz, SecondSeedSweep) {
  ZlangFuzzReport report = RunZlangFuzz<F128>(10, /*seed=*/0xBEE5);
  if (report.failure.has_value()) {
    FAIL() << "divergence after " << report.iterations << " case(s):\n"
           << *report.failure;
  }
}

}  // namespace
}  // namespace zaatar
