// Integration tests: the five benchmark programs, compiled and solved,
// must agree with their native references on random instances, and their
// constraint systems must scale the way Figure 9 reports.

#include <gtest/gtest.h>

#include "src/apps/harness.h"
#include "src/apps/suite.h"

namespace zaatar {
namespace {

template <typename F>
void CheckAppAgainstNative(const App<F>& app, int instances, uint64_t seed) {
  auto program = CompileZlang<F>(app.source);
  Prg prg(seed);
  for (int k = 0; k < instances; k++) {
    auto inst = app.make_instance(prg);
    auto gw = program.SolveGinger(inst.inputs);
    ASSERT_TRUE(program.ginger.IsSatisfied(gw))
        << app.name << " ginger constraint "
        << program.ginger.FirstViolated(gw);
    auto zw = program.SolveZaatar(gw);
    ASSERT_TRUE(program.zaatar.r1cs.IsSatisfied(zw))
        << app.name << " r1cs constraint "
        << program.zaatar.r1cs.FirstViolated(zw);
    EXPECT_EQ(program.ExtractOutputs(gw), inst.expected_outputs)
        << app.name << " instance " << k;
  }
}

TEST(AppsTest, PamMatchesNative) {
  CheckAppAgainstNative(MakePamApp(5, 6), 4, 1001);
}

TEST(AppsTest, PamWithMoreIterations) {
  CheckAppAgainstNative(MakePamApp(6, 4, /*iters=*/3), 2, 1002);
}

TEST(AppsTest, RootFindMatchesNative) {
  CheckAppAgainstNative(MakeRootFindApp(3, 5), 4, 1003);
}

TEST(AppsTest, RootFindDeepIterations) {
  CheckAppAgainstNative(MakeRootFindApp(2, 10), 2, 1004);
}

TEST(AppsTest, ApspMatchesNative) {
  CheckAppAgainstNative(MakeApspApp(4), 3, 1005);
}

TEST(AppsTest, FannkuchMatchesNative) {
  CheckAppAgainstNative(MakeFannkuchApp(3, 5, 12), 4, 1006);
}

TEST(AppsTest, FannkuchPermutationNeedingManyFlips) {
  CheckAppAgainstNative(MakeFannkuchApp(5, 4, 10), 3, 1007);
}

TEST(AppsTest, LcsMatchesNative) {
  CheckAppAgainstNative(MakeLcsApp(10), 4, 1008);
}

TEST(AppsTest, NativeLcsSanity) {
  EXPECT_EQ(NativeLcs({1, 2, 3, 4}, {1, 2, 3, 4}), 4);
  EXPECT_EQ(NativeLcs({1, 2, 3, 4}, {4, 3, 2, 1}), 1);
  EXPECT_EQ(NativeLcs({1, 3, 2, 4}, {1, 2, 3, 4}), 3);
}

TEST(AppsTest, NativeFannkuchKnownValue) {
  // Permutation (2 1 3): one flip yields (1 2 3).
  FannkuchResult r = NativeFannkuch({2, 1, 3}, 1, 3, 10);
  EXPECT_EQ(r.total_flips, 1);
  // (3 1 2) -> reverse 3 -> (2 1 3) -> reverse 2 -> (1 2 3): 2 flips.
  r = NativeFannkuch({3, 1, 2}, 1, 3, 10);
  EXPECT_EQ(r.total_flips, 2);
}

// Figure 9's shape: |C| grows linearly in the size knob for each benchmark,
// and the Zaatar proof length stays linear while Ginger's is quadratic.
TEST(AppsTest, LcsEncodingScalesQuadraticallyInM) {
  auto p8 = CompileZlang<F128>(LcsSource(8));
  auto p16 = CompileZlang<F128>(LcsSource(16));
  double ratio = static_cast<double>(p16.CGinger()) /
                 static_cast<double>(p8.CGinger());
  EXPECT_GT(ratio, 3.0);  // ~4x for doubling m (O(m^2) cells)
  EXPECT_LT(ratio, 5.0);
}

TEST(AppsTest, ProofLengthsLinearVsQuadratic) {
  auto p = CompileZlang<F128>(LcsSource(12));
  EXPECT_EQ(p.UZaatar(), p.ZZaatar() + p.CZaatar() + 1);
  EXPECT_EQ(p.UGinger(), p.ZGinger() + p.ZGinger() * p.ZGinger());
  // The gap that motivates the paper.
  EXPECT_GT(p.UGinger(), 50 * p.UZaatar());
}

TEST(AppsTest, RootFindNeedsTheWideField) {
  // The same program must fail to compile over the 128-bit field at the
  // paper's iteration counts (widths exceed capacity) but succeed over F220.
  EXPECT_THROW(CompileZlang<F128>(RootFindSource(4, 8)), CompileError);
  EXPECT_NO_THROW(CompileZlang<F220>(RootFindSource(4, 8)));
}

TEST(AppsTest, ComputationStatsArePopulated) {
  auto program = CompileZlang<F128>(LcsSource(8));
  ComputationStats s = ComputeStats(program, 1e-6);
  EXPECT_EQ(s.c_ginger, program.CGinger());
  EXPECT_EQ(s.z_zaatar, program.ZZaatar());
  EXPECT_GT(s.k, s.c_ginger);  // several additive terms per constraint
  EXPECT_GT(s.k2, 0u);
  EXPECT_EQ(s.num_inputs, 16u);
  EXPECT_EQ(s.num_outputs, 1u);
}

}  // namespace
}  // namespace zaatar
