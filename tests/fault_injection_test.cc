// The adversarial-robustness suite: every corruption class in
// src/testing/fault_injection.h is driven through the real Argument
// pipeline, and every injected fault must produce a clean typed
// reject/malformed verdict — never a crash, hang, false accept, or
// exception out of the ingest path. Run under ASan/UBSan via
// -DZAATAR_SANITIZE (scripts/ci.sh) to also rule out silent UB.

#include "src/testing/fault_injection.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/analysis/analyzer.h"
#include "src/compiler/compile.h"
#include "src/constraints/qap.h"
#include "src/constraints/transform.h"
#include "src/field/fields.h"
#include "tests/test_util.h"

namespace zaatar {
namespace {

using F = F128;
using Adapter = ZaatarAdapter<F>;
using Arg = ZaatarArgument<F>;

// One honest transcript plus a decoy setup (a second batch over the same
// computation: same public-coin queries, fresh keys and secrets). Built in
// place by the constructor: Qap holds a pointer to transform.r1cs, so the
// fixture must never be copied or moved.
struct FaultFixture {
  Prg sys_prg;
  RandomSystem<F> rs;
  ZaatarTransform<F> transform;
  Qap<F> qap;
  typename Arg::VerifierSetup setup;
  typename Arg::VerifierSetup decoy_setup;
  ZaatarProof<F> proof;

  explicit FaultFixture(uint64_t seed)
      : sys_prg(seed),
        rs(MakeRandomSatisfiedSystem<F>(sys_prg, 8, 2, 2, 14)),
        transform(GingerToZaatar(rs.system)),
        qap(transform.r1cs) {
    const uint64_t kQuerySeed = seed ^ 0xC0FFEE;
    Prg q1(kQuerySeed), s1(seed + 1);
    setup = Arg::Setup(
        ZaatarPcp<F>::GenerateQueries(qap, PcpParams::Light(), q1), s1);
    Prg q2(kQuerySeed), s2(seed + 2);
    decoy_setup = Arg::Setup(
        ZaatarPcp<F>::GenerateQueries(qap, PcpParams::Light(), q2), s2);
    proof = BuildZaatarProof(qap, transform.ExtendAssignment(rs.assignment));
  }

  FaultFixture(const FaultFixture&) = delete;
  FaultFixture& operator=(const FaultFixture&) = delete;

  MaliciousProver<F, Adapter> Prover() const {
    return MaliciousProver<F, Adapter>(&setup, &decoy_setup,
                                       {&proof.z, &proof.h});
  }

  VerifyInstanceResult Verify(const std::vector<uint8_t>& bytes) const {
    return VerifyInstanceBytes<F, Adapter>(setup, bytes, rs.BoundValues());
  }
};

TEST(FaultInjectionTest, HonestTranscriptAccepts) {
  FaultFixture f(400);
  auto mp = f.Prover();
  auto result = f.Verify(mp.HonestBytes());
  EXPECT_EQ(result.verdict, VerifyVerdict::kAccept) << result.detail;
}

// The acceptance criterion of the whole harness: every fault class, many
// sampled corruptions each, all rejected with a verdict from the class's
// expected set.
TEST(FaultInjectionTest, EveryFaultClassYieldsTypedReject) {
  FaultFixture f(401);
  auto mp = f.Prover();
  Prg prg(402);
  for (FaultClass c : kAllFaultClasses) {
    auto expected = MaliciousProver<F, Adapter>::ExpectedVerdicts(c);
    for (int trial = 0; trial < 25; trial++) {
      auto bytes = mp.Emit(c, prg);
      auto result = f.Verify(bytes);
      ASSERT_FALSE(result.accepted())
          << FaultClassName(c) << " trial " << trial << " was accepted";
      EXPECT_NE(std::find(expected.begin(), expected.end(), result.verdict),
                expected.end())
          << FaultClassName(c) << " trial " << trial << " verdict "
          << VerifyVerdictName(result.verdict) << " (" << result.detail
          << ") not in expected set";
    }
  }
}

// Satellite: every truncation point of both protocol messages decodes to a
// typed error (or, for the degenerate full-length case, round-trips).
TEST(FaultInjectionTest, EveryTruncationPointIsHandled) {
  FaultFixture f(403);
  auto mp = f.Prover();
  const auto& bytes = mp.HonestBytes();
  for (size_t len = 0; len < bytes.size(); len++) {
    auto truncated = Corruptor::Truncate(bytes, len);
    auto result = f.Verify(truncated);
    ASSERT_EQ(result.verdict, VerifyVerdict::kMalformed)
        << "truncation at " << len << "/" << bytes.size();
  }

  auto setup_bytes = SetupMessage<F>::FromSetup(1, f.setup).Serialize();
  for (size_t len = 0; len < setup_bytes.size(); len++) {
    auto decoded =
        SetupMessage<F>::Deserialize(Corruptor::Truncate(setup_bytes, len));
    ASSERT_FALSE(decoded.ok()) << "setup truncation at " << len;
    ASSERT_NE(decoded.status().code(), StatusCode::kOk);
  }
}

// Satellite: 1k random single-byte mutations of the instance proof — decode
// error or verifier reject, never a crash or accept. (Under ASan/UBSan this
// also proves the absence of silent out-of-bounds reads.)
TEST(FaultInjectionTest, RandomByteMutationsOfInstanceProofNeverAccept) {
  FaultFixture f(404);
  auto mp = f.Prover();
  const auto& bytes = mp.HonestBytes();
  Prg prg(405);
  for (int trial = 0; trial < 1000; trial++) {
    auto corrupted = Corruptor::MutateByte(
        bytes, prg.NextBounded(bytes.size()),
        static_cast<uint8_t>(1 + prg.NextBounded(255)));
    auto result = f.Verify(corrupted);
    ASSERT_FALSE(result.accepted()) << "mutation trial " << trial;
  }
}

// Satellite: 1k random single-byte mutations of the setup message — the
// prover-side decoder returns a typed status on every input, and a decode
// that still succeeds re-serializes canonically (no smuggled non-canonical
// state survives a round-trip).
TEST(FaultInjectionTest, RandomByteMutationsOfSetupMessageNeverCrash) {
  FaultFixture f(406);
  auto setup_bytes = SetupMessage<F>::FromSetup(1, f.setup).Serialize();
  Prg prg(407);
  size_t decoded_ok = 0;
  for (int trial = 0; trial < 1000; trial++) {
    auto corrupted = Corruptor::MutateByte(
        setup_bytes, prg.NextBounded(setup_bytes.size()),
        static_cast<uint8_t>(1 + prg.NextBounded(255)));
    auto decoded = SetupMessage<F>::Deserialize(corrupted);
    if (decoded.ok()) {
      decoded_ok++;
      auto reencoded = decoded->Serialize();
      ASSERT_EQ(reencoded, corrupted) << "non-canonical decode, trial "
                                      << trial;
    }
  }
  // Most mutations land inside element payloads and keep the structure
  // decodable; the point is that none of the 1k crashed or mis-decoded.
  EXPECT_GT(decoded_ok, 0u);
}

// A mutated-but-decodable setup message must not lead the prover into
// producing an accepted proof: prove against each corrupted setup and check
// the real verifier rejects.
TEST(FaultInjectionTest, ProofsUnderMutatedSetupAreRejected) {
  FaultFixture f(408);
  auto setup_bytes = SetupMessage<F>::FromSetup(1, f.setup).Serialize();
  Prg prg(409);
  int proved = 0;
  for (int trial = 0; trial < 40 && proved < 10; trial++) {
    // Skip the 8-byte query seed: mutating it leaves Enc(r) and t intact,
    // so the resulting proof would be honest (and rightly accepted).
    size_t pos = 8 + prg.NextBounded(setup_bytes.size() - 8);
    auto corrupted = Corruptor::MutateByte(
        setup_bytes, pos, static_cast<uint8_t>(1 + prg.NextBounded(255)));
    auto decoded = SetupMessage<F>::Deserialize(corrupted);
    if (!decoded.ok()) {
      continue;
    }
    if (decoded->enc_r[0].size() != f.setup.shared[0].enc_r.size() ||
        decoded->enc_r[1].size() != f.setup.shared[1].enc_r.size() ||
        decoded->t[0].size() != f.setup.shared[0].t.size() ||
        decoded->t[1].size() != f.setup.shared[1].t.size()) {
      continue;  // prover would reject a setup of the wrong shape
    }
    proved++;
    typename Arg::InstanceProof ip;
    const std::vector<F>* vectors[2] = {&f.proof.z, &f.proof.h};
    for (size_t o = 0; o < 2; o++) {
      auto part = LinearCommitment<F>::Prove(
          *vectors[o], decoded->enc_r[o],
          Adapter::OracleQueries(f.setup.queries, o), decoded->t[o]);
      ASSERT_TRUE(part.ok()) << part.status().ToString();
      ip.parts[o] = std::move(part).value();
    }
    auto result =
        Arg::VerifyInstanceDetailed(f.setup, ip, f.rs.BoundValues());
    EXPECT_FALSE(result.accepted()) << "mutated-setup trial " << trial;
  }
  EXPECT_GT(proved, 0);
}

// Shape violations are caught before any cryptography: wrong response
// counts and wrong bound-value counts are kMalformed, not UB.
TEST(FaultInjectionTest, MalformedProofShapesAreScreened) {
  FaultFixture f(410);
  auto ip = Arg::Prove({&f.proof.z, &f.proof.h}, f.setup);

  {
    auto short_proof = ip;
    short_proof.parts[0].responses.pop_back();
    auto r = Arg::VerifyInstanceDetailed(f.setup, short_proof,
                                         f.rs.BoundValues());
    EXPECT_EQ(r.verdict, VerifyVerdict::kMalformed) << r.detail;
  }
  {
    auto long_proof = ip;
    long_proof.parts[1].responses.push_back(F::One());
    auto r = Arg::VerifyInstanceDetailed(f.setup, long_proof,
                                         f.rs.BoundValues());
    EXPECT_EQ(r.verdict, VerifyVerdict::kMalformed) << r.detail;
  }
  {
    auto bound = f.rs.BoundValues();
    bound.pop_back();
    auto r = Arg::VerifyInstanceDetailed(f.setup, ip, bound);
    EXPECT_EQ(r.verdict, VerifyVerdict::kMalformed) << r.detail;
  }
  {
    Arg::InstanceProof empty_proof{};
    auto r = Arg::VerifyInstanceDetailed(f.setup, empty_proof,
                                         f.rs.BoundValues());
    EXPECT_EQ(r.verdict, VerifyVerdict::kMalformed) << r.detail;
  }
}

// The PCP decision procedures screen response-vector shape themselves (the
// checks that used to be assert()-only): a short or long response vector is
// a clean reject in every build mode, and the underlying validators report
// typed kShapeMismatch. This is the layer below Argument's own screening —
// exercised directly so a future caller that skips Argument stays safe.
TEST(FaultInjectionTest, PcpDecideRejectsWrongResponseCounts) {
  FaultFixture f(415);
  VectorOracle<F> z(f.proof.z), h(f.proof.h);
  std::vector<F> z_resp = z.QueryAll(f.setup.queries.z_queries);
  std::vector<F> h_resp = h.QueryAll(f.setup.queries.h_queries);
  ASSERT_TRUE(ZaatarPcp<F>::Decide(f.setup.queries, z_resp, h_resp,
                                   f.rs.BoundValues()));

  auto short_z = z_resp;
  short_z.pop_back();
  EXPECT_FALSE(ZaatarPcp<F>::Decide(f.setup.queries, short_z, h_resp,
                                    f.rs.BoundValues()));
  auto long_h = h_resp;
  long_h.push_back(F::One());
  EXPECT_FALSE(ZaatarPcp<F>::Decide(f.setup.queries, z_resp, long_h,
                                    f.rs.BoundValues()));

  Status s = ZaatarPcp<F>::ValidateResponseShape(f.setup.queries, short_z,
                                                 h_resp);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kShapeMismatch);
  EXPECT_TRUE(
      ZaatarPcp<F>::ValidateResponseShape(f.setup.queries, z_resp, h_resp)
          .ok());
}

TEST(FaultInjectionTest, GingerPcpDecideRejectsWrongResponseCounts) {
  Prg prg(416);
  auto rs = MakeRandomSatisfiedSystem<F>(prg, 8, 2, 2, 14);
  auto inst = BuildGingerPcpInstance(rs.system);
  auto queries = GingerPcp<F>::GenerateQueries(inst, PcpParams::Light(), prg);
  auto proof = BuildGingerProof(inst, rs.assignment);
  VectorOracle<F> z(proof.z), tensor(proof.tensor);
  std::vector<F> resp1 = z.QueryAll(queries.pi1_queries);
  std::vector<F> resp2 = tensor.QueryAll(queries.pi2_queries);
  ASSERT_TRUE(
      GingerPcp<F>::Decide(queries, resp1, resp2, rs.BoundValues()));

  auto short1 = resp1;
  short1.pop_back();
  EXPECT_FALSE(GingerPcp<F>::Decide(queries, short1, resp2, rs.BoundValues()));

  Status s = GingerPcp<F>::ValidateResponseShape(queries, short1, resp2);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kShapeMismatch);
}

// The verdict taxonomy separates the three reject layers.
TEST(FaultInjectionTest, VerdictTaxonomyDistinguishesLayers) {
  FaultFixture f(411);
  auto ip = Arg::Prove({&f.proof.z, &f.proof.h}, f.setup);

  // Honest: accept.
  EXPECT_EQ(
      Arg::VerifyInstanceDetailed(f.setup, ip, f.rs.BoundValues()).verdict,
      VerifyVerdict::kAccept);

  // Tampered response (commitment now inconsistent): REJECT_COMMIT.
  auto tampered = ip;
  tampered.parts[0].responses[0] += F::One();
  EXPECT_EQ(
      Arg::VerifyInstanceDetailed(f.setup, tampered, f.rs.BoundValues())
          .verdict,
      VerifyVerdict::kRejectCommit);

  // Wrong output claim with a commitment-consistent proof: REJECT_PCP.
  auto bad_bound = f.rs.BoundValues();
  bad_bound.back() += F::One();
  EXPECT_EQ(Arg::VerifyInstanceDetailed(f.setup, ip, bad_bound).verdict,
            VerifyVerdict::kRejectPcp);
}

// One hostile instance in a batch is isolated: the other beta-1 verdicts
// are unaffected and the batch call returns normally.
TEST(FaultInjectionTest, BatchIsolatesBadInstances) {
  FaultFixture f(412);
  const size_t kBeta = 5;
  std::vector<typename Arg::InstanceProof> proofs;
  std::vector<std::vector<F>> bounds;
  for (size_t i = 0; i < kBeta; i++) {
    proofs.push_back(Arg::Prove({&f.proof.z, &f.proof.h}, f.setup));
    bounds.push_back(f.rs.BoundValues());
  }
  // Instance 1: malformed shape. Instance 3: inconsistent response.
  proofs[1].parts[0].responses.clear();
  proofs[3].parts[1].responses[0] += F::One();

  auto results_or = Arg::VerifyBatch(f.setup, proofs, bounds);
  ASSERT_TRUE(results_or.ok()) << results_or.status().ToString();
  auto& results = *results_or;
  ASSERT_EQ(results.size(), kBeta);
  EXPECT_EQ(results[0].verdict, VerifyVerdict::kAccept);
  EXPECT_EQ(results[1].verdict, VerifyVerdict::kMalformed);
  EXPECT_EQ(results[2].verdict, VerifyVerdict::kAccept);
  EXPECT_EQ(results[3].verdict, VerifyVerdict::kRejectCommit);
  EXPECT_EQ(results[4].verdict, VerifyVerdict::kAccept);

  // Same isolation at the bytes boundary, with a fully hostile slot.
  std::vector<std::vector<uint8_t>> wire(kBeta);
  for (size_t i = 0; i < kBeta; i++) {
    proofs[i] = Arg::Prove({&f.proof.z, &f.proof.h}, f.setup);
    wire[i] =
        InstanceProofMessage<F>::FromProof<Adapter>(proofs[i]).Serialize();
  }
  wire[2] = {0xFF, 0x00, 0xBA, 0xAD};
  auto wire_results = VerifyBatchBytes<F, Adapter>(f.setup, wire, bounds);
  ASSERT_EQ(wire_results.size(), kBeta);
  for (size_t i = 0; i < kBeta; i++) {
    if (i == 2) {
      EXPECT_EQ(wire_results[i].verdict, VerifyVerdict::kMalformed);
    } else {
      EXPECT_EQ(wire_results[i].verdict, VerifyVerdict::kAccept)
          << "instance " << i << ": " << wire_results[i].detail;
    }
  }
}

// A proofs/bound-values count mismatch is a batch-assembly bug on the
// caller's side, not a per-instance outcome: VerifyBatch rejects it up front
// with a typed error naming the first unmatched instance, and the bytes-level
// batch keeps its per-instance isolation semantics with the index named in
// the malformed slot's detail.
TEST(FaultInjectionTest, BatchShapeMismatchIsTypedError) {
  FaultFixture f(414);
  std::vector<typename Arg::InstanceProof> proofs;
  std::vector<std::vector<F>> bounds;
  for (size_t i = 0; i < 3; i++) {
    proofs.push_back(Arg::Prove({&f.proof.z, &f.proof.h}, f.setup));
    if (i < 2) {
      bounds.push_back(f.rs.BoundValues());
    }
  }

  auto results = Arg::VerifyBatch(f.setup, proofs, bounds);
  ASSERT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), StatusCode::kMalformed);
  EXPECT_NE(results.status().message().find("first unmatched instance: 2"),
            std::string::npos)
      << results.status().message();

  std::vector<std::vector<uint8_t>> wire;
  for (const auto& proof : proofs) {
    wire.push_back(
        InstanceProofMessage<F>::FromProof<Adapter>(proof).Serialize());
  }
  auto wire_results = VerifyBatchBytes<F, Adapter>(f.setup, wire, bounds);
  ASSERT_EQ(wire_results.size(), 3u);
  EXPECT_TRUE(wire_results[0].accepted());
  EXPECT_TRUE(wire_results[1].accepted());
  EXPECT_EQ(wire_results[2].verdict, VerifyVerdict::kMalformed);
  EXPECT_NE(wire_results[2].detail.find("instance 2"), std::string::npos)
      << wire_results[2].detail;
}

// The Ginger baseline pipeline is hardened by the same layer.
TEST(FaultInjectionTest, GingerArgumentScreensMalformedProofs) {
  Prg prg(413);
  auto rs = MakeRandomSatisfiedSystem<F>(prg, 8, 2, 2, 14);
  auto inst = BuildGingerPcpInstance(rs.system);
  auto setup = GingerArgument<F>::Setup(
      GingerPcp<F>::GenerateQueries(inst, PcpParams::Light(), prg), prg);
  auto proof = BuildGingerProof(inst, rs.assignment);
  auto ip = GingerArgument<F>::Prove({&proof.z, &proof.tensor}, setup);

  EXPECT_EQ(GingerArgument<F>::VerifyInstanceDetailed(setup, ip,
                                                      rs.BoundValues())
                .verdict,
            VerifyVerdict::kAccept);

  auto short_proof = ip;
  short_proof.parts[0].responses.pop_back();
  EXPECT_EQ(GingerArgument<F>::VerifyInstanceDetailed(setup, short_proof,
                                                      rs.BoundValues())
                .verdict,
            VerifyVerdict::kMalformed);

  auto bad_bound = rs.BoundValues();
  bad_bound.pop_back();
  EXPECT_EQ(
      GingerArgument<F>::VerifyInstanceDetailed(setup, ip, bad_bound).verdict,
      VerifyVerdict::kMalformed);
}

// A dropped constraint is invisible to the protocol (honest witnesses still
// satisfy every remaining equation), but the static analyzer must flag the
// widened witness space. Swept over every single-constraint drop of a
// program whose constraints are all load-bearing for determinism.
TEST(FaultInjectionTest, DroppedConstraintIsFlaggedByAnalyzer) {
  auto program = CompileZlang<F>(R"(
program droptest;
input int32 a;
input int32 b;
output int<70> y;
y = a * b + a * a;
)");
  ASSERT_TRUE(AnalyzeProgram(program).Empty());

  for (size_t j = 0; j < program.ginger.NumConstraints(); j++) {
    SCOPED_TRACE("ginger drop " + std::to_string(j));
    GingerSystem<F> corrupted = DropConstraint(program.ginger, j);
    AnalysisReport report = AnalyzeSystem(corrupted);
    EXPECT_TRUE(report.HasRule(kRuleUnderconstrained));
    EXPECT_TRUE(report.HasErrors());
  }

  const R1cs<F>& r1cs = program.zaatar.r1cs;
  for (size_t j = 0; j < r1cs.NumConstraints(); j++) {
    SCOPED_TRACE("r1cs drop " + std::to_string(j));
    R1cs<F> corrupted = DropConstraint(r1cs, j);
    AnalysisReport report = AnalyzeR1cs(corrupted);
    // The drop also breaks the transform bookkeeping against the source
    // Ginger system.
    ZaatarTransform<F> broken = program.zaatar;
    broken.r1cs = corrupted;
    CheckTransform(program.ginger, broken, &report);
    EXPECT_TRUE(report.HasRule(kRuleUnderconstrained));
    EXPECT_TRUE(report.HasRule(kRuleTransformMismatch));
    EXPECT_TRUE(report.HasErrors());
  }
}

}  // namespace
}  // namespace zaatar
