// Tests for the language extensions beyond the paper's core feature set
// (§5.4 calls these out as missing engineering): user functions, assert,
// bitwise operators, shifts, runtime integer division, and integer sqrt.

#include <gtest/gtest.h>

#include "src/compiler/compile.h"
#include "src/field/fields.h"

namespace zaatar {
namespace {

using F = F128;

std::vector<int64_t> RunProgram(const std::string& source,
                                const std::vector<int64_t>& inputs) {
  auto program = CompileZlang<F>(source);
  std::vector<F> in;
  for (int64_t v : inputs) {
    in.push_back(EncodeSignedInt<F>(v));
  }
  auto gw = program.SolveGinger(in);
  EXPECT_TRUE(program.ginger.IsSatisfied(gw))
      << "ginger constraint " << program.ginger.FirstViolated(gw);
  auto zw = program.SolveZaatar(gw);
  EXPECT_TRUE(program.zaatar.r1cs.IsSatisfied(zw))
      << "r1cs constraint " << program.zaatar.r1cs.FirstViolated(zw);
  std::vector<int64_t> out;
  for (const F& v : program.ExtractOutputs(gw)) {
    out.push_back(DecodeSignedInt<F>(v));
  }
  return out;
}

TEST(FunctionTest, SimpleFunctionInlines) {
  EXPECT_EQ(RunProgram("func int32 sq(int32 x) { return x * x; }"
                       "input int32 a; output int<70> y; y = sq(a) + sq(3);",
                       {7}),
            (std::vector<int64_t>{49 + 9}));
}

TEST(FunctionTest, FunctionWithLocalsAndMultipleParams) {
  EXPECT_EQ(RunProgram(
                "func int32 dot2(int32 a, int32 b, int32 c, int32 d) {"
                "  var int<70> s; s = a * c + b * d; return s;"
                "}"
                "input int32 x; output int<70> y; y = dot2(x, 2, 3, 4);",
                {5}),
            (std::vector<int64_t>{5 * 3 + 8}));
}

TEST(FunctionTest, NestedCalls) {
  EXPECT_EQ(RunProgram(
                "func int32 inc(int32 x) { return x + 1; }"
                "func int32 twice(int32 x) { return inc(inc(x)); }"
                "input int32 a; output int32 y; y = twice(twice(a));",
                {10}),
            (std::vector<int64_t>{14}));
}

TEST(FunctionTest, WritesInsideFunctionsStayLocal) {
  // The function shadows and mutates `t`; the caller's t is untouched.
  EXPECT_EQ(RunProgram("var int32 t;"
                       "func int32 stomp(int32 x) { var int32 t; t = 999; "
                       "return x + t; }"
                       "input int32 a; output int32 y; output int32 tt;"
                       "t = 5; y = stomp(a); tt = t;",
                       {1}),
            (std::vector<int64_t>{1000, 5}));
}

TEST(FunctionTest, FunctionsInsideLoops) {
  EXPECT_EQ(RunProgram("func int32 sq(int32 x) { return x * x; }"
                       "output int<70> y; var int<70> s; s = 0;"
                       "for i in 1..4 { s = s + sq(i); } y = s;",
                       {}),
            (std::vector<int64_t>{1 + 4 + 9 + 16}));
}

TEST(FunctionTest, RationalParameters) {
  EXPECT_EQ(RunProgram(
                "func rational<40,20> mid(rational<16,8> a, rational<16,8> "
                "b) { return (a + b) / 2; }"
                "input rational<16,8> p; input rational<16,8> q;"
                "output rational<40,8> m; m = mid(p, q);",
                {1, 2, 3, 2}),  // (1/2 + 3/2)/2 = 1
            (std::vector<int64_t>{256, 256}));
}

TEST(FunctionTest, Errors) {
  EXPECT_THROW(CompileZlang<F>("func int32 f(int32 x) { x = 1; }"
                               "output int32 y; y = f(1);"),
               CompileError);  // no return
  EXPECT_THROW(CompileZlang<F>("func int32 f(int32 x) { return f(x); }"
                               "output int32 y; y = f(1);"),
               CompileError);  // recursion -> depth limit
  EXPECT_THROW(CompileZlang<F>("func int32 f(int32 x) { return x; }"
                               "output int32 y; y = f(1, 2);"),
               CompileError);  // arity
  EXPECT_THROW(CompileZlang<F>("output int32 y; y = 1; return y;"),
               CompileError);  // return outside function
}

TEST(AssertTest, SatisfiedAssertAddsConstraint) {
  auto p = CompileZlang<F>(
      "input int32 a; output int32 y; assert a != 0; y = a;");
  auto gw = p.SolveGinger({EncodeSignedInt<F>(5)});
  EXPECT_TRUE(p.ginger.IsSatisfied(gw));
}

TEST(AssertTest, ViolatedAssertMakesSystemUnsatisfiable) {
  auto p = CompileZlang<F>(
      "input int32 a; output int32 y; assert a != 0; y = a;");
  auto gw = p.SolveGinger({EncodeSignedInt<F>(0)});
  EXPECT_FALSE(p.ginger.IsSatisfied(gw));
}

TEST(AssertTest, StaticallyFalseAssertIsCompileError) {
  EXPECT_THROW(CompileZlang<F>("output int32 y; assert 1 > 2; y = 0;"),
               CompileError);
  EXPECT_NO_THROW(CompileZlang<F>("output int32 y; assert 2 > 1; y = 0;"));
}

struct BitCase {
  int64_t a, b;
};
class BitwiseTest : public ::testing::TestWithParam<BitCase> {};

TEST_P(BitwiseTest, MatchesNativeSemantics) {
  auto [a, b] = GetParam();
  auto out = RunProgram(
      "input int32 a; input int32 b;"
      "output int32 andv; output int32 orv; output int32 xorv;"
      "andv = a & b; orv = a | b; xorv = a ^ b;",
      {a, b});
  EXPECT_EQ(out, (std::vector<int64_t>{a & b, a | b, a ^ b}))
      << "a=" << a << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, BitwiseTest,
    ::testing::Values(BitCase{0, 0}, BitCase{1, 1}, BitCase{0b1100, 0b1010},
                      BitCase{255, 256}, BitCase{0x7fffffff, 0x55555555},
                      BitCase{12345, 67890}));

TEST(ShiftTest, LeftShiftMultiplies) {
  EXPECT_EQ(RunProgram("input int32 a; output int<64> y; y = a << 5;", {3}),
            (std::vector<int64_t>{96}));
  EXPECT_EQ(RunProgram("input int32 a; output int<64> y; y = a << 5;", {-3}),
            (std::vector<int64_t>{-96}));
}

TEST(ShiftTest, RightShiftIsArithmeticFloor) {
  EXPECT_EQ(RunProgram("input int32 a; output int32 y; y = a >> 2;", {13}),
            (std::vector<int64_t>{3}));
  EXPECT_EQ(RunProgram("input int32 a; output int32 y; y = a >> 2;", {-13}),
            (std::vector<int64_t>{-4}));  // floor(-13/4)
  EXPECT_EQ(RunProgram("input int32 a; output int32 y; y = a >> 2;", {-16}),
            (std::vector<int64_t>{-4}));
}

TEST(ShiftTest, ShiftPrecedenceBelowAdditive) {
  // 1 + 2 << 3 parses as (1+2) << 3 = 24 (zlang shift binds looser than +).
  EXPECT_EQ(RunProgram("output int32 y; y = 1 + 2 << 3;", {}),
            (std::vector<int64_t>{24}));
}

TEST(DivModTest, RuntimeDivisionMatchesFloorSemantics) {
  const char* src =
      "input int32 a; input int32 b; output int32 q; output int32 r;"
      "q = idiv(a, b); r = imod(a, b);";
  struct Case {
    int64_t a, b, q, r;
  };
  for (const auto& c : std::vector<Case>{{17, 5, 3, 2},
                                         {-17, 5, -4, 3},
                                         {15, 5, 3, 0},
                                         {-15, 5, -3, 0},
                                         {0, 7, 0, 0},
                                         {6, 7, 0, 6}}) {
    EXPECT_EQ(RunProgram(src, {c.a, c.b}),
              (std::vector<int64_t>{c.q, c.r}))
        << c.a << "/" << c.b;
  }
}

TEST(DivModTest, DivisionInsideExpressions) {
  // Average of array elements via runtime division.
  EXPECT_EQ(RunProgram("input int32 a[4]; input int32 n; output int32 avg;"
                       "var int<40> s; s = 0;"
                       "for i in 0..3 { s = s + a[i]; }"
                       "avg = idiv(s, n);",
                       {10, 20, 30, 41, 4}),
            (std::vector<int64_t>{25}));
}

TEST(SqrtTest, RuntimeIntegerSqrt) {
  const char* src = "input int32 a; output int32 s; s = isqrt(a);";
  for (int64_t v : {0, 1, 2, 3, 4, 15, 16, 17, 123456, 2147395600}) {
    int64_t expect = static_cast<int64_t>(std::sqrt(static_cast<double>(v)));
    while (expect * expect > v) {
      expect--;
    }
    while ((expect + 1) * (expect + 1) <= v) {
      expect++;
    }
    EXPECT_EQ(RunProgram(src, {v}), (std::vector<int64_t>{expect})) << v;
  }
}

TEST(SqrtTest, SqrtWitnessIsConstrainedNotTrusted) {
  // Tamper with the sqrt witness variable: the range constraints must fail.
  auto p = CompileZlang<F>(
      "input int32 a; output int32 s; s = isqrt(a);");
  auto gw = p.SolveGinger({EncodeSignedInt<F>(100)});
  ASSERT_TRUE(p.ginger.IsSatisfied(gw));
  // Find the output value 10 and nudge the witness variables around it: a
  // wrong sqrt claim (e.g. 9 or 11) must violate some constraint. We emulate
  // a cheating prover by re-running the solver and patching the output +
  // every copy of the sqrt value.
  for (int64_t wrong : {9, 11}) {
    auto bad = gw;
    for (auto& v : bad) {
      if (DecodeSignedInt<F>(v) == 10) {
        v = EncodeSignedInt<F>(wrong);
      }
    }
    EXPECT_FALSE(p.ginger.IsSatisfied(bad)) << wrong;
  }
}

TEST(VarStmtTest, DeclarationsInsideBlocks) {
  EXPECT_EQ(RunProgram("input int32 a; output int32 y;"
                       "if (a > 0) { } else { }"
                       "for i in 0..2 { var int32 t; t = a + i; y = t; }",
                       {10}),
            (std::vector<int64_t>{12}));
}

TEST(ExtensionsIntegrationTest, PopcountViaShiftsAndMasks) {
  // A little program exercising several extensions at once.
  EXPECT_EQ(RunProgram(
                "func int32 bit(int32 x, int32 k) {"
                "  return (x >> k) & 1;"
                "}"
                "input int32 a; output int32 pop;"
                "var int32 s; s = 0;"
                "for k in 0..7 { s = s + bit(a, k); }"
                "pop = s;",
                {0b10110101}),
            (std::vector<int64_t>{5}));
}

}  // namespace
}  // namespace zaatar
