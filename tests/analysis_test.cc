// Tests for the constraint-system static analyzer (src/analysis):
// seeded-defect fixtures must produce exactly the expected rule IDs, and
// clean compiler output must analyze clean at every pipeline layer.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/apps/degenerate.h"
#include "src/apps/suite.h"
#include "src/compiler/compile.h"
#include "src/constraints/transform.h"
#include "src/crypto/prg.h"
#include "src/field/fields.h"

namespace zaatar {
namespace {

using F = F128;
using LC = LinearCombination<F>;

LC Var(uint32_t v) { return LC::Variable(v); }

// ----- seeded-defect fixtures -----

// x·x = w0 pins w0; w1² = x admits two roots, so w1 is underconstrained.
TEST(AnalysisTest, UnderconstrainedR1csProducesZl001) {
  R1cs<F> r;
  r.layout = {2, 1, 0};  // w0, w1, then input x = var 2
  {
    R1csConstraint<F> c;
    c.a = Var(2);
    c.b = Var(2);
    c.c = Var(0);
    r.constraints.push_back(c);
  }
  {
    R1csConstraint<F> c;
    c.a = Var(1);
    c.b = Var(1);
    c.c = Var(2);
    r.constraints.push_back(c);
  }
  AnalysisReport report = AnalyzeR1cs(r);
  EXPECT_EQ(report.CountRule(kRuleUnderconstrained), 1u);
  EXPECT_EQ(report.NumErrors(), 1u);
  EXPECT_EQ(report.NumWarnings(), 0u);
  ASSERT_EQ(report.findings().size(), 1u);
  EXPECT_EQ(report.findings()[0].location.variable, 1);
}

// A row that is a per-side scalar multiple of an earlier row is flagged.
TEST(AnalysisTest, DuplicateConstraintProducesZl004) {
  R1cs<F> r;
  r.layout = {1, 1, 0};  // w0, then input x = var 1
  {
    R1csConstraint<F> c;
    c.a = Var(1);
    c.b = Var(1);
    c.c = Var(0);
    r.constraints.push_back(c);
  }
  {
    R1csConstraint<F> c;  // (2x)·(3x) = 6·w0 — same constraint, rescaled
    c.a = Var(1) * F::FromUint(2);
    c.b = Var(1) * F::FromUint(3);
    c.c = Var(0) * F::FromUint(6);
    r.constraints.push_back(c);
  }
  AnalysisReport report = AnalyzeR1cs(r);
  EXPECT_EQ(report.CountRule(kRuleDuplicateConstraint), 1u);
  EXPECT_EQ(report.NumErrors(), 0u);
  EXPECT_EQ(report.NumWarnings(), 1u);
  EXPECT_EQ(report.findings()[0].location.constraint, 1);
}

// A variable allocated in Z but absent from every constraint is dead.
TEST(AnalysisTest, DeadVariableProducesZl002) {
  R1cs<F> r;
  r.layout = {2, 1, 0};  // w1 never referenced
  {
    R1csConstraint<F> c;
    c.a = Var(2);
    c.b = Var(2);
    c.c = Var(0);
    r.constraints.push_back(c);
  }
  AnalysisReport report = AnalyzeR1cs(r);
  EXPECT_EQ(report.CountRule(kRuleDeadVariable), 1u);
  EXPECT_EQ(report.NumErrors(), 0u);
  EXPECT_EQ(report.NumWarnings(), 1u);
  EXPECT_EQ(report.findings()[0].location.variable, 1);
}

TEST(AnalysisTest, TrivialUnsatisfiableAndOutOfBoundsRows) {
  GingerSystem<F> g;
  g.layout = {1, 1, 0};
  g.constraints.emplace_back();  // 0 = 0
  {
    GingerConstraint<F> c;  // 5 = 0
    c.linear.AddConstant(F::FromUint(5));
    g.constraints.push_back(c);
  }
  {
    GingerConstraint<F> c;  // references variable 9 in a 2-variable layout
    c.linear.AddTerm(9, F::One());
    g.constraints.push_back(c);
  }
  {
    GingerConstraint<F> c;  // x - w0 = 0, keeps w0 determined
    c.linear.AddTerm(0, F::One());
    c.linear.AddTerm(1, -F::One());
    g.constraints.push_back(c);
  }
  AnalysisReport report = AnalyzeSystem(g);
  EXPECT_EQ(report.CountRule(kRuleTrivialConstraint), 1u);
  EXPECT_EQ(report.CountRule(kRuleUnsatisfiableConstraint), 1u);
  EXPECT_EQ(report.CountRule(kRuleIndexOutOfBounds), 1u);
}

// Removing a product row from the transform output breaks the |C| = |C_g| +
// K2 bookkeeping.
TEST(AnalysisTest, TransformMismatchProducesZl012) {
  GingerSystem<F> g;
  g.layout = {1, 2, 0};  // w0, inputs x1 x2
  {
    GingerConstraint<F> c;  // x1·x2 + x1·x1 - w0 = 0 (two quads: no folding)
    c.quad.push_back({1, 2, F::One()});
    c.quad.push_back({1, 1, F::One()});
    c.linear.AddTerm(0, -F::One());
    g.constraints.push_back(c);
  }
  ZaatarTransform<F> t = GingerToZaatar(g);
  AnalysisReport clean;
  CheckTransform(g, t, &clean);
  EXPECT_TRUE(clean.Empty());

  ZaatarTransform<F> broken = t;
  broken.r1cs.constraints.pop_back();
  AnalysisReport report;
  CheckTransform(g, broken, &report);
  EXPECT_TRUE(report.HasRule(kRuleTransformMismatch));
  EXPECT_TRUE(report.HasErrors());
}

// ----- determinism rules on hand-built systems -----

// Bit decomposition: booleanity per bit plus a doubling-chain sum uniquely
// determines the bits; a repeated weight does not (1+1: subset sums collide).
TEST(AnalysisTest, DecompositionChainDeterminesBits) {
  auto build = [](const std::vector<uint64_t>& weights) {
    GingerSystem<F> g;
    g.layout = {weights.size(), 1, 0};
    for (uint32_t i = 0; i < weights.size(); i++) {
      GingerConstraint<F> bc;  // b·b - b = 0
      bc.quad.push_back({i, i, F::One()});
      bc.linear.AddTerm(i, -F::One());
      g.constraints.push_back(bc);
    }
    GingerConstraint<F> sum;  // sum w_i b_i - x = 0
    for (uint32_t i = 0; i < weights.size(); i++) {
      sum.linear.AddTerm(i, F::FromUint(weights[i]));
    }
    sum.linear.AddTerm(static_cast<uint32_t>(weights.size()), -F::One());
    g.constraints.push_back(sum);
    return g;
  };
  EXPECT_FALSE(AnalyzeSystem(build({1, 2, 4, 8})).HasErrors());
  AnalysisReport bad = AnalyzeSystem(build({1, 2, 2, 8}));
  EXPECT_TRUE(bad.HasRule(kRuleUnderconstrained));
}

// The is-zero gadget: with both equations present, b is determined and the
// inverse witness m is exempt; without v·b = 0, b is underconstrained.
TEST(AnalysisTest, IsZeroGadgetRequiresBothEquations) {
  auto build = [](bool with_product) {
    GingerSystem<F> g;
    g.layout = {2, 1, 0};  // m = w0, b = w1, v = input var 2
    GingerConstraint<F> c1;  // v·m + b - 1 = 0
    c1.quad.push_back({2, 0, F::One()});
    c1.linear.AddTerm(1, F::One());
    c1.linear.AddConstant(-F::One());
    g.constraints.push_back(c1);
    if (with_product) {
      GingerConstraint<F> c2;  // v·b = 0
      c2.quad.push_back({2, 1, F::One()});
      g.constraints.push_back(c2);
    }
    return g;
  };
  EXPECT_FALSE(AnalyzeSystem(build(true)).HasErrors());
  AnalysisReport bad = AnalyzeSystem(build(false));
  EXPECT_TRUE(bad.HasRule(kRuleUnderconstrained));
}

// ----- compiled programs analyze clean at every layer -----

void ExpectClean(const std::string& name, const std::string& source) {
  SCOPED_TRACE(name);
  auto program = CompileZlang<F>(source);
  AnalysisReport report = AnalyzeProgram(program);
  for (const auto& f : report.findings()) {
    ADD_FAILURE() << f.Render();
  }
}

TEST(AnalysisTest, ExampleProgramsAnalyzeClean) {
  ExpectClean("quickstart", R"(
program quickstart;
const N = 4;
input int32 x[N];
output int<70> best;
var int<70> v;
var int<70> b;
b = x[0] * x[0] + 3 * x[0];
for i in 1..N-1 {
  v = x[i] * x[i] + 3 * x[i];
  if (v > b) { b = v; }
}
best = b;
)");
  ExpectClean("division", R"(
program division;
input int32 a;
input int32 b;
output int32 q;
output int32 r;
output int32 halves;
q = idiv(a, b);
r = imod(a, b);
halves = idiv(a, 2);
)");
  ExpectClean("bitops", R"(
program bitops;
input int32 a;
input int32 b;
output int32 mixed;
output int<40> scaled;
var int32 t;
t = a & b;
mixed = t ^ (a | b);
scaled = (a >> 3) + (b << 2);
)");
  ExpectClean("equality", R"(
program equality;
input int32 a;
input int32 b;
output bool same;
output int32 pick;
same = a == b;
pick = a == 7 ? b : a;
)");
}

TEST(AnalysisTest, SuiteProgramsAnalyzeClean) {
  {
    auto app = MakeLcsApp(4);
    SCOPED_TRACE(app.name);
    EXPECT_TRUE(AnalyzeProgram(CompileZlang<F128>(app.source)).Empty());
  }
  {
    auto app = MakeMatMulApp(2);
    SCOPED_TRACE(app.name);
    EXPECT_TRUE(AnalyzeProgram(CompileZlang<F128>(app.source)).Empty());
  }
  {
    auto app = MakeApspApp(2);
    SCOPED_TRACE(app.name);
    EXPECT_TRUE(AnalyzeProgram(CompileZlang<F128>(app.source)).Empty());
  }
  {
    auto app = MakeRootFindApp(2, 3);
    SCOPED_TRACE(app.name);
    EXPECT_TRUE(AnalyzeProgram(CompileZlang<F220>(app.source)).Empty());
  }
}

TEST(AnalysisTest, DegenerateQuadFormAnalyzesClean) {
  Prg prg(0x1234);
  auto d = BuildDegenerateQuadForm<F>(5, prg);
  AnalysisReport report = AnalyzeSystem(d.ginger);
  ZaatarTransform<F> t = GingerToZaatar(d.ginger);
  CheckTransform(d.ginger, t, &report);
  report.Merge(AnalyzeR1cs(t.r1cs));
  Qap<F> qap(t.r1cs);
  CheckQapShape(qap, &report);
  for (const auto& f : report.findings()) {
    ADD_FAILURE() << f.Render();
  }
}

// Findings carry the zlang source line the constraint was lowered from.
TEST(AnalysisTest, FindingsCarrySourceLines) {
  auto program = CompileZlang<F>(R"(
program located;
input int32 a;
output int32 y;
y = a * a;
)");
  ASSERT_EQ(program.ginger.source_lines.size(),
            program.ginger.NumConstraints());
  // The product constraint comes from line 5 (y = a * a).
  bool saw_line5 = false;
  for (uint32_t line : program.ginger.source_lines) {
    if (line == 5) {
      saw_line5 = true;
    }
  }
  EXPECT_TRUE(saw_line5);
  // Transform output keeps the attribution.
  ASSERT_EQ(program.zaatar.r1cs.source_lines.size(),
            program.zaatar.r1cs.NumConstraints());
}

TEST(AnalysisTest, ReportRenderingIncludesRuleAndLocation) {
  Finding f;
  f.severity = Severity::kError;
  f.rule_id = kRuleUnderconstrained;
  f.location.layer = AnalysisLayer::kR1cs;
  f.location.constraint = 3;
  f.location.variable = 7;
  f.location.source_line = 42;
  f.message = "test";
  std::string rendered = f.Render();
  EXPECT_NE(rendered.find("ZL001"), std::string::npos);
  EXPECT_NE(rendered.find("r1cs:c3:w7"), std::string::npos);
  EXPECT_NE(rendered.find("line 42"), std::string::npos);
}

}  // namespace
}  // namespace zaatar
