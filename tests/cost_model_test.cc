#include "src/argument/cost_model.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

#include "src/argument/parallel.h"

namespace zaatar {
namespace {

MicroCosts TestMicro() {
  // The paper's 128-bit microbenchmark row (§5.1), in seconds.
  MicroCosts m;
  m.e = 65e-6;
  m.d = 170e-6;
  m.h = 91e-6;
  m.f_lazy = 68e-9;
  m.f = 210e-9;
  m.f_div = 2e-6;
  m.c = 160e-9;
  return m;
}

ComputationStats LcsLikeStats(size_t m) {
  // Figure 9's LCS row: |Z| = |C| = 43 m^2, K ~ 5.6 |C|, K2 ~ 0.7 |C|.
  ComputationStats s;
  s.z_ginger = 43 * m * m;
  s.c_ginger = 43 * m * m;
  s.k = 240 * m * m;
  s.k2 = 30 * m * m;
  s.z_zaatar = s.z_ginger + s.k2;
  s.c_zaatar = s.c_ginger + s.k2;
  s.num_inputs = 2 * m;
  s.num_outputs = 1;
  s.t_local_s = 1e-8 * m * m;
  return s;
}

TEST(CostModelTest, ZaatarProverIsOrdersOfMagnitudeBelowGinger) {
  CostModel model(TestMicro(), PcpParams{});
  ComputationStats s = LcsLikeStats(100);  // the paper's m=300 scale / 3
  double zaatar = model.ZaatarProverPerInstance(s);
  double ginger = model.GingerProverPerInstance(s);
  EXPECT_GT(ginger / zaatar, 1e3);  // "3-6 orders of magnitude"
  EXPECT_LT(ginger / zaatar, 1e8);
}

TEST(CostModelTest, GingerScalesQuadraticallyZaatarLinearly) {
  CostModel model(TestMicro(), PcpParams{});
  auto s1 = LcsLikeStats(50);
  auto s2 = LcsLikeStats(100);  // 4x the constraints
  double zr = model.ZaatarProverPerInstance(s2) /
              model.ZaatarProverPerInstance(s1);
  double gr = model.GingerProverPerInstance(s2) /
              model.GingerProverPerInstance(s1);
  EXPECT_GT(zr, 3.5);
  EXPECT_LT(zr, 6.0);  // ~linear with a log factor
  EXPECT_GT(gr, 12.0);
  EXPECT_LT(gr, 18.0);  // ~quadratic (16x)
}

TEST(CostModelTest, BreakevenBatchMath) {
  EXPECT_DOUBLE_EQ(CostModel::BreakevenBatch(100.0, 1.0, 2.0), 100.0);
  EXPECT_DOUBLE_EQ(CostModel::BreakevenBatch(100.0, 0.0, 0.5), 200.0);
  // Outsourcing never pays if verifying an instance costs more than
  // computing it.
  EXPECT_LT(CostModel::BreakevenBatch(100.0, 3.0, 2.0), 0.0);
}

TEST(CostModelTest, ZaatarBreakevenFarBelowGinger) {
  CostModel model(TestMicro(), PcpParams{});
  ComputationStats s = LcsLikeStats(60);
  s.t_local_s = 1e-2;
  double zb = model.ZaatarBreakeven(s);
  double gb = model.GingerBreakeven(s);
  ASSERT_GT(zb, 0.0);
  ASSERT_GT(gb, 0.0);
  EXPECT_GT(gb / zb, 100.0);  // "several orders of magnitude" (Figure 7)
}

TEST(CostModelTest, VerifierPerInstanceScalesWithIo) {
  CostModel model(TestMicro(), PcpParams{});
  auto s = LcsLikeStats(20);
  double base = model.ZaatarVerifierPerInstance(s);
  s.num_inputs *= 100;
  EXPECT_GT(model.ZaatarVerifierPerInstance(s), base);
}

TEST(CostModelTest, QuerySetupDominatedByObliviousPart) {
  // The oblivious queries touch every proof element with encryption-scale
  // work; the computation-specific part is field-ops only.
  CostModel model(TestMicro(), PcpParams{});
  auto s = LcsLikeStats(40);
  EXPECT_GT(model.ZaatarQuerySetupOblivious(s),
            model.ZaatarQuerySetupSpecific(s));
}

TEST(NetworkCostsTest, ByteAccounting) {
  // proof_len=1000, 16-byte field, 128-byte group.
  size_t setup = NetworkCosts::SetupBytes(1000, 16);
  EXPECT_EQ(setup, 1000u * (2 * 128 + 16) + 32);
  size_t inst = NetworkCosts::InstanceBytes(500, 16);
  EXPECT_EQ(inst, 4u * 128 + 502 * 16);
}

TEST(ParallelModelTest, NearLinearSpeedupAcrossWorkers) {
  ProverCosts per;
  per.solve_constraints_s = 0.1;
  per.construct_proof_s = 1.0;
  per.crypto_s = 1.0;
  per.answer_queries_s = 0.4;
  size_t beta = 60;
  WorkerConfig c4{.cpu_cores = 4};
  WorkerConfig c60{.cpu_cores = 60};
  EXPECT_NEAR(DistributedProverModel::Speedup(per, beta, c4), 4.0, 1e-9);
  EXPECT_NEAR(DistributedProverModel::Speedup(per, beta, c60), 60.0, 1e-9);
  // Imperfect division of the batch loses a wave.
  WorkerConfig c32{.cpu_cores = 32};
  EXPECT_NEAR(DistributedProverModel::Speedup(per, beta, c32), 30.0, 1e-9);
}

TEST(ParallelModelTest, GpuCutsPerInstanceLatencyAbout20Percent) {
  // Figure 5's phase mix: crypto ~35% of prover time.
  ProverCosts per;
  per.solve_constraints_s = 0.05;
  per.construct_proof_s = 0.40;
  per.crypto_s = 0.35;
  per.answer_queries_s = 0.20;
  WorkerConfig plain{.cpu_cores = 1, .gpus = 0};
  WorkerConfig gpu{.cpu_cores = 1, .gpus = 1};
  double gain = 1.0 - DistributedProverModel::InstanceLatency(per, gpu) /
                          DistributedProverModel::InstanceLatency(per, plain);
  EXPECT_GT(gain, 0.15);
  EXPECT_LT(gain, 0.25);
}

TEST(ParallelForTest, CoversAllIndices) {
  std::vector<int> hits(1000, 0);
  ParallelFor(hits.size(), 4, [&](size_t i) { hits[i]++; });
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
  // Degenerate worker counts.
  std::vector<int> single(10, 0);
  ParallelFor(single.size(), 1, [&](size_t i) { single[i]++; });
  for (int h : single) {
    EXPECT_EQ(h, 1);
  }
}

// Regression: a throw inside a worker used to escape the thread and call
// std::terminate. It must instead be rethrown on the joining thread, after
// all workers have been joined.
TEST(ParallelForTest, WorkerExceptionIsRethrownOnJoin) {
  std::atomic<int> ran{0};
  auto body = [&](size_t i) {
    ran.fetch_add(1);
    if (i == 3) {
      throw std::runtime_error("injected worker fault");
    }
  };
  EXPECT_THROW(ParallelFor(64, 4, body), std::runtime_error);
  EXPECT_GE(ran.load(), 1);

  // The serial path propagates identically.
  EXPECT_THROW(ParallelFor(64, 1, body), std::runtime_error);

  // The first exception wins when several workers throw concurrently.
  try {
    ParallelFor(32, 8, [](size_t i) {
      throw std::invalid_argument("fault " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()).rfind("fault ", 0), 0u);
  }

  // A pool that saw an exception still leaves the process healthy enough to
  // run another clean pass.
  std::vector<int> hits(100, 0);
  ParallelFor(hits.size(), 4, [&](size_t i) { hits[i]++; });
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

}  // namespace
}  // namespace zaatar
