// Statistical soundness checks: single-repetition rejection rates and the
// amplification math of Appendix A.2, measured over many independent query
// sets. These tests complement the deterministic rejection tests — they
// validate that rejection probability behaves like the analysis says, not
// just that one seed happens to reject.

#include <gtest/gtest.h>

#include "src/constraints/transform.h"
#include "src/pcp/zaatar_pcp.h"
#include "src/field/fields.h"
#include "tests/test_util.h"

namespace zaatar {
namespace {

using F = F128;

struct Fixture {
  RandomSystem<F> rs;
  ZaatarTransform<F> transform;

  static Fixture Make(Prg& prg) {
    Fixture f;
    f.rs = MakeRandomSatisfiedSystem<F>(prg, 8, 2, 2, 14);
    f.transform = GingerToZaatar(f.rs.system);
    return f;
  }
};

TEST(SoundnessStatsTest, HonestProverAcceptsAcrossManyQuerySets) {
  // Completeness is *perfect* (Lemma A.2): no query randomness may reject an
  // honest proof.
  Prg sys_prg(500);
  auto f = Fixture::Make(sys_prg);
  Qap<F> qap(f.transform.r1cs);
  auto proof =
      BuildZaatarProof(qap, f.transform.ExtendAssignment(f.rs.assignment));
  VectorOracle<F> oz(proof.z), oh(proof.h);
  for (uint64_t seed = 0; seed < 30; seed++) {
    Prg prg(7000 + seed);
    auto q = ZaatarPcp<F>::GenerateQueries(qap, PcpParams::Light(), prg);
    EXPECT_TRUE(ZaatarPcp<F>::Decide(q, oz.QueryAll(q.z_queries),
                                     oh.QueryAll(q.h_queries),
                                     f.rs.BoundValues()))
        << "seed " << seed;
  }
}

TEST(SoundnessStatsTest, CheatingProverRejectedAcrossManyQuerySets) {
  // With |F| = 2^128, even a single repetition rejects a wrong witness
  // except with probability ~2|C|/|F|; 30 independent query sets must all
  // reject (one acceptance would indicate a structural soundness bug, not
  // bad luck).
  Prg sys_prg(501);
  auto f = Fixture::Make(sys_prg);
  Qap<F> qap(f.transform.r1cs);
  auto bad_w = f.transform.ExtendAssignment(f.rs.assignment);
  bad_w[3] += F::One();
  auto proof = BuildZaatarProof(qap, bad_w);
  VectorOracle<F> oz(proof.z), oh(proof.h);
  PcpParams one_rep{.rho_lin = 1, .rho = 1};
  for (uint64_t seed = 0; seed < 30; seed++) {
    Prg prg(8000 + seed);
    auto q = ZaatarPcp<F>::GenerateQueries(qap, one_rep, prg);
    EXPECT_FALSE(ZaatarPcp<F>::Decide(q, oz.QueryAll(q.z_queries),
                                      oh.QueryAll(q.h_queries),
                                      f.rs.BoundValues()))
        << "seed " << seed;
  }
}

TEST(SoundnessStatsTest, RandomOraclesNeverSurviveLinearityTests) {
  Prg sys_prg(502);
  auto f = Fixture::Make(sys_prg);
  Qap<F> qap(f.transform.r1cs);
  for (uint64_t seed = 0; seed < 20; seed++) {
    Prg prg(9000 + seed);
    auto q = ZaatarPcp<F>::GenerateQueries(qap, PcpParams::Light(), prg);
    auto rz = prg.NextFieldVector<F>(q.z_queries.size());
    auto rh = prg.NextFieldVector<F>(q.h_queries.size());
    EXPECT_FALSE(ZaatarPcp<F>::Decide(q, rz, rh, f.rs.BoundValues()));
  }
}

TEST(SoundnessStatsTest, SoundnessParametersMatchAppendixA2) {
  // kappa^rho with the paper's parameters is below one in a million.
  PcpParams params;
  EXPECT_EQ(params.rho_lin, 20u);
  EXPECT_EQ(params.rho, 8u);
  double err = 1;
  for (size_t i = 0; i < params.rho; i++) {
    err *= PcpParams::kKappa;
  }
  // "less than one part in a million" (kappa is quoted to 3 digits, so
  // kappa^8 lands a hair above the paper's 9.6e-7 figure).
  EXPECT_LT(err, 1e-6);
  EXPECT_GT(err, 9.6e-8);  // the bound is tight, not vacuous
  EXPECT_EQ(params.GingerHighOrderQueries(), 3 * 20 + 2u);
  EXPECT_EQ(params.ZaatarTotalQueries(), 6 * 20 + 4u);
}

TEST(SoundnessStatsTest, QueryBlindingActuallyBlinds) {
  // The blinded divisibility queries must look uniform: q_a + q_5 with fresh
  // q_5 leaks nothing about A_i(tau). Spot-check: the same tau-row blinded
  // with different linearity queries differs, and responses to the blind are
  // subtracted in the decision (already covered functionally; here we check
  // the query vectors themselves differ across repetitions).
  Prg sys_prg(503);
  auto f = Fixture::Make(sys_prg);
  Qap<F> qap(f.transform.r1cs);
  Prg prg(504);
  auto q = ZaatarPcp<F>::GenerateQueries(qap, PcpParams{.rho_lin = 2,
                                                        .rho = 2},
                                         prg);
  ASSERT_EQ(q.reps.size(), 2u);
  EXPECT_NE(q.z_queries[q.reps[0].qa], q.z_queries[q.reps[1].qa]);
  EXPECT_NE(q.h_queries[q.reps[0].qd], q.h_queries[q.reps[1].qd]);
}

}  // namespace
}  // namespace zaatar
