#include "src/constraints/qap.h"

#include <gtest/gtest.h>

#include "src/constraints/transform.h"
#include "src/field/fields.h"
#include "tests/test_util.h"

namespace zaatar {
namespace {

using F = F128;

struct QapFixture {
  RandomSystem<F> rs;
  ZaatarTransform<F> transform;
  std::vector<F> witness;

  static QapFixture Make(Prg& prg, size_t num_unbound = 8,
                         size_t num_constraints = 15) {
    QapFixture f;
    f.rs = MakeRandomSatisfiedSystem<F>(prg, num_unbound, 3, 2,
                                        num_constraints);
    f.transform = GingerToZaatar(f.rs.system);
    f.witness = f.transform.ExtendAssignment(f.rs.assignment);
    return f;
  }
};

TEST(QapTest, HDividesExactlyForSatisfyingAssignment) {
  Prg prg(70);
  auto f = QapFixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  auto hr = qap.ComputeH(f.witness);
  EXPECT_TRUE(hr.exact);
  EXPECT_EQ(hr.h.size(), qap.Degree() + 1);
  // H(0) = 0 because P_w vanishes at the extra interpolation point 0.
  EXPECT_TRUE(hr.h[0].IsZero());
}

TEST(QapTest, HDoesNotDivideForBadAssignment) {
  Prg prg(71);
  auto f = QapFixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  for (int trial = 0; trial < 5; trial++) {
    auto bad = f.witness;
    bad[prg.NextBounded(f.transform.r1cs.layout.num_unbound)] +=
        prg.NextNonzeroField<F>();
    if (f.transform.r1cs.IsSatisfied(bad)) {
      continue;  // astronomically unlikely
    }
    EXPECT_FALSE(qap.ComputeH(bad).exact);
  }
}

// The core verifier identity: D(tau)·H(tau) = A(tau)·B(tau) - C(tau), where
// the right side is assembled from the evaluation rows and the witness.
TEST(QapTest, DivisibilityIdentityAtRandomPoints) {
  Prg prg(72);
  auto f = QapFixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  auto hr = qap.ComputeH(f.witness);
  for (int trial = 0; trial < 5; trial++) {
    F tau = prg.NextField<F>();
    auto ev_or = qap.EvaluateAtTau(tau);
    ASSERT_TRUE(ev_or.ok()) << ev_or.status().ToString();
    const auto& ev = *ev_or;
    F h_tau = F::Zero();
    F pw = F::One();
    for (const F& hc : hr.h) {
      h_tau += hc * pw;
      pw *= tau;
    }
    F a = ev.a_rows[0], b = ev.b_rows[0], c = ev.c_rows[0];
    for (size_t i = 0; i < f.witness.size(); i++) {
      a += ev.a_rows[i + 1] * f.witness[i];
      b += ev.b_rows[i + 1] * f.witness[i];
      c += ev.c_rows[i + 1] * f.witness[i];
    }
    EXPECT_EQ(ev.d_tau * h_tau, a * b - c);
  }
}

TEST(QapTest, EvaluationRowsMatchDirectInterpolation) {
  // Cross-check the barycentric fast path against naive Lagrange for one
  // variable's polynomial A_i(t).
  Prg prg(73);
  auto f = QapFixture::Make(prg, /*num_unbound=*/4, /*num_constraints=*/6);
  Qap<F> qap(f.transform.r1cs);
  const auto& cs = f.transform.r1cs;
  size_t m = cs.NumConstraints();
  F tau = prg.NextField<F>();
  auto ev_or = qap.EvaluateAtTau(tau);
  ASSERT_TRUE(ev_or.ok()) << ev_or.status().ToString();
  const auto& ev = *ev_or;

  // Build A_i(t) for every row by naive interpolation through
  // (0,0),(j, a_{i,j}).
  std::vector<F> points(m + 1);
  for (size_t k = 0; k <= m; k++) {
    points[k] = F::FromUint(k);
  }
  size_t rows = cs.NumVariables() + 1;
  for (size_t row = 0; row < rows; row++) {
    std::vector<F> values(m + 1, F::Zero());
    for (size_t j = 0; j < m; j++) {
      const auto& lc = cs.constraints[j].a;
      if (row == 0) {
        values[j + 1] = lc.constant();
      } else {
        for (const auto& [v, coeff] : lc.terms()) {
          if (v + 1 == row) {
            values[j + 1] += coeff;
          }
        }
      }
    }
    Polynomial<F> ai = InterpolateNaive(points, values);
    EXPECT_EQ(ai.Evaluate(tau), ev.a_rows[row]) << "row " << row;
  }
}

TEST(QapTest, DTauMatchesExplicitProduct) {
  Prg prg(74);
  auto f = QapFixture::Make(prg, 4, 7);
  Qap<F> qap(f.transform.r1cs);
  F tau = prg.NextField<F>();
  auto ev_or = qap.EvaluateAtTau(tau);
  ASSERT_TRUE(ev_or.ok()) << ev_or.status().ToString();
  const auto& ev = *ev_or;
  F expect = F::One();
  for (size_t j = 1; j <= qap.Degree(); j++) {
    expect *= tau - F::FromUint(j);
  }
  EXPECT_EQ(ev.d_tau, expect);
}

TEST(QapTest, SingleConstraintSystem) {
  // Minimal QAP: one constraint x*y = z.
  R1cs<F> cs;
  cs.layout = {3, 0, 0};
  R1csConstraint<F> c;
  c.a = LinearCombination<F>::Variable(0);
  c.b = LinearCombination<F>::Variable(1);
  c.c = LinearCombination<F>::Variable(2);
  cs.constraints.push_back(c);
  Qap<F> qap(cs);
  std::vector<F> w = {F::FromUint(5), F::FromUint(8), F::FromUint(40)};
  EXPECT_TRUE(qap.ComputeH(w).exact);
  w[2] = F::FromUint(41);
  EXPECT_FALSE(qap.ComputeH(w).exact);
}

// Regression for the NDEBUG-unsafe assert this used to be: evaluating at a
// point inside the interpolation set {0..m} must come back as a typed
// kOutOfRange error, not a release-mode division by zero in the barycentric
// weights. (GenerateQueries resamples tau on this error.)
TEST(QapTest, EvaluateAtTauRejectsInterpolationPoints) {
  Prg prg(76);
  auto f = QapFixture::Make(prg, 4, 7);
  Qap<F> qap(f.transform.r1cs);
  for (size_t k = 0; k <= qap.Degree(); k++) {
    auto ev_or = qap.EvaluateAtTau(F::FromUint(k));
    ASSERT_FALSE(ev_or.ok()) << "tau = " << k << " is an interpolation point";
    EXPECT_EQ(ev_or.status().code(), StatusCode::kOutOfRange);
  }
  // The first point outside the set is fine.
  EXPECT_TRUE(qap.EvaluateAtTau(F::FromUint(qap.Degree() + 1)).ok());
}

// The residue-pipeline ComputeH must match the frozen coefficient-form
// ComputeHNaive bit for bit — same h vector, same exact flag — for
// satisfying, perturbed, and fully random assignments. Run across system
// sizes that land on both sides of the subproduct tree's residue switch
// level (F-domain combines below length-32 nodes, residue combines above).
template <typename Fd>
void CheckComputeHDifferential(uint64_t seed, size_t num_constraints) {
  Prg prg(seed);
  auto rs = MakeRandomSatisfiedSystem<Fd>(prg, 8, 3, 2, num_constraints);
  auto transform = GingerToZaatar(rs.system);
  auto witness = transform.ExtendAssignment(rs.assignment);
  Qap<Fd> qap(transform.r1cs);
  SCOPED_TRACE(testing::Message() << "m = " << qap.Degree());

  auto fast = qap.ComputeH(witness);
  auto slow = qap.ComputeHNaive(witness);
  EXPECT_TRUE(fast.exact);
  EXPECT_EQ(fast.exact, slow.exact);
  EXPECT_EQ(fast.h, slow.h);

  auto bad = witness;
  bad[prg.NextBounded(transform.r1cs.layout.num_unbound)] +=
      prg.NextNonzeroField<Fd>();
  if (!transform.r1cs.IsSatisfied(bad)) {
    auto fast_bad = qap.ComputeH(bad);
    auto slow_bad = qap.ComputeHNaive(bad);
    EXPECT_FALSE(fast_bad.exact);
    EXPECT_EQ(fast_bad.exact, slow_bad.exact);
    EXPECT_EQ(fast_bad.h, slow_bad.h);
  }

  auto random_w = prg.NextFieldVector<Fd>(witness.size());
  auto fast_r = qap.ComputeH(random_w);
  auto slow_r = qap.ComputeHNaive(random_w);
  EXPECT_EQ(fast_r.exact, slow_r.exact);
  EXPECT_EQ(fast_r.h, slow_r.h);

  std::vector<Fd> zero_w(witness.size(), Fd::Zero());
  EXPECT_EQ(qap.ComputeH(zero_w).h, qap.ComputeHNaive(zero_w).h);
}

TEST(QapTest, ComputeHMatchesNaiveF128) {
  uint64_t seed = 80;
  for (size_t nc : {1, 2, 5, 15, 33, 60}) {
    CheckComputeHDifferential<F128>(seed++, nc);
  }
}

TEST(QapTest, ComputeHMatchesNaiveF220) {
  uint64_t seed = 90;
  for (size_t nc : {5, 33}) {
    CheckComputeHDifferential<F220>(seed++, nc);
  }
}

TEST(QapTest, ProofVectorLengthIsLinear) {
  // |u| = |Z| + |C| + 1: the paper's headline claim about the encoding.
  Prg prg(75);
  auto f = QapFixture::Make(prg, 16, 30);
  Qap<F> qap(f.transform.r1cs);
  auto hr = qap.ComputeH(f.witness);
  size_t proof_len = f.transform.r1cs.layout.num_unbound + hr.h.size();
  EXPECT_EQ(proof_len, f.transform.r1cs.layout.num_unbound +
                           f.transform.r1cs.NumConstraints() + 1);
}

}  // namespace
}  // namespace zaatar
