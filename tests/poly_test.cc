#include "src/poly/polynomial.h"

#include <gtest/gtest.h>

#include "src/crypto/prg.h"
#include "src/field/fields.h"
#include "src/poly/algorithms.h"

namespace zaatar {
namespace {

using F = F128;
using P = Polynomial<F>;

P RandomPoly(Prg& prg, size_t coeff_count) {
  return P(prg.NextFieldVector<F>(coeff_count));
}

TEST(PolynomialTest, NormalizationTrimsLeadingZeros) {
  P p({F::FromUint(1), F::FromUint(2), F::Zero(), F::Zero()});
  EXPECT_EQ(p.Degree(), 1);
  EXPECT_EQ(P(std::vector<F>{F::Zero()}).Degree(), -1);
  EXPECT_TRUE(P::Zero().IsZero());
}

TEST(PolynomialTest, EvaluateHorner) {
  // p(x) = 3 + 2x + x^2, p(5) = 38.
  P p({F::FromUint(3), F::FromUint(2), F::FromUint(1)});
  EXPECT_EQ(p.Evaluate(F::FromUint(5)), F::FromUint(38));
  EXPECT_EQ(P::Zero().Evaluate(F::FromUint(5)), F::Zero());
  EXPECT_EQ(P::Constant(F::FromUint(7)).Evaluate(F::FromUint(9)),
            F::FromUint(7));
}

TEST(PolynomialTest, AdditionAndSubtraction) {
  Prg prg(30);
  P a = RandomPoly(prg, 10), b = RandomPoly(prg, 17);
  P sum = a + b;
  F x = prg.NextField<F>();
  EXPECT_EQ(sum.Evaluate(x), a.Evaluate(x) + b.Evaluate(x));
  EXPECT_EQ((a - b).Evaluate(x), a.Evaluate(x) - b.Evaluate(x));
  EXPECT_TRUE((a - a).IsZero());
  EXPECT_EQ((-a) + a, P::Zero());
}

TEST(PolynomialTest, MultiplicationEvaluatesCorrectly) {
  Prg prg(31);
  P a = RandomPoly(prg, 7), b = RandomPoly(prg, 9);
  P prod = a * b;
  EXPECT_EQ(prod.Degree(), a.Degree() + b.Degree());
  for (int i = 0; i < 5; i++) {
    F x = prg.NextField<F>();
    EXPECT_EQ(prod.Evaluate(x), a.Evaluate(x) * b.Evaluate(x));
  }
}

TEST(PolynomialTest, MultiplyByZeroAndScalar) {
  Prg prg(32);
  P a = RandomPoly(prg, 12);
  EXPECT_TRUE((a * P::Zero()).IsZero());
  F s = prg.NextField<F>();
  F x = prg.NextField<F>();
  EXPECT_EQ((a * s).Evaluate(x), a.Evaluate(x) * s);
}

// The CRT/NTT path must agree with schoolbook across the naive-mul cutover.
class CrtMulTest : public ::testing::TestWithParam<std::pair<size_t, size_t>> {
};

TEST_P(CrtMulTest, MatchesNaive) {
  auto [na, nb] = GetParam();
  Prg prg(33 + na * 131 + nb);
  auto a = prg.NextFieldVector<F>(na);
  auto b = prg.NextFieldVector<F>(nb);
  EXPECT_EQ(MulCrt(a.data(), na, b.data(), nb), P::NaiveMul(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CrtMulTest,
    ::testing::ValuesIn(std::vector<std::pair<size_t, size_t>>{
        {1, 1}, {2, 3}, {16, 16}, {31, 33}, {32, 32}, {33, 31},
        {64, 100}, {255, 257}, {512, 1}, {1, 512}}));

TEST(CrtMulTest, WorksOverTheWideField) {
  Prg prg(34);
  auto a = prg.NextFieldVector<F220>(80);
  auto b = prg.NextFieldVector<F220>(90);
  EXPECT_EQ(MulCrt(a.data(), a.size(), b.data(), b.size()),
            Polynomial<F220>::NaiveMul(a, b));
}

TEST(NewtonInverseTest, InvertsPowerSeries) {
  Prg prg(35);
  for (size_t count : {1u, 2u, 7u, 33u, 100u}) {
    P f = RandomPoly(prg, 20);
    if (f.CoefficientOrZero(0).IsZero()) {
      f = f + P::Constant(F::One());
    }
    P inv = NewtonInverse(f, count);
    P check = (f * inv).Truncate(count);
    EXPECT_EQ(check, P::Constant(F::One())) << "count=" << count;
  }
}

TEST(DivRemTest, QuotientRemainderIdentity) {
  Prg prg(36);
  for (auto [na, nb] : {std::pair<size_t, size_t>{10, 3},
                        {100, 37},
                        {33, 33},
                        {64, 1},
                        {5, 9}}) {
    P a = RandomPoly(prg, na), b = RandomPoly(prg, nb);
    auto [q, r] = DivRem(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.Degree(), b.Degree());
  }
}

TEST(DivRemTest, ExactDivisionLeavesZeroRemainder) {
  Prg prg(37);
  P a = RandomPoly(prg, 40), b = RandomPoly(prg, 23);
  auto [q, r] = DivRem(a * b, b);
  EXPECT_TRUE(r.IsZero());
  EXPECT_EQ(q, a);
}

TEST(PolynomialTest, DerivativePowerRule) {
  // d/dx (x^3 + 4x) = 3x^2 + 4.
  P p({F::Zero(), F::FromUint(4), F::Zero(), F::FromUint(1)});
  P d = p.Derivative();
  EXPECT_EQ(d, P({F::FromUint(4), F::Zero(), F::FromUint(3)}));
  EXPECT_TRUE(P::Constant(F::FromUint(9)).Derivative().IsZero());
}

TEST(PolynomialTest, ReverseAndShifts) {
  P p({F::FromUint(1), F::FromUint(2), F::FromUint(3)});
  EXPECT_EQ(p.Reverse(2),
            P({F::FromUint(3), F::FromUint(2), F::FromUint(1)}));
  EXPECT_EQ(p.ShiftUp(2).Degree(), 4);
  EXPECT_EQ(p.ShiftUp(2).ShiftDown(2), p);
}

class SubproductTreeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SubproductTreeTest, MultipointEvaluationMatchesHorner) {
  size_t n = GetParam();
  Prg prg(38);
  std::vector<F> points(n);
  for (size_t i = 0; i < n; i++) {
    points[i] = F::FromUint(i + 1);
  }
  SubproductTree<F> tree(points);
  EXPECT_EQ(tree.Root().Degree(), static_cast<long>(n));
  P f = RandomPoly(prg, n + 3);  // degree above the root's, exercises the
                                 // initial reduction
  auto evals = tree.EvaluateAll(f);
  for (size_t i = 0; i < n; i++) {
    EXPECT_EQ(evals[i], f.Evaluate(points[i])) << "point " << i;
  }
}

TEST_P(SubproductTreeTest, InterpolationRoundTrip) {
  size_t n = GetParam();
  Prg prg(39);
  std::vector<F> points(n);
  for (size_t i = 0; i < n; i++) {
    points[i] = F::FromUint(i * 7 + 5);  // arbitrary distinct points
  }
  SubproductTree<F> tree(points);
  auto values = prg.NextFieldVector<F>(n);
  P interp = tree.Interpolate(values);
  EXPECT_LT(interp.Degree(), static_cast<long>(n));
  for (size_t i = 0; i < n; i++) {
    EXPECT_EQ(interp.Evaluate(points[i]), values[i]) << "point " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SubproductTreeTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 33, 100, 257));

TEST(SubproductTreeTest, MatchesNaiveLagrange) {
  Prg prg(40);
  size_t n = 20;
  std::vector<F> points(n);
  for (size_t i = 0; i < n; i++) {
    points[i] = prg.NextField<F>();
  }
  auto values = prg.NextFieldVector<F>(n);
  SubproductTree<F> tree(points);
  EXPECT_EQ(tree.Interpolate(values), InterpolateNaive(points, values));
}

TEST(SubproductTreeTest, RootVanishesExactlyOnPoints) {
  std::vector<F> points = {F::FromUint(2), F::FromUint(4), F::FromUint(9)};
  SubproductTree<F> tree(points);
  for (const F& pt : points) {
    EXPECT_TRUE(tree.Root().Evaluate(pt).IsZero());
  }
  EXPECT_FALSE(tree.Root().Evaluate(F::FromUint(3)).IsZero());
  EXPECT_TRUE(tree.Root().LeadingCoefficient().IsOne());  // monic
}

}  // namespace
}  // namespace zaatar
