#include "src/commit/commitment.h"

#include <gtest/gtest.h>

#include <utility>

#include "src/field/fields.h"

namespace zaatar {
namespace {

using F = F128;
using Commit = LinearCommitment<F>;
using EG = ElGamal<F>;

struct Fixture {
  typename EG::KeyPair keys;
  std::vector<F> u;
  std::vector<std::vector<F>> queries;
  OracleCommitSetup<F> setup;
  OracleProofPart<F> part;

  static Fixture Make(Prg& prg, size_t len = 10, size_t num_queries = 6) {
    Fixture f;
    f.keys = EG::GenerateKeys(prg);
    f.u = prg.NextFieldVector<F>(len);
    for (size_t i = 0; i < num_queries; i++) {
      f.queries.push_back(prg.NextFieldVector<F>(len));
    }
    f.setup = Commit::CreateSetup(f.keys.pk, len, f.queries, prg);
    auto part = Commit::Prove(f.u, f.setup.shared.enc_r, f.queries,
                              f.setup.shared.t);
    EXPECT_TRUE(part.ok()) << part.status().ToString();
    f.part = std::move(part).value();
    return f;
  }
};

TEST(CommitmentTest, HonestProverPassesConsistency) {
  Prg prg(100);
  auto f = Fixture::Make(prg);
  EXPECT_TRUE(Commit::CheckConsistency(f.keys.pk, f.keys.sk, f.setup.secrets, f.part));
}

TEST(CommitmentTest, ResponsesAreTrueInnerProducts) {
  Prg prg(101);
  auto f = Fixture::Make(prg);
  for (size_t i = 0; i < f.queries.size(); i++) {
    EXPECT_EQ(f.part.responses[i],
              VectorOracle<F>::InnerProduct(f.queries[i].data(), f.u.data(),
                                            f.u.size()));
  }
}

TEST(CommitmentTest, TVectorIsRPlusAlphaCombination) {
  Prg prg(102);
  auto f = Fixture::Make(prg);
  for (size_t i = 0; i < f.u.size(); i++) {
    F expect = f.setup.secrets.r[i];
    for (size_t k = 0; k < f.queries.size(); k++) {
      expect += f.setup.secrets.alphas[k] * f.queries[k][i];
    }
    EXPECT_EQ(f.setup.shared.t[i], expect);
  }
}

TEST(CommitmentTest, RejectsTamperedResponse) {
  Prg prg(103);
  auto f = Fixture::Make(prg);
  for (size_t i = 0; i < f.part.responses.size(); i++) {
    auto tampered = f.part;
    tampered.responses[i] += F::One();
    EXPECT_FALSE(
        Commit::CheckConsistency(f.keys.pk, f.keys.sk, f.setup.secrets, tampered))
        << "response " << i;
  }
}

TEST(CommitmentTest, RejectsTamperedTResponse) {
  Prg prg(104);
  auto f = Fixture::Make(prg);
  auto tampered = f.part;
  tampered.t_response += F::One();
  EXPECT_FALSE(
      Commit::CheckConsistency(f.keys.pk, f.keys.sk, f.setup.secrets, tampered));
}

TEST(CommitmentTest, RejectsCommitmentToDifferentVector) {
  // Prover commits to u but answers queries from u': the decommitment check
  // catches the switch (binding).
  Prg prg(105);
  auto f = Fixture::Make(prg);
  auto u2 = prg.NextFieldVector<F>(f.u.size());
  auto part2 = Commit::Prove(u2, f.setup.shared.enc_r, f.queries,
                             f.setup.shared.t);
  ASSERT_TRUE(part2.ok()) << part2.status().ToString();
  auto frankenstein = f.part;            // responses from u ...
  frankenstein.commitment = part2->commitment;  // ... commitment to u2
  EXPECT_FALSE(
      Commit::CheckConsistency(f.keys.pk, f.keys.sk, f.setup.secrets, frankenstein));
}

TEST(CommitmentTest, ConsistentCheatIsAcceptedButIsLinear) {
  // A prover may answer with ANY fixed linear function; the commitment layer
  // only binds, the PCP layer decides. Committing honestly to a different
  // vector must still pass.
  Prg prg(106);
  auto f = Fixture::Make(prg);
  auto u2 = prg.NextFieldVector<F>(f.u.size());
  auto part2 = Commit::Prove(u2, f.setup.shared.enc_r, f.queries,
                             f.setup.shared.t);
  ASSERT_TRUE(part2.ok()) << part2.status().ToString();
  EXPECT_TRUE(
      Commit::CheckConsistency(f.keys.pk, f.keys.sk, f.setup.secrets, *part2));
}

TEST(CommitmentTest, ZeroLengthQueriesStillBind) {
  Prg prg(107);
  auto keys = EG::GenerateKeys(prg);
  auto u = prg.NextFieldVector<F>(4);
  std::vector<std::vector<F>> no_queries;
  auto setup = Commit::CreateSetup(keys.pk, 4, no_queries, prg);
  auto part_or =
      Commit::Prove(u, setup.shared.enc_r, no_queries, setup.shared.t);
  ASSERT_TRUE(part_or.ok()) << part_or.status().ToString();
  auto part = std::move(part_or).value();
  EXPECT_TRUE(Commit::CheckConsistency(keys.pk, keys.sk, setup.secrets, part));
  part.t_response += F::One();
  EXPECT_FALSE(Commit::CheckConsistency(keys.pk, keys.sk, setup.secrets, part));
}

TEST(CommitmentTest, PhaseTimersAccumulate) {
  Prg prg(108);
  auto keys = EG::GenerateKeys(prg);
  auto u = prg.NextFieldVector<F>(8);
  std::vector<std::vector<F>> queries = {prg.NextFieldVector<F>(8)};
  auto setup = Commit::CreateSetup(keys.pk, 8, queries, prg);
  double crypto = 0, answer = 0;
  auto part = Commit::Prove(u, setup.shared.enc_r, queries, setup.shared.t,
                            &crypto, &answer);
  ASSERT_TRUE(part.ok()) << part.status().ToString();
  EXPECT_GT(crypto, 0.0);
  EXPECT_GT(answer, 0.0);
}

// The shape screens that replaced assert()-only validation: mismatched
// lengths on the wire-derived inputs come back as typed kShapeMismatch
// errors in every build mode, never as out-of-bounds reads.
TEST(CommitmentTest, CommitRejectsWrongOracleLength) {
  Prg prg(109);
  auto f = Fixture::Make(prg);
  auto short_u = f.u;
  short_u.pop_back();
  auto e = Commit::Commit(short_u, f.setup.shared.enc_r);
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kShapeMismatch);
}

TEST(CommitmentTest, AnswerRejectsWrongQueryOrTLength) {
  Prg prg(110);
  auto f = Fixture::Make(prg);
  OracleProofPart<F> part;

  auto bad_queries = f.queries;
  bad_queries[2].push_back(F::One());
  Status s =
      Commit::Answer(f.u, bad_queries, f.setup.shared.t, &part);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kShapeMismatch);

  auto bad_t = f.setup.shared.t;
  bad_t.pop_back();
  s = Commit::Answer(f.u, f.queries, bad_t, &part);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kShapeMismatch);

  EXPECT_TRUE(Commit::Answer(f.u, f.queries, f.setup.shared.t, &part).ok());
  EXPECT_EQ(part.responses.size(), f.queries.size());
}

TEST(CommitmentTest, ProvePropagatesShapeErrors) {
  Prg prg(111);
  auto f = Fixture::Make(prg);
  auto enc_r_short = f.setup.shared.enc_r;
  enc_r_short.pop_back();
  auto bad =
      Commit::Prove(f.u, enc_r_short, f.queries, f.setup.shared.t);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kShapeMismatch);
}

}  // namespace
}  // namespace zaatar
