#include "src/commit/commitment.h"

#include <gtest/gtest.h>

#include "src/field/fields.h"

namespace zaatar {
namespace {

using F = F128;
using Commit = LinearCommitment<F>;
using EG = ElGamal<F>;

struct Fixture {
  typename EG::KeyPair keys;
  std::vector<F> u;
  std::vector<std::vector<F>> queries;
  OracleCommitSetup<F> setup;
  OracleProofPart<F> part;

  static Fixture Make(Prg& prg, size_t len = 10, size_t num_queries = 6) {
    Fixture f;
    f.keys = EG::GenerateKeys(prg);
    f.u = prg.NextFieldVector<F>(len);
    for (size_t i = 0; i < num_queries; i++) {
      f.queries.push_back(prg.NextFieldVector<F>(len));
    }
    f.setup = Commit::CreateSetup(f.keys.pk, len, f.queries, prg);
    f.part = Commit::Prove(f.u, f.setup.shared.enc_r, f.queries, f.setup.shared.t);
    return f;
  }
};

TEST(CommitmentTest, HonestProverPassesConsistency) {
  Prg prg(100);
  auto f = Fixture::Make(prg);
  EXPECT_TRUE(Commit::CheckConsistency(f.keys.pk, f.keys.sk, f.setup.secrets, f.part));
}

TEST(CommitmentTest, ResponsesAreTrueInnerProducts) {
  Prg prg(101);
  auto f = Fixture::Make(prg);
  for (size_t i = 0; i < f.queries.size(); i++) {
    EXPECT_EQ(f.part.responses[i],
              VectorOracle<F>::InnerProduct(f.queries[i].data(), f.u.data(),
                                            f.u.size()));
  }
}

TEST(CommitmentTest, TVectorIsRPlusAlphaCombination) {
  Prg prg(102);
  auto f = Fixture::Make(prg);
  for (size_t i = 0; i < f.u.size(); i++) {
    F expect = f.setup.secrets.r[i];
    for (size_t k = 0; k < f.queries.size(); k++) {
      expect += f.setup.secrets.alphas[k] * f.queries[k][i];
    }
    EXPECT_EQ(f.setup.shared.t[i], expect);
  }
}

TEST(CommitmentTest, RejectsTamperedResponse) {
  Prg prg(103);
  auto f = Fixture::Make(prg);
  for (size_t i = 0; i < f.part.responses.size(); i++) {
    auto tampered = f.part;
    tampered.responses[i] += F::One();
    EXPECT_FALSE(
        Commit::CheckConsistency(f.keys.pk, f.keys.sk, f.setup.secrets, tampered))
        << "response " << i;
  }
}

TEST(CommitmentTest, RejectsTamperedTResponse) {
  Prg prg(104);
  auto f = Fixture::Make(prg);
  auto tampered = f.part;
  tampered.t_response += F::One();
  EXPECT_FALSE(
      Commit::CheckConsistency(f.keys.pk, f.keys.sk, f.setup.secrets, tampered));
}

TEST(CommitmentTest, RejectsCommitmentToDifferentVector) {
  // Prover commits to u but answers queries from u': the decommitment check
  // catches the switch (binding).
  Prg prg(105);
  auto f = Fixture::Make(prg);
  auto u2 = prg.NextFieldVector<F>(f.u.size());
  auto part2 = Commit::Prove(u2, f.setup.shared.enc_r, f.queries, f.setup.shared.t);
  auto frankenstein = f.part;           // responses from u ...
  frankenstein.commitment = part2.commitment;  // ... commitment to u2
  EXPECT_FALSE(
      Commit::CheckConsistency(f.keys.pk, f.keys.sk, f.setup.secrets, frankenstein));
}

TEST(CommitmentTest, ConsistentCheatIsAcceptedButIsLinear) {
  // A prover may answer with ANY fixed linear function; the commitment layer
  // only binds, the PCP layer decides. Committing honestly to a different
  // vector must still pass.
  Prg prg(106);
  auto f = Fixture::Make(prg);
  auto u2 = prg.NextFieldVector<F>(f.u.size());
  auto part2 = Commit::Prove(u2, f.setup.shared.enc_r, f.queries, f.setup.shared.t);
  EXPECT_TRUE(
      Commit::CheckConsistency(f.keys.pk, f.keys.sk, f.setup.secrets, part2));
}

TEST(CommitmentTest, ZeroLengthQueriesStillBind) {
  Prg prg(107);
  auto keys = EG::GenerateKeys(prg);
  auto u = prg.NextFieldVector<F>(4);
  std::vector<std::vector<F>> no_queries;
  auto setup = Commit::CreateSetup(keys.pk, 4, no_queries, prg);
  auto part = Commit::Prove(u, setup.shared.enc_r, no_queries, setup.shared.t);
  EXPECT_TRUE(Commit::CheckConsistency(keys.pk, keys.sk, setup.secrets, part));
  part.t_response += F::One();
  EXPECT_FALSE(Commit::CheckConsistency(keys.pk, keys.sk, setup.secrets, part));
}

TEST(CommitmentTest, PhaseTimersAccumulate) {
  Prg prg(108);
  auto keys = EG::GenerateKeys(prg);
  auto u = prg.NextFieldVector<F>(8);
  std::vector<std::vector<F>> queries = {prg.NextFieldVector<F>(8)};
  auto setup = Commit::CreateSetup(keys.pk, 8, queries, prg);
  double crypto = 0, answer = 0;
  Commit::Prove(u, setup.shared.enc_r, queries, setup.shared.t, &crypto, &answer);
  EXPECT_GT(crypto, 0.0);
  EXPECT_GT(answer, 0.0);
}

}  // namespace
}  // namespace zaatar
