// Include-graph enforcement of the protocol trust boundary: the prover-side
// session headers must be compilable WITHOUT pulling in the verifier's
// secret state. This file includes only the prover-side headers and then
// fails the build if any verifier-secret header leaked in transitively —
// the strongest "ProverSession cannot reach VerifierSecrets" statement the
// language offers short of a separate process.

#include "src/protocol/prover_session.h"

#include "src/protocol/messages.h"
#include "src/protocol/prover_context.h"
#include "src/protocol/transport.h"

// The verifier's secrets live in src/argument/argument.h (VerifierSecrets:
// the ElGamal secret key, the plaintext r vectors, the alphas) and the
// session wrapper in src/protocol/verifier_session.h. If either guard is
// defined here, a prover-side header transitively included verifier-secret
// machinery and the trust boundary is broken.
#ifdef SRC_ARGUMENT_ARGUMENT_H_
#error "prover-side protocol headers leak src/argument/argument.h"
#endif
#ifdef SRC_PROTOCOL_VERIFIER_SESSION_H_
#error "prover-side protocol headers leak verifier_session.h"
#endif
#ifdef SRC_ARGUMENT_WIRE_H_
#error "prover-side protocol headers leak src/argument/wire.h"
#endif

#include <gtest/gtest.h>

#include <type_traits>

#include "src/field/fields.h"

namespace zaatar {
namespace {

using F = F128;

// The prover context is built from bytes or a SetupMessage — nothing else.
// In particular there is no constructor or factory taking verifier state;
// the only types it can be constructed from are public wire material.
static_assert(
    !std::is_constructible_v<ProverContext<F>, OracleCommitSecrets<F>>,
    "ProverContext must not be constructible from commitment secrets");
static_assert(
    !std::is_constructible_v<protocol::ProverSession<F>,
                             OracleCommitSecrets<F>>,
    "ProverSession must not be constructible from commitment secrets");
static_assert(
    !std::is_constructible_v<protocol::ProverSession<F>,
                             OracleCommitSetup<F>>,
    "ProverSession must not be constructible from the full commit setup");

// The SetupMessage type itself cannot represent the secrets: its fields are
// exactly {pk, per-oracle {enc_r, queries, t}} and nothing secret-shaped.
static_assert(!std::is_constructible_v<protocol::SetupMessage<F>,
                                       OracleCommitSecrets<F>>,
              "SetupMessage must not be constructible from secrets");

TEST(ProtocolIsolationTest, ProverSessionCompilesWithoutVerifierHeaders) {
  // The real assertions are the #error guards and static_asserts above;
  // this test existing (and linking) is the pass condition.
  protocol::ProverSession<F> session;
  EXPECT_EQ(session.phase(), protocol::SessionPhase::kSetup);
  EXPECT_EQ(session.next_instance(), 0u);
}

}  // namespace
}  // namespace zaatar
