#include "src/pcp/zaatar_pcp.h"

#include <gtest/gtest.h>

#include "src/constraints/transform.h"
#include "src/field/fields.h"
#include "tests/test_util.h"

namespace zaatar {
namespace {

using F = F128;
using Pcp = ZaatarPcp<F>;

struct Fixture {
  RandomSystem<F> rs;
  ZaatarTransform<F> transform;
  std::vector<F> witness;
  std::vector<F> bound;

  static Fixture Make(Prg& prg) {
    Fixture f;
    f.rs = MakeRandomSatisfiedSystem<F>(prg, 10, 3, 2, 18);
    f.transform = GingerToZaatar(f.rs.system);
    f.witness = f.transform.ExtendAssignment(f.rs.assignment);
    f.bound = f.rs.BoundValues();
    return f;
  }
};

std::pair<std::vector<F>, std::vector<F>> HonestResponses(
    const Pcp::Queries& q, const ZaatarProof<F>& proof) {
  VectorOracle<F> oz(proof.z), oh(proof.h);
  return {oz.QueryAll(q.z_queries), oh.QueryAll(q.h_queries)};
}

TEST(ZaatarPcpTest, CompletenessWithFullParams) {
  Prg prg(80);
  auto f = Fixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  auto proof = BuildZaatarProof(qap, f.witness);
  auto q = Pcp::GenerateQueries(qap, PcpParams{}, prg);
  auto [rz, rh] = HonestResponses(q, proof);
  EXPECT_TRUE(Pcp::Decide(q, rz, rh, f.bound));
}

TEST(ZaatarPcpTest, QueryCountsMatchTheCostModel) {
  Prg prg(81);
  auto f = Fixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  PcpParams params;
  auto q = Pcp::GenerateQueries(qap, params, prg);
  // Per repetition: 3 rho_lin linearity queries per oracle, plus q_a,q_b,q_c
  // on the z oracle and q_d on the h oracle. l' = 6 rho_lin + 4 total.
  EXPECT_EQ(q.TotalQueryCount(),
            params.rho * params.ZaatarTotalQueries());
  EXPECT_EQ(q.z_queries.size(), params.rho * (3 * params.rho_lin + 3));
  EXPECT_EQ(q.h_queries.size(), params.rho * (3 * params.rho_lin + 1));
  EXPECT_EQ(q.z_len, f.transform.r1cs.layout.num_unbound);
  EXPECT_EQ(q.h_len, f.transform.r1cs.NumConstraints() + 1);
}

TEST(ZaatarPcpTest, RejectsWrongOutput) {
  Prg prg(82);
  auto f = Fixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  auto proof = BuildZaatarProof(qap, f.witness);
  auto q = Pcp::GenerateQueries(qap, PcpParams::Light(), prg);
  auto [rz, rh] = HonestResponses(q, proof);
  for (size_t k = 0; k < f.bound.size(); k++) {
    auto bad = f.bound;
    bad[k] += F::One();
    EXPECT_FALSE(Pcp::Decide(q, rz, rh, bad)) << "bound value " << k;
  }
}

TEST(ZaatarPcpTest, RejectsBestEffortCheatingProof) {
  // A prover whose witness is wrong in one variable, with H computed as the
  // (inexact) polynomial quotient.
  Prg prg(83);
  auto f = Fixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  auto q = Pcp::GenerateQueries(qap, PcpParams::Light(), prg);
  for (int trial = 0; trial < 5; trial++) {
    auto bad = f.witness;
    bad[prg.NextBounded(f.transform.r1cs.layout.num_unbound)] +=
        prg.NextNonzeroField<F>();
    auto proof = BuildZaatarProof(qap, bad);
    auto [rz, rh] = HonestResponses(q, proof);
    EXPECT_FALSE(Pcp::Decide(q, rz, rh, f.bound)) << "trial " << trial;
  }
}

TEST(ZaatarPcpTest, RejectsInconsistentOracles) {
  // z from one witness, h from another: individually linear, jointly bogus.
  Prg prg(84);
  auto f = Fixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  auto good = BuildZaatarProof(qap, f.witness);
  auto bad_w = f.witness;
  bad_w[0] += F::One();
  auto bad = BuildZaatarProof(qap, bad_w);
  auto q = Pcp::GenerateQueries(qap, PcpParams::Light(), prg);
  VectorOracle<F> oz(bad.z), oh(good.h);
  EXPECT_FALSE(
      Pcp::Decide(q, oz.QueryAll(q.z_queries), oh.QueryAll(q.h_queries),
                  f.bound));
}

// A non-linear adversary: answers queries with <q,u> + hash-like noise on a
// fraction of queries. The linearity tests must catch it.
class NoisyOracle : public LinearOracle<F> {
 public:
  NoisyOracle(std::vector<F> u, uint64_t seed) : u_(std::move(u)), prg_(seed) {}
  size_t Size() const override { return u_.size(); }
  F Query(const std::vector<F>& query) const override {
    F honest = VectorOracle<F>::InnerProduct(query.data(), u_.data(),
                                             u_.size());
    // Perturb every other query.
    if (count_++ % 2 == 0) {
      return honest + prg_.NextNonzeroField<F>();
    }
    return honest;
  }

 private:
  std::vector<F> u_;
  mutable Prg prg_;
  mutable size_t count_ = 0;
};

TEST(ZaatarPcpTest, LinearityTestsCatchNonLinearOracle) {
  Prg prg(85);
  auto f = Fixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  auto proof = BuildZaatarProof(qap, f.witness);
  auto q = Pcp::GenerateQueries(qap, PcpParams::Light(), prg);
  NoisyOracle oz(proof.z, 999);
  VectorOracle<F> oh(proof.h);
  EXPECT_FALSE(
      Pcp::Decide(q, oz.QueryAll(q.z_queries), oh.QueryAll(q.h_queries),
                  f.bound));
}

TEST(ZaatarPcpTest, RejectsRandomResponses) {
  Prg prg(86);
  auto f = Fixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  auto q = Pcp::GenerateQueries(qap, PcpParams::Light(), prg);
  auto rz = prg.NextFieldVector<F>(q.z_queries.size());
  auto rh = prg.NextFieldVector<F>(q.h_queries.size());
  EXPECT_FALSE(Pcp::Decide(q, rz, rh, f.bound));
}

TEST(ZaatarPcpTest, QueriesAreReusableAcrossABatch) {
  // One query set, several instances (different inputs) of the same system
  // shape: here we re-derive systems sharing the constraint structure by
  // keeping the system and varying the witness? The real batch property is
  // exercised end-to-end in argument_test; here we check determinism: same
  // seed -> identical queries.
  Prg prg_a(87), prg_b(87);
  Prg sys_prg(88);
  auto f = Fixture::Make(sys_prg);
  Qap<F> qap(f.transform.r1cs);
  auto qa = Pcp::GenerateQueries(qap, PcpParams::Light(), prg_a);
  auto qb = Pcp::GenerateQueries(qap, PcpParams::Light(), prg_b);
  ASSERT_EQ(qa.z_queries.size(), qb.z_queries.size());
  for (size_t i = 0; i < qa.z_queries.size(); i++) {
    EXPECT_EQ(qa.z_queries[i], qb.z_queries[i]);
  }
}

TEST(ZaatarPcpTest, TauAvoidsInterpolationPoints) {
  Prg prg(89);
  auto f = Fixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  auto q = Pcp::GenerateQueries(qap, PcpParams{}, prg);
  for (const auto& rep : q.reps) {
    EXPECT_GT(rep.tau.ToCanonical(),
              typename F::Repr(static_cast<uint64_t>(qap.Degree())));
  }
}

}  // namespace
}  // namespace zaatar
