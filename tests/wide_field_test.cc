// End-to-end coverage over the 220-bit field (root finding's field, §5.1):
// the whole stack — constraints, QAP, PCP, commitment, argument — must work
// identically over F220, whose modulus spans four limbs and whose ElGamal
// group differs from F128's.

#include <gtest/gtest.h>

#include "src/argument/argument.h"
#include "src/constraints/qap.h"
#include "src/constraints/transform.h"
#include "src/field/fields.h"
#include "tests/test_util.h"

namespace zaatar {
namespace {

using F = F220;

struct Fixture {
  RandomSystem<F> rs;
  ZaatarTransform<F> transform;

  static Fixture Make(Prg& prg) {
    Fixture f;
    f.rs = MakeRandomSatisfiedSystem<F>(prg, 9, 3, 2, 17);
    f.transform = GingerToZaatar(f.rs.system);
    return f;
  }
};

TEST(WideFieldTest, QapDivisibility) {
  Prg prg(400);
  auto f = Fixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  auto w = f.transform.ExtendAssignment(f.rs.assignment);
  EXPECT_TRUE(qap.ComputeH(w).exact);
  auto bad = w;
  bad[0] += F::One();
  EXPECT_FALSE(qap.ComputeH(bad).exact);
}

TEST(WideFieldTest, PcpCompletenessAndSoundness) {
  Prg prg(401);
  auto f = Fixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  auto w = f.transform.ExtendAssignment(f.rs.assignment);
  auto proof = BuildZaatarProof(qap, w);
  auto q = ZaatarPcp<F>::GenerateQueries(qap, PcpParams::Light(), prg);
  VectorOracle<F> oz(proof.z), oh(proof.h);
  auto rz = oz.QueryAll(q.z_queries);
  auto rh = oh.QueryAll(q.h_queries);
  EXPECT_TRUE(ZaatarPcp<F>::Decide(q, rz, rh, f.rs.BoundValues()));
  auto bad = f.rs.BoundValues();
  bad[0] += F::One();
  EXPECT_FALSE(ZaatarPcp<F>::Decide(q, rz, rh, bad));
}

TEST(WideFieldTest, FullArgumentWithElGamal220Group) {
  Prg prg(402);
  auto f = Fixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  auto setup = ZaatarArgument<F>::Setup(
      ZaatarPcp<F>::GenerateQueries(qap, PcpParams::Light(), prg), prg);
  auto w = f.transform.ExtendAssignment(f.rs.assignment);
  auto proof = BuildZaatarProof(qap, w);
  auto ip = ZaatarArgument<F>::Prove({&proof.z, &proof.h}, setup);
  EXPECT_TRUE(
      ZaatarArgument<F>::VerifyInstance(setup, ip, f.rs.BoundValues()));
  auto tampered = ip;
  tampered.parts[1].responses[0] += F::One();
  EXPECT_FALSE(
      ZaatarArgument<F>::VerifyInstance(setup, tampered, f.rs.BoundValues()));
}

TEST(WideFieldTest, GingerPcpOverF220) {
  Prg prg(403);
  auto rs = MakeRandomSatisfiedSystem<F>(prg, 7, 2, 2, 12);
  auto inst = BuildGingerPcpInstance(rs.system);
  auto proof = BuildGingerProof(inst, rs.assignment);
  auto q = GingerPcp<F>::GenerateQueries(inst, PcpParams::Light(), prg);
  VectorOracle<F> o1(proof.z), o2(proof.tensor);
  auto r1 = o1.QueryAll(q.pi1_queries);
  auto r2 = o2.QueryAll(q.pi2_queries);
  EXPECT_TRUE(GingerPcp<F>::Decide(q, r1, r2, rs.BoundValues()));
  auto bad = rs.BoundValues();
  bad.back() += F::One();
  EXPECT_FALSE(GingerPcp<F>::Decide(q, r1, r2, bad));
}

TEST(WideFieldTest, TauSamplingRespectsTheWiderModulus) {
  // tau must be uniform over ~2^220, not accidentally truncated to 128 bits.
  Prg prg(404);
  auto f = Fixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  auto q = ZaatarPcp<F>::GenerateQueries(qap, PcpParams{}, prg);
  int above_128 = 0;
  for (const auto& rep : q.reps) {
    if (rep.tau.ToCanonical().BitLength() > 128) {
      above_128++;
    }
  }
  EXPECT_GT(above_128, 0);  // overwhelmingly likely for uniform tau
}

}  // namespace
}  // namespace zaatar
