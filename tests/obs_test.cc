// The observability layer: span trees, cross-thread stitching, counters and
// histograms, deterministic export, and the end-to-end guarantees the
// harness's cost fields rely on (the span-sum partition of the batch root).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/harness.h"
#include "src/crypto/elgamal.h"
#include "src/crypto/multiexp.h"
#include "src/crypto/prg.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace zaatar {
namespace {

// ----- Tracer / Span unit tests -----

// Everything that observes recorded spans or ambient metric installation
// requires live instrumentation; under cmake -DZAATAR_TRACE=OFF those
// guards compile to empty objects by design, so the behavioral tests are
// gated out and only the structural ones (bucket math, direct registry
// writes, null export) remain.
#if ZAATAR_TRACE

TEST(TraceTest, NestedSpansFormATree) {
  obs::Tracer tracer;
  {
    obs::ScopedThreadTracer install(&tracer);
    obs::Span a("a");
    {
      obs::Span b("b");
      { obs::Span c("c"); }
    }
    { obs::Span b2("b"); }
  }
  auto nodes = tracer.Snapshot();
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_EQ(nodes[0].name, "a");
  EXPECT_EQ(nodes[0].parent, obs::kNoSpan);
  EXPECT_EQ(nodes[1].name, "b");
  EXPECT_EQ(nodes[1].parent, 0u);
  EXPECT_EQ(nodes[2].name, "c");
  EXPECT_EQ(nodes[2].parent, 1u);
  EXPECT_EQ(nodes[3].name, "b");
  EXPECT_EQ(nodes[3].parent, 0u);
  for (const auto& n : nodes) {
    EXPECT_NE(n.end_ns, 0u) << n.name << " was never closed";
    EXPECT_GE(n.end_ns, n.start_ns);
  }
  EXPECT_EQ(tracer.CountSpans("b"), 2u);
  EXPECT_EQ(tracer.CountSpans("missing"), 0u);
  EXPECT_GE(tracer.SumSeconds("a"), tracer.SumSeconds("c"));
}

TEST(TraceTest, SpanIsNoOpWithoutInstalledTracer) {
  obs::Span orphan("orphan");
  EXPECT_EQ(orphan.id(), obs::kNoSpan);
}

TEST(TraceTest, ScopedThreadTracerRestoresPriorState) {
  obs::Tracer outer_tracer;
  obs::Tracer inner_tracer;
  obs::ScopedThreadTracer outer(&outer_tracer);
  obs::Span a("outer.a");
  {
    obs::ScopedThreadTracer inner(&inner_tracer);
    obs::Span b("inner.b");
  }
  // Back on the outer tracer: new spans nest under the still-open "outer.a".
  { obs::Span c("outer.c"); }
  EXPECT_EQ(outer_tracer.CountSpans("outer.a"), 1u);
  EXPECT_EQ(outer_tracer.CountSpans("outer.c"), 1u);
  EXPECT_EQ(outer_tracer.CountSpans("inner.b"), 0u);
  EXPECT_EQ(inner_tracer.CountSpans("inner.b"), 1u);
  auto nodes = outer_tracer.Snapshot();
  EXPECT_EQ(nodes[1].name, "outer.c");
  EXPECT_EQ(nodes[1].parent, 0u);
}

TEST(TraceTest, DefaultParentStitchesWorkerThreadUnderSpawningSpan) {
  obs::Tracer tracer;
  obs::ScopedThreadTracer install(&tracer);
  uint32_t root_id;
  {
    obs::Span root("root");
    root_id = root.id();
    std::thread worker([&] {
      obs::ScopedThreadTracer stitch(&tracer, root_id);
      obs::Span child("worker.child");
      { obs::Span grandchild("worker.grandchild"); }
    });
    worker.join();
  }
  auto nodes = tracer.Snapshot();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[1].name, "worker.child");
  EXPECT_EQ(nodes[1].parent, root_id);
  EXPECT_EQ(nodes[2].name, "worker.grandchild");
  EXPECT_EQ(nodes[2].parent, 1u);
}

#endif  // ZAATAR_TRACE

// ----- Metrics unit tests -----

TEST(MetricsTest, BucketIndexPowerOfTwoBoundaries) {
  EXPECT_EQ(obs::Metrics::BucketIndex(0), 0u);
  EXPECT_EQ(obs::Metrics::BucketIndex(1), 1u);
  EXPECT_EQ(obs::Metrics::BucketIndex(2), 2u);
  EXPECT_EQ(obs::Metrics::BucketIndex(3), 2u);
  EXPECT_EQ(obs::Metrics::BucketIndex(4), 3u);
  EXPECT_EQ(obs::Metrics::BucketIndex(7), 3u);
  EXPECT_EQ(obs::Metrics::BucketIndex(8), 4u);
  EXPECT_EQ(obs::Metrics::BucketIndex((uint64_t{1} << 62)), 63u);
  // The top bucket absorbs values >= 2^63 instead of overflowing the array.
  EXPECT_EQ(obs::Metrics::BucketIndex(uint64_t{1} << 63), 63u);
  EXPECT_EQ(obs::Metrics::BucketIndex(UINT64_MAX), 63u);
}

TEST(MetricsTest, CountersAndHistograms) {
  obs::Metrics m;
  m.Add("calls");
  m.Add("calls", 4);
  m.Observe("bytes", 0);
  m.Observe("bytes", 5);
  m.Observe("bytes", 5);
  EXPECT_EQ(m.CounterValue("calls"), 5u);
  EXPECT_EQ(m.CounterValue("missing"), 0u);
  auto h = m.HistogramValue("bytes");
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 10u);
  EXPECT_EQ(h.buckets[0], 1u);                          // the value 0
  EXPECT_EQ(h.buckets[obs::Metrics::BucketIndex(5)], 2u);  // [4, 8)
  EXPECT_EQ(m.HistogramValue("missing").count, 0u);
}

#if ZAATAR_TRACE

// multiexp.window_bits must record the window width the bucket kernel
// actually chose — plumbed out of the kernel, not re-derived at the metrics
// site — once per kernel invocation that did real work.
TEST(MetricsTest, MultiExpWindowBitsReflectKernelChoice) {
  using EG = ElGamal<F128>;
  using Zp = EG::Zp;
  Prg prg(77);
  const Zp g = EG::Generator();
  const size_t n = 30;
  std::vector<Zp> bases(n);
  Zp cur = g;
  for (size_t i = 0; i < n; i++) {
    bases[i] = cur;
    cur *= g;
  }
  auto scalars = prg.NextFieldVector<F128>(n);

  obs::Metrics m;
  {
    obs::ScopedThreadMetrics install(&m);
    MultiExp(bases.data(), scalars.data(), n);       // serial: one kernel
    MultiExp(bases.data(), scalars.data(), n, 3);    // parallel: 3 chunks
    std::vector<F128> zeros(n, F128::Zero());
    MultiExp(bases.data(), zeros.data(), n);         // degenerate: no kernel
  }

  EXPECT_EQ(m.CounterValue("multiexp.calls"), 3u);
  EXPECT_EQ(m.HistogramValue("multiexp.terms").count, 3u);
  auto wb = m.HistogramValue("multiexp.window_bits");
  // One observation per kernel that ran: 1 serial + 3 parallel chunks; the
  // all-zero call contributes none (its kernel never picks a window).
  EXPECT_EQ(wb.count, 4u);
  // Every recorded width is a real kernel choice in the model's range, and
  // the parallel chunks (10 terms each) must not report the full-size call's
  // width: expected widths are PippengerWindowBits of the actual shapes.
  const uint64_t serial_c = PippengerWindowBits(n, F128::kModulusBits);
  const uint64_t chunk_c = PippengerWindowBits(10, F128::kModulusBits);
  EXPECT_EQ(wb.sum, serial_c + 3 * chunk_c);
  for (size_t b = 0; b < 64; b++) {
    if (wb.buckets[b] != 0) {
      EXPECT_GE(b, obs::Metrics::BucketIndex(1));
      EXPECT_LE(b, obs::Metrics::BucketIndex(16));
    }
  }
}

TEST(MetricsTest, FreeFunctionsAreNoOpsWithoutInstalledRegistry) {
  EXPECT_EQ(obs::ThreadMetrics(), nullptr);
  obs::MetricAdd("ignored");  // must not crash
  obs::MetricObserve("ignored", 7);
  obs::Metrics m;
  {
    obs::ScopedThreadMetrics install(&m);
    obs::MetricAdd("seen", 2);
    obs::MetricObserve("seen.hist", 3);
  }
  obs::MetricAdd("seen", 100);  // after uninstall: dropped
  EXPECT_EQ(m.CounterValue("seen"), 2u);
  EXPECT_EQ(m.HistogramValue("seen.hist").count, 1u);
}

// ----- Concurrency (exercised under TSan in CI) -----

TEST(ObsConcurrencyTest, ManyThreadsRecordIntoSharedCollectors) {
  obs::Tracer tracer;
  obs::Metrics metrics;
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      obs::ScopedThreadTracer install_t(&tracer);
      obs::ScopedThreadMetrics install_m(&metrics);
      for (int i = 0; i < kIters; i++) {
        obs::Span outer("stress.outer");
        obs::Span inner("stress.inner");
        obs::MetricAdd("stress.count");
        obs::MetricObserve("stress.value",
                           static_cast<uint64_t>(t * kIters + i));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(tracer.CountSpans("stress.outer"), size_t{kThreads * kIters});
  EXPECT_EQ(tracer.CountSpans("stress.inner"), size_t{kThreads * kIters});
  EXPECT_EQ(metrics.CounterValue("stress.count"), uint64_t{kThreads * kIters});
  EXPECT_EQ(metrics.HistogramValue("stress.value").count,
            uint64_t{kThreads * kIters});
  // Every span closed; parents all within range.
  for (const auto& n : tracer.Snapshot()) {
    EXPECT_NE(n.end_ns, 0u);
  }
}

// ----- Export -----

TEST(ExportTest, JsonIsDeterministicAndWellFormed) {
  obs::Tracer tracer;
  obs::Metrics metrics;
  {
    obs::ScopedThreadTracer install(&tracer);
    obs::Span a("phase \"one\"");  // exercises string escaping
    { obs::Span b("phase.two"); }
  }
  metrics.Add("z.counter", 3);
  metrics.Add("a.counter", 1);
  metrics.Observe("hist", 0);
  metrics.Observe("hist", 6);

  std::string once = obs::ExportJson(&tracer, &metrics);
  std::string twice = obs::ExportJson(&tracer, &metrics);
  EXPECT_EQ(once, twice) << "export must be a pure function of the data";

  EXPECT_NE(once.find("\"phase \\\"one\\\"\""), std::string::npos);
  EXPECT_NE(once.find("\"phase.two\""), std::string::npos);
  // Counters come out in name order (a before z).
  EXPECT_LT(once.find("\"a.counter\": 1"), once.find("\"z.counter\": 3"));
  // Histogram: zero bucket keyed "0", the value 6 lands in [4, 8) keyed "8";
  // zero buckets are omitted entirely.
  EXPECT_NE(once.find("\"0\": 1"), std::string::npos);
  EXPECT_NE(once.find("\"8\": 1"), std::string::npos);
  EXPECT_EQ(once.find("\"2\": "), std::string::npos);
  EXPECT_NE(once.find("\"count\": 2, \"sum\": 6"), std::string::npos);
}

#endif  // ZAATAR_TRACE

TEST(ExportTest, NullCollectorsExportEmptyObjects) {
  std::string json = obs::ExportJson(nullptr, nullptr);
  EXPECT_NE(json.find("\"spans\": []"), std::string::npos);
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\": {}"), std::string::npos);
}

// ----- End to end: the harness's span tree -----

#if ZAATAR_TRACE

class HarnessTraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto app = MakeLcsApp(8);
    auto program = CompileZlang<F128>(app.source);
    measurement_ = new BatchMeasurement(
        MeasureZaatarBatch(app, program, kBeta, PcpParams::Light(),
                           /*seed=*/42, /*measure_native=*/false));
    ASSERT_TRUE(measurement_->all_accepted);
  }
  static void TearDownTestSuite() {
    delete measurement_;
    measurement_ = nullptr;
  }

  static constexpr size_t kBeta = 3;
  static BatchMeasurement* measurement_;
};

BatchMeasurement* HarnessTraceTest::measurement_ = nullptr;

TEST_F(HarnessTraceTest, SpanTreeHasTheDocumentedShape) {
  const obs::Tracer& t = *measurement_->trace;
  EXPECT_EQ(t.CountSpans("harness.batch"), 1u);
  EXPECT_EQ(t.CountSpans("harness.prepare"), 1u);
  EXPECT_EQ(t.CountSpans("verifier.query_gen"), 1u);
  EXPECT_EQ(t.CountSpans("verifier.commit_setup"), 1u);
  EXPECT_EQ(t.CountSpans("harness.draw_instances"), 1u);
  EXPECT_EQ(t.CountSpans("harness.send_setup"), 1u);
  EXPECT_EQ(t.CountSpans("prover.ingest_setup"), 1u);
  EXPECT_EQ(t.CountSpans("verifier.verify"), kBeta);
  EXPECT_EQ(t.CountSpans("prover.commit"), kBeta);
  EXPECT_EQ(t.CountSpans("prover.answer"), kBeta);
  // Zaatar solves twice per instance: the harness's SolveGinger plus the
  // backend's SolveZaatar inside BuildProofVectors.
  EXPECT_EQ(t.CountSpans("prover.solve"), 2 * kBeta);
  EXPECT_EQ(t.CountSpans("prover.construct_proof"), kBeta);
  EXPECT_EQ(t.CountSpans("qap.compute_h"), kBeta);
  EXPECT_GE(t.CountSpans("qap.evaluate_at_tau"), 1u);
  // One setup frame plus, per instance, one proof frame and one verdict
  // frame — in each direction of the transport.
  EXPECT_EQ(t.CountSpans("transport.send"), 1 + 2 * kBeta);
  EXPECT_EQ(t.CountSpans("transport.recv"), 1 + 2 * kBeta);

  // Parent relationships: everything hangs off the single root, including
  // the prover thread's spans (cross-thread stitching), and the nested
  // spans sit under their documented parents.
  auto nodes = t.Snapshot();
  uint32_t root_id = obs::kNoSpan;
  for (uint32_t id = 0; id < nodes.size(); id++) {
    if (nodes[id].name == "harness.batch") {
      root_id = id;
    }
  }
  ASSERT_NE(root_id, obs::kNoSpan);
  EXPECT_EQ(nodes[root_id].parent, obs::kNoSpan);
  for (uint32_t id = 0; id < nodes.size(); id++) {
    const auto& n = nodes[id];
    EXPECT_NE(n.end_ns, 0u) << n.name << " never closed";
    if (id != root_id) {
      ASSERT_LT(n.parent, nodes.size()) << n.name << " is an orphan";
    }
    if (n.name == "qap.compute_h") {
      EXPECT_EQ(nodes[n.parent].name, "prover.construct_proof");
    }
    if (n.name == "qap.evaluate_at_tau") {
      EXPECT_EQ(nodes[n.parent].name, "verifier.query_gen");
    }
    if (n.name == "prover.commit" || n.name == "prover.answer" ||
        n.name == "prover.solve" || n.name == "prover.construct_proof" ||
        n.name == "prover.ingest_setup" || n.name == "verifier.verify") {
      EXPECT_EQ(n.parent, root_id) << n.name;
    }
  }
}

// The strict ping-pong protocol means exactly one side works at any moment
// (the other blocks in transport.recv), so the root's direct children —
// minus the blocking recv spans — partition the batch wall time.
TEST_F(HarnessTraceTest, DirectChildrenPartitionTheRootDuration) {
  auto nodes = measurement_->trace->Snapshot();
  uint32_t root_id = obs::kNoSpan;
  for (uint32_t id = 0; id < nodes.size(); id++) {
    if (nodes[id].name == "harness.batch") {
      root_id = id;
    }
  }
  ASSERT_NE(root_id, obs::kNoSpan);
  const double root_s =
      static_cast<double>(nodes[root_id].end_ns - nodes[root_id].start_ns) *
      1e-9;
  double children_s = 0;
  for (const auto& n : nodes) {
    if (n.parent == root_id && n.name != "transport.recv") {
      children_s += static_cast<double>(n.end_ns - n.start_ns) * 1e-9;
    }
  }
  EXPECT_GT(root_s, 0.0);
  EXPECT_NEAR(children_s, root_s, 0.05 * root_s)
      << "unspanned work inside the batch exceeds 5% of the wall time";
}

TEST_F(HarnessTraceTest, CostFieldsAreViewsOverTheSpanTree) {
  const obs::Tracer& t = *measurement_->trace;
  const double b = static_cast<double>(kBeta);
  const BatchMeasurement& m = *measurement_;
  EXPECT_DOUBLE_EQ(m.query_generation_s, t.SumSeconds("verifier.query_gen"));
  EXPECT_DOUBLE_EQ(m.prover.solve_constraints_s,
                   t.SumSeconds("prover.solve") / b);
  EXPECT_DOUBLE_EQ(m.prover.construct_proof_s,
                   t.SumSeconds("prover.construct_proof") / b);
  EXPECT_DOUBLE_EQ(m.prover.crypto_s, t.SumSeconds("prover.commit") / b);
  EXPECT_DOUBLE_EQ(m.prover.answer_queries_s,
                   t.SumSeconds("prover.answer") / b);
  EXPECT_DOUBLE_EQ(m.verifier_per_instance_s,
                   t.SumSeconds("verifier.verify") / b);
  EXPECT_GT(m.prover.crypto_s, 0.0);
  EXPECT_GT(m.verifier_per_instance_s, 0.0);
}

TEST_F(HarnessTraceTest, MetricsCountTheProtocolTraffic) {
  const obs::Metrics& m = *measurement_->metrics;
  EXPECT_EQ(m.CounterValue("transport.frames_sent"), 1 + 2 * kBeta);
  EXPECT_EQ(m.CounterValue("transport.frames_received"), 1 + 2 * kBeta);
  auto frame_bytes = m.HistogramValue("transport.frame_bytes");
  EXPECT_EQ(frame_bytes.count, 2 * (1 + 2 * kBeta));
  // Both endpoints observed every frame: setup + proofs + the (empty-detail)
  // accept verdicts.
  const size_t verdict_bytes =
      protocol::VerdictMessage::FromResult(0, VerifyInstanceResult::Accept())
          .Serialize()
          .size();
  EXPECT_EQ(frame_bytes.sum, 2 * (measurement_->setup_message_bytes +
                                  measurement_->proof_message_bytes +
                                  kBeta * verdict_bytes));
  EXPECT_EQ(m.CounterValue("verdict.ACCEPT"), kBeta);
  EXPECT_EQ(m.CounterValue("verdict.MALFORMED"), 0u);
  // Each instance commits two oracles through the Pippenger kernel.
  EXPECT_GE(m.CounterValue("multiexp.calls"), 2 * kBeta);
  EXPECT_GE(m.HistogramValue("multiexp.terms").count,
            m.CounterValue("multiexp.calls"));
}

TEST_F(HarnessTraceTest, BatchExportsAsJson) {
  std::string json =
      obs::ExportJson(measurement_->trace.get(), measurement_->metrics.get());
  EXPECT_NE(json.find("\"harness.batch\""), std::string::npos);
  EXPECT_NE(json.find("\"transport.frames_sent\""), std::string::npos);
  EXPECT_NE(json.find("\"transport.frame_bytes\""), std::string::npos);
  EXPECT_EQ(json, obs::ExportJson(measurement_->trace.get(),
                                  measurement_->metrics.get()));
}

#endif  // ZAATAR_TRACE

}  // namespace
}  // namespace zaatar
