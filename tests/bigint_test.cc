#include "src/field/bigint.h"

#include <gtest/gtest.h>

#include "src/crypto/prg.h"

namespace zaatar {
namespace {

using B2 = BigInt<2>;
using B4 = BigInt<4>;

__uint128_t ToU128(const B2& b) {
  return (static_cast<__uint128_t>(b.limbs[1]) << 64) | b.limbs[0];
}

B2 FromU128(__uint128_t v) {
  B2 b;
  b.limbs[0] = static_cast<uint64_t>(v);
  b.limbs[1] = static_cast<uint64_t>(v >> 64);
  return b;
}

TEST(BigIntTest, ZeroAndOne) {
  EXPECT_TRUE(B2::Zero().IsZero());
  EXPECT_FALSE(B2::One().IsZero());
  EXPECT_TRUE(B2::One().IsOdd());
  EXPECT_EQ(B2::One().BitLength(), 1u);
  EXPECT_EQ(B2::Zero().BitLength(), 0u);
}

TEST(BigIntTest, CompareOrdersLexicographicallyFromHighLimb) {
  B2 small(uint64_t{5});
  B2 big;
  big.limbs[1] = 1;
  EXPECT_LT(small.Compare(big), 0);
  EXPECT_GT(big.Compare(small), 0);
  EXPECT_EQ(small.Compare(small), 0);
  EXPECT_TRUE(small < big);
  EXPECT_TRUE(big >= small);
}

TEST(BigIntTest, AddSubMatchU128) {
  Prg prg(1);
  for (int i = 0; i < 200; i++) {
    __uint128_t a = (static_cast<__uint128_t>(prg.NextU64()) << 64) |
                    prg.NextU64();
    __uint128_t b = (static_cast<__uint128_t>(prg.NextU64()) << 64) |
                    prg.NextU64();
    B2 ba = FromU128(a), bb = FromU128(b);
    EXPECT_EQ(ToU128(ba.Add(bb)), static_cast<__uint128_t>(a + b));
    EXPECT_EQ(ToU128(ba.Sub(bb)), static_cast<__uint128_t>(a - b));
  }
}

TEST(BigIntTest, AddReportsCarry) {
  B2 max;
  max.limbs[0] = max.limbs[1] = ~uint64_t{0};
  uint64_t carry = 0;
  B2 r = max.Add(B2::One(), &carry);
  EXPECT_TRUE(r.IsZero());
  EXPECT_EQ(carry, 1u);
}

TEST(BigIntTest, SubReportsBorrow) {
  uint64_t borrow = 0;
  B2 r = B2::Zero().Sub(B2::One(), &borrow);
  EXPECT_EQ(borrow, 1u);
  EXPECT_EQ(r.limbs[0], ~uint64_t{0});
  EXPECT_EQ(r.limbs[1], ~uint64_t{0});
}

TEST(BigIntTest, MulWideMatchesU128ForSingleLimbs) {
  Prg prg(2);
  for (int i = 0; i < 200; i++) {
    uint64_t a = prg.NextU64(), b = prg.NextU64();
    BigInt<1> ba(a), bb(b);
    BigInt<2> r = ba.MulWide(bb);
    __uint128_t expect = static_cast<__uint128_t>(a) * b;
    EXPECT_EQ(r.limbs[0], static_cast<uint64_t>(expect));
    EXPECT_EQ(r.limbs[1], static_cast<uint64_t>(expect >> 64));
  }
}

TEST(BigIntTest, ShiftRoundTrip) {
  Prg prg(3);
  for (int i = 0; i < 100; i++) {
    B4 v;
    for (auto& limb : v.limbs) {
      limb = prg.NextU64();
    }
    v.limbs[3] &= ~(uint64_t{1} << 63);  // make room for the left shift
    B4 w = v;
    w.Shl1InPlace();
    w.Shr1InPlace();
    EXPECT_EQ(w, v);
  }
}

TEST(BigIntTest, BitAccessMatchesShifts) {
  B4 v;
  v.limbs[0] = 0b1011;
  v.limbs[2] = uint64_t{1} << 17;
  EXPECT_TRUE(v.Bit(0));
  EXPECT_TRUE(v.Bit(1));
  EXPECT_FALSE(v.Bit(2));
  EXPECT_TRUE(v.Bit(3));
  EXPECT_TRUE(v.Bit(128 + 17));
  EXPECT_FALSE(v.Bit(128 + 18));
  EXPECT_EQ(v.BitLength(), 128u + 18u);
}

TEST(BigIntTest, DivModU64MatchesReference) {
  Prg prg(4);
  for (int i = 0; i < 200; i++) {
    __uint128_t a = (static_cast<__uint128_t>(prg.NextU64()) << 64) |
                    prg.NextU64();
    uint64_t d = prg.NextU64() | 1;
    B2 q = FromU128(a);
    uint64_t r = q.DivModU64InPlace(d);
    EXPECT_EQ(ToU128(q), static_cast<__uint128_t>(a / d));
    EXPECT_EQ(r, static_cast<uint64_t>(a % d));
  }
}

TEST(BigIntTest, ModU64) {
  Prg prg(5);
  for (int i = 0; i < 200; i++) {
    __uint128_t a = (static_cast<__uint128_t>(prg.NextU64()) << 64) |
                    prg.NextU64();
    uint64_t m = (prg.NextU64() | 1) >> 1 | 1;
    EXPECT_EQ(FromU128(a).ModU64(m), static_cast<uint64_t>(a % m));
  }
}

TEST(BigIntTest, AddModSubModStayReduced) {
  // Modulus with high bit set so sums overflow the word width.
  B2 m;
  m.limbs[0] = 0xffffffffffffff61ULL;
  m.limbs[1] = ~uint64_t{0};
  Prg prg(6);
  for (int i = 0; i < 200; i++) {
    B2 a = FromU128((static_cast<__uint128_t>(prg.NextU64()) << 64) |
                    prg.NextU64());
    B2 b = FromU128((static_cast<__uint128_t>(prg.NextU64()) << 64) |
                    prg.NextU64());
    if (a >= m) {
      a.SubInPlace(m);
    }
    if (b >= m) {
      b.SubInPlace(m);
    }
    B2 sum = AddMod(a, b, m);
    B2 diff = SubMod(a, b, m);
    EXPECT_LT(sum.Compare(m), 0);
    EXPECT_LT(diff.Compare(m), 0);
    // (a + b) - b == a
    EXPECT_EQ(SubMod(sum, b, m), a);
    // (a - b) + b == a
    EXPECT_EQ(AddMod(diff, b, m), a);
  }
}

TEST(BigIntTest, ResizeTruncatesAndExtends) {
  B4 v;
  v.limbs = {1, 2, 3, 4};
  BigInt<2> t = v.Resize<2>();
  EXPECT_EQ(t.limbs[0], 1u);
  EXPECT_EQ(t.limbs[1], 2u);
  BigInt<6> e = v.Resize<6>();
  EXPECT_EQ(e.limbs[3], 4u);
  EXPECT_EQ(e.limbs[5], 0u);
}

TEST(BigIntTest, ToHex) {
  B2 v(uint64_t{0xdeadbeef});
  EXPECT_EQ(v.ToHex(), "0xdeadbeef");
  EXPECT_EQ(B2::Zero().ToHex(), "0x0");
}

}  // namespace
}  // namespace zaatar
