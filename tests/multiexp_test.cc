// Differential property tests for the multi-exponentiation subsystem: the
// Pippenger InnerProduct and the fixed-base tables must be *bit-identical*
// to the naive paths (group arithmetic is exact, so any divergence is a
// bug, not rounding). Covers both field configurations and the degenerate
// shapes the commitment layer actually produces.

#include "src/crypto/multiexp.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/crypto/elgamal.h"
#include "src/crypto/prg.h"
#include "src/field/fields.h"

namespace zaatar {
namespace {

template <typename F>
class MultiExpTest : public ::testing::Test {};

using FieldTypes = ::testing::Types<F128, F220>;
TYPED_TEST_SUITE(MultiExpTest, FieldTypes);

template <typename F>
std::vector<typename ElGamal<F>::Ciphertext> EncryptVector(
    const typename ElGamal<F>::PublicKey& pk, const std::vector<F>& msgs,
    Prg& prg) {
  std::vector<typename ElGamal<F>::Ciphertext> cts;
  cts.reserve(msgs.size());
  for (const F& m : msgs) {
    cts.push_back(ElGamal<F>::Encrypt(pk, m, prg));
  }
  return cts;
}

template <typename F>
void ExpectBitIdentical(const std::vector<typename ElGamal<F>::Ciphertext>&
                            cts,
                        const std::vector<F>& u, size_t workers = 1) {
  using EG = ElGamal<F>;
  auto naive = EG::InnerProductNaive(cts.data(), u.data(), u.size());
  auto fast = EG::InnerProduct(cts.data(), u.data(), u.size(), workers);
  EXPECT_EQ(naive.c1, fast.c1);
  EXPECT_EQ(naive.c2, fast.c2);
}

TYPED_TEST(MultiExpTest, RandomVectorsMatchNaive) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  Prg prg(900);
  auto kp = EG::GenerateKeys(prg);
  for (size_t n : {2u, 3u, 17u, 64u, 200u}) {
    auto r = prg.template NextFieldVector<F>(n);
    auto u = prg.template NextFieldVector<F>(n);
    auto cts = EncryptVector<F>(kp.pk, r, prg);
    ExpectBitIdentical<F>(cts, u);
  }
}

TYPED_TEST(MultiExpTest, EdgeWeightsMatchNaive) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  Prg prg(901);
  auto kp = EG::GenerateKeys(prg);
  const size_t n = 40;
  auto r = prg.template NextFieldVector<F>(n);
  auto cts = EncryptVector<F>(kp.pk, r, prg);

  // All-zero weights (fully degenerate query vector).
  std::vector<F> zeros(n, F::Zero());
  ExpectBitIdentical<F>(cts, zeros);

  // Weights drawn from {0, 1, q-1} only.
  std::vector<F> edges(n);
  F qm1 = -F::One();  // q - 1, the largest canonical exponent
  for (size_t i = 0; i < n; i++) {
    edges[i] = i % 3 == 0 ? F::Zero() : (i % 3 == 1 ? F::One() : qm1);
  }
  ExpectBitIdentical<F>(cts, edges);

  // A mix of random and edge weights.
  auto u = prg.template NextFieldVector<F>(n);
  u[0] = F::Zero();
  u[1] = F::One();
  u[n - 1] = qm1;
  ExpectBitIdentical<F>(cts, u);
}

TYPED_TEST(MultiExpTest, TinyVectorsMatchNaive) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  Prg prg(902);
  auto kp = EG::GenerateKeys(prg);

  // n = 0: the empty product is the identity ciphertext on both paths.
  auto naive = EG::InnerProductNaive(nullptr, nullptr, 0);
  auto fast = EG::InnerProduct(nullptr, nullptr, 0);
  EXPECT_EQ(naive.c1, fast.c1);
  EXPECT_EQ(naive.c2, fast.c2);
  EXPECT_TRUE(fast.c1.IsOne());
  EXPECT_TRUE(fast.c2.IsOne());

  // n = 1 with random, zero, one, and q-1 weights.
  auto r = prg.template NextFieldVector<F>(1);
  auto cts = EncryptVector<F>(kp.pk, r, prg);
  for (const F& w : {prg.template NextField<F>(), F::Zero(), F::One(),
                     -F::One()}) {
    ExpectBitIdentical<F>(cts, std::vector<F>{w});
  }
}

TYPED_TEST(MultiExpTest, ChunkedParallelMatchesNaive) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  Prg prg(903);
  auto kp = EG::GenerateKeys(prg);
  const size_t n = 150;
  auto r = prg.template NextFieldVector<F>(n);
  auto u = prg.template NextFieldVector<F>(n);
  auto cts = EncryptVector<F>(kp.pk, r, prg);
  for (size_t workers : {2u, 3u, 7u}) {
    ExpectBitIdentical<F>(cts, u, workers);
  }
  // More workers than elements must still be correct (chunking degenerates).
  std::vector<F> tiny_u(u.begin(), u.begin() + 3);
  std::vector<typename EG::Ciphertext> tiny_cts(cts.begin(), cts.begin() + 3);
  ExpectBitIdentical<F>(tiny_cts, tiny_u, 16);
}

TYPED_TEST(MultiExpTest, FixedBaseTableMatchesPlainPow) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  using Zp = typename EG::Zp;
  Prg prg(904);
  auto kp = EG::GenerateKeys(prg);
  ASSERT_NE(kp.pk.g_table, nullptr);
  ASSERT_NE(kp.pk.h_table, nullptr);
  for (int i = 0; i < 20; i++) {
    typename F::Repr e = prg.template NextField<F>().ToCanonical();
    EXPECT_EQ(kp.pk.PowG(e), kp.pk.g.Pow(e));
    EXPECT_EQ(kp.pk.PowH(e), kp.pk.h.Pow(e));
  }
  // Exponent edge cases: 0, 1, q-1.
  typename F::Repr zero{}, one = F::One().ToCanonical(),
                   qm1 = (-F::One()).ToCanonical();
  for (const auto& e : {zero, one, qm1}) {
    EXPECT_EQ(kp.pk.PowG(e), kp.pk.g.Pow(e));
    EXPECT_EQ(kp.pk.PowH(e), kp.pk.h.Pow(e));
  }
  // An exponent wider than the table's coverage falls back to plain Pow.
  typename Zp::Repr wide = Zp::kFermatExponent;
  FixedBaseTable<Zp> table(kp.pk.g, F::kModulusBits);
  EXPECT_EQ(table.Pow(wide), kp.pk.g.Pow(wide));
}

TYPED_TEST(MultiExpTest, TablelessKeyStillEncrypts) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  Prg prg(905);
  auto kp = EG::GenerateKeys(prg);
  // Strip the tables: every operation must fall back to plain Pow and
  // produce byte-identical ciphertexts for the same Prg stream.
  auto bare = kp.pk;
  bare.g_table = nullptr;
  bare.h_table = nullptr;
  F m = prg.template NextField<F>();
  Prg stream_a(77), stream_b(77);
  auto ct_table = EG::Encrypt(kp.pk, m, stream_a);
  auto ct_plain = EG::Encrypt(bare, m, stream_b);
  EXPECT_EQ(ct_table.c1, ct_plain.c1);
  EXPECT_EQ(ct_table.c2, ct_plain.c2);
  EXPECT_EQ(EG::GroupEmbed(kp.pk, m), EG::GroupEmbed(bare, m));
}

TYPED_TEST(MultiExpTest, CiphertextPowShortCircuits) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  Prg prg(906);
  auto kp = EG::GenerateKeys(prg);
  auto ct = EG::Encrypt(kp.pk, prg.template NextField<F>(), prg);
  // s == 1 is the identity, s == 0 the deterministic zero encryption — both
  // must equal what the generic exponent walk produces.
  auto p1 = ct.Pow(F::One());
  EXPECT_EQ(p1.c1, ct.c1);
  EXPECT_EQ(p1.c2, ct.c2);
  auto p0 = ct.Pow(F::Zero());
  EXPECT_TRUE(p0.c1.IsOne());
  EXPECT_TRUE(p0.c2.IsOne());
  EXPECT_EQ(p0.c1, ct.c1.Pow(F::Zero().ToCanonical()));
  EXPECT_EQ(p1.c1, ct.c1.Pow(F::One().ToCanonical()));
}

// The vectorized exponentiation (packed radix-52 kernel where available,
// scalar windowed Pow elsewhere) must be bit-identical to the frozen
// bit-at-a-time reference on the 1024-bit group, across the exponent shapes
// that stress window scanning and the domain boundaries.
TYPED_TEST(MultiExpTest, PackedPowMatchesPowNaive) {
  using F = TypeParam;
  using EG = ElGamal<F>;
  using Zp = typename EG::Zp;
  Prg prg(907);
  auto widen = [](const typename F::Repr& small) {
    typename Zp::Repr wide{};
    for (size_t i = 0; i < small.limbs.size(); i++) {
      wide.limbs[i] = small.limbs[i];
    }
    return wide;
  };
  std::vector<typename Zp::Repr> exps;
  exps.push_back(typename Zp::Repr{});                    // 0
  exps.push_back(typename Zp::Repr(uint64_t{1}));         // 1
  exps.push_back(widen((-F::One()).ToCanonical()));       // q - 1
  exps.push_back(Zp::kFermatExponent);                    // 1022-bit walk
  for (size_t bit = 0; bit < 1024; bit += 97) {
    typename Zp::Repr lone{};
    lone.limbs[bit / 64] = uint64_t{1} << (bit % 64);
    exps.push_back(lone);                                 // single-bit
  }
  typename Zp::Repr dense;
  for (size_t limb = 0; limb < Zp::kLimbs; limb++) {
    dense.limbs[limb] = ~uint64_t{0};
  }
  exps.push_back(dense);                                  // maximally dense
  for (int i = 0; i < 5; i++) {
    exps.push_back(widen(prg.template NextField<F>().ToCanonical()));
  }
  const Zp g = EG::Generator();
  const Zp r = g * g * g;
  for (const auto& e : exps) {
    EXPECT_EQ(ifma52::PowAuto(g, e), g.PowNaive(e));
    EXPECT_EQ(ifma52::PowAuto(r, e), r.PowNaive(e));
  }
}

// Signed-digit recoding is exact: the digits reassemble to the exponent
// (checked in the scalar field, where sum_j d_j 2^(c j) can be evaluated
// directly), every digit fits [-2^(c-1), 2^(c-1)), and the extra top window
// only ever holds the carry.
TYPED_TEST(MultiExpTest, SignedDigitRecodeReassembles) {
  using F = TypeParam;
  Prg prg(908);
  for (size_t c : {1u, 4u, 7u, 10u, 16u}) {
    for (int trial = 0; trial < 8; trial++) {
      F x = prg.template NextField<F>();
      typename F::Repr e = x.ToCanonical();
      const size_t windows = (F::kModulusBits + c - 1) / c + 1;
      std::vector<int32_t> digits(windows);
      multiexp_internal::SignedDigits(e, c, windows, digits.data());
      const int64_t half = int64_t{1} << (c - 1);
      F acc = F::Zero();
      F scale = F::One();
      const F radix = F::FromUint(uint64_t{1} << c);
      for (size_t j = 0; j < windows; j++) {
        if (j + 1 < windows) {  // main windows: [-2^(c-1), 2^(c-1))
          EXPECT_GE(digits[j], -half);
          EXPECT_LT(digits[j], half);
        }
        acc += F::FromInt(digits[j]) * scale;
        scale *= radix;
      }
      EXPECT_EQ(acc, x);
      EXPECT_GE(digits[windows - 1], 0);  // top window: carry only
      EXPECT_LE(digits[windows - 1], 1);
    }
  }
}

TYPED_TEST(MultiExpTest, WindowChoiceIsSane) {
  EXPECT_GE(PippengerWindowBits(0, 0), 1u);
  EXPECT_GE(PippengerWindowBits(1, 128), 1u);
  EXPECT_LE(PippengerWindowBits(1u << 20, 256), 16u);
  // Larger inputs should never pick smaller windows.
  size_t prev = 1;
  for (size_t n = 2; n <= (1u << 16); n *= 4) {
    size_t c = PippengerWindowBits(n, 128);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

}  // namespace
}  // namespace zaatar
