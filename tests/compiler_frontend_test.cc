#include <gtest/gtest.h>

#include "src/compiler/lexer.h"
#include "src/compiler/parser.h"

namespace zaatar {
namespace {

TEST(LexerTest, TokenKindsAndPositions) {
  auto toks = Lex("x = a + 42;\ny = x * 2;");
  ASSERT_GE(toks.size(), 12u);
  EXPECT_EQ(toks[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks[0].text, "x");
  EXPECT_EQ(toks[0].line, 1u);
  EXPECT_EQ(toks[1].kind, TokenKind::kAssign);
  EXPECT_EQ(toks[3].kind, TokenKind::kPlus);
  EXPECT_EQ(toks[4].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(toks[4].int_value, 42);
  EXPECT_EQ(toks[6].line, 2u);
  EXPECT_EQ(toks.back().kind, TokenKind::kEnd);
}

TEST(LexerTest, KeywordsAndSizedInts) {
  auto toks = Lex("input int32 x; var int<77> y; bool b; rational<8,4> r;");
  EXPECT_EQ(toks[0].kind, TokenKind::kInput);
  EXPECT_EQ(toks[1].kind, TokenKind::kIntType);
  EXPECT_EQ(toks[1].int_value, 32);
  EXPECT_EQ(toks[5].kind, TokenKind::kIntType);
  EXPECT_EQ(toks[5].int_value, 0);  // generic int, width follows
  auto has = [&](TokenKind k) {
    for (const auto& t : toks) {
      if (t.kind == k) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has(TokenKind::kBoolType));
  EXPECT_TRUE(has(TokenKind::kRationalType));
}

TEST(LexerTest, TwoCharOperators) {
  auto toks = Lex("a <= b >= c == d != e && f || g .. h");
  std::vector<TokenKind> ops;
  for (const auto& t : toks) {
    if (t.kind != TokenKind::kIdentifier && t.kind != TokenKind::kEnd) {
      ops.push_back(t.kind);
    }
  }
  EXPECT_EQ(ops, (std::vector<TokenKind>{
                     TokenKind::kLessEq, TokenKind::kGreaterEq,
                     TokenKind::kEqEq, TokenKind::kNotEq, TokenKind::kAndAnd,
                     TokenKind::kOrOr, TokenKind::kDotDot}));
}

TEST(LexerTest, CommentsAreSkipped) {
  auto toks = Lex("a // line comment\n/* block\ncomment */ b");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[1].line, 3u);
}

TEST(LexerTest, RejectsBadCharacters) {
  EXPECT_THROW(Lex("a @ b"), CompileError);
  EXPECT_THROW(Lex("/* unterminated"), CompileError);
}

TEST(ParserTest, ProgramHeaderAndDeclarations) {
  auto ast = Parse(
      "program demo;\n"
      "const n = 4;\n"
      "input int32 a[n][2];\n"
      "output bool ok;\n"
      "var rational<8, 4> r;\n"
      "ok = true;\n");
  EXPECT_EQ(ast.name, "demo");
  ASSERT_EQ(ast.decls.size(), 4u);
  EXPECT_EQ(ast.decls[0].kind, Declaration::Kind::kConstant);
  EXPECT_EQ(ast.decls[1].kind, Declaration::Kind::kInput);
  EXPECT_EQ(ast.decls[1].dim_exprs.size(), 2u);
  EXPECT_EQ(ast.decls[2].kind, Declaration::Kind::kOutput);
  EXPECT_EQ(ast.decls[2].type.kind, TypeNode::Kind::kBool);
  EXPECT_EQ(ast.decls[3].type.kind, TypeNode::Kind::kRational);
  ASSERT_EQ(ast.body.size(), 1u);
  EXPECT_EQ(ast.body[0]->kind, Stmt::Kind::kAssign);
}

TEST(ParserTest, PrecedenceMulOverAdd) {
  auto ast = Parse("var int32 x; x = 1 + 2 * 3;");
  const Expr& e = *ast.body[0]->value;
  ASSERT_EQ(e.kind, Expr::Kind::kBinary);
  EXPECT_EQ(e.op, TokenKind::kPlus);
  EXPECT_EQ(e.children[1]->op, TokenKind::kStar);
}

TEST(ParserTest, ComparisonBindsLooserThanArithmetic) {
  auto ast = Parse("var bool b; b = 1 + 2 < 3 * 4;");
  const Expr& e = *ast.body[0]->value;
  EXPECT_EQ(e.op, TokenKind::kLess);
  EXPECT_EQ(e.children[0]->op, TokenKind::kPlus);
  EXPECT_EQ(e.children[1]->op, TokenKind::kStar);
}

TEST(ParserTest, TernaryAndLogical) {
  auto ast = Parse("var int32 x; x = a && b || c ? 1 : 2;");
  const Expr& e = *ast.body[0]->value;
  ASSERT_EQ(e.kind, Expr::Kind::kTernary);
  EXPECT_EQ(e.children[0]->op, TokenKind::kOrOr);
  EXPECT_EQ(e.children[0]->children[0]->op, TokenKind::kAndAnd);
}

TEST(ParserTest, IfElseChain) {
  auto ast = Parse(
      "var int32 x;\n"
      "if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }\n");
  const Stmt& s = *ast.body[0];
  EXPECT_EQ(s.kind, Stmt::Kind::kIf);
  ASSERT_EQ(s.else_body.size(), 1u);
  EXPECT_EQ(s.else_body[0]->kind, Stmt::Kind::kIf);
  EXPECT_EQ(s.else_body[0]->else_body.size(), 1u);
}

TEST(ParserTest, ForLoopWithExpressionBounds) {
  auto ast = Parse("const n = 9; for i in 1..n-1 { }");
  const Stmt& s = *ast.body[0];
  EXPECT_EQ(s.kind, Stmt::Kind::kFor);
  EXPECT_EQ(s.name, "i");
  EXPECT_EQ(s.lo->kind, Expr::Kind::kIntLit);
  EXPECT_EQ(s.hi->op, TokenKind::kMinus);
}

TEST(ParserTest, IndexedAssignmentAndReads) {
  auto ast = Parse("var int32 a[3][4]; a[1][2] = a[0][0] + 1;");
  const Stmt& s = *ast.body[0];
  EXPECT_EQ(s.indices.size(), 2u);
  EXPECT_EQ(s.value->children[0]->kind, Expr::Kind::kIndex);
}

TEST(ParserTest, IntWidthExpressionStopsAtGreater) {
  // Regression: int<80> must not parse "80 > name" as a comparison.
  auto ast = Parse("var int<80> x; x = 0;");
  EXPECT_EQ(ast.decls[0].type.kind, TypeNode::Kind::kInt);
  ASSERT_NE(ast.decls[0].width_expr, nullptr);
}

TEST(ParserTest, CallsWithMultipleArguments) {
  auto ast = Parse("var int32 x; x = min(a, max(b, 3));");
  const Expr& e = *ast.body[0]->value;
  EXPECT_EQ(e.kind, Expr::Kind::kCall);
  EXPECT_EQ(e.name, "min");
  ASSERT_EQ(e.children.size(), 2u);
  EXPECT_EQ(e.children[1]->name, "max");
}

TEST(ParserTest, ErrorsCarryPositions) {
  try {
    Parse("var int32 x;\nx = ;\n");
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
  EXPECT_THROW(Parse("input int32;"), CompileError);       // missing name
  EXPECT_THROW(Parse("for i in 1 { }"), CompileError);     // missing ..
  EXPECT_THROW(Parse("if a { }"), CompileError);           // missing parens
  EXPECT_THROW(Parse("var notatype x;"), CompileError);
}

}  // namespace
}  // namespace zaatar
