// The §4 degenerate-case analysis: dense degree-2 polynomial evaluation
// maximizes K2, collapsing Zaatar's proof-length advantage; the encoding
// chooser must detect it. Also covers the matrix-multiplication app.

#include <gtest/gtest.h>

#include "src/apps/degenerate.h"
#include "src/apps/harness.h"
#include "src/apps/suite.h"
#include "src/constraints/qap.h"
#include "src/constraints/transform.h"
#include "src/pcp/zaatar_pcp.h"

namespace zaatar {
namespace {

using F = F128;

MicroCosts PaperMicro() {
  MicroCosts m;
  m.e = 65e-6;
  m.d = 170e-6;
  m.h = 91e-6;
  m.f_lazy = 68e-9;
  m.f = 210e-9;
  m.f_div = 2e-6;
  m.c = 160e-9;
  return m;
}

TEST(DegenerateTest, HandEncodingIsSatisfiable) {
  Prg prg(200);
  auto d = BuildDegenerateQuadForm<F>(10, prg);
  auto x = prg.NextFieldVector<F>(10);
  auto w = d.MakeAssignment(x);
  EXPECT_TRUE(d.ginger.IsSatisfied(w));
  auto bad = w;
  bad.back() += F::One();  // wrong output value
  EXPECT_FALSE(d.ginger.IsSatisfied(bad));
}

TEST(DegenerateTest, K2IsMaximal) {
  Prg prg(201);
  size_t m = 12;
  auto d = BuildDegenerateQuadForm<F>(m, prg);
  EXPECT_EQ(d.ginger.DistinctQuadTermCount(), m * (m + 1) / 2);
  // |Z_ginger| = m, so K2* = (m^2 - m)/2 and K2 = K2* + m (the diagonal).
  ComputationStats s;
  s.z_ginger = d.ginger.layout.num_unbound;
  EXPECT_EQ(CostModel::K2Star(s), (m * m - m) / 2.0);
}

TEST(DegenerateTest, ZaatarProofNoLongerWinsButStaysWithinBound) {
  Prg prg(202);
  for (size_t m : {8u, 20u, 40u}) {
    auto d = BuildDegenerateQuadForm<F>(m, prg);
    auto t = GingerToZaatar(d.ginger, TransformOptions{false});
    size_t ug = d.ginger.layout.num_unbound +
                d.ginger.layout.num_unbound * d.ginger.layout.num_unbound;
    size_t uz = t.r1cs.layout.num_unbound + t.r1cs.NumConstraints() + 1;
    // Worst case of §4: |u_z| <= |u_g| (1 + 2/(|Z|+1)) (+O(1) from our
    // binding constraints and the +1 h-coefficient).
    double bound =
        ug * (1.0 + 2.0 / (d.ginger.layout.num_unbound + 1)) + 2 * m + 4;
    EXPECT_LE(static_cast<double>(uz), bound) << "m=" << m;
    // And it genuinely is the degenerate regime: no big win either way.
    EXPECT_GT(static_cast<double>(uz) / ug, 0.5) << "m=" << m;
  }
}

TEST(DegenerateTest, TransformedSystemStillProves) {
  // The degenerate encoding still runs through the full Zaatar PCP.
  Prg prg(203);
  auto d = BuildDegenerateQuadForm<F>(6, prg);
  auto t = GingerToZaatar(d.ginger, TransformOptions{false});
  auto x = prg.NextFieldVector<F>(6);
  auto w = t.ExtendAssignment(d.MakeAssignment(x));
  ASSERT_TRUE(t.r1cs.IsSatisfied(w));
  Qap<F> qap(t.r1cs);
  auto proof = BuildZaatarProof(qap, w);
  auto q = ZaatarPcp<F>::GenerateQueries(qap, PcpParams::Light(), prg);
  VectorOracle<F> oz(proof.z), oh(proof.h);
  std::vector<F> bound(w.begin() + t.r1cs.layout.num_unbound, w.end());
  EXPECT_TRUE(ZaatarPcp<F>::Decide(q, oz.QueryAll(q.z_queries),
                                   oh.QueryAll(q.h_queries), bound));
}

TEST(EncodingChooserTest, PicksGingerForDegenerateZaatarOtherwise) {
  CostModel model(PaperMicro(), PcpParams{});
  Prg prg(204);

  // Degenerate: K2 maximal.
  auto d = BuildDegenerateQuadForm<F>(64, prg);
  auto t = GingerToZaatar(d.ginger, TransformOptions{false});
  ComputationStats deg;
  deg.z_ginger = d.ginger.layout.num_unbound;
  deg.c_ginger = d.ginger.NumConstraints();
  deg.k = d.ginger.AdditiveTermCount();
  deg.k2 = d.ginger.DistinctQuadTermCount();
  deg.z_zaatar = t.r1cs.layout.num_unbound;
  deg.c_zaatar = t.r1cs.NumConstraints();
  EXPECT_EQ(model.ChooseEncoding(deg), CostModel::Encoding::kGinger);

  // A normal compiled benchmark: Zaatar by a mile.
  auto p = CompileZlang<F>(LcsSource(12));
  ComputationStats lcs = ComputeStats(p, 1e-6);
  EXPECT_EQ(model.ChooseEncoding(lcs), CostModel::Encoding::kZaatar);
}

TEST(MatMulAppTest, MatchesNativeAndSatisfies) {
  auto app = MakeMatMulApp(4);
  auto p = CompileZlang<F>(app.source);
  Prg prg(205);
  for (int k = 0; k < 3; k++) {
    auto inst = app.make_instance(prg);
    auto gw = p.SolveGinger(inst.inputs);
    ASSERT_TRUE(p.ginger.IsSatisfied(gw));
    ASSERT_TRUE(p.zaatar.r1cs.IsSatisfied(p.SolveZaatar(gw)));
    EXPECT_EQ(p.ExtractOutputs(gw), inst.expected_outputs);
  }
  // m^2 outputs, 2m^2 inputs.
  EXPECT_EQ(p.ginger.layout.num_outputs, 16u);
  EXPECT_EQ(p.ginger.layout.num_inputs, 32u);
}

TEST(MatMulAppTest, ConstraintCountIsCubic) {
  auto p3 = CompileZlang<F>(MatMulSource(3));
  auto p6 = CompileZlang<F>(MatMulSource(6));
  double ratio = static_cast<double>(p6.CGinger()) /
                 static_cast<double>(p3.CGinger());
  EXPECT_GT(ratio, 6.0);  // ~8x for doubling m
  EXPECT_LT(ratio, 10.0);
}

TEST(MatMulAppTest, EndToEndArgument) {
  auto app = MakeMatMulApp(3);
  auto program = CompileZlang<F>(app.source);
  auto m = MeasureZaatarBatch(app, program, 1, PcpParams::Light(), 206,
                              /*measure_native=*/false);
  EXPECT_TRUE(m.all_accepted);
}

}  // namespace
}  // namespace zaatar
