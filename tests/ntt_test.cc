#include "src/poly/ntt.h"

#include <gtest/gtest.h>

#include "src/crypto/prg.h"

namespace zaatar {
namespace {

TEST(MontField64Test, BasicArithmetic) {
  MontField64 f(kNttPrimes[0]);
  uint64_t a = f.ToMont(123456789);
  uint64_t b = f.ToMont(987654321);
  EXPECT_EQ(f.FromMont(f.Mul(a, b)),
            static_cast<uint64_t>((static_cast<__uint128_t>(123456789) *
                                   987654321) %
                                  kNttPrimes[0]));
  EXPECT_EQ(f.FromMont(f.Add(a, b)), (123456789ull + 987654321ull));
  EXPECT_EQ(f.FromMont(f.Sub(b, a)), (987654321ull - 123456789ull));
  EXPECT_EQ(f.FromMont(f.One()), 1u);
}

TEST(MontField64Test, InverseAndPow) {
  Prg prg(20);
  for (size_t pi = 0; pi < kNumNttPrimes; pi++) {
    MontField64 f(kNttPrimes[pi]);
    for (int i = 0; i < 20; i++) {
      uint64_t x = prg.NextU64() % kNttPrimes[pi];
      if (x == 0) {
        continue;
      }
      uint64_t xm = f.ToMont(x);
      EXPECT_EQ(f.Mul(xm, f.Inverse(xm)), f.One());
    }
  }
}

TEST(NttPrimesTest, PrimesAreMillerRabinPrime) {
  Prg prg(21);
  for (size_t pi = 0; pi < kNumNttPrimes; pi++) {
    const uint64_t p = kNttPrimes[pi];
    MontField64 f(p);
    uint64_t d = p - 1;
    size_t r = 0;
    while ((d & 1) == 0) {
      d >>= 1;
      r++;
    }
    EXPECT_GE(r, kNttTwoAdicity) << "prime " << pi << " lacks 2-adicity";
    for (int round = 0; round < 16; round++) {
      uint64_t a = prg.NextU64() % (p - 2) + 2;
      uint64_t x = f.Pow(f.ToMont(a), d);
      if (x == f.One() || x == f.Sub(0, f.One())) {
        continue;
      }
      bool witness = true;
      for (size_t i = 0; i + 1 < r; i++) {
        x = f.Mul(x, x);
        if (x == f.Sub(0, f.One())) {
          witness = false;
          break;
        }
      }
      EXPECT_FALSE(witness) << "prime " << pi << " fails Miller-Rabin";
    }
  }
}

TEST(NttPrimesTest, RootsHaveExactOrder) {
  for (size_t pi = 0; pi < kNumNttPrimes; pi++) {
    MontField64 f(kNttPrimes[pi]);
    uint64_t root = f.ToMont(kNttRoots[pi]);
    // root^(2^42) = 1 and root^(2^41) != 1.
    uint64_t x = root;
    for (size_t i = 0; i < kNttTwoAdicity - 1; i++) {
      x = f.Mul(x, x);
    }
    EXPECT_NE(x, f.One()) << "root order too small for prime " << pi;
    x = f.Mul(x, x);
    EXPECT_EQ(x, f.One()) << "root order too large for prime " << pi;
  }
}

TEST(NttPlanTest, ForwardInverseRoundTrip) {
  Prg prg(22);
  for (size_t log_n : {0u, 1u, 4u, 10u}) {
    const NttPlan& plan = GetNttPlan(0, log_n);
    const MontField64& f = plan.field();
    std::vector<uint64_t> data(plan.size());
    for (auto& x : data) {
      x = f.ToMont(prg.NextU64() % f.modulus());
    }
    std::vector<uint64_t> orig = data;
    plan.Forward(data.data());
    plan.Inverse(data.data());
    EXPECT_EQ(data, orig) << "log_n=" << log_n;
  }
}

TEST(NttPlanTest, ForwardMatchesDirectDft) {
  // n = 8: compare against the O(n^2) evaluation at root powers.
  const size_t kLogN = 3, kN = 8;
  const NttPlan& plan = GetNttPlan(1, kLogN);
  const MontField64& f = plan.field();
  Prg prg(23);
  std::vector<uint64_t> coeffs(kN);
  for (auto& c : coeffs) {
    c = prg.NextU64() % f.modulus();
  }
  std::vector<uint64_t> data(kN);
  for (size_t i = 0; i < kN; i++) {
    data[i] = f.ToMont(coeffs[i]);
  }
  plan.Forward(data.data());
  // Recover the order-8 root: root42^(2^(42-3)).
  uint64_t w = f.ToMont(kNttRoots[1]);
  for (size_t i = 0; i < kNttTwoAdicity - kLogN; i++) {
    w = f.Mul(w, w);
  }
  for (size_t k = 0; k < kN; k++) {
    uint64_t wk = f.Pow(w, k);
    uint64_t acc = 0;
    uint64_t pw = f.One();
    for (size_t j = 0; j < kN; j++) {
      acc = f.Add(acc, f.Mul(f.ToMont(coeffs[j]), pw));
      pw = f.Mul(pw, wk);
    }
    EXPECT_EQ(f.FromMont(data[k]), f.FromMont(acc)) << "bin " << k;
  }
}

TEST(TransposeTest, BlockedTransposeMatchesNaive) {
  Prg prg(25);
  for (auto [rows, cols] : {std::pair<size_t, size_t>{1, 1},
                            {7, 3},
                            {32, 32},
                            {33, 65},
                            {128, 64}}) {
    std::vector<uint64_t> src(rows * cols), dst(rows * cols, ~uint64_t{0});
    for (auto& x : src) {
      x = prg.NextU64();
    }
    TransposeBlocked(src.data(), dst.data(), rows, cols);
    for (size_t r = 0; r < rows; r++) {
      for (size_t c = 0; c < cols; c++) {
        ASSERT_EQ(dst[c * rows + r], src[r * cols + c])
            << rows << "x" << cols << " at (" << r << "," << c << ")";
      }
    }
  }
}

// The four-step decomposition must be bit-identical to the radix-2 plans in
// both directions — images produced by either path are mixed freely (cached
// NttImages vs fresh transforms), so ordering compatibility is load-bearing.
TEST(FourStepTest, MatchesRadix2Plans) {
  Prg prg(26);
  for (size_t pi : {size_t{0}, size_t{5}}) {
    const MontField64 f(kNttPrimes[pi]);
    for (size_t log_n : {size_t{2}, size_t{5}, size_t{9}, size_t{12}}) {
      size_t n = size_t{1} << log_n;
      std::vector<uint64_t> a(n);
      for (auto& x : a) {
        x = f.ToMont(prg.NextU64() % f.modulus());
      }
      std::vector<uint64_t> b = a;
      GetNttPlan(pi, log_n).Forward(a.data());
      NttForwardFourStep(pi, b.data(), log_n);
      EXPECT_EQ(a, b) << "forward, prime " << pi << " log_n " << log_n;
      GetNttPlan(pi, log_n).Inverse(a.data());
      NttInverseFourStep(pi, b.data(), log_n);
      EXPECT_EQ(a, b) << "inverse, prime " << pi << " log_n " << log_n;
    }
  }
}

TEST(FourStepTest, RoundTripAtDispatchThreshold) {
  // Exercise the size the dispatcher actually routes to the four-step path.
  const size_t log_n = kNttFourStepMinLogN;
  const MontField64 f(kNttPrimes[2]);
  Prg prg(27);
  size_t n = size_t{1} << log_n;
  std::vector<uint64_t> data(n);
  for (auto& x : data) {
    x = f.ToMont(prg.NextU64() % f.modulus());
  }
  std::vector<uint64_t> orig = data;
  NttForward(2, data.data(), log_n);
  EXPECT_NE(data, orig);
  NttInverse(2, data.data(), log_n);
  EXPECT_EQ(data, orig);
}

TEST(ConvolveTest, MatchesSchoolbook) {
  Prg prg(24);
  for (size_t pi : {size_t{0}, size_t{7}}) {
    const uint64_t p = kNttPrimes[pi];
    for (auto [na, nb] : {std::pair<size_t, size_t>{1, 1},
                          {3, 5},
                          {17, 4},
                          {64, 64},
                          {100, 33}}) {
      std::vector<uint64_t> a(na), b(nb);
      for (auto& x : a) {
        x = prg.NextU64() % p;
      }
      for (auto& x : b) {
        x = prg.NextU64() % p;
      }
      auto got = ConvolveModPrime(pi, a.data(), na, b.data(), nb);
      std::vector<uint64_t> expect(na + nb - 1, 0);
      for (size_t i = 0; i < na; i++) {
        for (size_t j = 0; j < nb; j++) {
          __uint128_t cur = static_cast<__uint128_t>(a[i]) * b[j] +
                            expect[i + j];
          expect[i + j] = static_cast<uint64_t>(cur % p);
        }
      }
      EXPECT_EQ(got, expect) << "prime " << pi << " sizes " << na << "x"
                             << nb;
    }
  }
}

}  // namespace
}  // namespace zaatar
