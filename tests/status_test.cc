// Unit tests for the Status/StatusOr error plumbing at the protocol
// boundary.

#include "src/util/status.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace zaatar {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = TruncatedError("needed 8 bytes");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTruncated);
  EXPECT_EQ(s.message(), "needed 8 bytes");
  EXPECT_EQ(s.ToString(), "TRUNCATED: needed 8 bytes");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kTruncated, StatusCode::kLengthOverflow,
        StatusCode::kOutOfRange, StatusCode::kMalformed,
        StatusCode::kPhaseViolation, StatusCode::kShapeMismatch}) {
    EXPECT_STRNE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(StatusTest, ShapeMismatchIsTyped) {
  Status s = ShapeMismatchError("oracle 1: 3 responses for 4 queries");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kShapeMismatch);
  EXPECT_EQ(s.ToString(),
            "SHAPE_MISMATCH: oracle 1: 3 responses for 4 queries");
}

TEST(StatusTest, PhaseViolationIsTyped) {
  Status s = PhaseViolationError("Commit requires phase COMMIT, in SETUP");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kPhaseViolation);
  EXPECT_EQ(s.ToString(),
            "PHASE_VIOLATION: Commit requires phase COMMIT, in SETUP");
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  EXPECT_TRUE(good.status().ok());

  StatusOr<int> bad = OutOfRangeError("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusOrTest, MoveOnlyValueTypes) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(v.ok());
  std::vector<int> taken = std::move(v).value();
  EXPECT_EQ(taken.size(), 3u);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) {
    return MalformedError("not positive");
  }
  return x;
}

StatusOr<int> SumOfParsed(int a, int b) {
  ZAATAR_ASSIGN_OR_RETURN(int pa, ParsePositive(a));
  ZAATAR_ASSIGN_OR_RETURN(int pb, ParsePositive(b));
  return pa + pb;
}

Status CheckParsed(int a) {
  ZAATAR_ASSIGN_OR_RETURN(int pa, ParsePositive(a));
  (void)pa;
  return Status::Ok();
}

TEST(StatusOrTest, AssignOrReturnPropagatesErrors) {
  auto ok = SumOfParsed(2, 3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);

  auto err = SumOfParsed(2, -1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kMalformed);

  EXPECT_TRUE(CheckParsed(1).ok());
  EXPECT_EQ(CheckParsed(0).code(), StatusCode::kMalformed);
}

}  // namespace
}  // namespace zaatar
