#include "src/pcp/ginger_pcp.h"

#include <gtest/gtest.h>

#include "src/field/fields.h"
#include "tests/test_util.h"

namespace zaatar {
namespace {

using F = F128;
using Pcp = GingerPcp<F>;

struct Fixture {
  RandomSystem<F> rs;
  GingerPcpInstance<F> instance;
  GingerProof<F> proof;
  std::vector<F> bound;

  static Fixture Make(Prg& prg, size_t num_unbound = 8,
                      size_t num_constraints = 14) {
    Fixture f;
    f.rs = MakeRandomSatisfiedSystem<F>(prg, num_unbound, 2, 2,
                                        num_constraints);
    f.instance = BuildGingerPcpInstance(f.rs.system);
    f.proof = BuildGingerProof(f.instance, f.rs.assignment);
    f.bound = f.rs.BoundValues();
    return f;
  }
};

std::pair<std::vector<F>, std::vector<F>> HonestResponses(
    const Pcp::Queries& q, const GingerProof<F>& proof) {
  VectorOracle<F> o1(proof.z), o2(proof.tensor);
  return {o1.QueryAll(q.pi1_queries), o2.QueryAll(q.pi2_queries)};
}

TEST(GingerPcpTest, ProofIsQuadraticInVariables) {
  Prg prg(90);
  auto f = Fixture::Make(prg);
  size_t n = f.instance.n;
  EXPECT_EQ(f.proof.z.size(), n);
  EXPECT_EQ(f.proof.tensor.size(), n * n);
  // tensor[i*n+k] = z_i * z_k.
  EXPECT_EQ(f.proof.tensor[3 * n + 5], f.proof.z[3] * f.proof.z[5]);
}

TEST(GingerPcpTest, CompletenessWithFullParams) {
  Prg prg(91);
  auto f = Fixture::Make(prg);
  auto q = Pcp::GenerateQueries(f.instance, PcpParams{}, prg);
  auto [r1, r2] = HonestResponses(q, f.proof);
  EXPECT_TRUE(Pcp::Decide(q, r1, r2, f.bound));
}

TEST(GingerPcpTest, RejectsWrongOutput) {
  Prg prg(92);
  auto f = Fixture::Make(prg);
  auto q = Pcp::GenerateQueries(f.instance, PcpParams::Light(), prg);
  auto [r1, r2] = HonestResponses(q, f.proof);
  for (size_t k = 0; k < f.bound.size(); k++) {
    auto bad = f.bound;
    bad[k] += F::One();
    EXPECT_FALSE(Pcp::Decide(q, r1, r2, bad)) << "bound value " << k;
  }
}

TEST(GingerPcpTest, RejectsWrongWitness) {
  Prg prg(93);
  auto f = Fixture::Make(prg);
  auto q = Pcp::GenerateQueries(f.instance, PcpParams::Light(), prg);
  for (int trial = 0; trial < 5; trial++) {
    auto bad_assignment = f.rs.assignment;
    bad_assignment[prg.NextBounded(f.rs.system.layout.num_unbound)] +=
        prg.NextNonzeroField<F>();
    auto bad_proof = BuildGingerProof(f.instance, bad_assignment);
    auto [r1, r2] = HonestResponses(q, bad_proof);
    EXPECT_FALSE(Pcp::Decide(q, r1, r2, f.bound)) << "trial " << trial;
  }
}

TEST(GingerPcpTest, QuadraticCorrectionCatchesMismatchedTensor) {
  // pi_2 = z' ⊗ z' for a different z': both oracles are linear, but the
  // tensor is not the square of the pi_1 vector.
  Prg prg(94);
  auto f = Fixture::Make(prg);
  auto other = f.rs.assignment;
  other[1] += F::One();
  auto other_proof = BuildGingerProof(f.instance, other);
  auto q = Pcp::GenerateQueries(f.instance, PcpParams::Light(), prg);
  VectorOracle<F> o1(f.proof.z), o2(other_proof.tensor);
  EXPECT_FALSE(Pcp::Decide(q, o1.QueryAll(q.pi1_queries),
                           o2.QueryAll(q.pi2_queries), f.bound));
}

TEST(GingerPcpTest, RejectsTensorOfDifferentVectorPair) {
  // pi_2[i,k] = z_i * y_k with y != z is linear but fails quad correction
  // with high probability.
  Prg prg(95);
  auto f = Fixture::Make(prg);
  size_t n = f.instance.n;
  auto y = prg.NextFieldVector<F>(n);
  std::vector<F> cross(n * n);
  for (size_t i = 0; i < n; i++) {
    for (size_t k = 0; k < n; k++) {
      cross[i * n + k] = f.proof.z[i] * y[k];
    }
  }
  auto q = Pcp::GenerateQueries(f.instance, PcpParams::Light(), prg);
  VectorOracle<F> o1(f.proof.z), o2(cross);
  EXPECT_FALSE(Pcp::Decide(q, o1.QueryAll(q.pi1_queries),
                           o2.QueryAll(q.pi2_queries), f.bound));
}

TEST(GingerPcpTest, BindingConstraintsPinInputsAndOutputs) {
  Prg prg(96);
  auto f = Fixture::Make(prg);
  EXPECT_EQ(f.instance.bindings.size(),
            f.rs.system.layout.num_inputs + f.rs.system.layout.num_outputs);
  // A proof whose proxy entries disagree with the bound values must fail.
  auto forged = f.rs.assignment;
  forged[f.rs.system.layout.FirstInput()] += F::One();
  // Recompute so the circuit constraints... they now fail; instead test the
  // opposite: circuit fine, but claimed bound values differ (covered by
  // RejectsWrongOutput). Here: assignment consistent with *different*
  // inputs should fail against the original bound values.
  Prg prg2(97);
  auto rs2 = MakeRandomSatisfiedSystem<F>(prg2, 8, 2, 2, 14);
  // Same shape, different witness & inputs. Use f's queries (same sizes).
  auto proof2 = BuildGingerProof(f.instance, rs2.assignment);
  auto q = Pcp::GenerateQueries(f.instance, PcpParams::Light(), prg);
  auto [r1, r2] = HonestResponses(q, proof2);
  EXPECT_FALSE(Pcp::Decide(q, r1, r2, f.bound));
}

TEST(GingerPcpTest, ProofLengthIsQuadraticVersusZaatarLinear) {
  // The headline contrast (Figure 9's |u| columns).
  Prg prg(98);
  auto f = Fixture::Make(prg, /*num_unbound=*/20, /*num_constraints=*/30);
  size_t n = f.instance.n;
  size_t ginger_len = n + n * n;
  EXPECT_EQ(f.proof.z.size() + f.proof.tensor.size(), ginger_len);
  EXPECT_GT(ginger_len, 24u * 24u);
}

}  // namespace
}  // namespace zaatar
