#include "src/argument/argument.h"

#include <gtest/gtest.h>

#include "src/constraints/qap.h"
#include "src/constraints/transform.h"
#include "src/field/fields.h"
#include "tests/test_util.h"

namespace zaatar {
namespace {

using F = F128;

struct ZaatarFixture {
  RandomSystem<F> rs;
  ZaatarTransform<F> transform;

  static ZaatarFixture Make(Prg& prg) {
    ZaatarFixture f;
    f.rs = MakeRandomSatisfiedSystem<F>(prg, 10, 3, 2, 16);
    f.transform = GingerToZaatar(f.rs.system);
    return f;
  }
};

TEST(ZaatarArgumentTest, BatchAcceptsHonestProver) {
  Prg prg(110);
  auto f = ZaatarFixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  auto queries = ZaatarPcp<F>::GenerateQueries(qap, PcpParams::Light(), prg);
  auto setup = ZaatarArgument<F>::Setup(std::move(queries), prg);

  // Batch: re-randomize the witness per "instance" by regenerating systems
  // is not possible (queries depend on constraints), so a batch here means
  // the same instance proven multiple times — the protocol path is the same.
  auto w = f.transform.ExtendAssignment(f.rs.assignment);
  auto proof = BuildZaatarProof(qap, w);
  for (int i = 0; i < 3; i++) {
    auto ip = ZaatarArgument<F>::Prove({&proof.z, &proof.h}, setup);
    EXPECT_TRUE(
        ZaatarArgument<F>::VerifyInstance(setup, ip, f.rs.BoundValues()));
  }
}

TEST(ZaatarArgumentTest, RejectsWrongOutputClaim) {
  Prg prg(111);
  auto f = ZaatarFixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  auto setup = ZaatarArgument<F>::Setup(
      ZaatarPcp<F>::GenerateQueries(qap, PcpParams::Light(), prg), prg);
  auto w = f.transform.ExtendAssignment(f.rs.assignment);
  auto proof = BuildZaatarProof(qap, w);
  auto ip = ZaatarArgument<F>::Prove({&proof.z, &proof.h}, setup);
  auto bad = f.rs.BoundValues();
  bad.back() += F::One();
  EXPECT_FALSE(ZaatarArgument<F>::VerifyInstance(setup, ip, bad));
}

TEST(ZaatarArgumentTest, RejectsTamperedResponsesViaCommitment) {
  Prg prg(112);
  auto f = ZaatarFixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  auto setup = ZaatarArgument<F>::Setup(
      ZaatarPcp<F>::GenerateQueries(qap, PcpParams::Light(), prg), prg);
  auto w = f.transform.ExtendAssignment(f.rs.assignment);
  auto proof = BuildZaatarProof(qap, w);
  auto ip = ZaatarArgument<F>::Prove({&proof.z, &proof.h}, setup);
  for (size_t oracle = 0; oracle < 2; oracle++) {
    auto tampered = ip;
    tampered.parts[oracle].responses[0] += F::One();
    EXPECT_FALSE(ZaatarArgument<F>::VerifyInstance(setup, tampered,
                                                   f.rs.BoundValues()))
        << "oracle " << oracle;
  }
}

TEST(ZaatarArgumentTest, RejectsCheatingWitnessEndToEnd) {
  Prg prg(113);
  auto f = ZaatarFixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  auto setup = ZaatarArgument<F>::Setup(
      ZaatarPcp<F>::GenerateQueries(qap, PcpParams::Light(), prg), prg);
  auto bad_w = f.transform.ExtendAssignment(f.rs.assignment);
  bad_w[2] += F::One();
  auto proof = BuildZaatarProof(qap, bad_w);
  auto ip = ZaatarArgument<F>::Prove({&proof.z, &proof.h}, setup);
  EXPECT_FALSE(
      ZaatarArgument<F>::VerifyInstance(setup, ip, f.rs.BoundValues()));
}

TEST(ZaatarArgumentTest, CostAccountingIsPopulated) {
  Prg prg(114);
  auto f = ZaatarFixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  auto setup = ZaatarArgument<F>::Setup(
      ZaatarPcp<F>::GenerateQueries(qap, PcpParams::Light(), prg), prg, 0.5);
  EXPECT_EQ(setup.costs.query_generation_s, 0.5);
  EXPECT_GT(setup.costs.commit_setup_s, 0.0);
  auto w = f.transform.ExtendAssignment(f.rs.assignment);
  auto proof = BuildZaatarProof(qap, w);
  auto ip = ZaatarArgument<F>::Prove({&proof.z, &proof.h}, setup);
  EXPECT_GT(ip.costs.crypto_s, 0.0);
  EXPECT_GT(ip.costs.answer_queries_s, 0.0);
  double verify_s = 0;
  ZaatarArgument<F>::VerifyInstance(setup, ip, f.rs.BoundValues(),
                                    &verify_s);
  EXPECT_GT(verify_s, 0.0);
}

TEST(GingerArgumentTest, EndToEndAcceptAndReject) {
  Prg prg(115);
  auto rs = MakeRandomSatisfiedSystem<F>(prg, 8, 2, 2, 14);
  auto inst = BuildGingerPcpInstance(rs.system);
  auto setup = GingerArgument<F>::Setup(
      GingerPcp<F>::GenerateQueries(inst, PcpParams::Light(), prg), prg);
  auto proof = BuildGingerProof(inst, rs.assignment);
  auto ip = GingerArgument<F>::Prove({&proof.z, &proof.tensor}, setup);
  EXPECT_TRUE(GingerArgument<F>::VerifyInstance(setup, ip, rs.BoundValues()));

  auto bad = rs.BoundValues();
  bad[0] += F::One();
  EXPECT_FALSE(GingerArgument<F>::VerifyInstance(setup, ip, bad));

  auto tampered = ip;
  tampered.parts[1].t_response += F::One();
  EXPECT_FALSE(
      GingerArgument<F>::VerifyInstance(setup, tampered, rs.BoundValues()));
}

TEST(ArgumentTest, SetupSizesMatchAdapters) {
  Prg prg(116);
  auto f = ZaatarFixture::Make(prg);
  Qap<F> qap(f.transform.r1cs);
  auto queries = ZaatarPcp<F>::GenerateQueries(qap, PcpParams::Light(), prg);
  size_t zq = queries.z_queries.size(), hq = queries.h_queries.size();
  size_t zl = queries.z_len, hl = queries.h_len;
  auto setup = ZaatarArgument<F>::Setup(std::move(queries), prg);
  EXPECT_EQ(setup.shared[0].enc_r.size(), zl);
  EXPECT_EQ(setup.shared[1].enc_r.size(), hl);
  EXPECT_EQ(setup.secrets.commit[0].alphas.size(), zq);
  EXPECT_EQ(setup.secrets.commit[1].alphas.size(), hq);
  EXPECT_EQ(setup.TotalQueryElements(), zq * zl + hq * hl);
}

}  // namespace
}  // namespace zaatar
