// The message-driven session layer: round trips and corruption sweeps for
// the three protocol messages, runtime phase enforcement in both state
// machines, and full prover/verifier exchanges over the loopback and
// socketpair transports (including a two-threaded batch, which is the TSan
// CI target for this layer).

#include "src/protocol/session.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "src/constraints/qap.h"
#include "src/constraints/transform.h"
#include "src/field/fields.h"
#include "src/pcp/zaatar_pcp.h"
#include "src/testing/fault_injection.h"
#include "tests/test_util.h"

namespace zaatar {
namespace {

using F = F128;
using Adapter = ZaatarAdapter<F>;
using Arg = ZaatarArgument<F>;
using protocol::ProverSession;
using protocol::SessionPhase;
using protocol::VerifierSession;

// A small honest Zaatar batch. Built in place (Qap points into
// transform.r1cs), never copied.
struct SessionFixture {
  Prg sys_prg;
  RandomSystem<F> rs;
  ZaatarTransform<F> transform;
  Qap<F> qap;
  ZaatarProof<F> proof;
  Prg setup_prg;
  VerifierSession<F, Adapter> verifier;

  explicit SessionFixture(uint64_t seed, size_t unbound = 8,
                          size_t constraints = 14)
      : sys_prg(seed),
        rs(MakeRandomSatisfiedSystem<F>(sys_prg, unbound, 2, 2, constraints)),
        transform(GingerToZaatar(rs.system)),
        qap(transform.r1cs),
        proof(BuildZaatarProof(qap, transform.ExtendAssignment(rs.assignment))),
        setup_prg(seed + 1),
        verifier(ZaatarPcp<F>::GenerateQueries(qap, PcpParams::Light(),
                                               setup_prg),
                 setup_prg) {}

  SessionFixture(const SessionFixture&) = delete;
  SessionFixture& operator=(const SessionFixture&) = delete;

  std::array<const std::vector<F>*, 2> Vectors() const {
    return {&proof.z, &proof.h};
  }
};

// ----- message round trips and corruption sweeps -----

// Every truncation point must yield a typed error.
template <typename Decode>
void ExpectTruncationSweepRejects(const std::vector<uint8_t>& bytes,
                                  Decode decode) {
  for (size_t len = 0; len < bytes.size(); len++) {
    auto corrupted = Corruptor::Truncate(bytes, len);
    auto result = decode(corrupted);
    ASSERT_FALSE(result.ok()) << "prefix of " << len << " bytes decoded";
    ASSERT_NE(result.status().code(), StatusCode::kOk);
  }
}

// Every single-bit flip must either fail with a typed error or decode to a
// message whose canonical re-encoding is exactly the corrupted bytes (the
// wire format carries no redundancy, so decode ∘ encode must be the
// identity on every accepted byte string) — and never crash.
template <typename Decode, typename Reencode>
void ExpectBitFlipSweepIsClean(const std::vector<uint8_t>& bytes,
                               Decode decode, Reencode reencode) {
  for (size_t bit = 0; bit < bytes.size() * 8; bit++) {
    auto corrupted = Corruptor::FlipBit(bytes, bit);
    auto result = decode(corrupted);
    if (result.ok()) {
      ASSERT_EQ(reencode(*result), corrupted)
          << "bit " << bit << " decoded non-canonically";
    } else {
      ASSERT_NE(result.status().code(), StatusCode::kOk);
    }
  }
}

TEST(ProtocolMessageTest, SetupMessageRoundTripAndSweeps) {
  // Tiny system: the sweeps decode the message once per byte/bit.
  SessionFixture f(500, /*unbound=*/4, /*constraints=*/6);
  auto msg = f.verifier.setup().ToSetupMessage();
  auto bytes = msg.Serialize();

  auto decoded = protocol::SetupMessage<F>::Deserialize(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->pk.g, msg.pk.g);
  EXPECT_EQ(decoded->pk.h, msg.pk.h);
  for (size_t o = 0; o < 2; o++) {
    EXPECT_EQ(decoded->oracles[o].queries, msg.oracles[o].queries);
    EXPECT_EQ(decoded->oracles[o].t, msg.oracles[o].t);
    ASSERT_EQ(decoded->oracles[o].enc_r.size(), msg.oracles[o].enc_r.size());
    for (size_t i = 0; i < msg.oracles[o].enc_r.size(); i++) {
      EXPECT_EQ(decoded->oracles[o].enc_r[i].c1, msg.oracles[o].enc_r[i].c1);
      EXPECT_EQ(decoded->oracles[o].enc_r[i].c2, msg.oracles[o].enc_r[i].c2);
    }
  }

  ExpectTruncationSweepRejects(bytes, [](const std::vector<uint8_t>& b) {
    return protocol::SetupMessage<F>::Deserialize(b);
  });
  ExpectBitFlipSweepIsClean(
      bytes,
      [](const std::vector<uint8_t>& b) {
        return protocol::SetupMessage<F>::Deserialize(b);
      },
      [](const protocol::SetupMessage<F>& m) { return m.Serialize(); });
}

TEST(ProtocolMessageTest, ProofMessageRoundTripAndSweeps) {
  SessionFixture f(501, /*unbound=*/4, /*constraints=*/6);
  auto ip = Arg::Prove(f.Vectors(), f.verifier.setup());
  protocol::ProofMessage<F> msg;
  msg.instance_index = 7;
  for (size_t o = 0; o < 2; o++) {
    msg.commitments[o] = ip.parts[o].commitment;
    msg.responses[o] = ip.parts[o].responses;
    msg.t_responses[o] = ip.parts[o].t_response;
  }
  auto bytes = msg.Serialize();

  auto decoded = protocol::ProofMessage<F>::Deserialize(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->instance_index, 7u);
  for (size_t o = 0; o < 2; o++) {
    EXPECT_EQ(decoded->commitments[o].c1, msg.commitments[o].c1);
    EXPECT_EQ(decoded->commitments[o].c2, msg.commitments[o].c2);
    EXPECT_EQ(decoded->responses[o], msg.responses[o]);
    EXPECT_EQ(decoded->t_responses[o], msg.t_responses[o]);
  }

  ExpectTruncationSweepRejects(bytes, [](const std::vector<uint8_t>& b) {
    return protocol::ProofMessage<F>::Deserialize(b);
  });
  ExpectBitFlipSweepIsClean(
      bytes,
      [](const std::vector<uint8_t>& b) {
        return protocol::ProofMessage<F>::Deserialize(b);
      },
      [](const protocol::ProofMessage<F>& m) { return m.Serialize(); });
}

TEST(ProtocolMessageTest, VerdictMessageRoundTripAndSweeps) {
  protocol::VerdictMessage msg = protocol::VerdictMessage::FromResult(
      3, VerifyInstanceResult::Reject(VerifyVerdict::kRejectCommit,
                                      "oracle 1 commitment inconsistent"));
  auto bytes = msg.Serialize();

  auto decoded = protocol::VerdictMessage::Deserialize(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->instance_index, 3u);
  EXPECT_EQ(decoded->verdict, VerifyVerdict::kRejectCommit);
  EXPECT_EQ(decoded->detail, "oracle 1 commitment inconsistent");

  ExpectTruncationSweepRejects(bytes, [](const std::vector<uint8_t>& b) {
    return protocol::VerdictMessage::Deserialize(b);
  });
  ExpectBitFlipSweepIsClean(
      bytes,
      [](const std::vector<uint8_t>& b) {
        return protocol::VerdictMessage::Deserialize(b);
      },
      [](const protocol::VerdictMessage& m) { return m.Serialize(); });

  // An out-of-taxonomy verdict value is typed, not UB.
  auto hostile = Corruptor::PatchU32(bytes, 4, 0xFFFFFFFFu);
  auto bad = protocol::VerdictMessage::Deserialize(hostile);
  ASSERT_FALSE(bad.ok());
}

TEST(ProtocolMessageTest, VerdictDetailIsBounded) {
  protocol::VerdictMessage msg;
  msg.verdict = VerifyVerdict::kMalformed;
  msg.detail.assign(protocol::kMaxVerdictDetailBytes + 1, 'x');
  auto bytes = msg.Serialize();
  auto decoded = protocol::VerdictMessage::Deserialize(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kLengthOverflow);

  // FromResult truncates instead of producing an unencodable message.
  VerifyInstanceResult r = VerifyInstanceResult::Reject(
      VerifyVerdict::kMalformed,
      std::string(2 * protocol::kMaxVerdictDetailBytes, 'y'));
  auto bounded = protocol::VerdictMessage::FromResult(0, r);
  EXPECT_EQ(bounded.detail.size(), protocol::kMaxVerdictDetailBytes);
  EXPECT_TRUE(protocol::VerdictMessage::Deserialize(bounded.Serialize()).ok());
}

// The prover's context reconstructed from bytes must equal the verifier's
// in-process ProverView — serialization loses nothing the prover needs.
TEST(ProtocolMessageTest, ProverContextFromBytesMatchesProverView) {
  SessionFixture f(502, /*unbound=*/4, /*constraints=*/6);
  auto view = f.verifier.setup().ProverView();
  auto from_bytes = ProverContext<F>::FromBytes(
      f.verifier.setup().ToSetupMessage().Serialize());
  ASSERT_TRUE(from_bytes.ok()) << from_bytes.status().ToString();
  EXPECT_EQ(from_bytes->pk.g, view.pk.g);
  EXPECT_EQ(from_bytes->pk.h, view.pk.h);
  for (size_t o = 0; o < 2; o++) {
    EXPECT_EQ(from_bytes->oracles[o].queries, view.oracles[o].queries);
    EXPECT_EQ(from_bytes->oracles[o].t, view.oracles[o].t);
    ASSERT_EQ(from_bytes->oracles[o].enc_r.size(),
              view.oracles[o].enc_r.size());
    for (size_t i = 0; i < view.oracles[o].enc_r.size(); i++) {
      EXPECT_EQ(from_bytes->oracles[o].enc_r[i].c1,
                view.oracles[o].enc_r[i].c1);
      EXPECT_EQ(from_bytes->oracles[o].enc_r[i].c2,
                view.oracles[o].enc_r[i].c2);
    }
  }

  // And a proof generated from the byte-derived context is accepted by the
  // real verifier: the two-party path proves against the same material.
  auto ip = Arg::Prove(f.Vectors(), *from_bytes);
  EXPECT_TRUE(
      Arg::VerifyInstance(f.verifier.setup(), ip, f.rs.BoundValues()));
}

// Cross-field invariants the structural decoder cannot see are enforced in
// ProverContext::FromMessage.
TEST(ProtocolMessageTest, ProverContextRejectsInconsistentMessage) {
  SessionFixture f(503, /*unbound=*/4, /*constraints=*/6);
  {
    auto msg = f.verifier.setup().ToSetupMessage();
    msg.oracles[0].t.pop_back();
    auto ctx = ProverContext<F>::FromMessage(std::move(msg));
    ASSERT_FALSE(ctx.ok());
    EXPECT_EQ(ctx.status().code(), StatusCode::kMalformed);
  }
  {
    auto msg = f.verifier.setup().ToSetupMessage();
    if (!msg.oracles[1].queries.empty()) {
      msg.oracles[1].queries[0].push_back(F::One());
    }
    auto ctx = ProverContext<F>::FromMessage(std::move(msg));
    ASSERT_FALSE(ctx.ok());
    EXPECT_EQ(ctx.status().code(), StatusCode::kMalformed);
  }
}

// ----- phase enforcement -----

TEST(ProtocolPhaseTest, VerifierSessionEnforcesPhases) {
  SessionFixture f(504);
  auto& v = f.verifier;

  // Commit/Decide operations before setup was emitted.
  auto early = v.HandleProof({}, {});
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.status().code(), StatusCode::kPhaseViolation);
  auto early_verdict = v.EmitVerdict();
  ASSERT_FALSE(early_verdict.ok());
  EXPECT_EQ(early_verdict.status().code(), StatusCode::kPhaseViolation);

  ASSERT_TRUE(v.EmitSetup().ok());
  EXPECT_EQ(v.phase(), SessionPhase::kCommit);

  // Setup is once per batch.
  auto again = v.EmitSetup();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kPhaseViolation);

  // A verdict can only follow a handled proof.
  auto no_proof = v.EmitVerdict();
  ASSERT_FALSE(no_proof.ok());
  EXPECT_EQ(no_proof.status().code(), StatusCode::kPhaseViolation);

  auto ip = Arg::Prove(f.Vectors(), v.setup());
  protocol::ProofMessage<F> msg;
  msg.instance_index = 0;
  for (size_t o = 0; o < 2; o++) {
    msg.commitments[o] = ip.parts[o].commitment;
    msg.responses[o] = ip.parts[o].responses;
    msg.t_responses[o] = ip.parts[o].t_response;
  }
  auto result = v.HandleProof(msg.Serialize(), f.rs.BoundValues());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->accepted()) << result->detail;
  EXPECT_EQ(v.phase(), SessionPhase::kDecide);

  // Two proofs without an intervening verdict violate the cycle.
  auto second = v.HandleProof(msg.Serialize(), f.rs.BoundValues());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kPhaseViolation);

  ASSERT_TRUE(v.EmitVerdict().ok());
  EXPECT_EQ(v.phase(), SessionPhase::kCommit);
}

TEST(ProtocolPhaseTest, ProverSessionEnforcesPhases) {
  SessionFixture f(505);
  ProverSession<F> p;

  // Everything but setup is out of phase initially.
  auto early_commit = p.Commit(f.Vectors());
  EXPECT_EQ(early_commit.code(), StatusCode::kPhaseViolation);
  auto early_decommit = p.Decommit();
  ASSERT_FALSE(early_decommit.ok());
  EXPECT_EQ(early_decommit.status().code(), StatusCode::kPhaseViolation);
  auto early_verdict = p.IngestVerdict({});
  ASSERT_FALSE(early_verdict.ok());
  EXPECT_EQ(early_verdict.status().code(), StatusCode::kPhaseViolation);

  auto setup_bytes = f.verifier.EmitSetup();
  ASSERT_TRUE(setup_bytes.ok());
  ASSERT_TRUE(p.IngestSetup(*setup_bytes).ok());
  EXPECT_EQ(p.phase(), SessionPhase::kCommit);

  // Setup is once per batch; Decommit needs a commitment first.
  EXPECT_EQ(p.IngestSetup(*setup_bytes).code(),
            StatusCode::kPhaseViolation);
  auto no_commit = p.Decommit();
  ASSERT_FALSE(no_commit.ok());
  EXPECT_EQ(no_commit.status().code(), StatusCode::kPhaseViolation);

  ASSERT_TRUE(p.Commit(f.Vectors()).ok());
  EXPECT_EQ(p.phase(), SessionPhase::kDecommit);
  EXPECT_EQ(p.Commit(f.Vectors()).code(), StatusCode::kPhaseViolation);

  auto proof_bytes = p.Decommit();
  ASSERT_TRUE(proof_bytes.ok());
  EXPECT_EQ(p.phase(), SessionPhase::kDecide);

  // The verdict must be for the in-flight instance.
  auto result = f.verifier.HandleProof(*proof_bytes, f.rs.BoundValues());
  ASSERT_TRUE(result.ok());
  auto verdict_bytes = f.verifier.EmitVerdict();
  ASSERT_TRUE(verdict_bytes.ok());
  auto ingested = p.IngestVerdict(*verdict_bytes);
  ASSERT_TRUE(ingested.ok());
  EXPECT_TRUE(ingested->accepted());
  EXPECT_EQ(p.phase(), SessionPhase::kCommit);
  EXPECT_EQ(p.next_instance(), 1u);

  // Replaying instance 0's verdict against instance 1 is malformed.
  ASSERT_TRUE(p.Commit(f.Vectors()).ok());
  ASSERT_TRUE(p.Decommit().ok());
  auto replay = p.IngestVerdict(*verdict_bytes);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kMalformed);
}

// The prover rejects vectors whose shape disagrees with the ingested setup
// before any cryptography runs.
TEST(ProtocolPhaseTest, ProverValidatesVectorShapes) {
  SessionFixture f(506);
  ProverSession<F> p;
  auto setup_bytes = f.verifier.EmitSetup();
  ASSERT_TRUE(setup_bytes.ok());
  ASSERT_TRUE(p.IngestSetup(*setup_bytes).ok());

  std::vector<F> short_z(f.proof.z.begin(), f.proof.z.end() - 1);
  auto bad = p.Commit({&short_z, &f.proof.h});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kMalformed);
  EXPECT_EQ(p.phase(), SessionPhase::kCommit);  // still usable

  ASSERT_TRUE(p.Commit(f.Vectors()).ok());
}

// ----- hostile bytes into a live verifier session -----

// Undecodable or replayed proof frames consume the instance slot with a
// kMalformed verdict and leave the session able to verify the next honest
// instance — the PR-1 batch isolation contract at the session layer.
TEST(ProtocolSessionTest, HostileProofBytesAreIsolatedPerInstance) {
  SessionFixture f(507);
  auto& v = f.verifier;
  ASSERT_TRUE(v.EmitSetup().ok());

  auto hostile = v.HandleProof({0xFF, 0x00, 0xBA, 0xAD}, f.rs.BoundValues());
  ASSERT_TRUE(hostile.ok());
  EXPECT_EQ(hostile->verdict, VerifyVerdict::kMalformed);
  ASSERT_TRUE(v.EmitVerdict().ok());

  // Instance 1: an honest proof mislabeled as instance 0 (a replay).
  auto ip = Arg::Prove(f.Vectors(), v.setup());
  protocol::ProofMessage<F> msg;
  msg.instance_index = 0;
  for (size_t o = 0; o < 2; o++) {
    msg.commitments[o] = ip.parts[o].commitment;
    msg.responses[o] = ip.parts[o].responses;
    msg.t_responses[o] = ip.parts[o].t_response;
  }
  auto replay = v.HandleProof(msg.Serialize(), f.rs.BoundValues());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->verdict, VerifyVerdict::kMalformed);
  ASSERT_TRUE(v.EmitVerdict().ok());

  // Instance 2: honest and correctly labeled — accepted.
  msg.instance_index = 2;
  auto honest = v.HandleProof(msg.Serialize(), f.rs.BoundValues());
  ASSERT_TRUE(honest.ok());
  EXPECT_TRUE(honest->accepted()) << honest->detail;

  ASSERT_EQ(v.results().size(), 3u);
  EXPECT_FALSE(v.results()[0].accepted());
  EXPECT_FALSE(v.results()[1].accepted());
  EXPECT_TRUE(v.results()[2].accepted());
}

// ----- transports -----

TEST(ProtocolTransportTest, LoopbackPreservesFramesAndSignalsClose) {
  auto pair = protocol::MakeLoopbackPair();
  std::vector<uint8_t> frame = {1, 2, 3, 4, 5};
  ASSERT_TRUE(pair.left->Send(frame).ok());
  ASSERT_TRUE(pair.left->Send({}).ok());  // empty frames are legal
  auto got = pair.right->Receive();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, frame);
  auto empty = pair.right->Receive();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  pair.left->Close();
  auto closed = pair.right->Receive();
  ASSERT_FALSE(closed.ok());
  EXPECT_EQ(closed.status().code(), StatusCode::kTruncated);
  auto send_after = pair.right->Send(frame);
  ASSERT_FALSE(send_after.ok());
}

TEST(ProtocolTransportTest, PipePreservesFramesAcrossThreads) {
  auto pair_or = protocol::PipeTransport::CreatePair();
  ASSERT_TRUE(pair_or.ok()) << pair_or.status().ToString();
  auto pair = std::move(*pair_or);

  // A frame larger than a socket buffer forces partial writes/reads, so the
  // sender must run concurrently with the receiver.
  std::vector<uint8_t> big(1 << 21);
  for (size_t i = 0; i < big.size(); i++) {
    big[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  std::thread sender([&] {
    ASSERT_TRUE(pair.left->Send(big).ok());
    ASSERT_TRUE(pair.left->Send({9, 9, 9}).ok());
    pair.left->Close();
  });
  auto got = pair.right->Receive();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, big);
  auto small = pair.right->Receive();
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(*small, (std::vector<uint8_t>{9, 9, 9}));
  auto eof = pair.right->Receive();
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kTruncated);
  sender.join();
}

// A hostile peer writing a raw length prefix over the cap must get a typed
// overflow before the receiver allocates anything. The public Send() always
// writes honest prefixes, so the hostile side writes to the socket directly.
TEST(ProtocolTransportTest, PipeRejectsHostileLengthPrefix) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  protocol::PipeTransport receiver(fds[0]);
  const uint8_t evil[4] = {0xFF, 0xFF, 0xFF, 0xFF};  // ~4 GiB claim
  ASSERT_EQ(::send(fds[1], evil, 4, 0), 4);
  auto got = receiver.Receive();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kLengthOverflow);
  ::close(fds[1]);
}

// A truncated frame (honest prefix, missing body) is a typed truncation.
TEST(ProtocolTransportTest, PipeRejectsTruncatedFrame) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  protocol::PipeTransport receiver(fds[0]);
  const uint8_t header[4] = {16, 0, 0, 0};  // claims 16 bytes
  ASSERT_EQ(::send(fds[1], header, 4, 0), 4);
  const uint8_t body[8] = {1, 2, 3, 4, 5, 6, 7, 8};  // only 8 arrive
  ASSERT_EQ(::send(fds[1], body, 8, 0), 8);
  ::shutdown(fds[1], SHUT_WR);
  auto got = receiver.Receive();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kTruncated);
  ::close(fds[1]);
}

// ----- full exchanges -----

// Drives a beta-instance batch with the prover on its own thread over the
// given transport pair; asserts both sides agree and everything accepts.
void RunTwoThreadedBatch(SessionFixture& f, protocol::TransportPair pair,
                         size_t beta) {
  std::vector<VerifyInstanceResult> prover_seen;
  std::thread prover_thread([&] {
    ProverSession<F> session;
    ASSERT_TRUE(session.ReceiveSetup(*pair.right).ok());
    for (size_t i = 0; i < beta; i++) {
      auto sent = session.ProveInstance(*pair.right, f.Vectors());
      ASSERT_TRUE(sent.ok()) << sent.status().ToString();
      auto verdict = session.ReceiveVerdict(*pair.right);
      ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
      prover_seen.push_back(*verdict);
    }
  });

  ASSERT_TRUE(f.verifier.SendSetup(*pair.left).ok());
  for (size_t i = 0; i < beta; i++) {
    auto result = f.verifier.DecideNext(*pair.left, f.rs.BoundValues());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->accepted()) << "instance " << i << ": "
                                    << result->detail;
  }
  prover_thread.join();

  ASSERT_EQ(prover_seen.size(), beta);
  ASSERT_EQ(f.verifier.results().size(), beta);
  for (size_t i = 0; i < beta; i++) {
    EXPECT_EQ(prover_seen[i].verdict, f.verifier.results()[i].verdict);
    EXPECT_TRUE(prover_seen[i].accepted());
  }
  EXPECT_GT(f.verifier.setup_bytes_sent(), 0u);
  EXPECT_GT(f.verifier.proof_bytes_received(), 0u);
}

TEST(ProtocolSessionTest, TwoThreadedBatchOverLoopback) {
  SessionFixture f(508);
  RunTwoThreadedBatch(f, protocol::MakeLoopbackPair(), 3);
}

TEST(ProtocolSessionTest, TwoThreadedBatchOverSocketpair) {
  SessionFixture f(509);
  auto pair = protocol::PipeTransport::CreatePair();
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  RunTwoThreadedBatch(f, std::move(*pair), 3);
}

// A cheating prover over the real transport: the tampered instance gets its
// typed reject delivered as a VerdictMessage, honest neighbors accept.
TEST(ProtocolSessionTest, CheatingInstanceGetsTypedVerdictOverTransport) {
  SessionFixture f(510);
  auto pair = protocol::MakeLoopbackPair();

  std::vector<VerifyInstanceResult> prover_seen;
  std::thread prover_thread([&] {
    ProverSession<F> session;
    ASSERT_TRUE(session.ReceiveSetup(*pair.right).ok());
    for (size_t i = 0; i < 3; i++) {
      if (i == 1) {
        // Commit honestly, then tamper with a response after the fact.
        ASSERT_TRUE(session.Commit(f.Vectors()).ok());
        auto frame = session.Decommit();
        ASSERT_TRUE(frame.ok());
        auto msg = protocol::ProofMessage<F>::Deserialize(*frame);
        ASSERT_TRUE(msg.ok());
        msg->responses[0][0] += F::One();
        ASSERT_TRUE(pair.right->Send(msg->Serialize()).ok());
      } else {
        ASSERT_TRUE(session.ProveInstance(*pair.right, f.Vectors()).ok());
      }
      auto verdict = session.ReceiveVerdict(*pair.right);
      ASSERT_TRUE(verdict.ok());
      prover_seen.push_back(*verdict);
    }
  });

  ASSERT_TRUE(f.verifier.SendSetup(*pair.left).ok());
  for (size_t i = 0; i < 3; i++) {
    auto result = f.verifier.DecideNext(*pair.left, f.rs.BoundValues());
    ASSERT_TRUE(result.ok());
  }
  prover_thread.join();

  ASSERT_EQ(prover_seen.size(), 3u);
  EXPECT_EQ(prover_seen[0].verdict, VerifyVerdict::kAccept);
  EXPECT_EQ(prover_seen[1].verdict, VerifyVerdict::kRejectCommit);
  EXPECT_EQ(prover_seen[2].verdict, VerifyVerdict::kAccept);
}

}  // namespace
}  // namespace zaatar
