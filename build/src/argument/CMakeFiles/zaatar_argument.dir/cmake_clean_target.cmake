file(REMOVE_RECURSE
  "libzaatar_argument.a"
)
