# Empty dependencies file for zaatar_argument.
# This may be replaced when dependencies are built.
