file(REMOVE_RECURSE
  "CMakeFiles/zaatar_argument.dir/cost_model.cc.o"
  "CMakeFiles/zaatar_argument.dir/cost_model.cc.o.d"
  "libzaatar_argument.a"
  "libzaatar_argument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zaatar_argument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
