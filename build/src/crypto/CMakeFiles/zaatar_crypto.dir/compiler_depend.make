# Empty compiler generated dependencies file for zaatar_crypto.
# This may be replaced when dependencies are built.
