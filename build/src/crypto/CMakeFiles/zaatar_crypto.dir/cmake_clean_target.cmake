file(REMOVE_RECURSE
  "libzaatar_crypto.a"
)
