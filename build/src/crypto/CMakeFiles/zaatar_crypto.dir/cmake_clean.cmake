file(REMOVE_RECURSE
  "CMakeFiles/zaatar_crypto.dir/chacha.cc.o"
  "CMakeFiles/zaatar_crypto.dir/chacha.cc.o.d"
  "libzaatar_crypto.a"
  "libzaatar_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zaatar_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
