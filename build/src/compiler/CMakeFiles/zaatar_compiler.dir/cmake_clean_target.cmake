file(REMOVE_RECURSE
  "libzaatar_compiler.a"
)
