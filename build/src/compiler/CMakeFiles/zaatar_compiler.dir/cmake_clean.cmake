file(REMOVE_RECURSE
  "CMakeFiles/zaatar_compiler.dir/lexer.cc.o"
  "CMakeFiles/zaatar_compiler.dir/lexer.cc.o.d"
  "CMakeFiles/zaatar_compiler.dir/parser.cc.o"
  "CMakeFiles/zaatar_compiler.dir/parser.cc.o.d"
  "libzaatar_compiler.a"
  "libzaatar_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zaatar_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
