# Empty compiler generated dependencies file for zaatar_compiler.
# This may be replaced when dependencies are built.
