file(REMOVE_RECURSE
  "libzaatar_poly.a"
)
