# Empty dependencies file for zaatar_poly.
# This may be replaced when dependencies are built.
