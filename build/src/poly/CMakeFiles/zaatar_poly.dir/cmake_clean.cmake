file(REMOVE_RECURSE
  "CMakeFiles/zaatar_poly.dir/ntt.cc.o"
  "CMakeFiles/zaatar_poly.dir/ntt.cc.o.d"
  "libzaatar_poly.a"
  "libzaatar_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zaatar_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
