# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("field")
subdirs("poly")
subdirs("crypto")
subdirs("constraints")
subdirs("pcp")
subdirs("commit")
subdirs("argument")
subdirs("compiler")
subdirs("apps")
