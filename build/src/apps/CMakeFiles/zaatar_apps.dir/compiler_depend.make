# Empty compiler generated dependencies file for zaatar_apps.
# This may be replaced when dependencies are built.
