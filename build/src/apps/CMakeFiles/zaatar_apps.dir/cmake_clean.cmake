file(REMOVE_RECURSE
  "CMakeFiles/zaatar_apps.dir/native.cc.o"
  "CMakeFiles/zaatar_apps.dir/native.cc.o.d"
  "CMakeFiles/zaatar_apps.dir/programs.cc.o"
  "CMakeFiles/zaatar_apps.dir/programs.cc.o.d"
  "libzaatar_apps.a"
  "libzaatar_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zaatar_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
