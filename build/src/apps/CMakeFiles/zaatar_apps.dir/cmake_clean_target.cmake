file(REMOVE_RECURSE
  "libzaatar_apps.a"
)
