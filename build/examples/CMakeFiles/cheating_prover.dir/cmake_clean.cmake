file(REMOVE_RECURSE
  "CMakeFiles/cheating_prover.dir/cheating_prover.cpp.o"
  "CMakeFiles/cheating_prover.dir/cheating_prover.cpp.o.d"
  "cheating_prover"
  "cheating_prover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheating_prover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
