# Empty compiler generated dependencies file for cheating_prover.
# This may be replaced when dependencies are built.
