# Empty dependencies file for verified_clustering.
# This may be replaced when dependencies are built.
