file(REMOVE_RECURSE
  "CMakeFiles/verified_clustering.dir/verified_clustering.cpp.o"
  "CMakeFiles/verified_clustering.dir/verified_clustering.cpp.o.d"
  "verified_clustering"
  "verified_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verified_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
