file(REMOVE_RECURSE
  "CMakeFiles/wire_protocol.dir/wire_protocol.cpp.o"
  "CMakeFiles/wire_protocol.dir/wire_protocol.cpp.o.d"
  "wire_protocol"
  "wire_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
