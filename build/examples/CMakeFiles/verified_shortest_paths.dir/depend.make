# Empty dependencies file for verified_shortest_paths.
# This may be replaced when dependencies are built.
