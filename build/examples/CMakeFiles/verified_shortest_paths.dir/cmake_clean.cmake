file(REMOVE_RECURSE
  "CMakeFiles/verified_shortest_paths.dir/verified_shortest_paths.cpp.o"
  "CMakeFiles/verified_shortest_paths.dir/verified_shortest_paths.cpp.o.d"
  "verified_shortest_paths"
  "verified_shortest_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verified_shortest_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
