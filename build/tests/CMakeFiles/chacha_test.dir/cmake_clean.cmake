file(REMOVE_RECURSE
  "CMakeFiles/chacha_test.dir/chacha_test.cc.o"
  "CMakeFiles/chacha_test.dir/chacha_test.cc.o.d"
  "chacha_test"
  "chacha_test.pdb"
  "chacha_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chacha_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
