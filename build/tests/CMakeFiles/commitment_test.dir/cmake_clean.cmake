file(REMOVE_RECURSE
  "CMakeFiles/commitment_test.dir/commitment_test.cc.o"
  "CMakeFiles/commitment_test.dir/commitment_test.cc.o.d"
  "commitment_test"
  "commitment_test.pdb"
  "commitment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commitment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
