file(REMOVE_RECURSE
  "CMakeFiles/compiler_extensions_test.dir/compiler_extensions_test.cc.o"
  "CMakeFiles/compiler_extensions_test.dir/compiler_extensions_test.cc.o.d"
  "compiler_extensions_test"
  "compiler_extensions_test.pdb"
  "compiler_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
