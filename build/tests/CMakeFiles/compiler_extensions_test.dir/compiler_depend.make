# Empty compiler generated dependencies file for compiler_extensions_test.
# This may be replaced when dependencies are built.
