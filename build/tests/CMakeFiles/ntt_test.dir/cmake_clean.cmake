file(REMOVE_RECURSE
  "CMakeFiles/ntt_test.dir/ntt_test.cc.o"
  "CMakeFiles/ntt_test.dir/ntt_test.cc.o.d"
  "ntt_test"
  "ntt_test.pdb"
  "ntt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
