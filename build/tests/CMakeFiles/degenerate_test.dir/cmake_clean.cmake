file(REMOVE_RECURSE
  "CMakeFiles/degenerate_test.dir/degenerate_test.cc.o"
  "CMakeFiles/degenerate_test.dir/degenerate_test.cc.o.d"
  "degenerate_test"
  "degenerate_test.pdb"
  "degenerate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degenerate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
