# Empty compiler generated dependencies file for soundness_stats_test.
# This may be replaced when dependencies are built.
