file(REMOVE_RECURSE
  "CMakeFiles/soundness_stats_test.dir/soundness_stats_test.cc.o"
  "CMakeFiles/soundness_stats_test.dir/soundness_stats_test.cc.o.d"
  "soundness_stats_test"
  "soundness_stats_test.pdb"
  "soundness_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soundness_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
