file(REMOVE_RECURSE
  "CMakeFiles/qap_test.dir/qap_test.cc.o"
  "CMakeFiles/qap_test.dir/qap_test.cc.o.d"
  "qap_test"
  "qap_test.pdb"
  "qap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
