
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/compiler_semantics_test.cc" "tests/CMakeFiles/compiler_semantics_test.dir/compiler_semantics_test.cc.o" "gcc" "tests/CMakeFiles/compiler_semantics_test.dir/compiler_semantics_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/zaatar_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/argument/CMakeFiles/zaatar_argument.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/zaatar_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/zaatar_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/zaatar_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
