# Empty compiler generated dependencies file for compiler_semantics_test.
# This may be replaced when dependencies are built.
