file(REMOVE_RECURSE
  "CMakeFiles/compiler_semantics_test.dir/compiler_semantics_test.cc.o"
  "CMakeFiles/compiler_semantics_test.dir/compiler_semantics_test.cc.o.d"
  "compiler_semantics_test"
  "compiler_semantics_test.pdb"
  "compiler_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
