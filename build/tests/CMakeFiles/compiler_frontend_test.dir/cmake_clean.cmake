file(REMOVE_RECURSE
  "CMakeFiles/compiler_frontend_test.dir/compiler_frontend_test.cc.o"
  "CMakeFiles/compiler_frontend_test.dir/compiler_frontend_test.cc.o.d"
  "compiler_frontend_test"
  "compiler_frontend_test.pdb"
  "compiler_frontend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_frontend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
