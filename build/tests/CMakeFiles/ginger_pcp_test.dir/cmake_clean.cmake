file(REMOVE_RECURSE
  "CMakeFiles/ginger_pcp_test.dir/ginger_pcp_test.cc.o"
  "CMakeFiles/ginger_pcp_test.dir/ginger_pcp_test.cc.o.d"
  "ginger_pcp_test"
  "ginger_pcp_test.pdb"
  "ginger_pcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ginger_pcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
