# Empty dependencies file for ginger_pcp_test.
# This may be replaced when dependencies are built.
