file(REMOVE_RECURSE
  "CMakeFiles/zaatar_pcp_test.dir/zaatar_pcp_test.cc.o"
  "CMakeFiles/zaatar_pcp_test.dir/zaatar_pcp_test.cc.o.d"
  "zaatar_pcp_test"
  "zaatar_pcp_test.pdb"
  "zaatar_pcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zaatar_pcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
