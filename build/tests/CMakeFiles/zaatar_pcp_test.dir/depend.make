# Empty dependencies file for zaatar_pcp_test.
# This may be replaced when dependencies are built.
