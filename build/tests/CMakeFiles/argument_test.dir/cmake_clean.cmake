file(REMOVE_RECURSE
  "CMakeFiles/argument_test.dir/argument_test.cc.o"
  "CMakeFiles/argument_test.dir/argument_test.cc.o.d"
  "argument_test"
  "argument_test.pdb"
  "argument_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argument_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
