# Empty compiler generated dependencies file for argument_test.
# This may be replaced when dependencies are built.
