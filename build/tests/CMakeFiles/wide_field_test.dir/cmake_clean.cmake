file(REMOVE_RECURSE
  "CMakeFiles/wide_field_test.dir/wide_field_test.cc.o"
  "CMakeFiles/wide_field_test.dir/wide_field_test.cc.o.d"
  "wide_field_test"
  "wide_field_test.pdb"
  "wide_field_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wide_field_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
