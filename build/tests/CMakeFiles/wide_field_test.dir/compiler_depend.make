# Empty compiler generated dependencies file for wide_field_test.
# This may be replaced when dependencies are built.
