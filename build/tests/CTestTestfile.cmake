# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bigint_test[1]_include.cmake")
include("/root/repo/build/tests/field_test[1]_include.cmake")
include("/root/repo/build/tests/ntt_test[1]_include.cmake")
include("/root/repo/build/tests/poly_test[1]_include.cmake")
include("/root/repo/build/tests/chacha_test[1]_include.cmake")
include("/root/repo/build/tests/elgamal_test[1]_include.cmake")
include("/root/repo/build/tests/constraints_test[1]_include.cmake")
include("/root/repo/build/tests/qap_test[1]_include.cmake")
include("/root/repo/build/tests/zaatar_pcp_test[1]_include.cmake")
include("/root/repo/build/tests/ginger_pcp_test[1]_include.cmake")
include("/root/repo/build/tests/commitment_test[1]_include.cmake")
include("/root/repo/build/tests/argument_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_frontend_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/degenerate_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/wide_field_test[1]_include.cmake")
include("/root/repo/build/tests/property_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/soundness_stats_test[1]_include.cmake")
