file(REMOVE_RECURSE
  "../bench/bench_fig9_encodings"
  "../bench/bench_fig9_encodings.pdb"
  "CMakeFiles/bench_fig9_encodings.dir/bench_fig9_encodings.cc.o"
  "CMakeFiles/bench_fig9_encodings.dir/bench_fig9_encodings.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_encodings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
