file(REMOVE_RECURSE
  "../bench/bench_ablation_degenerate"
  "../bench/bench_ablation_degenerate.pdb"
  "CMakeFiles/bench_ablation_degenerate.dir/bench_ablation_degenerate.cc.o"
  "CMakeFiles/bench_ablation_degenerate.dir/bench_ablation_degenerate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_degenerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
