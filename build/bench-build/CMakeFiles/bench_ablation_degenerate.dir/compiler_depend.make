# Empty compiler generated dependencies file for bench_ablation_degenerate.
# This may be replaced when dependencies are built.
