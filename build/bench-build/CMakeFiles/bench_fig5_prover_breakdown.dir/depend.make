# Empty dependencies file for bench_fig5_prover_breakdown.
# This may be replaced when dependencies are built.
