file(REMOVE_RECURSE
  "../bench/bench_ablation_domains"
  "../bench/bench_ablation_domains.pdb"
  "CMakeFiles/bench_ablation_domains.dir/bench_ablation_domains.cc.o"
  "CMakeFiles/bench_ablation_domains.dir/bench_ablation_domains.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
