# Empty dependencies file for bench_ablation_domains.
# This may be replaced when dependencies are built.
