file(REMOVE_RECURSE
  "../bench/bench_fig7_breakeven"
  "../bench/bench_fig7_breakeven.pdb"
  "CMakeFiles/bench_fig7_breakeven.dir/bench_fig7_breakeven.cc.o"
  "CMakeFiles/bench_fig7_breakeven.dir/bench_fig7_breakeven.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_breakeven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
