# Empty dependencies file for bench_fig4_prover_runtime.
# This may be replaced when dependencies are built.
