file(REMOVE_RECURSE
  "../bench/bench_fig4_prover_runtime"
  "../bench/bench_fig4_prover_runtime.pdb"
  "CMakeFiles/bench_fig4_prover_runtime.dir/bench_fig4_prover_runtime.cc.o"
  "CMakeFiles/bench_fig4_prover_runtime.dir/bench_fig4_prover_runtime.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_prover_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
