#!/usr/bin/env bash
# CI entry point: build + test in the default configuration, then rebuild
# and re-run the suite under AddressSanitizer and UndefinedBehaviorSanitizer
# (-DZAATAR_SANITIZE, see the root CMakeLists.txt). The fault-injection
# suite in particular is only meaningful if "no crash" also means "no silent
# UB", which the sanitizer passes establish.
#
# Usage: scripts/ci.sh [--skip-plain] [--only address|undefined]

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
SKIP_PLAIN=0
ONLY=""

while [[ $# -gt 0 ]]; do
  case "$1" in
    --skip-plain) SKIP_PLAIN=1; shift ;;
    --only)
      ONLY="${2:-}"
      if [[ "$ONLY" != "address" && "$ONLY" != "undefined" ]]; then
        echo "--only expects 'address' or 'undefined', got: $ONLY" >&2
        exit 2
      fi
      shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

run_config() {
  local name="$1" build_dir="$2" sanitize="$3"
  echo "==== [$name] configure + build ===="
  cmake -B "$build_dir" -S . -DZAATAR_SANITIZE="$sanitize" >/dev/null
  cmake --build "$build_dir" -j "$JOBS"
  echo "==== [$name] ctest ===="
  (cd "$build_dir" && ctest --output-on-failure -j "$JOBS")
}

bench_smoke() {
  # Build + run the multiexp bench at a small size and check that its JSON
  # baseline parses: catches both kernel regressions (the bench exits nonzero
  # on any multiexp/naive mismatch) and malformed emitter output.
  local build_dir="$1"
  echo "==== [bench] multiexp smoke ===="
  local json="$build_dir/BENCH_multiexp_smoke.json"
  "$build_dir/bench/bench_multiexp" --smoke --out "$json"
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$json" >/dev/null
  else
    grep -q '"results"' "$json"
  fi
  echo "bench smoke ok: $json"
}

if [[ "$SKIP_PLAIN" -eq 0 && -z "$ONLY" ]]; then
  run_config plain build ""
  bench_smoke build
fi

# ASan guards the fault-injection suite against out-of-bounds reads on
# hostile inputs; UBSan against integer/shift/enum UB in the decoders.
if [[ -z "$ONLY" || "$ONLY" == "address" ]]; then
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
    run_config asan build-asan address
fi
if [[ -z "$ONLY" || "$ONLY" == "undefined" ]]; then
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
    run_config ubsan build-ubsan undefined
fi

echo "==== CI passed ===="
