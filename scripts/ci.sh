#!/usr/bin/env bash
# CI entry point: build + test in the default configuration, gate on the
# zaatar-lint static analyzer and (when available) clang-tidy, then rebuild
# and re-run the suite under AddressSanitizer and UndefinedBehaviorSanitizer,
# plus the concurrency-heavy tests under ThreadSanitizer (-DZAATAR_SANITIZE,
# see the root CMakeLists.txt). The fault-injection suite in particular is
# only meaningful if "no crash" also means "no silent UB", which the
# sanitizer passes establish.
#
# Usage: scripts/ci.sh [--skip-plain] [--only address|undefined|thread]

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
SKIP_PLAIN=0
ONLY=""

# Hang watchdog: the failure-hardening contract is "typed error, never a
# wedged thread", so a hung test IS a test failure. Every ctest invocation
# (and the chaos soak) runs under timeout(1); a stage that overruns is
# killed and fails the build instead of wedging CI.
WATCHDOG_SECS="${ZAATAR_CI_WATCHDOG_SECS:-2400}"
watchdog() {
  if command -v timeout >/dev/null 2>&1; then
    timeout --signal=TERM --kill-after=30 "$WATCHDOG_SECS" "$@"
  else
    "$@"
  fi
}

while [[ $# -gt 0 ]]; do
  case "$1" in
    --skip-plain) SKIP_PLAIN=1; shift ;;
    --only)
      ONLY="${2:-}"
      if [[ "$ONLY" != "address" && "$ONLY" != "undefined" \
            && "$ONLY" != "thread" ]]; then
        echo "--only expects 'address', 'undefined', or 'thread', got: $ONLY" >&2
        exit 2
      fi
      shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

run_config() {
  local name="$1" build_dir="$2" sanitize="$3"
  echo "==== [$name] configure + build ===="
  cmake -B "$build_dir" -S . -DZAATAR_SANITIZE="$sanitize" >/dev/null
  cmake --build "$build_dir" -j "$JOBS"
  echo "==== [$name] ctest ===="
  (cd "$build_dir" && watchdog ctest --output-on-failure -j "$JOBS")
}

bench_smoke() {
  # Build + run the multiexp bench at a small size and check that its JSON
  # baseline parses: catches both kernel regressions (the bench exits nonzero
  # on any multiexp/naive mismatch) and malformed emitter output.
  local build_dir="$1"
  echo "==== [bench] multiexp smoke ===="
  local json="$build_dir/BENCH_multiexp_smoke.json"
  "$build_dir/bench/bench_multiexp" --smoke --out "$json"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
rows = doc["results"]
assert rows, "multiexp bench emitted no rows"
# Perf floor: the Pippenger kernel must not regress below 10x over the
# pinned naive yardstick at the largest smoke size (n = 256 currently
# measures >20x on both fields, so 10x is a regression alarm, not a
# tight bound; smaller smoke sizes amortize the buckets too thinly to
# gate on).
gated = [r for r in rows if r["n"] >= 256]
assert gated, "no smoke row large enough for the speedup floor"
for row in gated:
    assert row["speedup"] >= 10.0, \
        f"multiexp speedup floor regressed: {row}"
print("multiexp speedup floor ok:",
      ", ".join(f"{r['field']} n={r['n']} {r['speedup']:.1f}x"
                for r in gated))
EOF
  else
    grep -q '"results"' "$json"
  fi
  echo "bench smoke ok: $json"

  # Figure 7 break-even baseline: validate the emitted schema and assert the
  # perf trajectory — in the paper-regime rows (paper input sizes + GMP
  # local baselines, this machine's measured verifier kernels) every app
  # must break even strictly earlier than the recorded pre-kernel-push
  # baseline. Catches both emitter rot and verifier-kernel regressions.
  echo "==== [bench] fig7 break-even smoke ===="
  local fjson="$build_dir/BENCH_fig7_smoke.json"
  "$build_dir/bench/bench_fig7_breakeven" --out "$fjson" >/dev/null
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$fjson" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "fig7.breakeven.v1", doc.get("schema")
for field in ("F128", "F220"):
    micro = doc["micro"][field]
    for key in ("e_s", "d_s", "h_s", "h_amortized_s", "f_s", "f_div_s",
                "c_s"):
        assert micro[key] > 0, f"micro cost {key} missing for {field}"
rows = doc["rows"]
for row in rows:
    for key in ("app", "field", "regime", "t_local_s"):
        assert key in row, f"missing key {key} in {row}"
trajectory = [r for r in rows if r["regime"] == "paper_scale_measured_micro"]
assert len(trajectory) == 5, f"expected 5 trajectory rows, got {trajectory}"
for row in trajectory:
    beta, pre = row["zaatar_model_beta_star"], row["zaatar_model_beta_star_pre_pr"]
    assert beta is not None, f"{row['app']}: no longer breaks even"
    assert pre is None or beta < pre, \
        f"{row['app']}: beta* regressed ({beta} vs pre {pre})"
print("fig7 trajectory ok:",
      ", ".join(f"{r['app'].split('(')[0]} {r['zaatar_model_beta_star']:.0f}"
                for r in trajectory))
EOF
  else
    grep -q '"fig7.breakeven.v1"' "$fjson"
    grep -q '"paper_scale_measured_micro"' "$fjson"
  fi
  echo "bench smoke ok: $fjson"

  # NTT proving-pipeline baseline: emit BENCH_ntt.json from the --json mode
  # of the fig5 bench (per-phase ComputeH seconds on synthetic R1CS at
  # |C| in {256, 1024, 4096}) and gate the residue pipeline against the
  # Figure 3 model: construct_proof / (3 f |C| log2^2 |C|) <= 6 at
  # |C| = 1024. The pre-refactor coefficient-form path sat at 12-20x; a
  # ratio drifting back above 6 means the pipeline fell off the NTT path.
  echo "==== [bench] ntt pipeline smoke ===="
  local njson="$build_dir/BENCH_ntt_smoke.json"
  "$build_dir/bench/bench_fig5_prover_breakdown" --json --out "$njson"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$njson" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "ntt.pipeline.v1", doc.get("schema")
assert doc["f_seconds"] > 0
sizes = doc["sizes"]
assert [s["c"] for s in sizes] == [256, 1024, 4096], sizes
for s in sizes:
    for key in ("construct_proof_s", "interpolate_s", "mul_s", "divide_s",
                "model_s", "model_ratio"):
        assert s[key] > 0, f"missing/zero {key} at |C|={s['c']}"
    assert "naive_s" in s
    # The phase spans must account for most of construct_proof (the
    # evaluation pass outside them is linear and small).
    phases = s["interpolate_s"] + s["mul_s"] + s["divide_s"]
    assert phases <= s["construct_proof_s"] * 1.001, s
gate = next(s for s in sizes if s["c"] == 1024)
assert gate["model_ratio"] <= 6.0, \
    f"construct_proof / model = {gate['model_ratio']:.2f} > 6 at |C|=1024"
assert gate["naive_s"] is not None and gate["naive_s"] > 0
print("ntt pipeline ok:",
      ", ".join(f"|C|={s['c']} ratio={s['model_ratio']:.2f}" for s in sizes),
      f"(naive@1024 {gate['naive_s']:.3f}s)")
EOF
  else
    grep -q '"ntt.pipeline.v1"' "$njson"
  fi
  echo "bench smoke ok: $njson"

  # Same for the session/transport overhead bench: it exits nonzero if the
  # serialized paths (loopback, socketpair) diverge from the in-process
  # verdicts, so this doubles as a cheap cross-path equivalence check. The
  # --trace export is validated as JSON too, and the baseline schema is
  # checked for the per-phase keys derived from the span tree.
  echo "==== [bench] protocol smoke ===="
  local pjson="$build_dir/BENCH_protocol_smoke.json"
  local ptrace="$build_dir/TRACE_protocol_smoke.json"
  "$build_dir/bench/bench_protocol" --smoke --out "$pjson" --trace "$ptrace"
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$pjson" >/dev/null
    python3 -m json.tool "$ptrace" >/dev/null
    python3 - "$pjson" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
rows = doc["results"]
assert rows, "protocol bench emitted no rows"
phase_keys = ["query_gen_s", "solve_s", "construct_s", "commit_s",
              "answer_s", "verify_s"]
recovery_keys = ["transport_retries", "transport_connections",
                 "deadline_exceeded"]
for row in rows:
    for key in phase_keys + recovery_keys + [
            "in_process_s", "loopback_s", "socketpair_s",
            "setup_bytes", "proof_bytes"]:
        assert key in row, f"missing key {key} in {row['app']}"
        assert row[key] >= 0, f"negative {key} in {row['app']}"
    # A healthy local channel must not consume the retry budget.
    assert row["transport_retries"] == 0, f"retries on clean run: {row}"
    assert row["transport_connections"] == 2, \
        f"expected one connection per run: {row}"
print("protocol bench schema ok:", ", ".join(phase_keys + recovery_keys))
EOF
  else
    grep -q '"results"' "$pjson"
    grep -q '"solve_s"' "$pjson"
    grep -q '"spans"' "$ptrace"
  fi
  echo "bench smoke ok: $pjson"
}

trace_smoke() {
  # End-to-end observability check: run the batch harness with --trace and
  # validate the exported span/metric JSON. Catches export regressions and
  # a tracer that silently records nothing.
  local build_dir="$1"
  echo "==== [obs] zaatar-run --trace smoke ===="
  local tjson="$build_dir/TRACE_run_smoke.json"
  "$build_dir/src/apps/zaatar-run" --app lcs --size 4 --beta 2 \
    --trace "$tjson" >/dev/null
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$tjson" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
spans = doc["spans"]
names = set()
def walk(node):
    names.add(node["name"])
    for child in node.get("children", []):
        walk(child)
for root in spans:
    walk(root)
for expected in ["harness.batch", "verifier.query_gen", "prover.commit",
                 "prover.answer", "verifier.verify", "transport.send"]:
    assert expected in names, f"span {expected} missing from trace"
assert doc["counters"].get("verdict.ACCEPT", 0) >= 1, "no accepting verdicts"
assert "transport.frame_bytes" in doc["histograms"], "frame histogram missing"
# The summed name is kept for compatibility; the per-direction split must
# also be present (transport.h RecordFrameSent/Received).
for split in ("transport.frame_bytes_sent", "transport.frame_bytes_received"):
    assert split in doc["histograms"], f"{split} histogram missing"
sent = doc["histograms"]["transport.frame_bytes_sent"]["count"]
received = doc["histograms"]["transport.frame_bytes_received"]["count"]
total = doc["histograms"]["transport.frame_bytes"]["count"]
assert sent + received == total, \
    f"frame split inconsistent: {sent} + {received} != {total}"
print(f"trace smoke ok: {len(names)} distinct span names")
EOF
  else
    grep -q '"harness.batch"' "$tjson"
  fi
}

serve_stage() {
  # The zaatar-serve daemon end to end: bring it up under a watchdog, prove
  # from two concurrent tenants (the second handshake must ride the
  # amortization cache), validate the /stats JSON schema and gate on a
  # nonzero cache hit rate, then stop it via the admin message. A daemon
  # that wedges is killed by the trap and fails the stage.
  local build_dir="$1"
  echo "==== [serve] daemon smoke (2 concurrent tenants) ===="
  local serve_bin="$build_dir/src/apps/zaatar-serve"
  local sock="/tmp/zaatar_ci_serve.$$.sock"
  "$serve_bin" --mode serve --socket "$sock" --workers 2 &
  local daemon_pid=$!
  # shellcheck disable=SC2064
  trap "kill $daemon_pid 2>/dev/null || true; rm -f '$sock'" RETURN
  for _ in $(seq 1 100); do
    [[ -S "$sock" ]] && break
    sleep 0.1
  done
  [[ -S "$sock" ]] || { echo "daemon never bound $sock" >&2; return 1; }
  watchdog "$serve_bin" --mode prove --socket "$sock" --psi lcs/4 \
    --tenant alice --instances 2 --seed 11 &
  local c1=$!
  watchdog "$serve_bin" --mode prove --socket "$sock" --psi lcs/4 \
    --tenant bob --instances 2 --seed 22 &
  local c2=$!
  wait "$c1"
  wait "$c2"
  local stats_json="$build_dir/SERVE_stats_smoke.json"
  watchdog "$serve_bin" --mode stats --socket "$sock" > "$stats_json"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$stats_json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "zaatar.serve.stats.v1", doc.get("schema")
assert doc["poller"] in ("epoll", "poll"), doc["poller"]
cache = doc["cache"]
assert cache["misses"] >= 1, f"no setup build recorded: {cache}"
assert cache["hits"] >= 1, f"amortization failure, zero cache hits: {cache}"
for tenant in ("alice", "bob"):
    t = doc["tenants"][tenant]
    assert t["proofs"] == 2 and t["accepted"] == 2, f"{tenant}: {t}"
    assert t["verify_us_sum"] > 0, f"{tenant} has no verify latency: {t}"
queue = doc["queue"]
assert queue["workers"] == 2 and queue["capacity"] > 0, queue
assert doc["obs"]["counters"].get("verdict.ACCEPT", 0) >= 4, \
    doc["obs"]["counters"]
print("serve stats ok: cache", cache, "tenants", sorted(doc["tenants"]))
EOF
  else
    grep -q '"zaatar.serve.stats.v1"' "$stats_json"
    grep -q '"alice"' "$stats_json"
  fi
  watchdog "$serve_bin" --mode shutdown --socket "$sock"
  wait "$daemon_pid"
  echo "serve smoke ok: $stats_json"

  # Amortization bench: the emitter itself exits nonzero when the cache
  # records zero hits or the warm row rejects an honest instance; the
  # schema check below guards the JSON consumers.
  echo "==== [serve] bench_serve amortization smoke ===="
  local sjson="$build_dir/BENCH_serve_smoke.json"
  watchdog "$build_dir/bench/bench_serve" --smoke --out "$sjson"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$sjson" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "zaatar.serve.bench.v1", doc.get("schema")
rows = doc["rows"]
assert rows, "serve bench emitted no rows"
for row in rows:
    assert row["accepted"] == row["instances"], f"rejected honest run: {row}"
assert doc["cache"]["hits"] > 0, f"zero cache hits: {doc['cache']}"
amort = doc["amortization"]
assert amort["cold_hello_s"] > 0 and amort["warm_hello_s"] > 0, amort
print(f"serve bench ok: speedup {amort['speedup']:.1f}x "
      f"(cold {amort['cold_hello_s']:.4f}s -> warm {amort['warm_hello_s']:.4f}s)")
EOF
  else
    grep -q '"zaatar.serve.bench.v1"' "$sjson"
  fi
  echo "bench smoke ok: $sjson"
}

lint_gate() {
  # Static analysis of every compiled constraint system: the built-in suite
  # plus the example zlang programs. Exits nonzero on any ERROR finding
  # (underconstrained witness variables, broken transform bookkeeping, ...).
  local build_dir="$1"
  echo "==== [lint] zaatar-lint ===="
  "$build_dir/src/apps/zaatar-lint" --suite --dir examples/zlang --werror
}

equiv_gate() {
  # Symbolic equivalence stage (DESIGN.md §14): every suite program and
  # every example must reach a proof-grade verdict under --prove (any
  # ZL021/ZL022 is an error; ZL023 warnings fail via --werror), the
  # seeded-defect catch-rate is pinned by symbolic_equiv_test, and a short
  # differential-fuzz sweep cross-checks the compiler end to end.
  local build_dir="$1"
  echo "==== [equiv] zaatar-lint --prove ===="
  "$build_dir/src/apps/zaatar-lint" --suite --dir examples/zlang \
    --prove --werror
  echo "==== [equiv] seeded-defect catch rate ===="
  watchdog "$build_dir/tests/symbolic_equiv_test"
  echo "==== [equiv] differential fuzz (plain, 60 iters) ===="
  ZAATAR_FUZZ_ITERS=60 watchdog "$build_dir/tests/equiv_fuzz_test"
}

clang_tidy_gate() {
  # clang-tidy over the checked-in sources via compile_commands.json. The
  # container image may not ship clang tooling; skip loudly rather than fail
  # so the gate is effective wherever the tool exists.
  local build_dir="$1"
  local tidy=""
  for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
              clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      tidy="$cand"
      break
    fi
  done
  if [[ -z "$tidy" ]]; then
    echo "==== [lint] clang-tidy: SKIPPED (no clang-tidy binary on PATH) ===="
    return 0
  fi
  echo "==== [lint] $tidy ===="
  local files
  files="$(git ls-files 'src/**/*.cc' 'src/**/*.h' 'tests/*.cc' \
                        'bench/*.cc' 'bench/*.h' 'examples/*.cpp')"
  # shellcheck disable=SC2086
  "$tidy" -p "$build_dir" --warnings-as-errors='*' --quiet $files
}

if [[ "$SKIP_PLAIN" -eq 0 && -z "$ONLY" ]]; then
  run_config plain build ""
  lint_gate build
  equiv_gate build
  clang_tidy_gate build
  bench_smoke build
  trace_smoke build
  serve_stage build
fi

# ASan guards the fault-injection suite against out-of-bounds reads on
# hostile inputs; UBSan against integer/shift/enum UB in the decoders.
if [[ -z "$ONLY" || "$ONLY" == "address" ]]; then
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
    run_config asan build-asan address
  echo "==== [equiv] differential fuzz (ASan, 200 iters) ===="
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" ZAATAR_FUZZ_ITERS=200 \
    watchdog ./build-asan/tests/equiv_fuzz_test
fi
if [[ -z "$ONLY" || "$ONLY" == "undefined" ]]; then
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
    run_config ubsan build-ubsan undefined
fi

# TSan covers the worker-pool code paths (ParallelFor and the multiexp
# engine's parallel folds), the two-threaded session exchanges in
# protocol_test (prover and verifier driving a shared loopback/socketpair
# from separate threads), and the shared tracer/metrics collectors in
# obs_test (many threads recording spans and counters concurrently, plus
# the cross-thread-stitched harness batch). Only the concurrency-heavy
# tests run: TSan's ~10x slowdown makes the full suite impractical, and
# the remaining tests are single-threaded.
tsan_config() {
  echo "==== [tsan] configure + build ===="
  cmake -B build-tsan -S . -DZAATAR_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS" \
    --target parallel_test multiexp_test protocol_test obs_test \
             transport_robustness_test serve_test chaos_test \
             residue_test poly_test qap_test
  echo "==== [tsan] concurrency-heavy tests ===="
  for t in parallel_test multiexp_test protocol_test obs_test \
           transport_robustness_test serve_test; do
    TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
      watchdog "./build-tsan/tests/$t"
  done
  # Residue-pipeline tests with the per-prime fan-out forced on: on a
  # single-core runner PolyWorkers() is 1 and the ParallelFor paths in
  # ResiduePoly/ComputeH would run inline, so pin 4 workers to make TSan
  # actually see the concurrent transforms and chunked folds.
  echo "==== [tsan] residue pipeline (ZAATAR_POLY_WORKERS=4) ===="
  for t in residue_test poly_test qap_test; do
    TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" ZAATAR_POLY_WORKERS=4 \
      watchdog "./build-tsan/tests/$t"
  done
}
if [[ -z "$ONLY" || "$ONLY" == "thread" ]]; then
  tsan_config
fi

# Chaos stage: the seeded fault-schedule soak (tests/chaos_test.cc) under
# both ASan and TSan. ZAATAR_CHAOS_SEEDS is schedules per (transport x
# backend) combo; 50 x 4 combos = 200 schedules under ASan satisfies the
# "200+ seeded schedules, every run ends in a typed verdict" gate, and a
# smaller TSan sweep proves the recovery machinery (reconnects, reaps,
# bounded queues) is race-free. Fixed base seed — a failure reproduces from
# the seed printed in the assertion message.
chaos_stage() {
  echo "==== [chaos] soak under ASan (200 schedules) ===="
  cmake -B build-asan -S . -DZAATAR_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$JOBS" --target chaos_test
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" ZAATAR_CHAOS_SEEDS=50 \
    watchdog ./build-asan/tests/chaos_test
  echo "==== [chaos] soak under TSan ===="
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" ZAATAR_CHAOS_SEEDS=8 \
    watchdog ./build-tsan/tests/chaos_test
}
if [[ -z "$ONLY" || "$ONLY" == "thread" ]]; then
  chaos_stage
fi

echo "==== CI passed ===="
