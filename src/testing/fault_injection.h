// Fault-injection harness: systematic corruption of honest protocol
// transcripts, exercising the verifier's "reject, don't crash" invariant.
//
// The threat model (DESIGN.md §8) is an arbitrarily malicious prover: any
// byte string may arrive where an InstanceProofMessage is expected, and any
// well-formed message may carry adversarially chosen contents. The Corruptor
// mutates serialized messages at the byte level (truncation, bit flips,
// length inflation, non-canonical residues, trailing garbage); the
// MaliciousProver emits semantically hostile but well-formed messages
// (swapped commitments, responses inconsistent with the commitment, proofs
// generated under a replayed setup from another batch). Every emitted fault,
// driven through the real Argument pipeline via VerifyInstanceBytes, must
// yield a typed non-accept verdict — never a crash, hang, or accept.

#ifndef SRC_TESTING_FAULT_INJECTION_H_
#define SRC_TESTING_FAULT_INJECTION_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/argument/argument.h"
#include "src/argument/wire.h"
#include "src/constraints/ginger.h"
#include "src/constraints/r1cs.h"
#include "src/crypto/prg.h"
#include "src/util/serialize.h"

namespace zaatar {

// The corruption taxonomy. Each class models a distinct adversarial
// capability; the acceptance criterion for all of them is identical (a clean
// typed reject), but the expected verdict differs per class (see
// ExpectedVerdicts).
enum class FaultClass {
  kTruncation = 0,        // byte stream cut at an arbitrary prefix
  kBitFlip,               // a single flipped bit anywhere in the message
  kLengthInflation,       // a length prefix claiming ~2^32 elements
  kNonCanonicalElement,   // a residue >= its modulus substituted in place
  kCommitmentSwap,        // the two oracle commitments exchanged
  kSetupReplay,           // a proof generated under a different batch's setup
  kInconsistentResponse,  // responses disagreeing with the commitment
  kTrailingGarbage,       // valid message followed by extra bytes
  kResponseCountMismatch, // well-formed frame, wrong response-vector shape
};

inline constexpr std::array<FaultClass, 9> kAllFaultClasses = {
    FaultClass::kTruncation,        FaultClass::kBitFlip,
    FaultClass::kLengthInflation,   FaultClass::kNonCanonicalElement,
    FaultClass::kCommitmentSwap,    FaultClass::kSetupReplay,
    FaultClass::kInconsistentResponse, FaultClass::kTrailingGarbage,
    FaultClass::kResponseCountMismatch,
};

inline const char* FaultClassName(FaultClass c) {
  switch (c) {
    case FaultClass::kTruncation:
      return "truncation";
    case FaultClass::kBitFlip:
      return "bit-flip";
    case FaultClass::kLengthInflation:
      return "length-inflation";
    case FaultClass::kNonCanonicalElement:
      return "non-canonical-element";
    case FaultClass::kCommitmentSwap:
      return "commitment-swap";
    case FaultClass::kSetupReplay:
      return "setup-replay";
    case FaultClass::kInconsistentResponse:
      return "inconsistent-response";
    case FaultClass::kTrailingGarbage:
      return "trailing-garbage";
    case FaultClass::kResponseCountMismatch:
      return "response-count-mismatch";
  }
  return "unknown";
}

// ----- compile-pipeline corruption (pre-protocol) -----
//
// Deleting a constraint from a compiled system models a compiler or
// transform bug that silently loses an equation. The protocol itself cannot
// notice — every remaining constraint still holds for honest witnesses, so
// proofs keep verifying — but the witness space widens and a malicious
// prover may now claim wrong outputs. This is exactly the failure class the
// static analyzer (src/analysis) exists to catch; the fault-injection tests
// assert that every single-constraint drop in a pipeline-covered program
// produces an ERROR finding.

template <typename F>
GingerSystem<F> DropConstraint(const GingerSystem<F>& g, size_t j) {
  GingerSystem<F> out = g;
  if (j < out.constraints.size()) {
    out.constraints.erase(out.constraints.begin() + j);
    if (j < out.source_lines.size()) {
      out.source_lines.erase(out.source_lines.begin() + j);
    }
  }
  return out;
}

template <typename F>
R1cs<F> DropConstraint(const R1cs<F>& r, size_t j) {
  R1cs<F> out = r;
  if (j < out.constraints.size()) {
    out.constraints.erase(out.constraints.begin() + j);
    if (j < out.source_lines.size()) {
      out.source_lines.erase(out.source_lines.begin() + j);
    }
  }
  return out;
}

// Byte-level mutations. All pure: the input transcript is never modified.
class Corruptor {
 public:
  static std::vector<uint8_t> Truncate(const std::vector<uint8_t>& bytes,
                                       size_t prefix_len) {
    if (prefix_len > bytes.size()) {
      prefix_len = bytes.size();
    }
    return std::vector<uint8_t>(bytes.begin(), bytes.begin() + prefix_len);
  }

  static std::vector<uint8_t> FlipBit(const std::vector<uint8_t>& bytes,
                                      size_t bit_index) {
    std::vector<uint8_t> out = bytes;
    out[(bit_index / 8) % out.size()] ^=
        static_cast<uint8_t>(1u << (bit_index % 8));
    return out;
  }

  static std::vector<uint8_t> MutateByte(const std::vector<uint8_t>& bytes,
                                         size_t pos, uint8_t xor_mask) {
    std::vector<uint8_t> out = bytes;
    out[pos % out.size()] ^= xor_mask;
    return out;
  }

  static std::vector<uint8_t> PatchU32(const std::vector<uint8_t>& bytes,
                                       size_t offset, uint32_t v) {
    std::vector<uint8_t> out = bytes;
    for (int i = 0; i < 4 && offset + i < out.size(); i++) {
      out[offset + i] = static_cast<uint8_t>(v >> (8 * i));
    }
    return out;
  }

  template <size_t N>
  static std::vector<uint8_t> PatchBigInt(const std::vector<uint8_t>& bytes,
                                          size_t offset, const BigInt<N>& v) {
    std::vector<uint8_t> out = bytes;
    for (size_t i = 0; i < N; i++) {
      for (int b = 0; b < 8; b++) {
        size_t pos = offset + i * 8 + b;
        if (pos < out.size()) {
          out[pos] = static_cast<uint8_t>(v.limbs[i] >> (8 * b));
        }
      }
    }
    return out;
  }

  static std::vector<uint8_t> AppendGarbage(const std::vector<uint8_t>& bytes,
                                            size_t n, Prg& prg) {
    std::vector<uint8_t> out = bytes;
    for (size_t i = 0; i < n; i++) {
      out.push_back(static_cast<uint8_t>(prg.NextBounded(256)));
    }
    return out;
  }
};

// Byte offsets of the structural landmarks inside a serialized
// InstanceProofMessage<F>, computed from the honest message shape. Used to
// aim length-inflation and non-canonical-substitution faults at exactly the
// fields they target.
template <typename F>
struct InstanceWireLayout {
  static constexpr size_t kGroupBytes = ElGamal<F>::Zp::kLimbs * 8;
  static constexpr size_t kFieldBytes = F::kLimbs * 8;

  std::array<size_t, 2> commitment_offset;     // start of c1 per oracle
  std::array<size_t, 2> length_offset;         // response-vector u32 prefix
  std::array<size_t, 2> response_data_offset;  // first response element
  std::array<size_t, 2> t_response_offset;
  size_t total_bytes = 0;

  static InstanceWireLayout Of(const InstanceProofMessage<F>& msg) {
    InstanceWireLayout layout;
    size_t off = 0;
    for (size_t o = 0; o < 2; o++) {
      layout.commitment_offset[o] = off;
      off += 2 * kGroupBytes;
      layout.length_offset[o] = off;
      off += 4;
      layout.response_data_offset[o] = off;
      off += msg.responses[o].size() * kFieldBytes;
      layout.t_response_offset[o] = off;
      off += kFieldBytes;
    }
    layout.total_bytes = off;
    return layout;
  }
};

// Emits one corrupted transcript per fault class, built from an honest
// prover run. The decoy setup (for kSetupReplay) must come from a different
// batch over the same computation — same query structure, fresh keys and
// commitment secrets.
template <typename F, typename Adapter>
class MaliciousProver {
 public:
  using Arg = Argument<F, Adapter>;
  using Setup = typename Arg::VerifierSetup;

  MaliciousProver(const Setup* setup, const Setup* decoy_setup,
                  std::array<const std::vector<F>*, 2> proof_vectors)
      : setup_(setup),
        decoy_setup_(decoy_setup),
        proof_vectors_(proof_vectors),
        honest_proof_(Arg::Prove(proof_vectors, *setup)),
        honest_msg_(
            InstanceProofMessage<F>::template FromProof<Adapter>(
                honest_proof_)),
        honest_bytes_(honest_msg_.Serialize()),
        layout_(InstanceWireLayout<F>::Of(honest_msg_)) {}

  const std::vector<uint8_t>& HonestBytes() const { return honest_bytes_; }
  const InstanceWireLayout<F>& Layout() const { return layout_; }

  // A corrupted transcript of the requested class. `prg` picks the fault
  // site, so repeated calls sample different concrete corruptions.
  std::vector<uint8_t> Emit(FaultClass c, Prg& prg) const {
    using Zp = typename ElGamal<F>::Zp;
    switch (c) {
      case FaultClass::kTruncation:
        return Corruptor::Truncate(honest_bytes_,
                                   prg.NextBounded(honest_bytes_.size()));
      case FaultClass::kBitFlip:
        return Corruptor::FlipBit(honest_bytes_,
                                  prg.NextBounded(honest_bytes_.size() * 8));
      case FaultClass::kLengthInflation:
        return Corruptor::PatchU32(
            honest_bytes_,
            layout_.length_offset[prg.NextBounded(2)], 0xFFFFFFFFu);
      case FaultClass::kNonCanonicalElement: {
        // Either a response slot >= q or a commitment component >= p.
        if (prg.NextBool()) {
          size_t o = prg.NextBounded(2);
          return Corruptor::PatchBigInt(honest_bytes_,
                                        layout_.response_data_offset[o],
                                        F::kModulus);
        }
        size_t o = prg.NextBounded(2);
        return Corruptor::PatchBigInt(honest_bytes_,
                                      layout_.commitment_offset[o],
                                      Zp::kModulus);
      }
      case FaultClass::kCommitmentSwap: {
        InstanceProofMessage<F> msg = honest_msg_;
        std::swap(msg.commitments[0], msg.commitments[1]);
        return msg.Serialize();
      }
      case FaultClass::kSetupReplay: {
        // A proof that is perfectly honest — under the wrong batch's keys
        // and commitment secrets.
        auto replayed = Arg::Prove(proof_vectors_, *decoy_setup_);
        return InstanceProofMessage<F>::template FromProof<Adapter>(replayed)
            .Serialize();
      }
      case FaultClass::kInconsistentResponse: {
        // Commitment from the honest run, one response perturbed after the
        // fact: exactly the cheat Commit+Multidecommit exists to catch.
        InstanceProofMessage<F> msg = honest_msg_;
        size_t o = prg.NextBounded(2);
        if (!msg.responses[o].empty()) {
          msg.responses[o][prg.NextBounded(msg.responses[o].size())] +=
              F::One();
        } else {
          msg.t_responses[o] += F::One();
        }
        return msg.Serialize();
      }
      case FaultClass::kTrailingGarbage:
        return Corruptor::AppendGarbage(honest_bytes_,
                                        1 + prg.NextBounded(64), prg);
      case FaultClass::kResponseCountMismatch: {
        // Every byte decodes fine and every element is canonical — only the
        // response count disagrees with the setup's query count. This is the
        // corruption that asserts-only shape validation would let straight
        // through to an out-of-bounds read in an NDEBUG build.
        InstanceProofMessage<F> msg = honest_msg_;
        size_t o = prg.NextBounded(2);
        if (msg.responses[o].empty() || prg.NextBool()) {
          msg.responses[o].push_back(F::One());  // one response too many
        } else {
          msg.responses[o].pop_back();  // one response too few
        }
        return msg.Serialize();
      }
    }
    return honest_bytes_;
  }

  // The verdicts a correct verifier may return for each class. kBitFlip can
  // land anywhere, so any non-accept verdict is in range; structural faults
  // must be caught at decode (kMalformed) before any crypto runs; the
  // semantic faults must be caught by the commitment consistency check.
  static std::vector<VerifyVerdict> ExpectedVerdicts(FaultClass c) {
    switch (c) {
      case FaultClass::kTruncation:
      case FaultClass::kLengthInflation:
      case FaultClass::kNonCanonicalElement:
      case FaultClass::kTrailingGarbage:
      case FaultClass::kResponseCountMismatch:
        return {VerifyVerdict::kMalformed};
      case FaultClass::kCommitmentSwap:
      case FaultClass::kSetupReplay:
      case FaultClass::kInconsistentResponse:
        return {VerifyVerdict::kRejectCommit};
      case FaultClass::kBitFlip:
        return {VerifyVerdict::kMalformed, VerifyVerdict::kRejectCommit,
                VerifyVerdict::kRejectPcp};
    }
    return {};
  }

 private:
  const Setup* setup_;
  const Setup* decoy_setup_;
  std::array<const std::vector<F>*, 2> proof_vectors_;
  typename Arg::InstanceProof honest_proof_;
  InstanceProofMessage<F> honest_msg_;
  std::vector<uint8_t> honest_bytes_;
  InstanceWireLayout<F> layout_;
};

}  // namespace zaatar

#endif  // SRC_TESTING_FAULT_INJECTION_H_
