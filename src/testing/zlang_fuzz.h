// Differential fuzzer for the zlang->R1CS compiler (DESIGN.md §14): a
// seeded generator emits random well-formed zlang programs, and each one is
// cross-checked four ways —
//
//   1. the native reference interpreter (src/analysis/symbolic/) runs the
//      source directly over 128-bit integers,
//   2. the compiled witness solver solves the constraint system and both
//      encodings (Ginger and Zaatar R1CS) are checked for satisfiability,
//   3. the symbolic equivalence decider issues its verdict, and
//   4. periodically, a full argument round (commit + PCP queries with
//      PcpParams::Light) must ACCEPT the honestly-generated instance.
//
// Any divergence is shrunk by greedily deleting program statements while
// the failure reproduces, so a report carries a minimal source text plus
// the separating input vector.
//
// The generator tracks value widths the same way the compiler does and
// wraps gadget operands defensively (`idiv(a, 1 + abs(b))`, `abs(x) & ...`)
// so generated programs are total: every sampled input must agree, which
// keeps each iteration's signal high.

#ifndef SRC_TESTING_ZLANG_FUZZ_H_
#define SRC_TESTING_ZLANG_FUZZ_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/symbolic/equivalence.h"
#include "src/apps/harness.h"
#include "src/apps/suite.h"
#include "src/crypto/prg.h"

namespace zaatar {

struct ZlangFuzzCase {
  std::string name;
  std::vector<std::string> decls;  // fixed prefix: inputs, outputs, vars
  std::vector<std::string> stmts;  // droppable by the shrinker
  std::vector<std::string> outs;   // output bindings, kept

  std::string Source() const {
    std::string s = "program " + name + ";\n";
    for (const auto& l : decls) {
      s += l + "\n";
    }
    for (const auto& l : stmts) {
      s += l + "\n";
    }
    for (const auto& l : outs) {
      s += l + "\n";
    }
    return s;
  }
};

namespace fuzz_internal {

struct GenVar {
  std::string name;
  size_t width;  // current value-width bound, compiler-style
};

class ExprGen {
 public:
  ExprGen(Prg* prg, std::vector<GenVar>* vars) : prg_(prg), vars_(vars) {}

  // Returns (text, width bound). Width stays <= budget.
  std::pair<std::string, size_t> Gen(size_t depth, size_t budget) {
    if (depth == 0 || budget < 8 || prg_->NextBounded(4) == 0) {
      return Leaf(budget);
    }
    // No isqrt: its bit-by-bit auxiliary chain is beyond the determinism
    // fixpoint (a known analyzer limitation, DESIGN.md §14), so programs
    // using it can never reach a proof-grade verdict.
    switch (prg_->NextBounded(8)) {
      case 0:
      case 1: {  // a + b / a - b
        auto a = Gen(depth - 1, budget - 1);
        auto b = Gen(depth - 1, budget - 1);
        const char* op = prg_->NextBool() ? " + " : " - ";
        size_t w = (a.second > b.second ? a.second : b.second) + 1;
        return {"(" + a.first + op + b.first + ")", w};
      }
      case 2: {  // a * b
        auto a = Gen(depth - 1, budget / 2);
        auto b = Gen(depth - 1, budget - a.second);
        return {"(" + a.first + " * " + b.first + ")", a.second + b.second};
      }
      case 3: {  // comparison ? a : b
        auto c1 = Gen(depth - 1, 16);
        auto c2 = Gen(depth - 1, 16);
        const char* cmp = prg_->NextBool() ? " < " : " == ";
        auto a = Gen(depth - 1, budget);
        auto b = Gen(depth - 1, budget);
        size_t w = a.second > b.second ? a.second : b.second;
        return {"((" + c1.first + cmp + c2.first + ") ? " + a.first + " : " +
                    b.first + ")",
                w};
      }
      case 4: {  // min / max / abs
        auto a = Gen(depth - 1, budget);
        if (prg_->NextBounded(3) == 0) {
          return {"abs(" + a.first + ")", a.second};
        }
        auto b = Gen(depth - 1, budget);
        const char* fn = prg_->NextBool() ? "min" : "max";
        size_t w = a.second > b.second ? a.second : b.second;
        return {std::string(fn) + "(" + a.first + ", " + b.first + ")", w};
      }
      case 5: {  // idiv / imod with a guaranteed-positive small divisor
        auto a = Gen(depth - 1, budget);
        auto d = Gen(depth - 1, 12);
        const char* fn = prg_->NextBool() ? "idiv" : "imod";
        size_t w = fn[1] == 'd' ? a.second : 14;
        return {std::string(fn) + "(" + a.first + ", 1 + abs(" + d.first +
                    "))",
                w};
      }
      case 6: {  // bitwise on absolute values
        auto a = Gen(depth - 1, budget);
        auto b = Gen(depth - 1, budget);
        const char* op = prg_->NextBounded(3) == 0   ? " & "
                         : prg_->NextBounded(2) == 0 ? " | "
                                                     : " ^ ";
        size_t w = a.second > b.second ? a.second : b.second;
        return {"(abs(" + a.first + ")" + op + "abs(" + b.first + "))", w};
      }
      default: {  // shifts by a static amount
        auto a = Gen(depth - 1, budget - 4);
        size_t k = prg_->NextBounded(4);
        if (prg_->NextBool()) {
          return {"(" + a.first + " << " + std::to_string(k) + ")",
                  a.second + k};
        }
        return {"(" + a.first + " >> " + std::to_string(k) + ")", a.second};
      }
    }
  }

  std::pair<std::string, size_t> Leaf(size_t budget) {
    // Prefer variables whose width fits the budget; else a literal.
    std::vector<size_t> fits;
    for (size_t i = 0; i < vars_->size(); i++) {
      if ((*vars_)[i].width <= budget) {
        fits.push_back(i);
      }
    }
    if (!fits.empty() && prg_->NextBounded(5) != 0) {
      const GenVar& v = (*vars_)[fits[prg_->NextBounded(fits.size())]];
      return {v.name, v.width};
    }
    return {std::to_string(prg_->NextBounded(16)), 4};
  }

 private:
  Prg* prg_;
  std::vector<GenVar>* vars_;
};

}  // namespace fuzz_internal

// Generates a random well-formed, total zlang program. Value widths stay
// under 110 bits so F128 (kMaxWidth = 124) compiles every case.
inline ZlangFuzzCase GenerateZlangCase(Prg& prg, size_t case_id) {
  using fuzz_internal::ExprGen;
  using fuzz_internal::GenVar;
  constexpr size_t kBudget = 100;

  ZlangFuzzCase c;
  c.name = "fuzz_" + std::to_string(case_id);
  std::vector<GenVar> vars;

  size_t num_inputs = 2 + prg.NextBounded(2);
  for (size_t i = 0; i < num_inputs; i++) {
    size_t w = 6 + prg.NextBounded(5);
    std::string name = "x" + std::to_string(i);
    c.decls.push_back("input int<" + std::to_string(w) + "> " + name + ";");
    vars.push_back({name, w});
  }
  size_t num_outputs = 1 + prg.NextBounded(2);
  for (size_t i = 0; i < num_outputs; i++) {
    c.decls.push_back("output int<120> y" + std::to_string(i) + ";");
  }
  size_t num_temps = 3;
  for (size_t i = 0; i < num_temps; i++) {
    std::string name = "t" + std::to_string(i);
    c.decls.push_back("var int<116> " + name + ";");
    vars.push_back({name, 1});
  }

  ExprGen gen(&prg, &vars);
  auto temp_index = [&](size_t k) { return num_inputs + k; };
  size_t num_stmts = 4 + prg.NextBounded(5);
  for (size_t s = 0; s < num_stmts; s++) {
    size_t k = prg.NextBounded(num_temps);
    GenVar& t = vars[temp_index(k)];
    switch (prg.NextBounded(4)) {
      case 0: {  // if/else writing the same temp in both arms
        auto c1 = gen.Gen(1, 16);
        auto c2 = gen.Gen(1, 16);
        auto a = gen.Gen(2, kBudget);
        auto b = gen.Gen(2, kBudget);
        c.stmts.push_back("if (" + c1.first + " < " + c2.first + ") { " +
                          t.name + " = " + a.first + "; } else { " + t.name +
                          " = " + b.first + "; }");
        size_t w = a.second > b.second ? a.second : b.second;
        t.width = t.width > w ? t.width : w;
        break;
      }
      case 1: {  // bounded accumulation loop
        auto e = gen.Gen(2, kBudget - 8);
        std::string loop = "k" + std::to_string(s);
        c.stmts.push_back("for " + loop + " in 0..2 { " + t.name + " = " +
                          t.name + " + " + e.first + " + " + loop + "; }");
        size_t w = (t.width > e.second ? t.width : e.second) + 4;
        t.width = w;
        break;
      }
      default: {  // plain assignment
        auto e = gen.Gen(3, kBudget);
        c.stmts.push_back(t.name + " = " + e.first + ";");
        t.width = e.second;
        break;
      }
    }
    if (t.width > kBudget) {
      t.width = kBudget;  // widths are bounds; the budget caps growth
    }
  }
  for (size_t i = 0; i < num_outputs; i++) {
    auto e = gen.Gen(2, kBudget);
    c.outs.push_back("y" + std::to_string(i) + " = " + e.first + ";");
  }
  return c;
}

struct ZlangFuzzOutcome {
  bool ok = true;
  bool unknown = false;  // verdict was kUnknown (not a divergence)
  std::string detail;
  std::vector<int64_t> counterexample;
};

// Cross-checks one source text. `full_argument` additionally runs a
// commit + PCP round on an honestly-generated instance and requires ACCEPT.
template <typename F>
ZlangFuzzOutcome CheckZlangSource(const std::string& source, uint64_t seed,
                                  bool full_argument) {
  ZlangFuzzOutcome out;
  EquivOptions opt;
  opt.seed = seed;
  opt.num_samples = 12;
  opt.mismatch_search = 64;
  opt.exhaustive_cap = 512;
  EquivResult r;
  try {
    r = ProveEquivalence<F>(source, opt);
  } catch (const std::exception& e) {
    out.ok = false;
    out.detail = std::string("equivalence checker threw: ") + e.what();
    return out;
  }
  if (r.status == EquivStatus::kMismatch ||
      r.status == EquivStatus::kUnderconstrained) {
    out.ok = false;
    out.detail = std::string(EquivStatusName(r.status)) + ": " + r.detail +
                 (r.note.empty() ? "" : " (" + r.note + ")");
    out.counterexample = r.counterexample;
    return out;
  }
  out.unknown = r.status == EquivStatus::kUnknown;

  if (full_argument) {
    try {
      ProgramAst ast = Parse(source);
      CompiledProgram<F> prog = CompileZlang<F>(source);
      NativeInterp native(ast);
      Prg prg(seed ^ 0xF0F0);
      for (size_t tries = 0; tries < 16; tries++) {
        std::vector<int64_t> inputs =
            SampleNativeInputs(prog.inputs, prg, 6);
        NativeResult nat = native.Run(inputs);
        if (nat.status != NativeResult::Status::kOk) {
          continue;
        }
        App<F> app;
        app.name = "fuzz";
        app.source = source;
        std::vector<F> encoded;
        for (int64_t v : inputs) {
          encoded.push_back(EncodeSignedInt<F>(v));
        }
        std::vector<F> expected;
        for (__int128 v : nat.outputs) {
          expected.push_back(symbolic_internal::EncodeInt128<F>(v));
        }
        app.make_instance = [encoded, expected](Prg&) {
          AppInstance<F> inst;
          inst.inputs = encoded;
          inst.expected_outputs = expected;
          return inst;
        };
        auto m = MeasureZaatarBatch(app, prog, /*beta=*/1,
                                    PcpParams::Light(), seed,
                                    /*measure_native=*/false);
        if (!m.all_accepted) {
          out.ok = false;
          out.detail = "full argument REJECTED an honest instance";
          out.counterexample = inputs;
        }
        return out;
      }
    } catch (const std::exception& e) {
      out.ok = false;
      out.detail = std::string("full-argument check threw: ") + e.what();
      return out;
    }
  }
  return out;
}

// Greedy statement-deletion shrink: drops one statement at a time while the
// failure (equivalence-level, cheap) still reproduces.
template <typename F>
ZlangFuzzCase ShrinkZlangCase(ZlangFuzzCase c, uint64_t seed) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < c.stmts.size(); i++) {
      ZlangFuzzCase cand = c;
      cand.stmts.erase(cand.stmts.begin() + static_cast<long>(i));
      ZlangFuzzOutcome probe =
          CheckZlangSource<F>(cand.Source(), seed, /*full_argument=*/false);
      if (!probe.ok) {
        c = std::move(cand);
        changed = true;
        break;
      }
    }
  }
  return c;
}

struct ZlangFuzzReport {
  size_t iterations = 0;
  size_t unknown_verdicts = 0;
  size_t compile_errors = 0;
  // Set on the first divergence: minimal source + outcome.
  std::optional<std::string> failure;
};

// Runs `iters` generate/check cycles; every eighth case also runs the full
// argument round. Stops and shrinks at the first divergence.
template <typename F>
ZlangFuzzReport RunZlangFuzz(size_t iters, uint64_t seed) {
  ZlangFuzzReport report;
  Prg prg(seed);
  for (size_t i = 0; i < iters; i++) {
    report.iterations++;
    ZlangFuzzCase c = GenerateZlangCase(prg, i);
    std::string source = c.Source();
    try {
      CompileZlang<F>(source);
    } catch (const std::exception& e) {
      // A generator-width bug, not a compiler divergence — but it still
      // starves coverage, so surface it.
      report.compile_errors++;
      report.failure = "case " + std::to_string(i) +
                       " failed to compile: " + e.what() + "\n" + source;
      return report;
    }
    uint64_t case_seed = seed * 1000003 + i;
    ZlangFuzzOutcome out =
        CheckZlangSource<F>(source, case_seed, /*full_argument=*/i % 8 == 0);
    report.unknown_verdicts += out.unknown ? 1 : 0;
    if (!out.ok) {
      ZlangFuzzCase shrunk = ShrinkZlangCase<F>(std::move(c), case_seed);
      std::string msg = "case " + std::to_string(i) + ": " + out.detail;
      if (!out.counterexample.empty()) {
        msg += "\ninput =";
        for (int64_t v : out.counterexample) {
          msg += " " + std::to_string(v);
        }
      }
      msg += "\nshrunk reproducer:\n" + shrunk.Source();
      report.failure = std::move(msg);
      return report;
    }
  }
  return report;
}

}  // namespace zaatar

#endif  // SRC_TESTING_ZLANG_FUZZ_H_
