// FaultyTransport: a seeded, deterministic chaos decorator over any
// Transport. The transport analogue of the Corruptor/MaliciousProver byte
// taxonomy in fault_injection.h — where those model a peer that *lies*,
// this models a channel (or peer) that *drops, delays, duplicates,
// garbles, or stalls*. Frame corruption reuses the Corruptor primitives so
// the two taxonomies stay one vocabulary.
//
// All faults are injected on the send side (a fault "on the wire" is
// indistinguishable from one at the sender), sampled per frame from a Prg
// seeded by ChaosOptions::seed — a given (seed, schedule) pair replays
// bit-identically, which is what lets tests/chaos_test.cc sweep hundreds of
// schedules and still shrink any failure to one reproducible seed.
//
// Expected downstream behavior, by fault:
//   drop / stall  -> the receiver's recv deadline fires (kDeadlineExceeded)
//   truncate/flip -> the frame arrives but decodes to garbage: a kMalformed
//                    per-instance verdict (never an ACCEPT — the commitment
//                    and PCP checks are unchanged)
//   duplicate     -> the extra copy carries a stale instance index and is
//                    consumed as a kMalformed verdict by session ordering
//   delay         -> harmless unless it pushes past a deadline
// A stalled endpoint swallows every subsequent frame too (a half-dead peer,
// not a one-off loss), which is what forces reconnect-and-replay recovery
// rather than single-frame retries.

#ifndef SRC_TESTING_CHAOS_TRANSPORT_H_
#define SRC_TESTING_CHAOS_TRANSPORT_H_

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/crypto/prg.h"
#include "src/protocol/transport.h"
#include "src/testing/fault_injection.h"

namespace zaatar {

enum class ChaosFault {
  kNone = 0,
  kDrop,       // swallow this frame
  kDelay,      // deliver after a bounded random sleep
  kDuplicate,  // deliver twice
  kTruncate,   // deliver a strict prefix of the frame (mid-frame cut)
  kBitFlip,    // deliver with one random bit flipped
  kStall,      // swallow this frame and every later one (half-dead peer)
};

inline constexpr size_t kNumChaosFaults = 7;

inline const char* ChaosFaultName(ChaosFault f) {
  switch (f) {
    case ChaosFault::kNone:
      return "none";
    case ChaosFault::kDrop:
      return "drop";
    case ChaosFault::kDelay:
      return "delay";
    case ChaosFault::kDuplicate:
      return "duplicate";
    case ChaosFault::kTruncate:
      return "truncate";
    case ChaosFault::kBitFlip:
      return "bit-flip";
    case ChaosFault::kStall:
      return "stall";
  }
  return "unknown";
}

// Per-frame fault probabilities in per-mille (so schedules are exact
// integers and seeds replay identically across platforms). The sum of the
// per-mille weights must be <= 1000; the remainder is fault-free delivery.
struct ChaosOptions {
  uint64_t seed = 0;
  uint32_t drop_per_mille = 0;
  uint32_t delay_per_mille = 0;
  uint32_t duplicate_per_mille = 0;
  uint32_t truncate_per_mille = 0;
  uint32_t bitflip_per_mille = 0;
  uint32_t stall_per_mille = 0;
  std::chrono::milliseconds max_delay{5};

  uint32_t TotalPerMille() const {
    return drop_per_mille + delay_per_mille + duplicate_per_mille +
           truncate_per_mille + bitflip_per_mille + stall_per_mille;
  }

  // A representative mixed schedule, parameterized by seed: every fault
  // class enabled at rates that exercise both the corruption and the
  // recovery paths within a small batch.
  static ChaosOptions Mixed(uint64_t seed) {
    ChaosOptions o;
    o.seed = seed;
    o.drop_per_mille = 40;
    o.delay_per_mille = 80;
    o.duplicate_per_mille = 40;
    o.truncate_per_mille = 40;
    o.bitflip_per_mille = 40;
    o.stall_per_mille = 15;
    o.max_delay = std::chrono::milliseconds(2);
    return o;
  }
};

class FaultyTransport final : public protocol::Transport {
 public:
  FaultyTransport(std::unique_ptr<protocol::Transport> inner,
                  ChaosOptions options)
      : inner_(std::move(inner)), options_(options), prg_(options.seed) {}

  Status Send(const std::vector<uint8_t>& frame) override {
    ChaosFault fault;
    std::vector<uint8_t> mutated;
    std::chrono::milliseconds delay{0};
    {
      // The Prg and counters are guarded; the inner Send below is not under
      // the lock, so Close() from another thread never waits on a delay.
      std::lock_guard<std::mutex> lock(mu_);
      if (stalled_) {
        fault_counts_[static_cast<size_t>(ChaosFault::kStall)]++;
        return Status::Ok();  // the sender believes it delivered
      }
      fault = SampleFault();
      fault_counts_[static_cast<size_t>(fault)]++;
      switch (fault) {
        case ChaosFault::kStall:
          stalled_ = true;
          [[fallthrough]];
        case ChaosFault::kDrop:
          obs::MetricAdd("chaos.frames_lost");
          return Status::Ok();
        case ChaosFault::kTruncate:
          mutated = Corruptor::Truncate(
              frame, frame.empty() ? 0 : prg_.NextBounded(frame.size()));
          break;
        case ChaosFault::kBitFlip:
          mutated = frame.empty()
                        ? frame
                        : Corruptor::FlipBit(
                              frame, prg_.NextBounded(frame.size() * 8));
          break;
        case ChaosFault::kDelay:
          delay = std::chrono::milliseconds(
              1 + prg_.NextBounded(static_cast<uint64_t>(
                      std::max<int64_t>(options_.max_delay.count(), 1))));
          break;
        default:
          break;
      }
    }
    if (fault == ChaosFault::kDelay) {
      obs::MetricAdd("chaos.frames_delayed");
      std::this_thread::sleep_for(delay);
      return inner_->Send(frame);
    }
    if (fault == ChaosFault::kDuplicate) {
      obs::MetricAdd("chaos.frames_duplicated");
      ZAATAR_RETURN_IF_ERROR(inner_->Send(frame));
      return inner_->Send(frame);
    }
    if (fault == ChaosFault::kTruncate || fault == ChaosFault::kBitFlip) {
      obs::MetricAdd("chaos.frames_corrupted");
      return inner_->Send(mutated);
    }
    return inner_->Send(frame);
  }

  StatusOr<std::vector<uint8_t>> Receive() override {
    return inner_->Receive();
  }

  void Close() override { inner_->Close(); }

  uint64_t FaultCount(ChaosFault f) const {
    std::lock_guard<std::mutex> lock(mu_);
    return fault_counts_[static_cast<size_t>(f)];
  }

  uint64_t TotalFaults() const {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (size_t i = 1; i < kNumChaosFaults; i++) {  // skip kNone
      total += fault_counts_[i];
    }
    return total;
  }

 private:
  ChaosFault SampleFault() {
    const uint64_t r = prg_.NextBounded(1000);
    uint64_t edge = options_.drop_per_mille;
    if (r < edge) {
      return ChaosFault::kDrop;
    }
    edge += options_.delay_per_mille;
    if (r < edge) {
      return ChaosFault::kDelay;
    }
    edge += options_.duplicate_per_mille;
    if (r < edge) {
      return ChaosFault::kDuplicate;
    }
    edge += options_.truncate_per_mille;
    if (r < edge) {
      return ChaosFault::kTruncate;
    }
    edge += options_.bitflip_per_mille;
    if (r < edge) {
      return ChaosFault::kBitFlip;
    }
    edge += options_.stall_per_mille;
    if (r < edge) {
      return ChaosFault::kStall;
    }
    return ChaosFault::kNone;
  }

  std::unique_ptr<protocol::Transport> inner_;
  ChaosOptions options_;
  mutable std::mutex mu_;
  Prg prg_;
  bool stalled_ = false;
  std::array<uint64_t, kNumChaosFaults> fault_counts_{};
};

}  // namespace zaatar

#endif  // SRC_TESTING_CHAOS_TRANSPORT_H_
