#include "src/argument/cost_model.h"

#include <cmath>

namespace zaatar {

namespace {

double Log2(size_t n) { return n <= 1 ? 1.0 : std::log2(static_cast<double>(n)); }

}  // namespace

// ---- Zaatar ----

double CostModel::ZaatarConstructProof(const ComputationStats& s) const {
  double lg = Log2(s.c_zaatar);
  return s.t_local_s + 3.0 * micro_.f * s.c_zaatar * lg * lg;
}

double CostModel::ZaatarIssueResponses(const ComputationStats& s) const {
  double l_prime = static_cast<double>(params_.ZaatarTotalQueries());
  return (micro_.EffectiveH() + (params_.rho * l_prime + 1) * micro_.f) *
         s.ZaatarProofLen();
}

double CostModel::ZaatarProverPerInstance(const ComputationStats& s) const {
  return ZaatarConstructProof(s) + ZaatarIssueResponses(s);
}

double CostModel::ZaatarQuerySetupSpecific(const ComputationStats& s) const {
  return params_.rho *
         (micro_.c + (micro_.f_div + 5 * micro_.f) * s.c_zaatar +
          micro_.f * s.k + 3.0 * micro_.f * s.k2);
}

double CostModel::ZaatarQuerySetupOblivious(const ComputationStats& s) const {
  double l_prime = static_cast<double>(params_.ZaatarTotalQueries());
  return (micro_.e + 2 * micro_.c +
          params_.rho * (2.0 * params_.rho_lin * micro_.c +
                         l_prime * micro_.f)) *
         s.ZaatarProofLen();
}

double CostModel::ZaatarVerifierSetup(const ComputationStats& s) const {
  return ZaatarQuerySetupSpecific(s) + ZaatarQuerySetupOblivious(s);
}

double CostModel::ZaatarVerifierPerInstance(const ComputationStats& s) const {
  double l_prime = static_cast<double>(params_.ZaatarTotalQueries());
  return micro_.d + params_.rho *
                        (l_prime + 3.0 * (s.num_inputs + s.num_outputs)) *
                        micro_.f;
}

// ---- Ginger ----

double CostModel::GingerConstructProof(const ComputationStats& s) const {
  return s.t_local_s +
         micro_.f_lazy * static_cast<double>(s.z_ginger) * s.z_ginger;
}

double CostModel::GingerIssueResponses(const ComputationStats& s) const {
  double l = static_cast<double>(params_.GingerHighOrderQueries());
  return (micro_.EffectiveH() + (params_.rho * l + 1) * micro_.f) *
         s.GingerProofLen();
}

double CostModel::GingerProverPerInstance(const ComputationStats& s) const {
  return GingerConstructProof(s) + GingerIssueResponses(s);
}

double CostModel::GingerQuerySetupSpecific(const ComputationStats& s) const {
  return params_.rho * (micro_.c * s.c_ginger + micro_.f * s.k);
}

double CostModel::GingerQuerySetupOblivious(const ComputationStats& s) const {
  double l = static_cast<double>(params_.GingerHighOrderQueries());
  return (micro_.e + 2 * micro_.c +
          params_.rho *
              (2.0 * params_.rho_lin * micro_.c + (l + 1) * micro_.f)) *
         s.GingerProofLen();
}

double CostModel::GingerVerifierSetup(const ComputationStats& s) const {
  return GingerQuerySetupSpecific(s) + GingerQuerySetupOblivious(s);
}

double CostModel::GingerVerifierPerInstance(const ComputationStats& s) const {
  double l = static_cast<double>(params_.GingerHighOrderQueries());
  return micro_.d + params_.rho *
                        (2.0 * l + s.num_inputs + s.num_outputs) * micro_.f;
}

// ---- Encoding choice ----

CostModel::Encoding CostModel::ChooseEncoding(
    const ComputationStats& s) const {
  return GingerProverPerInstance(s) < ZaatarProverPerInstance(s)
             ? Encoding::kGinger
             : Encoding::kZaatar;
}

double CostModel::K2Star(const ComputationStats& s) {
  double z = static_cast<double>(s.z_ginger);
  return (z * z - z) / 2.0;
}

// ---- Break-even ----

double CostModel::BreakevenBatch(double setup_s, double per_instance_s,
                                 double t_local_s) {
  if (t_local_s <= per_instance_s) {
    return -1;
  }
  return setup_s / (t_local_s - per_instance_s);
}

double CostModel::ZaatarBreakeven(const ComputationStats& s) const {
  return BreakevenBatch(ZaatarVerifierSetup(s), ZaatarVerifierPerInstance(s),
                        s.t_local_s);
}

double CostModel::GingerBreakeven(const ComputationStats& s) const {
  return BreakevenBatch(GingerVerifierSetup(s), GingerVerifierPerInstance(s),
                        s.t_local_s);
}

// ---- Network ----

size_t NetworkCosts::SetupBytes(size_t proof_len, size_t field_bytes,
                                size_t group_bytes) {
  // Enc(r): two group elements per proof position; t vector: one field
  // element per position; queries: a 32-byte PRG seed.
  return proof_len * (2 * group_bytes + field_bytes) + 32;
}

size_t NetworkCosts::InstanceBytes(size_t num_queries, size_t field_bytes,
                                   size_t group_bytes) {
  // One commitment (two group elements) per oracle (x2), responses and the
  // t-response in field elements.
  return 2 * 2 * group_bytes + (num_queries + 2) * field_bytes;
}

}  // namespace zaatar
