// Distributing the prover (paper Figure 6): batch instances are independent,
// so the prover parallelizes across CPU workers with near-zero coordination,
// and cryptographic operations can be offloaded to an accelerator.
//
// Two pieces:
//   - ParallelFor (src/util/parallel_for.h, re-exported here): a real
//     thread-pool primitive used to distribute per-instance proving across
//     hardware threads and to chunk the multi-exponentiation kernels.
//   - DistributedProverModel: the latency model for the paper's cluster/GPU
//     configurations (e.g. "30C+30G"). On this reproduction's hardware we
//     measure single-worker phase costs empirically and model the fleet; the
//     GPU is modeled as a crypto-phase accelerator calibrated to the paper's
//     observation that GPUs cut per-instance latency by ~20% (see DESIGN.md
//     §5 on substitutions).

#ifndef SRC_ARGUMENT_PARALLEL_H_
#define SRC_ARGUMENT_PARALLEL_H_

#include <cmath>
#include <cstddef>
#include <string>

#include "src/argument/argument.h"
#include "src/util/parallel_for.h"  // ParallelFor itself lives in util/

namespace zaatar {

struct WorkerConfig {
  size_t cpu_cores = 1;
  size_t gpus = 0;
  // Crypto-phase acceleration per GPU-equipped core. 2.33x on the crypto
  // phase yields the paper's ~20% end-to-end per-instance gain given crypto
  // is ~35% of prover time (Figure 5).
  double gpu_crypto_speedup = 2.33;

  std::string Label() const {
    std::string s = std::to_string(cpu_cores) + "C";
    if (gpus > 0) {
      s += "+" + std::to_string(gpus) + "G";
    }
    return s;
  }
};

class DistributedProverModel {
 public:
  // Per-instance latency on one worker of the given configuration.
  static double InstanceLatency(const ProverCosts& costs,
                                const WorkerConfig& config) {
    double crypto = costs.crypto_s;
    if (config.gpus > 0) {
      crypto /= config.gpu_crypto_speedup;
    }
    return costs.solve_constraints_s + costs.construct_proof_s + crypto +
           costs.answer_queries_s;
  }

  // Latency of a batch of `beta` instances: instances are independent, so the
  // batch completes in ceil(beta / cores) sequential waves.
  static double BatchLatency(const ProverCosts& per_instance, size_t beta,
                             const WorkerConfig& config) {
    double waves = std::ceil(static_cast<double>(beta) /
                             static_cast<double>(config.cpu_cores));
    return waves * InstanceLatency(per_instance, config);
  }

  // Speedup versus proving the whole batch on a single plain CPU core.
  static double Speedup(const ProverCosts& per_instance, size_t beta,
                        const WorkerConfig& config) {
    WorkerConfig single{.cpu_cores = 1, .gpus = 0};
    return BatchLatency(per_instance, beta, single) /
           BatchLatency(per_instance, beta, config);
  }
};

}  // namespace zaatar

#endif  // SRC_ARGUMENT_PARALLEL_H_
