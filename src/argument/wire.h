// Concrete wire formats for the two protocol messages, realizing the
// network-cost structure of Appendix A.1 / the paper's cost discussion:
// the verifier ships a query *seed* (public coin) plus the encrypted
// commitment material; the prover ships commitments and responses.

#ifndef SRC_ARGUMENT_WIRE_H_
#define SRC_ARGUMENT_WIRE_H_

#include <array>
#include <vector>

#include "src/argument/argument.h"
#include "src/util/serialize.h"

namespace zaatar {

// V -> P, once per (computation, batch). The PCP queries are derived from
// `query_seed` by both parties (GenerateQueries is deterministic in the
// Prg); Enc(r) and t are the commitment phase-1/3 material. The verifier's
// secrets (r, alphas, the ElGamal secret key) never leave its side.
template <typename F>
struct SetupMessage {
  uint64_t query_seed = 0;
  // Per oracle: the encrypted r vector and the consistency vector t.
  std::array<std::vector<typename ElGamal<F>::Ciphertext>, 2> enc_r;
  std::array<std::vector<F>, 2> t;

  static SetupMessage FromSetup(
      uint64_t seed, const typename Argument<F, ZaatarAdapter<F>>::
                         VerifierSetup& setup) {
    SetupMessage msg;
    msg.query_seed = seed;
    for (size_t o = 0; o < 2; o++) {
      msg.enc_r[o] = setup.commit[o].enc_r;
      msg.t[o] = setup.commit[o].t;
    }
    return msg;
  }

  std::vector<uint8_t> Serialize() const {
    using Zp = typename ElGamal<F>::Zp;
    ByteWriter w;
    w.PutU64(query_seed);
    for (size_t o = 0; o < 2; o++) {
      w.PutU32(static_cast<uint32_t>(enc_r[o].size()));
      for (const auto& ct : enc_r[o]) {
        w.PutBigInt(ct.c1.ToCanonical());
        w.PutBigInt(ct.c2.ToCanonical());
      }
      PutFieldVector(&w, t[o]);
    }
    (void)sizeof(Zp);
    return w.bytes();
  }

  static SetupMessage Deserialize(const std::vector<uint8_t>& bytes) {
    using EG = ElGamal<F>;
    using Zp = typename EG::Zp;
    SetupMessage msg;
    ByteReader r(bytes);
    msg.query_seed = r.GetU64();
    for (size_t o = 0; o < 2; o++) {
      uint32_t n = r.GetU32();
      msg.enc_r[o].reserve(n);
      for (uint32_t i = 0; i < n; i++) {
        typename EG::Ciphertext ct;
        ct.c1 = Zp::FromCanonical(r.template GetBigInt<Zp::kLimbs>());
        ct.c2 = Zp::FromCanonical(r.template GetBigInt<Zp::kLimbs>());
        msg.enc_r[o].push_back(ct);
      }
      msg.t[o] = GetFieldVector<F>(&r);
    }
    if (!r.AtEnd()) {
      throw std::runtime_error("trailing bytes in SetupMessage");
    }
    return msg;
  }
};

// P -> V, once per instance.
template <typename F>
struct InstanceProofMessage {
  std::array<typename ElGamal<F>::Ciphertext, 2> commitments;
  std::array<std::vector<F>, 2> responses;
  std::array<F, 2> t_responses;

  template <typename Adapter>
  static InstanceProofMessage FromProof(
      const typename Argument<F, Adapter>::InstanceProof& proof) {
    InstanceProofMessage msg;
    for (size_t o = 0; o < 2; o++) {
      msg.commitments[o] = proof.parts[o].commitment;
      msg.responses[o] = proof.parts[o].responses;
      msg.t_responses[o] = proof.parts[o].t_response;
    }
    return msg;
  }

  // Rebuilds the in-memory proof (costs are transport metadata, not wire
  // content, and reset to zero).
  template <typename Adapter>
  typename Argument<F, Adapter>::InstanceProof ToProof() const {
    typename Argument<F, Adapter>::InstanceProof proof;
    for (size_t o = 0; o < 2; o++) {
      proof.parts[o].commitment = commitments[o];
      proof.parts[o].responses = responses[o];
      proof.parts[o].t_response = t_responses[o];
    }
    return proof;
  }

  std::vector<uint8_t> Serialize() const {
    ByteWriter w;
    for (size_t o = 0; o < 2; o++) {
      w.PutBigInt(commitments[o].c1.ToCanonical());
      w.PutBigInt(commitments[o].c2.ToCanonical());
      PutFieldVector(&w, responses[o]);
      PutField(&w, t_responses[o]);
    }
    return w.bytes();
  }

  static InstanceProofMessage Deserialize(const std::vector<uint8_t>& bytes) {
    using EG = ElGamal<F>;
    using Zp = typename EG::Zp;
    InstanceProofMessage msg;
    ByteReader r(bytes);
    for (size_t o = 0; o < 2; o++) {
      msg.commitments[o].c1 =
          Zp::FromCanonical(r.template GetBigInt<Zp::kLimbs>());
      msg.commitments[o].c2 =
          Zp::FromCanonical(r.template GetBigInt<Zp::kLimbs>());
      msg.responses[o] = GetFieldVector<F>(&r);
      msg.t_responses[o] = GetField<F>(&r);
    }
    if (!r.AtEnd()) {
      throw std::runtime_error("trailing bytes in InstanceProofMessage");
    }
    return msg;
  }
};

}  // namespace zaatar

#endif  // SRC_ARGUMENT_WIRE_H_
