// Concrete wire formats for the two protocol messages, realizing the
// network-cost structure of Appendix A.1 / the paper's cost discussion:
// the verifier ships a query *seed* (public coin) plus the encrypted
// commitment material; the prover ships commitments and responses.
//
// Deserialize() is the trust boundary: bytes from the peer are arbitrary.
// Both decoders return StatusOr instead of throwing, validate every length
// prefix before allocating (a hostile 0xFFFFFFFF element count fails as
// LENGTH_OVERFLOW, it cannot OOM the verifier), and range-check every field
// element and ElGamal ciphertext component against its modulus (OUT_OF_RANGE
// rather than silent reduction). Trailing bytes are MALFORMED.

#ifndef SRC_ARGUMENT_WIRE_H_
#define SRC_ARGUMENT_WIRE_H_

#include <array>
#include <string>
#include <utility>
#include <vector>

#include "src/argument/argument.h"
#include "src/util/serialize.h"
#include "src/util/status.h"

namespace zaatar {

// V -> P, once per (computation, batch). The PCP queries are derived from
// `query_seed` by both parties (GenerateQueries is deterministic in the
// Prg); Enc(r) and t are the commitment phase-1/3 material. The verifier's
// secrets (r, alphas, the ElGamal secret key) never leave its side.
template <typename F>
struct SetupMessage {
  uint64_t query_seed = 0;
  // Per oracle: the encrypted r vector and the consistency vector t.
  std::array<std::vector<typename ElGamal<F>::Ciphertext>, 2> enc_r;
  std::array<std::vector<F>, 2> t;

  static SetupMessage FromSetup(
      uint64_t seed, const typename Argument<F, ZaatarAdapter<F>>::
                         VerifierSetup& setup) {
    SetupMessage msg;
    msg.query_seed = seed;
    for (size_t o = 0; o < 2; o++) {
      msg.enc_r[o] = setup.shared[o].enc_r;
      msg.t[o] = setup.shared[o].t;
    }
    return msg;
  }

  std::vector<uint8_t> Serialize() const {
    ByteWriter w;
    w.PutU64(query_seed);
    for (size_t o = 0; o < 2; o++) {
      w.PutU32(static_cast<uint32_t>(enc_r[o].size()));
      for (const auto& ct : enc_r[o]) {
        w.PutBigInt(ct.c1.ToCanonical());
        w.PutBigInt(ct.c2.ToCanonical());
      }
      PutFieldVector(&w, t[o]);
    }
    return w.bytes();
  }

  static StatusOr<SetupMessage> Deserialize(
      const std::vector<uint8_t>& bytes) {
    using EG = ElGamal<F>;
    using Zp = typename EG::Zp;
    SetupMessage msg;
    ByteReader r(bytes);
    ZAATAR_ASSIGN_OR_RETURN(msg.query_seed, r.GetU64());
    for (size_t o = 0; o < 2; o++) {
      // Each ciphertext is two canonical Zp elements.
      ZAATAR_ASSIGN_OR_RETURN(uint32_t n, r.GetLength(2 * Zp::kLimbs * 8));
      msg.enc_r[o].reserve(n);
      for (uint32_t i = 0; i < n; i++) {
        typename EG::Ciphertext ct;
        ZAATAR_ASSIGN_OR_RETURN(ct.c1, GetField<Zp>(&r));
        ZAATAR_ASSIGN_OR_RETURN(ct.c2, GetField<Zp>(&r));
        msg.enc_r[o].push_back(ct);
      }
      ZAATAR_ASSIGN_OR_RETURN(msg.t[o], GetFieldVector<F>(&r));
    }
    ZAATAR_RETURN_IF_ERROR(r.ExpectEnd());
    return msg;
  }
};

// P -> V, once per instance.
template <typename F>
struct InstanceProofMessage {
  std::array<typename ElGamal<F>::Ciphertext, 2> commitments;
  std::array<std::vector<F>, 2> responses;
  std::array<F, 2> t_responses;

  template <typename Adapter>
  static InstanceProofMessage FromProof(
      const typename Argument<F, Adapter>::InstanceProof& proof) {
    InstanceProofMessage msg;
    for (size_t o = 0; o < 2; o++) {
      msg.commitments[o] = proof.parts[o].commitment;
      msg.responses[o] = proof.parts[o].responses;
      msg.t_responses[o] = proof.parts[o].t_response;
    }
    return msg;
  }

  // Rebuilds the in-memory proof (costs are transport metadata, not wire
  // content, and reset to zero).
  template <typename Adapter>
  typename Argument<F, Adapter>::InstanceProof ToProof() const {
    typename Argument<F, Adapter>::InstanceProof proof;
    for (size_t o = 0; o < 2; o++) {
      proof.parts[o].commitment = commitments[o];
      proof.parts[o].responses = responses[o];
      proof.parts[o].t_response = t_responses[o];
    }
    return proof;
  }

  std::vector<uint8_t> Serialize() const {
    ByteWriter w;
    for (size_t o = 0; o < 2; o++) {
      w.PutBigInt(commitments[o].c1.ToCanonical());
      w.PutBigInt(commitments[o].c2.ToCanonical());
      PutFieldVector(&w, responses[o]);
      PutField(&w, t_responses[o]);
    }
    return w.bytes();
  }

  static StatusOr<InstanceProofMessage> Deserialize(
      const std::vector<uint8_t>& bytes) {
    using EG = ElGamal<F>;
    using Zp = typename EG::Zp;
    InstanceProofMessage msg;
    ByteReader r(bytes);
    for (size_t o = 0; o < 2; o++) {
      ZAATAR_ASSIGN_OR_RETURN(msg.commitments[o].c1, GetField<Zp>(&r));
      ZAATAR_ASSIGN_OR_RETURN(msg.commitments[o].c2, GetField<Zp>(&r));
      ZAATAR_ASSIGN_OR_RETURN(msg.responses[o], GetFieldVector<F>(&r));
      ZAATAR_ASSIGN_OR_RETURN(msg.t_responses[o], GetField<F>(&r));
    }
    ZAATAR_RETURN_IF_ERROR(r.ExpectEnd());
    return msg;
  }
};

// The full hardened ingest path: untrusted bytes -> typed verdict. Decode
// failures map to kMalformed (with the decoder's detail); decoded proofs go
// through shape validation and the cryptographic checks. This is the entry
// point a network-facing verifier should use — it cannot throw on any input.
template <typename F, typename Adapter>
VerifyInstanceResult VerifyInstanceBytes(
    const typename Argument<F, Adapter>::VerifierSetup& setup,
    const std::vector<uint8_t>& proof_bytes,
    const std::vector<F>& bound_values, double* seconds = nullptr) {
  auto decoded = InstanceProofMessage<F>::Deserialize(proof_bytes);
  if (!decoded.ok()) {
    return VerifyInstanceResult::Reject(VerifyVerdict::kMalformed,
                                        decoded.status().ToString());
  }
  auto proof = decoded->template ToProof<Adapter>();
  return Argument<F, Adapter>::VerifyInstanceDetailed(setup, proof,
                                                      bound_values, seconds);
}

// Batch form of VerifyInstanceBytes: each instance's bytes are decoded and
// verified independently, so one hostile message yields one kMalformed slot
// and leaves the other beta-1 verdicts intact.
template <typename F, typename Adapter>
std::vector<VerifyInstanceResult> VerifyBatchBytes(
    const typename Argument<F, Adapter>::VerifierSetup& setup,
    const std::vector<std::vector<uint8_t>>& proof_bytes,
    const std::vector<std::vector<F>>& bound_values,
    double* seconds = nullptr) {
  std::vector<VerifyInstanceResult> results;
  results.reserve(proof_bytes.size());
  for (size_t i = 0; i < proof_bytes.size(); i++) {
    if (i < bound_values.size()) {
      results.push_back(VerifyInstanceBytes<F, Adapter>(
          setup, proof_bytes[i], bound_values[i], seconds));
    } else {
      results.push_back(VerifyInstanceResult::Reject(
          VerifyVerdict::kMalformed,
          "instance " + std::to_string(i) + ": missing bound values (batch " +
              "carries " + std::to_string(bound_values.size()) +
              " bound value vectors)"));
    }
  }
  return results;
}

}  // namespace zaatar

#endif  // SRC_ARGUMENT_WIRE_H_
