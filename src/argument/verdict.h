// Per-instance verdict taxonomy and per-phase cost structs, shared by both
// sides of the protocol boundary.
//
// These used to live in argument.h, but that header also defines the
// verifier's secret state (VerifierSecrets: the ElGamal secret key, the
// plaintext r vectors, the alphas). The prover-side session headers under
// src/protocol/ must be able to name verdicts and costs WITHOUT transitively
// including any verifier-secret machinery — tests/protocol_isolation_test.cc
// enforces that split at the include-graph level.

#ifndef SRC_ARGUMENT_VERDICT_H_
#define SRC_ARGUMENT_VERDICT_H_

#include <cstddef>
#include <string>
#include <utility>

namespace zaatar {

// Typed per-instance verdict. The verifier runs against an arbitrarily
// malicious prover, so "not accepted" is split by *where* the instance
// failed: a structurally invalid proof (kMalformed) never reaches the
// cryptographic checks, a commitment-consistency failure (kRejectCommit) is
// distinguished from a PCP decision failure (kRejectPcp). A non-accept
// verdict is an ordinary per-instance outcome: it must never abort the
// remaining instances of a batch.
enum class VerifyVerdict {
  kAccept = 0,
  kMalformed,      // proof shape disagrees with the setup
  kRejectCommit,   // responses inconsistent with the commitment
  kRejectPcp,      // commitment fine, PCP decision procedure rejects
  // The channel failed, not the proof: the transport died or stalled past
  // its deadline (and retries, if configured, were exhausted) before this
  // instance could be decided. Unlike the reject verdicts this says nothing
  // about the prover's honesty — the instance may be re-submitted — but it
  // still counts as not-accepted so a flaky channel can never launder an
  // undecided instance into an accepting batch.
  kTransportFailed,
};

// Number of values in VerifyVerdict, for per-verdict counters.
inline constexpr size_t kNumVerifyVerdicts = 5;

inline const char* VerifyVerdictName(VerifyVerdict v) {
  switch (v) {
    case VerifyVerdict::kAccept:
      return "ACCEPT";
    case VerifyVerdict::kMalformed:
      return "MALFORMED";
    case VerifyVerdict::kRejectCommit:
      return "REJECT_COMMIT";
    case VerifyVerdict::kRejectPcp:
      return "REJECT_PCP";
    case VerifyVerdict::kTransportFailed:
      return "TRANSPORT_FAILED";
  }
  return "UNKNOWN";
}

struct VerifyInstanceResult {
  VerifyVerdict verdict = VerifyVerdict::kMalformed;
  std::string detail;  // non-empty for kMalformed: which check failed

  bool accepted() const { return verdict == VerifyVerdict::kAccept; }

  static VerifyInstanceResult Accept() {
    return {VerifyVerdict::kAccept, ""};
  }
  static VerifyInstanceResult Reject(VerifyVerdict v, std::string why = "") {
    return {v, std::move(why)};
  }
};

// Prover per-instance cost decomposition (the Figure 5 columns; the first
// two phases happen in the application layer and are filled in by it).
struct ProverCosts {
  double solve_constraints_s = 0;
  double construct_proof_s = 0;
  double crypto_s = 0;
  double answer_queries_s = 0;

  double Total() const {
    return solve_constraints_s + construct_proof_s + crypto_s +
           answer_queries_s;
  }

  ProverCosts& operator+=(const ProverCosts& o) {
    solve_constraints_s += o.solve_constraints_s;
    construct_proof_s += o.construct_proof_s;
    crypto_s += o.crypto_s;
    answer_queries_s += o.answer_queries_s;
    return *this;
  }
};

struct VerifierSetupCosts {
  double query_generation_s = 0;  // computation-specific + oblivious queries
  double commit_setup_s = 0;      // Enc(r) and t vectors

  double Total() const { return query_generation_s + commit_setup_s; }
};

}  // namespace zaatar

#endif  // SRC_ARGUMENT_VERDICT_H_
