// The batched efficient-argument protocol: linear commitment wrapped around a
// two-oracle linear PCP (paper Figure 2 with Zaatar's shaded replacements, or
// the original Ginger pieces via GingerAdapter).
//
// Batch model (§2.2): the verifier's query generation, encryption of r, and
// consistency vectors t are produced once per (computation, batch) in
// Setup(); each of the beta instances then runs Prove()/VerifyInstance().
//
// The setup state is split along the trust boundary: VerifierSecrets (the
// ElGamal secret key, the plaintext r vectors, the alphas) never leaves the
// verifier's side, while the shared halves (Enc(r), t) plus the plaintext
// queries are exactly what a protocol::SetupMessage ships to the prover. The
// prover-facing entry points consume a ProverContext — reconstructable
// purely from SetupMessage bytes — so prover code cannot even name the
// secrets (src/protocol/prover_session.h, tests/protocol_isolation_test.cc).

#ifndef SRC_ARGUMENT_ARGUMENT_H_
#define SRC_ARGUMENT_ARGUMENT_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/argument/verdict.h"
#include "src/commit/commitment.h"
#include "src/crypto/elgamal.h"
#include "src/crypto/prg.h"
#include "src/pcp/ginger_pcp.h"
#include "src/pcp/zaatar_pcp.h"
#include "src/protocol/messages.h"
#include "src/protocol/prover_context.h"
#include "src/util/status.h"
#include "src/util/stopwatch.h"

namespace zaatar {

// Adapter requirements (see ZaatarAdapter / GingerAdapter below):
//   using Queries = ...;
//   static size_t OracleLength(const Queries&, size_t oracle);          // 0,1
//   static const std::vector<std::vector<F>>& OracleQueries(const Queries&,
//                                                           size_t oracle);
//   static size_t BoundValueCount(const Queries&);  // expected |inputs|+|outputs|
//   static bool Decide(const Queries&, resp0, resp1, bound_values);
//   static Status ValidateProverVectors(const ProverContext<F>&,
//                                       const std::array<const
//                                       std::vector<F>*, 2>&);
template <typename F, typename Adapter>
class Argument {
 public:
  using EG = ElGamal<F>;

  // Everything that must stay on the verifier's side of the transport:
  // serializing any of these toward the prover breaks hiding (r), the
  // consistency check (alphas), or the whole commitment (sk).
  struct VerifierSecrets {
    typename EG::SecretKey sk;
    std::array<OracleCommitSecrets<F>, 2> commit;
  };

  struct VerifierSetup {
    typename EG::PublicKey pk;
    typename Adapter::Queries queries;
    VerifierSecrets secrets;
    std::array<OracleCommitShared<F>, 2> shared;
    VerifierSetupCosts costs;

    size_t TotalQueryElements() const {
      size_t n = 0;
      for (size_t o = 0; o < 2; o++) {
        n += Adapter::OracleQueries(queries, o).size() *
             Adapter::OracleLength(queries, o);
      }
      return n;
    }

    // The message the prover receives: public key, Enc(r), plaintext
    // queries, t. Everything in VerifierSecrets stays out by construction.
    protocol::SetupMessage<F> ToSetupMessage() const {
      protocol::SetupMessage<F> msg;
      msg.pk = pk;
      for (size_t o = 0; o < 2; o++) {
        msg.oracles[o].enc_r = shared[o].enc_r;
        msg.oracles[o].queries = Adapter::OracleQueries(queries, o);
        msg.oracles[o].t = shared[o].t;
      }
      return msg;
    }

    // The honest prover's in-process view — identical content to decoding
    // ToSetupMessage().Serialize(), without the byte round trip (tests pin
    // the equivalence).
    ProverContext<F> ProverView() const {
      ProverContext<F> ctx;
      ctx.pk = pk;
      for (size_t o = 0; o < 2; o++) {
        ctx.oracles[o].enc_r = shared[o].enc_r;
        ctx.oracles[o].queries = Adapter::OracleQueries(queries, o);
        ctx.oracles[o].t = shared[o].t;
      }
      return ctx;
    }
  };

  struct InstanceProof {
    std::array<OracleProofPart<F>, 2> parts;
    ProverCosts costs;
  };

  // Verifier, once per batch. `queries` should come from the PCP's
  // GenerateQueries (its cost belongs to query_generation_s and is measured
  // by the caller; pass it in `query_generation_seconds`). `workers` > 1
  // chunks the Enc(r) row encryptions across threads.
  static VerifierSetup Setup(typename Adapter::Queries queries, Prg& prg,
                             double query_generation_seconds = 0,
                             size_t workers = 1) {
    VerifierSetup s;
    s.costs.query_generation_s = query_generation_seconds;
    Stopwatch timer;
    typename EG::KeyPair keys = EG::GenerateKeys(prg);
    s.pk = keys.pk;
    s.secrets.sk = keys.sk;
    s.queries = std::move(queries);
    for (size_t o = 0; o < 2; o++) {
      OracleCommitSetup<F> commit = LinearCommitment<F>::CreateSetup(
          s.pk, Adapter::OracleLength(s.queries, o),
          Adapter::OracleQueries(s.queries, o), prg, workers);
      s.secrets.commit[o] = std::move(commit.secrets);
      s.shared[o] = std::move(commit.shared);
    }
    s.costs.commit_setup_s = timer.ElapsedSeconds();
    return s;
  }

  // Prover, once per instance, against the prover's own view of the batch
  // (reconstructed from SetupMessage bytes by the session layer).
  // `proof_vectors` are the two oracle vectors (e.g. z and h); construct-u /
  // solve costs are added by the caller. `workers` > 1 splits the commitment
  // multi-exponentiations across threads — the intra-instance counterpart of
  // the across-instance parallelism in src/argument/parallel.h.
  static InstanceProof Prove(
      const std::array<const std::vector<F>*, 2>& proof_vectors,
      const ProverContext<F>& ctx, size_t workers = 1) {
    InstanceProof p;
    for (size_t o = 0; o < 2; o++) {
      auto part = LinearCommitment<F>::Prove(
          *proof_vectors[o], ctx.oracles[o], &p.costs.crypto_s,
          &p.costs.answer_queries_s, workers);
      if (!part.ok()) {
        // Callers screen shapes (ValidateProverVectors) before proving, so
        // reaching this is a caller bug, not a protocol outcome.
        throw std::invalid_argument("Argument::Prove oracle " +
                                    std::to_string(o) + ": " +
                                    part.status().ToString());
      }
      p.parts[o] = std::move(part).value();
    }
    return p;
  }

  // In-process convenience for tests, examples, and benches: prove directly
  // against the shared half of the verifier's setup without materializing a
  // ProverContext (no copies — bench_fig6 calls this in a loop).
  static InstanceProof Prove(
      const std::array<const std::vector<F>*, 2>& proof_vectors,
      const VerifierSetup& setup, size_t workers = 1) {
    InstanceProof p;
    for (size_t o = 0; o < 2; o++) {
      auto part = LinearCommitment<F>::Prove(
          *proof_vectors[o], setup.shared[o].enc_r,
          Adapter::OracleQueries(setup.queries, o), setup.shared[o].t,
          &p.costs.crypto_s, &p.costs.answer_queries_s, workers);
      if (!part.ok()) {
        throw std::invalid_argument("Argument::Prove oracle " +
                                    std::to_string(o) + ": " +
                                    part.status().ToString());
      }
      p.parts[o] = std::move(part).value();
    }
    return p;
  }

  // Structural validation of an untrusted proof against the setup: every
  // vector the cryptographic checks will index must have exactly the shape
  // the setup prescribes. Runs before any group operation so a malformed
  // proof cannot trigger out-of-bounds reads in CheckConsistency or Decide.
  static Status ValidateProofShape(const VerifierSetup& setup,
                                   const InstanceProof& proof,
                                   const std::vector<F>& bound_values) {
    for (size_t o = 0; o < 2; o++) {
      size_t expected = Adapter::OracleQueries(setup.queries, o).size();
      if (proof.parts[o].responses.size() != expected) {
        return ShapeMismatchError("oracle " + std::to_string(o) +
                                  " response count mismatch");
      }
      if (setup.secrets.commit[o].alphas.size() != expected) {
        return MalformedError("setup alpha count mismatch");
      }
    }
    if (bound_values.size() != Adapter::BoundValueCount(setup.queries)) {
      return ShapeMismatchError("bound value count mismatch");
    }
    return Status::Ok();
  }

  // Verifier, once per instance, with the full verdict taxonomy.
  // `bound_values` are inputs then outputs.
  static VerifyInstanceResult VerifyInstanceDetailed(
      const VerifierSetup& setup, const InstanceProof& proof,
      const std::vector<F>& bound_values, double* seconds = nullptr) {
    Stopwatch timer;
    VerifyInstanceResult result = VerifyInstanceResult::Accept();
    Status shape = ValidateProofShape(setup, proof, bound_values);
    if (!shape.ok()) {
      result = VerifyInstanceResult::Reject(VerifyVerdict::kMalformed,
                                            shape.message());
    }
    for (size_t o = 0; o < 2 && result.accepted(); o++) {
      if (!LinearCommitment<F>::CheckConsistency(
              setup.pk, setup.secrets.sk, setup.secrets.commit[o],
              proof.parts[o])) {
        result = VerifyInstanceResult::Reject(
            VerifyVerdict::kRejectCommit,
            "oracle " + std::to_string(o) + " commitment inconsistent");
      }
    }
    if (result.accepted() &&
        !Adapter::Decide(setup.queries, proof.parts[0].responses,
                         proof.parts[1].responses, bound_values)) {
      result = VerifyInstanceResult::Reject(VerifyVerdict::kRejectPcp);
    }
    if (seconds != nullptr) {
      *seconds += timer.ElapsedSeconds();
    }
    return result;
  }

  // Boolean convenience wrapper over VerifyInstanceDetailed.
  static bool VerifyInstance(const VerifierSetup& setup,
                             const InstanceProof& proof,
                             const std::vector<F>& bound_values,
                             double* seconds = nullptr) {
    return VerifyInstanceDetailed(setup, proof, bound_values, seconds)
        .accepted();
  }

  // Verifies every instance of a batch and reports a per-instance verdict:
  // one malicious or malformed instance is isolated, never aborting the
  // remaining beta-1 (the batch amortization of §2.2 assumes all instances
  // are checked regardless of individual outcomes). A proofs/bound-values
  // count mismatch is a caller-side batch assembly bug, not a per-instance
  // outcome, and is rejected up front with a typed error naming the first
  // instance that would be missing its bound values.
  static StatusOr<std::vector<VerifyInstanceResult>> VerifyBatch(
      const VerifierSetup& setup, const std::vector<InstanceProof>& proofs,
      const std::vector<std::vector<F>>& bound_values,
      double* seconds = nullptr) {
    if (proofs.size() != bound_values.size()) {
      const size_t first_bad = std::min(proofs.size(), bound_values.size());
      return MalformedError(
          "batch shape mismatch: " + std::to_string(proofs.size()) +
          " proofs vs " + std::to_string(bound_values.size()) +
          " bound value vectors (first unmatched instance: " +
          std::to_string(first_bad) + ")");
    }
    std::vector<VerifyInstanceResult> results;
    results.reserve(proofs.size());
    for (size_t i = 0; i < proofs.size(); i++) {
      results.push_back(
          VerifyInstanceDetailed(setup, proofs[i], bound_values[i], seconds));
    }
    return results;
  }
};

template <typename F>
struct ZaatarAdapter {
  using Queries = typename ZaatarPcp<F>::Queries;
  static size_t OracleLength(const Queries& q, size_t oracle) {
    return oracle == 0 ? q.z_len : q.h_len;
  }
  static const std::vector<std::vector<F>>& OracleQueries(const Queries& q,
                                                          size_t oracle) {
    return oracle == 0 ? q.z_queries : q.h_queries;
  }
  static size_t BoundValueCount(const Queries& q) {
    // Every repetition carries the bound-variable rows (constant row first).
    return q.reps.empty() ? 0 : q.reps[0].a_bound.size() - 1;
  }
  static bool Decide(const Queries& q, const std::vector<F>& r0,
                     const std::vector<F>& r1,
                     const std::vector<F>& bound_values) {
    return ZaatarPcp<F>::Decide(q, r0, r1, bound_values);
  }
  // The z and h oracles are independent vectors; the generic per-oracle
  // length check is the whole shape contract.
  static Status ValidateProverVectors(
      const ProverContext<F>& ctx,
      const std::array<const std::vector<F>*, 2>& vectors) {
    return ctx.ValidateVectors(vectors);
  }
};

template <typename F>
struct GingerAdapter {
  using Queries = typename GingerPcp<F>::Queries;
  static size_t OracleLength(const Queries& q, size_t oracle) {
    return oracle == 0 ? q.n : q.n * q.n;
  }
  static const std::vector<std::vector<F>>& OracleQueries(const Queries& q,
                                                          size_t oracle) {
    return oracle == 0 ? q.pi1_queries : q.pi2_queries;
  }
  static size_t BoundValueCount(const Queries& q) {
    return q.reps.empty() ? 0 : q.reps[0].gamma_bound.size();
  }
  static bool Decide(const Queries& q, const std::vector<F>& r0,
                     const std::vector<F>& r1,
                     const std::vector<F>& bound_values) {
    return GingerPcp<F>::Decide(q, r0, r1, bound_values);
  }
  // Ginger's second oracle is the tensor z ⊗ z: besides the generic length
  // check, the context itself must relate the two oracle lengths
  // quadratically or the setup cannot have come from an honest verifier.
  static Status ValidateProverVectors(
      const ProverContext<F>& ctx,
      const std::array<const std::vector<F>*, 2>& vectors) {
    const size_t n = ctx.oracles[0].oracle_length();
    if (ctx.oracles[1].oracle_length() != n * n) {
      return MalformedError("tensor oracle length is not |z|^2");
    }
    return ctx.ValidateVectors(vectors);
  }
};

template <typename F>
using ZaatarArgument = Argument<F, ZaatarAdapter<F>>;
template <typename F>
using GingerArgument = Argument<F, GingerAdapter<F>>;

}  // namespace zaatar

#endif  // SRC_ARGUMENT_ARGUMENT_H_
