// The batched efficient-argument protocol: linear commitment wrapped around a
// two-oracle linear PCP (paper Figure 2 with Zaatar's shaded replacements, or
// the original Ginger pieces via GingerAdapter).
//
// Batch model (§2.2): the verifier's query generation, encryption of r, and
// consistency vectors t are produced once per (computation, batch) in
// Setup(); each of the beta instances then runs Prove()/VerifyInstance().

#ifndef SRC_ARGUMENT_ARGUMENT_H_
#define SRC_ARGUMENT_ARGUMENT_H_

#include <array>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "src/commit/commitment.h"
#include "src/crypto/elgamal.h"
#include "src/crypto/prg.h"
#include "src/pcp/ginger_pcp.h"
#include "src/pcp/zaatar_pcp.h"
#include "src/util/status.h"
#include "src/util/stopwatch.h"

namespace zaatar {

// Typed per-instance verdict. The verifier runs against an arbitrarily
// malicious prover, so "not accepted" is split by *where* the instance
// failed: a structurally invalid proof (kMalformed) never reaches the
// cryptographic checks, a commitment-consistency failure (kRejectCommit) is
// distinguished from a PCP decision failure (kRejectPcp). A non-accept
// verdict is an ordinary per-instance outcome: it must never abort the
// remaining instances of a batch.
enum class VerifyVerdict {
  kAccept = 0,
  kMalformed,      // proof shape disagrees with the setup
  kRejectCommit,   // responses inconsistent with the commitment
  kRejectPcp,      // commitment fine, PCP decision procedure rejects
};

inline const char* VerifyVerdictName(VerifyVerdict v) {
  switch (v) {
    case VerifyVerdict::kAccept:
      return "ACCEPT";
    case VerifyVerdict::kMalformed:
      return "MALFORMED";
    case VerifyVerdict::kRejectCommit:
      return "REJECT_COMMIT";
    case VerifyVerdict::kRejectPcp:
      return "REJECT_PCP";
  }
  return "UNKNOWN";
}

struct VerifyInstanceResult {
  VerifyVerdict verdict = VerifyVerdict::kMalformed;
  std::string detail;  // non-empty for kMalformed: which check failed

  bool accepted() const { return verdict == VerifyVerdict::kAccept; }

  static VerifyInstanceResult Accept() {
    return {VerifyVerdict::kAccept, ""};
  }
  static VerifyInstanceResult Reject(VerifyVerdict v, std::string why = "") {
    return {v, std::move(why)};
  }
};

// Prover per-instance cost decomposition (the Figure 5 columns; the first
// two phases happen in the application layer and are filled in by it).
struct ProverCosts {
  double solve_constraints_s = 0;
  double construct_proof_s = 0;
  double crypto_s = 0;
  double answer_queries_s = 0;

  double Total() const {
    return solve_constraints_s + construct_proof_s + crypto_s +
           answer_queries_s;
  }

  ProverCosts& operator+=(const ProverCosts& o) {
    solve_constraints_s += o.solve_constraints_s;
    construct_proof_s += o.construct_proof_s;
    crypto_s += o.crypto_s;
    answer_queries_s += o.answer_queries_s;
    return *this;
  }
};

struct VerifierSetupCosts {
  double query_generation_s = 0;  // computation-specific + oblivious queries
  double commit_setup_s = 0;      // Enc(r) and t vectors

  double Total() const { return query_generation_s + commit_setup_s; }
};

// Adapter requirements (see ZaatarAdapter / GingerAdapter below):
//   using Queries = ...;
//   static size_t OracleLength(const Queries&, size_t oracle);          // 0,1
//   static const std::vector<std::vector<F>>& OracleQueries(const Queries&,
//                                                           size_t oracle);
//   static size_t BoundValueCount(const Queries&);  // expected |inputs|+|outputs|
//   static bool Decide(const Queries&, resp0, resp1, bound_values);
template <typename F, typename Adapter>
class Argument {
 public:
  using EG = ElGamal<F>;

  struct VerifierSetup {
    typename EG::KeyPair keys;
    typename Adapter::Queries queries;
    std::array<OracleCommitSetup<F>, 2> commit;
    VerifierSetupCosts costs;

    size_t TotalQueryElements() const {
      size_t n = 0;
      for (size_t o = 0; o < 2; o++) {
        n += Adapter::OracleQueries(queries, o).size() *
             Adapter::OracleLength(queries, o);
      }
      return n;
    }
  };

  struct InstanceProof {
    std::array<OracleProofPart<F>, 2> parts;
    ProverCosts costs;
  };

  // Verifier, once per batch. `queries` should come from the PCP's
  // GenerateQueries (its cost belongs to query_generation_s and is measured
  // by the caller; pass it in `query_generation_seconds`).
  static VerifierSetup Setup(typename Adapter::Queries queries, Prg& prg,
                             double query_generation_seconds = 0) {
    VerifierSetup s;
    s.costs.query_generation_s = query_generation_seconds;
    Stopwatch timer;
    s.keys = EG::GenerateKeys(prg);
    s.queries = std::move(queries);
    for (size_t o = 0; o < 2; o++) {
      s.commit[o] = LinearCommitment<F>::CreateSetup(
          s.keys.pk, Adapter::OracleLength(s.queries, o),
          Adapter::OracleQueries(s.queries, o), prg);
    }
    s.costs.commit_setup_s = timer.ElapsedSeconds();
    return s;
  }

  // Prover, once per instance. `proof_vectors` are the two oracle vectors
  // (e.g. z and h); construct-u / solve costs are added by the caller.
  // `workers` > 1 splits the commitment multi-exponentiations across
  // threads — the intra-instance counterpart of the across-instance
  // parallelism in src/argument/parallel.h.
  static InstanceProof Prove(
      const std::array<const std::vector<F>*, 2>& proof_vectors,
      const VerifierSetup& setup, size_t workers = 1) {
    InstanceProof p;
    for (size_t o = 0; o < 2; o++) {
      p.parts[o] = LinearCommitment<F>::Prove(
          *proof_vectors[o], setup.commit[o].enc_r,
          Adapter::OracleQueries(setup.queries, o), setup.commit[o].t,
          &p.costs.crypto_s, &p.costs.answer_queries_s, workers);
    }
    return p;
  }

  // Structural validation of an untrusted proof against the setup: every
  // vector the cryptographic checks will index must have exactly the shape
  // the setup prescribes. Runs before any group operation so a malformed
  // proof cannot trigger out-of-bounds reads in CheckConsistency or Decide.
  static Status ValidateProofShape(const VerifierSetup& setup,
                                   const InstanceProof& proof,
                                   const std::vector<F>& bound_values) {
    for (size_t o = 0; o < 2; o++) {
      size_t expected = Adapter::OracleQueries(setup.queries, o).size();
      if (proof.parts[o].responses.size() != expected) {
        return MalformedError("oracle " + std::to_string(o) +
                              " response count mismatch");
      }
      if (setup.commit[o].alphas.size() != expected) {
        return MalformedError("setup alpha count mismatch");
      }
    }
    if (bound_values.size() != Adapter::BoundValueCount(setup.queries)) {
      return MalformedError("bound value count mismatch");
    }
    return Status::Ok();
  }

  // Verifier, once per instance, with the full verdict taxonomy.
  // `bound_values` are inputs then outputs.
  static VerifyInstanceResult VerifyInstanceDetailed(
      const VerifierSetup& setup, const InstanceProof& proof,
      const std::vector<F>& bound_values, double* seconds = nullptr) {
    Stopwatch timer;
    VerifyInstanceResult result = VerifyInstanceResult::Accept();
    Status shape = ValidateProofShape(setup, proof, bound_values);
    if (!shape.ok()) {
      result = VerifyInstanceResult::Reject(VerifyVerdict::kMalformed,
                                            shape.message());
    }
    for (size_t o = 0; o < 2 && result.accepted(); o++) {
      if (!LinearCommitment<F>::CheckConsistency(
              setup.keys.pk, setup.keys.sk, setup.commit[o],
              proof.parts[o])) {
        result = VerifyInstanceResult::Reject(
            VerifyVerdict::kRejectCommit,
            "oracle " + std::to_string(o) + " commitment inconsistent");
      }
    }
    if (result.accepted() &&
        !Adapter::Decide(setup.queries, proof.parts[0].responses,
                         proof.parts[1].responses, bound_values)) {
      result = VerifyInstanceResult::Reject(VerifyVerdict::kRejectPcp);
    }
    if (seconds != nullptr) {
      *seconds += timer.ElapsedSeconds();
    }
    return result;
  }

  // Boolean convenience wrapper over VerifyInstanceDetailed.
  static bool VerifyInstance(const VerifierSetup& setup,
                             const InstanceProof& proof,
                             const std::vector<F>& bound_values,
                             double* seconds = nullptr) {
    return VerifyInstanceDetailed(setup, proof, bound_values, seconds)
        .accepted();
  }

  // Verifies every instance of a batch and reports a per-instance verdict:
  // one malicious or malformed instance is isolated, never aborting the
  // remaining beta-1 (the batch amortization of §2.2 assumes all instances
  // are checked regardless of individual outcomes).
  static std::vector<VerifyInstanceResult> VerifyBatch(
      const VerifierSetup& setup, const std::vector<InstanceProof>& proofs,
      const std::vector<std::vector<F>>& bound_values,
      double* seconds = nullptr) {
    std::vector<VerifyInstanceResult> results;
    results.reserve(proofs.size());
    for (size_t i = 0; i < proofs.size(); i++) {
      if (i < bound_values.size()) {
        results.push_back(
            VerifyInstanceDetailed(setup, proofs[i], bound_values[i],
                                   seconds));
      } else {
        results.push_back(VerifyInstanceResult::Reject(
            VerifyVerdict::kMalformed, "missing bound values"));
      }
    }
    return results;
  }
};

template <typename F>
struct ZaatarAdapter {
  using Queries = typename ZaatarPcp<F>::Queries;
  static size_t OracleLength(const Queries& q, size_t oracle) {
    return oracle == 0 ? q.z_len : q.h_len;
  }
  static const std::vector<std::vector<F>>& OracleQueries(const Queries& q,
                                                          size_t oracle) {
    return oracle == 0 ? q.z_queries : q.h_queries;
  }
  static size_t BoundValueCount(const Queries& q) {
    // Every repetition carries the bound-variable rows (constant row first).
    return q.reps.empty() ? 0 : q.reps[0].a_bound.size() - 1;
  }
  static bool Decide(const Queries& q, const std::vector<F>& r0,
                     const std::vector<F>& r1,
                     const std::vector<F>& bound_values) {
    return ZaatarPcp<F>::Decide(q, r0, r1, bound_values);
  }
};

template <typename F>
struct GingerAdapter {
  using Queries = typename GingerPcp<F>::Queries;
  static size_t OracleLength(const Queries& q, size_t oracle) {
    return oracle == 0 ? q.n : q.n * q.n;
  }
  static const std::vector<std::vector<F>>& OracleQueries(const Queries& q,
                                                          size_t oracle) {
    return oracle == 0 ? q.pi1_queries : q.pi2_queries;
  }
  static size_t BoundValueCount(const Queries& q) {
    return q.reps.empty() ? 0 : q.reps[0].gamma_bound.size();
  }
  static bool Decide(const Queries& q, const std::vector<F>& r0,
                     const std::vector<F>& r1,
                     const std::vector<F>& bound_values) {
    return GingerPcp<F>::Decide(q, r0, r1, bound_values);
  }
};

template <typename F>
using ZaatarArgument = Argument<F, ZaatarAdapter<F>>;
template <typename F>
using GingerArgument = Argument<F, GingerAdapter<F>>;

}  // namespace zaatar

#endif  // SRC_ARGUMENT_ARGUMENT_H_
