// The analytic cost models of Figure 3 (Zaatar column) and [54, Fig. 2]
// (Ginger column), parameterized by microbenchmark-measured primitive costs.
//
// The paper uses these models in two ways, and so do we:
//   1. to validate Zaatar's measured costs (empirics land 5-15% above the
//      model in the paper; bench_fig3_cost_model reports our gap), and
//   2. to estimate Ginger's costs at input sizes where running it for real
//      is infeasible ("we use estimates, rather than empirics, because the
//      computations would be too expensive under Ginger", §5.1).

#ifndef SRC_ARGUMENT_COST_MODEL_H_
#define SRC_ARGUMENT_COST_MODEL_H_

#include <cstddef>

#include "src/pcp/params.h"

namespace zaatar {

// Primitive operation costs in seconds (the §5.1 microbenchmark table).
struct MicroCosts {
  double e = 0;       // encrypt one field element
  double d = 0;       // decrypt (to group element)
  double h = 0;       // naive ciphertext homomorphic fold: one Pow + multiply
  double f_lazy = 0;  // field multiply without reduction
  double f = 0;       // field multiply
  double f_div = 0;   // field division (inversion + multiply)
  double c = 0;       // pseudorandomly generate one field element

  // Amortized per-element cost of the prover's commitment when the fold runs
  // through the Pippenger multi-exponentiation kernel instead of independent
  // Pows (src/crypto/multiexp.h). Measured at a representative batch size by
  // bench::MeasureMicroCosts; 0 means "not measured", in which case the
  // model falls back to the naive h (e.g. the paper's published table).
  double h_amortized = 0;

  // The h constant the Figure 3 prover terms should use: the commitment is
  // now a multi-exponentiation, so its per-element cost is the amortized one
  // whenever it was measured.
  double EffectiveH() const { return h_amortized > 0 ? h_amortized : h; }
};

// Static facts about one compiled computation, in both encodings.
struct ComputationStats {
  double t_local_s = 0;   // time to execute the computation natively (T)
  size_t z_ginger = 0;    // |Z_ginger|
  size_t c_ginger = 0;    // |C_ginger|
  size_t k = 0;           // K: additive terms in C_ginger
  size_t k2 = 0;          // K2: distinct degree-2 terms in C_ginger
  size_t z_zaatar = 0;    // |Z_zaatar|
  size_t c_zaatar = 0;    // |C_zaatar|
  size_t num_inputs = 0;  // |x|
  size_t num_outputs = 0;  // |y|

  size_t GingerProofLen() const { return z_ginger + z_ginger * z_ginger; }
  size_t ZaatarProofLen() const { return z_zaatar + c_zaatar + 1; }
};

class CostModel {
 public:
  CostModel(const MicroCosts& micro, const PcpParams& params)
      : micro_(micro), params_(params) {}

  // ---- Zaatar (Figure 3, right column) ----

  // P: construct proof vector = T + 3 f |C| log2^2 |C|.
  double ZaatarConstructProof(const ComputationStats& s) const;
  // P: issue responses = (h + (rho*l' + 1) f) |u|.
  double ZaatarIssueResponses(const ComputationStats& s) const;
  double ZaatarProverPerInstance(const ComputationStats& s) const;

  // V, per batch (not yet divided by beta):
  // computation-specific queries = rho (c + (fdiv + 5f)|C| + f K + 3 f K2).
  double ZaatarQuerySetupSpecific(const ComputationStats& s) const;
  // computation-oblivious = (e + 2c + rho (2 rho_lin c + l' f)) |u|.
  double ZaatarQuerySetupOblivious(const ComputationStats& s) const;
  double ZaatarVerifierSetup(const ComputationStats& s) const;
  // V, per instance: process responses = d + rho (l' + 3|x| + 3|y|) f.
  double ZaatarVerifierPerInstance(const ComputationStats& s) const;

  // ---- Ginger (Figure 3, left column) ----

  double GingerConstructProof(const ComputationStats& s) const;
  double GingerIssueResponses(const ComputationStats& s) const;
  double GingerProverPerInstance(const ComputationStats& s) const;
  double GingerQuerySetupSpecific(const ComputationStats& s) const;
  double GingerQuerySetupOblivious(const ComputationStats& s) const;
  double GingerVerifierSetup(const ComputationStats& s) const;
  double GingerVerifierPerInstance(const ComputationStats& s) const;

  // ---- Encoding choice (§4, footnote 5) ----
  // "The degenerate cases are detectable, so the compiler could simply
  // choose to use Ginger over Zaatar" — realized later by Allspice [57].
  // Picks the encoding with the cheaper modeled prover; ties go to Zaatar.
  enum class Encoding { kZaatar, kGinger };
  Encoding ChooseEncoding(const ComputationStats& s) const;

  // The paper's K2* threshold: Zaatar's proof is shorter iff
  // K2 < (|Z_ginger|^2 - |Z_ginger|) / 2.
  static double K2Star(const ComputationStats& s);

  // ---- Break-even batch sizes (§2.2) ----
  // Smallest beta with setup + beta*per_instance < beta*t_local; returns -1
  // if outsourcing never pays (per-instance cost exceeds local execution).
  static double BreakevenBatch(double setup_s, double per_instance_s,
                               double t_local_s);
  double ZaatarBreakeven(const ComputationStats& s) const;
  double GingerBreakeven(const ComputationStats& s) const;

  const MicroCosts& micro() const { return micro_; }
  const PcpParams& params() const { return params_; }

 private:
  MicroCosts micro_;
  PcpParams params_;
};

// ---- Network cost accounting (bytes) ----
struct NetworkCosts {
  // Per batch: Enc(r) ciphertexts + t vectors + query seed.
  static size_t SetupBytes(size_t proof_len, size_t field_bytes,
                           size_t group_bytes = 128);
  // Per instance: commitments + responses.
  static size_t InstanceBytes(size_t num_queries, size_t field_bytes,
                              size_t group_bytes = 128);
};

}  // namespace zaatar

#endif  // SRC_ARGUMENT_COST_MODEL_H_
