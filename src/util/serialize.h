// Byte-level serialization for protocol messages.
//
// The paper's network accounting (§A.1: "a full query sent from V to P, and
// a random seed from which V and P derive the PCP queries pseudorandomly")
// needs concrete wire formats. This module provides bounds-checked
// little-endian encoding for field elements, big integers, ciphertexts, and
// the two protocol messages:
//   - SetupMessage (V -> P, once per batch): a 32-byte query seed, the
//     encrypted commitment vectors Enc(r), and the consistency vectors t.
//     The queries themselves are never shipped — P re-derives them from the
//     seed (they are public coin); r and the alphas stay verifier-secret.
//   - InstanceProofMessage (P -> V, per instance): the two commitments and
//     all oracle responses.
//
// Decoding is hardened against a malicious peer: every read returns a typed
// Status instead of throwing, length prefixes are validated against both the
// bytes actually present and a hard element cap before any allocation, and
// every field/group element is checked to be in canonical range (< modulus)
// rather than silently reduced.

#ifndef SRC_UTIL_SERIALIZE_H_
#define SRC_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/field/bigint.h"
#include "src/util/status.h"

namespace zaatar {

// Hard cap on elements per wire vector, independent of the claimed message
// size: the largest honest oracle is |u| elements, far below this, while a
// hostile 0xFFFFFFFF length prefix would otherwise request a multi-GB
// reserve() before the per-element reads could fail.
inline constexpr uint32_t kMaxWireVectorElements = 1u << 24;

class ByteWriter {
 public:
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; i++) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; i++) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  template <size_t N>
  void PutBigInt(const BigInt<N>& v) {
    for (size_t i = 0; i < N; i++) {
      PutU64(v.limbs[i]);
    }
  }

  void PutBytes(const uint8_t* data, size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& bytes) : bytes_(&bytes) {}

  StatusOr<uint32_t> GetU32() {
    ZAATAR_RETURN_IF_ERROR(Require(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; i++) {
      v |= static_cast<uint32_t>((*bytes_)[pos_++]) << (8 * i);
    }
    return v;
  }

  StatusOr<uint64_t> GetU64() {
    ZAATAR_RETURN_IF_ERROR(Require(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; i++) {
      v |= static_cast<uint64_t>((*bytes_)[pos_++]) << (8 * i);
    }
    return v;
  }

  template <size_t N>
  StatusOr<BigInt<N>> GetBigInt() {
    ZAATAR_RETURN_IF_ERROR(Require(N * 8));
    BigInt<N> v;
    for (size_t i = 0; i < N; i++) {
      uint64_t limb = 0;
      for (int b = 0; b < 8; b++) {
        limb |= static_cast<uint64_t>((*bytes_)[pos_++]) << (8 * b);
      }
      v.limbs[i] = limb;
    }
    return v;
  }

  Status GetBytes(uint8_t* out, size_t n) {
    ZAATAR_RETURN_IF_ERROR(Require(n));
    std::memcpy(out, bytes_->data() + pos_, n);
    pos_ += n;
    return Status::Ok();
  }

  // Reads a u32 element count and validates it against the cap and the bytes
  // actually remaining (`elem_bytes` per element), so a hostile length prefix
  // fails here — before any allocation proportional to it.
  StatusOr<uint32_t> GetLength(size_t elem_bytes,
                               uint32_t max_elements = kMaxWireVectorElements) {
    ZAATAR_ASSIGN_OR_RETURN(uint32_t n, GetU32());
    if (n > max_elements) {
      return LengthOverflowError("vector length exceeds element cap");
    }
    if (static_cast<uint64_t>(n) * elem_bytes > remaining()) {
      return LengthOverflowError("vector length exceeds message size");
    }
    return n;
  }

  // Decoders call this last: trailing bytes mean the peer sent a different
  // structure than claimed, which is rejected rather than ignored.
  Status ExpectEnd() const {
    if (!AtEnd()) {
      return MalformedError("trailing bytes after message");
    }
    return Status::Ok();
  }

  bool AtEnd() const { return pos_ == bytes_->size(); }
  size_t remaining() const { return bytes_->size() - pos_; }
  size_t position() const { return pos_; }

 private:
  Status Require(size_t n) const {
    if (n > remaining()) {
      return TruncatedError("serialized message truncated");
    }
    return Status::Ok();
  }

  const std::vector<uint8_t>* bytes_;
  size_t pos_ = 0;
};

// Field and group elements travel in canonical (non-Montgomery) form and are
// validated against the modulus on decode — a malformed message cannot
// smuggle an out-of-range residue into the protocol, and non-canonical
// encodings of a valid residue are rejected rather than silently reduced.
// P is any PrimeField instantiation (a verified-computation field F or an
// ElGamal group Zp).
template <typename P>
void PutField(ByteWriter* w, const P& v) {
  w->PutBigInt(v.ToCanonical());
}

template <typename P>
StatusOr<P> GetField(ByteReader* r) {
  ZAATAR_ASSIGN_OR_RETURN(typename P::Repr canonical,
                          r->template GetBigInt<P::kLimbs>());
  if (!(canonical < P::kModulus)) {
    return OutOfRangeError("element not in canonical range");
  }
  return P::FromCanonical(canonical);
}

template <typename P>
void PutFieldVector(ByteWriter* w, const std::vector<P>& v) {
  w->PutU32(static_cast<uint32_t>(v.size()));
  for (const P& x : v) {
    PutField(w, x);
  }
}

template <typename P>
StatusOr<std::vector<P>> GetFieldVector(ByteReader* r) {
  ZAATAR_ASSIGN_OR_RETURN(uint32_t n, r->GetLength(P::kLimbs * 8));
  std::vector<P> v;
  v.reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    ZAATAR_ASSIGN_OR_RETURN(P x, GetField<P>(r));
    v.push_back(x);
  }
  return v;
}

}  // namespace zaatar

#endif  // SRC_UTIL_SERIALIZE_H_
