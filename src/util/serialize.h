// Byte-level serialization for protocol messages.
//
// The paper's network accounting (§A.1: "a full query sent from V to P, and
// a random seed from which V and P derive the PCP queries pseudorandomly")
// needs concrete wire formats. This module provides bounds-checked
// little-endian encoding for field elements, big integers, ciphertexts, and
// the two protocol messages:
//   - SetupMessage (V -> P, once per batch): a 32-byte query seed, the
//     encrypted commitment vectors Enc(r), and the consistency vectors t.
//     The queries themselves are never shipped — P re-derives them from the
//     seed (they are public coin); r and the alphas stay verifier-secret.
//   - InstanceProofMessage (P -> V, per instance): the two commitments and
//     all oracle responses.

#ifndef SRC_UTIL_SERIALIZE_H_
#define SRC_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "src/field/bigint.h"

namespace zaatar {

class ByteWriter {
 public:
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; i++) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; i++) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  template <size_t N>
  void PutBigInt(const BigInt<N>& v) {
    for (size_t i = 0; i < N; i++) {
      PutU64(v.limbs[i]);
    }
  }

  void PutBytes(const uint8_t* data, size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& bytes) : bytes_(&bytes) {}

  uint32_t GetU32() {
    Require(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; i++) {
      v |= static_cast<uint32_t>((*bytes_)[pos_++]) << (8 * i);
    }
    return v;
  }

  uint64_t GetU64() {
    Require(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; i++) {
      v |= static_cast<uint64_t>((*bytes_)[pos_++]) << (8 * i);
    }
    return v;
  }

  template <size_t N>
  BigInt<N> GetBigInt() {
    BigInt<N> v;
    for (size_t i = 0; i < N; i++) {
      v.limbs[i] = GetU64();
    }
    return v;
  }

  void GetBytes(uint8_t* out, size_t n) {
    Require(n);
    std::memcpy(out, bytes_->data() + pos_, n);
    pos_ += n;
  }

  bool AtEnd() const { return pos_ == bytes_->size(); }
  size_t remaining() const { return bytes_->size() - pos_; }

 private:
  void Require(size_t n) const {
    if (pos_ + n > bytes_->size()) {
      throw std::runtime_error("serialized message truncated");
    }
  }

  const std::vector<uint8_t>* bytes_;
  size_t pos_ = 0;
};

// Field elements travel in canonical (non-Montgomery) form and are validated
// against the modulus on decode — a malformed message cannot smuggle an
// out-of-range residue into the protocol.
template <typename F>
void PutField(ByteWriter* w, const F& v) {
  w->PutBigInt(v.ToCanonical());
}

template <typename F>
F GetField(ByteReader* r) {
  auto canonical = r->template GetBigInt<F::kLimbs>();
  if (!(canonical < F::kModulus)) {
    throw std::runtime_error("field element out of range");
  }
  return F::FromCanonical(canonical);
}

template <typename F>
void PutFieldVector(ByteWriter* w, const std::vector<F>& v) {
  w->PutU32(static_cast<uint32_t>(v.size()));
  for (const F& x : v) {
    PutField(w, x);
  }
}

template <typename F>
std::vector<F> GetFieldVector(ByteReader* r) {
  uint32_t n = r->GetU32();
  if (static_cast<size_t>(n) * F::kLimbs * 8 > r->remaining()) {
    throw std::runtime_error("field vector length exceeds message");
  }
  std::vector<F> v;
  v.reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    v.push_back(GetField<F>(r));
  }
  return v;
}

}  // namespace zaatar

#endif  // SRC_UTIL_SERIALIZE_H_
