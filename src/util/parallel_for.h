// ParallelFor: the thread-pool primitive shared by the distributed prover
// (src/argument/parallel.h) and the multi-exponentiation kernels
// (src/crypto/multiexp.h). It lives in util/ so the crypto layer can chunk
// work across hardware threads without depending on the argument layer.

#ifndef SRC_UTIL_PARALLEL_FOR_H_
#define SRC_UTIL_PARALLEL_FOR_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace zaatar {

// Runs fn(i) for i in [0, n) across at most `workers` threads. A throw from
// fn(i) no longer escapes a worker thread (which would std::terminate the
// whole process — fatal for a verifier whose per-instance work is allowed to
// fail): the first exception is captured, remaining workers drain without
// starting new indices, and the exception is rethrown on the joining thread.
//
// The pool never spawns more threads than there are indices: with n < workers
// the surplus threads would only lose the fetch_add race and exit, so the
// spawn cost (~10-50us each) is pure waste on small batches.
//
// `spawned_threads`, when non-null, receives the number of OS threads the
// call actually created (0 when the loop ran inline on the caller).
inline void ParallelFor(size_t n, size_t workers,
                        const std::function<void(size_t)>& fn,
                        size_t* spawned_threads = nullptr) {
  workers = std::min(workers, n);
  if (spawned_threads != nullptr) {
    *spawned_threads = workers <= 1 ? 0 : workers;
  }
  if (workers <= 1 || n <= 1) {
    for (size_t i = 0; i < n; i++) {
      fn(i);
    }
    return;
  }
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; w++) {
    threads.emplace_back([&] {
      for (;;) {
        if (failed.load(std::memory_order_relaxed)) {
          return;
        }
        size_t i = next.fetch_add(1);
        if (i >= n) {
          return;
        }
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) {
            first_error = std::current_exception();
          }
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace zaatar

#endif  // SRC_UTIL_PARALLEL_FOR_H_
