// Lightweight typed error handling for the protocol boundary.
//
// The verifier ingests bytes from an untrusted prover, so every decode step
// must be able to fail cleanly. Exceptions are the wrong tool at this
// boundary: they cross ParallelFor workers poorly, make "which field was
// bad" hard to report, and invite catch-all handlers that mask logic bugs.
// Status/StatusOr make the failure path explicit and cheap — a reject is an
// expected outcome against a malicious prover, not an exceptional one.

#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace zaatar {

enum class StatusCode {
  kOk = 0,
  // The byte stream ended before the declared structure was complete.
  kTruncated,
  // A length prefix claims more data than the message carries (or exceeds
  // the hard allocation cap).
  kLengthOverflow,
  // A field element or group element is outside its canonical range
  // (>= modulus). Rejected rather than silently reduced.
  kOutOfRange,
  // Structure violations: trailing bytes, mismatched vector sizes, a proof
  // whose shape disagrees with the setup.
  kMalformed,
  // A session operation was invoked in the wrong protocol phase (e.g.
  // committing before the setup message arrived). Always a local sequencing
  // bug or a peer driving the state machine out of order — never a verdict.
  kPhaseViolation,
  // Decoded-but-wrong geometry: a structurally valid message whose vector
  // sizes disagree with what the setup prescribes (response count vs. query
  // count, proof vector vs. oracle length). Split from kMalformed so the
  // shape screens that replaced assert()-only validation are distinguishable
  // from byte-level decode failures.
  kShapeMismatch,
  // A bounded wait expired: the peer stalled past a configured transport
  // deadline (recv/send/handshake) or a bounded queue stayed full. A channel
  // property, never a statement about the proof — retryable, unlike every
  // protocol-level failure above.
  kDeadlineExceeded,
  // A bounded resource is at capacity and the request was refused rather
  // than queued: the serve daemon's admission control (connection cap,
  // worker queue saturation). Says nothing about any proof — the client may
  // back off and retry, exactly like a transport failure, but the channel
  // itself is healthy so it is NOT classified as one.
  kResourceExhausted,
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kTruncated:
      return "TRUNCATED";
    case StatusCode::kLengthOverflow:
      return "LENGTH_OVERFLOW";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kMalformed:
      return "MALFORMED";
    case StatusCode::kPhaseViolation:
      return "PHASE_VIOLATION";
    case StatusCode::kShapeMismatch:
      return "SHAPE_MISMATCH";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status TruncatedError(std::string msg) {
  return Status(StatusCode::kTruncated, std::move(msg));
}
inline Status LengthOverflowError(std::string msg) {
  return Status(StatusCode::kLengthOverflow, std::move(msg));
}
inline Status OutOfRangeError(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status MalformedError(std::string msg) {
  return Status(StatusCode::kMalformed, std::move(msg));
}
inline Status PhaseViolationError(std::string msg) {
  return Status(StatusCode::kPhaseViolation, std::move(msg));
}
inline Status ShapeMismatchError(std::string msg) {
  return Status(StatusCode::kShapeMismatch, std::move(msg));
}
inline Status DeadlineExceededError(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
inline Status ResourceExhaustedError(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}

// A value or a non-OK Status. T must be movable; access to value() on an
// error StatusOr is a programming error (guarded in debug builds only, so
// callers must check ok() first — the decode macros below do).
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT: implicit
  StatusOr(T value)                                        // NOLINT: implicit
      : value_(std::move(value)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return *std::move(value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  Status status_;  // kOk iff value_ holds a value
  std::optional<T> value_;
};

// Early-return plumbing for functions returning Status or StatusOr<T>.
#define ZAATAR_RETURN_IF_ERROR(expr)         \
  do {                                       \
    ::zaatar::Status zaatar_status_ = (expr); \
    if (!zaatar_status_.ok()) {              \
      return zaatar_status_;                 \
    }                                        \
  } while (0)

#define ZAATAR_STATUS_CONCAT_INNER(a, b) a##b
#define ZAATAR_STATUS_CONCAT(a, b) ZAATAR_STATUS_CONCAT_INNER(a, b)

#define ZAATAR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) {                                   \
    return tmp.status();                             \
  }                                                  \
  lhs = std::move(tmp).value()

// ZAATAR_ASSIGN_OR_RETURN(uint32_t n, reader.GetU32());
#define ZAATAR_ASSIGN_OR_RETURN(lhs, expr) \
  ZAATAR_ASSIGN_OR_RETURN_IMPL(            \
      ZAATAR_STATUS_CONCAT(zaatar_statusor_, __LINE__), lhs, expr)

}  // namespace zaatar

#endif  // SRC_UTIL_STATUS_H_
