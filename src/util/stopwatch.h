// Minimal monotonic stopwatch for the cost accounting that backs the
// Figure 5 decomposition and the Figure 3 model-vs-measured comparison.

#ifndef SRC_UTIL_STOPWATCH_H_
#define SRC_UTIL_STOPWATCH_H_

#include <chrono>

namespace zaatar {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Returns elapsed seconds and restarts (for phase-by-phase accounting).
  double Lap() {
    double s = ElapsedSeconds();
    Restart();
    return s;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace zaatar

#endif  // SRC_UTIL_STOPWATCH_H_
