// The linear commitment primitive (Commit + Multidecommit) of Pepper/Ginger
// (paper §2.2), which turns a linear PCP oracle into an argument against a
// computationally bounded prover.
//
// Per oracle and per batch, the verifier:
//   1. samples a secret vector r and sends Enc(r) (exponent ElGamal, §5.1);
//   2. later sends the PCP queries q_1..q_mu plus the consistency query
//      t = r + sum_i alpha_i q_i with secret random alpha_i.
// Per instance, the prover:
//   3. commits by homomorphically evaluating e = Enc(pi(r));
//   4. answers pi(q_1), .., pi(q_mu), pi(t) in the clear.
// The verifier accepts the responses as oracle answers iff
//      g^(pi(t) - sum_i alpha_i pi(q_i)) == Dec(e)  (checked in the group).
// Binding holds because plaintext arithmetic is exactly F (the ElGamal
// subgroup order equals the field modulus).
//
// The per-oracle state is split along the trust boundary: OracleCommitSecrets
// (r, alphas) never leaves the verifier, OracleCommitShared (Enc(r), t) is
// exactly what a SetupMessage carries, and ProverOracleContext is the
// prover's reconstruction of the shared half plus the plaintext queries.

#ifndef SRC_COMMIT_COMMITMENT_H_
#define SRC_COMMIT_COMMITMENT_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "src/crypto/elgamal.h"
#include "src/crypto/prg.h"
#include "src/pcp/linear_oracle.h"
#include "src/util/status.h"
#include "src/util/stopwatch.h"

namespace zaatar {

// Verifier-only per-oracle, per-batch state. Nothing in this struct may ever
// be serialized toward the prover: r breaks hiding, the alphas break the
// consistency check's soundness.
template <typename F>
struct OracleCommitSecrets {
  std::vector<F> r;       // plaintext commitment vector
  std::vector<F> alphas;  // consistency coefficients, one per query
};

// The per-oracle material the prover is allowed to see; exactly what crosses
// the wire in a SetupMessage (alongside the plaintext queries, which live in
// the adapter's Queries).
template <typename F>
struct OracleCommitShared {
  std::vector<typename ElGamal<F>::Ciphertext> enc_r;
  std::vector<F> t;
};

// Verifier-side per-oracle, per-batch state: both halves.
template <typename F>
struct OracleCommitSetup {
  OracleCommitSecrets<F> secrets;
  OracleCommitShared<F> shared;
};

// The prover's per-oracle view of a batch, reconstructed purely from
// SetupMessage bytes: encrypted r, plaintext multidecommit queries, and the
// consistency vector t. By construction it cannot contain r, the alphas, or
// the ElGamal secret key — the types for those never appear on this side.
template <typename F>
struct ProverOracleContext {
  std::vector<typename ElGamal<F>::Ciphertext> enc_r;
  std::vector<std::vector<F>> queries;
  std::vector<F> t;

  size_t oracle_length() const { return enc_r.size(); }
};

// Prover-side per-oracle, per-instance message.
template <typename F>
struct OracleProofPart {
  typename ElGamal<F>::Ciphertext commitment;  // e = Enc(pi(r))
  std::vector<F> responses;                    // pi(q_i), aligned with queries
  F t_response;                                // pi(t)
};

template <typename F>
class LinearCommitment {
 public:
  using EG = ElGamal<F>;

  // Phase 1 + 3 setup (verifier, amortized over the batch). `workers` > 1
  // chunks the row encryption of Enc(r) across threads.
  static OracleCommitSetup<F> CreateSetup(
      const typename EG::PublicKey& pk, size_t oracle_len,
      const std::vector<std::vector<F>>& queries, Prg& prg,
      size_t workers = 1) {
    OracleCommitSetup<F> s;
    s.secrets.r = prg.NextFieldVector<F>(oracle_len);
    s.shared.enc_r =
        EG::EncryptRow(pk, s.secrets.r.data(), oracle_len, prg, workers);
    s.secrets.alphas.reserve(queries.size());
    s.shared.t = s.secrets.r;
    for (const auto& q : queries) {
      assert(q.size() == oracle_len);
      F alpha = prg.NextField<F>();
      s.secrets.alphas.push_back(alpha);
      for (size_t i = 0; i < oracle_len; i++) {
        s.shared.t[i] += alpha * q[i];
      }
    }
    return s;
  }

  // Phase 2 (prover, per instance): the homomorphic commitment
  // e = Enc(<u, r>) from Enc(r) and the plaintext proof vector u. `workers`
  // > 1 chunks the multi-exponentiation across that many threads (only
  // useful when instances are not already proved in parallel). Enc(r) comes
  // off the wire on the session path, so a length mismatch is a typed error,
  // not an assert.
  static StatusOr<typename EG::Ciphertext> Commit(
      const std::vector<F>& u,
      const std::vector<typename EG::Ciphertext>& enc_r, size_t workers = 1) {
    if (u.size() != enc_r.size()) {
      return ShapeMismatchError("proof vector length " +
                                std::to_string(u.size()) + " != Enc(r) length " +
                                std::to_string(enc_r.size()));
    }
    return EG::InnerProduct(enc_r.data(), u.data(), u.size(), workers);
  }

  // Phase 4 (prover, per instance): answer every multidecommit query plus
  // the consistency query in the clear. Fills `responses` / `t_response` of
  // an already-committed proof part. Queries and t are wire-decoded on the
  // session path, so length mismatches are typed errors.
  static Status Answer(const std::vector<F>& u,
                       const std::vector<std::vector<F>>& queries,
                       const std::vector<F>& t, OracleProofPart<F>* part) {
    part->responses.clear();
    part->responses.reserve(queries.size());
    for (size_t k = 0; k < queries.size(); k++) {
      const auto& q = queries[k];
      if (q.size() != u.size()) {
        return ShapeMismatchError("query " + std::to_string(k) + " length " +
                                  std::to_string(q.size()) +
                                  " != oracle length " +
                                  std::to_string(u.size()));
      }
      part->responses.push_back(
          VectorOracle<F>::InnerProduct(q.data(), u.data(), u.size()));
    }
    if (t.size() != u.size()) {
      return ShapeMismatchError("consistency query length " +
                                std::to_string(t.size()) +
                                " != oracle length " +
                                std::to_string(u.size()));
    }
    part->t_response =
        VectorOracle<F>::InnerProduct(t.data(), u.data(), u.size());
    return Status::Ok();
  }

  // Phases 2 + 4 together. `crypto_seconds` / `answer_seconds` receive the
  // phase costs when non-null.
  static StatusOr<OracleProofPart<F>> Prove(
      const std::vector<F>& u,
      const std::vector<typename EG::Ciphertext>& enc_r,
      const std::vector<std::vector<F>>& queries, const std::vector<F>& t,
      double* crypto_seconds = nullptr, double* answer_seconds = nullptr,
      size_t workers = 1);

  // Prove against the prover's reconstructed per-oracle context — the form
  // the session layer uses once the SetupMessage has been decoded.
  static StatusOr<OracleProofPart<F>> Prove(const std::vector<F>& u,
                                            const ProverOracleContext<F>& ctx,
                                            double* crypto_seconds = nullptr,
                                            double* answer_seconds = nullptr,
                                            size_t workers = 1) {
    return Prove(u, ctx.enc_r, ctx.queries, ctx.t, crypto_seconds,
                 answer_seconds, workers);
  }

  // Per-instance verifier check: are the responses consistent with the
  // committed linear function? Needs only the secret half of the setup —
  // the check is g^(pi(t) - sum_i alpha_i pi(q_i)) == Dec(e).
  static bool CheckConsistency(const typename EG::PublicKey& pk,
                               const typename EG::SecretKey& sk,
                               const OracleCommitSecrets<F>& secrets,
                               const OracleProofPart<F>& part) {
    // A malformed proof part must fail the check, not index out of bounds
    // (asserts are compiled out in release builds; the argument layer also
    // screens shape, this is defense in depth).
    if (part.responses.size() != secrets.alphas.size()) {
      return false;
    }
    F expected = part.t_response;
    for (size_t i = 0; i < secrets.alphas.size(); i++) {
      expected -= secrets.alphas[i] * part.responses[i];
    }
    typename EG::Zp decrypted =
        EG::DecryptToGroup(sk, pk, part.commitment);
    return decrypted == EG::GroupEmbed(pk, expected);
  }
};

template <typename F>
StatusOr<OracleProofPart<F>> LinearCommitment<F>::Prove(
    const std::vector<F>& u,
    const std::vector<typename EG::Ciphertext>& enc_r,
    const std::vector<std::vector<F>>& queries, const std::vector<F>& t,
    double* crypto_seconds, double* answer_seconds, size_t workers) {
  OracleProofPart<F> part;

  Stopwatch timer;
  ZAATAR_ASSIGN_OR_RETURN(part.commitment, Commit(u, enc_r, workers));
  if (crypto_seconds != nullptr) {
    *crypto_seconds += timer.Lap();
  } else {
    timer.Restart();
  }

  ZAATAR_RETURN_IF_ERROR(Answer(u, queries, t, &part));
  if (answer_seconds != nullptr) {
    *answer_seconds += timer.Lap();
  }
  return part;
}

}  // namespace zaatar

#endif  // SRC_COMMIT_COMMITMENT_H_
