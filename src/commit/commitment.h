// The linear commitment primitive (Commit + Multidecommit) of Pepper/Ginger
// (paper §2.2), which turns a linear PCP oracle into an argument against a
// computationally bounded prover.
//
// Per oracle and per batch, the verifier:
//   1. samples a secret vector r and sends Enc(r) (exponent ElGamal, §5.1);
//   2. later sends the PCP queries q_1..q_mu plus the consistency query
//      t = r + sum_i alpha_i q_i with secret random alpha_i.
// Per instance, the prover:
//   3. commits by homomorphically evaluating e = Enc(pi(r));
//   4. answers pi(q_1), .., pi(q_mu), pi(t) in the clear.
// The verifier accepts the responses as oracle answers iff
//      g^(pi(t) - sum_i alpha_i pi(q_i)) == Dec(e)  (checked in the group).
// Binding holds because plaintext arithmetic is exactly F (the ElGamal
// subgroup order equals the field modulus).

#ifndef SRC_COMMIT_COMMITMENT_H_
#define SRC_COMMIT_COMMITMENT_H_

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "src/crypto/elgamal.h"
#include "src/crypto/prg.h"
#include "src/pcp/linear_oracle.h"
#include "src/util/stopwatch.h"

namespace zaatar {

// Verifier-side per-oracle, per-batch state.
template <typename F>
struct OracleCommitSetup {
  using EG = ElGamal<F>;

  std::vector<F> r;                                // secret
  std::vector<typename EG::Ciphertext> enc_r;      // sent to the prover
  std::vector<F> alphas;                           // secret, one per query
  std::vector<F> t;                                // sent with the queries
};

// Prover-side per-oracle, per-instance message.
template <typename F>
struct OracleProofPart {
  typename ElGamal<F>::Ciphertext commitment;  // e = Enc(pi(r))
  std::vector<F> responses;                    // pi(q_i), aligned with queries
  F t_response;                                // pi(t)
};

template <typename F>
class LinearCommitment {
 public:
  using EG = ElGamal<F>;

  // Phase 1 + 3 setup (verifier, amortized over the batch).
  static OracleCommitSetup<F> CreateSetup(
      const typename EG::PublicKey& pk, size_t oracle_len,
      const std::vector<std::vector<F>>& queries, Prg& prg) {
    OracleCommitSetup<F> s;
    s.r = prg.NextFieldVector<F>(oracle_len);
    s.enc_r.reserve(oracle_len);
    for (const F& ri : s.r) {
      s.enc_r.push_back(EG::Encrypt(pk, ri, prg));
    }
    s.alphas.reserve(queries.size());
    s.t = s.r;
    for (const auto& q : queries) {
      assert(q.size() == oracle_len);
      F alpha = prg.NextField<F>();
      s.alphas.push_back(alpha);
      for (size_t i = 0; i < oracle_len; i++) {
        s.t[i] += alpha * q[i];
      }
    }
    return s;
  }

  // Phases 2 + 4 (prover, per instance): commit homomorphically, then answer
  // every query plus the consistency query. `crypto_seconds` /
  // `answer_seconds` receive the phase costs when non-null. `workers` > 1
  // chunks the commitment multi-exponentiation across that many threads
  // (only useful when instances are not already proved in parallel).
  static OracleProofPart<F> Prove(const std::vector<F>& u,
                                  const std::vector<typename EG::Ciphertext>&
                                      enc_r,
                                  const std::vector<std::vector<F>>& queries,
                                  const std::vector<F>& t,
                                  double* crypto_seconds = nullptr,
                                  double* answer_seconds = nullptr,
                                  size_t workers = 1);

  // Per-instance verifier check: are the responses consistent with the
  // committed linear function?
  static bool CheckConsistency(const typename EG::PublicKey& pk,
                               const typename EG::SecretKey& sk,
                               const OracleCommitSetup<F>& setup,
                               const OracleProofPart<F>& part) {
    // A malformed proof part must fail the check, not index out of bounds
    // (asserts are compiled out in release builds; the argument layer also
    // screens shape, this is defense in depth).
    if (part.responses.size() != setup.alphas.size()) {
      return false;
    }
    F expected = part.t_response;
    for (size_t i = 0; i < setup.alphas.size(); i++) {
      expected -= setup.alphas[i] * part.responses[i];
    }
    typename EG::Zp decrypted =
        EG::DecryptToGroup(sk, pk, part.commitment);
    return decrypted == EG::GroupEmbed(pk, expected);
  }
};

template <typename F>
OracleProofPart<F> LinearCommitment<F>::Prove(
    const std::vector<F>& u,
    const std::vector<typename EG::Ciphertext>& enc_r,
    const std::vector<std::vector<F>>& queries, const std::vector<F>& t,
    double* crypto_seconds, double* answer_seconds, size_t workers) {
  assert(u.size() == enc_r.size());
  OracleProofPart<F> part;

  Stopwatch timer;
  part.commitment =
      EG::InnerProduct(enc_r.data(), u.data(), u.size(), workers);
  if (crypto_seconds != nullptr) {
    *crypto_seconds += timer.Lap();
  } else {
    timer.Restart();
  }

  part.responses.reserve(queries.size());
  for (const auto& q : queries) {
    part.responses.push_back(
        VectorOracle<F>::InnerProduct(q.data(), u.data(), u.size()));
  }
  part.t_response = VectorOracle<F>::InnerProduct(t.data(), u.data(), u.size());
  if (answer_seconds != nullptr) {
    *answer_seconds += timer.Lap();
  }
  return part;
}

}  // namespace zaatar

#endif  // SRC_COMMIT_COMMITMENT_H_
