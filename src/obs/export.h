// Deterministic JSON export of a span tree + metrics registry.
//
// The output is a pure function of the collected data: spans are emitted as
// a nested tree with children ordered by (start_ns, id), counters and
// histograms in name order (std::map), and histogram buckets keyed by their
// upper bound 2^k with zero buckets omitted. Times are steady-clock
// nanoseconds relative to the Tracer epoch — no wall-clock timestamps, so
// two exports of the same trace are byte-identical.

#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace zaatar {
namespace obs {

namespace internal {

inline void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

inline void AppendU64(uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

inline void AppendSpanSubtree(
    const std::vector<Tracer::Node>& nodes,
    const std::vector<std::vector<uint32_t>>& children, uint32_t id,
    int indent, std::string* out) {
  const Tracer::Node& n = nodes[id];
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  *out += pad + "{\"name\": ";
  AppendJsonString(n.name, out);
  *out += ", \"start_ns\": ";
  AppendU64(n.start_ns, out);
  *out += ", \"dur_ns\": ";
  AppendU64(n.end_ns >= n.start_ns ? n.end_ns - n.start_ns : 0, out);
  if (children[id].empty()) {
    *out += "}";
    return;
  }
  *out += ", \"children\": [\n";
  for (size_t i = 0; i < children[id].size(); i++) {
    AppendSpanSubtree(nodes, children, children[id][i], indent + 1, out);
    if (i + 1 < children[id].size()) {
      *out += ",";
    }
    *out += "\n";
  }
  *out += pad + "]}";
}

}  // namespace internal

// The span tree alone (the "trace" object of ExportJson).
inline std::string ExportSpanTreeJson(const Tracer& tracer, int indent = 1) {
  std::vector<Tracer::Node> nodes = tracer.Snapshot();
  std::vector<std::vector<uint32_t>> children(nodes.size());
  std::vector<uint32_t> roots;
  for (uint32_t id = 0; id < nodes.size(); id++) {
    if (nodes[id].parent == kNoSpan || nodes[id].parent >= nodes.size()) {
      roots.push_back(id);
    } else {
      children[nodes[id].parent].push_back(id);
    }
  }
  // Children arrive in OpenSpan order, which two threads can interleave;
  // order deterministically by start time (ties by id).
  auto by_start = [&](uint32_t a, uint32_t b) {
    return nodes[a].start_ns != nodes[b].start_ns
               ? nodes[a].start_ns < nodes[b].start_ns
               : a < b;
  };
  for (auto& c : children) {
    std::sort(c.begin(), c.end(), by_start);
  }
  std::sort(roots.begin(), roots.end(), by_start);

  std::string out = "[\n";
  for (size_t i = 0; i < roots.size(); i++) {
    internal::AppendSpanSubtree(nodes, children, roots[i], indent, &out);
    if (i + 1 < roots.size()) {
      out += ",";
    }
    out += "\n";
  }
  out += std::string(static_cast<size_t>(indent > 0 ? indent - 1 : 0) * 2, ' ');
  out += "]";
  return out;
}

// Full export: {"spans": [...], "counters": {...}, "histograms": {...}}.
// Either argument may be null (emitted as an empty collection).
inline std::string ExportJson(const Tracer* tracer, const Metrics* metrics) {
  std::string out = "{\n  \"spans\": ";
  out += tracer != nullptr ? ExportSpanTreeJson(*tracer, 2) : "[]";
  out += ",\n  \"counters\": {";
  if (metrics != nullptr) {
    bool first = true;
    for (const auto& [name, value] : metrics->Counters()) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      internal::AppendJsonString(name, &out);
      out += ": ";
      internal::AppendU64(value, &out);
    }
    if (!first) {
      out += "\n  ";
    }
  }
  out += "},\n  \"histograms\": {";
  if (metrics != nullptr) {
    bool first = true;
    for (const auto& [name, h] : metrics->Histograms()) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      internal::AppendJsonString(name, &out);
      out += ": {\"count\": ";
      internal::AppendU64(h.count, &out);
      out += ", \"sum\": ";
      internal::AppendU64(h.sum, &out);
      out += ", \"buckets\": {";
      bool first_bucket = true;
      for (size_t k = 0; k < h.buckets.size(); k++) {
        if (h.buckets[k] == 0) {
          continue;
        }
        if (!first_bucket) {
          out += ", ";
        }
        first_bucket = false;
        // Key: the bucket's exclusive upper bound 2^k (0 for the zero
        // bucket, whose only member is the value 0).
        internal::AppendJsonString(
            k == 0 ? "0" : std::to_string(uint64_t{1} << k), &out);
        out += ": ";
        internal::AppendU64(h.buckets[k], &out);
      }
      out += "}}";
    }
    if (!first) {
      out += "\n  ";
    }
  }
  out += "}\n}\n";
  return out;
}

}  // namespace obs
}  // namespace zaatar

#endif  // SRC_OBS_EXPORT_H_
