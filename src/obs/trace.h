// Hierarchical tracing for the pipeline: thread-safe spans with steady-clock
// timing, collected into a Tracer and exported as a deterministic JSON tree
// (src/obs/export.h).
//
// Usage is ambient: a thread installs a Tracer once (ScopedThreadTracer),
// and any code below it on the stack opens RAII Span guards by name —
// no function signature changes anywhere in the pipeline. A Span's parent is
// whatever span is open on the same thread, or the thread's default parent
// when none is. Cross-thread stitching works by installing the same Tracer
// on a worker thread with the spawning span's id as the default parent: the
// prover thread's spans in MeasureBatch become children of the batch root
// even though they run on a different thread (each thread keeps its own
// current-span cursor, so the stacks never interleave).
//
// Cost model: with no tracer installed, a Span is one thread-local read and
// a branch. With ZAATAR_TRACE=0 (cmake -DZAATAR_TRACE=OFF) the guards
// compile to empty objects and the cost is exactly zero; span-derived cost
// fields (BatchMeasurement) then read 0.0 — verdicts and protocol behavior
// are unaffected.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef ZAATAR_TRACE
#define ZAATAR_TRACE 1
#endif

namespace zaatar {
namespace obs {

inline constexpr uint32_t kNoSpan = 0xFFFFFFFFu;

// Append-only span collector. All methods are thread-safe; span ids are
// indices into the node vector and stable for the Tracer's lifetime.
class Tracer {
 public:
  struct Node {
    std::string name;
    uint32_t parent = kNoSpan;  // kNoSpan for roots
    uint64_t start_ns = 0;      // steady clock, relative to the Tracer epoch
    uint64_t end_ns = 0;        // 0 while the span is still open
  };

  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  uint32_t OpenSpan(std::string_view name, uint32_t parent) {
    const uint64_t now = NowNs();
    std::lock_guard<std::mutex> lock(mu_);
    nodes_.push_back(Node{std::string(name), parent, now, 0});
    return static_cast<uint32_t>(nodes_.size() - 1);
  }

  void CloseSpan(uint32_t id) {
    const uint64_t now = NowNs();
    std::lock_guard<std::mutex> lock(mu_);
    if (id < nodes_.size() && nodes_[id].end_ns == 0) {
      nodes_[id].end_ns = now;
    }
  }

  // A consistent copy of every span recorded so far.
  std::vector<Node> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return nodes_;
  }

  // Total duration (seconds) across all closed spans with this name. The
  // harness derives its per-phase cost fields from these sums.
  double SumSeconds(std::string_view name) const {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (const Node& n : nodes_) {
      if (n.name == name && n.end_ns >= n.start_ns && n.end_ns != 0) {
        total += n.end_ns - n.start_ns;
      }
    }
    return static_cast<double>(total) * 1e-9;
  }

  size_t CountSpans(std::string_view name) const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t c = 0;
    for (const Node& n : nodes_) {
      if (n.name == name) {
        c++;
      }
    }
    return c;
  }

  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Node> nodes_;
};

#if ZAATAR_TRACE

namespace internal {

// Per-thread tracing cursor: the ambient Tracer plus the innermost open
// span on this thread. Each thread has its own — concurrent spans from the
// prover and verifier threads never share a stack.
struct ThreadTraceState {
  Tracer* tracer = nullptr;
  uint32_t current = kNoSpan;
};

inline ThreadTraceState& ThreadTrace() {
  thread_local ThreadTraceState state;
  return state;
}

}  // namespace internal

inline Tracer* ThreadTracer() { return internal::ThreadTrace().tracer; }

// Installs `tracer` as this thread's ambient collector for the guard's
// lifetime; spans opened with no enclosing span become children of
// `default_parent` (pass a span id from another thread to stitch this
// thread's subtree under it, or kNoSpan for a fresh root).
class ScopedThreadTracer {
 public:
  explicit ScopedThreadTracer(Tracer* tracer, uint32_t default_parent = kNoSpan)
      : saved_(internal::ThreadTrace()) {
    internal::ThreadTrace() = {tracer, default_parent};
  }
  ~ScopedThreadTracer() { internal::ThreadTrace() = saved_; }

  ScopedThreadTracer(const ScopedThreadTracer&) = delete;
  ScopedThreadTracer& operator=(const ScopedThreadTracer&) = delete;

 private:
  internal::ThreadTraceState saved_;
};

// RAII span guard. A no-op (one thread-local read) when no tracer is
// installed on the current thread.
class Span {
 public:
  explicit Span(const char* name) {
    internal::ThreadTraceState& st = internal::ThreadTrace();
    if (st.tracer != nullptr) {
      tracer_ = st.tracer;
      parent_ = st.current;
      id_ = tracer_->OpenSpan(name, parent_);
      st.current = id_;
    }
  }

  ~Span() {
    if (tracer_ != nullptr) {
      tracer_->CloseSpan(id_);
      internal::ThreadTrace().current = parent_;
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // The span's id in its tracer (kNoSpan when tracing is inactive). Workers
  // pass this to ScopedThreadTracer to stitch their subtree under it.
  uint32_t id() const { return id_; }

 private:
  Tracer* tracer_ = nullptr;
  uint32_t id_ = kNoSpan;
  uint32_t parent_ = kNoSpan;
};

#else  // !ZAATAR_TRACE: every guard compiles to an empty object.

inline Tracer* ThreadTracer() { return nullptr; }

class ScopedThreadTracer {
 public:
  explicit ScopedThreadTracer(Tracer*, uint32_t = kNoSpan) {}
};

class Span {
 public:
  explicit Span(const char*) {}
  uint32_t id() const { return kNoSpan; }
};

#endif  // ZAATAR_TRACE

}  // namespace obs
}  // namespace zaatar

#endif  // SRC_OBS_TRACE_H_
