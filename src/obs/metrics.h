// Named counters and histograms for the pipeline, collected alongside the
// span tree of src/obs/trace.h. The registry is ambient like the tracer:
// a thread installs a Metrics instance (ScopedThreadMetrics) and deep
// pipeline code records through the free functions MetricAdd/MetricObserve
// without signature changes — both are no-ops when nothing is installed,
// and compile out entirely under ZAATAR_TRACE=0.
//
// Histograms use power-of-two buckets: Observe(v) increments bucket
// ceil(log2(v+1)), i.e. bucket k counts values in [2^(k-1), 2^k). That is
// the right granularity for the quantities we track (bytes per transport
// frame, multiexp term counts) and keeps a histogram at a fixed 64 slots.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "src/obs/trace.h"  // the ZAATAR_TRACE gate

namespace zaatar {
namespace obs {

class Metrics {
 public:
  struct Histogram {
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, 64> buckets{};  // bucket k: values in [2^(k-1), 2^k)
  };

  void Add(std::string_view name, uint64_t delta = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    counters_[std::string(name)] += delta;
  }

  void Observe(std::string_view name, uint64_t value) {
    std::lock_guard<std::mutex> lock(mu_);
    Histogram& h = histograms_[std::string(name)];
    h.count++;
    h.sum += value;
    h.buckets[BucketIndex(value)]++;
  }

  uint64_t CounterValue(std::string_view name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(std::string(name));
    return it == counters_.end() ? 0 : it->second;
  }

  Histogram HistogramValue(std::string_view name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(std::string(name));
    return it == histograms_.end() ? Histogram{} : it->second;
  }

  // Snapshots are std::map-ordered by name, so iteration (and therefore the
  // JSON export) is deterministic.
  std::map<std::string, uint64_t> Counters() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
  }

  std::map<std::string, Histogram> Histograms() const {
    std::lock_guard<std::mutex> lock(mu_);
    return histograms_;
  }

  // 0 for value 0; otherwise the position of the highest set bit plus one,
  // so bucket k (k >= 1) covers [2^(k-1), 2^k). The top bucket (63) is
  // clamped to absorb values >= 2^63 rather than indexing past the array.
  static size_t BucketIndex(uint64_t value) {
    if (value == 0) {
      return 0;
    }
    const size_t k = 64 - static_cast<size_t>(__builtin_clzll(value));
    return k < 64 ? k : 63;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

#if ZAATAR_TRACE

namespace internal {

inline Metrics*& ThreadMetricsSlot() {
  thread_local Metrics* metrics = nullptr;
  return metrics;
}

}  // namespace internal

inline Metrics* ThreadMetrics() { return internal::ThreadMetricsSlot(); }

class ScopedThreadMetrics {
 public:
  explicit ScopedThreadMetrics(Metrics* metrics)
      : saved_(internal::ThreadMetricsSlot()) {
    internal::ThreadMetricsSlot() = metrics;
  }
  ~ScopedThreadMetrics() { internal::ThreadMetricsSlot() = saved_; }

  ScopedThreadMetrics(const ScopedThreadMetrics&) = delete;
  ScopedThreadMetrics& operator=(const ScopedThreadMetrics&) = delete;

 private:
  Metrics* saved_;
};

inline void MetricAdd(const char* name, uint64_t delta = 1) {
  if (Metrics* m = ThreadMetrics()) {
    m->Add(name, delta);
  }
}

inline void MetricObserve(const char* name, uint64_t value) {
  if (Metrics* m = ThreadMetrics()) {
    m->Observe(name, value);
  }
}

#else  // !ZAATAR_TRACE

inline Metrics* ThreadMetrics() { return nullptr; }

class ScopedThreadMetrics {
 public:
  explicit ScopedThreadMetrics(Metrics*) {}
};

inline void MetricAdd(const char*, uint64_t = 1) {}
inline void MetricObserve(const char*, uint64_t) {}

#endif  // ZAATAR_TRACE

}  // namespace obs
}  // namespace zaatar

#endif  // SRC_OBS_METRICS_H_
