// AVX-512 IFMA radix-2^52 engine for the 1024-bit ElGamal groups.
//
// Scalar Montgomery multiplication over sixteen 64-bit limbs is carry-chain
// bound: every partial product feeds the next through a 64-bit carry, so even
// mulx-tuned code runs near one multiply per two cycles. The IFMA form
// (Gueron-Krasnov, and OpenSSL's RSAZ-AVX512 kernels) sidesteps the chains by
// holding the number in twenty 52-bit limbs inside 64-bit vector lanes:
// vpmadd52luq/vpmadd52huq accumulate 52x52-bit products lane-parallel, the
// 12 spare bits per lane absorb all intermediate carries, and one carry
// propagation at the very end normalizes the result. The quotient digit is
// computed and broadcast entirely in vector registers (a masked madd52lo
// against n0' then a lane-0 permute), and the high product halves accumulate
// on an independent register chain merged after the shift, so the critical
// path never round-trips through a GPR. On the target CPU this multiplies
// ~2.8x faster than the tuned scalar kernel (209 ns vs 587 ns per 1024-bit
// modmul); the dual-chain Mul2 below overlaps two independent AMMs in one
// pass for ~130 ns per multiply, which is what moves the Pippenger and
// fixed-base hot paths past the paper-parity bar.
//
// Domain discipline: field elements live in Montgomery form x·R mod p with
// R = 2^1024 (PrimeField). The vector kernel computes the *almost* Montgomery
// product AMM(u, v) = u·v·2^-1040 mod p (bounded by 2p, limbs normalized),
// i.e. it works in a different Montgomery domain R' = 2^1040. Entering the
// packed domain multiplies by 2^1056 mod p once (x·R -> x·R'), leaving
// multiplies by R mod p once and fully reduces, so packed chains of any
// length cost exactly two boundary AMMs and return values bit-identical to
// the scalar path (canonical Montgomery form is unique below p).
//
// The AMM bound argument: inputs < 2p, p < 2^1026/4, so the accumulated
// (u·v + M·p)/2^1040 < p·(4p/2^1040 + 1) < 2p, and every 64-bit lane sums at
// most ~80 products of < 2^52, staying under 2^59 — no mid-loop
// normalization needed.
//
// Everything here is runtime-dispatched: Available() gates on avx512ifma (no
// -march flags at build time), and non-x86 builds fall back to an opaque
// scalar representation with identical semantics so callers never branch on
// architecture.

#ifndef SRC_FIELD_IFMA52_H_
#define SRC_FIELD_IFMA52_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "src/field/bigint.h"
#include "src/field/prime_field.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define ZAATAR_IFMA52_X86 1
#include <immintrin.h>
#endif

namespace zaatar {
namespace ifma52 {

inline constexpr size_t kLimbs52 = 20;           // ceil(1024 / 52)
inline constexpr size_t kPackedWords = 24;       // 3 zmm registers of 8 lanes
inline constexpr uint64_t kMask52 = (uint64_t{1} << 52) - 1;

// Does this CPU run the vector kernel? (Cached after first call.)
inline bool Available() {
#ifdef ZAATAR_IFMA52_X86
  static const bool kHas = __builtin_cpu_supports("avx512f") &&
                           __builtin_cpu_supports("avx512ifma");
  return kHas;
#else
  return false;
#endif
}

// Opaque multiplicative representation of a group element. On the vector
// path this is the radix-2^52 form in the R' = 2^1040 Montgomery domain
// (value < 2p, limbs normalized); on the fallback path it simply aliases the
// scalar Montgomery limbs. Only Pack/Mul/Unpack may interpret it.
struct Packed {
  alignas(64) uint64_t limb[kPackedWords];
};

// 16x64 -> 20x52 radix conversion (value-preserving, compile-time capable).
constexpr std::array<uint64_t, kPackedWords> To52(const BigInt<16>& a) {
  std::array<uint64_t, kPackedWords> out{};
  for (size_t j = 0; j < kLimbs52; j++) {
    size_t bit = 52 * j;
    size_t w = bit / 64;
    size_t s = bit % 64;
    uint64_t v = a.limbs[w] >> s;
    if (s > 12 && w + 1 < 16) {
      v |= a.limbs[w + 1] << (64 - s);
    }
    out[j] = v & kMask52;
  }
  return out;
}

// 20x52 -> 16x64; the input must be < 2^1024 (callers reduce below p first).
inline BigInt<16> From52(const uint64_t* limbs) {
  BigInt<16> out{};
  for (size_t j = 0; j < kLimbs52; j++) {
    size_t bit = 52 * j;
    size_t w = bit / 64;
    size_t s = bit % 64;
    out.limbs[w] |= limbs[j] << s;
    if (s > 12 && w + 1 < 16) {
      out.limbs[w + 1] |= limbs[j] >> (64 - s);
    }
  }
  return out;
}

// Engine<G>: the packed arithmetic for one 16-limb PrimeField group G.
template <typename G>
class Engine {
  static_assert(G::kLimbs == 16,
                "the radix-52 engine is shaped for 1024-bit moduli");

 public:
  // -p^{-1} mod 2^52 (truncation of the 64-bit Newton inverse).
  static constexpr uint64_t kN0Inv52 = G::kN0Inv & kMask52;
  static constexpr std::array<uint64_t, kPackedWords> kP52 = To52(G::kModulus);
  // Domain-entry multiplier 2^1056 mod p: AMM(x·2^1024, 2^1056) = x·2^1040.
  static constexpr std::array<uint64_t, kPackedWords> kEntry52 = To52(
      field_internal::ShiftedMod(G::kMontR, 32, G::kModulus));
  // Domain-exit multiplier 2^1024 mod p: AMM(x·2^1040, 2^1024) = x·2^1024.
  static constexpr std::array<uint64_t, kPackedWords> kExit52 =
      To52(G::kMontR);

#ifdef ZAATAR_IFMA52_X86
  // out = a·b·2^-1040 mod p (almost: result < 2p, limbs normalized). Safe to
  // call with out aliasing a or b; requires Available().
  //
  // The two pragmas silence GCC's bogus -Wuninitialized on the
  // _mm512_undefined-based system-header helpers (alignr, cast) that the
  // target attribute forces to inline here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
  __attribute__((target("avx512f,avx512ifma"), optimize("O3"))) static void
  Mul(const Packed& a, const Packed& b, Packed* out) {
    const __m512i b0 = _mm512_load_si512(&b.limb[0]);
    const __m512i b1 = _mm512_load_si512(&b.limb[8]);
    const __m512i b2 = _mm512_load_si512(&b.limb[16]);
    const __m512i p0 = _mm512_loadu_si512(&kP52[0]);  // std::array: 8-aligned
    const __m512i p1 = _mm512_loadu_si512(&kP52[8]);
    const __m512i p2 = _mm512_loadu_si512(&kP52[16]);
    const __m512i zero = _mm512_setzero_si512();
    const __m512i n0v = _mm512_set1_epi64(static_cast<long long>(kN0Inv52));
    __m512i acc0 = zero;
    __m512i acc1 = zero;
    __m512i acc2 = zero;
    // The loop-carried dependency is acc0's lane 0 (low limb -> quotient
    // digit -> reduction -> next low limb), so everything on that path stays
    // in vector registers: the quotient digit is one vpmadd52luq against a
    // broadcast n0inv (no GPR round trip), its broadcast is a vpermq, and the
    // weight-52 carry of the vanishing lane is a masked shift. The high
    // product halves never touch the critical path — they accumulate on a
    // fresh register and merge with one add after the limb shift, which is
    // the same sum in a different order (all terms nonnegative, lanes peak
    // under 2^59 either way).
    for (size_t i = 0; i < kLimbs52; i++) {
      const __m512i ai = _mm512_set1_epi64(static_cast<long long>(a.limb[i]));
      acc0 = _mm512_madd52lo_epu64(acc0, ai, b0);
      acc1 = _mm512_madd52lo_epu64(acc1, ai, b1);
      acc2 = _mm512_madd52lo_epu64(acc2, ai, b2);
      // Lane 0 now holds the true low 52 bits of the running value (higher
      // lanes may carry deferred weight, but all weight-0 contributions land
      // in lane 0), so lane 0 of acc0 * n0inv mod 2^52 — exactly what
      // vpmadd52luq against zero computes — is the Montgomery digit m.
      const __m512i mt = _mm512_madd52lo_epu64(zero, acc0, n0v);
      const __m512i mv = _mm512_permutexvar_epi64(zero, mt);
      acc0 = _mm512_madd52lo_epu64(acc0, mv, p0);
      acc1 = _mm512_madd52lo_epu64(acc1, mv, p1);
      acc2 = _mm512_madd52lo_epu64(acc2, mv, p2);
      // Lane 0's low 52 bits are zero by construction; its upper bits are a
      // carry of weight 52 that survives the limb shift below.
      const __m512i cv = _mm512_maskz_srli_epi64(1, acc0, 52);
      // High product halves have weight j+1 — exactly where the shift is
      // about to put lane j — so they build up off-chain and join shifted.
      const __m512i hi0 = _mm512_madd52hi_epu64(
          _mm512_madd52hi_epu64(zero, ai, b0), mv, p0);
      const __m512i hi1 = _mm512_madd52hi_epu64(
          _mm512_madd52hi_epu64(zero, ai, b1), mv, p1);
      const __m512i hi2 = _mm512_madd52hi_epu64(
          _mm512_madd52hi_epu64(zero, ai, b2), mv, p2);
      acc0 = _mm512_alignr_epi64(acc1, acc0, 1);
      acc1 = _mm512_alignr_epi64(acc2, acc1, 1);
      acc2 = _mm512_alignr_epi64(zero, acc2, 1);
      acc0 = _mm512_add_epi64(_mm512_add_epi64(acc0, cv), hi0);
      acc1 = _mm512_add_epi64(acc1, hi1);
      acc2 = _mm512_add_epi64(acc2, hi2);
    }
    alignas(64) uint64_t t[kPackedWords];
    _mm512_store_si512(&t[0], acc0);
    _mm512_store_si512(&t[8], acc1);
    _mm512_store_si512(&t[16], acc2);
    uint64_t carry = 0;
    for (size_t j = 0; j < kLimbs52; j++) {
      uint64_t v = t[j] + carry;  // lanes < 2^59, carry < 2^12: no overflow
      out->limb[j] = v & kMask52;
      carry = v >> 52;
    }
    for (size_t j = kLimbs52; j < kPackedWords; j++) {
      out->limb[j] = 0;
    }
    // carry == 0 always: the result is < 2p < 2^1027 < 2^(52·20).
  }

  // Two independent AMMs through one loop: ra = xa·ya·2^-1040,
  // rb = xb·yb·2^-1040. Mul is latency-bound (the lane-0 quotient chain runs
  // ~22 cycles/limb while the FMA ports sit half idle), so interleaving a
  // second independent chain is nearly free — the pair costs ~1.3x one Mul.
  // Callers with independent work (bucket accumulation, per-window folds)
  // should feed pairs. Outputs may alias inputs; requires Available().
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
  __attribute__((target("avx512f,avx512ifma"), optimize("O3"))) static void
  Mul2(const Packed& xa, const Packed& ya, Packed* ra, const Packed& xb,
       const Packed& yb, Packed* rb) {
    const __m512i ba0 = _mm512_load_si512(&ya.limb[0]);
    const __m512i ba1 = _mm512_load_si512(&ya.limb[8]);
    const __m512i ba2 = _mm512_load_si512(&ya.limb[16]);
    const __m512i bb0 = _mm512_load_si512(&yb.limb[0]);
    const __m512i bb1 = _mm512_load_si512(&yb.limb[8]);
    const __m512i bb2 = _mm512_load_si512(&yb.limb[16]);
    const __m512i p0 = _mm512_loadu_si512(&kP52[0]);
    const __m512i p1 = _mm512_loadu_si512(&kP52[8]);
    const __m512i p2 = _mm512_loadu_si512(&kP52[16]);
    const __m512i zero = _mm512_setzero_si512();
    const __m512i n0v = _mm512_set1_epi64(static_cast<long long>(kN0Inv52));
    __m512i aa0 = zero, aa1 = zero, aa2 = zero;
    __m512i ab0 = zero, ab1 = zero, ab2 = zero;
    for (size_t i = 0; i < kLimbs52; i++) {
      const __m512i xia = _mm512_set1_epi64(static_cast<long long>(xa.limb[i]));
      const __m512i xib = _mm512_set1_epi64(static_cast<long long>(xb.limb[i]));
      aa0 = _mm512_madd52lo_epu64(aa0, xia, ba0);
      ab0 = _mm512_madd52lo_epu64(ab0, xib, bb0);
      aa1 = _mm512_madd52lo_epu64(aa1, xia, ba1);
      ab1 = _mm512_madd52lo_epu64(ab1, xib, bb1);
      aa2 = _mm512_madd52lo_epu64(aa2, xia, ba2);
      ab2 = _mm512_madd52lo_epu64(ab2, xib, bb2);
      const __m512i mva = _mm512_permutexvar_epi64(
          zero, _mm512_madd52lo_epu64(zero, aa0, n0v));
      const __m512i mvb = _mm512_permutexvar_epi64(
          zero, _mm512_madd52lo_epu64(zero, ab0, n0v));
      aa0 = _mm512_madd52lo_epu64(aa0, mva, p0);
      ab0 = _mm512_madd52lo_epu64(ab0, mvb, p0);
      aa1 = _mm512_madd52lo_epu64(aa1, mva, p1);
      ab1 = _mm512_madd52lo_epu64(ab1, mvb, p1);
      aa2 = _mm512_madd52lo_epu64(aa2, mva, p2);
      ab2 = _mm512_madd52lo_epu64(ab2, mvb, p2);
      const __m512i cva = _mm512_maskz_srli_epi64(1, aa0, 52);
      const __m512i cvb = _mm512_maskz_srli_epi64(1, ab0, 52);
      const __m512i ha0 = _mm512_madd52hi_epu64(
          _mm512_madd52hi_epu64(zero, xia, ba0), mva, p0);
      const __m512i hb0 = _mm512_madd52hi_epu64(
          _mm512_madd52hi_epu64(zero, xib, bb0), mvb, p0);
      const __m512i ha1 = _mm512_madd52hi_epu64(
          _mm512_madd52hi_epu64(zero, xia, ba1), mva, p1);
      const __m512i hb1 = _mm512_madd52hi_epu64(
          _mm512_madd52hi_epu64(zero, xib, bb1), mvb, p1);
      const __m512i ha2 = _mm512_madd52hi_epu64(
          _mm512_madd52hi_epu64(zero, xia, ba2), mva, p2);
      const __m512i hb2 = _mm512_madd52hi_epu64(
          _mm512_madd52hi_epu64(zero, xib, bb2), mvb, p2);
      aa0 = _mm512_alignr_epi64(aa1, aa0, 1);
      ab0 = _mm512_alignr_epi64(ab1, ab0, 1);
      aa1 = _mm512_alignr_epi64(aa2, aa1, 1);
      ab1 = _mm512_alignr_epi64(ab2, ab1, 1);
      aa2 = _mm512_alignr_epi64(zero, aa2, 1);
      ab2 = _mm512_alignr_epi64(zero, ab2, 1);
      aa0 = _mm512_add_epi64(_mm512_add_epi64(aa0, cva), ha0);
      ab0 = _mm512_add_epi64(_mm512_add_epi64(ab0, cvb), hb0);
      aa1 = _mm512_add_epi64(aa1, ha1);
      ab1 = _mm512_add_epi64(ab1, hb1);
      aa2 = _mm512_add_epi64(aa2, ha2);
      ab2 = _mm512_add_epi64(ab2, hb2);
    }
    alignas(64) uint64_t t[2 * kPackedWords];
    _mm512_store_si512(&t[0], aa0);
    _mm512_store_si512(&t[8], aa1);
    _mm512_store_si512(&t[16], aa2);
    _mm512_store_si512(&t[24], ab0);
    _mm512_store_si512(&t[32], ab1);
    _mm512_store_si512(&t[40], ab2);
    Packed* outs[2] = {ra, rb};
    for (size_t h = 0; h < 2; h++) {
      const uint64_t* src = &t[h * kPackedWords];
      uint64_t carry = 0;
      for (size_t j = 0; j < kLimbs52; j++) {
        uint64_t v = src[j] + carry;
        outs[h]->limb[j] = v & kMask52;
        carry = v >> 52;
      }
      for (size_t j = kLimbs52; j < kPackedWords; j++) {
        outs[h]->limb[j] = 0;
      }
    }
  }
#pragma GCC diagnostic pop

  // Scalar Montgomery value (canonical, < p) -> packed domain.
  static Packed Pack(const G& x) {
    Packed raw{};
    const std::array<uint64_t, kPackedWords> v = To52(x.Montgomery());
    for (size_t j = 0; j < kPackedWords; j++) {
      raw.limb[j] = v[j];
    }
    Packed entry{};
    for (size_t j = 0; j < kPackedWords; j++) {
      entry.limb[j] = kEntry52[j];
    }
    Packed out;
    Mul(raw, entry, &out);
    return out;
  }

  // Packed domain -> scalar Montgomery value, fully reduced below p. The
  // result is bit-identical to what the scalar kernels produce for the same
  // group element (canonical Montgomery form is unique).
  static G Unpack(const Packed& x) {
    Packed exit{};
    for (size_t j = 0; j < kPackedWords; j++) {
      exit.limb[j] = kExit52[j];
    }
    Packed r;
    Mul(x, exit, &r);
    // r < 2p in radix 52: one conditional subtract reaches the canonical
    // residue, which then fits 1024 bits.
    bool ge = true;
    for (size_t j = kLimbs52; j-- > 0;) {
      if (r.limb[j] != kP52[j]) {
        ge = r.limb[j] > kP52[j];
        break;
      }
    }
    if (ge) {
      uint64_t borrow = 0;
      for (size_t j = 0; j < kLimbs52; j++) {
        uint64_t d = r.limb[j] - kP52[j] - borrow;
        borrow = (d >> 63) & 1;  // borrowed iff the 52-bit sub wrapped
        r.limb[j] = d & kMask52;
      }
    }
    return G::FromMontgomery(From52(r.limb));
  }
#else
  // Portable fallback: the packed form aliases the scalar Montgomery limbs
  // and Mul is the scalar kernel. Same (Pack, Mul, Unpack) contract, so the
  // packed algorithms stay correct; Available() steers perf-sensitive
  // callers away from it.
  static void Mul(const Packed& a, const Packed& b, Packed* out) {
    BigInt<16> ba, bb;
    for (size_t j = 0; j < 16; j++) {
      ba.limbs[j] = a.limb[j];
      bb.limbs[j] = b.limb[j];
    }
    const BigInt<16> r = G::MontMulAuto(ba, bb);
    for (size_t j = 0; j < 16; j++) {
      out->limb[j] = r.limbs[j];
    }
    for (size_t j = 16; j < kPackedWords; j++) {
      out->limb[j] = 0;
    }
  }

  static void Mul2(const Packed& xa, const Packed& ya, Packed* ra,
                   const Packed& xb, const Packed& yb, Packed* rb) {
    Mul(xa, ya, ra);
    Mul(xb, yb, rb);
  }

  static Packed Pack(const G& x) {
    Packed out{};
    for (size_t j = 0; j < 16; j++) {
      out.limb[j] = x.Montgomery().limbs[j];
    }
    return out;
  }

  static G Unpack(const Packed& x) {
    BigInt<16> r;
    for (size_t j = 0; j < 16; j++) {
      r.limbs[j] = x.limb[j];
    }
    return G::FromMontgomery(r);
  }
#endif
};

// Sliding-window exponentiation with the packed kernel: same window schedule
// as PrimeField::Pow, but every squaring/multiplication is one AMM. Worth the
// two boundary conversions whenever the exponent is more than a few dozen
// bits. Bit-identical to base.PowNaive(e) (differential-tested).
template <typename G, size_t M>
G PowPacked(const G& base, const BigInt<M>& e) {
  using E = Engine<G>;
  const size_t top = e.BitLength();
  if (top == 0) {
    return G::One();
  }
  const size_t w = top > 512 ? 6 : top > 128 ? 5 : top > 24 ? 4 : 2;
  const size_t half = size_t{1} << (w - 1);
  Packed tbl[32];
  tbl[0] = E::Pack(base);
  Packed sq;
  E::Mul(tbl[0], tbl[0], &sq);
  for (size_t i = 1; i < half; i++) {
    E::Mul(tbl[i - 1], sq, &tbl[i]);
  }
  Packed r{};
  bool started = false;
  size_t i = top;
  while (i > 0) {
    if (!e.Bit(i - 1)) {
      if (started) {
        E::Mul(r, r, &r);
      }
      i--;
      continue;
    }
    size_t j = i >= w ? i - w : 0;
    while (!e.Bit(j)) {
      j++;
    }
    uint64_t digit = 0;
    for (size_t k = i; k-- > j;) {
      digit = (digit << 1) | e.Bit(k);
    }
    if (started) {
      for (size_t k = 0; k < i - j; k++) {
        E::Mul(r, r, &r);
      }
      E::Mul(r, tbl[digit >> 1], &r);
    } else {
      r = tbl[digit >> 1];
      started = true;
    }
    i = j;
  }
  return E::Unpack(r);
}

// Group exponentiation dispatch: packed kernel for wide-field bases with
// non-trivial exponents, scalar sliding window otherwise.
template <typename G, size_t M>
G PowAuto(const G& base, const BigInt<M>& e) {
  if constexpr (G::kLimbs == 16) {
    if (Available() && e.BitLength() > 32) {
      return PowPacked(base, e);
    }
  }
  return base.Pow(e);
}

}  // namespace ifma52
}  // namespace zaatar

#endif  // SRC_FIELD_IFMA52_H_
