// Fixed-width little-endian multi-precision integers.
//
// BigInt<N> is N 64-bit limbs, limb 0 least significant. It is the storage
// and arithmetic substrate for the prime fields (src/field/prime_field.h)
// and for the 1024-bit ElGamal group (src/crypto/elgamal.h). All operations
// are constant-width (no dynamic allocation) and most are constexpr so that
// Montgomery parameters can be computed at compile time.

#ifndef SRC_FIELD_BIGINT_H_
#define SRC_FIELD_BIGINT_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace zaatar {

template <size_t N>
struct BigInt {
  static_assert(N >= 1);
  static constexpr size_t kLimbs = N;
  static constexpr size_t kBits = 64 * N;

  std::array<uint64_t, N> limbs{};

  constexpr BigInt() = default;
  constexpr explicit BigInt(uint64_t v) { limbs[0] = v; }
  constexpr explicit BigInt(std::array<uint64_t, N> raw) : limbs(raw) {}

  static constexpr BigInt Zero() { return BigInt(); }
  static constexpr BigInt One() { return BigInt(uint64_t{1}); }

  constexpr bool IsZero() const {
    for (size_t i = 0; i < N; i++) {
      if (limbs[i] != 0) {
        return false;
      }
    }
    return true;
  }

  constexpr bool IsOdd() const { return (limbs[0] & 1) != 0; }

  constexpr bool operator==(const BigInt& o) const { return limbs == o.limbs; }
  constexpr bool operator!=(const BigInt& o) const { return !(*this == o); }

  // Three-way unsigned comparison: -1, 0, or +1.
  constexpr int Compare(const BigInt& o) const {
    for (size_t i = N; i-- > 0;) {
      if (limbs[i] < o.limbs[i]) {
        return -1;
      }
      if (limbs[i] > o.limbs[i]) {
        return 1;
      }
    }
    return 0;
  }
  constexpr bool operator<(const BigInt& o) const { return Compare(o) < 0; }
  constexpr bool operator<=(const BigInt& o) const { return Compare(o) <= 0; }
  constexpr bool operator>(const BigInt& o) const { return Compare(o) > 0; }
  constexpr bool operator>=(const BigInt& o) const { return Compare(o) >= 0; }

  // this += o; returns the carry out (0 or 1).
  constexpr uint64_t AddInPlace(const BigInt& o) {
    uint64_t carry = 0;
    for (size_t i = 0; i < N; i++) {
      __uint128_t s = static_cast<__uint128_t>(limbs[i]) + o.limbs[i] + carry;
      limbs[i] = static_cast<uint64_t>(s);
      carry = static_cast<uint64_t>(s >> 64);
    }
    return carry;
  }

  // this -= o; returns the borrow out (0 or 1).
  constexpr uint64_t SubInPlace(const BigInt& o) {
    uint64_t borrow = 0;
    for (size_t i = 0; i < N; i++) {
      __uint128_t d = static_cast<__uint128_t>(limbs[i]) -
                      static_cast<__uint128_t>(o.limbs[i]) - borrow;
      limbs[i] = static_cast<uint64_t>(d);
      borrow = static_cast<uint64_t>(d >> 64) & 1;
    }
    return borrow;
  }

  constexpr BigInt Add(const BigInt& o, uint64_t* carry_out = nullptr) const {
    BigInt r = *this;
    uint64_t c = r.AddInPlace(o);
    if (carry_out != nullptr) {
      *carry_out = c;
    }
    return r;
  }

  constexpr BigInt Sub(const BigInt& o, uint64_t* borrow_out = nullptr) const {
    BigInt r = *this;
    uint64_t b = r.SubInPlace(o);
    if (borrow_out != nullptr) {
      *borrow_out = b;
    }
    return r;
  }

  // Full 2N-limb product.
  constexpr BigInt<2 * N> MulWide(const BigInt& o) const {
    BigInt<2 * N> r;
    for (size_t i = 0; i < N; i++) {
      uint64_t carry = 0;
      for (size_t j = 0; j < N; j++) {
        __uint128_t cur = static_cast<__uint128_t>(limbs[i]) * o.limbs[j] +
                          r.limbs[i + j] + carry;
        r.limbs[i + j] = static_cast<uint64_t>(cur);
        carry = static_cast<uint64_t>(cur >> 64);
      }
      r.limbs[i + N] = carry;
    }
    return r;
  }

  // Left shift by one bit; returns the bit shifted out.
  constexpr uint64_t Shl1InPlace() {
    uint64_t carry = 0;
    for (size_t i = 0; i < N; i++) {
      uint64_t next = limbs[i] >> 63;
      limbs[i] = (limbs[i] << 1) | carry;
      carry = next;
    }
    return carry;
  }

  // Right shift by one bit (logical).
  constexpr void Shr1InPlace() {
    for (size_t i = 0; i + 1 < N; i++) {
      limbs[i] = (limbs[i] >> 1) | (limbs[i + 1] << 63);
    }
    limbs[N - 1] >>= 1;
  }

  constexpr bool Bit(size_t i) const {
    return ((limbs[i / 64] >> (i % 64)) & 1) != 0;
  }

  // Index of the highest set bit plus one; 0 for the zero value.
  constexpr size_t BitLength() const {
    for (size_t i = N; i-- > 0;) {
      if (limbs[i] != 0) {
        uint64_t w = limbs[i];
        size_t b = 0;
        while (w != 0) {
          w >>= 1;
          b++;
        }
        return i * 64 + b;
      }
    }
    return 0;
  }

  // Truncate or zero-extend to M limbs.
  template <size_t M>
  constexpr BigInt<M> Resize() const {
    BigInt<M> r;
    for (size_t i = 0; i < (M < N ? M : N); i++) {
      r.limbs[i] = limbs[i];
    }
    return r;
  }

  // Divides by a single-limb divisor: *this = quotient, returns remainder.
  constexpr uint64_t DivModU64InPlace(uint64_t divisor) {
    __uint128_t rem = 0;
    for (size_t i = N; i-- > 0;) {
      __uint128_t cur = (rem << 64) | limbs[i];
      limbs[i] = static_cast<uint64_t>(cur / divisor);
      rem = cur % divisor;
    }
    return static_cast<uint64_t>(rem);
  }

  // Remainder of this modulo a single-limb modulus m (m != 0).
  constexpr uint64_t ModU64(uint64_t m) const {
    __uint128_t r = 0;
    for (size_t i = N; i-- > 0;) {
      r = ((r << 64) | limbs[i]) % m;
    }
    return static_cast<uint64_t>(r);
  }

  std::string ToHex() const {
    static const char* kDigits = "0123456789abcdef";
    std::string s = "0x";
    bool started = false;
    for (size_t i = N; i-- > 0;) {
      for (int nib = 15; nib >= 0; nib--) {
        int d = static_cast<int>((limbs[i] >> (4 * nib)) & 0xF);
        if (d != 0) {
          started = true;
        }
        if (started) {
          s += kDigits[d];
        }
      }
    }
    if (!started) {
      s += '0';
    }
    return s;
  }
};

// r = (a + b) mod m, assuming a, b < m.
template <size_t N>
constexpr BigInt<N> AddMod(const BigInt<N>& a, const BigInt<N>& b,
                           const BigInt<N>& m) {
  BigInt<N> r = a;
  uint64_t carry = r.AddInPlace(b);
  if (carry != 0 || r >= m) {
    r.SubInPlace(m);
  }
  return r;
}

// r = (a - b) mod m, assuming a, b < m.
template <size_t N>
constexpr BigInt<N> SubMod(const BigInt<N>& a, const BigInt<N>& b,
                           const BigInt<N>& m) {
  BigInt<N> r = a;
  uint64_t borrow = r.SubInPlace(b);
  if (borrow != 0) {
    r.AddInPlace(m);
  }
  return r;
}

// r = 2a mod m, assuming a < m.
template <size_t N>
constexpr BigInt<N> DoubleMod(const BigInt<N>& a, const BigInt<N>& m) {
  return AddMod(a, a, m);
}

}  // namespace zaatar

#endif  // SRC_FIELD_BIGINT_H_
