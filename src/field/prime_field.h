// Montgomery-form prime fields over fixed-width big integers.
//
// PrimeField<Config> implements F_p for a compile-time modulus p supplied by
// Config. Elements are stored in Montgomery form (x·R mod p, R = 2^(64·N)).
// All Montgomery constants are computed at compile time from the modulus, so
// adding a field is just declaring a Config (see src/field/fields.h).
//
// Config requirements:
//   static constexpr size_t kLimbs;                       // limb count N
//   static constexpr std::array<uint64_t, kLimbs> kModulus;  // odd prime, LE
//   static constexpr const char* kName;                   // for diagnostics

#ifndef SRC_FIELD_PRIME_FIELD_H_
#define SRC_FIELD_PRIME_FIELD_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "src/field/bigint.h"

namespace zaatar {

namespace field_internal {

// -p^{-1} mod 2^64 via Newton iteration (p odd).
constexpr uint64_t NegInvModWord(uint64_t p) {
  uint64_t x = 1;
  for (int i = 0; i < 6; i++) {
    x *= 2 - p * x;  // doubles the number of correct low bits
  }
  return ~x + 1;  // -x
}

// Runtime CPU feature probe for the tuned wide-field kernels. The build uses
// no -march flags, so mulx-emitting code paths carry function-level target
// attributes and are entered only behind this check.
inline bool HasBmi2() {
#if defined(__x86_64__) && defined(__GNUC__)
  static const bool kHas = __builtin_cpu_supports("bmi2");
  return kHas;
#else
  return false;
#endif
}

// 2^bits mod p by repeated doubling, starting from start < p.
template <size_t N>
constexpr BigInt<N> ShiftedMod(BigInt<N> start, size_t bits,
                               const BigInt<N>& p) {
  BigInt<N> r = start;
  for (size_t i = 0; i < bits; i++) {
    r = DoubleMod(r, p);
  }
  return r;
}

// p - 2, the Fermat inversion exponent (p > 2 for every Config here).
template <size_t N>
constexpr BigInt<N> MinusTwo(BigInt<N> p) {
  p.SubInPlace(BigInt<N>(uint64_t{2}));
  return p;
}

}  // namespace field_internal

template <typename Config>
class PrimeField {
 public:
  static constexpr size_t kLimbs = Config::kLimbs;
  static constexpr const char* kName = Config::kName;
  using Repr = BigInt<kLimbs>;

  static constexpr Repr kModulus = Repr(Config::kModulus);
  static constexpr size_t kModulusBits = kModulus.BitLength();
  static constexpr uint64_t kN0Inv =
      field_internal::NegInvModWord(Config::kModulus[0]);
  // R mod p and R^2 mod p, R = 2^(64N).
  static constexpr Repr kMontR =
      field_internal::ShiftedMod(Repr::One(), 64 * kLimbs, kModulus);
  static constexpr Repr kMontR2 =
      field_internal::ShiftedMod(kMontR, 64 * kLimbs, kModulus);
  // Hoisted Fermat exponent p - 2: Inverse() (and the ElGamal decryption
  // path) used to rebuild this with a SubInPlace on every call.
  static constexpr Repr kFermatExponent = field_internal::MinusTwo(kModulus);

  constexpr PrimeField() = default;

  static constexpr PrimeField Zero() { return PrimeField(); }
  static constexpr PrimeField One() { return FromMontgomery(kMontR); }

  // Builds an element from a canonical (non-Montgomery) residue < p.
  static constexpr PrimeField FromCanonical(const Repr& x) {
    PrimeField r;
    r.v_ = MontMulAuto(x, kMontR2);
    return r;
  }

  static constexpr PrimeField FromUint(uint64_t x) {
    return FromCanonical(Repr(x));
  }

  static constexpr PrimeField FromInt(int64_t x) {
    if (x >= 0) {
      return FromUint(static_cast<uint64_t>(x));
    }
    return Zero() - FromUint(static_cast<uint64_t>(-(x + 1)) + 1);
  }

  // Reduces an arbitrary little-endian limb span into the field:
  // sum_i limbs[i] * (2^64)^i mod p.
  static PrimeField FromLimbs(const uint64_t* limbs, size_t count) {
    PrimeField shift = FromCanonical(
        field_internal::ShiftedMod(Repr::One(), 64, kModulus));  // 2^64
    PrimeField acc = Zero();
    for (size_t i = count; i-- > 0;) {
      acc = acc * shift + FromUint(limbs[i]);
    }
    return acc;
  }

  // Wraps a raw Montgomery-form value (must be < p).
  static constexpr PrimeField FromMontgomery(const Repr& m) {
    PrimeField r;
    r.v_ = m;
    return r;
  }

  constexpr const Repr& Montgomery() const { return v_; }

  constexpr Repr ToCanonical() const { return MontMulAuto(v_, Repr::One()); }

  constexpr uint64_t ToUint64() const { return ToCanonical().limbs[0]; }

  constexpr bool IsZero() const { return v_.IsZero(); }
  constexpr bool IsOne() const { return v_ == kMontR; }

  constexpr bool operator==(const PrimeField& o) const { return v_ == o.v_; }
  constexpr bool operator!=(const PrimeField& o) const { return v_ != o.v_; }

  constexpr PrimeField operator+(const PrimeField& o) const {
    return FromMontgomery(AddMod(v_, o.v_, kModulus));
  }
  constexpr PrimeField operator-(const PrimeField& o) const {
    return FromMontgomery(SubMod(v_, o.v_, kModulus));
  }
  constexpr PrimeField operator-() const {
    return FromMontgomery(v_.IsZero() ? v_ : kModulus.Sub(v_));
  }
  constexpr PrimeField operator*(const PrimeField& o) const {
    return FromMontgomery(MontMulAuto(v_, o.v_));
  }
  constexpr PrimeField& operator+=(const PrimeField& o) {
    v_ = AddMod(v_, o.v_, kModulus);
    return *this;
  }
  constexpr PrimeField& operator-=(const PrimeField& o) {
    v_ = SubMod(v_, o.v_, kModulus);
    return *this;
  }
  constexpr PrimeField& operator*=(const PrimeField& o) {
    v_ = MontMulAuto(v_, o.v_);
    return *this;
  }

  constexpr PrimeField Square() const { return FromMontgomery(MontSqrAuto(v_)); }

  constexpr PrimeField Double() const {
    return FromMontgomery(DoubleMod(v_, kModulus));
  }

  // x^e for an arbitrary-width exponent: sliding-window exponentiation over
  // precomputed odd powers x^1, x^3, ..., x^(2^w - 1). Squarings stay at
  // ~|e|, but multiplies drop from ~|e|/2 (bit-at-a-time) to ~|e|/(w+1).
  template <size_t M>
  constexpr PrimeField Pow(const BigInt<M>& e) const {
    size_t top = e.BitLength();
    if (top == 0) {
      return One();
    }
    if (top <= 3) {  // tiny exponents: the table costs more than it saves
      return PowNaive(e);
    }
    const size_t w = top > 512 ? 6 : top > 128 ? 5 : top > 24 ? 4 : 2;
    // Odd powers: tbl[i] = x^(2i+1), 2^(w-1) entries (<= 32 for w = 6).
    PrimeField tbl[32];
    tbl[0] = *this;
    const PrimeField sq = Square();
    const size_t half = size_t{1} << (w - 1);
    for (size_t i = 1; i < half; i++) {
      tbl[i] = tbl[i - 1] * sq;
    }
    PrimeField r;
    bool started = false;
    size_t i = top;  // bits [0, i) of e remain to be consumed
    while (i > 0) {
      if (!e.Bit(i - 1)) {
        if (started) {
          r = r.Square();
        }
        i--;
        continue;
      }
      // Take a window [j, i) of at most w bits that starts and ends on a set
      // bit, so its value is odd and indexes the table directly.
      size_t j = i >= w ? i - w : 0;
      while (!e.Bit(j)) {
        j++;
      }
      uint64_t digit = 0;
      for (size_t k = i; k-- > j;) {
        digit = (digit << 1) | e.Bit(k);
      }
      if (started) {
        for (size_t k = 0; k < i - j; k++) {
          r = r.Square();
        }
        r = r * tbl[digit >> 1];
      } else {
        r = tbl[digit >> 1];
        started = true;
      }
      i = j;
    }
    return r;
  }

  constexpr PrimeField Pow(uint64_t e) const { return Pow(BigInt<1>(e)); }

  // The frozen pre-window reference: bit-at-a-time square-and-multiply over
  // the generic CIOS MontMul only. This is the yardstick the cross-PR
  // speedup trajectory (BENCH_multiexp.json "naive" rows) is measured
  // against, and the oracle the differential tests compare every tuned
  // exponentiation path to — do not optimize it.
  template <size_t M>
  constexpr PrimeField PowNaive(const BigInt<M>& e) const {
    PrimeField r = One();
    for (size_t i = e.BitLength(); i-- > 0;) {
      r.v_ = MontMul(r.v_, r.v_);
      if (e.Bit(i)) {
        r.v_ = MontMul(r.v_, v_);
      }
    }
    return r;
  }

  // Multiplicative inverse via Fermat: x^(p-2). Inverse of zero is zero
  // (callers that care must check; this matches the convention used by the
  // constraint gadgets, where 0^{-1} never reaches a constraint unguarded).
  constexpr PrimeField Inverse() const { return Pow(kFermatExponent); }

  constexpr PrimeField operator/(const PrimeField& o) const {
    return *this * o.Inverse();
  }

  std::string ToHexString() const { return ToCanonical().ToHex(); }

  // Montgomery product: a·b·R^{-1} mod p (CIOS).
  static constexpr Repr MontMul(const Repr& a, const Repr& b) {
    constexpr size_t N = kLimbs;
    // Accumulator of N+2 limbs.
    uint64_t t[N + 2] = {};
    for (size_t i = 0; i < N; i++) {
      // t += a[i] * b
      uint64_t carry = 0;
      for (size_t j = 0; j < N; j++) {
        __uint128_t cur =
            static_cast<__uint128_t>(a.limbs[i]) * b.limbs[j] + t[j] + carry;
        t[j] = static_cast<uint64_t>(cur);
        carry = static_cast<uint64_t>(cur >> 64);
      }
      __uint128_t cur = static_cast<__uint128_t>(t[N]) + carry;
      t[N] = static_cast<uint64_t>(cur);
      t[N + 1] = static_cast<uint64_t>(cur >> 64);

      // m = t[0] * n0inv mod 2^64; t += m*p; t >>= 64
      uint64_t m = t[0] * kN0Inv;
      __uint128_t cur2 =
          static_cast<__uint128_t>(m) * kModulus.limbs[0] + t[0];
      carry = static_cast<uint64_t>(cur2 >> 64);
      for (size_t j = 1; j < N; j++) {
        cur2 = static_cast<__uint128_t>(m) * kModulus.limbs[j] + t[j] + carry;
        t[j - 1] = static_cast<uint64_t>(cur2);
        carry = static_cast<uint64_t>(cur2 >> 64);
      }
      cur2 = static_cast<__uint128_t>(t[N]) + carry;
      t[N - 1] = static_cast<uint64_t>(cur2);
      t[N] = t[N + 1] + static_cast<uint64_t>(cur2 >> 64);
      t[N + 1] = 0;
    }
    Repr r;
    for (size_t i = 0; i < N; i++) {
      r.limbs[i] = t[i];
    }
    if (t[N] != 0 || r >= kModulus) {
      r.SubInPlace(kModulus);
    }
    return r;
  }

  // Montgomery squaring: a·a·R^{-1} mod p. The off-diagonal partial products
  // a_i·a_j (i < j) are computed once and shift-doubled instead of twice,
  // then the diagonals are added and the double-width result is reduced SOS-
  // style with a single deferred top carry (no data-dependent inner loops).
  static constexpr Repr MontSqr(const Repr& a) {
    constexpr size_t N = kLimbs;
    uint64_t t[2 * N + 1] = {};
    for (size_t i = 0; i < N; i++) {
      uint64_t ai = a.limbs[i];
      uint64_t carry = 0;
      for (size_t j = i + 1; j < N; j++) {
        __uint128_t cur =
            static_cast<__uint128_t>(ai) * a.limbs[j] + t[i + j] + carry;
        t[i + j] = static_cast<uint64_t>(cur);
        carry = static_cast<uint64_t>(cur >> 64);
      }
      t[i + N] = carry;
    }
    uint64_t top = 0;
    for (size_t k = 0; k < 2 * N; k++) {
      uint64_t nt = t[k] >> 63;
      t[k] = (t[k] << 1) | top;
      top = nt;
    }
    uint64_t c = 0;
    for (size_t i = 0; i < N; i++) {
      __uint128_t cur =
          static_cast<__uint128_t>(a.limbs[i]) * a.limbs[i] + t[2 * i] + c;
      t[2 * i] = static_cast<uint64_t>(cur);
      __uint128_t cur2 =
          static_cast<__uint128_t>(t[2 * i + 1]) + static_cast<uint64_t>(cur >> 64);
      t[2 * i + 1] = static_cast<uint64_t>(cur2);
      c = static_cast<uint64_t>(cur2 >> 64);
    }
    // Montgomery reduction of the 2N-limb square; per-row carries into the
    // upper half are deferred through `pend` so each row is one fixed pass.
    uint64_t pend = 0;
    for (size_t i = 0; i < N; i++) {
      uint64_t m = t[i] * kN0Inv;
      uint64_t cc = 0;
      for (size_t j = 0; j < N; j++) {
        __uint128_t cur =
            static_cast<__uint128_t>(m) * kModulus.limbs[j] + t[i + j] + cc;
        t[i + j] = static_cast<uint64_t>(cur);
        cc = static_cast<uint64_t>(cur >> 64);
      }
      __uint128_t s = static_cast<__uint128_t>(t[i + N]) + cc + pend;
      t[i + N] = static_cast<uint64_t>(s);
      pend = static_cast<uint64_t>(s >> 64);
    }
    t[2 * N] += pend;
    Repr r;
    for (size_t i = 0; i < N; i++) {
      r.limbs[i] = t[N + i];
    }
    if (t[2 * N] != 0 || r >= kModulus) {
      r.SubInPlace(kModulus);
    }
    return r;
  }

  // Dispatching product/square: compile-time evaluation and narrow fields use
  // the generic kernels inline; wide fields (the 1024-bit ElGamal groups)
  // take the mulx-emitting tuned kernels when the CPU has BMI2. Results are
  // bit-identical across all paths (tests/field_test.cc).
  static constexpr Repr MontMulAuto(const Repr& a, const Repr& b) {
    if constexpr (kLimbs >= 8) {
      if (!std::is_constant_evaluated() && field_internal::HasBmi2()) {
        return MontMulTuned(a, b);
      }
    }
    return MontMul(a, b);
  }

  static constexpr Repr MontSqrAuto(const Repr& a) {
    if constexpr (kLimbs >= 8) {
      if (!std::is_constant_evaluated() && field_internal::HasBmi2()) {
        return MontSqrTuned(a);
      }
    }
    return MontSqr(a);
  }

#if defined(__x86_64__) && defined(__GNUC__)
  // Fused CIOS: one pass per row with two interleaved carry chains (a_i·b and
  // m·p). At default build flags this form loses to the plain CIOS, but with
  // mulx codegen it is the fastest scalar multiply measured on this kernel
  // shape — hence the target attribute + HasBmi2 dispatch.
  __attribute__((target("bmi2"), optimize("O3"))) static Repr MontMulTuned(
      const Repr& a, const Repr& b) {
    constexpr size_t N = kLimbs;
    uint64_t t[N + 1] = {};
    for (size_t i = 0; i < N; i++) {
      uint64_t ai = a.limbs[i];
      __uint128_t x = static_cast<__uint128_t>(ai) * b.limbs[0] + t[0];
      uint64_t m = static_cast<uint64_t>(x) * kN0Inv;
      __uint128_t y = static_cast<__uint128_t>(m) * kModulus.limbs[0] +
                      static_cast<uint64_t>(x);
      uint64_t ca = static_cast<uint64_t>(x >> 64);
      uint64_t cm = static_cast<uint64_t>(y >> 64);
      for (size_t j = 1; j < N; j++) {
        x = static_cast<__uint128_t>(ai) * b.limbs[j] + t[j] + ca;
        ca = static_cast<uint64_t>(x >> 64);
        y = static_cast<__uint128_t>(m) * kModulus.limbs[j] +
            static_cast<uint64_t>(x) + cm;
        cm = static_cast<uint64_t>(y >> 64);
        t[j - 1] = static_cast<uint64_t>(y);
      }
      __uint128_t fin = static_cast<__uint128_t>(t[N]) + ca + cm;
      t[N - 1] = static_cast<uint64_t>(fin);
      t[N] = static_cast<uint64_t>(fin >> 64);
    }
    Repr r;
    for (size_t i = 0; i < N; i++) {
      r.limbs[i] = t[i];
    }
    if (t[N] != 0 || r >= kModulus) {
      r.SubInPlace(kModulus);
    }
    return r;
  }

  // MontSqr body under mulx codegen.
  __attribute__((target("bmi2"), optimize("O3"))) static Repr MontSqrTuned(
      const Repr& a) {
    constexpr size_t N = kLimbs;
    uint64_t t[2 * N + 1] = {};
    for (size_t i = 0; i < N; i++) {
      uint64_t ai = a.limbs[i];
      uint64_t carry = 0;
      for (size_t j = i + 1; j < N; j++) {
        __uint128_t cur =
            static_cast<__uint128_t>(ai) * a.limbs[j] + t[i + j] + carry;
        t[i + j] = static_cast<uint64_t>(cur);
        carry = static_cast<uint64_t>(cur >> 64);
      }
      t[i + N] = carry;
    }
    uint64_t top = 0;
    for (size_t k = 0; k < 2 * N; k++) {
      uint64_t nt = t[k] >> 63;
      t[k] = (t[k] << 1) | top;
      top = nt;
    }
    uint64_t c = 0;
    for (size_t i = 0; i < N; i++) {
      __uint128_t cur =
          static_cast<__uint128_t>(a.limbs[i]) * a.limbs[i] + t[2 * i] + c;
      t[2 * i] = static_cast<uint64_t>(cur);
      __uint128_t cur2 = static_cast<__uint128_t>(t[2 * i + 1]) +
                         static_cast<uint64_t>(cur >> 64);
      t[2 * i + 1] = static_cast<uint64_t>(cur2);
      c = static_cast<uint64_t>(cur2 >> 64);
    }
    uint64_t pend = 0;
    for (size_t i = 0; i < N; i++) {
      uint64_t m = t[i] * kN0Inv;
      uint64_t cc = 0;
      for (size_t j = 0; j < N; j++) {
        __uint128_t cur =
            static_cast<__uint128_t>(m) * kModulus.limbs[j] + t[i + j] + cc;
        t[i + j] = static_cast<uint64_t>(cur);
        cc = static_cast<uint64_t>(cur >> 64);
      }
      __uint128_t s = static_cast<__uint128_t>(t[i + N]) + cc + pend;
      t[i + N] = static_cast<uint64_t>(s);
      pend = static_cast<uint64_t>(s >> 64);
    }
    t[2 * N] += pend;
    Repr r;
    for (size_t i = 0; i < N; i++) {
      r.limbs[i] = t[N + i];
    }
    if (t[2 * N] != 0 || r >= kModulus) {
      r.SubInPlace(kModulus);
    }
    return r;
  }
#else
  static Repr MontMulTuned(const Repr& a, const Repr& b) { return MontMul(a, b); }
  static Repr MontSqrTuned(const Repr& a) { return MontSqr(a); }
#endif

 private:
  Repr v_{};  // Montgomery form
};

// In-place batch inversion (Montgomery's trick): one field inversion plus
// 3(n-1) multiplications. Zero entries are left as zero.
template <typename F>
void BatchInvert(F* elems, size_t n) {
  if (n == 0) {
    return;
  }
  std::vector<F> prefix(n);
  F acc = F::One();
  for (size_t i = 0; i < n; i++) {
    prefix[i] = acc;
    if (!elems[i].IsZero()) {
      acc *= elems[i];
    }
  }
  F inv = acc.Inverse();
  for (size_t i = n; i-- > 0;) {
    if (elems[i].IsZero()) {
      continue;
    }
    F orig = elems[i];
    elems[i] = inv * prefix[i];
    inv *= orig;
  }
}

}  // namespace zaatar

#endif  // SRC_FIELD_PRIME_FIELD_H_
