// Montgomery-form prime fields over fixed-width big integers.
//
// PrimeField<Config> implements F_p for a compile-time modulus p supplied by
// Config. Elements are stored in Montgomery form (x·R mod p, R = 2^(64·N)).
// All Montgomery constants are computed at compile time from the modulus, so
// adding a field is just declaring a Config (see src/field/fields.h).
//
// Config requirements:
//   static constexpr size_t kLimbs;                       // limb count N
//   static constexpr std::array<uint64_t, kLimbs> kModulus;  // odd prime, LE
//   static constexpr const char* kName;                   // for diagnostics

#ifndef SRC_FIELD_PRIME_FIELD_H_
#define SRC_FIELD_PRIME_FIELD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/field/bigint.h"

namespace zaatar {

namespace field_internal {

// -p^{-1} mod 2^64 via Newton iteration (p odd).
constexpr uint64_t NegInvModWord(uint64_t p) {
  uint64_t x = 1;
  for (int i = 0; i < 6; i++) {
    x *= 2 - p * x;  // doubles the number of correct low bits
  }
  return ~x + 1;  // -x
}

// 2^bits mod p by repeated doubling, starting from start < p.
template <size_t N>
constexpr BigInt<N> ShiftedMod(BigInt<N> start, size_t bits,
                               const BigInt<N>& p) {
  BigInt<N> r = start;
  for (size_t i = 0; i < bits; i++) {
    r = DoubleMod(r, p);
  }
  return r;
}

// p - 2, the Fermat inversion exponent (p > 2 for every Config here).
template <size_t N>
constexpr BigInt<N> MinusTwo(BigInt<N> p) {
  p.SubInPlace(BigInt<N>(uint64_t{2}));
  return p;
}

}  // namespace field_internal

template <typename Config>
class PrimeField {
 public:
  static constexpr size_t kLimbs = Config::kLimbs;
  static constexpr const char* kName = Config::kName;
  using Repr = BigInt<kLimbs>;

  static constexpr Repr kModulus = Repr(Config::kModulus);
  static constexpr size_t kModulusBits = kModulus.BitLength();
  static constexpr uint64_t kN0Inv =
      field_internal::NegInvModWord(Config::kModulus[0]);
  // R mod p and R^2 mod p, R = 2^(64N).
  static constexpr Repr kMontR =
      field_internal::ShiftedMod(Repr::One(), 64 * kLimbs, kModulus);
  static constexpr Repr kMontR2 =
      field_internal::ShiftedMod(kMontR, 64 * kLimbs, kModulus);
  // Hoisted Fermat exponent p - 2: Inverse() (and the ElGamal decryption
  // path) used to rebuild this with a SubInPlace on every call.
  static constexpr Repr kFermatExponent = field_internal::MinusTwo(kModulus);

  constexpr PrimeField() = default;

  static constexpr PrimeField Zero() { return PrimeField(); }
  static constexpr PrimeField One() { return FromMontgomery(kMontR); }

  // Builds an element from a canonical (non-Montgomery) residue < p.
  static constexpr PrimeField FromCanonical(const Repr& x) {
    PrimeField r;
    r.v_ = MontMul(x, kMontR2);
    return r;
  }

  static constexpr PrimeField FromUint(uint64_t x) {
    return FromCanonical(Repr(x));
  }

  static constexpr PrimeField FromInt(int64_t x) {
    if (x >= 0) {
      return FromUint(static_cast<uint64_t>(x));
    }
    return Zero() - FromUint(static_cast<uint64_t>(-(x + 1)) + 1);
  }

  // Reduces an arbitrary little-endian limb span into the field:
  // sum_i limbs[i] * (2^64)^i mod p.
  static PrimeField FromLimbs(const uint64_t* limbs, size_t count) {
    PrimeField shift = FromCanonical(
        field_internal::ShiftedMod(Repr::One(), 64, kModulus));  // 2^64
    PrimeField acc = Zero();
    for (size_t i = count; i-- > 0;) {
      acc = acc * shift + FromUint(limbs[i]);
    }
    return acc;
  }

  // Wraps a raw Montgomery-form value (must be < p).
  static constexpr PrimeField FromMontgomery(const Repr& m) {
    PrimeField r;
    r.v_ = m;
    return r;
  }

  constexpr const Repr& Montgomery() const { return v_; }

  constexpr Repr ToCanonical() const { return MontMul(v_, Repr::One()); }

  constexpr uint64_t ToUint64() const { return ToCanonical().limbs[0]; }

  constexpr bool IsZero() const { return v_.IsZero(); }
  constexpr bool IsOne() const { return v_ == kMontR; }

  constexpr bool operator==(const PrimeField& o) const { return v_ == o.v_; }
  constexpr bool operator!=(const PrimeField& o) const { return v_ != o.v_; }

  constexpr PrimeField operator+(const PrimeField& o) const {
    return FromMontgomery(AddMod(v_, o.v_, kModulus));
  }
  constexpr PrimeField operator-(const PrimeField& o) const {
    return FromMontgomery(SubMod(v_, o.v_, kModulus));
  }
  constexpr PrimeField operator-() const {
    return FromMontgomery(v_.IsZero() ? v_ : kModulus.Sub(v_));
  }
  constexpr PrimeField operator*(const PrimeField& o) const {
    return FromMontgomery(MontMul(v_, o.v_));
  }
  constexpr PrimeField& operator+=(const PrimeField& o) {
    v_ = AddMod(v_, o.v_, kModulus);
    return *this;
  }
  constexpr PrimeField& operator-=(const PrimeField& o) {
    v_ = SubMod(v_, o.v_, kModulus);
    return *this;
  }
  constexpr PrimeField& operator*=(const PrimeField& o) {
    v_ = MontMul(v_, o.v_);
    return *this;
  }

  constexpr PrimeField Square() const { return *this * *this; }

  constexpr PrimeField Double() const {
    return FromMontgomery(DoubleMod(v_, kModulus));
  }

  // x^e for an arbitrary-width exponent (square-and-multiply, MSB first).
  template <size_t M>
  constexpr PrimeField Pow(const BigInt<M>& e) const {
    PrimeField r = One();
    size_t top = e.BitLength();
    for (size_t i = top; i-- > 0;) {
      r = r.Square();
      if (e.Bit(i)) {
        r = r * *this;
      }
    }
    return r;
  }

  constexpr PrimeField Pow(uint64_t e) const { return Pow(BigInt<1>(e)); }

  // Multiplicative inverse via Fermat: x^(p-2). Inverse of zero is zero
  // (callers that care must check; this matches the convention used by the
  // constraint gadgets, where 0^{-1} never reaches a constraint unguarded).
  constexpr PrimeField Inverse() const { return Pow(kFermatExponent); }

  constexpr PrimeField operator/(const PrimeField& o) const {
    return *this * o.Inverse();
  }

  std::string ToHexString() const { return ToCanonical().ToHex(); }

  // Montgomery product: a·b·R^{-1} mod p (CIOS).
  static constexpr Repr MontMul(const Repr& a, const Repr& b) {
    constexpr size_t N = kLimbs;
    // Accumulator of N+2 limbs.
    uint64_t t[N + 2] = {};
    for (size_t i = 0; i < N; i++) {
      // t += a[i] * b
      uint64_t carry = 0;
      for (size_t j = 0; j < N; j++) {
        __uint128_t cur =
            static_cast<__uint128_t>(a.limbs[i]) * b.limbs[j] + t[j] + carry;
        t[j] = static_cast<uint64_t>(cur);
        carry = static_cast<uint64_t>(cur >> 64);
      }
      __uint128_t cur = static_cast<__uint128_t>(t[N]) + carry;
      t[N] = static_cast<uint64_t>(cur);
      t[N + 1] = static_cast<uint64_t>(cur >> 64);

      // m = t[0] * n0inv mod 2^64; t += m*p; t >>= 64
      uint64_t m = t[0] * kN0Inv;
      __uint128_t cur2 =
          static_cast<__uint128_t>(m) * kModulus.limbs[0] + t[0];
      carry = static_cast<uint64_t>(cur2 >> 64);
      for (size_t j = 1; j < N; j++) {
        cur2 = static_cast<__uint128_t>(m) * kModulus.limbs[j] + t[j] + carry;
        t[j - 1] = static_cast<uint64_t>(cur2);
        carry = static_cast<uint64_t>(cur2 >> 64);
      }
      cur2 = static_cast<__uint128_t>(t[N]) + carry;
      t[N - 1] = static_cast<uint64_t>(cur2);
      t[N] = t[N + 1] + static_cast<uint64_t>(cur2 >> 64);
      t[N + 1] = 0;
    }
    Repr r;
    for (size_t i = 0; i < N; i++) {
      r.limbs[i] = t[i];
    }
    if (t[N] != 0 || r >= kModulus) {
      r.SubInPlace(kModulus);
    }
    return r;
  }

 private:
  Repr v_{};  // Montgomery form
};

// In-place batch inversion (Montgomery's trick): one field inversion plus
// 3(n-1) multiplications. Zero entries are left as zero.
template <typename F>
void BatchInvert(F* elems, size_t n) {
  if (n == 0) {
    return;
  }
  std::vector<F> prefix(n);
  F acc = F::One();
  for (size_t i = 0; i < n; i++) {
    prefix[i] = acc;
    if (!elems[i].IsZero()) {
      acc *= elems[i];
    }
  }
  F inv = acc.Inverse();
  for (size_t i = n; i-- > 0;) {
    if (elems[i].IsZero()) {
      continue;
    }
    F orig = elems[i];
    elems[i] = inv * prefix[i];
    inv *= orig;
  }
}

}  // namespace zaatar

#endif  // SRC_FIELD_PRIME_FIELD_H_
