// Concrete field instantiations used throughout Zaatar.
//
// The paper evaluates with two field sizes (§5.1): a 128-bit prime modulus
// (PAM clustering, Fannkuch, LCS, Floyd-Warshall) and a 220-bit prime modulus
// (root finding by bisection). Both moduli here additionally serve as the
// *subgroup order* of the corresponding 1024-bit ElGamal group
// (src/crypto/elgamal.h), which is what makes the homomorphic linear
// commitment arithmetic exact over F (the Pepper/Ginger construction).
//
// Parameters were generated offline (deterministic seed, Miller-Rabin with 40
// rounds) and are verified by tests/field_test.cc.

#ifndef SRC_FIELD_FIELDS_H_
#define SRC_FIELD_FIELDS_H_

#include <array>
#include <cstdint>

#include "src/field/prime_field.h"

namespace zaatar {

// q = 2^128 - 159, prime. The paper's "128-bit prime" field.
struct F128Config {
  static constexpr size_t kLimbs = 2;
  static constexpr std::array<uint64_t, 2> kModulus = {0xffffffffffffff61ULL,
                                                       0xffffffffffffffffULL};
  static constexpr const char* kName = "F128";
};
using F128 = PrimeField<F128Config>;

// q = 2^220 - 77, prime. The paper's "220-bit prime" field (root finding).
struct F220Config {
  static constexpr size_t kLimbs = 4;
  static constexpr std::array<uint64_t, 4> kModulus = {
      0xffffffffffffffb3ULL, 0xffffffffffffffffULL, 0xffffffffffffffffULL,
      0x000000000fffffffULL};
  static constexpr const char* kName = "F220";
};
using F220 = PrimeField<F220Config>;

// 64-bit field for the evaluation-domain ablation bench (Goldilocks,
// p = 2^64 - 2^32 + 1, 2-adicity 32). Not used by the protocol itself.
struct FGoldilocksConfig {
  static constexpr size_t kLimbs = 1;
  static constexpr std::array<uint64_t, 1> kModulus = {0xffffffff00000001ULL};
  static constexpr const char* kName = "FGoldilocks";
};
using FGoldilocks = PrimeField<FGoldilocksConfig>;

}  // namespace zaatar

#endif  // SRC_FIELD_FIELDS_H_
