// Determinism (underconstrained-variable) analysis.
//
// Soundness of the whole pipeline rests on the compiled constraint set
// admitting exactly one witness per input: if some non-input variable can
// take two values under the same inputs, a prover can often steer an output
// to a wrong value and the verifier will still ACCEPT. This analysis
// propagates a "uniquely determined from the inputs" fact to a fixpoint and
// flags every non-input variable it cannot reach.
//
// Both constraint formats are lowered to a common quadratic-equation IR
// (linear part + explicit degree-2 terms = 0); the engine then applies four
// inference rules (DESIGN.md §10 gives the full statement and limits):
//
//   R1 linear solve      one undetermined variable, appearing only linearly
//   R2 bit decomposition all undetermined variables boolean-constrained,
//                        coefficients forming a doubling chain (unique
//                        subset sums in F)
//   R3 is-zero gadget    the compiler's inverse-witness pattern
//                        {v·m + b = 1, v·b = 0}: b is forced by v, m is a
//                        free-but-harmless auxiliary (exempted)
//   R4 guarded division  dividend = q·d + r with range decompositions
//                        pinning q and r
//
// The analysis is sound-for-reporting in one direction only: everything it
// marks determined really is uniquely determined (R4 additionally assumes
// the compiler's r < d comparison guard, see DESIGN.md); a clean report does
// NOT prove the system fully constrained.

#ifndef SRC_ANALYSIS_DETERMINISM_H_
#define SRC_ANALYSIS_DETERMINISM_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/finding.h"
#include "src/analysis/rules.h"
#include "src/constraints/ginger.h"
#include "src/constraints/r1cs.h"

namespace zaatar {

// One equation of the unified IR: linear(W) + sum_k coeff_k·W_a·W_b = 0.
template <typename F>
struct QuadEq {
  LinearCombination<F> linear;    // compacted: one entry per variable
  std::vector<QuadTerm<F>> quad;  // canonical (a <= b), merged, no zeros
  long source_constraint = -1;
  uint32_t source_line = 0;
  // Set when the R1CS row was too dense to expand into the IR; the
  // equation's variables are tracked for liveness but no rule fires on it.
  bool opaque = false;
};

namespace analysis_internal {

// Bilinear R1CS rows expand into at most this many degree-2 terms; denser
// rows become opaque equations. Compiler output never comes close (the
// transform emits rows with <= 2-term A/B sides), so the cap only guards
// adversarial hand-built systems against quadratic blowup.
inline constexpr size_t kMaxQuadExpansion = 256;

template <typename F>
void CanonicalizeQuad(std::vector<QuadTerm<F>>* quad) {
  for (auto& t : *quad) {
    if (t.a > t.b) {
      std::swap(t.a, t.b);
    }
  }
  std::sort(quad->begin(), quad->end(),
            [](const QuadTerm<F>& x, const QuadTerm<F>& y) {
              return std::make_pair(x.a, x.b) < std::make_pair(y.a, y.b);
            });
  std::vector<QuadTerm<F>> merged;
  merged.reserve(quad->size());
  for (const auto& t : *quad) {
    if (!merged.empty() && merged.back().a == t.a && merged.back().b == t.b) {
      merged.back().coeff += t.coeff;
    } else {
      merged.push_back(t);
    }
  }
  merged.erase(std::remove_if(
                   merged.begin(), merged.end(),
                   [](const QuadTerm<F>& t) { return t.coeff.IsZero(); }),
               merged.end());
  *quad = std::move(merged);
}

}  // namespace analysis_internal

template <typename F>
QuadEq<F> ToQuadEq(const GingerConstraint<F>& c, long index, uint32_t line) {
  QuadEq<F> eq;
  eq.linear = c.linear;
  eq.linear.Compact();
  eq.quad = c.quad;
  analysis_internal::CanonicalizeQuad(&eq.quad);
  eq.source_constraint = index;
  eq.source_line = line;
  return eq;
}

// Expands a quadratic-form constraint pA·pB = pC into the IR. When either
// side is constant the product stays linear; otherwise the cross terms are
// expanded (bounded by kMaxQuadExpansion).
template <typename F>
QuadEq<F> ToQuadEq(const R1csConstraint<F>& c, long index, uint32_t line) {
  QuadEq<F> eq;
  eq.source_constraint = index;
  eq.source_line = line;
  if (c.a.IsConstant() || c.b.IsConstant()) {
    const LinearCombination<F>& lin = c.a.IsConstant() ? c.b : c.a;
    const F& k = c.a.IsConstant() ? c.a.constant() : c.b.constant();
    eq.linear = lin * k + c.c * (-F::One());
    eq.linear.Compact();
    return eq;
  }
  if (c.a.TermCount() * c.b.TermCount() >
      analysis_internal::kMaxQuadExpansion) {
    eq.opaque = true;
    // Record occurrences only: a zero-coefficient-free union of the sides.
    eq.linear = c.a + c.b + c.c;
    eq.linear.Compact();
    return eq;
  }
  // (ka + sum ai·wi)(kb + sum bj·wj) - (kc + sum ci·wi) = 0
  eq.linear = c.b * c.a.constant() + c.a * c.b.constant() +
              c.c * (-F::One());
  eq.linear.AddConstant(-(c.a.constant() * c.b.constant()));  // added twice
  eq.linear.Compact();
  for (const auto& ta : c.a.terms()) {
    for (const auto& tb : c.b.terms()) {
      eq.quad.push_back({ta.first, tb.first, ta.second * tb.second});
    }
  }
  analysis_internal::CanonicalizeQuad(&eq.quad);
  return eq;
}

template <typename F>
std::vector<QuadEq<F>> LowerToIr(const GingerSystem<F>& g) {
  std::vector<QuadEq<F>> eqs;
  eqs.reserve(g.constraints.size());
  for (size_t j = 0; j < g.constraints.size(); j++) {
    eqs.push_back(ToQuadEq(g.constraints[j], static_cast<long>(j),
                           g.SourceLineOf(j)));
  }
  return eqs;
}

template <typename F>
std::vector<QuadEq<F>> LowerToIr(const R1cs<F>& r) {
  std::vector<QuadEq<F>> eqs;
  eqs.reserve(r.constraints.size());
  for (size_t j = 0; j < r.constraints.size(); j++) {
    eqs.push_back(ToQuadEq(r.constraints[j], static_cast<long>(j),
                           r.SourceLineOf(j)));
  }
  return eqs;
}

template <typename F>
class DeterminismAnalysis {
 public:
  DeterminismAnalysis(std::vector<QuadEq<F>> eqs, VariableLayout layout,
                      AnalysisLayer layer)
      : eqs_(std::move(eqs)), layout_(layout), layer_(layer) {}

  // Runs the fixpoint and reports ZL001/ZL002 findings.
  void Run(AnalysisReport* report) {
    const size_t n = layout_.Total();
    determined_.assign(n, false);
    exempt_.assign(n, false);
    occurrences_.assign(n, {});
    BuildOccurrences();
    FindBooleanConstrained();
    FindIsZeroPatterns();
    FindRangeDecompositions();

    for (size_t v = 0; v < n; v++) {
      if (layout_.IsInput(static_cast<uint32_t>(v))) {
        determined_[v] = true;
      }
    }
    // Seed: every equation once, plus patterns keyed on already-known vars.
    for (size_t j = 0; j < eqs_.size(); j++) {
      worklist_.push_back(j);
    }
    for (size_t v = 0; v < n; v++) {
      if (determined_[v]) {
        FirePatterns(static_cast<uint32_t>(v));
      }
    }
    while (!worklist_.empty()) {
      size_t j = worklist_.front();
      worklist_.pop_front();
      in_worklist_[j] = false;
      ProcessEquation(j);
    }
    Report(report);
  }

  const std::vector<char>& determined() const { return determined_; }
  const std::vector<char>& exempt() const { return exempt_; }
  size_t NumExempt() const {
    size_t k = 0;
    for (char e : exempt_) {
      k += e ? 1 : 0;
    }
    return k;
  }

 private:
  using LC = LinearCombination<F>;

  void BuildOccurrences() {
    in_worklist_.assign(eqs_.size(), false);
    for (size_t j = 0; j < eqs_.size(); j++) {
      std::vector<uint32_t> vars = VariablesOf(eqs_[j]);
      for (uint32_t v : vars) {
        if (v < occurrences_.size()) {
          occurrences_[v].push_back(j);
        }
      }
    }
  }

  static std::vector<uint32_t> VariablesOf(const QuadEq<F>& eq) {
    std::vector<uint32_t> vars;
    for (const auto& t : eq.linear.terms()) {
      vars.push_back(t.first);
    }
    for (const auto& t : eq.quad) {
      vars.push_back(t.a);
      vars.push_back(t.b);
    }
    std::sort(vars.begin(), vars.end());
    vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
    return vars;
  }

  // A variable b is boolean-constrained when some equation reads
  // s·b² − s·b = 0 for a nonzero scalar s.
  void FindBooleanConstrained() {
    boolean_.assign(layout_.Total(), false);
    for (const auto& eq : eqs_) {
      if (eq.opaque || eq.quad.size() != 1 ||
          eq.linear.TermCount() != 1 || !eq.linear.constant().IsZero()) {
        continue;
      }
      const QuadTerm<F>& q = eq.quad[0];
      if (q.a != q.b || eq.linear.terms()[0].first != q.a) {
        continue;
      }
      if (eq.linear.terms()[0].second == -q.coeff &&
          q.a < boolean_.size()) {
        boolean_[q.a] = true;
      }
    }
  }

  // The IsZero gadget emits the pair (scaled by arbitrary s, s'):
  //   eq1:  s·v·m + s·b − s   = 0
  //   eq2:  s'·v·b            = 0
  // Given v, b is forced (v≠0 ⇒ b=0 via eq2 & m=1/v; v=0 ⇒ b=1 via eq1)
  // while m is free exactly when v = 0 — harmless because no other equation
  // reads m. Pattern instances are indexed by v and fired on determination.
  struct IsZeroPattern {
    uint32_t v, m, b;
  };

  void FindIsZeroPatterns() {
    // Pure products s'·x·y = 0, keyed by the (x, y) pair.
    std::map<std::pair<uint32_t, uint32_t>, size_t> pure_products;
    for (size_t j = 0; j < eqs_.size(); j++) {
      const auto& eq = eqs_[j];
      if (!eq.opaque && eq.quad.size() == 1 && eq.linear.TermCount() == 0 &&
          eq.linear.constant().IsZero()) {
        pure_products.emplace(std::minmax(eq.quad[0].a, eq.quad[0].b), j);
      }
    }
    for (const auto& eq : eqs_) {
      if (eq.opaque || eq.quad.size() != 1 || eq.linear.TermCount() != 1) {
        continue;
      }
      const QuadTerm<F>& q = eq.quad[0];
      uint32_t b = eq.linear.terms()[0].first;
      const F& s = q.coeff;
      if (eq.linear.terms()[0].second != s || eq.linear.constant() != -s) {
        continue;
      }
      if (b == q.a || b == q.b) {
        continue;  // that is the booleanity shape, not is-zero
      }
      // eq2 must tie b to one side of the product; the shared side is v.
      for (int side = 0; side < 2; side++) {
        uint32_t v = side == 0 ? q.a : q.b;
        uint32_t m = side == 0 ? q.b : q.a;
        if (pure_products.count(std::minmax(v, b)) != 0) {
          // m must be private to this gadget (eq1 only), otherwise its
          // freedom could leak into other equations.
          if (m < occurrences_.size() && occurrences_[m].size() == 1) {
            iszero_by_v_[v].push_back({v, m, b});
          }
          break;
        }
      }
    }
  }

  // Marks x range-decomposed when some pure-linear equation expresses x as
  // an (injective) weighted sum of boolean-constrained variables:
  //   c·x + sum_i c_i·b_i + k = 0,  {c_i/(−c)} a doubling chain.
  void FindRangeDecompositions() {
    range_decomposed_.assign(layout_.Total(), false);
    for (const auto& eq : eqs_) {
      if (eq.opaque || !eq.quad.empty() || eq.linear.TermCount() < 2) {
        continue;
      }
      uint32_t x = 0;
      F cx = F::Zero();
      size_t non_bool = 0;
      for (const auto& t : eq.linear.terms()) {
        if (t.first >= boolean_.size() || !boolean_[t.first]) {
          non_bool++;
          x = t.first;
          cx = t.second;
        }
      }
      if (non_bool != 1) {
        continue;
      }
      std::vector<F> coeffs;
      coeffs.reserve(eq.linear.TermCount() - 1);
      F scale = -cx.Inverse();
      for (const auto& t : eq.linear.terms()) {
        if (t.first != x) {
          coeffs.push_back(t.second * scale);
        }
      }
      if (IsDoublingChain(coeffs) && x < range_decomposed_.size()) {
        range_decomposed_[x] = true;
      }
    }
  }

  // True when the multiset equals {s·2^i : i = 0..k−1} for some s ≠ 0 with
  // k < kModulusBits: then all 2^k boolean weightings give distinct field
  // elements (differences are s·d with |d| < 2^k < p).
  static bool IsDoublingChain(const std::vector<F>& coeffs) {
    if (coeffs.empty() || coeffs.size() >= F::kModulusBits) {
      return false;
    }
    std::map<typename F::Repr, int> set;
    for (const auto& c : coeffs) {
      if (c.IsZero()) {
        return false;
      }
      if (++set[c.ToCanonical()] > 1) {
        return false;  // duplicate weight: subset sums collide
      }
    }
    // Find the unique start: an element whose half is not in the set.
    const F half = F::FromUint(2).Inverse();
    F start = F::Zero();
    size_t starts = 0;
    for (const auto& c : coeffs) {
      if (set.find((c * half).ToCanonical()) == set.end()) {
        start = c;
        starts++;
      }
    }
    if (starts != 1) {
      return false;
    }
    F cur = start;
    for (size_t i = 1; i < coeffs.size(); i++) {
      cur = cur.Double();
      if (set.find(cur.ToCanonical()) == set.end()) {
        return false;
      }
    }
    return true;
  }

  bool IsDetermined(uint32_t v) const {
    return v < determined_.size() && determined_[v];
  }

  void Determine(uint32_t v) {
    if (v >= determined_.size() || determined_[v]) {
      return;
    }
    determined_[v] = true;
    for (size_t j : occurrences_[v]) {
      if (!in_worklist_[j]) {
        in_worklist_[j] = true;
        worklist_.push_back(j);
      }
    }
    FirePatterns(v);
  }

  void FirePatterns(uint32_t v) {
    auto it = iszero_by_v_.find(v);
    if (it == iszero_by_v_.end()) {
      return;
    }
    for (const IsZeroPattern& p : it->second) {
      if (p.m < exempt_.size()) {
        exempt_[p.m] = true;
      }
      Determine(p.b);
    }
  }

  void ProcessEquation(size_t j) {
    const QuadEq<F>& eq = eqs_[j];
    if (eq.opaque) {
      return;
    }
    // Undetermined variables and how they occur in this equation.
    std::vector<uint32_t> undet;
    for (uint32_t v : VariablesOf(eq)) {
      if (!IsDetermined(v)) {
        undet.push_back(v);
      }
    }
    if (undet.empty()) {
      return;
    }
    auto in_quad = [&](uint32_t v) {
      for (const auto& t : eq.quad) {
        if (t.a == v || t.b == v) {
          return true;
        }
      }
      return false;
    };

    // R1: single unknown, linear-only occurrence.
    if (undet.size() == 1) {
      if (!in_quad(undet[0])) {
        Determine(undet[0]);
      }
      return;
    }

    // R2: every unknown is a boolean appearing linearly, with weights
    // forming a doubling chain (unique subset sums).
    bool all_bool_linear = true;
    for (uint32_t v : undet) {
      if (v >= boolean_.size() || !boolean_[v] || in_quad(v)) {
        all_bool_linear = false;
        break;
      }
    }
    if (all_bool_linear) {
      std::vector<F> coeffs;
      coeffs.reserve(undet.size());
      for (const auto& t : eq.linear.terms()) {
        if (!IsDetermined(t.first)) {
          coeffs.push_back(t.second);
        }
      }
      if (IsDoublingChain(coeffs)) {
        for (uint32_t v : undet) {
          Determine(v);
        }
      }
      return;
    }

    // R4: guarded division — dividend = q·d + r, both q and r pinned by
    // range decompositions elsewhere. (The r < d comparison guard is
    // assumed from the compiler gadget; see DESIGN.md §10.)
    if (undet.size() == 2) {
      TryDivisionPattern(eq, undet);
    }
  }

  void TryDivisionPattern(const QuadEq<F>& eq,
                          const std::vector<uint32_t>& undet) {
    // Each unknown must occur exactly once: either as one linear term (the
    // remainder, or the quotient when the divisor is a constant) or in one
    // degree-2 term whose partner is already determined (quotient times a
    // runtime divisor). Both must be pinned by range decompositions.
    for (uint32_t v : undet) {
      size_t linear_occ = 0;
      size_t quad_occ = 0;
      bool partner_ok = true;
      for (const auto& t : eq.linear.terms()) {
        if (t.first == v) {
          linear_occ++;
        }
      }
      for (const auto& t : eq.quad) {
        if (t.a == v || t.b == v) {
          quad_occ++;
          uint32_t partner = t.a == v ? t.b : t.a;
          partner_ok = partner != v && IsDetermined(partner);
        }
      }
      bool single_occurrence = (linear_occ == 1 && quad_occ == 0) ||
                               (linear_occ == 0 && quad_occ == 1 && partner_ok);
      if (!single_occurrence || v >= range_decomposed_.size() ||
          !range_decomposed_[v]) {
        return;
      }
    }
    for (uint32_t v : undet) {
      Determine(v);
    }
  }

  void Report(AnalysisReport* report) const {
    for (size_t v = 0; v < layout_.Total(); v++) {
      uint32_t vv = static_cast<uint32_t>(v);
      if (layout_.IsInput(vv)) {
        continue;
      }
      AnalysisLocation loc;
      loc.layer = layer_;
      loc.variable = static_cast<long>(v);
      if (occurrences_[v].empty()) {
        if (layout_.IsOutput(vv)) {
          report->Add(Severity::kError, kRuleUnderconstrained, loc,
                      "output variable appears in no constraint; any claimed "
                      "output value is accepted");
        } else {
          report->Add(Severity::kWarning, kRuleDeadVariable, loc,
                      "witness variable is allocated but appears in no "
                      "constraint");
        }
        continue;
      }
      if (!determined_[v] && !exempt_[v]) {
        size_t j = occurrences_[v].front();
        loc.constraint = eqs_[j].source_constraint;
        loc.source_line = eqs_[j].source_line;
        std::string role = layout_.IsOutput(vv) ? "output" : "witness";
        report->Add(Severity::kError, kRuleUnderconstrained, loc,
                    role + " variable is not uniquely determined from the "
                           "inputs by the constraint set");
      }
    }
  }

  std::vector<QuadEq<F>> eqs_;
  VariableLayout layout_;
  AnalysisLayer layer_;

  std::vector<char> determined_;
  std::vector<char> exempt_;
  std::vector<char> boolean_;
  std::vector<char> range_decomposed_;
  std::vector<std::vector<size_t>> occurrences_;
  std::map<uint32_t, std::vector<IsZeroPattern>> iszero_by_v_;
  std::deque<size_t> worklist_;
  std::vector<char> in_worklist_;
};

}  // namespace zaatar

#endif  // SRC_ANALYSIS_DETERMINISM_H_
