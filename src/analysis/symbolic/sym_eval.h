// Program-side symbolic evaluator: walks the zlang AST over symbolic inputs
// and reduces each output slot to a SymPoly normal form when the program
// stays inside the polynomial fragment of the language.
//
// The fragment: field arithmetic (+, -, *, unary -), compile-time-static
// control flow and indexing, bounded `for` loops, inlined function calls,
// boolean algebra (a·b, a+b-ab, 1-a, 1-a-b+2ab), muxes over conditions that
// themselves have polynomial form, and exact power-of-two fixed-point
// rescaling. Everything else — bit decompositions, comparisons on runtime
// values, floor division, square roots, runtime array indexing — is not a
// polynomial over the inputs; the affected value degrades to
// SymPoly::Invalid() and the equivalence decider falls back from algebraic
// comparison to randomized / differential testing (DESIGN.md §14).
//
// `guarded` is set whenever the program can reject an input at runtime (an
// assert not identically true, or a gadget with a precondition: floor
// division, bitwise on possibly-negative values, isqrt, dynamic fixed-point
// rounding). An algebraic-equality verdict is only an unconditional
// input/output theorem when the program is unguarded; otherwise it holds on
// the accepted domain and the decider caps the verdict accordingly.
//
// Static-value tracking deliberately replicates the compiler's rules
// (including the 2^62 clip) so arm selection for `if`/`?:` matches what was
// actually compiled.

#ifndef SRC_ANALYSIS_SYMBOLIC_SYM_EVAL_H_
#define SRC_ANALYSIS_SYMBOLIC_SYM_EVAL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "src/analysis/symbolic/sym_poly.h"
#include "src/compiler/ast.h"

namespace zaatar {

template <typename F>
struct SymEvalResult {
  // One entry per output slot, in slot order. Invalid entries mean "outside
  // the polynomial fragment"; the decider samples instead.
  std::vector<SymPoly<F>> outputs;
  bool guarded = false;
  // True when every output slot has a valid polynomial.
  bool AllValid() const {
    if (outputs.empty()) {
      return false;
    }
    for (const auto& p : outputs) {
      if (!p.valid()) {
        return false;
      }
    }
    return true;
  }
  // Degree bound over all outputs; invalid polynomials contribute the bound
  // accumulated through the operations that overflowed the term caps.
  size_t DegreeBound() const {
    size_t d = 1;
    for (const auto& p : outputs) {
      if (p.DegreeBound() > d) {
        d = p.DegreeBound();
      }
    }
    return d;
  }
};

template <typename F>
class SymEval {
 public:
  static SymEvalResult<F> Run(const ProgramAst& ast) {
    SymEval ev;
    SymEvalResult<F> result;
    try {
      ev.RunInternal(ast, &result);
    } catch (const std::exception&) {
      // Outside what the symbolic walker models (e.g. a loop bound whose
      // staticness we failed to mirror): degrade every output to Invalid.
      result.outputs.clear();
      result.guarded = true;
    }
    return result;
  }

  // Evaluates the program at a concrete field point (one element per input
  // slot) by rebinding the input symbols to constants — the program side of
  // a Schwartz–Zippel sample. Inputs stay "dynamic" for control-flow
  // purposes, so arm selection matches the compiled program. Returns one
  // value per output slot, or nullopt when some output passes through a
  // non-polynomial construct.
  static std::optional<std::vector<F>> RunAt(const ProgramAst& ast,
                                             const std::vector<F>& point) {
    SymEval ev;
    ev.point_ = &point;
    SymEvalResult<F> result;
    try {
      ev.RunInternal(ast, &result);
    } catch (const std::exception&) {
      return std::nullopt;
    }
    std::vector<F> values;
    values.reserve(result.outputs.size());
    for (const auto& p : result.outputs) {
      if (!p.valid() || !p.IsConstant()) {
        return std::nullopt;
      }
      values.push_back(p.ConstantValue());
    }
    return values;
  }

 private:
  struct Unsupported : std::runtime_error {
    Unsupported() : std::runtime_error("symbolic eval unsupported") {}
  };

  static constexpr int64_t kStaticClip = int64_t{1} << 62;

  struct SInt {
    SymPoly<F> poly;
    std::optional<int64_t> sv;  // mirrors the compiler's static value
  };
  struct SBool {
    SymPoly<F> poly;  // 0/1-valued when valid
    std::optional<bool> sv;
  };
  struct SRat {
    SymPoly<F> num;
    SymPoly<F> den;
    std::optional<int64_t> num_sv;
    std::optional<int64_t> den_sv;
  };
  struct SVal;
  struct SArr {
    std::vector<size_t> dims;
    std::vector<SVal> elems;
  };
  struct SVal {
    std::variant<SInt, SBool, SRat, SArr> v;
    SVal() : v(SInt{SymPoly<F>(), 0}) {}
    SVal(SInt x) : v(std::move(x)) {}        // NOLINT(runtime/explicit)
    SVal(SBool x) : v(std::move(x)) {}       // NOLINT(runtime/explicit)
    SVal(SRat x) : v(std::move(x)) {}        // NOLINT(runtime/explicit)
    SVal(SArr x) : v(std::move(x)) {}        // NOLINT(runtime/explicit)
    bool IsInt() const { return std::holds_alternative<SInt>(v); }
    bool IsBool() const { return std::holds_alternative<SBool>(v); }
    bool IsRat() const { return std::holds_alternative<SRat>(v); }
    bool IsArr() const { return std::holds_alternative<SArr>(v); }
    const SInt& AsInt() const { return std::get<SInt>(v); }
    const SBool& AsBool() const { return std::get<SBool>(v); }
    const SRat& AsRat() const { return std::get<SRat>(v); }
    const SArr& AsArr() const { return std::get<SArr>(v); }
    SArr& AsArr() { return std::get<SArr>(v); }
  };

  static SInt StaticInt(int64_t v) {
    return SInt{SymPoly<F>::Constant(F::FromInt(v)), ClipStatic(v)};
  }
  static std::optional<int64_t> ClipStatic(int64_t v) {
    if (v >= kStaticClip || v <= -kStaticClip) {
      return std::nullopt;
    }
    return v;
  }
  static SInt OpaqueInt() { return SInt{SymPoly<F>::Invalid(), std::nullopt}; }
  static SBool OpaqueBool() {
    return SBool{SymPoly<F>::Invalid(), std::nullopt};
  }

  void RunInternal(const ProgramAst& ast, SymEvalResult<F>* result) {
    for (const auto& f : ast.functions) {
      functions_.emplace(f.name, &f);
    }
    for (const auto& d : ast.decls) {
      Declare(d);
    }
    for (const auto& s : ast.body) {
      Exec(*s);
    }
    for (const auto& [name, type] : outputs_) {
      CollectScalars(env_.at(name), type, &result->outputs);
    }
    result->guarded = guarded_;
  }

  // ----- declarations -----

  void Declare(const Declaration& d) {
    if (d.kind == Declaration::Kind::kConstant) {
      env_[d.name] = Eval(*d.init);
      return;
    }
    TypeNode type = d.type;
    if (d.width_expr != nullptr) {
      type.width = static_cast<size_t>(EvalStaticInt(*d.width_expr));
    }
    if (d.den_width_expr != nullptr) {
      type.den_width = static_cast<size_t>(EvalStaticInt(*d.den_width_expr));
    }
    for (const auto& e : d.dim_exprs) {
      type.dims.push_back(static_cast<size_t>(EvalStaticInt(*e)));
    }
    switch (d.kind) {
      case Declaration::Kind::kInput:
        env_[d.name] = MakeInputValue(type);
        decl_types_[d.name] = type;
        break;
      case Declaration::Kind::kOutput:
        outputs_.push_back({d.name, type});
        env_[d.name] = DefaultValue(type);
        decl_types_[d.name] = type;
        break;
      case Declaration::Kind::kLocal:
        env_[d.name] = d.init != nullptr ? Coerce(Eval(*d.init), type)
                                         : DefaultValue(type);
        decl_types_[d.name] = type;
        break;
      case Declaration::Kind::kConstant:
        break;
    }
  }

  SVal MakeInputValue(const TypeNode& type) {
    if (!type.IsArray()) {
      return MakeScalarInput(type);
    }
    SArr arr;
    arr.dims = type.dims;
    size_t count = type.ElementCount();
    arr.elems.reserve(count);
    for (size_t i = 0; i < count; i++) {
      arr.elems.push_back(MakeScalarInput(type));
    }
    return SVal(std::move(arr));
  }

  SymPoly<F> InputSymbol() {
    uint32_t id = next_symbol_++;
    if (point_ != nullptr) {
      if (id >= point_->size()) {
        throw Unsupported();
      }
      return SymPoly<F>::Constant((*point_)[id]);
    }
    return SymPoly<F>::Symbol(id);
  }

  SVal MakeScalarInput(const TypeNode& type) {
    switch (type.kind) {
      case TypeNode::Kind::kInt:
        return SVal(SInt{InputSymbol(), std::nullopt});
      case TypeNode::Kind::kBool:
        return SVal(SBool{InputSymbol(), std::nullopt});
      case TypeNode::Kind::kRational: {
        SRat r;
        r.num = InputSymbol();
        r.den = InputSymbol();
        return SVal(std::move(r));
      }
    }
    throw Unsupported();
  }

  SVal DefaultValue(const TypeNode& type) {
    SVal scalar;
    switch (type.kind) {
      case TypeNode::Kind::kInt:
        scalar = SVal(StaticInt(0));
        break;
      case TypeNode::Kind::kBool:
        scalar = SVal(SBool{SymPoly<F>(), false});
        break;
      case TypeNode::Kind::kRational:
        scalar = SVal(SRat{SymPoly<F>(), SymPoly<F>::Constant(F::One()), 0, 1});
        break;
    }
    if (!type.IsArray()) {
      return scalar;
    }
    SArr arr;
    arr.dims = type.dims;
    arr.elems.assign(type.ElementCount(), scalar);
    return SVal(std::move(arr));
  }

  SVal Coerce(SVal v, const TypeNode& type) {
    if (type.kind == TypeNode::Kind::kRational && v.IsInt()) {
      return SVal(RatFromInt(v.AsInt()));
    }
    return v;
  }

  static SRat RatFromInt(const SInt& v) {
    return SRat{v.poly, SymPoly<F>::Constant(F::One()), v.sv, 1};
  }

  // ----- statements -----

  void Exec(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kBlock:
        for (const auto& child : s.body) {
          Exec(*child);
        }
        break;
      case Stmt::Kind::kAssign:
        ExecAssign(s);
        break;
      case Stmt::Kind::kIf:
        ExecIf(s);
        break;
      case Stmt::Kind::kFor:
        ExecFor(s);
        break;
      case Stmt::Kind::kAssert: {
        SBool cond = Eval(*s.value).AsBool();
        bool identically_true =
            (cond.sv.has_value() && *cond.sv) ||
            (cond.poly.valid() && cond.poly.IsConstant() &&
             cond.poly.ConstantValue() == F::One());
        if (!identically_true) {
          guarded_ = true;  // the compiled assert can reject inputs
        }
        break;
      }
      case Stmt::Kind::kVarDecl:
        env_.erase(s.decl->name);
        decl_types_.erase(s.decl->name);
        Declare(*s.decl);
        RecordWrite(s.decl->name);
        break;
      case Stmt::Kind::kReturn:
        return_value_ = Eval(*s.value);
        break;
    }
  }

  void ExecAssign(const Stmt& s) {
    RecordWrite(s.name);
    SVal rhs = CoerceAssign(s.name, Eval(*s.value));
    auto it = env_.find(s.name);
    if (it == env_.end()) {
      throw Unsupported();
    }
    if (s.indices.empty()) {
      it->second = std::move(rhs);
      return;
    }
    SArr& arr = it->second.AsArr();
    SInt index = LinearIndex(arr, s.indices);
    if (index.sv.has_value()) {
      size_t off = static_cast<size_t>(*index.sv);
      if (off >= arr.elems.size()) {
        throw Unsupported();
      }
      arr.elems[off] = std::move(rhs);
      return;
    }
    // Runtime-index write: each slot is muxed on an IsZero selector, which
    // is outside the polynomial fragment.
    for (auto& elem : arr.elems) {
      elem = MuxVal(OpaqueBool(), rhs, elem);
    }
  }

  void ExecIf(const Stmt& s) {
    SBool cond = Eval(*s.value).AsBool();
    if (cond.sv.has_value()) {
      const auto& arm = *cond.sv ? s.body : s.else_body;
      for (const auto& child : arm) {
        Exec(*child);
      }
      return;
    }
    std::map<std::string, SVal> before = env_;
    write_logs_.emplace_back();
    for (const auto& child : s.body) {
      Exec(*child);
    }
    std::set<std::string> then_writes = std::move(write_logs_.back());
    write_logs_.pop_back();
    std::map<std::string, SVal> then_env = std::move(env_);

    env_ = before;
    write_logs_.emplace_back();
    for (const auto& child : s.else_body) {
      Exec(*child);
    }
    std::set<std::string> else_writes = std::move(write_logs_.back());
    write_logs_.pop_back();

    std::set<std::string> written = then_writes;
    written.insert(else_writes.begin(), else_writes.end());
    for (const auto& name : written) {
      RecordWrite(name);
      env_[name] = MuxVal(cond, then_env.at(name), env_.at(name));
    }
  }

  void ExecFor(const Stmt& s) {
    int64_t lo = EvalStaticInt(*s.lo);
    int64_t hi = EvalStaticInt(*s.hi);
    bool had_shadow = env_.count(s.name) != 0;
    SVal shadow;
    if (had_shadow) {
      shadow = env_.at(s.name);
    }
    for (int64_t k = lo; k <= hi; k++) {
      env_[s.name] = SVal(StaticInt(k));
      for (const auto& child : s.body) {
        Exec(*child);
      }
    }
    if (had_shadow) {
      env_[s.name] = shadow;
    } else {
      env_.erase(s.name);
    }
  }

  void RecordWrite(const std::string& name) {
    for (auto& log : write_logs_) {
      log.insert(name);
    }
  }

  SVal CoerceAssign(const std::string& name, SVal rhs) {
    auto dt = decl_types_.find(name);
    if (dt == decl_types_.end() ||
        dt->second.kind != TypeNode::Kind::kRational) {
      return rhs;
    }
    size_t q = dt->second.den_width;
    if (rhs.IsArr()) {
      SArr arr = rhs.AsArr();
      for (auto& elem : arr.elems) {
        elem = SVal(FixRational(ToRat(elem), q));
      }
      return SVal(std::move(arr));
    }
    return SVal(FixRational(ToRat(rhs), q));
  }

  // Exact power-of-two rescale stays polynomial; every other FixRational
  // path runs a bit-decomposition or DivFloor gadget.
  SRat FixRational(const SRat& x, size_t q) {
    SRat out;
    out.den = SymPoly<F>::Constant(F::FromInt(int64_t{1} << q));
    out.den_sv = int64_t{1} << q;
    bool static_pow2 = x.den_sv.has_value() && *x.den_sv > 0 &&
                       (*x.den_sv & (*x.den_sv - 1)) == 0;
    if (static_pow2) {
      size_t e = 0;
      while ((int64_t{1} << e) < *x.den_sv) {
        e++;
      }
      if (e <= q) {
        int64_t scale = int64_t{1} << (q - e);
        out.num = x.num * F::FromInt(scale);
        out.num_sv = std::nullopt;
        if (x.num_sv.has_value()) {
          __int128 v = static_cast<__int128>(*x.num_sv) * scale;
          if (v < kStaticClip && v > -kStaticClip) {
            out.num_sv = static_cast<int64_t>(v);
          }
        }
        return out;
      }
      // Static down-shift uses a bit decomposition (cannot reject, but not
      // polynomial).
      out.num = SymPoly<F>::Invalid();
      return out;
    }
    guarded_ = true;  // DivFloor gadget: rejects non-positive denominators
    out.num = SymPoly<F>::Invalid();
    return out;
  }

  // ----- expressions -----

  SVal Eval(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kIntLit:
        return SVal(StaticInt(e.int_value));
      case Expr::Kind::kBoolLit:
        return SVal(SBool{e.int_value != 0 ? SymPoly<F>::Constant(F::One())
                                           : SymPoly<F>(),
                          e.int_value != 0});
      case Expr::Kind::kVarRef: {
        auto it = env_.find(e.name);
        if (it == env_.end()) {
          throw Unsupported();
        }
        return it->second;
      }
      case Expr::Kind::kIndex:
        return EvalIndex(e);
      case Expr::Kind::kBinary:
        return EvalBinary(e);
      case Expr::Kind::kUnary: {
        SVal a = Eval(*e.children[0]);
        if (e.op == TokenKind::kMinus) {
          return Negate(a);
        }
        const SBool& x = a.AsBool();
        SBool r;
        r.poly = SymPoly<F>::Constant(F::One()) - x.poly;
        if (x.sv.has_value()) {
          r.sv = !*x.sv;
        }
        return SVal(std::move(r));
      }
      case Expr::Kind::kTernary: {
        SBool cond = Eval(*e.children[0]).AsBool();
        if (cond.sv.has_value()) {
          return Eval(*cond.sv ? *e.children[1] : *e.children[2]);
        }
        SVal a = Eval(*e.children[1]);
        SVal b = Eval(*e.children[2]);
        return MuxVal(cond, a, b);
      }
      case Expr::Kind::kCall:
        return EvalCall(e);
    }
    throw Unsupported();
  }

  int64_t EvalStaticInt(const Expr& e) {
    SVal v = Eval(e);
    if (!v.IsInt() || !v.AsInt().sv.has_value()) {
      throw Unsupported();
    }
    return *v.AsInt().sv;
  }

  SVal EvalCall(const Expr& e) {
    if (e.name == "min" || e.name == "max") {
      SVal a = Eval(*e.children[0]);
      SVal b = Eval(*e.children[1]);
      SBool a_less = Less(a, b);
      return e.name == "min" ? MuxVal(a_less, a, b) : MuxVal(a_less, b, a);
    }
    if (e.name == "abs") {
      SVal a = Eval(*e.children[0]);
      SBool is_neg = Less(a, SVal(StaticInt(0)));
      return MuxVal(is_neg, Negate(a), a);
    }
    if (e.name == "idiv" || e.name == "imod") {
      SInt a = Eval(*e.children[0]).AsInt();
      SInt b = Eval(*e.children[1]).AsInt();
      if (a.sv.has_value() && b.sv.has_value() && *b.sv > 0) {
        int64_t q = *a.sv / *b.sv;
        if ((*a.sv % *b.sv) != 0 && *a.sv < 0) {
          q--;
        }
        int64_t r = *a.sv - q * *b.sv;
        return SVal(StaticInt(e.name == "idiv" ? q : r));
      }
      guarded_ = true;  // DivFloor gadget precondition
      return SVal(OpaqueInt());
    }
    if (e.name == "isqrt") {
      SInt a = Eval(*e.children[0]).AsInt();
      if (a.sv.has_value() && *a.sv >= 0) {
        int64_t s = 0;
        for (int bit = 31; bit >= 0; bit--) {
          int64_t cand = s + (int64_t{1} << bit);
          if (cand <= (int64_t{1} << 31) && cand * cand <= *a.sv) {
            s = cand;
          }
        }
        return SVal(StaticInt(s));
      }
      guarded_ = true;
      return SVal(OpaqueInt());
    }
    auto fn = functions_.find(e.name);
    if (fn == functions_.end() || call_depth_ >= 64) {
      throw Unsupported();
    }
    const FunctionDecl& f = *fn->second;
    std::vector<SVal> args;
    for (size_t i = 0; i < f.params.size(); i++) {
      args.push_back(Eval(*e.children[i]));
    }
    std::map<std::string, SVal> saved_env = env_;
    auto saved_decl_types = decl_types_;
    for (size_t i = 0; i < f.params.size(); i++) {
      SVal v = args[i];
      if (f.params[i].type.kind == TypeNode::Kind::kRational && v.IsInt()) {
        v = SVal(RatFromInt(v.AsInt()));
      }
      env_[f.params[i].name] = std::move(v);
      decl_types_.erase(f.params[i].name);
    }
    call_depth_++;
    return_value_.reset();
    for (const auto& s : f.body) {
      Exec(*s);
    }
    call_depth_--;
    if (!return_value_.has_value()) {
      throw Unsupported();
    }
    SVal result = std::move(*return_value_);
    return_value_.reset();
    env_ = std::move(saved_env);
    decl_types_ = std::move(saved_decl_types);
    return result;
  }

  SVal EvalIndex(const Expr& e) {
    const Expr& base = *e.children[0];
    auto it = env_.find(base.name);
    if (it == env_.end() || !it->second.IsArr()) {
      throw Unsupported();
    }
    const SArr& arr = it->second.AsArr();
    SInt idx = StaticInt(0);
    for (size_t k = 0; k < arr.dims.size(); k++) {
      SVal v = Eval(*e.children[1 + k]);
      idx = IntMul(idx, StaticInt(static_cast<int64_t>(arr.dims[k])));
      idx = IntAdd(idx, v.AsInt(), false);
    }
    if (idx.sv.has_value()) {
      size_t off = static_cast<size_t>(*idx.sv);
      if (*idx.sv < 0 || off >= arr.elems.size()) {
        throw Unsupported();
      }
      return arr.elems[off];
    }
    // Runtime read: IsZero selectors, outside the fragment.
    return OpaqueLike(arr.elems[0]);
  }

  SInt LinearIndex(const SArr& arr, const std::vector<ExprPtr>& indices) {
    SInt idx = StaticInt(0);
    for (size_t k = 0; k < arr.dims.size(); k++) {
      SVal v = Eval(*indices[k]);
      idx = IntMul(idx, StaticInt(static_cast<int64_t>(arr.dims[k])));
      idx = IntAdd(idx, v.AsInt(), false);
    }
    return idx;
  }

  static SVal OpaqueLike(const SVal& v) {
    if (v.IsBool()) {
      return SVal(OpaqueBool());
    }
    if (v.IsRat()) {
      return SVal(SRat{SymPoly<F>::Invalid(), SymPoly<F>::Invalid(),
                       std::nullopt, std::nullopt});
    }
    return SVal(OpaqueInt());
  }

  // ----- integer / boolean algebra -----

  static SInt IntAdd(const SInt& a, const SInt& b, bool subtract) {
    SInt r;
    r.poly = subtract ? a.poly - b.poly : a.poly + b.poly;
    if (a.sv.has_value() && b.sv.has_value()) {
      __int128 v = static_cast<__int128>(*a.sv) +
                   (subtract ? -static_cast<__int128>(*b.sv)
                             : static_cast<__int128>(*b.sv));
      if (v < kStaticClip && v > -kStaticClip) {
        r.sv = static_cast<int64_t>(v);
      }
    }
    return r;
  }

  static SInt IntMul(const SInt& a, const SInt& b) {
    SInt r;
    r.poly = a.poly * b.poly;
    if (a.sv.has_value() && b.sv.has_value()) {
      __int128 v = static_cast<__int128>(*a.sv) * *b.sv;
      if (v < kStaticClip && v > -kStaticClip) {
        r.sv = static_cast<int64_t>(v);
      }
    }
    return r;
  }

  SVal Negate(const SVal& a) {
    if (a.IsInt()) {
      SInt r;
      r.poly = a.AsInt().poly * (-F::One());
      if (a.AsInt().sv.has_value()) {
        r.sv = -*a.AsInt().sv;  // no clip, mirroring IntNeg
      }
      return SVal(std::move(r));
    }
    SRat r = a.AsRat();
    r.num = r.num * (-F::One());
    if (r.num_sv.has_value()) {
      r.num_sv = -*r.num_sv;
    }
    return SVal(std::move(r));
  }

  SRat ToRat(const SVal& v) const {
    if (v.IsRat()) {
      return v.AsRat();
    }
    if (v.IsInt()) {
      return RatFromInt(v.AsInt());
    }
    throw Unsupported();
  }

  // Comparisons compile to decomposition gadgets: only the compile-time
  // static path (and the difference-is-constant == shortcut) survive
  // symbolically.
  SBool Less(const SVal& a, const SVal& b) {
    std::optional<int64_t> av, bv;
    if (a.IsInt() && b.IsInt()) {
      av = a.AsInt().sv;
      bv = b.AsInt().sv;
    } else {
      SRat ra = ToRat(a), rb = ToRat(b);
      SInt l = IntMul(SInt{ra.num, ra.num_sv}, SInt{rb.den, rb.den_sv});
      SInt r = IntMul(SInt{rb.num, rb.num_sv}, SInt{ra.den, ra.den_sv});
      av = l.sv;
      bv = r.sv;
    }
    if (av.has_value() && bv.has_value()) {
      bool v = *av < *bv;
      return SBool{v ? SymPoly<F>::Constant(F::One()) : SymPoly<F>(), v};
    }
    return OpaqueBool();
  }

  SBool Eq(const SVal& a, const SVal& b) {
    if (a.IsBool() && b.IsBool()) {
      const SBool& x = a.AsBool();
      const SBool& y = b.AsBool();
      SBool r;
      // 1 - a - b + 2ab
      r.poly = SymPoly<F>::Constant(F::One()) - x.poly - y.poly +
               x.poly * y.poly * F::FromInt(2);
      if (x.sv.has_value() && y.sv.has_value()) {
        r.sv = *x.sv == *y.sv;
      }
      return r;
    }
    SymPoly<F> diff;
    std::optional<bool> sv;
    if (a.IsInt() && b.IsInt()) {
      diff = a.AsInt().poly - b.AsInt().poly;
      if (a.AsInt().sv.has_value() && b.AsInt().sv.has_value()) {
        sv = *a.AsInt().sv == *b.AsInt().sv;
      }
    } else {
      SRat ra = ToRat(a), rb = ToRat(b);
      SInt l = IntMul(SInt{ra.num, ra.num_sv}, SInt{rb.den, rb.den_sv});
      SInt r = IntMul(SInt{rb.num, rb.num_sv}, SInt{ra.den, ra.den_sv});
      diff = l.poly - r.poly;
      if (l.sv.has_value() && r.sv.has_value()) {
        sv = *l.sv == *r.sv;
      }
    }
    // Mirror the compiler's LC-constant shortcut: when the difference is a
    // compile-time constant the result is static (e.g. `x == x`).
    if (diff.valid() && diff.IsConstant()) {
      bool v = diff.IsZero();
      return SBool{v ? SymPoly<F>::Constant(F::One()) : SymPoly<F>(), v};
    }
    if (sv.has_value()) {
      return SBool{*sv ? SymPoly<F>::Constant(F::One()) : SymPoly<F>(), sv};
    }
    return OpaqueBool();
  }

  SVal MuxVal(const SBool& c, const SVal& a, const SVal& b) {
    if (c.sv.has_value()) {
      return *c.sv ? a : b;
    }
    if (a.IsArr() || b.IsArr()) {
      const SArr& aa = a.AsArr();
      const SArr& bb = b.AsArr();
      SArr out;
      out.dims = aa.dims;
      out.elems.reserve(aa.elems.size());
      for (size_t i = 0; i < aa.elems.size(); i++) {
        out.elems.push_back(MuxVal(c, aa.elems[i], bb.elems[i]));
      }
      return SVal(std::move(out));
    }
    // mux(c, a, b) = b + c·(a - b); degrades to Invalid when the condition
    // has no polynomial form and the arms differ.
    auto mux_poly = [&](const SymPoly<F>& pa, const SymPoly<F>& pb) {
      if (pa.valid() && pb.valid() && pa == pb) {
        return pa;  // same either way: condition form irrelevant
      }
      return pb + c.poly * (pa - pb);
    };
    if (a.IsBool() && b.IsBool()) {
      return SVal(SBool{mux_poly(a.AsBool().poly, b.AsBool().poly),
                        std::nullopt});
    }
    if (a.IsInt() && b.IsInt()) {
      return SVal(
          SInt{mux_poly(a.AsInt().poly, b.AsInt().poly), std::nullopt});
    }
    SRat ra = ToRat(a), rb = ToRat(b);
    return SVal(SRat{mux_poly(ra.num, rb.num), mux_poly(ra.den, rb.den),
                     std::nullopt, std::nullopt});
  }

  SVal EvalBinary(const Expr& e) {
    SVal a = Eval(*e.children[0]);
    SVal b = Eval(*e.children[1]);
    switch (e.op) {
      case TokenKind::kPlus:
      case TokenKind::kMinus: {
        bool sub = e.op == TokenKind::kMinus;
        if (a.IsInt() && b.IsInt()) {
          return SVal(IntAdd(a.AsInt(), b.AsInt(), sub));
        }
        SRat ra = ToRat(a), rb = ToRat(b);
        SInt n1d2 = IntMul(SInt{ra.num, ra.num_sv}, SInt{rb.den, rb.den_sv});
        SInt n2d1 = IntMul(SInt{rb.num, rb.num_sv}, SInt{ra.den, ra.den_sv});
        SInt num = IntAdd(n1d2, n2d1, sub);
        SInt den = IntMul(SInt{ra.den, ra.den_sv}, SInt{rb.den, rb.den_sv});
        return SVal(SRat{num.poly, den.poly, num.sv, den.sv});
      }
      case TokenKind::kStar: {
        if (a.IsInt() && b.IsInt()) {
          return SVal(IntMul(a.AsInt(), b.AsInt()));
        }
        SRat ra = ToRat(a), rb = ToRat(b);
        SInt num = IntMul(SInt{ra.num, ra.num_sv}, SInt{rb.num, rb.num_sv});
        SInt den = IntMul(SInt{ra.den, ra.den_sv}, SInt{rb.den, rb.den_sv});
        return SVal(SRat{num.poly, den.poly, num.sv, den.sv});
      }
      case TokenKind::kSlash: {
        if (a.IsInt() && b.IsInt() && a.AsInt().sv.has_value() &&
            b.AsInt().sv.has_value()) {
          if (*b.AsInt().sv == 0) {
            throw Unsupported();
          }
          return SVal(StaticInt(*a.AsInt().sv / *b.AsInt().sv));
        }
        SRat r = ToRat(a);
        const SInt& k = b.AsInt();
        SInt den = IntMul(SInt{r.den, r.den_sv}, k);
        return SVal(SRat{r.num, den.poly, r.num_sv, den.sv});
      }
      case TokenKind::kPercent: {
        if (!a.AsInt().sv.has_value() || !b.AsInt().sv.has_value()) {
          throw Unsupported();
        }
        return SVal(StaticInt(*a.AsInt().sv % *b.AsInt().sv));
      }
      case TokenKind::kLess:
        return SVal(Less(a, b));
      case TokenKind::kGreater:
        return SVal(Less(b, a));
      case TokenKind::kLessEq:
        return SVal(NotBool(Less(b, a)));
      case TokenKind::kGreaterEq:
        return SVal(NotBool(Less(a, b)));
      case TokenKind::kEqEq:
        return SVal(Eq(a, b));
      case TokenKind::kNotEq:
        return SVal(NotBool(Eq(a, b)));
      case TokenKind::kAndAnd: {
        const SBool& x = a.AsBool();
        const SBool& y = b.AsBool();
        if (x.sv.has_value()) {
          return *x.sv ? SVal(y) : SVal(SBool{SymPoly<F>(), false});
        }
        if (y.sv.has_value()) {
          return *y.sv ? SVal(x) : SVal(SBool{SymPoly<F>(), false});
        }
        return SVal(SBool{x.poly * y.poly, std::nullopt});
      }
      case TokenKind::kOrOr: {
        const SBool& x = a.AsBool();
        const SBool& y = b.AsBool();
        if (x.sv.has_value()) {
          return *x.sv ? SVal(SBool{SymPoly<F>::Constant(F::One()), true})
                       : SVal(y);
        }
        if (y.sv.has_value()) {
          return *y.sv ? SVal(SBool{SymPoly<F>::Constant(F::One()), true})
                       : SVal(x);
        }
        return SVal(SBool{x.poly + y.poly - x.poly * y.poly, std::nullopt});
      }
      case TokenKind::kAmp:
      case TokenKind::kPipe:
      case TokenKind::kCaret: {
        const SInt& x = a.AsInt();
        const SInt& y = b.AsInt();
        if (x.sv.has_value() && y.sv.has_value() && *x.sv >= 0 &&
            *y.sv >= 0) {
          int64_t r = e.op == TokenKind::kAmp    ? (*x.sv & *y.sv)
                      : e.op == TokenKind::kPipe ? (*x.sv | *y.sv)
                                                 : (*x.sv ^ *y.sv);
          return SVal(StaticInt(r));
        }
        guarded_ = true;  // decomposition gadgets reject negatives
        return SVal(OpaqueInt());
      }
      case TokenKind::kShl:
      case TokenKind::kShr: {
        const SInt& x = a.AsInt();
        if (!b.AsInt().sv.has_value()) {
          throw Unsupported();
        }
        size_t k = static_cast<size_t>(*b.AsInt().sv);
        if (e.op == TokenKind::kShl) {
          if (k >= 62) {
            throw Unsupported();
          }
          return SVal(IntMul(x, StaticInt(int64_t{1} << k)));
        }
        if (x.sv.has_value()) {
          int64_t v = *x.sv >> (k >= 63 ? 63 : k);
          return SVal(StaticInt(v));
        }
        return SVal(OpaqueInt());  // dynamic >> runs a bit decomposition
      }
      default:
        throw Unsupported();
    }
  }

  static SBool NotBool(const SBool& x) {
    SBool r;
    r.poly = SymPoly<F>::Constant(F::One()) - x.poly;
    if (x.sv.has_value()) {
      r.sv = !*x.sv;
    }
    return r;
  }

  void CollectScalars(const SVal& v, const TypeNode& type,
                      std::vector<SymPoly<F>>* out) {
    if (v.IsArr()) {
      for (const auto& elem : v.AsArr().elems) {
        CollectScalars(elem, type, out);
      }
      return;
    }
    switch (type.kind) {
      case TypeNode::Kind::kInt:
        out->push_back(v.AsInt().poly);
        break;
      case TypeNode::Kind::kBool:
        out->push_back(v.AsBool().poly);
        break;
      case TypeNode::Kind::kRational: {
        SRat r = ToRat(v);
        out->push_back(r.num);
        out->push_back(r.den);
        break;
      }
    }
  }

  std::map<std::string, SVal> env_;
  std::map<std::string, TypeNode> decl_types_;
  std::map<std::string, const FunctionDecl*> functions_;
  std::vector<std::pair<std::string, TypeNode>> outputs_;
  std::vector<std::set<std::string>> write_logs_;
  std::optional<SVal> return_value_;
  size_t call_depth_ = 0;
  uint32_t next_symbol_ = 0;
  bool guarded_ = false;
  const std::vector<F>* point_ = nullptr;  // set in RunAt mode
};

}  // namespace zaatar

#endif  // SRC_ANALYSIS_SYMBOLIC_SYM_EVAL_H_
