// The equivalence decider (DESIGN.md §14): per compiled program, decide
// whether the constraint system accepts exactly the input/output relation the
// zlang source computes, and report the strongest verdict the engine can
// justify:
//
//   kEquivalentAlgebraic      both sides reduce to the same polynomial
//                             normal form, the program is total, no residual
//                             domain guards, witness uniqueness proven —
//                             an unconditional theorem.
//   kEquivalentSchwartzZippel both sides evaluate identically at k random
//                             field points; for degree-d maps over F the
//                             miss probability is <= (d/|F|)^k.
//   kEquivalentExhaustive     every input in the declared (small) domain
//                             was enumerated and agrees, including rejects.
//   kConsistent               witness uniqueness proven by the determinism
//                             fixpoint and all differential samples agree —
//                             no proof over the full domain (the program
//                             leaves the polynomial fragment).
//   kMismatch                 a concrete input separates the program from
//                             the constraints (ZL021), attached.
//   kUnderconstrained         a second satisfying witness exists for the
//                             same inputs (ZL022), witness pair attached.
//   kUnknown                  none of the above could be established
//                             (ZL023).

#ifndef SRC_ANALYSIS_SYMBOLIC_EQUIVALENCE_H_
#define SRC_ANALYSIS_SYMBOLIC_EQUIVALENCE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/determinism.h"
#include "src/analysis/rules.h"
#include "src/analysis/symbolic/native_interp.h"
#include "src/analysis/symbolic/second_witness.h"
#include "src/analysis/symbolic/sym_eval.h"
#include "src/analysis/symbolic/sym_solver.h"
#include "src/compiler/compile.h"
#include "src/crypto/prg.h"

namespace zaatar {

enum class EquivStatus {
  kEquivalentAlgebraic,
  kEquivalentSchwartzZippel,
  kEquivalentExhaustive,
  kConsistent,
  kMismatch,
  kUnderconstrained,
  kUnknown,
};

inline const char* EquivStatusName(EquivStatus s) {
  switch (s) {
    case EquivStatus::kEquivalentAlgebraic:
      return "equivalent (algebraic)";
    case EquivStatus::kEquivalentSchwartzZippel:
      return "equivalent (Schwartz-Zippel)";
    case EquivStatus::kEquivalentExhaustive:
      return "equivalent (exhaustive)";
    case EquivStatus::kConsistent:
      return "consistent (unique witness, samples agree)";
    case EquivStatus::kMismatch:
      return "MISMATCH";
    case EquivStatus::kUnderconstrained:
      return "UNDERCONSTRAINED";
    case EquivStatus::kUnknown:
      return "unknown";
  }
  return "unknown";
}

inline bool EquivStatusIsProof(EquivStatus s) {
  return s == EquivStatus::kEquivalentAlgebraic ||
         s == EquivStatus::kEquivalentSchwartzZippel ||
         s == EquivStatus::kEquivalentExhaustive ||
         s == EquivStatus::kConsistent;
}

struct EquivOptions {
  uint64_t seed = 0x5eed;
  size_t num_samples = 48;       // differential typed samples
  size_t exhaustive_cap = 4096;  // max total domain size to enumerate
  size_t mismatch_search = 256;  // sampling budget to concretize a mismatch
  size_t magnitude_bits = 8;     // typed-sample magnitude
};

struct EquivResult {
  EquivStatus status = EquivStatus::kUnknown;
  std::string detail;  // human-readable justification
  // Separating input for kMismatch / replay input for kUnderconstrained:
  // one signed value per input slot.
  std::vector<int64_t> counterexample;
  std::string note;
  uint32_t source_line = 0;
  bool unique_witness = false;  // proven by the determinism fixpoint
};

namespace symbolic_internal {

template <typename F>
F EncodeInt128(__int128 v) {
  bool neg = v < 0;
  unsigned __int128 m = neg ? -static_cast<unsigned __int128>(v)
                            : static_cast<unsigned __int128>(v);
  F two64 = F::FromUint(uint64_t{1} << 32);
  two64 = two64 * two64;
  F r = F::FromUint(static_cast<uint64_t>(m >> 64)) * two64 +
        F::FromUint(static_cast<uint64_t>(m));
  return neg ? F::Zero() - r : r;
}

// One differential probe: native interpreter vs. compiled witness solver
// plus satisfiability of both constraint encodings.
template <typename F>
struct ProbeOutcome {
  enum class Kind { kAgree, kDiverge, kSkip } kind = Kind::kSkip;
  std::string note;
};

template <typename F>
ProbeOutcome<F> Probe(const CompiledProgram<F>& prog, NativeInterp* native,
                      const std::vector<int64_t>& inputs) {
  ProbeOutcome<F> out;
  NativeResult nat = native->Run(inputs);
  if (nat.status == NativeResult::Status::kUnsupported) {
    return out;  // kSkip
  }
  bool native_accepts = nat.status == NativeResult::Status::kOk;

  std::vector<F> encoded;
  encoded.reserve(inputs.size());
  for (int64_t v : inputs) {
    encoded.push_back(EncodeSignedInt<F>(v));
  }
  bool constraint_accepts = true;
  std::vector<F> w;
  std::string why;
  try {
    w = prog.SolveGinger(encoded);
    if (!prog.ginger.IsSatisfied(w)) {
      constraint_accepts = false;
      why = "solved witness violates the Ginger constraints";
    } else if (!prog.zaatar.r1cs.IsSatisfied(prog.zaatar.ExtendAssignment(w))) {
      constraint_accepts = false;
      why = "extended witness violates the Zaatar R1CS";
    }
  } catch (const std::exception& e) {
    constraint_accepts = false;
    why = std::string("witness solver rejected: ") + e.what();
  }

  if (native_accepts != constraint_accepts) {
    out.kind = ProbeOutcome<F>::Kind::kDiverge;
    out.note = native_accepts
                   ? (why.empty() ? "constraints reject, program accepts"
                                  : why + "; program accepts")
                   : "constraints accept, program rejects (" + nat.detail +
                         ")";
    return out;
  }
  if (!native_accepts) {
    out.kind = ProbeOutcome<F>::Kind::kAgree;
    return out;
  }
  size_t first_out = prog.ginger.layout.FirstOutput();
  for (size_t i = 0; i < prog.ginger.layout.num_outputs; i++) {
    F want = EncodeInt128<F>(nat.outputs[i]);
    if (!(w[first_out + i] == want)) {
      out.kind = ProbeOutcome<F>::Kind::kDiverge;
      out.note = "output slot " + std::to_string(i) +
                 " differs from the source program";
      return out;
    }
  }
  out.kind = ProbeOutcome<F>::Kind::kAgree;
  return out;
}

// Greedy shrink: try to replace each slot with simpler values while the
// divergence persists.
template <typename F>
std::vector<int64_t> ShrinkCounterexample(const CompiledProgram<F>& prog,
                                          NativeInterp* native,
                                          std::vector<int64_t> inputs) {
  bool changed = true;
  size_t rounds = 0;
  while (changed && rounds++ < 16) {
    changed = false;
    for (size_t i = 0; i < inputs.size(); i++) {
      int64_t orig = inputs[i];
      int64_t candidates[] = {0, 1, orig / 2, orig > 0 ? orig - 1 : orig + 1};
      for (int64_t c : candidates) {
        if (c == orig) {
          continue;
        }
        inputs[i] = c;
        if (Probe(prog, native, inputs).kind ==
            ProbeOutcome<F>::Kind::kDiverge) {
          changed = true;
          break;  // keep the simpler value
        }
        inputs[i] = orig;
      }
    }
  }
  return inputs;
}

// Source line to blame for a divergence at `inputs`: the first violated
// constraint with an attributed line, else the first attributed constraint
// referencing a mismatched output variable.
template <typename F>
uint32_t BlameLine(const CompiledProgram<F>& prog, NativeInterp* native,
                   const std::vector<int64_t>& inputs) {
  std::vector<F> encoded;
  for (int64_t v : inputs) {
    encoded.push_back(EncodeSignedInt<F>(v));
  }
  std::vector<F> w;
  try {
    w = prog.SolveGinger(encoded);
  } catch (const std::exception&) {
    return 0;  // the solver itself rejected; no single constraint to blame
  }
  auto eqs = LowerToIr(prog.ginger);
  for (const auto& eq : eqs) {
    if (!eq.opaque && !EvalQuadEq(eq, w).IsZero() && eq.source_line != 0) {
      return eq.source_line;
    }
  }
  NativeResult nat = native->Run(inputs);
  if (nat.status == NativeResult::Status::kOk) {
    size_t first_out = prog.ginger.layout.FirstOutput();
    for (size_t i = 0; i < prog.ginger.layout.num_outputs; i++) {
      if (!(w[first_out + i] == EncodeInt128<F>(nat.outputs[i]))) {
        uint32_t var = static_cast<uint32_t>(first_out + i);
        for (const auto& eq : eqs) {
          if (eq.source_line == 0 || eq.opaque) {
            continue;
          }
          bool touches = false;
          for (const auto& [v, c] : eq.linear.terms()) {
            touches |= v == var;
          }
          for (const auto& q : eq.quad) {
            touches |= q.a == var || q.b == var;
          }
          if (touches) {
            return eq.source_line;
          }
        }
        break;
      }
    }
  }
  return 0;
}

// Enumerates the full typed input domain when it is small enough.
// Returns nullopt when the domain exceeds `cap`.
inline std::optional<std::vector<std::vector<int64_t>>> EnumerateDomain(
    const std::vector<IoSlotSpec>& slots, size_t cap) {
  std::vector<std::vector<int64_t>> per_slot;
  size_t total = 1;
  for (const auto& s : slots) {
    std::vector<int64_t> vals;
    switch (s.kind) {
      case IoSlotSpec::Kind::kBool:
        vals = {0, 1};
        break;
      case IoSlotSpec::Kind::kInt:
      case IoSlotSpec::Kind::kRatNum: {
        if (s.width > 12) {
          return std::nullopt;
        }
        int64_t hi = (int64_t{1} << s.width) - 1;
        for (int64_t v = -hi; v <= hi; v++) {
          vals.push_back(v);
        }
        break;
      }
      case IoSlotSpec::Kind::kRatDen: {
        if (s.width > 12) {
          return std::nullopt;
        }
        int64_t hi = (int64_t{1} << s.width) - 1;
        for (int64_t v = 1; v <= hi; v++) {
          vals.push_back(v);
        }
        break;
      }
    }
    if (vals.empty()) {
      return std::nullopt;
    }
    if (total > cap / vals.size()) {
      return std::nullopt;
    }
    total *= vals.size();
    per_slot.push_back(std::move(vals));
  }
  std::vector<std::vector<int64_t>> points;
  points.reserve(total);
  std::vector<size_t> odo(per_slot.size(), 0);
  for (;;) {
    std::vector<int64_t> point(per_slot.size());
    for (size_t i = 0; i < per_slot.size(); i++) {
      point[i] = per_slot[i][odo[i]];
    }
    points.push_back(std::move(point));
    size_t i = 0;
    while (i < per_slot.size() && ++odo[i] == per_slot[i].size()) {
      odo[i++] = 0;
    }
    if (i == per_slot.size()) {
      break;
    }
  }
  return points;
}

}  // namespace symbolic_internal

// Proves (or refutes) equivalence of a zlang program and its compilation.
// The AST is re-parsed from source so the reference semantics never touch
// the compiled artifacts.
template <typename F>
EquivResult ProveEquivalence(const std::string& source,
                             const EquivOptions& opt = {}) {
  namespace si = symbolic_internal;
  EquivResult result;
  ProgramAst ast = Parse(source);
  CompiledProgram<F> prog = CompileZlang<F>(source);
  NativeInterp native(ast);
  Prg prg(opt.seed);

  // --- witness uniqueness via the determinism fixpoint ---
  auto ginger_eqs = LowerToIr(prog.ginger);
  DeterminismAnalysis<F> det(ginger_eqs, prog.ginger.layout,
                             AnalysisLayer::kGinger);
  AnalysisReport det_report;
  det.Run(&det_report);
  result.unique_witness = !det_report.HasErrors();

  // --- not provably unique: hunt for a concrete second witness ---
  if (!result.unique_witness) {
    std::vector<uint32_t> free_vars;
    for (size_t v = 0; v < prog.ginger.layout.num_unbound; v++) {
      if (!det.determined()[v] && !det.exempt()[v]) {
        free_vars.push_back(static_cast<uint32_t>(v));
      }
    }
    std::vector<bool> exempt(det.exempt().begin(), det.exempt().end());
    for (size_t attempt = 0; attempt < 8; attempt++) {
      std::vector<int64_t> inputs =
          SampleNativeInputs(prog.inputs, prg, opt.magnitude_bits);
      std::vector<F> encoded;
      for (int64_t v : inputs) {
        encoded.push_back(EncodeSignedInt<F>(v));
      }
      std::vector<F> nominal;
      try {
        nominal = prog.SolveGinger(encoded);
      } catch (const std::exception&) {
        continue;  // rejected input: try another sample
      }
      if (!prog.ginger.IsSatisfied(nominal)) {
        continue;
      }
      auto sw = FindSecondWitness(ginger_eqs, prog.ginger.layout, nominal,
                                  free_vars, exempt);
      if (sw.found) {
        result.status = EquivStatus::kUnderconstrained;
        result.counterexample = inputs;
        result.source_line = sw.source_line;
        int64_t a = DecodeSignedInt(nominal[sw.pinned_var]);
        int64_t b = DecodeSignedInt(sw.witness[sw.pinned_var]);
        result.note = "w" + std::to_string(sw.pinned_var) + ": " +
                      std::to_string(a) + " vs " + std::to_string(b);
        result.detail = "second satisfying witness constructed by pinning w" +
                        std::to_string(sw.pinned_var);
        return result;
      }
    }
  }

  // --- algebraic normal forms on both sides ---
  SymEvalResult<F> prog_side = SymEval<F>::Run(ast);
  auto r1cs_eqs = LowerToIr(prog.zaatar.r1cs);
  SymSolveResult<F> cons_side = SymSolve(r1cs_eqs, prog.zaatar.r1cs.layout);

  auto find_mismatch_input = [&]() -> std::optional<std::vector<int64_t>> {
    for (size_t i = 0; i < opt.mismatch_search; i++) {
      std::vector<int64_t> inputs =
          SampleNativeInputs(prog.inputs, prg, opt.magnitude_bits);
      if (si::Probe(prog, &native, inputs).kind ==
          si::ProbeOutcome<F>::Kind::kDiverge) {
        return si::ShrinkCounterexample(prog, &native, std::move(inputs));
      }
    }
    return std::nullopt;
  };

  auto report_mismatch = [&](const std::vector<int64_t>& inputs) {
    result.status = EquivStatus::kMismatch;
    result.counterexample = inputs;
    result.note = si::Probe(prog, &native, inputs).note;
    result.source_line = si::BlameLine(prog, &native, inputs);
    result.detail = "concrete separating input found and shrunk";
  };

  if (prog_side.AllValid() && cons_side.AllOutputsValid() &&
      prog_side.outputs.size() == cons_side.outputs.size()) {
    bool all_equal = true;
    size_t first_diff = 0;
    for (size_t i = 0; i < prog_side.outputs.size(); i++) {
      if (!(prog_side.outputs[i] == cons_side.outputs[i])) {
        all_equal = false;
        first_diff = i;
        break;
      }
    }
    if (all_equal && !prog_side.guarded && !cons_side.residual_guards &&
        !cons_side.has_opaque && result.unique_witness) {
      result.status = EquivStatus::kEquivalentAlgebraic;
      result.detail = "both sides normalize to identical polynomials (" +
                      std::to_string(prog_side.outputs.size()) +
                      " output slot(s), degree <= " +
                      std::to_string(prog_side.DegreeBound()) + ")";
      return result;
    }
    if (!all_equal) {
      // The canonical forms separate the sides; concretize the divergence
      // before reporting, so every ZL021 carries a replayable input.
      auto inputs = find_mismatch_input();
      if (inputs.has_value()) {
        report_mismatch(*inputs);
        return result;
      }
      result.status = EquivStatus::kUnknown;
      result.detail = "output slot " + std::to_string(first_diff) +
                      " has differing normal forms, but no concrete "
                      "separating input was found (forms may differ only "
                      "outside the sampled domain)";
      return result;
    }
    // Polynomials agree but the verdict needs domain/uniqueness caveats:
    // fall through to sampling for the reject-set comparison.
  }

  // --- Schwartz–Zippel: program is polynomial-evaluable, the solver runs
  // only affine/product ops, but normal forms overflowed the caps ---
  bool solver_polynomial = true;
  size_t solver_degree = 1;
  {
    std::vector<size_t> deg(prog.ginger.layout.Total(), 0);
    for (size_t i = 0; i < prog.ginger.layout.num_inputs; i++) {
      deg[prog.ginger.layout.FirstInput() + i] = 1;
    }
    for (const auto& op : prog.solver) {
      auto lc_deg = [&](const LinearCombination<F>& lc) {
        size_t d = 0;
        for (const auto& [v, c] : lc.terms()) {
          d = d < deg[v] ? deg[v] : d;
        }
        return d;
      };
      using Kind = typename SolverOp<F>::Kind;
      if (op.kind == Kind::kAffine) {
        deg[op.dst] = lc_deg(op.a);
      } else if (op.kind == Kind::kProduct) {
        deg[op.dst] = lc_deg(op.a) + lc_deg(op.b);
      } else {
        solver_polynomial = false;
        break;
      }
      solver_degree = solver_degree < deg[op.dst] ? deg[op.dst] : solver_degree;
    }
  }
  if (solver_polynomial && !prog_side.guarded && result.unique_witness) {
    size_t d = prog_side.DegreeBound();
    d = d < solver_degree ? solver_degree : d;
    // Miss probability per sample is d/|F|; k samples drive it to
    // (d/|F|)^k. Aim for 2^-128 overall.
    size_t bits_per_sample = F::kModulusBits > 1 ? F::kModulusBits - 1 : 1;
    size_t log_d = 0;
    while ((size_t{1} << log_d) < d) {
      log_d++;
    }
    bits_per_sample = bits_per_sample > log_d ? bits_per_sample - log_d : 1;
    size_t k = (128 + bits_per_sample - 1) / bits_per_sample;
    k = k < 2 ? 2 : (k > 64 ? 64 : k);
    bool ok = true;
    size_t used = 0;
    for (size_t s = 0; s < k && ok; s++) {
      std::vector<F> point;
      point.reserve(prog.ginger.layout.num_inputs);
      for (size_t i = 0; i < prog.ginger.layout.num_inputs; i++) {
        point.push_back(prg.template NextField<F>());
      }
      auto prog_vals = SymEval<F>::RunAt(ast, point);
      if (!prog_vals.has_value()) {
        ok = false;  // program left the evaluable fragment; no SZ claim
        break;
      }
      std::vector<F> w;
      try {
        w = prog.SolveGinger(point);
      } catch (const std::exception&) {
        ok = false;
        break;
      }
      if (!prog.ginger.IsSatisfied(w) ||
          !prog.zaatar.r1cs.IsSatisfied(prog.zaatar.ExtendAssignment(w))) {
        ok = false;
        break;
      }
      size_t first_out = prog.ginger.layout.FirstOutput();
      for (size_t i = 0; i < prog.ginger.layout.num_outputs; i++) {
        if (!(w[first_out + i] == (*prog_vals)[i])) {
          // A random field point separating the sides: almost certainly a
          // real mismatch; concretize over the typed domain if possible.
          auto inputs = find_mismatch_input();
          if (inputs.has_value()) {
            report_mismatch(*inputs);
          } else {
            result.status = EquivStatus::kMismatch;
            result.note = "sides differ at a random field point (output " +
                          std::to_string(i) + ")";
            result.detail = "Schwartz-Zippel sample separated the sides";
          }
          return result;
        }
      }
      used++;
    }
    if (ok && used == k) {
      result.status = EquivStatus::kEquivalentSchwartzZippel;
      result.detail =
          "agreed at " + std::to_string(k) + " random field points; for "
          "degree-" + std::to_string(d) + " maps the miss probability is <= "
          "(d/|F|)^k ~= 2^-128";
      return result;
    }
  }

  // --- exhaustive enumeration over a small declared domain ---
  auto domain = si::EnumerateDomain(prog.inputs, opt.exhaustive_cap);
  if (domain.has_value()) {
    bool all_agree = true;
    size_t skipped = 0;
    for (const auto& point : *domain) {
      auto probe = si::Probe(prog, &native, point);
      if (probe.kind == si::ProbeOutcome<F>::Kind::kDiverge) {
        report_mismatch(si::ShrinkCounterexample(prog, &native, point));
        return result;
      }
      skipped += probe.kind == si::ProbeOutcome<F>::Kind::kSkip ? 1 : 0;
      all_agree &= probe.kind != si::ProbeOutcome<F>::Kind::kSkip;
    }
    if (all_agree && result.unique_witness) {
      result.status = EquivStatus::kEquivalentExhaustive;
      result.detail = "all " + std::to_string(domain->size()) +
                      " inputs in the declared domain agree";
      return result;
    }
  }

  // --- differential sampling fallback ---
  size_t agreed = 0;
  for (size_t s = 0; s < opt.num_samples; s++) {
    std::vector<int64_t> inputs =
        SampleNativeInputs(prog.inputs, prg, opt.magnitude_bits);
    auto probe = si::Probe(prog, &native, inputs);
    if (probe.kind == si::ProbeOutcome<F>::Kind::kDiverge) {
      report_mismatch(si::ShrinkCounterexample(prog, &native, inputs));
      return result;
    }
    agreed += probe.kind == si::ProbeOutcome<F>::Kind::kAgree ? 1 : 0;
  }
  if (agreed >= 4 && result.unique_witness) {
    result.status = EquivStatus::kConsistent;
    result.detail = std::to_string(agreed) +
                    " differential samples agree and the witness is "
                    "provably unique";
  } else {
    result.status = EquivStatus::kUnknown;
    result.detail =
        result.unique_witness
            ? "too few effective samples (" + std::to_string(agreed) + ")"
            : "witness uniqueness unproven and no second witness found";
  }
  return result;
}

// Renders an EquivResult into ZL021/ZL022/ZL023 findings. Proof-grade
// verdicts produce no findings.
inline void EmitEquivFindings(const EquivResult& r, AnalysisReport* report) {
  Finding f;
  f.location.layer = AnalysisLayer::kR1cs;
  f.location.source_line = r.source_line;
  for (int64_t v : r.counterexample) {
    f.counterexample.push_back(std::to_string(v));
  }
  f.counterexample_note = r.note;
  switch (r.status) {
    case EquivStatus::kMismatch:
      f.severity = Severity::kError;
      f.rule_id = kRuleEquivMismatch;
      f.message =
          "program and constraint system disagree on a concrete input (" +
          r.detail + ")";
      report->Add(std::move(f));
      break;
    case EquivStatus::kUnderconstrained:
      f.severity = Severity::kError;
      f.rule_id = kRuleUnderconstrainedProven;
      f.message = "constraint system admits a second witness (" + r.detail +
                  ")";
      report->Add(std::move(f));
      break;
    case EquivStatus::kUnknown:
      f.severity = Severity::kWarning;
      f.rule_id = kRuleEquivUnknown;
      f.message = "equivalence undecided: " + r.detail;
      report->Add(std::move(f));
      break;
    default:
      break;
  }
}

}  // namespace zaatar

#endif  // SRC_ANALYSIS_SYMBOLIC_EQUIVALENCE_H_
