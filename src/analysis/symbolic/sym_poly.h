// Sparse multivariate polynomials over the prime field, the normal form both
// halves of the equivalence checker reduce to (DESIGN.md §14).
//
// Symbols are input-slot indices (symbol i = the i-th input field element).
// A polynomial is a map from monomials (sorted (symbol, exponent) lists) to
// nonzero coefficients. Term count and degree are capped: a polynomial that
// outgrows the caps is marked invalid, which downgrades the decider from
// exact algebraic comparison to randomized identity testing — never to a
// wrong answer.

#ifndef SRC_ANALYSIS_SYMBOLIC_SYM_POLY_H_
#define SRC_ANALYSIS_SYMBOLIC_SYM_POLY_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace zaatar {

// A monomial: strictly increasing symbol ids with positive exponents.
using SymMono = std::vector<std::pair<uint32_t, uint32_t>>;

template <typename F>
class SymPoly {
 public:
  static constexpr size_t kMaxTerms = 2048;
  static constexpr size_t kMaxDegree = 64;

  SymPoly() = default;

  static SymPoly Constant(const F& c) {
    SymPoly p;
    if (!c.IsZero()) {
      p.terms_.emplace(SymMono{}, c);
    }
    return p;
  }

  static SymPoly Symbol(uint32_t id) {
    SymPoly p;
    p.terms_.emplace(SymMono{{id, 1}}, F::One());
    return p;
  }

  // An invalid polynomial still carries a degree bound: cap overflow must
  // not lose the bound the Schwartz–Zippel error estimate depends on.
  static SymPoly Invalid(size_t deg_bound = 0) {
    SymPoly p;
    p.valid_ = false;
    p.deg_bound_ = deg_bound;
    return p;
  }

  bool valid() const { return valid_; }
  bool IsZero() const { return valid_ && terms_.empty(); }
  bool IsConstant() const {
    return valid_ && (terms_.empty() ||
                      (terms_.size() == 1 && terms_.begin()->first.empty()));
  }
  F ConstantValue() const {
    return terms_.empty() ? F::Zero() : terms_.begin()->second;
  }
  size_t TermCount() const { return terms_.size(); }
  const std::map<SymMono, F>& terms() const { return terms_; }

  size_t TotalDegree() const {
    size_t d = 0;
    for (const auto& [m, c] : terms_) {
      size_t md = 0;
      for (const auto& [s, e] : m) {
        md += e;
      }
      d = d < md ? md : d;
    }
    return d;
  }

  // Valid: the exact total degree. Invalid: the bound accumulated through
  // the operations that overflowed the caps.
  size_t DegreeBound() const { return valid_ ? TotalDegree() : deg_bound_; }

  bool operator==(const SymPoly& o) const {
    if (!valid_ || !o.valid_) {
      return false;
    }
    if (terms_.size() != o.terms_.size()) {
      return false;
    }
    auto it = terms_.begin();
    auto jt = o.terms_.begin();
    for (; it != terms_.end(); ++it, ++jt) {
      if (it->first != jt->first || !(it->second == jt->second)) {
        return false;
      }
    }
    return true;
  }

  SymPoly operator+(const SymPoly& o) const {
    size_t sum_bound =
        DegreeBound() > o.DegreeBound() ? DegreeBound() : o.DegreeBound();
    if (!valid_ || !o.valid_) {
      return Invalid(sum_bound);
    }
    SymPoly r = *this;
    for (const auto& [m, c] : o.terms_) {
      r.AddTerm(m, c);
    }
    if (r.terms_.size() > kMaxTerms) {
      return Invalid(sum_bound);
    }
    return r;
  }

  SymPoly operator-(const SymPoly& o) const { return *this + o * (-F::One()); }

  SymPoly operator*(const F& k) const {
    if (!valid_) {
      return Invalid(deg_bound_);
    }
    if (k.IsZero()) {
      return SymPoly();
    }
    SymPoly r;
    for (const auto& [m, c] : terms_) {
      r.terms_.emplace(m, c * k);
    }
    return r;
  }

  SymPoly operator*(const SymPoly& o) const {
    size_t prod_bound = DegreeBound() + o.DegreeBound();
    if (!valid_ || !o.valid_) {
      return Invalid(prod_bound);
    }
    if (terms_.size() * o.terms_.size() > 4 * kMaxTerms) {
      return Invalid(prod_bound);
    }
    SymPoly r;
    for (const auto& [ma, ca] : terms_) {
      for (const auto& [mb, cb] : o.terms_) {
        SymMono m = MergeMono(ma, mb);
        size_t d = 0;
        for (const auto& [s, e] : m) {
          d += e;
        }
        if (d > kMaxDegree) {
          return Invalid(prod_bound);
        }
        r.AddTerm(m, ca * cb);
      }
    }
    if (r.terms_.size() > kMaxTerms) {
      return Invalid(prod_bound);
    }
    return r;
  }

  // Evaluates at a point: point[i] is the value of symbol i.
  F Evaluate(const std::vector<F>& point) const {
    F acc = F::Zero();
    for (const auto& [m, c] : terms_) {
      F t = c;
      for (const auto& [s, e] : m) {
        F base = s < point.size() ? point[s] : F::Zero();
        for (uint32_t i = 0; i < e; i++) {
          t = t * base;
        }
      }
      acc = acc + t;
    }
    return acc;
  }

  std::string ToString() const {
    if (!valid_) {
      return "<invalid>";
    }
    if (terms_.empty()) {
      return "0";
    }
    std::string s;
    for (const auto& [m, c] : terms_) {
      if (!s.empty()) {
        s += " + ";
      }
      s += c.ToHexString();
      for (const auto& [sym, e] : m) {
        s += "*x" + std::to_string(sym);
        if (e > 1) {
          s += "^" + std::to_string(e);
        }
      }
    }
    return s;
  }

 private:
  void AddTerm(const SymMono& m, const F& c) {
    auto it = terms_.find(m);
    if (it == terms_.end()) {
      if (!c.IsZero()) {
        terms_.emplace(m, c);
      }
      return;
    }
    it->second += c;
    if (it->second.IsZero()) {
      terms_.erase(it);
    }
  }

  static SymMono MergeMono(const SymMono& a, const SymMono& b) {
    SymMono m;
    m.reserve(a.size() + b.size());
    size_t i = 0, j = 0;
    while (i < a.size() || j < b.size()) {
      if (j >= b.size() || (i < a.size() && a[i].first < b[j].first)) {
        m.push_back(a[i++]);
      } else if (i >= a.size() || b[j].first < a[i].first) {
        m.push_back(b[j++]);
      } else {
        m.emplace_back(a[i].first, a[i].second + b[j].second);
        i++;
        j++;
      }
    }
    return m;
  }

  std::map<SymMono, F> terms_;
  bool valid_ = true;
  size_t deg_bound_ = 0;  // meaningful only when !valid_
};

}  // namespace zaatar

#endif  // SRC_ANALYSIS_SYMBOLIC_SYM_POLY_H_
