// Second-witness search: given a constraint system, a nominal satisfying
// assignment, and the set of variables the determinism fixpoint could not
// prove determined, try to construct a *different* satisfying assignment for
// the same inputs. Success turns a ZL001 suspicion ("not provably
// determined") into ZL022 proof ("a second witness exists"): the pair of
// witnesses is a replayable certificate that the constraint system accepts
// more than the program computes.
//
// Strategy (DESIGN.md §14): pin one free variable to a handful of candidate
// values away from its nominal value, then re-solve the rest of the system
// by concrete single-unknown propagation (the concrete analogue of
// sym_solver.h). When propagation stalls, the unknown occurring in the most
// unresolved equations falls back to its nominal value. A full evaluation
// pass at the end accepts the candidate only if every equation holds and
// the assignment differs from the nominal one in a non-exempt variable.

#ifndef SRC_ANALYSIS_SYMBOLIC_SECOND_WITNESS_H_
#define SRC_ANALYSIS_SYMBOLIC_SECOND_WITNESS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/determinism.h"
#include "src/constraints/linear_combination.h"

namespace zaatar {

template <typename F>
struct SecondWitnessResult {
  bool found = false;
  std::vector<F> witness;     // the alternative satisfying assignment
  uint32_t pinned_var = 0;    // the variable that was forced off-nominal
  uint32_t source_line = 0;   // first attributed equation touching it
  std::string note;           // e.g. "w7: 2 vs 3"
};

namespace symbolic_internal {

template <typename F>
bool EqInBounds(const QuadEq<F>& eq, size_t n) {
  for (const auto& [v, c] : eq.linear.terms()) {
    if (v >= n) {
      return false;
    }
  }
  for (const auto& q : eq.quad) {
    if (q.a >= n || q.b >= n) {
      return false;
    }
  }
  return true;
}

template <typename F>
F EvalQuadEq(const QuadEq<F>& eq, const std::vector<F>& w) {
  F acc = eq.linear.Evaluate(w);
  for (const auto& q : eq.quad) {
    acc += q.coeff * w[q.a] * w[q.b];
  }
  return acc;
}

template <typename F>
bool AllEqsHold(const std::vector<QuadEq<F>>& eqs, const std::vector<F>& w) {
  for (const auto& eq : eqs) {
    if (eq.opaque || !EqInBounds(eq, w.size())) {
      return false;  // cannot certify what we cannot evaluate
    }
    if (!EvalQuadEq(eq, w).IsZero()) {
      return false;
    }
  }
  return true;
}

// Re-solves the system with inputs and the pinned variable fixed. Returns
// the completed assignment, or nullopt on contradiction. `stall_to_zero`
// selects the fallback used when propagation stalls: the nominal value
// (stays close to the known witness) or zero (escapes the nominal basin —
// needed when the second witness flips a subset of boolean variables, e.g.
// colliding subset sums in a repeated-weight decomposition).
template <typename F>
std::optional<std::vector<F>> Repropagate(const std::vector<QuadEq<F>>& eqs,
                                          const VariableLayout& layout,
                                          const std::vector<F>& nominal,
                                          uint32_t pinned, const F& value,
                                          bool stall_to_zero = false) {
  const size_t n = layout.Total();
  std::vector<F> w(n, F::Zero());
  std::vector<bool> done(n, false);
  for (size_t i = 0; i < layout.num_inputs; i++) {
    size_t v = layout.FirstInput() + i;
    w[v] = nominal[v];
    done[v] = true;
  }
  w[pinned] = value;
  done[pinned] = true;

  std::vector<bool> eq_done(eqs.size(), false);
  for (;;) {
    bool progress = false;
    for (size_t j = 0; j < eqs.size(); j++) {
      if (eq_done[j] || eqs[j].opaque) {
        continue;
      }
      const QuadEq<F>& eq = eqs[j];
      long unknown = -1;
      bool solvable = true;
      auto consider = [&](uint32_t v) {
        if (done[v]) {
          return;
        }
        if (unknown == -1) {
          unknown = v;
        } else if (static_cast<uint32_t>(unknown) != v) {
          solvable = false;
        }
      };
      for (const auto& [v, c] : eq.linear.terms()) {
        consider(v);
      }
      for (const auto& q : eq.quad) {
        consider(q.a);
        consider(q.b);
        if (!done[q.a] && !done[q.b]) {
          solvable = false;
        }
      }
      if (unknown == -1) {
        eq_done[j] = true;
        if (!EvalQuadEq(eq, w).IsZero()) {
          return std::nullopt;  // contradiction: the pin is infeasible here
        }
        progress = true;
        continue;
      }
      if (!solvable) {
        continue;
      }
      uint32_t u = static_cast<uint32_t>(unknown);
      F coeff = F::Zero();
      F residual = eq.linear.constant();
      for (const auto& [v, c] : eq.linear.terms()) {
        if (v == u) {
          coeff += c;
        } else {
          residual += c * w[v];
        }
      }
      for (const auto& q : eq.quad) {
        if (q.a == u || q.b == u) {
          coeff += q.coeff * w[q.a == u ? q.b : q.a];
        } else {
          residual += q.coeff * w[q.a] * w[q.b];
        }
      }
      if (coeff.IsZero()) {
        // 0·u + B = 0: u is unconstrained by this equation; the equation
        // itself must still hold.
        eq_done[j] = true;
        if (!residual.IsZero()) {
          return std::nullopt;
        }
        progress = true;
        continue;
      }
      w[u] = residual * (-coeff.Inverse());
      done[u] = true;
      eq_done[j] = true;
      progress = true;
    }
    if (progress) {
      continue;
    }
    // Stalled: pick the unresolved variable occurring in the most pending
    // equations and fall back to its nominal value.
    std::vector<uint32_t> pending_count(n, 0);
    for (size_t j = 0; j < eqs.size(); j++) {
      if (eq_done[j] || eqs[j].opaque) {
        continue;
      }
      for (const auto& [v, c] : eqs[j].linear.terms()) {
        pending_count[v] += done[v] ? 0 : 1;
      }
      for (const auto& q : eqs[j].quad) {
        pending_count[q.a] += done[q.a] ? 0 : 1;
        pending_count[q.b] += done[q.b] ? 0 : 1;
      }
    }
    long best = -1;
    for (size_t v = 0; v < n; v++) {
      if (!done[v] && (best == -1 || pending_count[v] >
                                         pending_count[static_cast<size_t>(
                                             best)])) {
        best = static_cast<long>(v);
      }
    }
    if (best == -1) {
      break;  // everything resolved
    }
    w[static_cast<size_t>(best)] =
        stall_to_zero ? F::Zero() : nominal[static_cast<size_t>(best)];
    done[static_cast<size_t>(best)] = true;
  }
  return w;
}

}  // namespace symbolic_internal

// free_vars: variables not proven determined and not exempt; exempt:
// per-variable exemption flags (a witness pair differing only in exempt
// variables proves nothing).
template <typename F>
SecondWitnessResult<F> FindSecondWitness(
    const std::vector<QuadEq<F>>& eqs, const VariableLayout& layout,
    const std::vector<F>& nominal, const std::vector<uint32_t>& free_vars,
    const std::vector<bool>& exempt) {
  namespace si = symbolic_internal;
  SecondWitnessResult<F> result;
  for (const auto& eq : eqs) {
    if (eq.opaque || !si::EqInBounds(eq, layout.Total())) {
      return result;  // cannot certify a witness we cannot evaluate
    }
  }
  for (uint32_t v : free_vars) {
    F nom = nominal[v];
    const F candidates[] = {nom + F::One(), nom - F::One(), -nom,
                            F::FromInt(2), F::Zero()};
    for (const F& cand : candidates) {
      if (cand == nom) {
        continue;
      }
      std::optional<std::vector<F>> w;
      for (bool stall_to_zero : {false, true}) {
        w = si::Repropagate(eqs, layout, nominal, v, cand, stall_to_zero);
        if (w.has_value() && si::AllEqsHold(eqs, *w)) {
          break;
        }
        w.reset();
      }
      if (!w.has_value()) {
        continue;
      }
      // Must differ from the nominal witness in some non-exempt variable.
      bool differs = false;
      for (size_t i = 0; i < w->size(); i++) {
        if (!((*w)[i] == nominal[i]) &&
            (i >= exempt.size() || !exempt[i])) {
          differs = true;
          break;
        }
      }
      if (!differs) {
        continue;
      }
      result.found = true;
      result.witness = std::move(*w);
      result.pinned_var = v;
      for (const auto& eq : eqs) {
        if (eq.source_line == 0) {
          continue;
        }
        bool touches = false;
        for (const auto& [tv, c] : eq.linear.terms()) {
          touches |= tv == v;
        }
        for (const auto& q : eq.quad) {
          touches |= q.a == v || q.b == v;
        }
        if (touches) {
          result.source_line = eq.source_line;
          break;
        }
      }
      return result;
    }
  }
  return result;
}

}  // namespace zaatar

#endif  // SRC_ANALYSIS_SYMBOLIC_SECOND_WITNESS_H_
