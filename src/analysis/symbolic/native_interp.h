// Independent concrete reference interpreter for zlang — the ground truth
// the equivalence checker compares the compiled constraint system against.
//
// Deliberately field-free: values are 128-bit integers (and exact rational
// pairs), so none of the constraint/solver machinery under test is reused.
// Semantics mirror src/compiler/evaluator.h exactly, including the parts
// that are observable only through accept/reject behavior:
//
//  - staticness tracking: `if`/ternary over a compile-time condition runs
//    one arm; over a runtime condition BOTH arms run (their gadget
//    preconditions apply unconditionally) and writes merge by the concrete
//    condition value. Static tracking replicates the compiler's rules,
//    including the 2^62 static-value clip.
//  - gadget preconditions become rejects: idiv/imod with a non-positive (or
//    >= 2^63) divisor, isqrt of a negative, bitwise ops on negatives, and
//    failed asserts all make the witness solver throw or the constraints
//    unsatisfiable — the interpreter throws NativeReject at the same points.
//  - fixed-point rounding on assignment to rational<W,q> matches
//    FixRational: num' = floor(num·2^q / den), den' = 2^q.
//
// Values outside what __int128 can hold (possible for wide F220 programs)
// raise NativeUnsupported; the caller skips that sample rather than
// reporting a divergence.

#ifndef SRC_ANALYSIS_SYMBOLIC_NATIVE_INTERP_H_
#define SRC_ANALYSIS_SYMBOLIC_NATIVE_INTERP_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "src/compiler/ast.h"
#include "src/compiler/evaluator.h"

namespace zaatar {

struct NativeReject : std::runtime_error {
  explicit NativeReject(const std::string& what) : std::runtime_error(what) {}
};
struct NativeUnsupported : std::runtime_error {
  explicit NativeUnsupported(const std::string& what)
      : std::runtime_error(what) {}
};

struct NativeResult {
  enum class Status { kOk, kReject, kUnsupported };
  Status status = Status::kOk;
  std::vector<__int128> outputs;  // one per output slot, in slot order
  std::string detail;
};

class NativeInterp {
 public:
  explicit NativeInterp(const ProgramAst& ast) : ast_(&ast) {}

  // slot_inputs: one signed integer per input slot (IoSlotSpec order).
  NativeResult Run(const std::vector<int64_t>& slot_inputs) {
    NativeResult result;
    try {
      env_.clear();
      decl_types_.clear();
      functions_.clear();
      outputs_.clear();
      write_logs_.clear();
      call_depth_ = 0;
      return_value_.reset();
      inputs_ = &slot_inputs;
      next_input_ = 0;
      for (const auto& f : ast_->functions) {
        functions_.emplace(f.name, &f);
      }
      for (const auto& d : ast_->decls) {
        Declare(d);
      }
      if (next_input_ != slot_inputs.size()) {
        throw NativeUnsupported("input slot count mismatch");
      }
      for (const auto& s : ast_->body) {
        Exec(*s);
      }
      CollectOutputs(&result.outputs);
    } catch (const NativeReject& e) {
      result.status = NativeResult::Status::kReject;
      result.detail = e.what();
    } catch (const NativeUnsupported& e) {
      result.status = NativeResult::Status::kUnsupported;
      result.detail = e.what();
    } catch (const std::exception& e) {
      // Anything else (bad env lookups etc.) means the interpreter diverged
      // structurally from the compiled program — treat as unsupported, never
      // as agreement.
      result.status = NativeResult::Status::kUnsupported;
      result.detail = std::string("internal: ") + e.what();
    }
    return result;
  }

 private:
  // ----- values -----

  static constexpr __int128 kValueCap = static_cast<__int128>(1) << 125;
  static constexpr __int128 kStaticClip = static_cast<__int128>(1) << 62;

  struct NInt {
    __int128 v = 0;
    bool is_static = false;
  };
  struct NBool {
    bool v = false;
    bool is_static = false;
  };
  struct NRat {
    __int128 num = 0;
    __int128 den = 1;
    bool num_static = false;
    bool den_static = false;
  };
  struct NVal;
  struct NArr {
    std::vector<size_t> dims;
    std::vector<NVal> elems;
  };
  struct NVal {
    std::variant<NInt, NBool, NRat, NArr> v;
    NVal() : v(NInt{0, true}) {}
    NVal(NInt x) : v(x) {}                   // NOLINT(runtime/explicit)
    NVal(NBool x) : v(x) {}                  // NOLINT(runtime/explicit)
    NVal(NRat x) : v(x) {}                   // NOLINT(runtime/explicit)
    NVal(NArr x) : v(std::move(x)) {}        // NOLINT(runtime/explicit)
    bool IsInt() const { return std::holds_alternative<NInt>(v); }
    bool IsBool() const { return std::holds_alternative<NBool>(v); }
    bool IsRat() const { return std::holds_alternative<NRat>(v); }
    bool IsArr() const { return std::holds_alternative<NArr>(v); }
    const NInt& AsInt() const { return std::get<NInt>(v); }
    const NBool& AsBool() const { return std::get<NBool>(v); }
    const NRat& AsRat() const { return std::get<NRat>(v); }
    const NArr& AsArr() const { return std::get<NArr>(v); }
    NArr& AsArr() { return std::get<NArr>(v); }
  };

  static NInt StaticInt(__int128 v) { return NInt{v, true}; }

  static __int128 CheckedAdd(__int128 a, __int128 b) {
    __int128 r = a + b;
    if ((b > 0 && r < a) || (b < 0 && r > a) || r >= kValueCap ||
        r <= -kValueCap) {
      throw NativeUnsupported("integer overflow in native interpreter");
    }
    return r;
  }

  static __int128 CheckedMul(__int128 a, __int128 b) {
    if (a == 0 || b == 0) {
      return 0;
    }
    __int128 aa = a < 0 ? -a : a;
    __int128 bb = b < 0 ? -b : b;
    if (aa > kValueCap / bb) {
      throw NativeUnsupported("integer overflow in native interpreter");
    }
    return a * b;
  }

  static __int128 FloorDiv(__int128 a, __int128 b) {
    __int128 q = a / b;
    if ((a % b) != 0 && ((a < 0) != (b < 0))) {
      q--;
    }
    return q;
  }

  static __int128 FloorMod(__int128 a, __int128 b) {
    return a - CheckedMul(FloorDiv(a, b), b);
  }

  // Mirrors ClipStatic: staticness survives only while |v| < 2^62.
  static bool ClippedStatic(bool s, __int128 v) {
    return s && v < kStaticClip && v > -kStaticClip;
  }

  // ----- declarations -----

  void Declare(const Declaration& d) {
    if (d.kind == Declaration::Kind::kConstant) {
      NVal v = Eval(*d.init);
      env_[d.name] = v;
      return;
    }
    TypeNode type = d.type;
    if (d.width_expr != nullptr) {
      type.width = static_cast<size_t>(EvalStaticInt(*d.width_expr));
    }
    if (d.den_width_expr != nullptr) {
      type.den_width =
          static_cast<size_t>(EvalStaticInt(*d.den_width_expr));
    }
    for (const auto& e : d.dim_exprs) {
      type.dims.push_back(static_cast<size_t>(EvalStaticInt(*e)));
    }
    switch (d.kind) {
      case Declaration::Kind::kInput:
        env_[d.name] = MakeInputValue(type);
        decl_types_[d.name] = type;
        break;
      case Declaration::Kind::kOutput:
        outputs_.push_back({d.name, type});
        env_[d.name] = DefaultValue(type);
        decl_types_[d.name] = type;
        break;
      case Declaration::Kind::kLocal: {
        NVal init = d.init != nullptr
                        ? Coerce(Eval(*d.init), type)
                        : DefaultValue(type);
        env_[d.name] = std::move(init);
        decl_types_[d.name] = type;
        break;
      }
      case Declaration::Kind::kConstant:
        break;
    }
  }

  NVal MakeInputValue(const TypeNode& type) {
    if (!type.IsArray()) {
      return MakeScalarInput(type);
    }
    NArr arr;
    arr.dims = type.dims;
    size_t count = type.ElementCount();
    arr.elems.reserve(count);
    for (size_t i = 0; i < count; i++) {
      arr.elems.push_back(MakeScalarInput(type));
    }
    return NVal(std::move(arr));
  }

  int64_t NextInput() {
    if (next_input_ >= inputs_->size()) {
      throw NativeUnsupported("ran out of input slots");
    }
    return (*inputs_)[next_input_++];
  }

  NVal MakeScalarInput(const TypeNode& type) {
    switch (type.kind) {
      case TypeNode::Kind::kInt:
        return NVal(NInt{NextInput(), false});
      case TypeNode::Kind::kBool:
        return NVal(NBool{NextInput() != 0, false});
      case TypeNode::Kind::kRational: {
        NRat r;
        r.num = NextInput();
        r.den = NextInput();
        return NVal(r);
      }
    }
    return NVal();
  }

  NVal DefaultValue(const TypeNode& type) {
    NVal scalar;
    switch (type.kind) {
      case TypeNode::Kind::kInt:
        scalar = NVal(StaticInt(0));
        break;
      case TypeNode::Kind::kBool:
        scalar = NVal(NBool{false, true});
        break;
      case TypeNode::Kind::kRational:
        scalar = NVal(NRat{0, 1, true, true});
        break;
    }
    if (!type.IsArray()) {
      return scalar;
    }
    NArr arr;
    arr.dims = type.dims;
    arr.elems.assign(type.ElementCount(), scalar);
    return NVal(std::move(arr));
  }

  NVal Coerce(NVal v, const TypeNode& type) {
    if (type.kind == TypeNode::Kind::kRational && v.IsInt()) {
      return NVal(RatFromInt(v.AsInt()));
    }
    return v;
  }

  static NRat RatFromInt(const NInt& v) {
    return NRat{v.v, 1, v.is_static, true};
  }

  // ----- statements -----

  void Exec(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kBlock:
        for (const auto& child : s.body) {
          Exec(*child);
        }
        break;
      case Stmt::Kind::kAssign:
        ExecAssign(s);
        break;
      case Stmt::Kind::kIf:
        ExecIf(s);
        break;
      case Stmt::Kind::kFor:
        ExecFor(s);
        break;
      case Stmt::Kind::kAssert: {
        NVal cond = Eval(*s.value);
        if (!cond.AsBool().v) {
          throw NativeReject("assert failed at line " +
                             std::to_string(s.line));
        }
        break;
      }
      case Stmt::Kind::kVarDecl:
        env_.erase(s.decl->name);
        decl_types_.erase(s.decl->name);
        Declare(*s.decl);
        RecordWrite(s.decl->name);
        break;
      case Stmt::Kind::kReturn:
        return_value_ = Eval(*s.value);
        break;
    }
  }

  void ExecAssign(const Stmt& s) {
    RecordWrite(s.name);
    NVal rhs = Eval(*s.value);
    rhs = CoerceAssign(s.name, std::move(rhs));
    auto it = env_.find(s.name);
    if (it == env_.end()) {
      throw NativeUnsupported("assignment target vanished");
    }
    if (s.indices.empty()) {
      it->second = std::move(rhs);
      return;
    }
    NArr& arr = it->second.AsArr();
    NInt index = LinearIndex(arr, s.indices);
    if (index.is_static) {
      // Compile-time index: the compiler checked bounds already.
      size_t off = static_cast<size_t>(index.v);
      if (off >= arr.elems.size()) {
        throw NativeUnsupported("static index out of bounds");
      }
      arr.elems[off] = std::move(rhs);
      return;
    }
    // Runtime index: every slot gets muxed on a selector — values keep, but
    // staticness drops everywhere; an out-of-range index writes nothing.
    for (size_t i = 0; i < arr.elems.size(); i++) {
      NBool sel{index.v == static_cast<__int128>(i), false};
      arr.elems[i] = Mux(sel, rhs, arr.elems[i]);
    }
  }

  void ExecIf(const Stmt& s) {
    NVal cond = Eval(*s.value);
    const NBool& c = cond.AsBool();
    if (c.is_static) {
      const auto& arm = c.v ? s.body : s.else_body;
      for (const auto& child : arm) {
        Exec(*child);
      }
      return;
    }
    // Runtime condition: both arms execute (their asserts and gadget
    // preconditions apply unconditionally, exactly as compiled), writes
    // merge by the concrete condition value.
    std::map<std::string, NVal> before = env_;
    write_logs_.emplace_back();
    for (const auto& child : s.body) {
      Exec(*child);
    }
    std::set<std::string> then_writes = std::move(write_logs_.back());
    write_logs_.pop_back();
    std::map<std::string, NVal> then_env = std::move(env_);

    env_ = before;
    write_logs_.emplace_back();
    for (const auto& child : s.else_body) {
      Exec(*child);
    }
    std::set<std::string> else_writes = std::move(write_logs_.back());
    write_logs_.pop_back();

    std::set<std::string> written = then_writes;
    written.insert(else_writes.begin(), else_writes.end());
    for (const auto& name : written) {
      RecordWrite(name);
      env_[name] = Mux(c, then_env.at(name), env_.at(name));
    }
  }

  void ExecFor(const Stmt& s) {
    int64_t lo = EvalStaticInt(*s.lo);
    int64_t hi = EvalStaticInt(*s.hi);
    bool had_shadow = env_.count(s.name) != 0;
    NVal shadow;
    if (had_shadow) {
      shadow = env_.at(s.name);
    }
    for (int64_t k = lo; k <= hi; k++) {
      env_[s.name] = NVal(StaticInt(k));
      for (const auto& child : s.body) {
        Exec(*child);
      }
    }
    if (had_shadow) {
      env_[s.name] = shadow;
    } else {
      env_.erase(s.name);
    }
  }

  void RecordWrite(const std::string& name) {
    for (auto& log : write_logs_) {
      log.insert(name);
    }
  }

  NVal CoerceAssign(const std::string& name, NVal rhs) {
    auto dt = decl_types_.find(name);
    if (dt == decl_types_.end()) {
      return rhs;
    }
    const TypeNode& type = dt->second;
    if (type.kind != TypeNode::Kind::kRational) {
      return rhs;
    }
    if (rhs.IsArr()) {
      NArr arr = rhs.AsArr();
      for (auto& elem : arr.elems) {
        elem = NVal(FixRational(ToRat(elem), type.den_width));
      }
      return NVal(std::move(arr));
    }
    return NVal(FixRational(ToRat(rhs), type.den_width));
  }

  // Mirrors Evaluator::FixRational: every path computes
  // num' = floor(num·2^q / den), den' = 2^q; the dynamic-denominator path
  // additionally carries the DivFloor gadget's positivity precondition.
  NRat FixRational(const NRat& x, size_t q) {
    if (q >= 62) {
      throw NativeUnsupported("fixed-point denominator too wide");
    }
    __int128 target = static_cast<__int128>(1) << q;
    bool static_pow2 =
        x.den_static && x.den > 0 && (x.den & (x.den - 1)) == 0;
    NRat out;
    out.den = target;
    out.den_static = true;
    if (!static_pow2) {
      // Dynamic denominator: the compiled DivFloor gadget requires a
      // positive divisor < 2^63 at runtime.
      if (x.den <= 0 || x.den >= (static_cast<__int128>(1) << 63)) {
        throw NativeReject("fixed-point rounding with non-positive divisor");
      }
      out.num = FloorDiv(CheckedMul(x.num, target), x.den);
      out.num_static = false;
      return out;
    }
    size_t e = 0;
    while ((static_cast<__int128>(1) << e) < x.den) {
      e++;
    }
    if (e <= q) {
      out.num = CheckedMul(x.num, static_cast<__int128>(1) << (q - e));
      out.num_static = ClippedStatic(x.num_static, out.num);
    } else {
      out.num = FloorDiv(x.num, static_cast<__int128>(1) << (e - q));
      out.num_static = false;
    }
    return out;
  }

  // ----- expressions -----

  NVal Eval(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kIntLit:
        return NVal(StaticInt(e.int_value));
      case Expr::Kind::kBoolLit:
        return NVal(NBool{e.int_value != 0, true});
      case Expr::Kind::kVarRef: {
        auto it = env_.find(e.name);
        if (it == env_.end()) {
          throw NativeUnsupported("undeclared identifier '" + e.name + "'");
        }
        return it->second;
      }
      case Expr::Kind::kIndex:
        return EvalIndex(e);
      case Expr::Kind::kBinary:
        return EvalBinary(e);
      case Expr::Kind::kUnary:
        return EvalUnary(e);
      case Expr::Kind::kTernary: {
        NVal cond = Eval(*e.children[0]);
        const NBool& c = cond.AsBool();
        if (c.is_static) {
          return Eval(c.v ? *e.children[1] : *e.children[2]);
        }
        NVal a = Eval(*e.children[1]);
        NVal b = Eval(*e.children[2]);
        return Mux(c, a, b);
      }
      case Expr::Kind::kCall:
        return EvalCall(e);
    }
    throw NativeUnsupported("unknown expression kind");
  }

  int64_t EvalStaticInt(const Expr& e) {
    NVal v = Eval(e);
    if (!v.IsInt()) {
      throw NativeUnsupported("expected a compile-time integer");
    }
    return static_cast<int64_t>(v.AsInt().v);
  }

  NVal EvalCall(const Expr& e) {
    auto arg = [&](size_t i) { return Eval(*e.children[i]); };
    if (e.name == "min" || e.name == "max") {
      NVal a = arg(0), b = arg(1);
      NBool a_less = Less(a, b);
      return e.name == "min" ? Mux(a_less, a, b) : Mux(a_less, b, a);
    }
    if (e.name == "abs") {
      NVal a = arg(0);
      NVal neg = Negate(a);
      NBool is_neg = Less(a, NVal(StaticInt(0)));
      return Mux(is_neg, neg, a);
    }
    if (e.name == "idiv" || e.name == "imod") {
      NVal a = arg(0), b = arg(1);
      auto [q, r] = IntDivMod(a.AsInt(), b.AsInt());
      return e.name == "idiv" ? NVal(q) : NVal(r);
    }
    if (e.name == "isqrt") {
      NVal a = arg(0);
      return NVal(IntSqrt(a.AsInt()));
    }
    auto fn = functions_.find(e.name);
    if (fn != functions_.end()) {
      return CallFunction(*fn->second, e);
    }
    throw NativeUnsupported("unknown function '" + e.name + "'");
  }

  NVal CallFunction(const FunctionDecl& f, const Expr& call) {
    if (call_depth_ >= 64) {
      throw NativeUnsupported("call depth limit exceeded");
    }
    std::vector<NVal> args;
    args.reserve(f.params.size());
    for (size_t i = 0; i < f.params.size(); i++) {
      args.push_back(Eval(*call.children[i]));
    }
    std::map<std::string, NVal> saved_env = env_;
    auto saved_decl_types = decl_types_;
    for (size_t i = 0; i < f.params.size(); i++) {
      const auto& p = f.params[i];
      NVal v = args[i];
      if (p.type.kind == TypeNode::Kind::kRational && v.IsInt()) {
        v = NVal(RatFromInt(v.AsInt()));
      }
      env_[p.name] = std::move(v);
      decl_types_.erase(p.name);
    }
    call_depth_++;
    return_value_.reset();
    for (const auto& s : f.body) {
      Exec(*s);
    }
    call_depth_--;
    if (!return_value_.has_value()) {
      throw NativeUnsupported("function did not return");
    }
    NVal result = std::move(*return_value_);
    return_value_.reset();
    env_ = std::move(saved_env);
    decl_types_ = std::move(saved_decl_types);
    return result;
  }

  // idiv/imod: the compiled DivFloor gadget needs 0 < divisor < 2^63; the
  // compile-time path only exists for static positive divisors and computes
  // the same floor pair.
  std::pair<NInt, NInt> IntDivMod(const NInt& a, const NInt& b) {
    if (b.v <= 0 || b.v >= (static_cast<__int128>(1) << 63)) {
      throw NativeReject("idiv divisor must be positive and < 2^63");
    }
    NInt q{FloorDiv(a.v, b.v), a.is_static && b.is_static};
    NInt r{FloorMod(a.v, b.v), q.is_static};
    q.is_static = ClippedStatic(q.is_static, q.v);
    r.is_static = ClippedStatic(r.is_static, r.v);
    return {q, r};
  }

  NInt IntSqrt(const NInt& x) {
    if (x.v < 0) {
      throw NativeReject("isqrt of a negative value");
    }
    __int128 s = 0;
    // Bit-by-bit integer square root (x < 2^125 by the value cap).
    for (int bit = 62; bit >= 0; bit--) {
      __int128 cand = s + (static_cast<__int128>(1) << bit);
      if (cand * cand <= x.v) {
        s = cand;
      }
    }
    return NInt{s, ClippedStatic(x.is_static && x.v >= 0, s)};
  }

  NVal EvalIndex(const Expr& e) {
    const Expr& base = *e.children[0];
    auto it = env_.find(base.name);
    if (it == env_.end() || !it->second.IsArr()) {
      throw NativeUnsupported("'" + base.name + "' is not an array");
    }
    const NArr& arr = it->second.AsArr();
    NInt index = LinearIndexExprs(arr, e.children, 1);
    if (index.is_static) {
      size_t off = static_cast<size_t>(index.v);
      if (index.v < 0 || off >= arr.elems.size()) {
        throw NativeUnsupported("static index out of bounds");
      }
      return arr.elems[off];
    }
    // Runtime read compiles to a selector-masked sum: out-of-range reads 0.
    if (index.v >= 0 &&
        static_cast<size_t>(index.v) < arr.elems.size()) {
      return Dynamicize(arr.elems[static_cast<size_t>(index.v)]);
    }
    return Dynamicize(ZeroLike(arr.elems[0]));
  }

  NInt LinearIndexExprs(const NArr& arr,
                        const std::vector<ExprPtr>& exprs, size_t first) {
    NInt idx = StaticInt(0);
    for (size_t k = 0; k < arr.dims.size(); k++) {
      NVal v = Eval(*exprs[first + k]);
      idx = IntMul(idx, StaticInt(static_cast<int64_t>(arr.dims[k])));
      idx = IntAdd(idx, v.AsInt(), false);
    }
    return idx;
  }

  NInt LinearIndex(const NArr& arr, const std::vector<ExprPtr>& indices) {
    NInt idx = StaticInt(0);
    for (size_t k = 0; k < arr.dims.size(); k++) {
      NVal v = Eval(*indices[k]);
      idx = IntMul(idx, StaticInt(static_cast<int64_t>(arr.dims[k])));
      idx = IntAdd(idx, v.AsInt(), false);
    }
    return idx;
  }

  static NVal ZeroLike(const NVal& v) {
    if (v.IsBool()) {
      return NVal(NBool{false, false});
    }
    if (v.IsRat()) {
      return NVal(NRat{0, 0, false, false});
    }
    return NVal(NInt{0, false});
  }

  static NVal Dynamicize(NVal v) {
    if (v.IsInt()) {
      NInt x = v.AsInt();
      x.is_static = false;
      return NVal(x);
    }
    if (v.IsBool()) {
      NBool x = v.AsBool();
      x.is_static = false;
      return NVal(x);
    }
    if (v.IsRat()) {
      NRat x = v.AsRat();
      x.num_static = false;
      x.den_static = false;
      return NVal(x);
    }
    return v;
  }

  // ----- integer ops (staticness mirrors the compiler exactly) -----

  NInt IntAdd(const NInt& a, const NInt& b, bool subtract) {
    __int128 v = CheckedAdd(a.v, subtract ? -b.v : b.v);
    return NInt{v, ClippedStatic(a.is_static && b.is_static, v)};
  }

  NInt IntMul(const NInt& a, const NInt& b) {
    __int128 v = CheckedMul(a.v, b.v);
    return NInt{v, ClippedStatic(a.is_static && b.is_static, v)};
  }

  static NInt IntNeg(const NInt& a) {
    return NInt{-a.v, a.is_static};  // no clip, mirroring IntNeg
  }

  NBool Less(const NVal& a, const NVal& b) {
    if (a.IsInt() && b.IsInt()) {
      return NBool{a.AsInt().v < b.AsInt().v,
                   a.AsInt().is_static && b.AsInt().is_static};
    }
    NRat ra = ToRat(a), rb = ToRat(b);
    NInt l = IntMul(NInt{ra.num, ra.num_static}, NInt{rb.den, rb.den_static});
    NInt r = IntMul(NInt{rb.num, rb.num_static}, NInt{ra.den, ra.den_static});
    return NBool{l.v < r.v, l.is_static && r.is_static};
  }

  NBool Eq(const NVal& a, const NVal& b) {
    if (a.IsBool() && b.IsBool()) {
      return NBool{a.AsBool().v == b.AsBool().v,
                   a.AsBool().is_static && b.AsBool().is_static};
    }
    if (a.IsInt() && b.IsInt()) {
      return NBool{a.AsInt().v == b.AsInt().v,
                   a.AsInt().is_static && b.AsInt().is_static};
    }
    NRat ra = ToRat(a), rb = ToRat(b);
    NInt l = IntMul(NInt{ra.num, ra.num_static}, NInt{rb.den, rb.den_static});
    NInt r = IntMul(NInt{rb.num, rb.num_static}, NInt{ra.den, ra.den_static});
    return NBool{l.v == r.v, l.is_static && r.is_static};
  }

  NInt IntBitwise(TokenKind op, const NInt& a, const NInt& b) {
    // The compiled gadget bit-decomposes both operands; a negative value
    // makes the solver throw (its canonical form exceeds the tracked width).
    if (a.v < 0 || b.v < 0) {
      throw NativeReject("bitwise operator on a negative value");
    }
    __int128 r = op == TokenKind::kAmp    ? (a.v & b.v)
                 : op == TokenKind::kPipe ? (a.v | b.v)
                                          : (a.v ^ b.v);
    return NInt{r, ClippedStatic(a.is_static && b.is_static, r)};
  }

  NInt IntShl(const NInt& a, size_t k) {
    if (k >= 120) {
      throw NativeUnsupported("shift too wide");
    }
    __int128 v = CheckedMul(a.v, static_cast<__int128>(1) << k);
    return NInt{v, ClippedStatic(a.is_static, v)};
  }

  static NInt IntShr(const NInt& a, size_t k) {
    if (k >= 126) {
      return NInt{a.v < 0 ? -1 : 0, a.is_static};
    }
    __int128 v = FloorDiv(a.v, static_cast<__int128>(1) << k);
    return NInt{v, a.is_static};
  }

  // ----- generic ops -----

  NRat ToRat(const NVal& v) const {
    if (v.IsRat()) {
      return v.AsRat();
    }
    if (v.IsInt()) {
      return RatFromInt(v.AsInt());
    }
    throw NativeUnsupported("expected a numeric value");
  }

  NVal Negate(const NVal& a) {
    if (a.IsInt()) {
      return NVal(IntNeg(a.AsInt()));
    }
    NRat r = a.AsRat();
    r.num = -r.num;
    return NVal(r);
  }

  NVal Mux(const NBool& c, const NVal& a, const NVal& b) {
    if (c.is_static) {
      return c.v ? a : b;
    }
    if (a.IsArr() || b.IsArr()) {
      const NArr& aa = a.AsArr();
      const NArr& bb = b.AsArr();
      NArr out;
      out.dims = aa.dims;
      out.elems.reserve(aa.elems.size());
      for (size_t i = 0; i < aa.elems.size(); i++) {
        out.elems.push_back(Mux(c, aa.elems[i], bb.elems[i]));
      }
      return NVal(std::move(out));
    }
    if (a.IsBool() && b.IsBool()) {
      return NVal(NBool{c.v ? a.AsBool().v : b.AsBool().v, false});
    }
    if (a.IsInt() && b.IsInt()) {
      return NVal(NInt{c.v ? a.AsInt().v : b.AsInt().v, false});
    }
    NRat ra = ToRat(a), rb = ToRat(b);
    NRat r;
    r.num = c.v ? ra.num : rb.num;
    r.den = c.v ? ra.den : rb.den;
    return NVal(r);
  }

  NVal EvalBinary(const Expr& e) {
    NVal a = Eval(*e.children[0]);
    NVal b = Eval(*e.children[1]);
    switch (e.op) {
      case TokenKind::kPlus:
      case TokenKind::kMinus: {
        bool sub = e.op == TokenKind::kMinus;
        if (a.IsInt() && b.IsInt()) {
          return NVal(IntAdd(a.AsInt(), b.AsInt(), sub));
        }
        NRat ra = ToRat(a), rb = ToRat(b);
        NRat r;
        NInt n1d2 =
            IntMul(NInt{ra.num, ra.num_static}, NInt{rb.den, rb.den_static});
        NInt n2d1 =
            IntMul(NInt{rb.num, rb.num_static}, NInt{ra.den, ra.den_static});
        NInt num = IntAdd(n1d2, n2d1, sub);
        NInt den =
            IntMul(NInt{ra.den, ra.den_static}, NInt{rb.den, rb.den_static});
        return NVal(NRat{num.v, den.v, num.is_static, den.is_static});
      }
      case TokenKind::kStar: {
        if (a.IsInt() && b.IsInt()) {
          return NVal(IntMul(a.AsInt(), b.AsInt()));
        }
        NRat ra = ToRat(a), rb = ToRat(b);
        NInt num =
            IntMul(NInt{ra.num, ra.num_static}, NInt{rb.num, rb.num_static});
        NInt den =
            IntMul(NInt{ra.den, ra.den_static}, NInt{rb.den, rb.den_static});
        return NVal(NRat{num.v, den.v, num.is_static, den.is_static});
      }
      case TokenKind::kSlash: {
        // Mirrors EvalDivide: static-int / static-int truncates; anything /
        // positive static constant scales the denominator.
        if (a.IsInt() && b.IsInt() && a.AsInt().is_static &&
            b.AsInt().is_static) {
          if (b.AsInt().v == 0) {
            throw NativeUnsupported("static division by zero");
          }
          __int128 v = a.AsInt().v / b.AsInt().v;
          return NVal(NInt{v, true});
        }
        NRat r = ToRat(a);
        __int128 k = b.AsInt().v;
        NInt den = IntMul(NInt{r.den, r.den_static},
                          NInt{k, b.AsInt().is_static});
        return NVal(NRat{r.num, den.v, r.num_static, den.is_static});
      }
      case TokenKind::kPercent: {
        __int128 v = a.AsInt().v % b.AsInt().v;  // trunc, as compiled
        return NVal(NInt{v, true});
      }
      case TokenKind::kLess:
        return NVal(Less(a, b));
      case TokenKind::kGreater:
        return NVal(Less(b, a));
      case TokenKind::kLessEq: {
        NBool g = Less(b, a);
        return NVal(NBool{!g.v, g.is_static});
      }
      case TokenKind::kGreaterEq: {
        NBool l = Less(a, b);
        return NVal(NBool{!l.v, l.is_static});
      }
      case TokenKind::kEqEq:
        return NVal(Eq(a, b));
      case TokenKind::kNotEq: {
        NBool q = Eq(a, b);
        return NVal(NBool{!q.v, q.is_static});
      }
      case TokenKind::kAndAnd: {
        const NBool& x = a.AsBool();
        const NBool& y = b.AsBool();
        if (x.is_static) {
          return x.v ? NVal(y) : NVal(NBool{false, true});
        }
        if (y.is_static) {
          return y.v ? NVal(x) : NVal(NBool{false, true});
        }
        return NVal(NBool{x.v && y.v, false});
      }
      case TokenKind::kOrOr: {
        const NBool& x = a.AsBool();
        const NBool& y = b.AsBool();
        if (x.is_static) {
          return x.v ? NVal(NBool{true, true}) : NVal(y);
        }
        if (y.is_static) {
          return y.v ? NVal(NBool{true, true}) : NVal(x);
        }
        return NVal(NBool{x.v || y.v, false});
      }
      case TokenKind::kAmp:
      case TokenKind::kPipe:
      case TokenKind::kCaret:
        return NVal(IntBitwise(e.op, a.AsInt(), b.AsInt()));
      case TokenKind::kShl:
      case TokenKind::kShr: {
        size_t k = static_cast<size_t>(b.AsInt().v);
        return NVal(e.op == TokenKind::kShl ? IntShl(a.AsInt(), k)
                                            : IntShr(a.AsInt(), k));
      }
      default:
        throw NativeUnsupported("unknown binary operator");
    }
  }

  NVal EvalUnary(const Expr& e) {
    NVal a = Eval(*e.children[0]);
    if (e.op == TokenKind::kMinus) {
      return Negate(a);
    }
    const NBool& x = a.AsBool();
    return NVal(NBool{!x.v, x.is_static});
  }

  // ----- outputs -----

  void CollectOutputs(std::vector<__int128>* out) {
    for (const auto& [name, type] : outputs_) {
      const NVal& v = env_.at(name);
      CollectScalars(v, type, out);
    }
  }

  void CollectScalars(const NVal& v, const TypeNode& type,
                      std::vector<__int128>* out) {
    if (v.IsArr()) {
      for (const auto& elem : v.AsArr().elems) {
        CollectScalars(elem, type, out);
      }
      return;
    }
    switch (type.kind) {
      case TypeNode::Kind::kInt:
        out->push_back(v.AsInt().v);
        break;
      case TypeNode::Kind::kBool:
        out->push_back(v.AsBool().v ? 1 : 0);
        break;
      case TypeNode::Kind::kRational: {
        NRat r = ToRat(v);
        out->push_back(r.num);
        out->push_back(r.den);
        break;
      }
    }
  }

  const ProgramAst* ast_;
  std::map<std::string, NVal> env_;
  std::map<std::string, TypeNode> decl_types_;
  std::map<std::string, const FunctionDecl*> functions_;
  std::vector<std::pair<std::string, TypeNode>> outputs_;
  std::vector<std::set<std::string>> write_logs_;
  size_t call_depth_ = 0;
  std::optional<NVal> return_value_;
  const std::vector<int64_t>* inputs_ = nullptr;
  size_t next_input_ = 0;
};

// Width-respecting typed input sampler for differential testing: integers
// stay within min(width-ish, magnitude_bits) so native __int128 arithmetic
// cannot overflow for realistic programs; rational denominators are positive.
template <typename Rng>
std::vector<int64_t> SampleNativeInputs(const std::vector<IoSlotSpec>& slots,
                                        Rng& rng, size_t magnitude_bits) {
  std::vector<int64_t> inputs;
  inputs.reserve(slots.size());
  for (const auto& s : slots) {
    switch (s.kind) {
      case IoSlotSpec::Kind::kBool:
        inputs.push_back(static_cast<int64_t>(rng.NextBounded(2)));
        break;
      case IoSlotSpec::Kind::kInt:
      case IoSlotSpec::Kind::kRatNum: {
        size_t bits = s.width < magnitude_bits ? s.width : magnitude_bits;
        if (bits == 0) {
          bits = 1;
        }
        int64_t mag = static_cast<int64_t>(
            rng.NextBounded(uint64_t{1} << bits));
        // Mostly nonnegative: negative values legitimately reject in
        // bitwise-heavy programs, which starves functional coverage.
        bool negative = rng.NextBounded(8) == 0;
        inputs.push_back(negative ? -mag : mag);
        break;
      }
      case IoSlotSpec::Kind::kRatDen: {
        size_t bits = s.width < 8 ? s.width : size_t{8};
        if (bits == 0) {
          bits = 1;
        }
        int64_t den = 1 + static_cast<int64_t>(
                              rng.NextBounded((uint64_t{1} << bits) - 1));
        inputs.push_back(den);
        break;
      }
    }
  }
  return inputs;
}

}  // namespace zaatar

#endif  // SRC_ANALYSIS_SYMBOLIC_NATIVE_INTERP_H_
