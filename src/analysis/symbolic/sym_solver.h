// Constraint-side symbolic reduction: runs the same single-unknown
// propagation fixpoint as the determinism analyzer (DESIGN.md §10), but over
// SymPoly terms instead of a bit of "determined" state. Starting from
// input variables bound to fresh symbols, each equation that is linear in
// its one remaining unknown — with a *constant* coefficient — solves that
// unknown to a polynomial in the inputs. The result is a symbolic
// input→output map for the constraint system itself, directly comparable to
// the program-side normal form from sym_eval.h.
//
// Variables behind non-polynomial gadgets (bit decompositions, floor
// division, inverses) never acquire a polynomial and stay unknown; an
// equation that solves its unknown through an Invalid() operand propagates
// Invalid, so overflow degrades to sampling rather than a wrong verdict.
//
// Residual equations — fully resolved but not identically zero — restrict
// the accepted input domain (e.g. booleanity of a boolean input). Their
// presence caps an algebraic-equality verdict at "over the accepted domain".

#ifndef SRC_ANALYSIS_SYMBOLIC_SYM_SOLVER_H_
#define SRC_ANALYSIS_SYMBOLIC_SYM_SOLVER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/analysis/determinism.h"
#include "src/analysis/symbolic/sym_poly.h"
#include "src/constraints/linear_combination.h"

namespace zaatar {

template <typename F>
struct SymSolveResult {
  // polys[v] is set once variable v was solved to a polynomial in the
  // inputs (possibly Invalid() when term/degree caps overflowed en route).
  std::vector<std::optional<SymPoly<F>>> polys;
  // One entry per output variable, in layout order; Invalid() if unsolved.
  std::vector<SymPoly<F>> outputs;
  bool residual_guards = false;  // some resolved equation isn't identically 0
  bool has_opaque = false;       // some equation was too dense to expand

  bool AllOutputsValid() const {
    if (outputs.empty()) {
      return false;
    }
    for (const auto& p : outputs) {
      if (!p.valid()) {
        return false;
      }
    }
    return true;
  }

  size_t DegreeBound() const {
    size_t d = 1;
    for (const auto& p : outputs) {
      if (p.valid() && p.TotalDegree() > d) {
        d = p.TotalDegree();
      }
    }
    return d;
  }
};

template <typename F>
SymSolveResult<F> SymSolve(const std::vector<QuadEq<F>>& eqs,
                           const VariableLayout& layout) {
  SymSolveResult<F> result;
  const size_t n = layout.Total();
  result.polys.assign(n, std::nullopt);
  for (size_t i = 0; i < layout.num_inputs; i++) {
    result.polys[layout.FirstInput() + i] =
        SymPoly<F>::Symbol(static_cast<uint32_t>(i));
  }

  // var -> equations referencing it, for worklist re-activation.
  std::vector<std::vector<uint32_t>> occurrences(n);
  for (size_t j = 0; j < eqs.size(); j++) {
    if (eqs[j].opaque) {
      result.has_opaque = true;
      continue;
    }
    for (const auto& [v, c] : eqs[j].linear.terms()) {
      occurrences[v].push_back(static_cast<uint32_t>(j));
    }
    for (const auto& q : eqs[j].quad) {
      occurrences[q.a].push_back(static_cast<uint32_t>(j));
      occurrences[q.b].push_back(static_cast<uint32_t>(j));
    }
  }

  std::vector<uint32_t> worklist;
  std::vector<bool> queued(eqs.size(), false);
  for (size_t j = 0; j < eqs.size(); j++) {
    if (!eqs[j].opaque) {
      worklist.push_back(static_cast<uint32_t>(j));
      queued[j] = true;
    }
  }

  auto known = [&](uint32_t v) { return result.polys[v].has_value(); };

  while (!worklist.empty()) {
    uint32_t j = worklist.back();
    worklist.pop_back();
    queued[j] = false;
    const QuadEq<F>& eq = eqs[j];

    // Find the single unknown, if any, and check the equation is linear in
    // it with a constant coefficient:  A·u + B = 0.
    long unknown = -1;
    bool solvable = true;
    auto consider = [&](uint32_t v) {
      if (known(v)) {
        return;
      }
      if (unknown == -1) {
        unknown = v;
      } else if (static_cast<uint32_t>(unknown) != v) {
        solvable = false;
      }
    };
    for (const auto& [v, c] : eq.linear.terms()) {
      consider(v);
    }
    for (const auto& q : eq.quad) {
      consider(q.a);
      consider(q.b);
      if (!known(q.a) && !known(q.b)) {
        solvable = false;  // u·u or u·u': quadratic in the unknowns
      }
    }
    if (!solvable || unknown == -1) {
      continue;
    }
    uint32_t u = static_cast<uint32_t>(unknown);

    F coeff = F::Zero();          // constant part of A
    bool coeff_constant = true;   // A must be constant to invert
    SymPoly<F> residual = SymPoly<F>::Constant(eq.linear.constant());
    for (const auto& [v, c] : eq.linear.terms()) {
      if (v == u) {
        coeff += c;
      } else {
        residual = residual + *result.polys[v] * c;
      }
    }
    for (const auto& q : eq.quad) {
      if (q.a == u || q.b == u) {
        // linear in u with a polynomial coefficient: only invertible when
        // that coefficient is a constant polynomial.
        uint32_t partner = q.a == u ? q.b : q.a;
        const SymPoly<F>& p = *result.polys[partner];
        if (p.valid() && p.IsConstant()) {
          coeff += q.coeff * p.ConstantValue();
        } else {
          coeff_constant = false;
        }
      } else {
        residual = residual + (*result.polys[q.a] * *result.polys[q.b]) *
                                  q.coeff;
      }
    }
    if (!coeff_constant || coeff.IsZero()) {
      continue;
    }
    // u = -B / A
    result.polys[u] = residual * (-coeff.Inverse());
    for (uint32_t dep : occurrences[u]) {
      if (!queued[dep]) {
        worklist.push_back(dep);
        queued[dep] = true;
      }
    }
  }

  // Residual check: equations whose variables all resolved to valid
  // polynomials must vanish identically, or they restrict the domain.
  for (size_t j = 0; j < eqs.size(); j++) {
    const QuadEq<F>& eq = eqs[j];
    if (eq.opaque) {
      continue;
    }
    SymPoly<F> acc = SymPoly<F>::Constant(eq.linear.constant());
    bool all_known = true;
    for (const auto& [v, c] : eq.linear.terms()) {
      if (!known(v) || !result.polys[v]->valid()) {
        all_known = false;
        break;
      }
      acc = acc + *result.polys[v] * c;
    }
    if (all_known) {
      for (const auto& q : eq.quad) {
        if (!known(q.a) || !known(q.b) || !result.polys[q.a]->valid() ||
            !result.polys[q.b]->valid()) {
          all_known = false;
          break;
        }
        acc = acc + (*result.polys[q.a] * *result.polys[q.b]) * q.coeff;
      }
    }
    if (all_known && acc.valid() && !acc.IsZero()) {
      result.residual_guards = true;
      break;
    }
  }

  result.outputs.reserve(layout.num_outputs);
  for (size_t i = 0; i < layout.num_outputs; i++) {
    uint32_t v = static_cast<uint32_t>(layout.FirstOutput() + i);
    result.outputs.push_back(known(v) ? *result.polys[v]
                                      : SymPoly<F>::Invalid());
  }
  return result;
}

}  // namespace zaatar

#endif  // SRC_ANALYSIS_SYMBOLIC_SYM_SOLVER_H_
