// Top-level analysis entry points: run every zaatar-lint rule over a single
// constraint system, or over a whole compiled program (Ginger constraints,
// the Ginger->Zaatar transform, the R1CS, and the QAP encoding).
//
// The determinism analysis runs on BOTH constraint layers: the Ginger layer
// carries source-line attribution (findings point at program text), while
// the R1CS layer additionally covers the transform output — an
// underconstrained auxiliary product variable introduced by a buggy
// transform is only visible there.

#ifndef SRC_ANALYSIS_ANALYZER_H_
#define SRC_ANALYSIS_ANALYZER_H_

#include <string>
#include <utility>

#include "src/analysis/determinism.h"
#include "src/analysis/finding.h"
#include "src/analysis/pipeline_rules.h"
#include "src/analysis/structure.h"
#include "src/analysis/symbolic/equivalence.h"
#include "src/compiler/compile.h"
#include "src/constraints/ginger.h"
#include "src/constraints/qap.h"
#include "src/constraints/r1cs.h"

namespace zaatar {

struct AnalyzeOptions {
  bool determinism = true;   // ZL001 / ZL002
  bool structure = true;     // ZL003..ZL006, ZL010
  bool qap_shape = true;     // ZL020 (program analysis only)
  bool qap_tau_probe = true;
  bool equivalence = false;  // ZL021..ZL023 (source analysis only)
  EquivOptions equiv;
};

template <typename F>
AnalysisReport AnalyzeSystem(const GingerSystem<F>& g,
                             const AnalyzeOptions& options = {}) {
  AnalysisReport report;
  if (options.structure) {
    CheckStructure(g, &report);
  }
  if (options.determinism) {
    DeterminismAnalysis<F> det(LowerToIr(g), g.layout,
                               AnalysisLayer::kGinger);
    det.Run(&report);
  }
  return report;
}

template <typename F>
AnalysisReport AnalyzeR1cs(const R1cs<F>& r,
                           const AnalyzeOptions& options = {}) {
  AnalysisReport report;
  if (options.structure) {
    CheckStructure(r, &report);
  }
  if (options.determinism) {
    DeterminismAnalysis<F> det(LowerToIr(r), r.layout, AnalysisLayer::kR1cs);
    det.Run(&report);
  }
  return report;
}

// Analyzes every layer of a compiled program.
template <typename F>
AnalysisReport AnalyzeProgram(const CompiledProgram<F>& program,
                              const AnalyzeOptions& options = {}) {
  AnalysisReport report = AnalyzeSystem(program.ginger, options);
  CheckTransform(program.ginger, program.zaatar, &report);
  report.Merge(AnalyzeR1cs(program.zaatar.r1cs, options));
  if (options.qap_shape) {
    Qap<F> qap(program.zaatar.r1cs);
    CheckQapShape(qap, &report, options.qap_tau_probe);
  }
  return report;
}

// Analyzes a program from source: every compiled-layer rule, plus — when
// options.equivalence is set — the symbolic equivalence checker, which needs
// the source text to re-derive reference semantics independently of the
// compiler. The equivalence verdict is returned through `equiv_out` (when
// non-null) and rendered into ZL021/ZL022/ZL023 findings.
template <typename F>
AnalysisReport AnalyzeSource(const std::string& source,
                             const AnalyzeOptions& options = {},
                             EquivResult* equiv_out = nullptr) {
  CompiledProgram<F> program = CompileZlang<F>(source);
  AnalysisReport report = AnalyzeProgram(program, options);
  if (options.equivalence) {
    EquivResult r = ProveEquivalence<F>(source, options.equiv);
    EmitEquivFindings(r, &report);
    if (equiv_out != nullptr) {
      *equiv_out = std::move(r);
    }
  }
  return report;
}

}  // namespace zaatar

#endif  // SRC_ANALYSIS_ANALYZER_H_
