// Diagnostic stream for the constraint-system static analyzer
// (zaatar-lint). Every rule reports structured Findings into an
// AnalysisReport; the CLI renders them and gates CI on ERROR severity.
//
// A Finding pinpoints a layer of the compiled pipeline (Ginger constraints,
// the Ginger->Zaatar transform, the R1CS, or the QAP encoding) plus a
// constraint and/or variable index and — when the compiler plumbed source
// locations through — the zlang source line the constraint came from.

#ifndef SRC_ANALYSIS_FINDING_H_
#define SRC_ANALYSIS_FINDING_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace zaatar {

enum class Severity {
  kInfo = 0,
  kWarning,
  kError,
};

inline const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

// Which stage of the compiled pipeline a finding is anchored in.
enum class AnalysisLayer {
  kGinger = 0,
  kTransform,
  kR1cs,
  kQap,
};

inline const char* LayerName(AnalysisLayer l) {
  switch (l) {
    case AnalysisLayer::kGinger:
      return "ginger";
    case AnalysisLayer::kTransform:
      return "transform";
    case AnalysisLayer::kR1cs:
      return "r1cs";
    case AnalysisLayer::kQap:
      return "qap";
  }
  return "unknown";
}

struct AnalysisLocation {
  AnalysisLayer layer = AnalysisLayer::kGinger;
  long constraint = -1;      // constraint index, -1 = not constraint-scoped
  long variable = -1;        // variable index, -1 = not variable-scoped
  uint32_t source_line = 0;  // zlang line (0 = unknown / hand-built system)

  std::string ToString() const {
    std::string s = LayerName(layer);
    if (constraint >= 0) {
      s += ":c" + std::to_string(constraint);
    }
    if (variable >= 0) {
      s += ":w" + std::to_string(variable);
    }
    if (source_line != 0) {
      s += " (line " + std::to_string(source_line) + ")";
    }
    return s;
  }
};

struct Finding {
  Severity severity = Severity::kWarning;
  std::string rule_id;  // "ZL001" etc., see src/analysis/rules.h
  AnalysisLocation location;
  std::string message;
  // Concrete separating input attached by the symbolic equivalence checker
  // (ZL021/ZL022): one decimal signed integer per input slot, in slot order,
  // replayable through EncodeSignedInt + the witness solver. Empty for rules
  // that have no counterexample semantics.
  std::vector<std::string> counterexample;
  // Free-form witness annotation for ZL022 ("w7: 5 vs 6") or the divergence
  // description for ZL021.
  std::string counterexample_note;

  std::string Render() const {
    std::string s = std::string(SeverityName(severity)) + " [" + rule_id +
                    "] " + location.ToString() + ": " + message;
    if (!counterexample.empty()) {
      s += " [input =";
      for (const auto& v : counterexample) {
        s += " " + v;
      }
      s += "]";
    }
    if (!counterexample_note.empty()) {
      s += " (" + counterexample_note + ")";
    }
    return s;
  }
};

// Accumulates findings across rules and pipeline layers. Rules append;
// callers query counts / presence per rule id and render the stream.
class AnalysisReport {
 public:
  void Add(Finding f) { findings_.push_back(std::move(f)); }

  void Add(Severity severity, const char* rule_id, AnalysisLocation loc,
           std::string message) {
    Finding f;
    f.severity = severity;
    f.rule_id = rule_id;
    f.location = loc;
    f.message = std::move(message);
    findings_.push_back(std::move(f));
  }

  const std::vector<Finding>& findings() const { return findings_; }
  bool Empty() const { return findings_.empty(); }

  size_t CountSeverity(Severity s) const {
    size_t n = 0;
    for (const auto& f : findings_) {
      n += f.severity == s ? 1 : 0;
    }
    return n;
  }

  size_t NumErrors() const { return CountSeverity(Severity::kError); }
  size_t NumWarnings() const { return CountSeverity(Severity::kWarning); }
  bool HasErrors() const { return NumErrors() > 0; }

  size_t CountRule(const std::string& rule_id) const {
    size_t n = 0;
    for (const auto& f : findings_) {
      n += f.rule_id == rule_id ? 1 : 0;
    }
    return n;
  }

  bool HasRule(const std::string& rule_id) const {
    return CountRule(rule_id) > 0;
  }

  // Findings from another report, e.g. a per-layer sub-analysis.
  void Merge(const AnalysisReport& other) {
    findings_.insert(findings_.end(), other.findings_.begin(),
                     other.findings_.end());
  }

  // Renders up to max_findings findings (0 = all) plus a summary line.
  void Print(FILE* out, size_t max_findings = 0) const {
    size_t shown = 0;
    for (const auto& f : findings_) {
      if (max_findings != 0 && shown >= max_findings) {
        std::fprintf(out, "  ... %zu more finding(s) suppressed\n",
                     findings_.size() - shown);
        break;
      }
      std::fprintf(out, "  %s\n", f.Render().c_str());
      shown++;
    }
  }

  std::string Summary() const {
    return std::to_string(NumErrors()) + " error(s), " +
           std::to_string(NumWarnings()) + " warning(s), " +
           std::to_string(CountSeverity(Severity::kInfo)) + " note(s)";
  }

 private:
  std::vector<Finding> findings_;
};

}  // namespace zaatar

#endif  // SRC_ANALYSIS_FINDING_H_
