// The zaatar-lint rule catalog. Rule semantics, the determinism-propagation
// algorithm, and known limits are documented in DESIGN.md §10.
//
// Severity policy: a rule is ERROR when the condition it detects can admit a
// witness for a wrong output (soundness-relevant: an ACCEPTing proof of a
// false statement), and WARNING when it only indicates waste or a likely
// compiler bug that does not by itself widen the accepted set.

#ifndef SRC_ANALYSIS_RULES_H_
#define SRC_ANALYSIS_RULES_H_

#include <cstddef>

#include "src/analysis/finding.h"

namespace zaatar {

// (a) determinism analysis
inline constexpr const char* kRuleUnderconstrained = "ZL001";
// (b) dead variables
inline constexpr const char* kRuleDeadVariable = "ZL002";
// (c) trivial / duplicate / constant-only constraints
inline constexpr const char* kRuleTrivialConstraint = "ZL003";
inline constexpr const char* kRuleDuplicateConstraint = "ZL004";
inline constexpr const char* kRuleConstantConstraint = "ZL005";
inline constexpr const char* kRuleUnsatisfiableConstraint = "ZL006";
// (d) shape invariants
inline constexpr const char* kRuleIndexOutOfBounds = "ZL010";
inline constexpr const char* kRuleTransformMismatch = "ZL012";
inline constexpr const char* kRuleQapShape = "ZL020";
// (e) symbolic equivalence (src/analysis/symbolic/, DESIGN.md §14)
inline constexpr const char* kRuleEquivMismatch = "ZL021";
inline constexpr const char* kRuleUnderconstrainedProven = "ZL022";
inline constexpr const char* kRuleEquivUnknown = "ZL023";

struct RuleInfo {
  const char* id;
  Severity severity;
  const char* summary;
};

inline constexpr RuleInfo kRuleCatalog[] = {
    {"ZL001", Severity::kError,
     "underconstrained variable: a non-input variable is not uniquely "
     "determined from the inputs by the constraint set"},
    {"ZL002", Severity::kWarning,
     "dead variable: allocated in Z but appears in no constraint"},
    {"ZL003", Severity::kWarning,
     "trivial constraint: identically zero on every side (0 = 0)"},
    {"ZL004", Severity::kWarning,
     "duplicate constraint: equal to (or a scalar multiple of) an earlier "
     "constraint"},
    {"ZL005", Severity::kWarning,
     "constant-only constraint: references no variables and holds "
     "identically"},
    {"ZL006", Severity::kError,
     "unsatisfiable constant constraint: references no variables and never "
     "holds"},
    {"ZL010", Severity::kError,
     "variable index out of bounds for the declared layout"},
    {"ZL012", Severity::kError,
     "Ginger->Zaatar transform bookkeeping mismatch"},
    {"ZL020", Severity::kError,
     "QAP shape violation (divisor degree / row dimensions)"},
    {"ZL021", Severity::kError,
     "equivalence mismatch: a concrete input separates the source program "
     "from the compiled constraint system"},
    {"ZL022", Severity::kError,
     "underconstrainedness proven: a second satisfying witness exists for "
     "the same inputs (concrete witness pair attached)"},
    {"ZL023", Severity::kWarning,
     "equivalence unknown: the symbolic engine could neither prove "
     "equivalence nor construct a separating input"},
};

inline constexpr size_t kRuleCatalogSize =
    sizeof(kRuleCatalog) / sizeof(kRuleCatalog[0]);

}  // namespace zaatar

#endif  // SRC_ANALYSIS_RULES_H_
