// Cross-layer pipeline rules: Ginger->Zaatar transform bookkeeping (ZL012)
// and QAP shape invariants (ZL020).
//
// These rules re-derive the invariants the downstream protocol silently
// relies on instead of trusting the producing code: the transform's
// |Z'| = |Z| + K2 / |C'| = |C| + K2 accounting and the structural shape of
// its product rows, and — at the QAP layer — that the divisor polynomial
// D(t) = prod_{j=1..|C|} (t - j) really is the degree-|C| monic polynomial
// the divisibility argument (paper Appendix A.1) assumes, and that the
// verifier-side evaluation produces one row per variable plus the constant
// row.

#ifndef SRC_ANALYSIS_PIPELINE_RULES_H_
#define SRC_ANALYSIS_PIPELINE_RULES_H_

#include <string>
#include <vector>

#include "src/analysis/finding.h"
#include "src/analysis/rules.h"
#include "src/constraints/ginger.h"
#include "src/constraints/qap.h"
#include "src/constraints/transform.h"
#include "src/crypto/prg.h"
#include "src/poly/residue.h"

namespace zaatar {

// Checks a transform result against the Ginger system it came from.
template <typename F>
void CheckTransform(const GingerSystem<F>& g, const ZaatarTransform<F>& t,
                    AnalysisReport* report) {
  AnalysisLocation loc;
  loc.layer = AnalysisLayer::kTransform;
  const size_t k2 = t.products.size();

  if (t.ginger_num_unbound != g.layout.num_unbound) {
    report->Add(Severity::kError, kRuleTransformMismatch, loc,
                "transform recorded |Z_ginger| = " +
                    std::to_string(t.ginger_num_unbound) + " but the source "
                    "system has " + std::to_string(g.layout.num_unbound));
  }
  if (t.r1cs.layout.num_unbound != g.layout.num_unbound + k2) {
    report->Add(Severity::kError, kRuleTransformMismatch, loc,
                "layout bookkeeping broken: |Z_zaatar| = " +
                    std::to_string(t.r1cs.layout.num_unbound) +
                    " != |Z_ginger| + K2 = " +
                    std::to_string(g.layout.num_unbound + k2));
  }
  if (t.r1cs.layout.num_inputs != g.layout.num_inputs ||
      t.r1cs.layout.num_outputs != g.layout.num_outputs) {
    report->Add(Severity::kError, kRuleTransformMismatch, loc,
                "transform changed the input/output counts");
  }
  if (t.r1cs.NumConstraints() != g.NumConstraints() + k2) {
    report->Add(Severity::kError, kRuleTransformMismatch, loc,
                "|C_zaatar| = " + std::to_string(t.r1cs.NumConstraints()) +
                    " != |C_ginger| + K2 = " +
                    std::to_string(g.NumConstraints() + k2));
    return;  // product-row positions below assume the count invariant
  }
  if (!t.r1cs.source_lines.empty() &&
      t.r1cs.source_lines.size() != t.r1cs.NumConstraints()) {
    report->Add(Severity::kError, kRuleTransformMismatch, loc,
                "source-line table length does not match the constraint "
                "count");
  }

  // Product rows: constraint |C_ginger| + i must read
  //   (w_{remap(a_i)}) · (w_{remap(b_i)}) = w_aux_i
  // with aux_i landing inside the appended auxiliary region of Z.
  auto is_bare_var = [](const LinearCombination<F>& lc, uint32_t v) {
    return lc.TermCount() == 1 && lc.constant().IsZero() &&
           lc.terms()[0].first == v && lc.terms()[0].second.IsOne();
  };
  for (size_t i = 0; i < k2; i++) {
    const size_t j = g.NumConstraints() + i;
    const R1csConstraint<F>& rc = t.r1cs.constraints[j];
    AnalysisLocation ploc = loc;
    ploc.constraint = static_cast<long>(j);
    const uint32_t aux = static_cast<uint32_t>(g.layout.num_unbound + i);
    if (t.products[i].first >= g.layout.Total() ||
        t.products[i].second >= g.layout.Total()) {
      report->Add(Severity::kError, kRuleTransformMismatch, ploc,
                  "product table entry references a variable outside the "
                  "Ginger layout");
      continue;
    }
    if (!is_bare_var(rc.a, t.Remap(t.products[i].first)) ||
        !is_bare_var(rc.b, t.Remap(t.products[i].second)) ||
        !is_bare_var(rc.c, aux)) {
      report->Add(Severity::kError, kRuleTransformMismatch, ploc,
                  "product row #" + std::to_string(i) +
                      " does not have the shape w_a · w_b = aux_i");
    }
  }
}

// QAP shape invariants, checked against the constraint system the QAP wraps.
// `tau_probe` controls whether EvaluateAtTau is exercised (it materializes
// O(|variables|) rows; cheap, but callers analyzing many programs may skip
// it).
template <typename F>
void CheckQapShape(const Qap<F>& qap, AnalysisReport* report,
                   bool tau_probe = true) {
  AnalysisLocation loc;
  loc.layer = AnalysisLayer::kQap;
  const R1cs<F>& cs = qap.constraint_system();
  const size_t m = cs.NumConstraints();

  if (qap.Degree() != m) {
    report->Add(Severity::kError, kRuleQapShape, loc,
                "QAP degree " + std::to_string(qap.Degree()) +
                    " does not match the constraint count " +
                    std::to_string(m));
  }

  // D(t) = prod_{j=1..m} (t - j): monic of degree m, vanishing at each
  // interpolation point and equal to (-1)^m · m! at zero.
  Polynomial<F> d = qap.Divisor();
  if (d.Degree() != static_cast<long>(m)) {
    report->Add(Severity::kError, kRuleQapShape, loc,
                "divisor polynomial has degree " + std::to_string(d.Degree()) +
                    ", expected |C| = " + std::to_string(m));
  } else if (!d.LeadingCoefficient().IsOne()) {
    report->Add(Severity::kError, kRuleQapShape, loc,
                "divisor polynomial is not monic");
  } else {
    F expect_at_zero = F::One();
    for (size_t j = 1; j <= m; j++) {
      expect_at_zero *= -F::FromUint(j);
    }
    if (d.Evaluate(F::Zero()) != expect_at_zero) {
      report->Add(Severity::kError, kRuleQapShape, loc,
                  "divisor polynomial disagrees with prod (t - j) at t = 0");
    }
  }

  if (tau_probe && m > 0) {
    // Any point outside {0..m} is a valid probe; m+1 is deterministic.
    const F tau = F::FromUint(m + 1);
    auto ev_or = qap.EvaluateAtTau(tau);
    if (!ev_or.ok()) {
      report->Add(Severity::kError, kRuleQapShape, loc,
                  "EvaluateAtTau rejected a probe point outside the "
                  "interpolation set: " +
                      ev_or.status().ToString());
      return;
    }
    const auto& ev = *ev_or;
    const size_t rows = cs.NumVariables() + 1;
    if (ev.a_rows.size() != rows || ev.b_rows.size() != rows ||
        ev.c_rows.size() != rows) {
      report->Add(Severity::kError, kRuleQapShape, loc,
                  "EvaluateAtTau produced " + std::to_string(ev.a_rows.size()) +
                      " rows, expected |variables| + 1 = " +
                      std::to_string(rows));
    }
    if (ev.d_tau.IsZero()) {
      report->Add(Severity::kError, kRuleQapShape, loc,
                  "D(tau) = 0 at a point outside the interpolation set");
    } else if (d.Degree() == static_cast<long>(m) &&
               d.Evaluate(tau) != ev.d_tau) {
      report->Add(Severity::kError, kRuleQapShape, loc,
                  "barycentric D(tau) disagrees with the materialized "
                  "divisor polynomial");
    }
  }

  // Residue-domain prover probes: the divisor check above validates the
  // coefficient-form D(t), but ComputeH never touches it — the quotient
  // comes from the cached Newton inverse of rev(D) in CRT evaluation form.
  // Re-derive that cache's defining identity instead of trusting it.
  if (tau_probe && m > 0 && d.Degree() == static_cast<long>(m)) {
    const auto& ctx = qap.Prover();
    // rev_m(D) · inv ≡ 1 (mod x^{m+1}): multiply through the very NTT
    // images ComputeH uses for the quotient, then fold and compare.
    ResiduePoly<F> rev_d = ToResidue(d.Reverse(m), m + 1, *ctx.basis, 1);
    ResiduePoly<F> prod =
        ResiduePoly<F>::MulImages(rev_d, ctx.inv_images, m + 1, 1);
    std::vector<F> unit = prod.ToCoefficients(1);
    bool is_unit = unit[0].IsOne();
    for (size_t i = 1; i < unit.size() && is_unit; i++) {
      is_unit = unit[i].IsZero();
    }
    if (!is_unit) {
      report->Add(Severity::kError, kRuleQapShape, loc,
                  "cached prover inverse is not rev(D)^{-1} mod x^{|C|+1}: "
                  "residue-domain division would produce wrong quotients");
    }

    // Small systems get a full end-to-end differential: the residue
    // pipeline must reproduce the frozen coefficient-form path bit for bit
    // on an arbitrary (non-satisfying) assignment.
    if (m <= 256) {
      Prg probe_prg(0x5eed);
      std::vector<F> w = probe_prg.NextFieldVector<F>(cs.layout.Total());
      auto fast = qap.ComputeH(w);
      auto slow = qap.ComputeHNaive(w);
      if (fast.h != slow.h || fast.exact != slow.exact) {
        report->Add(Severity::kError, kRuleQapShape, loc,
                    "residue-pipeline ComputeH diverges from the "
                    "coefficient-form reference on a probe assignment");
      }
    }
  }
}

}  // namespace zaatar

#endif  // SRC_ANALYSIS_PIPELINE_RULES_H_
