// Structural lint rules: trivial / constant-only / unsatisfiable
// constraints (ZL003/ZL005/ZL006), duplicate constraints up to scaling
// (ZL004), and variable-index bound checks (ZL010), over both constraint
// formats.
//
// Duplicate detection normalizes each constraint to a canonical form before
// hashing: Ginger constraints are scaled so the leading coefficient is 1;
// R1CS constraints use the wider equivalence (a, b, c) ~ (αa, βb, αβc) plus
// the a·b = b·a side symmetry, so scalar multiples and side-swapped copies
// of a row are recognized as duplicates. Redundant rows are not a soundness
// problem — they are wasted prover work and usually a compiler bug, hence
// WARNING severity.

#ifndef SRC_ANALYSIS_STRUCTURE_H_
#define SRC_ANALYSIS_STRUCTURE_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/determinism.h"  // analysis_internal::CanonicalizeQuad
#include "src/analysis/finding.h"
#include "src/analysis/rules.h"
#include "src/constraints/ginger.h"
#include "src/constraints/r1cs.h"

namespace zaatar {

namespace analysis_internal {

template <typename F>
std::string SerializeLc(const LinearCombination<F>& lc) {
  std::string s;
  for (const auto& t : lc.terms()) {
    s += "v" + std::to_string(t.first) + "*" + t.second.ToCanonical().ToHex();
  }
  s += "+" + lc.constant().ToCanonical().ToHex();
  return s;
}

// Canonical serialization of a Ginger constraint: quad terms canonicalized,
// linear compacted, everything scaled so the leading coefficient (first quad
// coefficient, else first linear coefficient) is 1. Scaling a constraint
// ... = 0 by any nonzero field element preserves its solution set.
template <typename F>
std::string CanonicalKey(const GingerConstraint<F>& c) {
  LinearCombination<F> lin = c.linear;
  lin.Compact();
  std::vector<QuadTerm<F>> quad = c.quad;
  CanonicalizeQuad(&quad);
  F lead = F::One();
  if (!quad.empty()) {
    lead = quad[0].coeff;
  } else if (lin.TermCount() > 0) {
    lead = lin.terms()[0].second;
  }
  F scale = lead.Inverse();
  std::string s;
  for (const auto& t : quad) {
    s += "q" + std::to_string(t.a) + "," + std::to_string(t.b) + "*" +
         (t.coeff * scale).ToCanonical().ToHex();
  }
  s += "|";
  LinearCombination<F> scaled = lin * scale;
  s += SerializeLc(scaled);
  return s;
}

// Canonical serialization of an R1CS row. Each side is scaled to a leading
// coefficient of 1 (constraints (a,b,c) and (αa, βb, αβc) accept the same
// witnesses), and the two product sides are ordered so a·b = b·a collapses.
template <typename F>
std::string CanonicalKey(const R1csConstraint<F>& c) {
  auto lead_of = [](const LinearCombination<F>& lc) {
    if (lc.TermCount() > 0) {
      return lc.terms()[0].second;
    }
    return lc.constant().IsZero() ? F::One() : lc.constant();
  };
  LinearCombination<F> a = c.a;
  LinearCombination<F> b = c.b;
  LinearCombination<F> cc = c.c;
  a.Compact();
  b.Compact();
  cc.Compact();
  F la = lead_of(a);
  F lb = lead_of(b);
  std::string sa = SerializeLc(a * la.Inverse());
  std::string sb = SerializeLc(b * lb.Inverse());
  std::string sc = SerializeLc(cc * (la * lb).Inverse());
  if (sb < sa) {
    std::swap(sa, sb);
  }
  return sa + "|" + sb + "|" + sc;
}

}  // namespace analysis_internal

template <typename F>
void CheckStructure(const GingerSystem<F>& g, AnalysisReport* report) {
  const long total = static_cast<long>(g.layout.Total());
  std::map<std::string, size_t> seen;
  for (size_t j = 0; j < g.constraints.size(); j++) {
    const GingerConstraint<F>& c = g.constraints[j];
    AnalysisLocation loc;
    loc.layer = AnalysisLayer::kGinger;
    loc.constraint = static_cast<long>(j);
    loc.source_line = g.SourceLineOf(j);

    if (c.MaxVariable() >= total) {
      report->Add(Severity::kError, kRuleIndexOutOfBounds, loc,
                  "constraint references variable " +
                      std::to_string(c.MaxVariable()) +
                      " but the layout declares only " +
                      std::to_string(total) + " variables");
      continue;  // out-of-range rows are excluded from the duplicate map
    }
    if (c.IsEmpty()) {
      if (c.linear.constant().IsZero()) {
        report->Add(Severity::kWarning, kRuleTrivialConstraint, loc,
                    "constraint is identically zero (0 = 0)");
      } else {
        report->Add(Severity::kError, kRuleUnsatisfiableConstraint, loc,
                    "constraint references no variables and its constant "
                    "term is nonzero: no witness can satisfy the system");
      }
      continue;
    }
    std::string key = analysis_internal::CanonicalKey(c);
    auto [it, inserted] = seen.emplace(std::move(key), j);
    if (!inserted) {
      report->Add(Severity::kWarning, kRuleDuplicateConstraint, loc,
                  "constraint is a scalar multiple of constraint #" +
                      std::to_string(it->second));
    }
  }
}

template <typename F>
void CheckStructure(const R1cs<F>& r, AnalysisReport* report) {
  const long total = static_cast<long>(r.layout.Total());
  std::map<std::string, size_t> seen;
  for (size_t j = 0; j < r.constraints.size(); j++) {
    const R1csConstraint<F>& c = r.constraints[j];
    AnalysisLocation loc;
    loc.layer = AnalysisLayer::kR1cs;
    loc.constraint = static_cast<long>(j);
    loc.source_line = r.SourceLineOf(j);

    if (c.MaxVariable() >= total) {
      report->Add(Severity::kError, kRuleIndexOutOfBounds, loc,
                  "constraint references variable " +
                      std::to_string(c.MaxVariable()) +
                      " but the layout declares only " +
                      std::to_string(total) + " variables");
      continue;
    }
    if (c.a.IsConstant() && c.b.IsConstant() && c.c.IsConstant()) {
      const F residue =
          c.a.constant() * c.b.constant() - c.c.constant();
      if (!residue.IsZero()) {
        report->Add(Severity::kError, kRuleUnsatisfiableConstraint, loc,
                    "constant-only constraint never holds: no witness can "
                    "satisfy the system");
      } else if (c.IsEmpty()) {
        report->Add(Severity::kWarning, kRuleTrivialConstraint, loc,
                    "constraint is identically zero (0·0 = 0)");
      } else {
        report->Add(Severity::kWarning, kRuleConstantConstraint, loc,
                    "constraint references no variables and holds "
                    "identically: it constrains nothing");
      }
      continue;
    }
    std::string key = analysis_internal::CanonicalKey(c);
    auto [it, inserted] = seen.emplace(std::move(key), j);
    if (!inserted) {
      report->Add(Severity::kWarning, kRuleDuplicateConstraint, loc,
                  "constraint is equivalent (up to per-side scaling and "
                  "side order) to constraint #" +
                      std::to_string(it->second));
    }
  }
}

}  // namespace zaatar

#endif  // SRC_ANALYSIS_STRUCTURE_H_
