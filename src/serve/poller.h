// Readiness multiplexing for the serve daemon's I/O thread: a small Poller
// interface with an epoll(7) implementation on Linux and a portable poll(2)
// fallback. Both are runtime-selectable (MakePoller) so the tests exercise
// the fallback path on every platform, not just where epoll is missing.
//
// The interface is level-triggered everywhere — EpollPoller deliberately
// does not use EPOLLET — because the server's backpressure scheme depends on
// it: a connection with an in-flight verify job disarms its read interest,
// and when the job completes the re-armed level-triggered fd immediately
// reports the bytes that arrived in between. Edge-triggered would need a
// drain-until-EAGAIN loop on the I/O thread, exactly the unbounded work the
// worker pool exists to avoid.

#ifndef SRC_SERVE_POLLER_H_
#define SRC_SERVE_POLLER_H_

#include <poll.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace zaatar {
namespace serve {

struct PollerEvent {
  uint64_t tag = 0;  // caller-chosen identity (connection id, listener, ...)
  bool readable = false;
  bool writable = false;
  // POLLERR/POLLHUP: the owner should read (to collect EOF/the error) and
  // tear the connection down.
  bool hangup = false;
};

class Poller {
 public:
  virtual ~Poller() = default;

  virtual Status Add(int fd, uint64_t tag, bool want_read,
                     bool want_write) = 0;
  virtual Status Update(int fd, uint64_t tag, bool want_read,
                        bool want_write) = 0;
  virtual Status Remove(int fd) = 0;

  // Blocks up to timeout_ms (-1 = forever, 0 = non-blocking probe) and
  // returns the ready set — possibly empty on timeout. EINTR retries
  // internally with the same timeout.
  virtual StatusOr<std::vector<PollerEvent>> Wait(int timeout_ms) = 0;

  virtual const char* name() const = 0;
};

// Portable fallback: rebuilds the pollfd array from the registration map on
// every Wait. O(n) per wait, which is fine at the daemon's connection caps.
class PollPoller final : public Poller {
 public:
  Status Add(int fd, uint64_t tag, bool want_read, bool want_write) override {
    if (fds_.count(fd) != 0) {
      return MalformedError("poller: fd already registered");
    }
    fds_[fd] = Registration{tag, want_read, want_write};
    return Status::Ok();
  }

  Status Update(int fd, uint64_t tag, bool want_read,
                bool want_write) override {
    auto it = fds_.find(fd);
    if (it == fds_.end()) {
      return MalformedError("poller: update of unregistered fd");
    }
    it->second = Registration{tag, want_read, want_write};
    return Status::Ok();
  }

  Status Remove(int fd) override {
    if (fds_.erase(fd) == 0) {
      return MalformedError("poller: remove of unregistered fd");
    }
    return Status::Ok();
  }

  StatusOr<std::vector<PollerEvent>> Wait(int timeout_ms) override {
    std::vector<struct pollfd> pfds;
    std::vector<uint64_t> tags;
    pfds.reserve(fds_.size());
    tags.reserve(fds_.size());
    for (const auto& [fd, reg] : fds_) {
      struct pollfd p;
      p.fd = fd;
      p.events = static_cast<short>((reg.want_read ? POLLIN : 0) |
                                    (reg.want_write ? POLLOUT : 0));
      p.revents = 0;
      pfds.push_back(p);
      tags.push_back(reg.tag);
    }
    for (;;) {
      int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
      if (rc < 0) {
        if (errno == EINTR) {
          continue;
        }
        return TruncatedError(std::string("poll failed: ") +
                              std::strerror(errno));
      }
      break;
    }
    std::vector<PollerEvent> out;
    for (size_t i = 0; i < pfds.size(); i++) {
      if (pfds[i].revents == 0) {
        continue;
      }
      PollerEvent ev;
      ev.tag = tags[i];
      ev.readable = (pfds[i].revents & POLLIN) != 0;
      ev.writable = (pfds[i].revents & POLLOUT) != 0;
      ev.hangup = (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out.push_back(ev);
    }
    return out;
  }

  const char* name() const override { return "poll"; }

 private:
  struct Registration {
    uint64_t tag = 0;
    bool want_read = false;
    bool want_write = false;
  };
  std::map<int, Registration> fds_;
};

#ifdef __linux__

class EpollPoller final : public Poller {
 public:
  static StatusOr<std::unique_ptr<Poller>> Create() {
    int fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (fd < 0) {
      return TruncatedError(std::string("epoll_create1 failed: ") +
                            std::strerror(errno));
    }
    return std::unique_ptr<Poller>(new EpollPoller(fd));
  }

  ~EpollPoller() override { ::close(epfd_); }

  Status Add(int fd, uint64_t tag, bool want_read, bool want_write) override {
    return Ctl(EPOLL_CTL_ADD, fd, tag, want_read, want_write);
  }

  Status Update(int fd, uint64_t tag, bool want_read,
                bool want_write) override {
    return Ctl(EPOLL_CTL_MOD, fd, tag, want_read, want_write);
  }

  Status Remove(int fd) override {
    struct epoll_event unused {};
    if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &unused) != 0) {
      return MalformedError(std::string("epoll_ctl(DEL) failed: ") +
                            std::strerror(errno));
    }
    return Status::Ok();
  }

  StatusOr<std::vector<PollerEvent>> Wait(int timeout_ms) override {
    std::vector<struct epoll_event> events(64);
    int rc;
    for (;;) {
      rc = ::epoll_wait(epfd_, events.data(),
                        static_cast<int>(events.size()), timeout_ms);
      if (rc < 0) {
        if (errno == EINTR) {
          continue;
        }
        return TruncatedError(std::string("epoll_wait failed: ") +
                              std::strerror(errno));
      }
      break;
    }
    std::vector<PollerEvent> out;
    out.reserve(static_cast<size_t>(rc));
    for (int i = 0; i < rc; i++) {
      PollerEvent ev;
      ev.tag = events[static_cast<size_t>(i)].data.u64;
      const uint32_t mask = events[static_cast<size_t>(i)].events;
      ev.readable = (mask & EPOLLIN) != 0;
      ev.writable = (mask & EPOLLOUT) != 0;
      ev.hangup = (mask & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(ev);
    }
    return out;
  }

  const char* name() const override { return "epoll"; }

 private:
  explicit EpollPoller(int epfd) : epfd_(epfd) {}

  Status Ctl(int op, int fd, uint64_t tag, bool want_read, bool want_write) {
    struct epoll_event ev {};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.u64 = tag;
    if (::epoll_ctl(epfd_, op, fd, &ev) != 0) {
      return MalformedError(std::string("epoll_ctl failed: ") +
                            std::strerror(errno));
    }
    return Status::Ok();
  }

  int epfd_;
};

#endif  // __linux__

// epoll where available (unless the caller opts out), poll everywhere else.
inline std::unique_ptr<Poller> MakePoller(bool prefer_epoll = true) {
#ifdef __linux__
  if (prefer_epoll) {
    auto created = EpollPoller::Create();
    if (created.ok()) {
      return std::move(created).value();
    }
  }
#else
  (void)prefer_epoll;
#endif
  return std::make_unique<PollPoller>();
}

}  // namespace serve
}  // namespace zaatar

#endif  // SRC_SERVE_POLLER_H_
