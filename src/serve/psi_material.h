// Field/backend-typed implementation of the cache's PsiMaterial and
// BatchVerifier interfaces, plus the builder the daemon plugs into its
// AmortizationCache. This is VERIFIER code: it compiles the named Ψ, runs
// query generation and the Enc(r)/key setup once, freezes the serialized
// SetupMessage frame, and mints per-connection VerifierSessions that all
// adopt the one shared, immutable VerifierSetup (the shared_ptr ctor added
// for exactly this). Prover-side code must never include this header.

#ifndef SRC_SERVE_PSI_MATERIAL_H_
#define SRC_SERVE_PSI_MATERIAL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/argument/argument.h"
#include "src/compiler/compile.h"
#include "src/constraints/qap.h"
#include "src/crypto/prg.h"
#include "src/field/fields.h"
#include "src/pcp/params.h"
#include "src/pcp/zaatar_pcp.h"
#include "src/protocol/verifier_session.h"
#include "src/serve/amortization_cache.h"
#include "src/serve/app_registry.h"
#include "src/serve/messages.h"
#include "src/util/serialize.h"
#include "src/util/status.h"
#include "src/util/stopwatch.h"

namespace zaatar {
namespace serve {

// Decodes one kProve payload for field F:
//   [field vector: inputs][field vector: outputs][remaining: ProofMessage]
// and answers with the kVerdict payload. The inputs/outputs geometry is
// screened against the program layout (a wrong count is a connection-level
// typed error — the statement itself is garbled); the proof bytes are
// untrusted and flow through the session's verdict machinery, so hostile
// proofs consume their instance slot with a reject, never an error.
template <typename F>
class TypedBatchVerifier final : public BatchVerifier {
 public:
  using Adapter = ZaatarAdapter<F>;

  TypedBatchVerifier(
      std::shared_ptr<const CompiledProgram<F>> program,
      std::shared_ptr<const typename Argument<F, Adapter>::VerifierSetup>
          setup)
      : program_(std::move(program)), session_(std::move(setup)) {}

  StatusOr<std::vector<uint8_t>> HandleProve(
      const std::vector<uint8_t>& payload) override {
    ByteReader r(payload);
    ZAATAR_ASSIGN_OR_RETURN(std::vector<F> inputs, GetFieldVector<F>(&r));
    ZAATAR_ASSIGN_OR_RETURN(std::vector<F> outputs, GetFieldVector<F>(&r));
    if (inputs.size() != program_->ginger.layout.num_inputs) {
      return ShapeMismatchError(
          "prove carries " + std::to_string(inputs.size()) + " inputs, Ψ has " +
          std::to_string(program_->ginger.layout.num_inputs));
    }
    if (outputs.size() != program_->ginger.layout.num_outputs) {
      return ShapeMismatchError(
          "prove carries " + std::to_string(outputs.size()) +
          " outputs, Ψ has " +
          std::to_string(program_->ginger.layout.num_outputs));
    }
    std::vector<uint8_t> proof_bytes(payload.begin() +
                                         static_cast<ptrdiff_t>(r.position()),
                                     payload.end());
    const std::vector<F> bound = program_->BoundValues(inputs, outputs);
    ZAATAR_ASSIGN_OR_RETURN(VerifyInstanceResult result,
                            session_.HandleProof(proof_bytes, bound));
    decided_++;
    if (result.accepted()) {
      accepted_++;
    }
    return session_.EmitVerdict();
  }

  size_t instances_decided() const override { return decided_; }
  size_t instances_accepted() const override { return accepted_; }

 private:
  std::shared_ptr<const CompiledProgram<F>> program_;
  protocol::VerifierSession<F, Adapter> session_;
  size_t decided_ = 0;
  size_t accepted_ = 0;
};

template <typename F>
class TypedPsiMaterial final : public PsiMaterial {
 public:
  using Adapter = ZaatarAdapter<F>;
  using Setup = typename Argument<F, Adapter>::VerifierSetup;

  TypedPsiMaterial(std::shared_ptr<const CompiledProgram<F>> program,
                   std::shared_ptr<const Setup> setup, double build_seconds)
      : program_(std::move(program)),
        setup_(std::move(setup)),
        frame_(setup_->ToSetupMessage().Serialize()),
        build_seconds_(build_seconds) {}

  const std::vector<uint8_t>& setup_frame() const override { return frame_; }

  std::unique_ptr<BatchVerifier> NewBatch() const override {
    return std::make_unique<TypedBatchVerifier<F>>(program_, setup_);
  }

  size_t memory_bytes() const override {
    // The serialized frame plus the in-memory setup it was framed from;
    // the 2x is a deliberate over- rather than under-estimate.
    return frame_.size() * 2;
  }

  double build_seconds() const override { return build_seconds_; }

 private:
  std::shared_ptr<const CompiledProgram<F>> program_;
  std::shared_ptr<const Setup> setup_;
  std::vector<uint8_t> frame_;
  double build_seconds_;
};

// The full per-Ψ build: resolve the registry entry, compile, generate
// queries, run the commitment setup. This is the multi-second cost the
// cache exists to amortize; it runs on a worker thread, gated by the cache's
// per-key latch so concurrent Hellos build once.
inline StatusOr<std::shared_ptr<PsiMaterial>> BuildPsiMaterialF128(
    const std::string& psi, uint64_t seed, const PcpParams& params) {
  using F = F128;
  using Adapter = ZaatarAdapter<F>;
  ZAATAR_ASSIGN_OR_RETURN(App<F> app, MakeRegisteredAppF128(psi));
  Stopwatch sw;
  auto program = std::make_shared<const CompiledProgram<F>>(
      CompileZlang<F>(app.source));
  Prg prg(seed);
  Qap<F> qap(program->zaatar.r1cs);
  typename ZaatarPcp<F>::Queries queries =
      ZaatarPcp<F>::GenerateQueries(qap, params, prg);
  const double query_generation_s = sw.ElapsedSeconds();
  auto setup =
      std::make_shared<const typename Argument<F, Adapter>::VerifierSetup>(
          Argument<F, Adapter>::Setup(std::move(queries), prg,
                                      query_generation_s));
  return std::shared_ptr<PsiMaterial>(std::make_shared<TypedPsiMaterial<F>>(
      std::move(program), std::move(setup), sw.ElapsedSeconds()));
}

// The cache Builder a daemon installs: dispatches on the Hello field tag.
inline AmortizationCache::Builder MakePsiBuilder(PcpParams params = {}) {
  return [params](const std::string& psi, uint8_t field_tag,
                  uint64_t seed) -> StatusOr<std::shared_ptr<PsiMaterial>> {
    if (field_tag == kFieldTagF128) {
      return BuildPsiMaterialF128(psi, seed, params);
    }
    return MalformedError("unsupported field tag " +
                          std::to_string(field_tag));
  };
}

}  // namespace serve
}  // namespace zaatar

#endif  // SRC_SERVE_PSI_MATERIAL_H_
