// zaatar-serve: a standing multi-client verifier daemon. One I/O thread
// runs a non-blocking readiness loop (epoll, poll fallback) over an AF_UNIX
// listening socket and every client connection; a fixed WorkerPool runs the
// expensive steps (per-Ψ setup builds, proof verification) off the I/O
// thread; the AmortizationCache shares per-Ψ setup material across
// connections. DESIGN.md §16 describes the architecture.
//
// Backpressure discipline — the properties the saturation tests pin:
//   - At most ONE in-flight worker job per connection; while it runs, the
//     connection's read interest is disarmed, so the kernel socket buffer
//     (not daemon memory) absorbs a flooding client.
//   - Frames already parsed queue per-connection up to a small cap; past it
//     the connection dies with a typed error (a protocol-abusing client,
//     since the one-in-flight rule means an honest one never gets there).
//   - The worker queue is globally bounded; a full queue REFUSES the frame
//     with a typed kResourceExhausted error the client may retry, and the
//     connection stays healthy.
//   - Admission control: connections past max_connections get the same
//     typed rejection at accept time, then close.
//   - Handshake and idle deadlines sweep dead connections, so a client that
//     connects and stalls cannot hold a slot forever.
//
// Threading: the connection table is owned exclusively by the I/O thread.
// Workers communicate results only through the completion queue + wakeup
// pipe, and touch per-connection state only via shared_ptrs captured into
// the job (BatchVerifier), so a connection that dies mid-job just drops the
// completion on the floor.

#ifndef SRC_SERVE_SERVER_H_
#define SRC_SERVE_SERVER_H_

#include <fcntl.h>
#include <unistd.h>

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/protocol/transport.h"
#include "src/serve/amortization_cache.h"
#include "src/serve/messages.h"
#include "src/serve/poller.h"
#include "src/serve/worker_pool.h"
#include "src/util/status.h"
#include "src/util/stopwatch.h"

namespace zaatar {
namespace serve {

struct ServerOptions {
  std::string socket_path;

  size_t workers = 2;
  size_t max_queue = 32;           // worker-pool job bound (global)
  size_t max_connections = 32;     // admission control at accept
  size_t max_pending_frames = 16;  // parsed-but-unprocessed frames per conn

  std::chrono::milliseconds handshake_deadline{30000};
  std::chrono::milliseconds idle_deadline{120000};

  bool prefer_epoll = true;
  AmortizationCache::Options cache;
};

class Server {
 public:
  // `builder` produces per-Ψ material on cache misses (production:
  // MakePsiBuilder from psi_material.h; tests substitute stubs to drive
  // saturation without cryptography).
  Server(ServerOptions options, AmortizationCache::Builder builder)
      : options_(options), cache_(options.cache, std::move(builder)) {}

  ~Server() { Stop(); }

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the socket, spins up workers and the I/O thread. Returns once the
  // daemon is accepting (a client may connect immediately after).
  Status Start() {
    if (io_thread_.joinable()) {
      return PhaseViolationError("server already started");
    }
    ZAATAR_ASSIGN_OR_RETURN(
        auto listener, protocol::UnixListener::Bind(options_.socket_path));
    listener_ = std::make_unique<protocol::UnixListener>(std::move(listener));
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      listener_.reset();
      return TruncatedError(std::string("pipe failed: ") +
                            std::strerror(errno));
    }
    wakeup_rd_ = pipe_fds[0];
    wakeup_wr_ = pipe_fds[1];
    for (int fd : {wakeup_rd_, wakeup_wr_}) {
      const int flags = ::fcntl(fd, F_GETFL, 0);
      if (flags >= 0) {
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
      }
    }
    poller_ = MakePoller(options_.prefer_epoll);
    ZAATAR_RETURN_IF_ERROR(poller_->Add(listener_->fd(), kListenerTag,
                                        /*want_read=*/true,
                                        /*want_write=*/false));
    ZAATAR_RETURN_IF_ERROR(poller_->Add(wakeup_rd_, kWakeupTag,
                                        /*want_read=*/true,
                                        /*want_write=*/false));
    pool_ = std::make_unique<WorkerPool>(options_.workers, options_.max_queue,
                                         &metrics_);
    stopping_.store(false, std::memory_order_release);
    io_thread_ = std::thread([this] { Run(); });
    return Status::Ok();
  }

  // Idempotent; joins the I/O thread and the pool. Open connections are
  // closed without ceremony (clients see EOF, a typed kTruncated).
  void Stop() {
    if (io_thread_.joinable()) {
      stopping_.store(true, std::memory_order_release);
      Wake();
      io_thread_.join();
    }
    if (pool_ != nullptr) {
      pool_->Stop();
    }
    if (wakeup_rd_ >= 0) {
      ::close(wakeup_rd_);
      ::close(wakeup_wr_);
      wakeup_rd_ = wakeup_wr_ = -1;
    }
    poller_.reset();
    listener_.reset();
  }

  bool stop_requested() const {
    return stopping_.load(std::memory_order_acquire);
  }

  AmortizationCache& cache() { return cache_; }
  obs::Metrics& metrics() { return metrics_; }
  const ServerOptions& options() const { return options_; }

  // The /stats document (schema zaatar.serve.stats.v1): connection and
  // queue state, cache hit/miss/evict accounting, per-tenant verdict and
  // latency counters, and the full obs metrics registry. Deterministically
  // ordered (std::map everywhere) and safe from any thread.
  std::string StatsJson() const {
    using obs::internal::AppendJsonString;
    using obs::internal::AppendU64;
    std::string out = "{\n  \"schema\": \"zaatar.serve.stats.v1\",\n";
    out += "  \"poller\": ";
    AppendJsonString(poller_ != nullptr ? poller_->name() : "none", &out);
    out += ",\n  \"connections\": {\"open\": ";
    AppendU64(open_connections_.load(std::memory_order_relaxed), &out);
    out += ", \"accepted\": ";
    AppendU64(accepted_connections_.load(std::memory_order_relaxed), &out);
    out += ", \"rejected\": ";
    AppendU64(rejected_connections_.load(std::memory_order_relaxed), &out);
    out += "},\n  \"queue\": {\"depth\": ";
    AppendU64(pool_ != nullptr ? pool_->queue_depth() : 0, &out);
    out += ", \"capacity\": ";
    AppendU64(pool_ != nullptr ? pool_->queue_capacity() : 0, &out);
    out += ", \"workers\": ";
    AppendU64(pool_ != nullptr ? pool_->thread_count() : 0, &out);
    out += ", \"shed\": ";
    AppendU64(load_shed_.load(std::memory_order_relaxed), &out);
    out += "},\n  \"cache\": ";
    AppendCacheJson(cache_.stats(), &out);
    out += ",\n  \"tenants\": {";
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      bool first = true;
      for (const auto& [name, t] : tenants_) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        AppendJsonString(name, &out);
        out += ": {\"proofs\": ";
        AppendU64(t.proofs, &out);
        out += ", \"accepted\": ";
        AppendU64(t.accepted, &out);
        out += ", \"rejected\": ";
        AppendU64(t.rejected, &out);
        out += ", \"verify_us_sum\": ";
        AppendU64(t.verify_us_sum, &out);
        out += ", \"setup_waits\": ";
        AppendU64(t.setup_waits, &out);
        out += "}";
      }
      if (!first) {
        out += "\n  ";
      }
    }
    out += "},\n  \"obs\": ";
    std::string obs_json = obs::ExportJson(nullptr, &metrics_);
    while (!obs_json.empty() && obs_json.back() == '\n') {
      obs_json.pop_back();
    }
    out += obs_json;
    out += "\n}\n";
    return out;
  }

 private:
  static constexpr uint64_t kListenerTag = 0;
  static constexpr uint64_t kWakeupTag = 1;
  static constexpr uint64_t kFirstConnectionTag = 2;
  static constexpr size_t kReadChunk = 64 * 1024;

  // Incremental parser for [u32-LE length][payload] frames, the same wire
  // format PipeTransport speaks. Hostile lengths are screened against the
  // transport cap before any allocation.
  class FrameReader {
   public:
    Status Feed(const uint8_t* data, size_t n,
                std::deque<std::vector<uint8_t>>* out) {
      size_t pos = 0;
      while (pos < n) {
        if (header_fill_ < 4) {
          const size_t take = std::min(n - pos, 4 - header_fill_);
          std::memcpy(header_ + header_fill_, data + pos, take);
          header_fill_ += take;
          pos += take;
          if (header_fill_ < 4) {
            return Status::Ok();
          }
          uint32_t len = 0;
          for (int i = 0; i < 4; i++) {
            len |= static_cast<uint32_t>(header_[i]) << (8 * i);
          }
          if (len > protocol::kMaxFrameBytes) {
            return LengthOverflowError(
                "frame length prefix exceeds transport cap");
          }
          expected_ = len;
          body_.clear();
          body_.reserve(
              std::min<size_t>(len, protocol::kMaxEagerReserveBytes));
        }
        const size_t take = std::min<size_t>(n - pos, expected_ - body_.size());
        body_.insert(body_.end(), data + pos, data + pos + take);
        pos += take;
        if (body_.size() == expected_) {
          out->push_back(std::move(body_));
          body_ = {};
          header_fill_ = 0;
          expected_ = 0;
        }
      }
      return Status::Ok();
    }

   private:
    uint8_t header_[4] = {0, 0, 0, 0};
    size_t header_fill_ = 0;
    size_t expected_ = 0;
    std::vector<uint8_t> body_;
  };

  struct Connection {
    int fd = -1;
    uint64_t tag = 0;
    enum class State { kHandshake, kReady } state = State::kHandshake;
    FrameReader reader;
    std::deque<std::vector<uint8_t>> pending;  // parsed, unprocessed frames
    std::vector<uint8_t> write_buf;            // length-prefixed bytes
    size_t write_offset = 0;
    std::deque<std::vector<uint8_t>> outbox;   // frames not yet in write_buf
    bool in_flight = false;
    bool close_after_flush = false;
    std::chrono::steady_clock::time_point last_activity;
    std::string tenant;
    std::string psi;
    std::shared_ptr<BatchVerifier> batch;  // shared with in-flight jobs
  };

  struct Completion {
    uint64_t tag = 0;
    std::vector<std::vector<uint8_t>> frames;
    std::shared_ptr<BatchVerifier> batch;  // set on a successful hello
    bool ready = false;                    // move connection to kReady
    bool close_after = false;
  };

  struct TenantStats {
    uint64_t proofs = 0;
    uint64_t accepted = 0;
    uint64_t rejected = 0;
    uint64_t verify_us_sum = 0;
    uint64_t setup_waits = 0;  // hellos served (hit or miss)
  };

  // ----- I/O thread -----

  void Run() {
    obs::ScopedThreadMetrics ambient(&metrics_);
    while (!stop_requested()) {
      auto events = poller_->Wait(NextTimeoutMs());
      if (!events.ok()) {
        break;  // poller broke; nothing to do but shut down
      }
      for (const PollerEvent& ev : *events) {
        if (ev.tag == kListenerTag) {
          AcceptPending();
        } else if (ev.tag == kWakeupTag) {
          DrainWakeup();
          ApplyCompletions();
        } else {
          OnConnectionEvent(ev);
        }
      }
      SweepDeadlines();
    }
    for (auto& [tag, conn] : connections_) {
      ::close(conn.fd);
      open_connections_.fetch_sub(1, std::memory_order_relaxed);
    }
    connections_.clear();
  }

  int NextTimeoutMs() const {
    if (connections_.empty()) {
      return -1;
    }
    auto now = std::chrono::steady_clock::now();
    int64_t best = std::numeric_limits<int64_t>::max();
    for (const auto& [tag, conn] : connections_) {
      if (conn.in_flight) {
        continue;  // a working connection is not idle
      }
      const auto budget = conn.state == Connection::State::kHandshake
                              ? options_.handshake_deadline
                              : options_.idle_deadline;
      if (budget.count() <= 0) {
        continue;
      }
      const auto expires = conn.last_activity + budget;
      const int64_t left = std::chrono::duration_cast<std::chrono::milliseconds>(
                               expires - now)
                               .count();
      best = std::min(best, std::max<int64_t>(left, 0));
    }
    if (best == std::numeric_limits<int64_t>::max()) {
      return -1;
    }
    return static_cast<int>(std::min<int64_t>(best, 60000));
  }

  void AcceptPending() {
    for (;;) {
      auto accepted = listener_->Accept();
      if (!accepted.ok()) {
        return;  // listener broke; the sweep/stop path handles the rest
      }
      const int fd = *accepted;
      if (fd < 0) {
        return;  // accept queue drained
      }
      if (connections_.size() >= options_.max_connections) {
        // Typed rejection: one best-effort frame into the fresh (empty)
        // socket buffer, then close. The client sees RESOURCE_EXHAUSTED,
        // not a silent EOF.
        SendFrameBestEffort(
            fd, EncodeErrorFrame(ResourceExhaustedError(
                    "connection limit (" +
                    std::to_string(options_.max_connections) + ") reached")));
        ::close(fd);
        rejected_connections_.fetch_add(1, std::memory_order_relaxed);
        metrics_.Add("serve.connections_rejected");
        continue;
      }
      const uint64_t tag = next_tag_++;
      Connection conn;
      conn.fd = fd;
      conn.tag = tag;
      conn.last_activity = std::chrono::steady_clock::now();
      if (!poller_->Add(fd, tag, /*want_read=*/true, /*want_write=*/false)
               .ok()) {
        ::close(fd);
        continue;
      }
      connections_.emplace(tag, std::move(conn));
      open_connections_.fetch_add(1, std::memory_order_relaxed);
      accepted_connections_.fetch_add(1, std::memory_order_relaxed);
      metrics_.Add("serve.connections_accepted");
    }
  }

  void OnConnectionEvent(const PollerEvent& ev) {
    auto it = connections_.find(ev.tag);
    if (it == connections_.end()) {
      return;
    }
    Connection& conn = it->second;
    if (ev.readable || ev.hangup) {
      if (!ReadFrom(conn)) {
        CloseConnection(it);
        return;
      }
      ProcessPending(conn);
    }
    if (ev.writable) {
      if (!FlushWrites(conn)) {
        CloseConnection(it);
        return;
      }
    }
    if (conn.close_after_flush && conn.write_buf.empty() &&
        conn.outbox.empty()) {
      CloseConnection(it);
      return;
    }
    UpdateInterest(conn);
  }

  // One bounded read per readiness; level-triggered polling re-reports
  // anything left. False = the connection is dead.
  bool ReadFrom(Connection& conn) {
    uint8_t buf[kReadChunk];
    ssize_t r;
    do {
      r = ::read(conn.fd, buf, sizeof(buf));
    } while (r < 0 && errno == EINTR);
    if (r == 0) {
      return false;  // EOF
    }
    if (r < 0) {
      return errno == EAGAIN || errno == EWOULDBLOCK;
    }
    conn.last_activity = std::chrono::steady_clock::now();
    metrics_.Add("serve.bytes_read", static_cast<uint64_t>(r));
    Status fed =
        conn.reader.Feed(buf, static_cast<size_t>(r), &conn.pending);
    if (!fed.ok()) {
      QueueError(conn, fed, /*close_conn=*/true);
      return true;  // the error frame still wants flushing
    }
    if (conn.pending.size() > options_.max_pending_frames) {
      QueueError(conn,
                 ResourceExhaustedError(
                     "per-connection frame queue overflow (" +
                     std::to_string(options_.max_pending_frames) + ")"),
                 /*close_conn=*/true);
    }
    return true;
  }

  void ProcessPending(Connection& conn) {
    while (!conn.in_flight && !conn.close_after_flush &&
           !conn.pending.empty()) {
      std::vector<uint8_t> frame = std::move(conn.pending.front());
      conn.pending.pop_front();
      metrics_.Add("serve.frames_received");
      auto env = DecodeEnvelope(frame);
      if (!env.ok()) {
        QueueError(conn, env.status(), /*close_conn=*/true);
        return;
      }
      HandleEnvelope(conn, *env);
    }
  }

  void HandleEnvelope(Connection& conn, const Envelope& env) {
    switch (env.type) {
      case MessageType::kStatsRequest: {
        const std::string json = StatsJson();
        QueueFrame(conn,
                   EncodeEnvelope(MessageType::kStatsReply,
                                  reinterpret_cast<const uint8_t*>(
                                      json.data()),
                                  json.size()));
        return;
      }
      case MessageType::kShutdown: {
        QueueFrame(conn, EncodeEnvelope(MessageType::kShutdown));
        conn.close_after_flush = true;
        stopping_.store(true, std::memory_order_release);
        // Keep looping until this connection's ack flushes or its deadline
        // hits; the Run loop checks stop_requested() each iteration.
        FlushWrites(conn);
        return;
      }
      case MessageType::kHello:
        HandleHello(conn, env);
        return;
      case MessageType::kProve:
        HandleProveFrame(conn, env);
        return;
      default:
        QueueError(conn,
                   PhaseViolationError(std::string("unexpected ") +
                                       MessageTypeName(env.type) + " frame"),
                   /*close_conn=*/true);
        return;
    }
  }

  void HandleHello(Connection& conn, const Envelope& env) {
    if (conn.state != Connection::State::kHandshake) {
      QueueError(conn, PhaseViolationError("second hello on connection"),
                 /*close_conn=*/true);
      return;
    }
    auto hello = HelloMessage::DecodePayload(env.payload);
    if (!hello.ok()) {
      QueueError(conn, hello.status(), /*close_conn=*/true);
      return;
    }
    conn.tenant = hello->tenant.empty() ? "anonymous" : hello->tenant;
    conn.psi = hello->psi;
    const std::string psi = hello->psi;
    const uint8_t field_tag = hello->field_tag;
    const std::string tenant = conn.tenant;
    const uint64_t tag = conn.tag;
    Status submitted = pool_->Submit([this, tag, psi, field_tag, tenant] {
      Completion done;
      done.tag = tag;
      auto material = cache_.GetOrBuild(psi, field_tag);
      if (material.ok()) {
        done.batch = std::shared_ptr<BatchVerifier>((*material)->NewBatch());
        done.ready = true;
        done.frames.push_back(EncodeEnvelope(MessageType::kSetup,
                                             (*material)->setup_frame()));
        std::lock_guard<std::mutex> lock(stats_mu_);
        tenants_[tenant].setup_waits++;
      } else {
        done.frames.push_back(EncodeErrorFrame(material.status()));
        done.close_after = true;
      }
      Deliver(std::move(done));
    });
    if (!submitted.ok()) {
      // Queue full: typed, retryable, and the connection survives — the
      // client backs off and re-sends the hello.
      load_shed_.fetch_add(1, std::memory_order_relaxed);
      metrics_.Add("serve.load_shed");
      QueueFrame(conn, EncodeErrorFrame(submitted));
      return;
    }
    conn.in_flight = true;
  }

  void HandleProveFrame(Connection& conn, const Envelope& env) {
    if (conn.state != Connection::State::kReady || conn.batch == nullptr) {
      QueueError(conn, PhaseViolationError("prove before hello/setup"),
                 /*close_conn=*/true);
      return;
    }
    auto batch = conn.batch;
    auto payload = std::make_shared<std::vector<uint8_t>>(env.payload);
    const std::string tenant = conn.tenant;
    const uint64_t tag = conn.tag;
    Status submitted = pool_->Submit([this, tag, batch, payload, tenant] {
      Completion done;
      done.tag = tag;
      Stopwatch sw;
      auto verdict = batch->HandleProve(*payload);
      const uint64_t us =
          static_cast<uint64_t>(sw.ElapsedSeconds() * 1e6);
      if (verdict.ok()) {
        done.frames.push_back(
            EncodeEnvelope(MessageType::kVerdict, *verdict));
      } else {
        done.frames.push_back(EncodeErrorFrame(verdict.status()));
        done.close_after = true;
      }
      metrics_.Observe("serve.verify_us", us);
      metrics_.Observe(
          ("serve.tenant." + tenant + ".verify_us").c_str(), us);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        TenantStats& t = tenants_[tenant];
        t.proofs++;
        t.verify_us_sum += us;
        if (verdict.ok()) {
          const size_t decided = batch->instances_decided();
          const size_t accepted = batch->instances_accepted();
          t.accepted = accepted;
          t.rejected = decided - accepted;
        }
      }
      Deliver(std::move(done));
    });
    if (!submitted.ok()) {
      load_shed_.fetch_add(1, std::memory_order_relaxed);
      metrics_.Add("serve.load_shed");
      QueueFrame(conn, EncodeErrorFrame(submitted));
      return;
    }
    conn.in_flight = true;
  }

  // ----- worker -> I/O handoff -----

  void Deliver(Completion done) {
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back(std::move(done));
    }
    Wake();
  }

  void Wake() {
    const uint8_t byte = 1;
    ssize_t w;
    do {
      w = ::write(wakeup_wr_, &byte, 1);
    } while (w < 0 && errno == EINTR);
    // EAGAIN (pipe full) is fine: a wakeup is already pending.
  }

  void DrainWakeup() {
    uint8_t buf[256];
    while (::read(wakeup_rd_, buf, sizeof(buf)) > 0) {
    }
  }

  void ApplyCompletions() {
    std::deque<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      batch.swap(completions_);
    }
    for (Completion& done : batch) {
      auto it = connections_.find(done.tag);
      if (it == connections_.end()) {
        continue;  // connection died while the job ran
      }
      Connection& conn = it->second;
      conn.in_flight = false;
      conn.last_activity = std::chrono::steady_clock::now();
      if (done.ready) {
        conn.batch = std::move(done.batch);
        conn.state = Connection::State::kReady;
      }
      for (auto& frame : done.frames) {
        QueueFrame(conn, std::move(frame));
      }
      if (done.close_after) {
        conn.close_after_flush = true;
      }
      ProcessPending(conn);
      if (!FlushWrites(conn) || (conn.close_after_flush &&
                                 conn.write_buf.empty() &&
                                 conn.outbox.empty())) {
        CloseConnection(it);
        continue;
      }
      UpdateInterest(conn);
    }
  }

  // ----- outbound -----

  void QueueFrame(Connection& conn, std::vector<uint8_t> frame) {
    conn.outbox.push_back(std::move(frame));
    FlushWrites(conn);
    UpdateInterest(conn);
  }

  void QueueError(Connection& conn, const Status& s, bool close_conn) {
    metrics_.Add("serve.errors_sent");
    conn.outbox.push_back(EncodeErrorFrame(s));
    if (close_conn) {
      conn.close_after_flush = true;
    }
    FlushWrites(conn);
    UpdateInterest(conn);
  }

  // Non-blocking flush of the write buffer + outbox. False = dead socket.
  bool FlushWrites(Connection& conn) {
    for (;;) {
      if (conn.write_offset == conn.write_buf.size()) {
        conn.write_buf.clear();
        conn.write_offset = 0;
        if (conn.outbox.empty()) {
          return true;
        }
        std::vector<uint8_t> frame = std::move(conn.outbox.front());
        conn.outbox.pop_front();
        const uint32_t len = static_cast<uint32_t>(frame.size());
        conn.write_buf.reserve(4 + frame.size());
        for (int i = 0; i < 4; i++) {
          conn.write_buf.push_back(static_cast<uint8_t>(len >> (8 * i)));
        }
        conn.write_buf.insert(conn.write_buf.end(), frame.begin(),
                              frame.end());
      }
      ssize_t w;
      do {
        w = ::send(conn.fd, conn.write_buf.data() + conn.write_offset,
                   conn.write_buf.size() - conn.write_offset, MSG_NOSIGNAL);
      } while (w < 0 && errno == EINTR);
      if (w < 0) {
        return errno == EAGAIN || errno == EWOULDBLOCK;
      }
      conn.write_offset += static_cast<size_t>(w);
      metrics_.Add("serve.bytes_written", static_cast<uint64_t>(w));
    }
  }

  void UpdateInterest(Connection& conn) {
    const bool want_read = !conn.close_after_flush && !conn.in_flight &&
                           conn.pending.size() <= options_.max_pending_frames;
    const bool want_write =
        conn.write_offset < conn.write_buf.size() || !conn.outbox.empty();
    poller_->Update(conn.fd, conn.tag, want_read, want_write);
  }

  void CloseConnection(std::map<uint64_t, Connection>::iterator it) {
    poller_->Remove(it->second.fd);
    ::close(it->second.fd);
    open_connections_.fetch_sub(1, std::memory_order_relaxed);
    metrics_.Add("serve.connections_closed");
    connections_.erase(it);
  }

  void SweepDeadlines() {
    const auto now = std::chrono::steady_clock::now();
    for (auto it = connections_.begin(); it != connections_.end();) {
      Connection& conn = it->second;
      const auto budget = conn.state == Connection::State::kHandshake
                              ? options_.handshake_deadline
                              : options_.idle_deadline;
      if (!conn.in_flight && budget.count() > 0 &&
          now - conn.last_activity >= budget) {
        metrics_.Add("serve.deadline_closed");
        // Best-effort typed notice; the close is the real enforcement.
        SendFrameBestEffort(
            conn.fd,
            EncodeErrorFrame(DeadlineExceededError(
                conn.state == Connection::State::kHandshake
                    ? "handshake deadline exceeded"
                    : "idle deadline exceeded")));
        auto dead = it++;
        CloseConnection(dead);
      } else {
        ++it;
      }
    }
  }

  // One non-blocking length-prefixed frame write, for paths with no
  // Connection bookkeeping (admission rejection, deadline notices). A full
  // socket buffer silently drops it — these are courtesies, not protocol.
  static void SendFrameBestEffort(int fd, const std::vector<uint8_t>& frame) {
    std::vector<uint8_t> wire;
    wire.reserve(4 + frame.size());
    const uint32_t len = static_cast<uint32_t>(frame.size());
    for (int i = 0; i < 4; i++) {
      wire.push_back(static_cast<uint8_t>(len >> (8 * i)));
    }
    wire.insert(wire.end(), frame.begin(), frame.end());
    ssize_t ignored = ::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
    (void)ignored;
  }

  static void AppendCacheJson(const AmortizationCache::Stats& s,
                              std::string* out) {
    using obs::internal::AppendU64;
    *out += "{\"hits\": ";
    AppendU64(s.hits, out);
    *out += ", \"misses\": ";
    AppendU64(s.misses, out);
    *out += ", \"evictions\": ";
    AppendU64(s.evictions, out);
    *out += ", \"build_failures\": ";
    AppendU64(s.build_failures, out);
    *out += ", \"entries\": ";
    AppendU64(s.entries, out);
    *out += ", \"epoch\": ";
    AppendU64(s.epoch, out);
    *out += ", \"memory_bytes\": ";
    AppendU64(s.memory_bytes, out);
    *out += "}";
  }

  const ServerOptions options_;
  AmortizationCache cache_;
  mutable obs::Metrics metrics_;

  std::unique_ptr<protocol::UnixListener> listener_;
  std::unique_ptr<Poller> poller_;
  std::unique_ptr<WorkerPool> pool_;
  std::thread io_thread_;
  std::atomic<bool> stopping_{false};
  int wakeup_rd_ = -1;
  int wakeup_wr_ = -1;

  // I/O-thread-owned.
  std::map<uint64_t, Connection> connections_;
  uint64_t next_tag_ = kFirstConnectionTag;

  std::mutex completions_mu_;
  std::deque<Completion> completions_;

  mutable std::mutex stats_mu_;
  std::map<std::string, TenantStats> tenants_;

  std::atomic<uint64_t> open_connections_{0};
  std::atomic<uint64_t> accepted_connections_{0};
  std::atomic<uint64_t> rejected_connections_{0};
  std::atomic<uint64_t> load_shed_{0};
};

}  // namespace serve
}  // namespace zaatar

#endif  // SRC_SERVE_SERVER_H_
