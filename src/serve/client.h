// PROVER-side client for a zaatar-serve daemon: a blocking request/reply
// wrapper over the framed AF_UNIX connection, plus RunServeBatch — the full
// client workflow (compile Ψ locally, adopt the daemon's cached setup,
// solve/prove each instance, ingest verdicts).
//
// TRUST BOUNDARY: this header runs on the prover and must never include
// (directly or transitively) src/argument/argument.h or the verifier-side
// serve headers (psi_material.h, server.h). The client reconstructs
// everything it needs from SetupMessage bytes, exactly like ProverSession.
//
// Retry contract: a kError frame carrying RESOURCE_EXHAUSTED means the
// daemon refused the frame at admission (queue full) — the server never
// processed it, the session cursors on both ends are unchanged, so the
// client backs off and re-sends the SAME frame. Every other error is final
// for the connection.

#ifndef SRC_SERVE_CLIENT_H_
#define SRC_SERVE_CLIENT_H_

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/apps/suite.h"
#include "src/compiler/compile.h"
#include "src/constraints/qap.h"
#include "src/crypto/prg.h"
#include "src/field/fields.h"
#include "src/pcp/zaatar_pcp.h"
#include "src/protocol/backoff.h"
#include "src/protocol/prover_session.h"
#include "src/protocol/transport.h"
#include "src/serve/app_registry.h"
#include "src/serve/messages.h"
#include "src/util/serialize.h"
#include "src/util/status.h"
#include "src/util/stopwatch.h"

namespace zaatar {
namespace serve {

class ServeClient {
 public:
  struct Options {
    protocol::TransportOptions transport;  // per-call send/recv deadlines
    protocol::BackoffPolicy backoff;       // RESOURCE_EXHAUSTED re-send
  };

  static StatusOr<ServeClient> Connect(const std::string& socket_path,
                                       Options options = {}) {
    ZAATAR_ASSIGN_OR_RETURN(int fd, protocol::ConnectUnix(socket_path));
    return ServeClient(
        std::make_unique<protocol::PipeTransport>(fd, options.transport),
        options);
  }

  // One request/reply round trip. Re-sends the same frame with backoff when
  // the daemon sheds it with a typed RESOURCE_EXHAUSTED; other kError
  // frames come back as their carried Status. kResourceExhausted surfaces
  // only once the retry budget is spent.
  StatusOr<Envelope> Call(const std::vector<uint8_t>& frame) {
    protocol::BackoffSchedule schedule(options_.backoff);
    for (;;) {
      ZAATAR_RETURN_IF_ERROR(transport_->Send(frame));
      ZAATAR_ASSIGN_OR_RETURN(std::vector<uint8_t> reply,
                              transport_->Receive());
      ZAATAR_ASSIGN_OR_RETURN(Envelope env, DecodeEnvelope(reply));
      if (env.type != MessageType::kError) {
        return env;
      }
      ZAATAR_ASSIGN_OR_RETURN(ErrorMessage err,
                              ErrorMessage::DecodePayload(env.payload));
      Status status = err.ToStatus();
      if (status.code() != StatusCode::kResourceExhausted ||
          schedule.attempts() >= options_.backoff.max_retries) {
        return status;
      }
      resource_retries_++;
      std::this_thread::sleep_for(schedule.NextDelay());
    }
  }

  // Hello handshake; returns the daemon's (cached) SetupMessage bytes.
  StatusOr<std::vector<uint8_t>> Hello(uint8_t field_tag,
                                       const std::string& psi,
                                       const std::string& tenant) {
    HelloMessage msg;
    msg.field_tag = field_tag;
    msg.psi = psi;
    msg.tenant = tenant;
    ZAATAR_ASSIGN_OR_RETURN(
        Envelope env,
        Call(EncodeEnvelope(MessageType::kHello, msg.EncodePayload())));
    if (env.type != MessageType::kSetup) {
      return PhaseViolationError(std::string("expected SETUP, got ") +
                                 MessageTypeName(env.type));
    }
    return env.payload;
  }

  // One instance: [inputs][claimed outputs][ProofMessage]; returns the
  // VerdictMessage bytes.
  StatusOr<std::vector<uint8_t>> Prove(const std::vector<uint8_t>& payload) {
    ZAATAR_ASSIGN_OR_RETURN(
        Envelope env, Call(EncodeEnvelope(MessageType::kProve, payload)));
    if (env.type != MessageType::kVerdict) {
      return PhaseViolationError(std::string("expected VERDICT, got ") +
                                 MessageTypeName(env.type));
    }
    return env.payload;
  }

  StatusOr<std::string> Stats() {
    ZAATAR_ASSIGN_OR_RETURN(Envelope env,
                            Call(EncodeEnvelope(MessageType::kStatsRequest)));
    if (env.type != MessageType::kStatsReply) {
      return PhaseViolationError(std::string("expected STATS_REPLY, got ") +
                                 MessageTypeName(env.type));
    }
    return std::string(env.payload.begin(), env.payload.end());
  }

  // Admin stop; the daemon acks, then begins shutting down.
  Status Shutdown() {
    ZAATAR_ASSIGN_OR_RETURN(Envelope env,
                            Call(EncodeEnvelope(MessageType::kShutdown)));
    if (env.type != MessageType::kShutdown) {
      return PhaseViolationError(std::string("expected SHUTDOWN ack, got ") +
                                 MessageTypeName(env.type));
    }
    return Status::Ok();
  }

  // Frames the daemon refused and this client re-sent after backoff.
  uint64_t resource_retries() const { return resource_retries_; }

 private:
  ServeClient(std::unique_ptr<protocol::Transport> transport, Options options)
      : transport_(std::move(transport)), options_(options) {}

  std::unique_ptr<protocol::Transport> transport_;
  Options options_;
  uint64_t resource_retries_ = 0;
};

// ----- The full client workflow -----

struct ServeBatchReport {
  size_t instances = 0;
  size_t accepted = 0;
  double hello_seconds = 0;  // handshake incl. any server-side cache miss
  double prove_seconds = 0;  // solve + proof construction + round trips
  uint64_t resource_retries = 0;
};

// Proves `instances` instances of the registered Ψ against a running daemon
// over one connection: compile Ψ from the same registry entry the server
// uses, Hello (adopting the server's cached setup), then per instance
// solve → build proof vectors → Commit/Decommit → kProve → verdict.
// An honest run returns accepted == instances; any rejected instance is a
// real soundness signal, reported in the count, not an error.
inline StatusOr<ServeBatchReport> RunServeBatchF128(
    ServeClient& client, const std::string& psi, const std::string& tenant,
    size_t instances, uint64_t instance_seed) {
  using F = F128;
  ZAATAR_ASSIGN_OR_RETURN(App<F> app, MakeRegisteredAppF128(psi));
  const CompiledProgram<F> program = CompileZlang<F>(app.source);
  Qap<F> qap(program.zaatar.r1cs);
  qap.WarmProver();

  ServeBatchReport report;
  Stopwatch hello_sw;
  ZAATAR_ASSIGN_OR_RETURN(std::vector<uint8_t> setup_bytes,
                          client.Hello(kFieldTagF128, psi, tenant));
  protocol::ProverSession<F> session;
  ZAATAR_RETURN_IF_ERROR(session.IngestSetup(setup_bytes));
  report.hello_seconds = hello_sw.ElapsedSeconds();

  Prg prg(instance_seed);
  Stopwatch prove_sw;
  for (size_t i = 0; i < instances; i++) {
    AppInstance<F> inst = app.make_instance(prg);
    const std::vector<F> gw = program.SolveGinger(inst.inputs);
    const std::vector<F> outputs = program.ExtractOutputs(gw);
    const std::vector<F> w = program.SolveZaatar(gw);
    ZaatarProof<F> proof = BuildZaatarProof(qap, w);
    ZAATAR_RETURN_IF_ERROR(
        session.Commit({&proof.z, &proof.h}, /*workers=*/1));
    ZAATAR_ASSIGN_OR_RETURN(std::vector<uint8_t> proof_frame,
                            session.Decommit());
    ByteWriter payload;
    PutFieldVector(&payload, inst.inputs);
    PutFieldVector(&payload, outputs);
    payload.PutBytes(proof_frame.data(), proof_frame.size());
    ZAATAR_ASSIGN_OR_RETURN(std::vector<uint8_t> verdict_bytes,
                            client.Prove(payload.bytes()));
    ZAATAR_ASSIGN_OR_RETURN(VerifyInstanceResult verdict,
                            session.IngestVerdict(verdict_bytes));
    report.instances++;
    if (verdict.accepted()) {
      report.accepted++;
    }
  }
  report.prove_seconds = prove_sw.ElapsedSeconds();
  report.resource_retries = client.resource_retries();
  return report;
}

}  // namespace serve
}  // namespace zaatar

#endif  // SRC_SERVE_CLIENT_H_
