// Fixed-size worker pool with a bounded job queue — the compute half of the
// serve daemon. Session steps (proof verification, per-Ψ setup builds) run
// here so the I/O thread never blocks on cryptography; admission control is
// the queue bound: Submit REFUSES with a typed kResourceExhausted when the
// queue is full instead of growing it or blocking the caller. That refusal
// propagates to the client as a typed, retryable error frame — the daemon
// degrades by shedding load, never by stalling its readiness loop.

#ifndef SRC_SERVE_WORKER_POOL_H_
#define SRC_SERVE_WORKER_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/status.h"

namespace zaatar {
namespace serve {

class WorkerPool {
 public:
  // `metrics` (optional) is installed as the ambient registry on every
  // worker thread, so transport/argument instrumentation deep in session
  // code lands in the daemon's registry; the pool's own counters are
  // recorded into it directly and work with tracing compiled out.
  WorkerPool(size_t threads, size_t max_queue, obs::Metrics* metrics = nullptr)
      : max_queue_(max_queue == 0 ? 1 : max_queue), metrics_(metrics) {
    if (threads == 0) {
      threads = 1;
    }
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; i++) {
      workers_.emplace_back([this] { WorkerMain(); });
    }
  }

  ~WorkerPool() { Stop(); }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Enqueues a job, or refuses with kResourceExhausted when the queue is at
  // capacity or the pool is stopping. Never blocks.
  Status Submit(std::function<void()> job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        return ResourceExhaustedError("worker pool is stopping");
      }
      if (queue_.size() >= max_queue_) {
        if (metrics_ != nullptr) {
          metrics_->Add("serve.pool.rejected");
        }
        return ResourceExhaustedError(
            "worker queue full (" + std::to_string(max_queue_) + " jobs)");
      }
      queue_.push_back(std::move(job));
      if (metrics_ != nullptr) {
        metrics_->Add("serve.pool.submitted");
        metrics_->Observe("serve.pool.queue_depth", queue_.size());
      }
    }
    cv_.notify_one();
    return Status::Ok();
  }

  // Drains nothing: queued-but-unstarted jobs are dropped on Stop. The
  // server only stops after its connections are gone, so a dropped job has
  // no one waiting on it.
  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        return;
      }
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) {
      if (t.joinable()) {
        t.join();
      }
    }
  }

  size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  size_t queue_capacity() const { return max_queue_; }
  size_t thread_count() const { return workers_.size(); }

 private:
  void WorkerMain() {
    obs::ScopedThreadMetrics ambient(metrics_);
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (stopping_) {
          return;
        }
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job();
      if (metrics_ != nullptr) {
        metrics_->Add("serve.pool.completed");
      }
    }
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  const size_t max_queue_;
  obs::Metrics* metrics_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace zaatar

#endif  // SRC_SERVE_WORKER_POOL_H_
