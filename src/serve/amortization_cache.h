// The cross-request amortization cache — the paper's §5 economics lifted
// from "per batch" to "per computation per epoch". A batch argument pays a
// large one-time setup (query generation + the Enc(r) commitment setup)
// that §5 amortizes over the β instances of one client's batch; a standing
// daemon can do better, because two clients proving the SAME computation Ψ
// can share one setup. This cache keys that material by (Ψ, field, epoch):
// the first Hello for a Ψ builds it (misses pay the build), every later
// Hello in the same epoch reuses it (hits pay nothing), so break-even is
// paid once per computation per epoch across the whole client population.
//
// Sharing the verifier's setup across clients is sound because a setup
// binds no per-instance randomness: the queries and Enc(r) are fixed per
// batch in the base protocol too, and VerifierSetup is immutable after
// construction (ValidateProofShape + the decision procedure only read it),
// so concurrent sessions on worker threads share one copy safely. Epochs
// bound the exposure window: AdvanceEpoch retires every older-epoch entry,
// forcing fresh queries/keys — the operator's rotation knob.
//
// Concurrency: one mutex, per-entry condition variables. Concurrent Hellos
// for the same uncached Ψ build it ONCE — the second waits on the first's
// entry latch instead of duplicating a multi-second setup. Eviction is
// LRU over ready entries; evicted material survives as long as some
// connection still holds its shared_ptr (refcounted), it just stops being
// findable.

#ifndef SRC_SERVE_AMORTIZATION_CACHE_H_
#define SRC_SERVE_AMORTIZATION_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/status.h"

namespace zaatar {
namespace serve {

// One connection's verifying state machine, created from cached per-Ψ
// material. Type-erased so the daemon's I/O loop and cache are untemplated;
// the field/backend-typed implementation lives in psi_material.h.
class BatchVerifier {
 public:
  virtual ~BatchVerifier() = default;

  // Consumes one kProve payload (inputs, claimed outputs, proof bytes) and
  // returns the kVerdict payload. A Status return is a connection-level
  // problem (undecodable payload geometry); hostile PROOF bytes never error
  // — they come back as a reject verdict, preserving batch isolation.
  virtual StatusOr<std::vector<uint8_t>> HandleProve(
      const std::vector<uint8_t>& payload) = 0;

  virtual size_t instances_decided() const = 0;
  virtual size_t instances_accepted() const = 0;
};

// Immutable, shareable per-Ψ material: the serialized SetupMessage frame
// every client of this Ψ receives, plus a factory for per-connection
// verifier state machines that all read the one shared VerifierSetup.
class PsiMaterial {
 public:
  virtual ~PsiMaterial() = default;

  virtual const std::vector<uint8_t>& setup_frame() const = 0;
  virtual std::unique_ptr<BatchVerifier> NewBatch() const = 0;

  // Approximate resident size (eviction accounting / stats).
  virtual size_t memory_bytes() const = 0;
  // Wall seconds the build cost — the amount every cache hit saves.
  virtual double build_seconds() const = 0;
};

struct CacheKey {
  std::string psi;
  uint8_t field_tag = 0;
  uint64_t epoch = 0;

  bool operator<(const CacheKey& o) const {
    return std::tie(epoch, field_tag, psi) <
           std::tie(o.epoch, o.field_tag, o.psi);
  }

  bool operator==(const CacheKey& o) const {
    return epoch == o.epoch && field_tag == o.field_tag && psi == o.psi;
  }
};

class AmortizationCache {
 public:
  // Builds the material for an uncached Ψ. The seed is derived
  // deterministically from (base seed, Ψ, field, epoch) so a restarted
  // daemon regenerates identical setups — and an epoch bump changes them.
  using Builder = std::function<StatusOr<std::shared_ptr<PsiMaterial>>(
      const std::string& psi, uint8_t field_tag, uint64_t seed)>;

  struct Options {
    size_t max_entries = 16;
    uint64_t seed = 0x5EED5EED;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t build_failures = 0;
    uint64_t epoch = 0;
    size_t entries = 0;
    size_t memory_bytes = 0;
  };

  AmortizationCache(Options options, Builder builder)
      : options_(options), builder_(std::move(builder)) {}

  // Returns the Ψ's material for the CURRENT epoch, building it if absent.
  // Blocks only when another thread is mid-build for the same key (then the
  // wait replaces a duplicate build and counts as a hit — the material was
  // shared). A failed build is not cached: the error returns to every
  // waiter and the next request retries.
  StatusOr<std::shared_ptr<PsiMaterial>> GetOrBuild(const std::string& psi,
                                                    uint8_t field_tag) {
    std::shared_ptr<Entry> entry;
    bool builder_here = false;
    CacheKey key;
    {
      std::unique_lock<std::mutex> lock(mu_);
      key = CacheKey{psi, field_tag, epoch_};
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        entry = it->second;
        Touch(key);
      } else {
        entry = std::make_shared<Entry>();
        entries_[key] = entry;
        lru_.push_front(key);
        builder_here = true;
        misses_++;
        obs::MetricAdd("serve.cache.miss");
      }
    }

    if (builder_here) {
      auto built = builder_(psi, field_tag, SeedFor(key));
      std::unique_lock<std::mutex> lock(mu_);
      if (built.ok()) {
        entry->material = std::move(built).value();
        // The entry may have been swept by an epoch bump mid-build; only
        // account memory for material that is actually published.
        auto it = entries_.find(key);
        if (it != entries_.end() && it->second == entry) {
          memory_bytes_ += entry->material->memory_bytes();
        }
      } else {
        entry->error = built.status();
        build_failures_++;
        // Unpublish so the next request retries instead of re-hitting a
        // cached failure (the entry may already be gone if an epoch bump
        // swept it mid-build).
        auto it = entries_.find(key);
        if (it != entries_.end() && it->second == entry) {
          RemoveLocked(key, /*count_eviction=*/false);
        }
      }
      entry->ready = true;
      entry->cv.notify_all();
      if (built.ok()) {
        EvictOverCapacityLocked();
        return entry->material;
      }
      return entry->error;
    }

    std::unique_lock<std::mutex> lock(mu_);
    entry->cv.wait(lock, [&] { return entry->ready; });
    if (!entry->error.ok()) {
      return entry->error;
    }
    hits_++;
    obs::MetricAdd("serve.cache.hit");
    return entry->material;
  }

  // Retires every entry of older epochs: the next request for any Ψ
  // rebuilds with fresh (epoch-salted) randomness. In-flight builds for old
  // epochs finish but become unreachable.
  void AdvanceEpoch() {
    std::lock_guard<std::mutex> lock(mu_);
    epoch_++;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->first.epoch < epoch_) {
        lru_.remove(it->first);
        if (it->second->ready && it->second->material != nullptr) {
          memory_bytes_ -= it->second->material->memory_bytes();
        }
        it = entries_.erase(it);
        evictions_++;
        obs::MetricAdd("serve.cache.evict");
      } else {
        ++it;
      }
    }
  }

  uint64_t epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return epoch_;
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.build_failures = build_failures_;
    s.epoch = epoch_;
    s.entries = entries_.size();
    s.memory_bytes = memory_bytes_;
    return s;
  }

 private:
  struct Entry {
    std::shared_ptr<PsiMaterial> material;  // set iff ready && error.ok()
    Status error;
    bool ready = false;
    std::condition_variable cv;
  };

  uint64_t SeedFor(const CacheKey& key) const {
    // splitmix-style stirring of the three key components into the base
    // seed; any fixed mixing works, it only needs to be deterministic.
    uint64_t h = options_.seed ^ (key.epoch * 0x9E3779B97F4A7C15ull) ^
                 (static_cast<uint64_t>(key.field_tag) << 56);
    for (char c : key.psi) {
      h ^= static_cast<uint64_t>(static_cast<uint8_t>(c));
      h *= 0x100000001B3ull;
    }
    return h;
  }

  void Touch(const CacheKey& key) {
    lru_.remove(key);
    lru_.push_front(key);
  }

  void RemoveLocked(const CacheKey& key, bool count_eviction) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      return;
    }
    if (it->second->ready && it->second->material != nullptr) {
      memory_bytes_ -= it->second->material->memory_bytes();
    }
    entries_.erase(it);
    lru_.remove(key);
    if (count_eviction) {
      evictions_++;
      obs::MetricAdd("serve.cache.evict");
    }
  }

  // Drops least-recently-used READY entries until within capacity; an
  // in-flight build is never evicted (its waiters hold the entry latch).
  void EvictOverCapacityLocked() {
    while (entries_.size() > options_.max_entries) {
      bool evicted = false;
      for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
        auto e = entries_.find(*it);
        if (e != entries_.end() && e->second->ready) {
          RemoveLocked(*it, /*count_eviction=*/true);
          evicted = true;
          break;
        }
      }
      if (!evicted) {
        break;  // everything is mid-build; capacity is restored on finish
      }
    }
  }

  const Options options_;
  const Builder builder_;

  mutable std::mutex mu_;
  std::map<CacheKey, std::shared_ptr<Entry>> entries_;
  std::list<CacheKey> lru_;  // front = most recent
  uint64_t epoch_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t build_failures_ = 0;
  size_t memory_bytes_ = 0;
};

}  // namespace serve
}  // namespace zaatar

#endif  // SRC_SERVE_AMORTIZATION_CACHE_H_
