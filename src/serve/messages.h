// The zaatar-serve wire envelope: one byte of message type ahead of an
// opaque payload, carried inside the same u32-length-prefixed frames the
// Transport layer already speaks. The envelope stays untemplated — field
// elements appear only inside kProve/kSetup payloads, which the typed
// BatchVerifier / client code encode and decode — so the daemon's I/O loop
// routes frames without knowing which field a connection is proving over.
//
// Conversation shape (client = prover, server = verifier):
//   C -> S  kHello   { field tag, Ψ id, tenant label }
//   S -> C  kSetup   { the cached per-Ψ SetupMessage bytes }      (or kError)
//   C -> S  kProve   { inputs, claimed outputs, ProofMessage }    (repeated)
//   S -> C  kVerdict { VerdictMessage bytes }                     (or kError)
//   C -> S  kStatsRequest {}
//   S -> C  kStatsReply   { JSON }
//   C -> S  kShutdown {}   — admin stop, acknowledged with kShutdown
//
// kError carries a StatusCode so rejection is typed end to end: a client
// seeing RESOURCE_EXHAUSTED backs off and resends the same frame; anything
// else is final for the connection.

#ifndef SRC_SERVE_MESSAGES_H_
#define SRC_SERVE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/util/serialize.h"
#include "src/util/status.h"

namespace zaatar {
namespace serve {

enum class MessageType : uint8_t {
  kHello = 1,
  kSetup = 2,
  kProve = 3,
  kVerdict = 4,
  kStatsRequest = 5,
  kStatsReply = 6,
  kError = 7,
  kShutdown = 8,
};

inline const char* MessageTypeName(MessageType t) {
  switch (t) {
    case MessageType::kHello:
      return "HELLO";
    case MessageType::kSetup:
      return "SETUP";
    case MessageType::kProve:
      return "PROVE";
    case MessageType::kVerdict:
      return "VERDICT";
    case MessageType::kStatsRequest:
      return "STATS_REQUEST";
    case MessageType::kStatsReply:
      return "STATS_REPLY";
    case MessageType::kError:
      return "ERROR";
    case MessageType::kShutdown:
      return "SHUTDOWN";
  }
  return "UNKNOWN";
}

// Length-prefixed string helper shared by the payload codecs below; the
// length is validated against the bytes actually remaining (GetLength), so
// a hostile prefix fails before any allocation.
inline StatusOr<std::string> GetString(ByteReader* r) {
  ZAATAR_ASSIGN_OR_RETURN(uint32_t len, r->GetLength(1));
  std::string s(len, '\0');
  ZAATAR_RETURN_IF_ERROR(
      r->GetBytes(reinterpret_cast<uint8_t*>(s.data()), len));
  return s;
}

// A decoded envelope: the type byte plus a view-free copy of the payload.
struct Envelope {
  MessageType type;
  std::vector<uint8_t> payload;
};

inline std::vector<uint8_t> EncodeEnvelope(MessageType type,
                                           const uint8_t* payload,
                                           size_t size) {
  std::vector<uint8_t> out;
  out.reserve(1 + size);
  out.push_back(static_cast<uint8_t>(type));
  out.insert(out.end(), payload, payload + size);
  return out;
}

inline std::vector<uint8_t> EncodeEnvelope(
    MessageType type, const std::vector<uint8_t>& payload = {}) {
  return EncodeEnvelope(type, payload.data(), payload.size());
}

inline StatusOr<Envelope> DecodeEnvelope(const std::vector<uint8_t>& frame) {
  if (frame.empty()) {
    return TruncatedError("empty serve frame");
  }
  const uint8_t raw = frame[0];
  if (raw < static_cast<uint8_t>(MessageType::kHello) ||
      raw > static_cast<uint8_t>(MessageType::kShutdown)) {
    return MalformedError("unknown serve message type " + std::to_string(raw));
  }
  Envelope env;
  env.type = static_cast<MessageType>(raw);
  env.payload.assign(frame.begin() + 1, frame.end());
  return env;
}

// ----- kHello -----

struct HelloMessage {
  uint8_t field_tag = 0;  // see app_registry.h (kFieldTagF128, ...)
  std::string psi;        // computation id, e.g. "lcs/8"
  std::string tenant;     // free-form client label for per-tenant stats

  std::vector<uint8_t> EncodePayload() const {
    ByteWriter w;
    w.PutU32(field_tag);
    w.PutU32(static_cast<uint32_t>(psi.size()));
    w.PutBytes(reinterpret_cast<const uint8_t*>(psi.data()), psi.size());
    w.PutU32(static_cast<uint32_t>(tenant.size()));
    w.PutBytes(reinterpret_cast<const uint8_t*>(tenant.data()), tenant.size());
    return w.bytes();
  }

  static StatusOr<HelloMessage> DecodePayload(
      const std::vector<uint8_t>& payload) {
    ByteReader r(payload);
    HelloMessage msg;
    ZAATAR_ASSIGN_OR_RETURN(uint32_t tag, r.GetU32());
    if (tag > 0xFF) {
      return MalformedError("hello field tag out of range");
    }
    msg.field_tag = static_cast<uint8_t>(tag);
    ZAATAR_ASSIGN_OR_RETURN(msg.psi, GetString(&r));
    ZAATAR_ASSIGN_OR_RETURN(msg.tenant, GetString(&r));
    ZAATAR_RETURN_IF_ERROR(r.ExpectEnd());
    return msg;
  }
};

// ----- kError -----

struct ErrorMessage {
  StatusCode code = StatusCode::kMalformed;
  std::string message;

  std::vector<uint8_t> EncodePayload() const {
    ByteWriter w;
    w.PutU32(static_cast<uint32_t>(code));
    w.PutU32(static_cast<uint32_t>(message.size()));
    w.PutBytes(reinterpret_cast<const uint8_t*>(message.data()),
               message.size());
    return w.bytes();
  }

  static StatusOr<ErrorMessage> DecodePayload(
      const std::vector<uint8_t>& payload) {
    ByteReader r(payload);
    ErrorMessage msg;
    ZAATAR_ASSIGN_OR_RETURN(uint32_t code, r.GetU32());
    if (code > static_cast<uint32_t>(StatusCode::kResourceExhausted)) {
      return MalformedError("error frame carries unknown status code");
    }
    msg.code = static_cast<StatusCode>(code);
    ZAATAR_ASSIGN_OR_RETURN(msg.message, GetString(&r));
    ZAATAR_RETURN_IF_ERROR(r.ExpectEnd());
    return msg;
  }

  Status ToStatus() const { return Status(code, message); }
};

inline std::vector<uint8_t> EncodeErrorFrame(const Status& s) {
  ErrorMessage msg;
  msg.code = s.code();
  msg.message = s.message();
  return EncodeEnvelope(MessageType::kError, msg.EncodePayload());
}

}  // namespace serve
}  // namespace zaatar

#endif  // SRC_SERVE_MESSAGES_H_
