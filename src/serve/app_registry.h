// Maps a wire Ψ identifier ("lcs/8", "mat_mul/4", ...) to the benchmark-
// suite App it names. Both ends of a serve connection resolve Ψ through
// this one registry — the server to compile the program and build verifier
// material, the client to compile the SAME program and generate witnesses —
// so a Ψ string is a complete, unambiguous computation identity.
//
// TRUST BOUNDARY: this header is included by prover-side client code, so it
// must never include src/argument/ or anything else carrying verifier
// secrets. Verifier material construction lives in psi_material.h.

#ifndef SRC_SERVE_APP_REGISTRY_H_
#define SRC_SERVE_APP_REGISTRY_H_

#include <cstdint>
#include <string>

#include "src/apps/suite.h"
#include "src/field/fields.h"
#include "src/util/status.h"

namespace zaatar {
namespace serve {

// Wire tags for the field a Ψ is proven over (HelloMessage.field_tag).
inline constexpr uint8_t kFieldTagF128 = 0;
inline constexpr uint8_t kFieldTagF220 = 1;

// Parses "name/size". Size is bounded to keep a hostile Hello from
// requesting a pathologically large compilation on the daemon.
inline Status ParsePsi(const std::string& psi, std::string* name,
                       size_t* size) {
  const size_t slash = psi.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= psi.size()) {
    return MalformedError("psi must look like \"name/size\": " + psi);
  }
  *name = psi.substr(0, slash);
  uint64_t m = 0;
  for (size_t i = slash + 1; i < psi.size(); i++) {
    if (psi[i] < '0' || psi[i] > '9') {
      return MalformedError("psi size is not a number: " + psi);
    }
    m = m * 10 + static_cast<uint64_t>(psi[i] - '0');
    if (m > 64) {
      return MalformedError("psi size too large (cap 64): " + psi);
    }
  }
  if (m == 0) {
    return MalformedError("psi size must be positive: " + psi);
  }
  *size = static_cast<size_t>(m);
  return Status::Ok();
}

// The F128 computations a zaatar-serve daemon accepts. Growing the registry
// is one line per app; an unknown name is a typed per-connection error, not
// a daemon problem.
inline StatusOr<App<F128>> MakeRegisteredAppF128(const std::string& psi) {
  std::string name;
  size_t m = 0;
  ZAATAR_RETURN_IF_ERROR(ParsePsi(psi, &name, &m));
  if (name == "lcs") {
    return MakeLcsApp(m);
  }
  if (name == "mat_mul") {
    return MakeMatMulApp(m);
  }
  if (name == "apsp") {
    return MakeApspApp(m);
  }
  if (name == "fannkuch") {
    return MakeFannkuchApp(m, /*n=*/4, /*max_steps=*/16);
  }
  return MalformedError("unknown psi: " + psi);
}

}  // namespace serve
}  // namespace zaatar

#endif  // SRC_SERVE_APP_REGISTRY_H_
