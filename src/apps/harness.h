// End-to-end measurement harness: compiles an App, runs a full batched
// argument (verifier setup, per-instance prove + verify), and reports the
// per-phase costs the evaluation figures need. Used by bench/ and examples/.

#ifndef SRC_APPS_HARNESS_H_
#define SRC_APPS_HARNESS_H_

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/apps/suite.h"
#include "src/argument/argument.h"
#include "src/argument/cost_model.h"
#include "src/constraints/qap.h"
#include "src/pcp/ginger_pcp.h"
#include "src/pcp/zaatar_pcp.h"

namespace zaatar {

struct BatchMeasurement {
  ComputationStats stats;          // includes measured t_local
  double query_generation_s = 0;   // verifier, amortized over the batch
  double commit_setup_s = 0;       // verifier, amortized over the batch
  ProverCosts prover;              // mean per instance
  double verifier_per_instance_s = 0;
  size_t proof_len = 0;
  size_t total_queries = 0;
  bool all_accepted = true;
};

// Fills the encoding statistics (Figure 9 quantities) without running
// anything.
template <typename F>
ComputationStats ComputeStats(const CompiledProgram<F>& program,
                              double t_local_s) {
  ComputationStats s;
  s.t_local_s = t_local_s;
  s.z_ginger = program.ZGinger();
  s.c_ginger = program.CGinger();
  s.k = program.ginger.AdditiveTermCount();
  s.k2 = program.ginger.DistinctQuadTermCount();
  s.z_zaatar = program.ZZaatar();
  s.c_zaatar = program.CZaatar();
  s.num_inputs = program.ginger.layout.num_inputs;
  s.num_outputs = program.ginger.layout.num_outputs;
  return s;
}

// Runs a batch of `beta` instances through the full Zaatar argument.
template <typename F>
BatchMeasurement MeasureZaatarBatch(const App<F>& app,
                                    const CompiledProgram<F>& program,
                                    size_t beta, const PcpParams& params,
                                    uint64_t seed,
                                    bool measure_native = true) {
  BatchMeasurement out;
  out.stats = ComputeStats(
      program, measure_native ? app.measure_native_seconds() : 0.0);

  Prg prg(seed);
  Qap<F> qap(program.zaatar.r1cs);

  Stopwatch sw;
  auto queries = ZaatarPcp<F>::GenerateQueries(qap, params, prg);
  out.query_generation_s = sw.Lap();
  out.total_queries = queries.TotalQueryCount();
  out.proof_len = queries.z_len + queries.h_len;

  auto setup = ZaatarArgument<F>::Setup(std::move(queries), prg,
                                        out.query_generation_s);
  out.commit_setup_s = setup.costs.commit_setup_s;

  for (size_t i = 0; i < beta; i++) {
    AppInstance<F> inst = app.make_instance(prg);

    Stopwatch phase;
    std::vector<F> gw = program.SolveGinger(inst.inputs);
    std::vector<F> w = program.SolveZaatar(gw);
    out.prover.solve_constraints_s += phase.Lap();

    ZaatarProof<F> proof = BuildZaatarProof(qap, w);
    out.prover.construct_proof_s += phase.Lap();

    auto instance_proof =
        ZaatarArgument<F>::Prove({&proof.z, &proof.h}, setup);
    out.prover.crypto_s += instance_proof.costs.crypto_s;
    out.prover.answer_queries_s += instance_proof.costs.answer_queries_s;

    std::vector<F> outputs = program.ExtractOutputs(gw);
    if (outputs != inst.expected_outputs) {
      throw std::runtime_error(app.name +
                               ": compiled outputs disagree with the native "
                               "reference");
    }
    std::vector<F> bound = program.BoundValues(inst.inputs, outputs);
    bool ok = ZaatarArgument<F>::VerifyInstance(
        setup, instance_proof, bound, &out.verifier_per_instance_s);
    out.all_accepted = out.all_accepted && ok;
  }
  double b = static_cast<double>(beta);
  out.prover.solve_constraints_s /= b;
  out.prover.construct_proof_s /= b;
  out.prover.crypto_s /= b;
  out.prover.answer_queries_s /= b;
  out.verifier_per_instance_s /= b;
  return out;
}

// Same for the Ginger baseline. Only feasible at small sizes (the proof is
// |Z| + |Z|^2 long); larger sizes use the Figure 3 cost model, as the paper
// itself does.
template <typename F>
BatchMeasurement MeasureGingerBatch(const App<F>& app,
                                    const CompiledProgram<F>& program,
                                    size_t beta, const PcpParams& params,
                                    uint64_t seed,
                                    bool measure_native = true) {
  BatchMeasurement out;
  out.stats = ComputeStats(
      program, measure_native ? app.measure_native_seconds() : 0.0);

  Prg prg(seed);
  GingerPcpInstance<F> pcp_instance = BuildGingerPcpInstance(program.ginger);

  Stopwatch sw;
  auto queries = GingerPcp<F>::GenerateQueries(pcp_instance, params, prg);
  out.query_generation_s = sw.Lap();
  out.total_queries = queries.TotalQueryCount();
  out.proof_len = queries.n + queries.n * queries.n;

  auto setup = GingerArgument<F>::Setup(std::move(queries), prg,
                                        out.query_generation_s);
  out.commit_setup_s = setup.costs.commit_setup_s;

  for (size_t i = 0; i < beta; i++) {
    AppInstance<F> inst = app.make_instance(prg);

    Stopwatch phase;
    std::vector<F> gw = program.SolveGinger(inst.inputs);
    out.prover.solve_constraints_s += phase.Lap();

    GingerProof<F> proof = BuildGingerProof(pcp_instance, gw);
    out.prover.construct_proof_s += phase.Lap();

    auto instance_proof =
        GingerArgument<F>::Prove({&proof.z, &proof.tensor}, setup);
    out.prover.crypto_s += instance_proof.costs.crypto_s;
    out.prover.answer_queries_s += instance_proof.costs.answer_queries_s;

    std::vector<F> outputs = program.ExtractOutputs(gw);
    if (outputs != inst.expected_outputs) {
      throw std::runtime_error(app.name +
                               ": compiled outputs disagree with the native "
                               "reference");
    }
    std::vector<F> bound = program.BoundValues(inst.inputs, outputs);
    bool ok = GingerArgument<F>::VerifyInstance(
        setup, instance_proof, bound, &out.verifier_per_instance_s);
    out.all_accepted = out.all_accepted && ok;
  }
  double b = static_cast<double>(beta);
  out.prover.solve_constraints_s /= b;
  out.prover.construct_proof_s /= b;
  out.prover.crypto_s /= b;
  out.prover.answer_queries_s /= b;
  out.verifier_per_instance_s /= b;
  return out;
}

}  // namespace zaatar

#endif  // SRC_APPS_HARNESS_H_
