// End-to-end measurement harness: compiles an App, runs a full batched
// argument, and reports the per-phase costs the evaluation figures need.
// Used by bench/ and examples/.
//
// The batch runs as a REAL two-party exchange: the verifier session lives on
// the calling thread, the prover session on a dedicated thread, and the only
// thing that crosses between them is serialized protocol messages over a
// Transport (in-memory loopback by default, a socketpair via `links`). Every
// benchmark and test therefore exercises the same byte-level boundary a
// networked deployment would. The Prg consumption order (queries -> keys ->
// commitment setup -> instances) matches the old in-process harness exactly,
// so accept/reject outcomes are bit-identical to it at equal seeds.

#ifndef SRC_APPS_HARNESS_H_
#define SRC_APPS_HARNESS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/apps/suite.h"
#include "src/argument/argument.h"
#include "src/argument/cost_model.h"
#include "src/constraints/qap.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/pcp/ginger_pcp.h"
#include "src/pcp/zaatar_pcp.h"
#include "src/protocol/session.h"

namespace zaatar {

struct BatchMeasurement {
  ComputationStats stats;          // includes measured t_local
  // The per-phase cost fields below are views over the span tree in `trace`:
  // each is the summed duration of the correspondingly named spans (divided
  // by beta for the per-instance ones). Under cmake -DZAATAR_TRACE=OFF the
  // spans compile away and these read 0.0 — only commit_setup_s survives,
  // since Argument::Setup keeps its own Stopwatch.
  double query_generation_s = 0;   // "verifier.query_gen" (per batch)
  double commit_setup_s = 0;       // verifier, amortized over the batch
  ProverCosts prover;              // mean per instance, from prover.* spans
  double verifier_per_instance_s = 0;  // "verifier.verify" / beta
  size_t proof_len = 0;
  size_t total_queries = 0;

  // The full span tree and metrics registry of the run (always populated;
  // export with obs::ExportJson). The root span is "harness.batch"; the
  // prover thread's spans are stitched under it.
  std::shared_ptr<obs::Tracer> trace;
  std::shared_ptr<obs::Metrics> metrics;

  // Per-instance verdicts (the PR-1 taxonomy), not just their conjunction:
  // instance i's result is instance_results[i], verdict_counts is indexed by
  // VerifyVerdict, first_failing_index is -1 when every instance accepted.
  std::vector<VerifyInstanceResult> instance_results;
  std::array<size_t, kNumVerifyVerdicts> verdict_counts{};
  ptrdiff_t first_failing_index = -1;
  bool all_accepted = true;

  // Bytes actually moved across the transport.
  size_t setup_message_bytes = 0;
  size_t proof_message_bytes = 0;  // sum over the batch

  // Recovery accounting: how many times an instance was re-attempted after a
  // transport failure, and how many connections (initial + reconnects) the
  // batch consumed. 0 and 1 respectively on a healthy channel.
  size_t transport_retries = 0;
  size_t transport_connections = 0;
};

// Folds one verdict into the measurement's taxonomy bookkeeping.
inline void RecordVerdict(BatchMeasurement* out, size_t index,
                          VerifyInstanceResult result) {
  out->verdict_counts[static_cast<size_t>(result.verdict)]++;
  if (!result.accepted()) {
    out->all_accepted = false;
    if (out->first_failing_index < 0) {
      out->first_failing_index = static_cast<ptrdiff_t>(index);
    }
  }
  out->instance_results.push_back(std::move(result));
}

// Fills the encoding statistics (Figure 9 quantities) without running
// anything.
template <typename F>
ComputationStats ComputeStats(const CompiledProgram<F>& program,
                              double t_local_s) {
  ComputationStats s;
  s.t_local_s = t_local_s;
  s.z_ginger = program.ZGinger();
  s.c_ginger = program.CGinger();
  s.k = program.ginger.AdditiveTermCount();
  s.k2 = program.ginger.DistinctQuadTermCount();
  s.z_zaatar = program.ZZaatar();
  s.c_zaatar = program.CZaatar();
  s.num_inputs = program.ginger.layout.num_inputs;
  s.num_outputs = program.ginger.layout.num_outputs;
  return s;
}

// Backend requirements for MeasureBatch:
//   using Adapter = ...;                       // the Argument adapter
//   struct Prepared { explicit Prepared(const CompiledProgram<F>&); ... };
//   static Queries GenerateQueries(const Prepared&, const PcpParams&, Prg&);
//   static size_t ProofLen(const Queries&);
//   static ProofVectors BuildProofVectors(const Prepared&,
//       const CompiledProgram<F>&, const std::vector<F>& ginger_assignment);
// ProofVectors exposes `first` and `second`, the two oracle vectors.
// BuildProofVectors records its phases as "prover.solve" /
// "prover.construct_proof" spans on the ambient tracer.

// Zaatar backend: oracles are z and the QAP quotient h.
template <typename F>
struct ZaatarHarnessBackend {
  using Adapter = ZaatarAdapter<F>;
  using Queries = typename ZaatarPcp<F>::Queries;

  struct Prepared {
    explicit Prepared(const CompiledProgram<F>& program)
        : qap(program.zaatar.r1cs) {
      // One-time prover setup (CRT basis, divisor-inverse NTT images,
      // subproduct-tree residue images) happens here, outside the
      // per-instance prover.construct_proof spans — it is amortized across
      // the batch exactly like the verifier's query setup.
      qap.WarmProver();
    }
    Qap<F> qap;  // holds a pointer into the program's R1CS; do not copy
  };

  struct ProofVectors {
    std::vector<F> first;   // z
    std::vector<F> second;  // h
  };

  static Queries GenerateQueries(const Prepared& prep, const PcpParams& params,
                                 Prg& prg) {
    return ZaatarPcp<F>::GenerateQueries(prep.qap, params, prg);
  }

  static size_t ProofLen(const Queries& q) { return q.z_len + q.h_len; }

  static ProofVectors BuildProofVectors(
      const Prepared& prep, const CompiledProgram<F>& program,
      const std::vector<F>& ginger_assignment) {
    std::vector<F> w;
    {
      obs::Span solve("prover.solve");
      w = program.SolveZaatar(ginger_assignment);
    }
    obs::Span construct("prover.construct_proof");
    ZaatarProof<F> proof = BuildZaatarProof(prep.qap, w);
    return {std::move(proof.z), std::move(proof.h)};
  }
};

// Ginger baseline backend: oracles are z and the tensor z ⊗ z. Only feasible
// at small sizes (the proof is |Z| + |Z|^2 long); larger sizes use the
// Figure 3 cost model, as the paper itself does.
template <typename F>
struct GingerHarnessBackend {
  using Adapter = GingerAdapter<F>;
  using Queries = typename GingerPcp<F>::Queries;

  struct Prepared {
    explicit Prepared(const CompiledProgram<F>& program)
        : pcp(BuildGingerPcpInstance(program.ginger)) {}
    GingerPcpInstance<F> pcp;
  };

  struct ProofVectors {
    std::vector<F> first;   // z
    std::vector<F> second;  // z ⊗ z
  };

  static Queries GenerateQueries(const Prepared& prep, const PcpParams& params,
                                 Prg& prg) {
    return GingerPcp<F>::GenerateQueries(prep.pcp, params, prg);
  }

  static size_t ProofLen(const Queries& q) { return q.n + q.n * q.n; }

  static ProofVectors BuildProofVectors(
      const Prepared& prep, const CompiledProgram<F>& /*program*/,
      const std::vector<F>& ginger_assignment) {
    obs::Span construct("prover.construct_proof");
    GingerProof<F> proof = BuildGingerProof(prep.pcp, ginger_assignment);
    return {std::move(proof.z), std::move(proof.tensor)};
  }
};

// Knobs for the two-party exchange inside MeasureBatch. The defaults are the
// historical behavior: in-memory loopback, infinite deadlines, and a small
// retry budget that never fires on a healthy channel.
struct MeasureOptions {
  bool measure_native = true;

  // Which kind of channel the harness builds when it (re)connects.
  enum class Link { kLoopback, kSocketpair };
  Link link = Link::kLoopback;

  // Deadlines and queue bounds for every connection the harness makes.
  protocol::TransportOptions transport;

  // Reconnect-and-replay policy for the verifier (see src/protocol/retry.h).
  // On an exhausted budget the in-flight instance degrades to a
  // TRANSPORT_FAILED verdict and the batch continues.
  protocol::BackoffPolicy backoff;

  // Optional decorator applied to both endpoints of every fresh connection —
  // this is where tests splice in chaos (see src/testing/chaos_transport.h)
  // without src/apps depending on src/testing. `verifier_side` says which
  // end is being wrapped; `connection` is the 0-based connection ordinal.
  std::function<std::unique_ptr<protocol::Transport>(
      std::unique_ptr<protocol::Transport>, bool verifier_side,
      uint32_t connection)>
      wrap_transport;

  // Legacy escape hatch: run over caller-owned, already-connected endpoints
  // (left = verifier, right = prover). Reconnection is impossible on such a
  // channel, so a transport failure consumes the retry budget immediately;
  // both endpoints are closed when the batch ends.
  protocol::TransportPair* preconnected = nullptr;
};

// Runs a batch of `beta` instances of `app` through the full argument, with
// the prover and verifier as message-driven sessions on separate threads.
//
// Failure semantics (DESIGN.md §13): a transport failure on the verifier
// side tears the channel down and reconnects — a fresh prover thread is
// spawned, re-fed the batch setup, and resumed at the first undecided
// instance. When the retry budget runs out, that one instance is recorded
// as TRANSPORT_FAILED and the batch moves on; the channel never decides a
// proof. Genuine prover-side bugs (output mismatch with the native
// reference, phase violations) are still fatal and rethrown here.
template <typename F, typename Backend>
BatchMeasurement MeasureBatch(const App<F>& app,
                              const CompiledProgram<F>& program, size_t beta,
                              const PcpParams& params, uint64_t seed,
                              const MeasureOptions& opt) {
  using Adapter = typename Backend::Adapter;

  BatchMeasurement out;
  out.trace = std::make_shared<obs::Tracer>();
  out.metrics = std::make_shared<obs::Metrics>();
  obs::ScopedThreadTracer install_tracer(out.trace.get());
  obs::ScopedThreadMetrics install_metrics(out.metrics.get());

  {
    // The root span covers the whole batch; every verifier-thread span below
    // is its child, and the prover thread stitches its subtree under it via
    // the default-parent mechanism.
    obs::Span root("harness.batch");
    const uint32_t root_id = root.id();

    Prg prg(seed);
    // Backend::Prepared runs the one-time prover setup (e.g. the Zaatar
    // backend warms the residue-domain caches), so it belongs inside the
    // prepare span: the span-tree tests assert the batch root's children
    // account for the wall time.
    auto prep = [&] {
      obs::Span prepare("harness.prepare");
      out.stats = ComputeStats(
          program, opt.measure_native ? app.measure_native_seconds() : 0.0);
      return typename Backend::Prepared(program);
    }();

    Stopwatch sw;
    typename Backend::Queries queries = [&] {
      obs::Span span("verifier.query_gen");
      return Backend::GenerateQueries(prep, params, prg);
    }();
    const double query_generation_s = sw.Lap();
    out.total_queries = queries.TotalQueryCount();
    out.proof_len = Backend::ProofLen(queries);

    auto verifier = [&] {
      obs::Span span("verifier.commit_setup");
      return protocol::VerifierSession<F, Adapter>(std::move(queries), prg,
                                                   query_generation_s);
    }();
    out.commit_setup_s = verifier.setup().costs.commit_setup_s;

    // Instances are drawn before the exchange starts so the Prg consumption
    // order matches the old in-process harness (proving and verifying never
    // touch the Prg, so the streams are identical either way) and the prover
    // thread shares them read-only.
    std::vector<AppInstance<F>> instances;
    instances.reserve(beta);
    {
      obs::Span draw("harness.draw_instances");
      for (size_t i = 0; i < beta; i++) {
        instances.push_back(app.make_instance(prg));
      }
    }

    // The prover side: a real session fed only by transport bytes, spawned
    // (and respawned after a reconnect) by the verifier's transport factory
    // below. Channel-class trouble — a deadline, a closed pipe, a frame that
    // no longer decodes — makes the prover exit QUIETLY: the verifier owns
    // recovery, and a replacement prover resumes at the first undecided
    // instance. Only genuine local bugs (output mismatch with the native
    // reference, phase violations) are stashed in `prover_error` and
    // rethrown on the calling thread. Its spans ("prover.solve",
    // "prover.construct_proof", and the session's "prover.commit"/
    // "prover.answer") land in the same tracer, parented under the batch
    // root.
    std::string prover_error;  // written by the prover thread, read after join
    auto prover_main = [&](uint32_t resume, protocol::Transport* link) {
      obs::ScopedThreadTracer stitch(out.trace.get(), root_id);
      obs::ScopedThreadMetrics prover_metrics(out.metrics.get());
      auto fatal = [&](const std::string& msg) {
        if (prover_error.empty()) {
          prover_error = msg;
        }
        // Unblock a verifier waiting on the next proof frame.
        link->Close();
      };
      try {
        protocol::ProverSession<F> session;
        if (Status st = session.StartAtInstance(resume); !st.ok()) {
          fatal("prover resume: " + st.ToString());
          return;
        }
        if (Status st = session.ReceiveSetup(*link); !st.ok()) {
          if (st.code() == StatusCode::kPhaseViolation) {
            fatal("prover setup: " + st.ToString());
          }
          return;  // channel-class: the verifier recovers
        }
        for (size_t i = resume; i < beta; i++) {
          std::vector<F> gw;
          {
            obs::Span solve("prover.solve");
            gw = program.SolveGinger(instances[i].inputs);
          }

          typename Backend::ProofVectors vectors =
              Backend::BuildProofVectors(prep, program, gw);

          std::vector<F> outputs = program.ExtractOutputs(gw);
          if (outputs != instances[i].expected_outputs) {
            fatal(app.name +
                  ": compiled outputs disagree with the native reference");
            return;
          }
          Status shape = Adapter::ValidateProverVectors(
              session.context(), {&vectors.first, &vectors.second});
          if (!shape.ok()) {
            fatal("prover vectors: " + shape.ToString());
            return;
          }
          auto sent = session.ProveInstance(
              *link, {&vectors.first, &vectors.second});
          if (!sent.ok()) {
            if (sent.status().code() == StatusCode::kPhaseViolation) {
              fatal("prover instance " + std::to_string(i) + ": " +
                    sent.status().ToString());
            }
            return;
          }
          auto verdict = session.ReceiveVerdict(*link);
          if (!verdict.ok()) {
            // Includes a garbled verdict frame (kMalformed): the session
            // cannot resync mid-stream, so behave as a dead peer and let
            // the reconnect path replay the instance.
            if (verdict.status().code() == StatusCode::kPhaseViolation) {
              fatal("prover verdict " + std::to_string(i) + ": " +
                    verdict.status().ToString());
            }
            return;
          }
        }
      } catch (const std::exception& e) {
        fatal(e.what());
      }
    };

    // Prover thread lifecycle. `reap` closes the prover's endpoint (waking
    // it from any blocking Receive/Send) and joins; `spawn` reaps the
    // previous prover first, so at most one is ever alive and `prover_error`
    // is never written concurrently.
    std::unique_ptr<protocol::Transport> prover_link;
    std::thread prover_thread;
    auto reap = [&] {
      if (prover_thread.joinable()) {
        if (prover_link != nullptr) {
          prover_link->Close();
        }
        prover_thread.join();
      }
      prover_link.reset();
    };
    auto spawn = [&](uint32_t resume,
                     std::unique_ptr<protocol::Transport> link) {
      reap();
      prover_link = std::move(link);
      prover_thread = std::thread(prover_main, resume, prover_link.get());
    };

    // The transport factory: called by RetryingSession on first connect and
    // after every teardown. It builds (or re-wraps) a channel, hands the
    // right end to a fresh prover thread resuming at `resume`, and returns
    // the left end to the verifier.
    uint32_t connection_ordinal = 0;
    protocol::TransportFactory factory;
    if (opt.preconnected != nullptr) {
      protocol::TransportPair* links = opt.preconnected;
      factory = [&, links](uint32_t resume)
          -> StatusOr<std::unique_ptr<protocol::Transport>> {
        if (connection_ordinal++ > 0) {
          return TruncatedError(
              "preconnected transport cannot be re-established");
        }
        spawn(resume,
              std::make_unique<protocol::TransportRef>(links->right.get()));
        return std::unique_ptr<protocol::Transport>(
            std::make_unique<protocol::TransportRef>(links->left.get()));
      };
    } else {
      factory = [&](uint32_t resume)
          -> StatusOr<std::unique_ptr<protocol::Transport>> {
        protocol::TransportPair pair;
        if (opt.link == MeasureOptions::Link::kSocketpair) {
          ZAATAR_ASSIGN_OR_RETURN(
              pair, protocol::PipeTransport::CreatePair(opt.transport));
        } else {
          pair = protocol::MakeLoopbackPair(opt.transport);
        }
        const uint32_t ordinal = connection_ordinal++;
        if (opt.wrap_transport) {
          pair.left = opt.wrap_transport(std::move(pair.left),
                                         /*verifier_side=*/true, ordinal);
          pair.right = opt.wrap_transport(std::move(pair.right),
                                          /*verifier_side=*/false, ordinal);
        }
        spawn(resume, std::move(pair.right));
        return std::move(pair.left);
      };
    }

    protocol::BackoffPolicy backoff = opt.backoff;
    if (backoff.jitter_seed == 0) {
      backoff.jitter_seed = seed;  // deterministic per-run schedule
    }
    protocol::RetryingSession<F, Adapter> rsession(std::move(verifier),
                                                   factory, backoff);

    // The verifier side drives the calling thread.
    try {
      {
        obs::Span span("harness.send_setup");
        Status st = rsession.EnsureConnected();
        if (!st.ok() && !protocol::IsTransportFailure(st)) {
          throw std::runtime_error("verifier setup: " + st.ToString());
        }
        // A transport failure here is retried by the first DecideNext.
      }
      for (size_t i = 0; i < beta; i++) {
        std::vector<F> bound = program.BoundValues(
            instances[i].inputs, instances[i].expected_outputs);
        auto result = rsession.DecideNext(bound);
        VerifyInstanceResult decided;
        if (result.ok()) {
          decided = *result;
        } else if (protocol::IsTransportFailure(result.status())) {
          // Retry budget exhausted. If the prover actually died of a local
          // bug, surface that; otherwise degrade this one instance and keep
          // deciding the rest of the batch.
          reap();
          if (!prover_error.empty()) {
            throw std::runtime_error(prover_error);
          }
          auto skipped = rsession.session().SkipInstanceTransportFailed(
              result.status().ToString());
          if (!skipped.ok()) {
            throw std::runtime_error("verifier instance " + std::to_string(i) +
                                     ": " + skipped.status().ToString());
          }
          obs::MetricAdd("transport.instances_failed");
          decided = *skipped;
        } else {
          throw std::runtime_error("verifier instance " + std::to_string(i) +
                                   ": " + result.status().ToString());
        }
        RecordVerdict(&out, i, decided);
      }
    } catch (...) {
      // Unblock the prover (it may be waiting for a verdict), reap it, and
      // prefer its error — a transport failure seen here is usually the
      // symptom of the prover dying first.
      rsession.Disconnect();
      reap();
      if (!prover_error.empty()) {
        throw std::runtime_error(prover_error);
      }
      throw;
    }
    rsession.Disconnect();
    reap();
    if (!prover_error.empty()) {
      throw std::runtime_error(prover_error);
    }

    out.setup_message_bytes = rsession.session().setup_bytes_sent();
    out.proof_message_bytes = rsession.session().proof_bytes_received();
    out.transport_retries = static_cast<size_t>(rsession.total_retries());
    out.transport_connections = static_cast<size_t>(rsession.connections());
  }  // closes the "harness.batch" root span

  // Cost fields are views over the span tree (0.0 under ZAATAR_TRACE=0).
  const obs::Tracer& t = *out.trace;
  const double b = static_cast<double>(beta);
  out.query_generation_s = t.SumSeconds("verifier.query_gen");
  out.prover.solve_constraints_s = t.SumSeconds("prover.solve") / b;
  out.prover.construct_proof_s = t.SumSeconds("prover.construct_proof") / b;
  out.prover.crypto_s = t.SumSeconds("prover.commit") / b;
  out.prover.answer_queries_s = t.SumSeconds("prover.answer") / b;
  out.verifier_per_instance_s = t.SumSeconds("verifier.verify") / b;
  return out;
}

// Legacy signature: the historical single-shot semantics (no deadlines, no
// reconnection — `backoff.max_retries = 0` makes the first transport failure
// final). `links` optionally supplies caller-owned endpoints (left =
// verifier side, right = prover side); the default is an in-memory loopback.
template <typename F, typename Backend>
BatchMeasurement MeasureBatch(const App<F>& app,
                              const CompiledProgram<F>& program, size_t beta,
                              const PcpParams& params, uint64_t seed,
                              bool measure_native = true,
                              protocol::TransportPair* links = nullptr) {
  MeasureOptions opt;
  opt.measure_native = measure_native;
  opt.preconnected = links;
  opt.backoff.max_retries = 0;
  return MeasureBatch<F, Backend>(app, program, beta, params, seed, opt);
}

// Runs a batch of `beta` instances through the full Zaatar argument.
template <typename F>
BatchMeasurement MeasureZaatarBatch(const App<F>& app,
                                    const CompiledProgram<F>& program,
                                    size_t beta, const PcpParams& params,
                                    uint64_t seed,
                                    bool measure_native = true) {
  return MeasureBatch<F, ZaatarHarnessBackend<F>>(app, program, beta, params,
                                                  seed, measure_native);
}

template <typename F>
BatchMeasurement MeasureZaatarBatch(const App<F>& app,
                                    const CompiledProgram<F>& program,
                                    size_t beta, const PcpParams& params,
                                    uint64_t seed, const MeasureOptions& opt) {
  return MeasureBatch<F, ZaatarHarnessBackend<F>>(app, program, beta, params,
                                                  seed, opt);
}

// Same for the Ginger baseline.
template <typename F>
BatchMeasurement MeasureGingerBatch(const App<F>& app,
                                    const CompiledProgram<F>& program,
                                    size_t beta, const PcpParams& params,
                                    uint64_t seed,
                                    bool measure_native = true) {
  return MeasureBatch<F, GingerHarnessBackend<F>>(app, program, beta, params,
                                                  seed, measure_native);
}

template <typename F>
BatchMeasurement MeasureGingerBatch(const App<F>& app,
                                    const CompiledProgram<F>& program,
                                    size_t beta, const PcpParams& params,
                                    uint64_t seed, const MeasureOptions& opt) {
  return MeasureBatch<F, GingerHarnessBackend<F>>(app, program, beta, params,
                                                  seed, opt);
}

}  // namespace zaatar

#endif  // SRC_APPS_HARNESS_H_
