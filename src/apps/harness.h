// End-to-end measurement harness: compiles an App, runs a full batched
// argument, and reports the per-phase costs the evaluation figures need.
// Used by bench/ and examples/.
//
// The batch runs as a REAL two-party exchange: the verifier session lives on
// the calling thread, the prover session on a dedicated thread, and the only
// thing that crosses between them is serialized protocol messages over a
// Transport (in-memory loopback by default, a socketpair via `links`). Every
// benchmark and test therefore exercises the same byte-level boundary a
// networked deployment would. The Prg consumption order (queries -> keys ->
// commitment setup -> instances) matches the old in-process harness exactly,
// so accept/reject outcomes are bit-identical to it at equal seeds.

#ifndef SRC_APPS_HARNESS_H_
#define SRC_APPS_HARNESS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/apps/suite.h"
#include "src/argument/argument.h"
#include "src/argument/cost_model.h"
#include "src/constraints/qap.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/pcp/ginger_pcp.h"
#include "src/pcp/zaatar_pcp.h"
#include "src/protocol/session.h"

namespace zaatar {

struct BatchMeasurement {
  ComputationStats stats;          // includes measured t_local
  // The per-phase cost fields below are views over the span tree in `trace`:
  // each is the summed duration of the correspondingly named spans (divided
  // by beta for the per-instance ones). Under cmake -DZAATAR_TRACE=OFF the
  // spans compile away and these read 0.0 — only commit_setup_s survives,
  // since Argument::Setup keeps its own Stopwatch.
  double query_generation_s = 0;   // "verifier.query_gen" (per batch)
  double commit_setup_s = 0;       // verifier, amortized over the batch
  ProverCosts prover;              // mean per instance, from prover.* spans
  double verifier_per_instance_s = 0;  // "verifier.verify" / beta
  size_t proof_len = 0;
  size_t total_queries = 0;

  // The full span tree and metrics registry of the run (always populated;
  // export with obs::ExportJson). The root span is "harness.batch"; the
  // prover thread's spans are stitched under it.
  std::shared_ptr<obs::Tracer> trace;
  std::shared_ptr<obs::Metrics> metrics;

  // Per-instance verdicts (the PR-1 taxonomy), not just their conjunction:
  // instance i's result is instance_results[i], verdict_counts is indexed by
  // VerifyVerdict, first_failing_index is -1 when every instance accepted.
  std::vector<VerifyInstanceResult> instance_results;
  std::array<size_t, kNumVerifyVerdicts> verdict_counts{};
  ptrdiff_t first_failing_index = -1;
  bool all_accepted = true;

  // Bytes actually moved across the transport.
  size_t setup_message_bytes = 0;
  size_t proof_message_bytes = 0;  // sum over the batch
};

// Folds one verdict into the measurement's taxonomy bookkeeping.
inline void RecordVerdict(BatchMeasurement* out, size_t index,
                          VerifyInstanceResult result) {
  out->verdict_counts[static_cast<size_t>(result.verdict)]++;
  if (!result.accepted()) {
    out->all_accepted = false;
    if (out->first_failing_index < 0) {
      out->first_failing_index = static_cast<ptrdiff_t>(index);
    }
  }
  out->instance_results.push_back(std::move(result));
}

// Fills the encoding statistics (Figure 9 quantities) without running
// anything.
template <typename F>
ComputationStats ComputeStats(const CompiledProgram<F>& program,
                              double t_local_s) {
  ComputationStats s;
  s.t_local_s = t_local_s;
  s.z_ginger = program.ZGinger();
  s.c_ginger = program.CGinger();
  s.k = program.ginger.AdditiveTermCount();
  s.k2 = program.ginger.DistinctQuadTermCount();
  s.z_zaatar = program.ZZaatar();
  s.c_zaatar = program.CZaatar();
  s.num_inputs = program.ginger.layout.num_inputs;
  s.num_outputs = program.ginger.layout.num_outputs;
  return s;
}

// Backend requirements for MeasureBatch:
//   using Adapter = ...;                       // the Argument adapter
//   struct Prepared { explicit Prepared(const CompiledProgram<F>&); ... };
//   static Queries GenerateQueries(const Prepared&, const PcpParams&, Prg&);
//   static size_t ProofLen(const Queries&);
//   static ProofVectors BuildProofVectors(const Prepared&,
//       const CompiledProgram<F>&, const std::vector<F>& ginger_assignment);
// ProofVectors exposes `first` and `second`, the two oracle vectors.
// BuildProofVectors records its phases as "prover.solve" /
// "prover.construct_proof" spans on the ambient tracer.

// Zaatar backend: oracles are z and the QAP quotient h.
template <typename F>
struct ZaatarHarnessBackend {
  using Adapter = ZaatarAdapter<F>;
  using Queries = typename ZaatarPcp<F>::Queries;

  struct Prepared {
    explicit Prepared(const CompiledProgram<F>& program)
        : qap(program.zaatar.r1cs) {}
    Qap<F> qap;  // holds a pointer into the program's R1CS; do not copy
  };

  struct ProofVectors {
    std::vector<F> first;   // z
    std::vector<F> second;  // h
  };

  static Queries GenerateQueries(const Prepared& prep, const PcpParams& params,
                                 Prg& prg) {
    return ZaatarPcp<F>::GenerateQueries(prep.qap, params, prg);
  }

  static size_t ProofLen(const Queries& q) { return q.z_len + q.h_len; }

  static ProofVectors BuildProofVectors(
      const Prepared& prep, const CompiledProgram<F>& program,
      const std::vector<F>& ginger_assignment) {
    std::vector<F> w;
    {
      obs::Span solve("prover.solve");
      w = program.SolveZaatar(ginger_assignment);
    }
    obs::Span construct("prover.construct_proof");
    ZaatarProof<F> proof = BuildZaatarProof(prep.qap, w);
    return {std::move(proof.z), std::move(proof.h)};
  }
};

// Ginger baseline backend: oracles are z and the tensor z ⊗ z. Only feasible
// at small sizes (the proof is |Z| + |Z|^2 long); larger sizes use the
// Figure 3 cost model, as the paper itself does.
template <typename F>
struct GingerHarnessBackend {
  using Adapter = GingerAdapter<F>;
  using Queries = typename GingerPcp<F>::Queries;

  struct Prepared {
    explicit Prepared(const CompiledProgram<F>& program)
        : pcp(BuildGingerPcpInstance(program.ginger)) {}
    GingerPcpInstance<F> pcp;
  };

  struct ProofVectors {
    std::vector<F> first;   // z
    std::vector<F> second;  // z ⊗ z
  };

  static Queries GenerateQueries(const Prepared& prep, const PcpParams& params,
                                 Prg& prg) {
    return GingerPcp<F>::GenerateQueries(prep.pcp, params, prg);
  }

  static size_t ProofLen(const Queries& q) { return q.n + q.n * q.n; }

  static ProofVectors BuildProofVectors(
      const Prepared& prep, const CompiledProgram<F>& /*program*/,
      const std::vector<F>& ginger_assignment) {
    obs::Span construct("prover.construct_proof");
    GingerProof<F> proof = BuildGingerProof(prep.pcp, ginger_assignment);
    return {std::move(proof.z), std::move(proof.tensor)};
  }
};

// Runs a batch of `beta` instances of `app` through the full argument, with
// the prover and verifier as message-driven sessions on separate threads.
// `links` optionally supplies the transport pair (left = verifier side,
// right = prover side); the default is an in-memory loopback.
template <typename F, typename Backend>
BatchMeasurement MeasureBatch(const App<F>& app,
                              const CompiledProgram<F>& program, size_t beta,
                              const PcpParams& params, uint64_t seed,
                              bool measure_native = true,
                              protocol::TransportPair* links = nullptr) {
  using Adapter = typename Backend::Adapter;

  BatchMeasurement out;
  out.trace = std::make_shared<obs::Tracer>();
  out.metrics = std::make_shared<obs::Metrics>();
  obs::ScopedThreadTracer install_tracer(out.trace.get());
  obs::ScopedThreadMetrics install_metrics(out.metrics.get());

  {
    // The root span covers the whole batch; every verifier-thread span below
    // is its child, and the prover thread stitches its subtree under it via
    // the default-parent mechanism.
    obs::Span root("harness.batch");
    const uint32_t root_id = root.id();

    {
      obs::Span prepare("harness.prepare");
      out.stats = ComputeStats(
          program, measure_native ? app.measure_native_seconds() : 0.0);
    }

    Prg prg(seed);
    typename Backend::Prepared prep(program);

    Stopwatch sw;
    typename Backend::Queries queries = [&] {
      obs::Span span("verifier.query_gen");
      return Backend::GenerateQueries(prep, params, prg);
    }();
    const double query_generation_s = sw.Lap();
    out.total_queries = queries.TotalQueryCount();
    out.proof_len = Backend::ProofLen(queries);

    auto verifier = [&] {
      obs::Span span("verifier.commit_setup");
      return protocol::VerifierSession<F, Adapter>(std::move(queries), prg,
                                                   query_generation_s);
    }();
    out.commit_setup_s = verifier.setup().costs.commit_setup_s;

    // Instances are drawn before the exchange starts so the Prg consumption
    // order matches the old in-process harness (proving and verifying never
    // touch the Prg, so the streams are identical either way) and the prover
    // thread shares them read-only.
    std::vector<AppInstance<F>> instances;
    instances.reserve(beta);
    {
      obs::Span draw("harness.draw_instances");
      for (size_t i = 0; i < beta; i++) {
        instances.push_back(app.make_instance(prg));
      }
    }

    protocol::TransportPair local;
    if (links == nullptr) {
      local = protocol::MakeLoopbackPair();
      links = &local;
    }
    protocol::Transport& verifier_link = *links->left;
    protocol::Transport& prover_link = *links->right;

    // The prover side: a real session fed only by transport bytes. Failures
    // are stashed and rethrown on the calling thread after join. Its spans
    // ("prover.solve", "prover.construct_proof", and the session's
    // "prover.commit"/"prover.answer") land in the same tracer, parented
    // under the batch root.
    std::string prover_error;
    std::thread prover_thread([&] {
      obs::ScopedThreadTracer stitch(out.trace.get(), root_id);
      obs::ScopedThreadMetrics prover_metrics(out.metrics.get());
      try {
        protocol::ProverSession<F> session;
        Status st = session.ReceiveSetup(prover_link);
        if (!st.ok()) {
          throw std::runtime_error("prover setup: " + st.ToString());
        }
        for (size_t i = 0; i < beta; i++) {
          std::vector<F> gw;
          {
            obs::Span solve("prover.solve");
            gw = program.SolveGinger(instances[i].inputs);
          }

          typename Backend::ProofVectors vectors =
              Backend::BuildProofVectors(prep, program, gw);

          std::vector<F> outputs = program.ExtractOutputs(gw);
          if (outputs != instances[i].expected_outputs) {
            throw std::runtime_error(app.name +
                                     ": compiled outputs disagree with the "
                                     "native reference");
          }
          Status shape = Adapter::ValidateProverVectors(
              session.context(), {&vectors.first, &vectors.second});
          if (!shape.ok()) {
            throw std::runtime_error("prover vectors: " + shape.ToString());
          }
          auto sent = session.ProveInstance(
              prover_link, {&vectors.first, &vectors.second});
          if (!sent.ok()) {
            throw std::runtime_error("prover instance " + std::to_string(i) +
                                     ": " + sent.status().ToString());
          }
          auto verdict = session.ReceiveVerdict(prover_link);
          if (!verdict.ok()) {
            throw std::runtime_error("prover verdict " + std::to_string(i) +
                                     ": " + verdict.status().ToString());
          }
        }
      } catch (const std::exception& e) {
        prover_error = e.what();
        // Unblock a verifier waiting on the next proof frame.
        prover_link.Close();
      }
    });

    // The verifier side drives the calling thread.
    try {
      auto setup_sent = [&] {
        obs::Span span("harness.send_setup");
        return verifier.SendSetup(verifier_link);
      }();
      if (!setup_sent.ok()) {
        throw std::runtime_error("verifier setup: " +
                                 setup_sent.status().ToString());
      }
      out.setup_message_bytes = *setup_sent;
      for (size_t i = 0; i < beta; i++) {
        std::vector<F> bound = program.BoundValues(
            instances[i].inputs, instances[i].expected_outputs);
        auto result = verifier.DecideNext(verifier_link, bound);
        if (!result.ok()) {
          throw std::runtime_error("verifier instance " + std::to_string(i) +
                                   ": " + result.status().ToString());
        }
        RecordVerdict(&out, i, *result);
      }
    } catch (...) {
      // Unblock the prover (it may be waiting for a verdict), reap it, and
      // prefer its error — a transport failure seen here is usually the
      // symptom of the prover dying first.
      verifier_link.Close();
      prover_thread.join();
      if (!prover_error.empty()) {
        throw std::runtime_error(prover_error);
      }
      throw;
    }
    prover_thread.join();
    if (!prover_error.empty()) {
      throw std::runtime_error(prover_error);
    }

    out.proof_message_bytes = verifier.proof_bytes_received();
  }  // closes the "harness.batch" root span

  // Cost fields are views over the span tree (0.0 under ZAATAR_TRACE=0).
  const obs::Tracer& t = *out.trace;
  const double b = static_cast<double>(beta);
  out.query_generation_s = t.SumSeconds("verifier.query_gen");
  out.prover.solve_constraints_s = t.SumSeconds("prover.solve") / b;
  out.prover.construct_proof_s = t.SumSeconds("prover.construct_proof") / b;
  out.prover.crypto_s = t.SumSeconds("prover.commit") / b;
  out.prover.answer_queries_s = t.SumSeconds("prover.answer") / b;
  out.verifier_per_instance_s = t.SumSeconds("verifier.verify") / b;
  return out;
}

// Runs a batch of `beta` instances through the full Zaatar argument.
template <typename F>
BatchMeasurement MeasureZaatarBatch(const App<F>& app,
                                    const CompiledProgram<F>& program,
                                    size_t beta, const PcpParams& params,
                                    uint64_t seed,
                                    bool measure_native = true) {
  return MeasureBatch<F, ZaatarHarnessBackend<F>>(app, program, beta, params,
                                                  seed, measure_native);
}

// Same for the Ginger baseline.
template <typename F>
BatchMeasurement MeasureGingerBatch(const App<F>& app,
                                    const CompiledProgram<F>& program,
                                    size_t beta, const PcpParams& params,
                                    uint64_t seed,
                                    bool measure_native = true) {
  return MeasureBatch<F, GingerHarnessBackend<F>>(app, program, beta, params,
                                                  seed, measure_native);
}

}  // namespace zaatar

#endif  // SRC_APPS_HARNESS_H_
