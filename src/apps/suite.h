// Benchmark-suite registry: pairs each zlang benchmark with an input
// generator and its native reference, producing (field-encoded inputs,
// expected outputs) instances for tests, benches, and examples.

#ifndef SRC_APPS_SUITE_H_
#define SRC_APPS_SUITE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "src/apps/native.h"
#include "src/apps/programs.h"
#include "src/compiler/compile.h"
#include "src/crypto/prg.h"
#include "src/field/fields.h"
#include "src/util/stopwatch.h"

namespace zaatar {

template <typename F>
struct AppInstance {
  std::vector<F> inputs;             // field-encoded, one per input slot
  std::vector<F> expected_outputs;   // from the native reference
};

template <typename F>
struct App {
  std::string name;
  std::string source;
  // Fresh random instance with its expected outputs.
  std::function<AppInstance<F>(Prg&)> make_instance;
  // Mean native execution time (the T / "local" baseline).
  std::function<double()> measure_native_seconds;
};

namespace suite_internal {

// Times `body` by running it enough times to exceed ~20ms of wall clock.
template <typename Fn>
double TimeNative(Fn&& body) {
  body();  // warm-up
  size_t reps = 1;
  for (;;) {
    Stopwatch sw;
    for (size_t i = 0; i < reps; i++) {
      body();
    }
    double s = sw.ElapsedSeconds();
    if (s > 0.02 || reps >= (size_t{1} << 22)) {
      return s / static_cast<double>(reps);
    }
    reps *= 4;
  }
}

inline std::vector<int64_t> RandomInts(Prg& prg, size_t n, int64_t lo,
                                       int64_t hi) {
  std::vector<int64_t> v(n);
  for (auto& x : v) {
    x = lo + static_cast<int64_t>(
                 prg.NextBounded(static_cast<uint64_t>(hi - lo)));
  }
  return v;
}

template <typename F>
std::vector<F> EncodeInts(const std::vector<int64_t>& v) {
  std::vector<F> out;
  out.reserve(v.size());
  for (int64_t x : v) {
    out.push_back(EncodeSignedInt<F>(x));
  }
  return out;
}

}  // namespace suite_internal

inline App<F128> MakePamApp(size_t m, size_t d, size_t iters = 2) {
  App<F128> app;
  app.name = "pam_clustering(m=" + std::to_string(m) +
             ",d=" + std::to_string(d) + ")";
  app.source = PamSource(m, d, iters);
  app.make_instance = [m, d, iters](Prg& prg) {
    auto x = suite_internal::RandomInts(prg, m * d, 0, 512);
    PamResult r = NativePam(x, m, d, iters);
    AppInstance<F128> inst;
    inst.inputs = suite_internal::EncodeInts<F128>(x);
    inst.expected_outputs = suite_internal::EncodeInts<F128>(
        {r.total_cost, r.medoid0, r.medoid1});
    return inst;
  };
  app.measure_native_seconds = [m, d, iters]() {
    Prg prg(0xA11);
    auto x = suite_internal::RandomInts(prg, m * d, 0, 512);
    return suite_internal::TimeNative([&] { NativePam(x, m, d, iters); });
  };
  return app;
}

inline App<F220> MakeRootFindApp(size_t m, size_t l) {
  App<F220> app;
  app.name = "root_finding(m=" + std::to_string(m) +
             ",L=" + std::to_string(l) + ")";
  app.source = RootFindSource(m, l);
  auto gen = [m](Prg& prg) {
    struct Raw {
      std::vector<int64_t> a, b, c;
      int64_t nlo0, nhi0;
    } raw;
    raw.a = suite_internal::RandomInts(prg, m * m, -128, 128);
    raw.b = suite_internal::RandomInts(prg, m, -128, 128);
    raw.c = suite_internal::RandomInts(prg, m, -128, 128);
    raw.nlo0 = -1 - static_cast<int64_t>(prg.NextBounded(8));
    raw.nhi0 = 1 + static_cast<int64_t>(prg.NextBounded(8));
    return raw;
  };
  app.make_instance = [m, l, gen](Prg& prg) {
    auto raw = gen(prg);
    RootFindResult r =
        NativeRootFind(raw.a, raw.b, raw.c, raw.nlo0, raw.nhi0, m, l);
    AppInstance<F220> inst;
    inst.inputs = suite_internal::EncodeInts<F220>(raw.a);
    auto bb = suite_internal::EncodeInts<F220>(raw.b);
    auto cc = suite_internal::EncodeInts<F220>(raw.c);
    inst.inputs.insert(inst.inputs.end(), bb.begin(), bb.end());
    inst.inputs.insert(inst.inputs.end(), cc.begin(), cc.end());
    inst.inputs.push_back(EncodeSignedInt<F220>(raw.nlo0));
    inst.inputs.push_back(EncodeSignedInt<F220>(raw.nhi0));
    inst.expected_outputs = {
        EncodeSignedInt<F220>(static_cast<int64_t>(r.root_num)),
        EncodeSignedInt<F220>(static_cast<int64_t>(r.root_den))};
    return inst;
  };
  app.measure_native_seconds = [m, l, gen]() {
    Prg prg(0xA22);
    auto raw = gen(prg);
    return suite_internal::TimeNative([&] {
      NativeRootFind(raw.a, raw.b, raw.c, raw.nlo0, raw.nhi0, m, l);
    });
  };
  return app;
}

inline App<F128> MakeApspApp(size_t m) {
  App<F128> app;
  app.name = "all_pairs_shortest_path(m=" + std::to_string(m) + ")";
  app.source = ApspSource(m);
  app.make_instance = [m](Prg& prg) {
    auto num = suite_internal::RandomInts(prg, m * m, 1, 4096);
    auto den = suite_internal::RandomInts(prg, m * m, 1, 1024);
    int64_t sum = NativeApsp(num, den, m);
    AppInstance<F128> inst;
    inst.inputs.reserve(2 * m * m);
    for (size_t i = 0; i < m * m; i++) {
      inst.inputs.push_back(EncodeSignedInt<F128>(num[i]));
      inst.inputs.push_back(EncodeSignedInt<F128>(den[i]));
    }
    inst.expected_outputs = {EncodeSignedInt<F128>(sum),
                             EncodeSignedInt<F128>(int64_t{1} << 16)};
    return inst;
  };
  app.measure_native_seconds = [m]() {
    Prg prg(0xA33);
    auto num = suite_internal::RandomInts(prg, m * m, 1, 4096);
    auto den = suite_internal::RandomInts(prg, m * m, 1, 1024);
    return suite_internal::TimeNative([&] { NativeApsp(num, den, m); });
  };
  return app;
}

inline App<F128> MakeFannkuchApp(size_t m, size_t n, size_t max_steps) {
  App<F128> app;
  app.name = "fannkuch(m=" + std::to_string(m) + ",n=" + std::to_string(n) +
             ")";
  app.source = FannkuchSource(m, n, max_steps);
  auto gen = [m, n](Prg& prg) {
    std::vector<int64_t> perms(m * n);
    for (size_t pi = 0; pi < m; pi++) {
      std::vector<int64_t> p(n);
      std::iota(p.begin(), p.end(), 1);
      for (size_t i = n; i > 1; i--) {  // Fisher-Yates
        std::swap(p[i - 1], p[prg.NextBounded(i)]);
      }
      std::copy(p.begin(), p.end(), perms.begin() + pi * n);
    }
    return perms;
  };
  app.make_instance = [m, n, max_steps, gen](Prg& prg) {
    auto perms = gen(prg);
    FannkuchResult r = NativeFannkuch(perms, m, n, max_steps);
    AppInstance<F128> inst;
    inst.inputs = suite_internal::EncodeInts<F128>(perms);
    inst.expected_outputs =
        suite_internal::EncodeInts<F128>({r.total_flips, r.max_flips});
    return inst;
  };
  app.measure_native_seconds = [m, n, max_steps, gen]() {
    Prg prg(0xA44);
    auto perms = gen(prg);
    return suite_internal::TimeNative(
        [&] { NativeFannkuch(perms, m, n, max_steps); });
  };
  return app;
}

inline App<F128> MakeLcsApp(size_t m) {
  App<F128> app;
  app.name = "longest_common_subsequence(m=" + std::to_string(m) + ")";
  app.source = LcsSource(m);
  app.make_instance = [m](Prg& prg) {
    auto s = suite_internal::RandomInts(prg, m, 0, 4);
    auto t = suite_internal::RandomInts(prg, m, 0, 4);
    int64_t len = NativeLcs(s, t);
    AppInstance<F128> inst;
    inst.inputs = suite_internal::EncodeInts<F128>(s);
    auto tt = suite_internal::EncodeInts<F128>(t);
    inst.inputs.insert(inst.inputs.end(), tt.begin(), tt.end());
    inst.expected_outputs = {EncodeSignedInt<F128>(len)};
    return inst;
  };
  app.measure_native_seconds = [m]() {
    Prg prg(0xA55);
    auto s = suite_internal::RandomInts(prg, m, 0, 4);
    auto t = suite_internal::RandomInts(prg, m, 0, 4);
    return suite_internal::TimeNative([&] { NativeLcs(s, t); });
  };
  return app;
}

inline App<F128> MakeMatMulApp(size_t m) {
  App<F128> app;
  app.name = "matrix_multiplication(m=" + std::to_string(m) + ")";
  app.source = MatMulSource(m);
  app.make_instance = [m](Prg& prg) {
    auto a = suite_internal::RandomInts(prg, m * m, -1024, 1024);
    auto b = suite_internal::RandomInts(prg, m * m, -1024, 1024);
    auto c = NativeMatMul(a, b, m);
    AppInstance<F128> inst;
    inst.inputs = suite_internal::EncodeInts<F128>(a);
    auto bb = suite_internal::EncodeInts<F128>(b);
    inst.inputs.insert(inst.inputs.end(), bb.begin(), bb.end());
    inst.expected_outputs = suite_internal::EncodeInts<F128>(c);
    return inst;
  };
  app.measure_native_seconds = [m]() {
    Prg prg(0xA66);
    auto a = suite_internal::RandomInts(prg, m * m, -1024, 1024);
    auto b = suite_internal::RandomInts(prg, m * m, -1024, 1024);
    return suite_internal::TimeNative([&] { NativeMatMul(a, b, m); });
  };
  return app;
}

}  // namespace zaatar

#endif  // SRC_APPS_SUITE_H_
