// zaatar-serve: the standing verified-computation daemon and its client.
// One binary, four modes, all speaking the framed AF_UNIX serve protocol:
//
//   zaatar-serve --mode serve --socket /tmp/z.sock [--workers N]
//       [--max-queue N] [--max-connections N] [--cache-entries N]
//       [--handshake-ms N] [--idle-ms N] [--seed S] [--paper-params]
//     Runs the daemon until a kShutdown frame (or SIGINT/SIGTERM).
//
//   zaatar-serve --mode prove --socket /tmp/z.sock --psi lcs/6
//       [--tenant NAME] [--instances N] [--seed S] [--max-retries N]
//     Connects as a prover, proves N instances, prints the report.
//     Exit 0 iff every instance was accepted.
//
//   zaatar-serve --mode stats --socket /tmp/z.sock
//     Prints the daemon's /stats JSON document.
//
//   zaatar-serve --mode shutdown --socket /tmp/z.sock
//     Asks the daemon to stop.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "src/pcp/params.h"
#include "src/serve/client.h"
#include "src/serve/psi_material.h"
#include "src/serve/server.h"

namespace {

std::sig_atomic_t g_signalled = 0;

void OnSignal(int) { g_signalled = 1; }

struct Options {
  std::string mode = "serve";
  std::string socket_path;
  std::string psi = "lcs/6";
  std::string tenant = "cli";
  size_t instances = 1;
  uint64_t seed = 1;
  size_t workers = 2;
  size_t max_queue = 32;
  size_t max_connections = 32;
  size_t cache_entries = 16;
  uint64_t handshake_ms = 30000;
  uint64_t idle_ms = 120000;
  uint32_t max_retries = 8;
  bool paper_params = false;
};

void Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --mode serve|prove|stats|shutdown --socket PATH\n"
            << "       [--psi name/size] [--tenant NAME] [--instances N]\n"
            << "       [--seed S] [--workers N] [--max-queue N]\n"
            << "       [--max-connections N] [--cache-entries N]\n"
            << "       [--handshake-ms N] [--idle-ms N] [--max-retries N]\n"
            << "       [--paper-params]\n";
}

bool ParseArgs(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; i++) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto parse_u64 = [&](uint64_t* out) {
      const char* v = next();
      if (v == nullptr) return false;
      *out = std::strtoull(v, nullptr, 10);
      return true;
    };
    uint64_t u = 0;
    if (a == "--mode") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->mode = v;
    } else if (a == "--socket") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->socket_path = v;
    } else if (a == "--psi") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->psi = v;
    } else if (a == "--tenant") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->tenant = v;
    } else if (a == "--instances") {
      if (!parse_u64(&u)) return false;
      opt->instances = static_cast<size_t>(u);
    } else if (a == "--seed") {
      if (!parse_u64(&opt->seed)) return false;
    } else if (a == "--workers") {
      if (!parse_u64(&u)) return false;
      opt->workers = static_cast<size_t>(u);
    } else if (a == "--max-queue") {
      if (!parse_u64(&u)) return false;
      opt->max_queue = static_cast<size_t>(u);
    } else if (a == "--max-connections") {
      if (!parse_u64(&u)) return false;
      opt->max_connections = static_cast<size_t>(u);
    } else if (a == "--cache-entries") {
      if (!parse_u64(&u)) return false;
      opt->cache_entries = static_cast<size_t>(u);
    } else if (a == "--handshake-ms") {
      if (!parse_u64(&opt->handshake_ms)) return false;
    } else if (a == "--idle-ms") {
      if (!parse_u64(&opt->idle_ms)) return false;
    } else if (a == "--max-retries") {
      if (!parse_u64(&u)) return false;
      opt->max_retries = static_cast<uint32_t>(u);
    } else if (a == "--paper-params") {
      opt->paper_params = true;
    } else {
      std::cerr << "unknown flag: " << a << "\n";
      return false;
    }
  }
  if (opt->socket_path.empty()) {
    std::cerr << "--socket is required\n";
    return false;
  }
  if (opt->mode != "serve" && opt->mode != "prove" && opt->mode != "stats" &&
      opt->mode != "shutdown") {
    std::cerr << "unknown mode: " << opt->mode << "\n";
    return false;
  }
  return true;
}

int RunServe(const Options& opt) {
  using namespace zaatar;
  serve::ServerOptions sopt;
  sopt.socket_path = opt.socket_path;
  sopt.workers = opt.workers;
  sopt.max_queue = opt.max_queue;
  sopt.max_connections = opt.max_connections;
  sopt.handshake_deadline = std::chrono::milliseconds(opt.handshake_ms);
  sopt.idle_deadline = std::chrono::milliseconds(opt.idle_ms);
  sopt.cache.max_entries = opt.cache_entries;
  sopt.cache.seed = opt.seed;
  PcpParams params = opt.paper_params ? PcpParams{} : PcpParams::Light();
  serve::Server server(sopt, serve::MakePsiBuilder(params));
  Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "cannot start daemon: " << started.ToString() << "\n";
    return 1;
  }
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::printf("zaatar-serve listening on %s (%zu workers)\n",
              opt.socket_path.c_str(), sopt.workers);
  std::fflush(stdout);
  while (!server.stop_requested() && g_signalled == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  std::printf("zaatar-serve stopped\n");
  return 0;
}

int RunProve(const Options& opt) {
  using namespace zaatar;
  serve::ServeClient::Options copt;
  copt.backoff.max_retries = opt.max_retries;
  copt.backoff.jitter_seed = opt.seed;
  auto client = serve::ServeClient::Connect(opt.socket_path, copt);
  if (!client.ok()) {
    std::cerr << "connect failed: " << client.status().ToString() << "\n";
    return 1;
  }
  auto report = serve::RunServeBatchF128(*client, opt.psi, opt.tenant,
                                         opt.instances, opt.seed);
  if (!report.ok()) {
    std::cerr << "prove failed: " << report.status().ToString() << "\n";
    return 1;
  }
  std::printf("psi                %s\n", opt.psi.c_str());
  std::printf("instances          %zu\n", report->instances);
  std::printf("accepted           %zu\n", report->accepted);
  std::printf("hello              %.6f s\n", report->hello_seconds);
  std::printf("prove              %.6f s\n", report->prove_seconds);
  std::printf("resource retries   %llu\n",
              static_cast<unsigned long long>(report->resource_retries));
  return report->accepted == report->instances ? 0 : 2;
}

int RunStats(const Options& opt) {
  using namespace zaatar;
  auto client = serve::ServeClient::Connect(opt.socket_path, {});
  if (!client.ok()) {
    std::cerr << "connect failed: " << client.status().ToString() << "\n";
    return 1;
  }
  auto stats = client->Stats();
  if (!stats.ok()) {
    std::cerr << "stats failed: " << stats.status().ToString() << "\n";
    return 1;
  }
  std::fputs(stats->c_str(), stdout);
  return 0;
}

int RunShutdown(const Options& opt) {
  using namespace zaatar;
  auto client = serve::ServeClient::Connect(opt.socket_path, {});
  if (!client.ok()) {
    std::cerr << "connect failed: " << client.status().ToString() << "\n";
    return 1;
  }
  Status s = client->Shutdown();
  if (!s.ok()) {
    std::cerr << "shutdown failed: " << s.ToString() << "\n";
    return 1;
  }
  std::printf("daemon acknowledged shutdown\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) {
    Usage(argv[0]);
    return 1;
  }
  try {
    if (opt.mode == "serve") return RunServe(opt);
    if (opt.mode == "prove") return RunProve(opt);
    if (opt.mode == "stats") return RunStats(opt);
    return RunShutdown(opt);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
