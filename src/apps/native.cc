#include "src/apps/native.h"

#include <algorithm>
#include <cassert>

namespace zaatar {

namespace {
constexpr int64_t kBig = int64_t{1} << 62;
}  // namespace

PamResult NativePam(const std::vector<int64_t>& x, size_t m, size_t d,
                    size_t iters) {
  assert(x.size() == m * d);
  std::vector<int64_t> dist(m * m, 0);
  for (size_t i = 0; i < m; i++) {
    for (size_t j = i + 1; j < m; j++) {
      int64_t s = 0;
      for (size_t t = 0; t < d; t++) {
        int64_t df = x[i * d + t] - x[j * d + t];
        s += df * df;
      }
      dist[i * m + j] = s;
      dist[j * m + i] = s;
    }
  }
  size_t m0 = 0, m1 = 1;
  std::vector<bool> near0(m);
  for (size_t it = 0; it < iters; it++) {
    for (size_t p = 0; p < m; p++) {
      near0[p] = dist[p * m + m0] <= dist[p * m + m1];
    }
    for (int cluster = 0; cluster < 2; cluster++) {
      int64_t best = kBig;
      size_t bestidx = cluster == 0 ? m0 : m1;
      for (size_t i = 0; i < m; i++) {
        int64_t acc = 0;
        for (size_t j = 0; j < m; j++) {
          bool in_cluster = cluster == 0 ? near0[j] : !near0[j];
          acc += in_cluster ? dist[i * m + j] : 0;
        }
        bool self_in = cluster == 0 ? near0[i] : !near0[i];
        int64_t cand = self_in ? acc : kBig;
        if (cand < best) {
          best = cand;
          bestidx = i;
        }
      }
      (cluster == 0 ? m0 : m1) = bestidx;
    }
  }
  PamResult r;
  for (size_t p = 0; p < m; p++) {
    r.total_cost += std::min(dist[p * m + m0], dist[p * m + m1]);
  }
  r.medoid0 = static_cast<int64_t>(m0);
  r.medoid1 = static_cast<int64_t>(m1);
  return r;
}

RootFindResult NativeRootFind(const std::vector<int64_t>& a,
                              const std::vector<int64_t>& b,
                              const std::vector<int64_t>& c, int64_t nlo0,
                              int64_t nhi0, size_t m, size_t l) {
  assert(a.size() == m * m && b.size() == m && c.size() == m);
  __int128 nlo = nlo0, nhi = nhi0, den = 1;
  std::vector<__int128> unum(m);
  for (size_t it = 0; it < l; it++) {
    __int128 nmid = nlo + nhi;
    __int128 dmid = den * 2;
    for (size_t i = 0; i < m; i++) {
      unum[i] = static_cast<__int128>(b[i]) * dmid + nmid * c[i];
    }
    __int128 fnum = 0;
    for (size_t i = 0; i < m; i++) {
      for (size_t j = 0; j < m; j++) {
        fnum += static_cast<__int128>(a[i * m + j]) * (unum[i] * unum[j]);
      }
    }
    if (fnum < 0) {
      nlo = nmid;
      nhi = nhi * 2;
    } else {
      nhi = nmid;
      nlo = nlo * 2;
    }
    den = dmid;
  }
  return {nlo + nhi, den * 2};
}

int64_t NativeApsp(const std::vector<int64_t>& w_num,
                   const std::vector<int64_t>& w_den, size_t m) {
  assert(w_num.size() == m * m && w_den.size() == m * m);
  // Fixed-point init: floor(num * 2^16 / den), dens positive.
  std::vector<int64_t> d(m * m);
  for (size_t i = 0; i < m * m; i++) {
    __int128 scaled = static_cast<__int128>(w_num[i]) << 16;
    __int128 den = w_den[i];
    __int128 q = scaled / den;
    if (scaled % den != 0 && scaled < 0) {
      q -= 1;  // floor for negatives (weights are positive in practice)
    }
    d[i] = static_cast<int64_t>(q);
  }
  for (size_t k = 0; k < m; k++) {
    for (size_t i = 0; i < m; i++) {
      for (size_t j = 0; j < m; j++) {
        d[i * m + j] = std::min(d[i * m + j], d[i * m + k] + d[k * m + j]);
      }
    }
  }
  int64_t acc = 0;
  for (size_t j = 0; j < m; j++) {
    acc += d[j];
  }
  return acc;
}

FannkuchResult NativeFannkuch(const std::vector<int64_t>& perms, size_t m,
                              size_t n, size_t max_steps) {
  assert(perms.size() == m * n);
  FannkuchResult r;
  std::vector<int64_t> p(n);
  for (size_t pi = 0; pi < m; pi++) {
    for (size_t i = 0; i < n; i++) {
      p[i] = perms[pi * n + i];
    }
    int64_t flips = 0;
    bool done = false;
    for (size_t step = 0; step < max_steps; step++) {
      int64_t k = p[0];
      if (k == 1) {
        done = true;
      }
      if (!done) {
        flips++;
        std::reverse(p.begin(), p.begin() + k);
      }
    }
    r.total_flips += flips;
    r.max_flips = std::max(r.max_flips, flips);
  }
  return r;
}

int64_t NativeLcs(const std::vector<int64_t>& s,
                  const std::vector<int64_t>& t) {
  size_t m = s.size();
  assert(t.size() == m);
  std::vector<int64_t> dp((m + 1) * (m + 1), 0);
  auto at = [&](size_t i, size_t j) -> int64_t& {
    return dp[i * (m + 1) + j];
  };
  for (size_t i = 1; i <= m; i++) {
    for (size_t j = 1; j <= m; j++) {
      at(i, j) = s[i - 1] == t[j - 1]
                     ? at(i - 1, j - 1) + 1
                     : std::max(at(i - 1, j), at(i, j - 1));
    }
  }
  return at(m, m);
}

std::vector<int64_t> NativeMatMul(const std::vector<int64_t>& a,
                                  const std::vector<int64_t>& b, size_t m) {
  assert(a.size() == m * m && b.size() == m * m);
  std::vector<int64_t> c(m * m, 0);
  for (size_t i = 0; i < m; i++) {
    for (size_t k = 0; k < m; k++) {
      int64_t aik = a[i * m + k];
      for (size_t j = 0; j < m; j++) {
        c[i * m + j] += aik * b[k * m + j];
      }
    }
  }
  return c;
}

}  // namespace zaatar
