// The degenerate computation class of §4: dense degree-2 polynomial
// evaluation, y = sum_{i<=j} c_ij x_i x_j with compile-time coefficients.
//
// Ginger encodes this almost for free — one constraint holding every product
// term plus m input bindings, so |Z_ginger| = m and the quadratic proof
// (z, z ⊗ z) is only ~m² long. Zaatar's transform must introduce an
// auxiliary variable per distinct product, K2 = m(m+1)/2 ≈ K2*, landing in
// the paper's worst case where |u_zaatar| ≈ |u_ginger|. This module
// hand-constructs the system (the zlang compiler would decompose the sum
// into per-product constraints, which is the non-degenerate encoding) for
// the §4 cost-benefit ablation and the encoding-chooser tests.

#ifndef SRC_APPS_DEGENERATE_H_
#define SRC_APPS_DEGENERATE_H_

#include <vector>

#include "src/constraints/ginger.h"
#include "src/crypto/prg.h"

namespace zaatar {

template <typename F>
struct DegenerateQuadForm {
  GingerSystem<F> ginger;
  std::vector<F> coeffs;  // row-major m x m, used for i <= j only
  size_t m = 0;

  // Full satisfying assignment (Z = proxies, X = inputs, Y = the value).
  std::vector<F> MakeAssignment(const std::vector<F>& x) const {
    std::vector<F> w;
    w.reserve(2 * m + 1);
    w.insert(w.end(), x.begin(), x.end());  // proxies z_i = x_i
    w.insert(w.end(), x.begin(), x.end());  // inputs
    F y = F::Zero();
    for (size_t i = 0; i < m; i++) {
      for (size_t j = i; j < m; j++) {
        y += coeffs[i * m + j] * x[i] * x[j];
      }
    }
    w.push_back(y);
    return w;
  }
};

// Builds the hand-tailored encoding: m binding constraints z_i = x_i plus a
// single constraint sum c_ij z_i z_j - Y = 0.
template <typename F>
DegenerateQuadForm<F> BuildDegenerateQuadForm(size_t m, Prg& prg) {
  DegenerateQuadForm<F> d;
  d.m = m;
  d.ginger.layout = {m, m, 1};
  d.coeffs.resize(m * m, F::Zero());

  for (size_t i = 0; i < m; i++) {
    GingerConstraint<F> bind;  // z_i - x_i = 0
    bind.linear.AddTerm(static_cast<uint32_t>(i), F::One());
    bind.linear.AddTerm(static_cast<uint32_t>(m + i), -F::One());
    d.ginger.constraints.push_back(std::move(bind));
  }

  GingerConstraint<F> form;  // sum_{i<=j} c_ij z_i z_j - y = 0
  for (size_t i = 0; i < m; i++) {
    for (size_t j = i; j < m; j++) {
      F c = prg.NextNonzeroField<F>();
      d.coeffs[i * m + j] = c;
      form.quad.push_back(
          {static_cast<uint32_t>(i), static_cast<uint32_t>(j), c});
    }
  }
  form.linear.AddTerm(static_cast<uint32_t>(2 * m), -F::One());  // -Y
  d.ginger.constraints.push_back(std::move(form));
  return d;
}

}  // namespace zaatar

#endif  // SRC_APPS_DEGENERATE_H_
